package dtnsim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonical content keys for scenarios and sweeps.
//
// PR 2 made every Scenario and SweepSpec a canonical-JSON fixed point:
// parse → marshal is the identity on canonical files (proven by the
// PR-5 fuzzers), and Normalize maps every accepted spelling of a run to
// one canonical value. That canonical value is therefore a perfect
// content address: two specs share a key exactly when they describe the
// same deterministic computation, so a result computed once can be
// served forever (the dtnsimd result cache, DESIGN.md §11).
//
// The key covers everything that can influence the result bytes —
// registry specs in canonical form, every engine and resource knob, the
// workload, and the seed — and deliberately excludes pure execution
// knobs: SweepSpec.Workers changes how a sweep is scheduled across
// goroutines, never what it computes (bit-identical by the PR-1
// determinism contract), so it is zeroed before hashing.

// CanonicalKey returns the scenario's content address: the hex SHA-256
// of its normalized canonical JSON (which includes the seed). Two
// scenarios get the same key iff they normalize to the same value —
// invariant under JSON key order, whitespace, and spec-parameter
// spelling; distinct under any semantic field change. The scenario is
// validated first, so a key is only ever issued for a runnable spec.
func (s Scenario) CanonicalKey() (string, error) {
	if err := s.Check(); err != nil {
		return "", err
	}
	norm, err := s.Normalize()
	if err != nil {
		return "", err
	}
	return hashJSON(norm)
}

// Normalize returns the sweep in canonical form: the form SweepSpecOf
// reconstructs from the compiled sweep — canonical registry specs, the
// effective engine knobs after scenario presets, label lists elided
// when they match the registry defaults — with the harness defaults
// (loads 5..50, 10 runs, all five metrics) made explicit and the
// Workers execution knob cleared. Template fields the sweep harness
// ignores (Protocol, Flows, RunToHorizon) are dropped, so every
// spelling of the same experiment normalizes to one value. Normalize is
// idempotent.
func (s SweepSpec) Normalize() (SweepSpec, error) {
	sw, err := s.Compile()
	if err != nil {
		return SweepSpec{}, err
	}
	norm, err := SweepSpecOf(s.Name, sw)
	if err != nil {
		return SweepSpec{}, err
	}
	if len(norm.Loads) == 0 {
		norm.Loads = DefaultLoads()
	}
	if norm.Runs == 0 {
		norm.Runs = 10
	}
	if len(norm.Metrics) == 0 {
		norm.Metrics = AllMetrics()
	}
	// Execution-only knobs: Workers schedules the grid, Shards selects
	// the per-run executor; neither changes a byte of output.
	norm.Workers = 0
	norm.Scenario.Shards = 0
	return norm, nil
}

// CanonicalKey returns the sweep's content address: the hex SHA-256 of
// its normalized canonical JSON (which includes the template's seed).
// Worker count does not enter the key — a sweep's results are
// bit-identical for every Workers value — so re-submitting the same
// experiment with different parallelism hits the same cache entry.
func (s SweepSpec) CanonicalKey() (string, error) {
	norm, err := s.Normalize()
	if err != nil {
		return "", err
	}
	return hashJSON(norm)
}

// hashJSON hashes a normalized spec's compact JSON encoding.
func hashJSON(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrScenario, err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
