// Declarative: the same run twice — once built in Go, once defined
// entirely as JSON — plus a live Observer tap, demonstrating that a
// scenario file is a first-class, bit-identical way to drive the
// simulator.
//
//	go run ./examples/declarative
package main

import (
	"fmt"
	"log"
	"reflect"

	"dtnsim"
)

const scenarioJSON = `{
  "name": "quickstart-as-data",
  "mobility": "cambridge",
  "protocol": "dynttl",
  "flows": [{"src": 0, "dst": 7, "count": 25}],
  "seed": 42
}`

func main() {
	// The Go-constructed run, as in examples/quickstart.
	schedule, err := dtnsim.CambridgeTrace(42)
	if err != nil {
		log.Fatal(err)
	}
	byHand, err := dtnsim.Run(dtnsim.Config{
		Schedule: schedule,
		Protocol: dtnsim.DynamicTTL(),
		Flows:    []dtnsim.Flow{{Src: 0, Dst: 7, Count: 25}},
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same run as data, with a delivery tap attached.
	sc, err := dtnsim.ParseScenario([]byte(scenarioJSON))
	if err != nil {
		log.Fatal(err)
	}
	deliveries := 0
	tap := &dtnsim.FuncObserver{
		Deliver: func(id dtnsim.BundleID, dst dtnsim.NodeID, delay float64, now dtnsim.Time) {
			deliveries++
			if deliveries <= 3 {
				fmt.Printf("  t=%v  bundle %v reached node %d after %.0f s\n", now, id, dst, delay)
			}
		},
	}
	fromJSON, err := dtnsim.RunScenario(sc, tap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  … %d deliveries total\n\n", deliveries)

	fmt.Printf("by hand:   delivered %d/%d, makespan %.0f s, occupancy %.3f\n",
		byHand.Delivered, byHand.Generated, byHand.Makespan, byHand.MeanOccupancy)
	fmt.Printf("from JSON: delivered %d/%d, makespan %.0f s, occupancy %.3f\n",
		fromJSON.Delivered, fromJSON.Generated, fromJSON.Makespan, fromJSON.MeanOccupancy)
	if reflect.DeepEqual(byHand, fromJSON) {
		fmt.Println("results are bit-identical")
	} else {
		fmt.Println("results DIVERGED — this is a bug")
	}
}
