// Quickstart: simulate one DTN flow over the Cambridge-style encounter
// trace and print the paper's four metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dtnsim"
)

func main() {
	// The trace the paper uses: 12 campus nodes over five days of
	// irregular encounters (a seeded synthetic stand-in for the
	// CRAWDAD cambridge/haggle/imote trace; see DESIGN.md §3).
	schedule, err := dtnsim.CambridgeTrace(42)
	if err != nil {
		log.Fatal(err)
	}
	stats := dtnsim.AnalyzeSchedule(schedule)
	fmt.Println("mobility:", stats)

	// Node 0 sends 25 bundles to node 7 under the paper's dynamic-TTL
	// enhancement. Buffers hold 10 bundles; a bundle takes 100 s to
	// transmit — all §IV defaults.
	result, err := dtnsim.Run(dtnsim.Config{
		Schedule: schedule,
		Protocol: dtnsim.DynamicTTL(),
		Flows:    []dtnsim.Flow{{Src: 0, Dst: 7, Count: 25}},
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("protocol:", result.Protocol)
	fmt.Printf("delivery ratio:   %.3f (%d/%d bundles)\n",
		result.DeliveryRatio, result.Delivered, result.Generated)
	if result.Completed {
		fmt.Printf("delay:            %.0f s until the last bundle arrived\n", result.Makespan)
	}
	fmt.Printf("buffer occupancy: %.3f\n", result.MeanOccupancy)
	fmt.Printf("duplication rate: %.3f\n", result.MeanDuplication)
}
