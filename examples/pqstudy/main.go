// PQ study: the paper's §II-C observation that transmission
// probabilities below one are counterproductive in DTNs — "every
// encounter is important, and a missed opportunity will likely result in
// long delays and low delivery ratio". This example sweeps the (P,Q)
// values the paper experiments with (0.1, 0.5, 1) over the campus trace
// and prints delivery and delay per configuration and load.
//
//	go run ./examples/pqstudy
package main

import (
	"fmt"
	"log"

	"dtnsim"
)

func main() {
	probs := []float64{0.1, 0.5, 1.0}
	var factories []dtnsim.ProtocolFactory
	for _, p := range probs {
		p := p
		factories = append(factories, dtnsim.ProtocolFactory{
			Label: fmt.Sprintf("P=Q=%g", p),
			New:   func() dtnsim.Protocol { return dtnsim.PQ(p, p) },
		})
	}
	res, err := dtnsim.RunSweep(dtnsim.Sweep{
		Scenario:  dtnsim.TraceScenario(),
		Protocols: factories,
		Loads:     []int{10, 30, 50},
		Runs:      5,
		BaseSeed:  11,
		// The (protocol, load, run) grid fans out over all CPUs; the
		// numbers are bit-identical to a sequential sweep (Workers: 1).
		Workers: 0,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(dtnsim.TableOf(res, dtnsim.MetricDelivery, "Delivery ratio by transmission probability").ASCII())
	fmt.Println(dtnsim.TableOf(res, dtnsim.MetricDelay, "Delay (s, completed runs) by transmission probability").ASCII())
	fmt.Println("Lower probabilities squander encounters: with P=Q=0.1 most contact")
	fmt.Println("slots pass unused, so bundles wait for later meetings that a sparse")
	fmt.Println("DTN may never provide (§II-C).")
}
