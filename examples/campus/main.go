// Campus: the paper's Fig. 1 motivating scenario — students carrying
// short-range devices around a university campus, with no infrastructure
// and no contemporaneous path between sender and receiver. This example
// runs every protocol the paper studies over the same five-day campus
// trace and prints a side-by-side comparison, a miniature of the paper's
// Table II.
//
//	go run ./examples/campus
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"dtnsim"
)

func main() {
	schedule, err := dtnsim.CambridgeTrace(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("campus trace:", dtnsim.AnalyzeSchedule(schedule))
	fmt.Println()

	// Student 2 sends 30 lecture recordings (bundles) to student 9.
	// They never coordinate; every other student is a potential relay.
	const load = 30
	flows := []dtnsim.Flow{{Src: 2, Dst: 9, Count: load}}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tdelivery\tdelay(s)\toccupancy\tduplication\toverhead")
	for _, proto := range dtnsim.Protocols() {
		r, err := dtnsim.Run(dtnsim.Config{
			Schedule:     schedule,
			Protocol:     proto,
			Flows:        flows,
			Seed:         99,
			RunToHorizon: true, // observe steady-state buffers like §V
		})
		if err != nil {
			log.Fatal(err)
		}
		delay := "failed"
		if r.Completed {
			delay = fmt.Sprintf("%.0f", r.Makespan)
		}
		fmt.Fprintf(w, "%s\t%.2f\t%s\t%.3f\t%.3f\t%d\n",
			r.Protocol, r.DeliveryRatio, delay, r.MeanOccupancy, r.MeanDuplication, r.ControlRecords)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading the table like the paper does (§V):")
	fmt.Println(" - flooding variants (pure, P-Q at 1,1) deliver everything but pin buffers near full;")
	fmt.Println(" - constant TTL discards bundles prematurely on a sparse campus;")
	fmt.Println(" - dynamic TTL adapts the deadline to each node's encounter rhythm;")
	fmt.Println(" - immunity purges delivered bundles, cumulative immunity does it with a")
	fmt.Println("   single table instead of one record per bundle.")
}
