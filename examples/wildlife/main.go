// Wildlife: a ZebraNet-style sensing scenario (the paper's first
// motivating application [1]). Collared animals roam a large area and
// exchange stored sensor readings when they wander within radio range;
// researchers collect whatever reaches a basestation-carrying vehicle.
// Resource limits dominate: small buffers, and signaling overhead costs
// battery — exactly the trade-off the paper's cumulative-immunity
// enhancement targets.
//
// The example builds a sparse classic random-waypoint world, runs three
// animal→base flows under plain and cumulative immunity, and compares
// delivered data against the signaling spent to get it.
//
//	go run ./examples/wildlife
package main

import (
	"fmt"
	"log"

	"dtnsim"
)

func main() {
	// 10 collared animals (nodes 0–9) plus a ranger vehicle (node 10)
	// in a 3×3 km reserve; radio reaches 150 m. Classic RWP is fine
	// here: animals genuinely wander, and we keep MinSpeed well above
	// zero to avoid the RWP speed-decay pathology the paper cites [19].
	world := dtnsim.ClassicRWP{
		Nodes:    11,
		AreaSide: 3000,
		Range:    150,
		MinSpeed: 0.5,
		MaxSpeed: 4, // animal speeds, not vehicles
		MaxPause: 2000,
		Span:     600000,
		Seed:     2024,
	}
	schedule, err := world.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reserve:", dtnsim.AnalyzeSchedule(schedule))
	fmt.Println()

	// Three collars stream 15 readings each to the vehicle (node 10);
	// collar 0 wakes again mid-study for a second burst. A source may
	// appear in several flows — each burst takes the next contiguous
	// block of collar 0's sequence numbers, and per-reading delay is
	// measured from each burst's own start time.
	flows := []dtnsim.Flow{
		{Src: 0, Dst: 10, Count: 15},
		{Src: 4, Dst: 10, Count: 15},
		{Src: 8, Dst: 10, Count: 15},
		{Src: 0, Dst: 10, Count: 10, StartAt: 300000},
	}

	for _, proto := range []dtnsim.Protocol{dtnsim.Immunity(), dtnsim.CumulativeImmunity()} {
		r, err := dtnsim.Run(dtnsim.Config{
			Schedule:     schedule,
			Protocol:     proto,
			Flows:        flows,
			BufferCap:    8, // collars are tiny
			Seed:         5,
			RunToHorizon: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", r.Protocol)
		fmt.Printf("  readings collected: %d/%d (%.0f%%)\n",
			r.Delivered, r.Generated, 100*r.DeliveryRatio)
		fmt.Printf("  signaling spent:    %d records\n", r.ControlRecords)
		if r.Delivered > 0 {
			fmt.Printf("  records per reading: %.1f\n",
				float64(r.ControlRecords)/float64(r.Delivered))
			fmt.Printf("  mean reading delay:  %.0f s\n", r.MeanDelay)
		}
		fmt.Printf("  collar buffer load: %.2f\n\n", r.MeanOccupancy)
	}
	fmt.Println("Cumulative immunity collects the same data for a fraction of the")
	fmt.Println("signaling — the paper's order-of-magnitude overhead claim (§V-C) —")
	fmt.Println("which is battery the collars do not spend.")
}
