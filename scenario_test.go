package dtnsim_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dtnsim"
)

// goProtocol builds the Go-constructor equivalent of each canonical
// registry spec, for the JSON-versus-Go determinism comparison.
func goProtocol(t *testing.T, spec string) dtnsim.Protocol {
	t.Helper()
	switch spec {
	case "pure":
		return dtnsim.Pure()
	case "pq:p=1,q=1":
		return dtnsim.PQ(1, 1)
	case "ttl:300":
		return dtnsim.TTL(300)
	case "ec":
		return dtnsim.EC()
	case "immunity":
		return dtnsim.Immunity()
	case "dynttl":
		return dtnsim.DynamicTTL()
	case "ecttl":
		return dtnsim.ECTTL()
	case "cumimmunity":
		return dtnsim.CumulativeImmunity()
	}
	t.Fatalf("no Go constructor mapped for %q", spec)
	return nil
}

// TestScenarioJSONMatchesGoConstruction is the paper-framework
// acceptance property: a scenario defined purely as JSON reproduces,
// bit-identically, the Result of the equivalent Go-constructed run —
// for a trace-based and an RWP-based scenario, across all 8 paper
// protocols via registry specs.
func TestScenarioJSONMatchesGoConstruction(t *testing.T) {
	mobilities := []struct {
		name string
		spec string
		gen  func(seed uint64) (*dtnsim.Schedule, error)
	}{
		{"trace", "cambridge", dtnsim.CambridgeTrace},
		{"rwp", "subscriber", dtnsim.SubscriberRWP},
	}
	for _, mob := range mobilities {
		for _, protoSpec := range dtnsim.BuiltinProtocolSpecs() {
			protoSpec := protoSpec
			t.Run(mob.name+"/"+string(protoSpec), func(t *testing.T) {
				const seed, load = 42, 5
				schedule, err := mob.gen(seed)
				if err != nil {
					t.Fatal(err)
				}
				want, err := dtnsim.Run(dtnsim.Config{
					Schedule: schedule,
					Protocol: goProtocol(t, string(protoSpec)),
					Flows:    []dtnsim.Flow{{Src: 0, Dst: 7, Count: load}},
					Seed:     seed,
				})
				if err != nil {
					t.Fatal(err)
				}

				raw := fmt.Sprintf(`{
					"mobility": %q,
					"protocol": %q,
					"flows": [{"src": 0, "dst": 7, "count": %d}],
					"seed": %d
				}`, mob.spec, protoSpec, load, seed)
				sc, err := dtnsim.ParseScenario([]byte(raw))
				if err != nil {
					t.Fatal(err)
				}
				got, err := dtnsim.RunScenario(sc)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("JSON-defined run diverged from Go-constructed run:\n got: %+v\nwant: %+v", got, want)
				}
			})
		}
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := dtnsim.Scenario{
		Name:         "rt",
		Mobility:     "interval:max=2000",
		Protocol:     "pq:p=0.8,q=0.5,anti",
		Flows:        []dtnsim.Flow{{Src: 1, Dst: 3, Count: 7, StartAt: 50, Size: 1 << 20}},
		BufferCap:    20,
		TxTime:       25,
		SampleEvery:  500,
		Seed:         9,
		RunToHorizon: true,
		Bandwidth:    5e4,
		BundleSize:   1 << 19,
		BufferBytes:  5 << 20,
		DropPolicy:   "dropfront",
		ControlBytes: 64,
	}
	data, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := dtnsim.ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sc) {
		t.Errorf("round trip changed the scenario:\n got: %+v\nwant: %+v", back, sc)
	}
}

func TestParseScenarioRejectsBadInput(t *testing.T) {
	bad := map[string]string{
		"unknown field":    `{"mobility":"cambridge","protocol":"pure","flows":[{"src":0,"dst":1,"count":1}],"wormholes":3}`,
		"missing mobility": `{"protocol":"pure","flows":[{"src":0,"dst":1,"count":1}]}`,
		"missing protocol": `{"mobility":"cambridge","flows":[{"src":0,"dst":1,"count":1}]}`,
		"bad proto spec":   `{"mobility":"cambridge","protocol":"pq:p=7","flows":[{"src":0,"dst":1,"count":1}]}`,
		"bad mob spec":     `{"mobility":"warpdrive","protocol":"pure","flows":[{"src":0,"dst":1,"count":1}]}`,
		"no flows":         `{"mobility":"cambridge","protocol":"pure"}`,
		"not json":         `mobility=cambridge`,
		"bad drop policy":  `{"mobility":"cambridge","protocol":"pure","flows":[{"src":0,"dst":1,"count":1}],"drop":"nosuch"}`,
	}
	for name, raw := range bad {
		if _, err := dtnsim.ParseScenario([]byte(raw)); !errors.Is(err, dtnsim.ErrScenario) {
			t.Errorf("%s: err = %v, want ErrScenario", name, err)
		}
	}
}

// TestSweepSpecMatchesFigureSweep: a figure's serialized SweepSpec must
// compile back to a sweep that produces identical results.
func TestSweepSpecMatchesFigureSweep(t *testing.T) {
	fig, err := dtnsim.FigureByID("fig13")
	if err != nil {
		t.Fatal(err)
	}
	fig.Sweep.Runs = 2
	fig.Sweep.BaseSeed = 7
	fig.Sweep.Loads = []int{5, 10}
	want, err := dtnsim.RunSweep(fig.Sweep)
	if err != nil {
		t.Fatal(err)
	}

	spec, err := dtnsim.SweepSpecOf(fig.ID, fig.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := dtnsim.ParseSweepSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dtnsim.RunSweepSpec(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SweepSpec-defined sweep diverged from figure sweep:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestEveryFigureSerializes: every figure and ablation must be
// expressible as data now that scenarios and factories carry specs.
func TestEveryFigureSerializes(t *testing.T) {
	for _, f := range dtnsim.AllExperiments() {
		if f.ID == "fig14" {
			continue // runs as a scenario pair; covered via Fig14Pair below
		}
		spec, err := dtnsim.SweepSpecOf(f.ID, f.Sweep)
		if err != nil {
			t.Errorf("%s: %v", f.ID, err)
			continue
		}
		if _, err := spec.Compile(); err != nil {
			t.Errorf("%s: serialized spec does not compile: %v", f.ID, err)
		}
	}
	short, long := dtnsim.Fig14Pair()
	for i, sw := range []dtnsim.Sweep{short, long} {
		if _, err := dtnsim.SweepSpecOf("fig14", sw); err != nil {
			t.Errorf("fig14 pair %d: %v", i, err)
		}
	}
}

// TestStreamObserverWritesSeries checks the streaming CSV observer's
// shape: a header, sample rows in time order, and event rows only when
// enabled.
func TestStreamObserverWritesSeries(t *testing.T) {
	sc, err := dtnsim.ParseScenario([]byte(
		`{"mobility":"cambridge","protocol":"ttl:300","flows":[{"src":0,"dst":7,"count":5}],"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var series, events strings.Builder
	samplesOnly := dtnsim.NewStreamObserver(&series, false)
	everything := dtnsim.NewStreamObserver(&events, true)
	if _, err := dtnsim.RunScenario(sc, samplesOnly, everything); err != nil {
		t.Fatal(err)
	}
	if err := samplesOnly.Err(); err != nil {
		t.Fatal(err)
	}
	if err := everything.Err(); err != nil {
		t.Fatal(err)
	}

	sLines := strings.Split(strings.TrimSpace(series.String()), "\n")
	if sLines[0] != "time,event,node,peer,bundle,detail,occupancy,duplication" {
		t.Errorf("header = %q", sLines[0])
	}
	if len(sLines) < 2 {
		t.Fatal("no sample rows")
	}
	for _, line := range sLines[1:] {
		if !strings.Contains(line, ",sample,") {
			t.Errorf("series stream contains non-sample row %q", line)
		}
	}
	ev := events.String()
	for _, kind := range []string{",generate,", ",transmit,", ",deliver,", ",sample,"} {
		if !strings.Contains(ev, kind) {
			t.Errorf("event stream lacks %q rows", kind)
		}
	}
	if len(ev) <= len(series.String()) {
		t.Error("event stream should be a superset of the sample stream")
	}
}

// TestScenarioNormalize pins the canonicalization used by -dump.
func TestScenarioNormalize(t *testing.T) {
	sc := dtnsim.Scenario{
		Mobility: "interval:min=100,max=400",
		Protocol: "pq:q=0.5,p=0.8",
		Flows:    []dtnsim.Flow{{Src: 0, Dst: 1, Count: 1}},
	}
	norm, err := sc.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Mobility != "interval:max=400,min=100" {
		t.Errorf("mobility canonical = %q", norm.Mobility)
	}
	if norm.Protocol != "pq:p=0.8,q=0.5" {
		t.Errorf("protocol canonical = %q", norm.Protocol)
	}
	data, err := json.Marshal(norm)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"name"`) {
		t.Error("empty name serialized")
	}
}

func TestParseScenarioRejectsTrailingContent(t *testing.T) {
	raw := `{"mobility":"cambridge","protocol":"pure","flows":[{"src":0,"dst":1,"count":1}]}{"protocol":"ttl:300"}`
	if _, err := dtnsim.ParseScenario([]byte(raw)); !errors.Is(err, dtnsim.ErrScenario) {
		t.Errorf("trailing content: err = %v, want ErrScenario", err)
	}
	sweep := `{"scenario":{"mobility":"cambridge"},"protocols":["pure"]} garbage`
	if _, err := dtnsim.ParseSweepSpec([]byte(sweep)); !errors.Is(err, dtnsim.ErrScenario) {
		t.Errorf("sweep trailing content: err = %v, want ErrScenario", err)
	}
}

func TestSweepSpecRejectsUnsupportedTemplateKnobs(t *testing.T) {
	for _, raw := range []string{
		`{"scenario":{"mobility":"cambridge","sample_every":50},"protocols":["pure"]}`,
		`{"scenario":{"mobility":"cambridge","records_per_slot":3},"protocols":["pure"]}`,
		`{"scenario":{"mobility":"cambridge","horizon":100},"protocols":["pure"]}`,
	} {
		if _, err := dtnsim.ParseSweepSpec([]byte(raw)); !errors.Is(err, dtnsim.ErrScenario) {
			t.Errorf("%s: err = %v, want ErrScenario", raw, err)
		}
	}
	// run_to_horizon true matches what sweeps do anyway and is accepted.
	ok := `{"scenario":{"mobility":"cambridge","run_to_horizon":true},"protocols":["pure"]}`
	if _, err := dtnsim.ParseSweepSpec([]byte(ok)); err != nil {
		t.Errorf("run_to_horizon=true rejected: %v", err)
	}
}

// TestScenarioResourceKeysBind: the bw/size keys in a scenario file
// reach the engine — a starved bandwidth delivers strictly less than
// the same scenario unconstrained.
func TestScenarioResourceKeysBind(t *testing.T) {
	base := `{"mobility":"cambridge:seed=7","protocol":"pure",
		"flows":[{"src":0,"dst":7,"count":30}],
		"run_to_horizon":true,"seed":7%s}`
	run := func(extra string) *dtnsim.Result {
		sc, err := dtnsim.ParseScenario([]byte(fmt.Sprintf(base, extra)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := dtnsim.RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run("")
	starved := run(`,"bw":1000,"size":1048576`)
	if !(starved.Delivered < free.Delivered) {
		t.Errorf("starved scenario delivered %d, unconstrained %d; want strictly less",
			starved.Delivered, free.Delivered)
	}
	// Byte capacity with a drop policy binds too and is accounted.
	pressured := run(`,"size":1048576,"bufbytes":3145728,"drop":"dropfront"`)
	if pressured.ByteDropped == 0 {
		t.Error("bufbytes+drop keys did not produce byte-pressure drops")
	}
}

// TestConstrainedSweepSpecRoundTrip: a sweep template carrying the
// resource keys serializes and compiles back to the same runnable
// sweep, results included.
func TestConstrainedSweepSpecRoundTrip(t *testing.T) {
	raw := `{"scenario":{"mobility":"cambridge","bw":3000,"size":1048576,
		"bufbytes":5242880,"drop":"dropfront","ctlbytes":16,"seed":2012},
		"protocols":["pure"],"loads":[10],"runs":1,"metrics":["delivery"]}`
	spec, err := dtnsim.ParseSweepSpec([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Scenario.Bandwidth != 3000 || sweep.Scenario.BundleSize != 1048576 ||
		sweep.Scenario.BufferBytes != 5242880 || sweep.Scenario.DropPolicy != "dropfront" ||
		sweep.Scenario.ControlBytes != 16 {
		t.Fatalf("resource knobs lost in Compile: %+v", sweep.Scenario)
	}
	want, err := dtnsim.RunSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize back and re-run: bit-identical.
	back, err := dtnsim.SweepSpecOf("rt", sweep)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario.Bandwidth != 3000 || back.Scenario.DropPolicy != "dropfront" {
		t.Fatalf("SweepSpecOf dropped resource knobs: %+v", back.Scenario)
	}
	got, err := dtnsim.RunSweepSpec(back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("re-serialized constrained sweep diverged:\n got: %+v\nwant: %+v", got, want)
	}
	// The unknown-policy template is rejected at compile time.
	badRaw := `{"scenario":{"mobility":"cambridge","drop":"nosuch"},"protocols":["pure"]}`
	if _, err := dtnsim.ParseSweepSpec([]byte(badRaw)); !errors.Is(err, dtnsim.ErrScenario) {
		t.Errorf("bad template policy: err = %v, want ErrScenario", err)
	}
}
