package dtnsim_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dtnsim"
)

func TestQuickstartPath(t *testing.T) {
	schedule, err := dtnsim.CambridgeTrace(42)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dtnsim.Run(dtnsim.Config{
		Schedule: schedule,
		Protocol: dtnsim.DynamicTTL(),
		Flows:    []dtnsim.Flow{{Src: 0, Dst: 7, Count: 25}},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Generated != 25 {
		t.Errorf("Generated = %d", r.Generated)
	}
	if r.Delivered == 0 {
		t.Error("nothing delivered on the default trace")
	}
}

func TestAllProtocolsRunOnAllMobilitySources(t *testing.T) {
	sources := map[string]func() (*dtnsim.Schedule, error){
		"trace": func() (*dtnsim.Schedule, error) { return dtnsim.CambridgeTrace(7) },
		"rwp":   func() (*dtnsim.Schedule, error) { return dtnsim.SubscriberRWP(7) },
		"interval": func() (*dtnsim.Schedule, error) {
			return dtnsim.ControlledInterval{Seed: 7}.Generate()
		},
	}
	for name, gen := range sources {
		schedule, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, p := range dtnsim.Protocols() {
			r, err := dtnsim.Run(dtnsim.Config{
				Schedule: schedule,
				Protocol: p,
				Flows:    []dtnsim.Flow{{Src: 1, Dst: 4, Count: 10}},
				Seed:     3,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, p.Name(), err)
			}
			if r.DeliveryRatio < 0 || r.DeliveryRatio > 1 {
				t.Errorf("%s/%s: delivery ratio %v", name, p.Name(), r.DeliveryRatio)
			}
		}
	}
}

func TestTraceRoundTripThroughPublicAPI(t *testing.T) {
	schedule, err := dtnsim.CambridgeTrace(11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dtnsim.WriteTrace(&buf, schedule); err != nil {
		t.Fatal(err)
	}
	back, err := dtnsim.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Contacts) != len(schedule.Contacts) {
		t.Errorf("round trip lost contacts: %d != %d", len(back.Contacts), len(schedule.Contacts))
	}
	st := dtnsim.AnalyzeSchedule(back)
	if st.Nodes != 12 || st.Contacts == 0 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestFiguresRegistry(t *testing.T) {
	figs := dtnsim.Figures()
	if len(figs) != 15 {
		t.Fatalf("Figures() = %d entries, want 15 (fig07–fig20 + overhead)", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || f.Expect == "" {
			t.Errorf("figure %q incomplete", f.ID)
		}
		if seen[f.ID] {
			t.Errorf("duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
		if len(f.Sweep.Protocols) == 0 {
			t.Errorf("figure %q has no protocols", f.ID)
		}
	}
	if _, err := dtnsim.FigureByID("fig13"); err != nil {
		t.Error(err)
	}
	if _, err := dtnsim.FigureByID("nope"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestSmallSweepEndToEnd(t *testing.T) {
	f, err := dtnsim.FigureByID("fig13")
	if err != nil {
		t.Fatal(err)
	}
	f.Sweep.Loads = []int{5, 25}
	f.Sweep.Runs = 2
	f.Sweep.BaseSeed = 9
	res, err := dtnsim.RunSweep(f.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2 (EC, TTL)", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			v := p.Values[dtnsim.MetricDelivery]
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Errorf("%s load %d: delivery %v", s.Label, p.Load, v)
			}
		}
	}
	table := dtnsim.TableOf(res, dtnsim.MetricDelivery, "test")
	csv := table.CSV()
	if !strings.Contains(csv, "load,") || len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Errorf("CSV malformed:\n%s", csv)
	}
	if table.ASCII() == "" || table.Plot(60, 12) == "" {
		t.Error("empty renderings")
	}
}

func TestSweepDeterminism(t *testing.T) {
	sweep := dtnsim.Sweep{
		Scenario:  dtnsim.TraceScenario(),
		Protocols: []dtnsim.ProtocolFactory{{Label: "ttl", New: func() dtnsim.Protocol { return dtnsim.TTL(300) }}},
		Loads:     []int{10},
		Runs:      3,
		BaseSeed:  77,
	}
	a, err := dtnsim.RunSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dtnsim.RunSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	for m, v := range a.Series[0].Points[0].Values {
		if w := b.Series[0].Points[0].Values[m]; v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
			t.Errorf("metric %s diverged: %v vs %v", m, v, w)
		}
	}
}

// TestPaperHeadlineShapes verifies the reproduction's central claims on
// a reduced sweep: the §III enhancements beat their originals the way
// §V reports.
func TestPaperHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	mk := func(label string, f func() dtnsim.Protocol) dtnsim.ProtocolFactory {
		return dtnsim.ProtocolFactory{Label: label, New: f}
	}
	sweep := dtnsim.Sweep{
		Scenario: dtnsim.TraceScenario(),
		Protocols: []dtnsim.ProtocolFactory{
			mk("ttl", func() dtnsim.Protocol { return dtnsim.TTL(300) }),
			mk("dynttl", func() dtnsim.Protocol { return dtnsim.DynamicTTL() }),
			mk("imm", func() dtnsim.Protocol { return dtnsim.Immunity() }),
			mk("cum", func() dtnsim.Protocol { return dtnsim.CumulativeImmunity() }),
		},
		Loads:    []int{40, 50},
		Runs:     6,
		BaseSeed: 2012,
	}
	res, err := dtnsim.RunSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string, m dtnsim.Metric) float64 {
		for _, s := range res.Series {
			if s.Label == label {
				sum := 0.0
				for _, p := range s.Points {
					sum += p.Values[m]
				}
				return sum / float64(len(s.Points))
			}
		}
		t.Fatalf("series %q missing", label)
		return 0
	}
	// Dynamic TTL improves delivery over constant TTL at high load (§V-B:
	// "more than 20%" headline; we assert a conservative margin).
	ttl, dyn := get("ttl", dtnsim.MetricDelivery), get("dynttl", dtnsim.MetricDelivery)
	if dyn < ttl+0.05 {
		t.Errorf("dynamic TTL delivery %v not clearly above constant TTL %v", dyn, ttl)
	}
	// Cumulative immunity cuts buffer occupancy (§V-B: at least 15%).
	immOcc, cumOcc := get("imm", dtnsim.MetricOccupancy), get("cum", dtnsim.MetricOccupancy)
	if cumOcc > immOcc*0.85 {
		t.Errorf("cumulative occupancy %v not ≤ 85%% of immunity %v", cumOcc, immOcc)
	}
	// …while transmitting an order of magnitude fewer records (§V-C).
	immOv, cumOv := get("imm", dtnsim.MetricOverhead), get("cum", dtnsim.MetricOverhead)
	if cumOv*8 > immOv {
		t.Errorf("overhead gap too small: immunity %v vs cumulative %v", immOv, cumOv)
	}
	// …with comparable delivery.
	immD, cumD := get("imm", dtnsim.MetricDelivery), get("cum", dtnsim.MetricDelivery)
	if cumD < immD-0.12 {
		t.Errorf("cumulative delivery %v collapsed versus immunity %v", cumD, immD)
	}
}

func TestFig14HeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	short, long := dtnsim.Fig14Pair()
	short.Loads, long.Loads = []int{30, 50}, []int{30, 50}
	short.Runs, long.Runs = 6, 6
	short.BaseSeed, long.BaseSeed = 5, 5
	rs, err := dtnsim.RunSweep(short)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := dtnsim.RunSweep(long)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(r *dtnsim.SweepResult) float64 {
		sum := 0.0
		for _, p := range r.Series[0].Points {
			sum += p.Values[dtnsim.MetricDelivery]
		}
		return sum / float64(len(r.Series[0].Points))
	}
	s, l := avg(rs), avg(rl)
	// Fig. 14: a 2000 s max interval delivers at least 20% less than
	// 400 s under TTL=300.
	if l > s*0.8 {
		t.Errorf("interval sensitivity missing: 400s→%.3f, 2000s→%.3f", s, l)
	}
}

func TestAblationsRegistry(t *testing.T) {
	abl := dtnsim.Ablations()
	if len(abl) != 4 {
		t.Fatalf("Ablations() = %d entries, want 4", len(abl))
	}
	ids := map[string]bool{}
	for _, f := range abl {
		ids[f.ID] = true
		if len(f.Sweep.Protocols) < 3 {
			t.Errorf("%s: only %d protocol variants", f.ID, len(f.Sweep.Protocols))
		}
	}
	for _, id := range []string{"ttlsweep", "pqsweep", "dynmult", "ecthresh"} {
		if !ids[id] {
			t.Errorf("missing ablation %q", id)
		}
		if _, err := dtnsim.FigureByID(id); err != nil {
			t.Errorf("FigureByID(%q): %v", id, err)
		}
	}
	if len(dtnsim.AllExperiments()) != len(dtnsim.Figures())+4 {
		t.Error("AllExperiments not the concatenation")
	}
}

func TestTTLSweepMonotoneShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	f, err := dtnsim.FigureByID("ttlsweep")
	if err != nil {
		t.Fatal(err)
	}
	f.Sweep.Loads = []int{30}
	f.Sweep.Runs = 5
	f.Sweep.BaseSeed = 3
	res, err := dtnsim.RunSweep(f.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	// Delivery should not decrease as the TTL constant grows
	// (premature discard shrinks); allow small noise.
	prev := -1.0
	for _, s := range res.Series {
		v := s.Points[0].Values[dtnsim.MetricDelivery]
		if v < prev-0.08 {
			t.Errorf("delivery dropped from %.3f to %.3f at %s", prev, v, s.Label)
		}
		if v > prev {
			prev = v
		}
	}
}
