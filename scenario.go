package dtnsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"dtnsim/internal/buffer"
	"dtnsim/internal/core"
	"dtnsim/internal/experiment"
	"dtnsim/internal/metrics"
	"dtnsim/internal/mobility"
	"dtnsim/internal/node"
	"dtnsim/internal/protocol"
	"dtnsim/internal/report"
)

// This file is the declarative face of the simulator: scenarios and
// sweeps as data. A Scenario names its mobility model and protocol by
// registry spec strings, round-trips through JSON, and compiles to the
// same core.Config a Go caller would build by hand — so a run defined
// in a file is bit-identical to the equivalent programmatic run.

// MobilitySpec selects a mobility source by registry spec:
// "cambridge:seed=42", "subscriber", "rwp:nodes=40", "interval:max=2000",
// "trace:PATH". See MobilitySpecs for the full grammar.
type MobilitySpec string

// ProtocolSpec selects a routing protocol by registry spec:
// "pure", "pq:p=0.8,q=0.5", "ttl:300", "cumimmunity", …. See
// ProtocolSpecs for the full grammar.
type ProtocolSpec string

// ErrScenario wraps scenario-level validation failures (spec errors
// keep their own sentinels: protocol.ErrSpec / mobility.ErrSpec wrapped
// underneath).
var ErrScenario = errors.New("dtnsim: invalid scenario")

// Scenario is one simulation run as data. Zero-valued knobs take the
// paper's §IV defaults exactly as in Config; Seed drives both mobility
// generation (unless the mobility spec pins seed=N) and the protocol's
// random draws.
type Scenario struct {
	// Name is a free-form label carried into reports.
	Name string `json:"name,omitempty"`
	// Mobility and Protocol are registry specs. Required for a
	// standalone scenario; a SweepSpec template omits Protocol (the
	// sweep's Protocols list supplies it).
	Mobility MobilitySpec `json:"mobility"`
	Protocol ProtocolSpec `json:"protocol,omitempty"`
	// Flows is the workload. Required for a standalone scenario;
	// sweeps generate their own single-flow workloads per run.
	Flows []Flow `json:"flows,omitempty"`
	// Engine knobs; zero means the paper's default.
	BufferCap      int     `json:"buffer_cap,omitempty"`
	TxTime         float64 `json:"tx_time,omitempty"`
	RecordsPerSlot int     `json:"records_per_slot,omitempty"`
	SampleEvery    float64 `json:"sample_every,omitempty"`
	Horizon        Time    `json:"horizon,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	RunToHorizon   bool    `json:"run_to_horizon,omitempty"`
	// Resource-model knobs (DESIGN.md §9); zero disables each one, so
	// legacy scenario files run bit-identically.
	//
	// Bandwidth ("bw") is the contact link capacity in bytes/sec for
	// contacts without their own; BundleSize ("size") is the default
	// payload size for flows that set none; BufferBytes ("bufbytes") is
	// the per-node byte capacity; DropPolicy ("drop") names the
	// byte-pressure policy (droptail, dropfront, droprandom);
	// ControlBytes ("ctlbytes") charges each control record against a
	// bandwidth-limited contact's byte budget.
	Bandwidth    float64 `json:"bw,omitempty"`
	BundleSize   int64   `json:"size,omitempty"`
	BufferBytes  int64   `json:"bufbytes,omitempty"`
	DropPolicy   string  `json:"drop,omitempty"`
	ControlBytes float64 `json:"ctlbytes,omitempty"`
	// Shards selects the engine executor (DESIGN.md §12): 0 is the
	// sequential event loop, K >= 1 the sharded executor with K worker
	// goroutines. Purely an execution knob — results are bit-identical
	// for every value — so, like SweepSpec.Workers, it never enters the
	// canonical key.
	Shards int `json:"shards,omitempty"`
}

// decodeStrict decodes one JSON value into v, rejecting unknown fields
// and trailing content after the value.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrScenario, err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("%w: trailing content after the JSON value", ErrScenario)
	}
	return nil
}

// ParseScenario decodes a JSON scenario strictly: unknown fields and
// trailing content are rejected, and both specs are resolved against
// the registries so a typo fails at load time, not mid-sweep.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := decodeStrict(data, &s); err != nil {
		return Scenario{}, err
	}
	if err := s.Check(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// JSON renders the scenario as indented JSON, the format ParseScenario
// reads.
func (s Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Check validates the scenario's specs and workload without generating
// mobility. It is the cheap half of Compile.
func (s Scenario) Check() error {
	if s.Mobility == "" {
		return fmt.Errorf("%w: missing mobility spec", ErrScenario)
	}
	if s.Protocol == "" {
		return fmt.Errorf("%w: missing protocol spec", ErrScenario)
	}
	if _, err := mobility.Parse(string(s.Mobility)); err != nil {
		return fmt.Errorf("%w: %v", ErrScenario, err)
	}
	if _, err := protocol.Parse(string(s.Protocol)); err != nil {
		return fmt.Errorf("%w: %v", ErrScenario, err)
	}
	if len(s.Flows) == 0 {
		return fmt.Errorf("%w: no flows", ErrScenario)
	}
	if err := buffer.CheckDropPolicy(s.DropPolicy); err != nil {
		return fmt.Errorf("%w: %v", ErrScenario, err)
	}
	return nil
}

// Normalize returns the scenario with both specs replaced by their
// canonical forms, so two scenarios meaning the same run compare equal
// as data. Shards is cleared: it selects an executor, never a result
// (every shard count is bit-identical), so two scenarios differing only
// in Shards are the same run.
func (s Scenario) Normalize() (Scenario, error) {
	src, err := mobility.Parse(string(s.Mobility))
	if err != nil {
		return Scenario{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	fac, err := protocol.Parse(string(s.Protocol))
	if err != nil {
		return Scenario{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	s.Mobility, s.Protocol = MobilitySpec(src.Spec), ProtocolSpec(fac.Spec)
	s.Shards = 0
	return s, nil
}

// Compile resolves the scenario to the engine configuration a Go caller
// would have built by hand: the registries supply the contact plan and
// the protocol instance, everything else copies over verbatim. Mobility
// is resolved to a streaming Source — never materialized — so compiled
// scenarios run in O(nodes) contact-plan memory; results are
// bit-identical to a Config built around the materialized Schedule.
// The Source is consumed by one Run, so compile once per run (compiling
// twice also yields independent protocol instances).
func (s Scenario) Compile() (Config, error) {
	if err := s.Check(); err != nil {
		return Config{}, err
	}
	src, _ := mobility.Parse(string(s.Mobility))
	stream, err := src.Stream(s.Seed)
	if err != nil {
		return Config{}, fmt.Errorf("dtnsim: streaming %s mobility: %w", src.Kind, err)
	}
	fac, _ := protocol.Parse(string(s.Protocol))
	flows := append([]Flow(nil), s.Flows...)
	if s.BundleSize != 0 {
		// The scenario-level default size fills flows that set none.
		for i := range flows {
			if flows[i].Size == 0 {
				flows[i].Size = s.BundleSize
			}
		}
	}
	return Config{
		Source:         stream,
		Protocol:       fac.New(),
		Flows:          flows,
		BufferCap:      s.BufferCap,
		TxTime:         s.TxTime,
		RecordsPerSlot: s.RecordsPerSlot,
		SampleEvery:    s.SampleEvery,
		Horizon:        s.Horizon,
		Seed:           s.Seed,
		RunToHorizon:   s.RunToHorizon,
		Bandwidth:      s.Bandwidth,
		BufferBytes:    s.BufferBytes,
		DropPolicy:     s.DropPolicy,
		ControlBytes:   s.ControlBytes,
		Shards:         s.Shards,
	}, nil
}

// StreamMobility resolves the scenario's mobility to a fresh streaming
// source — e.g. to summarize it with AnalyzeContactSource without
// holding the schedule. Each call returns an independent single-use
// stream; Compile builds its own.
func (s Scenario) StreamMobility() (ContactSource, error) {
	src, err := mobility.Parse(string(s.Mobility))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	stream, err := src.Stream(s.Seed)
	if err != nil {
		return nil, fmt.Errorf("dtnsim: streaming %s mobility: %w", src.Kind, err)
	}
	return stream, nil
}

// Materialize resolves the scenario's mobility to a full Schedule —
// the form tools needing random access (WriteTrace) want. Runs don't:
// Compile streams.
func (s Scenario) Materialize() (*Schedule, error) {
	src, err := mobility.Parse(string(s.Mobility))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	sched, err := src.Generate(s.Seed)
	if err != nil {
		return nil, fmt.Errorf("dtnsim: generating %s mobility: %w", src.Kind, err)
	}
	return sched, nil
}

// RunScenario compiles and executes a scenario. Observers, if any,
// stream the run's events (see Observer).
func RunScenario(s Scenario, obs ...Observer) (*Result, error) {
	cfg, err := s.Compile()
	if err != nil {
		return nil, err
	}
	cfg.Observers = append(cfg.Observers, obs...)
	return core.Run(cfg)
}

// --- Sweeps as data ---------------------------------------------------------

// SweepSpec is a load-sweep experiment as data: a scenario template
// swept over protocol specs and loads. The template's Mobility, engine
// knobs (TxTime, BufferCap) and Seed apply to every run; its Protocol
// and Flows are ignored — the sweep re-randomizes source/destination
// pairs per run and sweeps the load axis, per the paper's §IV
// methodology. The remaining single-run knobs (SampleEvery,
// RecordsPerSlot, Horizon) are not supported by the sweep harness and
// are rejected rather than silently dropped; sweeps always run to the
// horizon, so RunToHorizon true is accepted as redundant.
type SweepSpec struct {
	Name      string         `json:"name,omitempty"`
	Scenario  Scenario       `json:"scenario"`
	Protocols []ProtocolSpec `json:"protocols"`
	// Labels optionally overrides the series labels, one per protocol
	// spec (the paper's figures use legend names like "Epidemic with
	// TTL" rather than the canonical spec label).
	Labels []string `json:"labels,omitempty"`
	// Loads defaults to the paper's 5,10,…,50.
	Loads []int `json:"loads,omitempty"`
	// Runs per point; defaults to the paper's 10.
	Runs int `json:"runs,omitempty"`
	// Metrics to collect; empty means all five.
	Metrics []Metric `json:"metrics,omitempty"`
	// Workers bounds concurrent runs (0 = all CPUs, 1 = sequential);
	// results are bit-identical for every value. The template scenario's
	// Shards knob composes with it: Workers parallelizes across the
	// sweep grid, Shards parallelizes inside each run.
	Workers int `json:"workers,omitempty"`
}

// ParseSweepSpec decodes a JSON sweep strictly and validates its specs.
func ParseSweepSpec(data []byte) (SweepSpec, error) {
	var s SweepSpec
	if err := decodeStrict(data, &s); err != nil {
		return SweepSpec{}, err
	}
	if _, err := s.Compile(); err != nil {
		return SweepSpec{}, err
	}
	return s, nil
}

// JSON renders the sweep as indented JSON.
func (s SweepSpec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Compile resolves the sweep to a runnable Sweep via the registries.
func (s SweepSpec) Compile() (Sweep, error) {
	if s.Scenario.Mobility == "" {
		return Sweep{}, fmt.Errorf("%w: sweep template missing mobility spec", ErrScenario)
	}
	if s.Scenario.SampleEvery != 0 || s.Scenario.RecordsPerSlot != 0 || s.Scenario.Horizon != 0 {
		return Sweep{}, fmt.Errorf("%w: sweep templates do not support sample_every, records_per_slot or horizon (the harness uses the paper's §IV settings)", ErrScenario)
	}
	sc, err := experiment.ScenarioFromSpec(string(s.Scenario.Mobility))
	if err != nil {
		return Sweep{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	if s.Scenario.Name != "" {
		sc.Name = s.Scenario.Name
	}
	// Template knobs override the spec preset (e.g. interval's fast link).
	if s.Scenario.TxTime != 0 {
		sc.TxTime = s.Scenario.TxTime
	}
	if s.Scenario.BufferCap != 0 {
		sc.BufferCap = s.Scenario.BufferCap
	}
	// Resource-model template knobs apply to every run of the sweep;
	// the sweep's generated single-flow workload takes the template's
	// default bundle size.
	if err := buffer.CheckDropPolicy(s.Scenario.DropPolicy); err != nil {
		return Sweep{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	sc.Bandwidth = s.Scenario.Bandwidth
	sc.BundleSize = s.Scenario.BundleSize
	sc.BufferBytes = s.Scenario.BufferBytes
	sc.DropPolicy = s.Scenario.DropPolicy
	sc.ControlBytes = s.Scenario.ControlBytes
	if len(s.Protocols) == 0 {
		return Sweep{}, fmt.Errorf("%w: sweep has no protocol specs", ErrScenario)
	}
	if len(s.Labels) != 0 && len(s.Labels) != len(s.Protocols) {
		return Sweep{}, fmt.Errorf("%w: %d labels for %d protocols", ErrScenario, len(s.Labels), len(s.Protocols))
	}
	factories := make([]ProtocolFactory, 0, len(s.Protocols))
	for i, ps := range s.Protocols {
		f, err := experiment.FactoryFromSpec(string(ps))
		if err != nil {
			return Sweep{}, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		if len(s.Labels) != 0 && s.Labels[i] != "" {
			f.Label = s.Labels[i]
		}
		factories = append(factories, f)
	}
	return Sweep{
		Scenario:  sc,
		Protocols: factories,
		Loads:     append([]int(nil), s.Loads...),
		Runs:      s.Runs,
		BaseSeed:  s.Scenario.Seed,
		Metrics:   append([]Metric(nil), s.Metrics...),
		Workers:   s.Workers,
		Shards:    s.Scenario.Shards,
	}, nil
}

// RunSweepSpec compiles and executes a data-defined sweep.
func RunSweepSpec(s SweepSpec) (*SweepResult, error) {
	sw, err := s.Compile()
	if err != nil {
		return nil, err
	}
	return experiment.Run(sw)
}

// SweepSpecOf reconstructs the serializable form of a sweep whose
// scenario and factories were built from registry specs (everything
// Figures and Ablations return). Hand-built sweeps without spec strings
// are not serializable and return an error.
func SweepSpecOf(name string, sw Sweep) (SweepSpec, error) {
	if sw.Scenario.Spec == "" {
		return SweepSpec{}, fmt.Errorf("%w: scenario %q was not built from a mobility spec",
			ErrScenario, sw.Scenario.Name)
	}
	spec := SweepSpec{
		Name: name,
		Scenario: Scenario{
			Name:     sw.Scenario.Name,
			Mobility: MobilitySpec(sw.Scenario.Spec),
			// Compile's interval preset re-applies TxTime; recording the
			// effective values keeps the file self-describing.
			TxTime:       sw.Scenario.TxTime,
			BufferCap:    sw.Scenario.BufferCap,
			Seed:         sw.BaseSeed,
			Bandwidth:    sw.Scenario.Bandwidth,
			BundleSize:   sw.Scenario.BundleSize,
			BufferBytes:  sw.Scenario.BufferBytes,
			DropPolicy:   sw.Scenario.DropPolicy,
			ControlBytes: sw.Scenario.ControlBytes,
			Shards:       sw.Shards,
		},
		Loads:   append([]int(nil), sw.Loads...),
		Runs:    sw.Runs,
		Metrics: append([]Metric(nil), sw.Metrics...),
		Workers: sw.Workers,
	}
	relabeled := false
	for _, f := range sw.Protocols {
		if f.Spec == "" {
			return SweepSpec{}, fmt.Errorf("%w: factory %q was not built from a protocol spec",
				ErrScenario, f.Label)
		}
		spec.Protocols = append(spec.Protocols, ProtocolSpec(f.Spec))
		spec.Labels = append(spec.Labels, f.Label)
		if defaultLabel(f.Spec) != f.Label {
			relabeled = true
		}
	}
	if !relabeled {
		spec.Labels = nil // canonical labels: keep the file minimal
	}
	return spec, nil
}

// defaultLabel returns the registry's label for a spec (its display
// name), used to elide redundant label lists when serializing sweeps.
func defaultLabel(spec string) string {
	f, err := protocol.Parse(spec)
	if err != nil {
		return ""
	}
	return f.Label
}

// --- Registry surface -------------------------------------------------------

// Observer receives engine events while a run progresses; attach
// implementations via Config.Observers or RunScenario. The built-in
// metrics collector is itself an observer, as is the streaming CSV
// writer returned by NewStreamObserver.
type Observer = core.Observer

// FuncObserver adapts optional callbacks into an Observer.
type FuncObserver = core.FuncObserver

// MetricSample is one periodic engine observation delivered to
// Observer.OnSample.
type MetricSample = metrics.Sample

// DropReason classifies an Observer.OnDrop event.
type DropReason = node.DropReason

// The four ways a node sheds a bundle copy.
const (
	DropRefused = node.DropRefused
	DropEvicted = node.DropEvicted
	DropExpired = node.DropExpired
	DropPurged  = node.DropPurged
)

// SpecInfo documents one registered spec name for listings.
type SpecInfo struct {
	// Name is the registry key ("pq", "cambridge", …).
	Name string
	// Usage is a one-line grammar-and-meaning summary.
	Usage string
}

// ParseProtocolSpec resolves a protocol spec string to a sweep-ready
// factory. Errors wrap protocol.ErrSpec; it never panics, making it
// the safe boundary for user-supplied specs (the CLI routes -proto and
// the legacy -protocol flags through here).
func ParseProtocolSpec(spec string) (ProtocolFactory, error) {
	return experiment.FactoryFromSpec(spec)
}

// ParseMobilitySpec resolves a mobility spec string to a sweep-ready
// scenario. Errors wrap mobility.ErrSpec; it never panics.
func ParseMobilitySpec(spec string) (ExperimentScenario, error) {
	return experiment.ScenarioFromSpec(spec)
}

// ProtocolSpecs lists every registered protocol spec with its usage.
func ProtocolSpecs() []SpecInfo {
	infos := protocol.Default.Specs()
	out := make([]SpecInfo, len(infos))
	for i, in := range infos {
		out[i] = SpecInfo{Name: in.Name, Usage: in.Usage}
	}
	return out
}

// MobilitySpecs lists every registered mobility spec with its usage.
func MobilitySpecs() []SpecInfo {
	infos := mobility.Default.Specs()
	out := make([]SpecInfo, len(infos))
	for i, in := range infos {
		out[i] = SpecInfo{Name: in.Name, Usage: in.Usage}
	}
	return out
}

// BuiltinProtocolSpecs returns the canonical spec of every paper
// protocol in the paper's order — the spec-string form of Protocols().
func BuiltinProtocolSpecs() []ProtocolSpec {
	specs := protocol.BuiltinSpecs()
	out := make([]ProtocolSpec, len(specs))
	for i, s := range specs {
		out[i] = ProtocolSpec(s)
	}
	return out
}

// NewStreamObserver returns an Observer that writes the run as a CSV
// stream; see report.Stream for the layout. With events false only the
// periodic metric samples are written.
func NewStreamObserver(w io.Writer, events bool) *report.Stream {
	return report.NewStream(w, events)
}
