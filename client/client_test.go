package client

import (
	"encoding/json"
	"testing"
)

func TestTerminal(t *testing.T) {
	for state, want := range map[string]bool{
		StatePending:   false,
		StateRunning:   false,
		StateDone:      true,
		StateFailed:    true,
		StateCancelled: true,
	} {
		if got := (JobStatus{State: state}).Terminal(); got != want {
			t.Errorf("Terminal(%s) = %v, want %v", state, got, want)
		}
	}
}

func TestSubmitRequestOmitsEmptySpecs(t *testing.T) {
	// The server distinguishes scenario from sweep submissions by which
	// field is present, so an unset field must be absent, not null.
	data, err := json.Marshal(SubmitRequest{Scenario: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"scenario":{}}` {
		t.Errorf("marshalled request: %s", data)
	}
}

func TestSweepPointNullValue(t *testing.T) {
	// null metric values decode to nil pointers (the NaN encoding).
	var p SweepPoint
	if err := json.Unmarshal([]byte(`{"load":5,"values":{"delay":null,"delivery":0.8}}`), &p); err != nil {
		t.Fatal(err)
	}
	if p.Values["delay"] != nil {
		t.Errorf("null delay decoded to %v", *p.Values["delay"])
	}
	if v := p.Values["delivery"]; v == nil || *v != 0.8 {
		t.Errorf("delivery decoded to %v", v)
	}
}
