package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to one dtnsimd instance.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at base (e.g.
// "http://localhost:8642"). A trailing slash is tolerated.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// StatusError is returned for any non-2xx response, carrying the HTTP
// status code and the server's error message.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("dtnsimd: %s (HTTP %d)", e.Message, e.Code)
}

// ErrJobNotDone wraps StatusError responses for result fetches on jobs
// that have not (yet) produced a result.
var ErrJobNotDone = errors.New("client: job result not available")

// do issues one request and decodes a non-2xx body into a StatusError.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var eb ErrorBody
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, &StatusError{Code: resp.StatusCode, Message: msg}
	}
	return resp, nil
}

// getJSON fetches path and decodes the 2xx JSON body into v.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// getBytes fetches path and returns the raw 2xx body — the form the
// byte-identity guarantees apply to.
func (c *Client) getBytes(ctx context.Context, path string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Submit posts a job. Exactly one of req.Scenario and req.Sweep must
// be set; spec validation errors come back as a 400 StatusError.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (SubmitResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return SubmitResponse{}, err
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return SubmitResponse{}, err
	}
	return out, nil
}

// SubmitScenario submits a scenario spec document (dtnsim JSON
// scenario format).
func (c *Client) SubmitScenario(ctx context.Context, spec []byte) (SubmitResponse, error) {
	return c.Submit(ctx, SubmitRequest{Scenario: spec})
}

// SubmitSweep submits a sweep spec document.
func (c *Client) SubmitSweep(ctx context.Context, spec []byte) (SubmitResponse, error) {
	return c.Submit(ctx, SubmitRequest{Sweep: spec})
}

// Status fetches a job's current state.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// Cancel asks the daemon to cancel a job. Cancelling a terminal job is
// a no-op.
func (c *Client) Cancel(ctx context.Context, id string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Wait polls the job until it reaches a terminal state or ctx expires.
// poll <= 0 defaults to 200ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// ResultBytes fetches a done job's result body verbatim. A 409
// (not done yet) wraps ErrJobNotDone.
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	return c.artifact(ctx, "/v1/jobs/"+id+"/result")
}

// SeriesCSV fetches a done job's time-series CSV: the periodic metric
// samples for a scenario job, the per-metric load-sweep tables for a
// sweep job.
func (c *Client) SeriesCSV(ctx context.Context, id string) ([]byte, error) {
	return c.artifact(ctx, "/v1/jobs/"+id+"/series")
}

// EventsCSV fetches a scenario job's full engine event stream.
func (c *Client) EventsCSV(ctx context.Context, id string) ([]byte, error) {
	return c.artifact(ctx, "/v1/jobs/"+id+"/events")
}

func (c *Client) artifact(ctx context.Context, path string) ([]byte, error) {
	data, err := c.getBytes(ctx, path)
	var se *StatusError
	if errors.As(err, &se) && se.Code == http.StatusConflict {
		return nil, fmt.Errorf("%w: %s", ErrJobNotDone, se.Message)
	}
	return data, err
}

// RunResult fetches and decodes a scenario job's result.
func (c *Client) RunResult(ctx context.Context, id string) (*RunResult, error) {
	data, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	var r RunResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// SweepResult fetches and decodes a sweep job's result.
func (c *Client) SweepResult(ctx context.Context, id string) (*SweepResult, error) {
	data, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	var r SweepResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Metrics fetches the daemon's counters.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.getJSON(ctx, "/metrics", &m)
	return m, err
}

// Specs fetches the registry listings.
func (c *Client) Specs(ctx context.Context) (Specs, error) {
	var s Specs
	err := c.getJSON(ctx, "/v1/specs", &s)
	return s, err
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy(ctx context.Context) bool {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return true
}
