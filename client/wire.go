// Package client is the Go client for the dtnsimd simulation service:
// the wire types of the /v1 REST API plus a small HTTP client that
// submits jobs, polls them, and fetches cached artifacts. The server
// (internal/server) marshals exactly these types, so the two sides
// cannot drift; cmd/dtnsim's -remote mode is a thin layer over this
// package.
//
// Every result body is deterministic: the server renders results into
// a canonical JSON/CSV form (sorted delivery lists, NaN as null, fixed
// field order) and caches the bytes, so resubmitting the same spec and
// seed returns byte-identical responses — across daemon restarts too.
package client

import "encoding/json"

// Job states reported by the service. A job moves pending → running →
// one of the three terminal states; a cache hit is born StateDone.
const (
	StatePending   = "pending"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job kinds. The kind prefixes the job id ("sc-…", "sw-…"), so an id
// alone is enough to locate a cached result after a restart.
const (
	KindScenario = "scenario"
	KindSweep    = "sweep"
)

// SubmitRequest is the POST /v1/jobs body: exactly one of Scenario and
// Sweep set to a spec document in the dtnsim JSON scenario/sweep
// format. Specs are validated strictly server-side (unknown fields
// rejected, registry specs resolved) before a job id is issued.
type SubmitRequest struct {
	Scenario json.RawMessage `json:"scenario,omitempty"`
	Sweep    json.RawMessage `json:"sweep,omitempty"`
}

// SubmitResponse acknowledges a submission. The job id is
// deterministic — "<kind prefix>-<canonical key>" — so resubmitting an
// equivalent spec (any JSON spelling, any worker count) yields the
// same id and, once computed, the same cached result bytes.
type SubmitResponse struct {
	JobID string `json:"job_id"`
	Kind  string `json:"kind"`
	// Key is the spec's canonical content key (hex SHA-256 of the
	// normalized spec JSON, seed included).
	Key string `json:"key"`
	// Cached reports that the result was already on disk: the job is
	// born done and no simulation ran.
	Cached bool   `json:"cached"`
	State  string `json:"state"`
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	JobID string `json:"job_id"`
	Kind  string `json:"kind"`
	Key   string `json:"key"`
	State string `json:"state"`
	// Error carries the failure (or cancellation) message for terminal
	// non-done states.
	Error string `json:"error,omitempty"`
	// Cached reports the job was satisfied from the result cache.
	Cached bool `json:"cached,omitempty"`
}

// Terminal reports whether the state is one a waiter can stop on.
func (s JobStatus) Terminal() bool {
	return s.State == StateDone || s.State == StateFailed || s.State == StateCancelled
}

// Delivery is one delivered bundle in a RunResult, identified by its
// origin node and per-source sequence number. The list is sorted by
// (src, seq) so result bodies are byte-stable.
type Delivery struct {
	Src int     `json:"src"`
	Seq int     `json:"seq"`
	At  float64 `json:"at"`
}

// RunResult is a single scenario run's result — core.Result in a
// deterministic wire shape (the delivery map becomes a sorted list).
type RunResult struct {
	Protocol          string     `json:"protocol"`
	Generated         int        `json:"generated"`
	Delivered         int        `json:"delivered"`
	DeliveryRatio     float64    `json:"delivery_ratio"`
	Completed         bool       `json:"completed"`
	Makespan          float64    `json:"makespan"`
	MeanDelay         float64    `json:"mean_delay"`
	DelayP50          float64    `json:"delay_p50"`
	DelayP95          float64    `json:"delay_p95"`
	MeanOccupancy     float64    `json:"mean_occupancy"`
	MeanDuplication   float64    `json:"mean_duplication"`
	ControlRecords    int64      `json:"control_records"`
	DataTransmissions int64      `json:"data_transmissions"`
	Refused           int64      `json:"refused"`
	Evicted           int64      `json:"evicted"`
	Expired           int64      `json:"expired"`
	ByteDropped       int64      `json:"byte_dropped"`
	FinishedAt        float64    `json:"finished_at"`
	Deliveries        []Delivery `json:"deliveries,omitempty"`
	FinalOccupancy    []float64  `json:"final_occupancy,omitempty"`
	FinalBuffered     []int      `json:"final_buffered,omitempty"`
}

// SweepPoint is one averaged (load, protocol) measurement. Values maps
// metric name → run-averaged value; a null value encodes NaN (the
// delay metric when no run completed), which JSON cannot carry as a
// number.
type SweepPoint struct {
	Load      int                 `json:"load"`
	Values    map[string]*float64 `json:"values"`
	Completed int                 `json:"completed"`
	Runs      int                 `json:"runs"`
}

// SweepSeries is one protocol's curve across loads.
type SweepSeries struct {
	Label  string       `json:"label"`
	Points []SweepPoint `json:"points"`
}

// SweepResult is a finished sweep — experiment.Result in wire shape.
type SweepResult struct {
	Scenario string        `json:"scenario"`
	Loads    []int         `json:"loads"`
	Series   []SweepSeries `json:"series"`
}

// Metrics is the GET /metrics body: the job manager's counters.
// Executed counts simulations actually run; the cache-hit determinism
// test pins it while resubmitting.
type Metrics struct {
	Submitted int64 `json:"submitted"`
	CacheHits int64 `json:"cache_hits"`
	Executed  int64 `json:"executed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Pending   int64 `json:"pending"`
	Running   int64 `json:"running"`
}

// SpecInfo documents one registered spec name.
type SpecInfo struct {
	Name  string `json:"name"`
	Usage string `json:"usage"`
}

// Specs is the GET /v1/specs body: everything a client can put in a
// scenario's mobility/protocol/drop fields.
type Specs struct {
	Protocols    []SpecInfo `json:"protocols"`
	Mobility     []SpecInfo `json:"mobility"`
	DropPolicies []string   `json:"drop_policies"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
}
