package dtnsim_test

// Property tests for the canonical content keys (canonical.go): a key
// must be invariant under every non-semantic respelling of a spec —
// JSON key order, whitespace, spec-parameter order, worker count — and
// distinct under every semantic field change. These two properties are
// what make the key safe as a result-cache address (DESIGN.md §11):
// invariance gives cache hits for equal runs, distinctness rules out
// serving one run's results for another.

import (
	"strings"
	"testing"

	"dtnsim"
)

// keyScenario is the reference scenario every mutation test perturbs.
func keyScenario() dtnsim.Scenario {
	return dtnsim.Scenario{
		Name:         "ref",
		Mobility:     "cambridge:seed=7",
		Protocol:     "pq:p=0.8,q=0.5",
		Flows:        []dtnsim.Flow{{Src: 0, Dst: 7, Count: 25}},
		BufferCap:    20,
		TxTime:       50,
		Seed:         42,
		Bandwidth:    50000,
		BundleSize:   1 << 20,
		BufferBytes:  5 << 20,
		DropPolicy:   "dropfront",
		ControlBytes: 16,
	}
}

func mustKey(t *testing.T, s dtnsim.Scenario) string {
	t.Helper()
	k, err := s.CanonicalKey()
	if err != nil {
		t.Fatalf("CanonicalKey: %v", err)
	}
	return k
}

func TestScenarioKeyInvariantUnderJSONPermutation(t *testing.T) {
	ref := mustKey(t, keyScenario())
	// The same run spelled with permuted JSON key order, permuted
	// whitespace, and permuted spec parameters (q before p; explicit
	// default anti omitted) must map to the same key.
	respellings := []string{
		`{
		  "seed": 42, "protocol": "pq:q=0.5,p=0.8",
		  "flows": [ {"count":25, "dst":7, "src":0} ],
		  "mobility":"cambridge:seed=7",
		  "drop":"dropfront","bufbytes":5242880,"size":1048576,"bw":50000,
		  "ctlbytes":16,"tx_time":50,"buffer_cap":20,"name":"ref"}`,
		"{\"name\":\"ref\",\"tx_time\":50,\"buffer_cap\":20,\"ctlbytes\":16,\n\t\"bw\":5e4,\"size\":1048576,\"bufbytes\":5242880,\"drop\":\"dropfront\",\n\t\"protocol\":\"pq:p=0.8,q=0.5\",\"mobility\":\"cambridge:seed=7\",\n\t\"flows\":[{\"src\":0,\"dst\":7,\"count\":25}],\"seed\":42}",
	}
	for i, raw := range respellings {
		sc, err := dtnsim.ParseScenario([]byte(raw))
		if err != nil {
			t.Fatalf("respelling %d does not parse: %v", i, err)
		}
		if got := mustKey(t, sc); got != ref {
			t.Errorf("respelling %d changed the key:\n got %s\nwant %s", i, got, ref)
		}
	}
}

func TestScenarioKeyDistinctUnderSemanticChange(t *testing.T) {
	ref := keyScenario()
	refKey := mustKey(t, ref)
	mutations := map[string]func(*dtnsim.Scenario){
		"name":        func(s *dtnsim.Scenario) { s.Name = "other" },
		"mobility":    func(s *dtnsim.Scenario) { s.Mobility = "cambridge:seed=8" },
		"protocol":    func(s *dtnsim.Scenario) { s.Protocol = "pq:p=0.8,q=0.6" },
		"flow-src":    func(s *dtnsim.Scenario) { s.Flows[0].Src = 1 },
		"flow-dst":    func(s *dtnsim.Scenario) { s.Flows[0].Dst = 6 },
		"flow-count":  func(s *dtnsim.Scenario) { s.Flows[0].Count = 26 },
		"flow-start":  func(s *dtnsim.Scenario) { s.Flows[0].StartAt = 10 },
		"flow-size":   func(s *dtnsim.Scenario) { s.Flows[0].Size = 9 },
		"extra-flow":  func(s *dtnsim.Scenario) { s.Flows = append(s.Flows, dtnsim.Flow{Src: 2, Dst: 3, Count: 1}) },
		"buffer-cap":  func(s *dtnsim.Scenario) { s.BufferCap = 21 },
		"tx-time":     func(s *dtnsim.Scenario) { s.TxTime = 51 },
		"sample":      func(s *dtnsim.Scenario) { s.SampleEvery = 500 },
		"records":     func(s *dtnsim.Scenario) { s.RecordsPerSlot = 5 },
		"horizon":     func(s *dtnsim.Scenario) { s.Horizon = 1000 },
		"seed":        func(s *dtnsim.Scenario) { s.Seed = 43 },
		"to-horizon":  func(s *dtnsim.Scenario) { s.RunToHorizon = true },
		"bandwidth":   func(s *dtnsim.Scenario) { s.Bandwidth = 50001 },
		"bundle-size": func(s *dtnsim.Scenario) { s.BundleSize = 1<<20 + 1 },
		"buf-bytes":   func(s *dtnsim.Scenario) { s.BufferBytes = 5<<20 + 1 },
		"drop":        func(s *dtnsim.Scenario) { s.DropPolicy = "droprandom" },
		"ctl-bytes":   func(s *dtnsim.Scenario) { s.ControlBytes = 17 },
	}
	seen := map[string]string{refKey: "reference"}
	for name, mutate := range mutations {
		s := keyScenario()
		s.Flows = append([]dtnsim.Flow(nil), keyScenario().Flows...)
		mutate(&s)
		k := mustKey(t, s)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q: key %s", name, prev, k)
			continue
		}
		seen[k] = name
	}
}

// TestShardsNeverEnterKey pins Shards as a pure execution knob: like
// Workers, every shard count computes bit-identical results (the
// DESIGN.md §12 contract), so shards=1 and shards=8 must collapse to
// the same cache address — a sharded re-submission of a cached run is
// answered without re-simulating.
func TestShardsNeverEnterKey(t *testing.T) {
	ref := mustKey(t, keyScenario())
	for _, k := range []int{1, 8} {
		s := keyScenario()
		s.Shards = k
		if got := mustKey(t, s); got != ref {
			t.Errorf("Shards=%d changed the scenario key: %s vs %s", k, got, ref)
		}
	}
	sweepRef := mustSweepKey(t, keySweep())
	for _, k := range []int{1, 8} {
		s := keySweep()
		s.Scenario.Shards = k
		if got := mustSweepKey(t, s); got != sweepRef {
			t.Errorf("Scenario.Shards=%d changed the sweep key: %s vs %s", k, got, sweepRef)
		}
	}
	// And the JSON spelling round-trips: a submitted scenario that asks
	// for 8 shards parses, keys identically, and its normalized form
	// drops the knob.
	raw := `{"mobility":"cambridge:seed=7","protocol":"pq:p=0.8,q=0.5",
	  "flows":[{"src":0,"dst":7,"count":25}],"buffer_cap":20,"tx_time":50,
	  "seed":42,"bw":50000,"size":1048576,"bufbytes":5242880,
	  "drop":"dropfront","ctlbytes":16,"name":"ref","shards":8}`
	sc, err := dtnsim.ParseScenario([]byte(raw))
	if err != nil {
		t.Fatalf("sharded scenario does not parse: %v", err)
	}
	if got := mustKey(t, sc); got != ref {
		t.Errorf("JSON shards spelling changed the key: %s vs %s", got, ref)
	}
	norm, err := sc.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Shards != 0 {
		t.Errorf("Normalize kept Shards=%d, want 0", norm.Shards)
	}
}

func TestScenarioKeyMatchesNormalizedForm(t *testing.T) {
	s := keyScenario()
	norm, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if k1, k2 := mustKey(t, s), mustKey(t, norm); k1 != k2 {
		t.Errorf("normalizing changed the key: %s vs %s", k1, k2)
	}
	if _, err := (dtnsim.Scenario{Mobility: "cambridge"}).CanonicalKey(); err == nil {
		t.Error("CanonicalKey accepted an invalid scenario (no protocol, no flows)")
	}
}

// keySweep is the reference sweep the mutation tests perturb.
func keySweep() dtnsim.SweepSpec {
	return dtnsim.SweepSpec{
		Name: "ref",
		Scenario: dtnsim.Scenario{
			Mobility:  "cambridge",
			Seed:      2012,
			TxTime:    25,
			BufferCap: 20,
		},
		Protocols: []dtnsim.ProtocolSpec{"pure", "ttl:300"},
		Loads:     []int{5, 10},
		Runs:      2,
		Metrics:   []dtnsim.Metric{dtnsim.MetricDelivery},
	}
}

func mustSweepKey(t *testing.T, s dtnsim.SweepSpec) string {
	t.Helper()
	k, err := s.CanonicalKey()
	if err != nil {
		t.Fatalf("SweepSpec.CanonicalKey: %v", err)
	}
	return k
}

func TestSweepKeyInvariants(t *testing.T) {
	ref := mustSweepKey(t, keySweep())

	// Workers is an execution knob: the grid's results are bit-identical
	// for every value (PR-1 contract), so it must not enter the key.
	workers := keySweep()
	workers.Workers = 7
	if got := mustSweepKey(t, workers); got != ref {
		t.Errorf("Workers changed the key: %s vs %s", got, ref)
	}

	// Template fields the harness ignores must not enter the key.
	ignored := keySweep()
	ignored.Scenario.Protocol = "pure"
	ignored.Scenario.Flows = []dtnsim.Flow{{Src: 0, Dst: 1, Count: 1}}
	ignored.Scenario.RunToHorizon = true
	if got := mustSweepKey(t, ignored); got != ref {
		t.Errorf("ignored template fields changed the key: %s vs %s", got, ref)
	}

	// Harness defaults spelled explicitly must equal the elided form.
	elided := keySweep()
	elided.Loads, elided.Runs, elided.Metrics = nil, 0, nil
	explicit := keySweep()
	explicit.Loads, explicit.Runs, explicit.Metrics = dtnsim.DefaultLoads(), 10, dtnsim.AllMetrics()
	if k1, k2 := mustSweepKey(t, elided), mustSweepKey(t, explicit); k1 != k2 {
		t.Errorf("explicit defaults changed the key: %s vs %s", k1, k2)
	}

	// Default labels spelled explicitly must equal the elided form, and
	// a JSON respelling with permuted keys must hit the same key.
	raw := `{"runs":2,"loads":[ 5, 10 ],"metrics":["delivery"],
	  "protocols":["pure","ttl:300"],"name":"ref",
	  "scenario":{"buffer_cap":20,"tx_time":25,"seed":2012,"mobility":"cambridge"}}`
	sp, err := dtnsim.ParseSweepSpec([]byte(raw))
	if err != nil {
		t.Fatalf("respelled sweep does not parse: %v", err)
	}
	if got := mustSweepKey(t, sp); got != ref {
		t.Errorf("JSON respelling changed the key: %s vs %s", got, ref)
	}
}

func TestSweepKeyDistinctUnderSemanticChange(t *testing.T) {
	refKey := mustSweepKey(t, keySweep())
	mutations := map[string]func(*dtnsim.SweepSpec){
		"name":      func(s *dtnsim.SweepSpec) { s.Name = "other" },
		"mobility":  func(s *dtnsim.SweepSpec) { s.Scenario.Mobility = "subscriber" },
		"seed":      func(s *dtnsim.SweepSpec) { s.Scenario.Seed = 2013 },
		"tx-time":   func(s *dtnsim.SweepSpec) { s.Scenario.TxTime = 26 },
		"buf-cap":   func(s *dtnsim.SweepSpec) { s.Scenario.BufferCap = 21 },
		"bandwidth": func(s *dtnsim.SweepSpec) { s.Scenario.Bandwidth = 1000 },
		"protocols": func(s *dtnsim.SweepSpec) { s.Protocols = []dtnsim.ProtocolSpec{"pure", "ttl:400"} },
		"order":     func(s *dtnsim.SweepSpec) { s.Protocols = []dtnsim.ProtocolSpec{"ttl:300", "pure"} },
		"labels":    func(s *dtnsim.SweepSpec) { s.Labels = []string{"A", "B"} },
		"loads":     func(s *dtnsim.SweepSpec) { s.Loads = []int{5, 15} },
		"runs":      func(s *dtnsim.SweepSpec) { s.Runs = 3 },
		"metrics":   func(s *dtnsim.SweepSpec) { s.Metrics = []dtnsim.Metric{dtnsim.MetricDelay} },
	}
	seen := map[string]string{refKey: "reference"}
	for name, mutate := range mutations {
		s := keySweep()
		s.Protocols = append([]dtnsim.ProtocolSpec(nil), keySweep().Protocols...)
		s.Loads = append([]int(nil), keySweep().Loads...)
		mutate(&s)
		k := mustSweepKey(t, s)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q: key %s", name, prev, k)
			continue
		}
		seen[k] = name
	}
}

func TestSweepNormalizeIdempotent(t *testing.T) {
	norm, err := keySweep().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	again, err := norm.Normalize()
	if err != nil {
		t.Fatalf("normalized sweep does not re-normalize: %v", err)
	}
	b1, _ := norm.JSON()
	b2, _ := again.JSON()
	if string(b1) != string(b2) {
		t.Errorf("Normalize not idempotent:\n first %s\n again %s", b1, b2)
	}
	if len(norm.Loads) != 2 || norm.Runs != 2 || norm.Workers != 0 {
		t.Errorf("normalized sweep knobs wrong: loads=%v runs=%d workers=%d",
			norm.Loads, norm.Runs, norm.Workers)
	}
	// A sweep leaning on the harness defaults normalizes to their
	// explicit spellings.
	bare := dtnsim.SweepSpec{
		Scenario:  dtnsim.Scenario{Mobility: "cambridge"},
		Protocols: []dtnsim.ProtocolSpec{"pure"},
	}
	bnorm, err := bare.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(bnorm.Loads) != 10 || bnorm.Runs != 10 || len(bnorm.Metrics) != 5 {
		t.Errorf("default-elided sweep did not normalize to explicit defaults: loads=%v runs=%d metrics=%v",
			bnorm.Loads, bnorm.Runs, bnorm.Metrics)
	}
	if data, _ := bnorm.JSON(); !strings.Contains(string(data), `"loads"`) {
		t.Errorf("normalized form should spell loads explicitly:\n%s", data)
	}
}
