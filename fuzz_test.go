package dtnsim_test

// Fuzzers for the public JSON boundaries, alongside the spec-grammar
// fuzzers in internal/protocol and internal/mobility: arbitrary bytes
// must never panic ParseScenario/ParseSweepSpec, and any accepted value
// must be a fixed point of canonical re-marshalling — parse(marshal(x))
// == x, so files survive round trips through tooling bit-identically.

import (
	"reflect"
	"testing"

	"dtnsim"
)

func FuzzParseScenario(f *testing.F) {
	seeds := []string{
		`{"mobility":"cambridge","protocol":"pure","flows":[{"src":0,"dst":1,"count":1}]}`,
		`{"mobility":"subscriber:seed=3","protocol":"pq:p=0.8,q=0.5,anti",
		  "flows":[{"src":1,"dst":3,"count":7,"start_at":50,"size":1048576}],
		  "buffer_cap":20,"tx_time":25,"seed":9,"run_to_horizon":true,
		  "bw":50000,"size":524288,"bufbytes":5242880,"drop":"dropfront","ctlbytes":64}`,
		`{"mobility":"interval:max=2000","protocol":"ttl:300","flows":[{"src":0,"dst":7,"count":25}],"drop":"droprandom","bufbytes":1}`,
		`{"mobility":"trace:/no/such/file","protocol":"ecttl","flows":[{"src":0,"dst":1,"count":1}]}`,
		`{}`,
		`[]`,
		`{"mobility":"cambridge"`,
		"\x00\xff garbage",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := dtnsim.ParseScenario(data)
		if err != nil {
			return // rejected input: only a panic is a failure
		}
		out, err := sc.JSON()
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		back, err := dtnsim.ParseScenario(out)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(back, sc) {
			t.Fatalf("re-marshal is not a fixed point:\n got: %+v\nwant: %+v", back, sc)
		}
		// A parseable scenario must normalize, and normalization must be
		// idempotent (canonical specs re-normalize to themselves).
		norm, err := sc.Normalize()
		if err != nil {
			t.Fatalf("accepted scenario does not normalize: %v", err)
		}
		again, err := norm.Normalize()
		if err != nil {
			t.Fatalf("normalized scenario does not re-normalize: %v", err)
		}
		if !reflect.DeepEqual(again, norm) {
			t.Fatalf("Normalize not idempotent:\n got: %+v\nwant: %+v", again, norm)
		}
	})
}

func FuzzParseSweepSpec(f *testing.F) {
	seeds := []string{
		`{"scenario":{"mobility":"cambridge"},"protocols":["pure"]}`,
		`{"name":"x","scenario":{"mobility":"subscriber","seed":2012,"tx_time":25,"buffer_cap":20,
		  "bw":3000,"size":1048576,"bufbytes":5242880,"drop":"droprandom","ctlbytes":16},
		  "protocols":["pure","ttl:300"],"labels":["Pure","TTL"],
		  "loads":[5,10],"runs":2,"metrics":["delivery","occupancy"],"workers":2}`,
		`{"scenario":{"mobility":"interval:max=400"},"protocols":["ecttl"],"metrics":["warp"]}`,
		`{"scenario":{"mobility":"cambridge","sample_every":5},"protocols":["pure"]}`,
		`{"protocols":[]}`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := dtnsim.ParseSweepSpec(data)
		if err != nil {
			return
		}
		out, err := spec.JSON()
		if err != nil {
			t.Fatalf("accepted sweep does not marshal: %v", err)
		}
		back, err := dtnsim.ParseSweepSpec(out)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Fatalf("re-marshal is not a fixed point:\n got: %+v\nwant: %+v", back, spec)
		}
		// An accepted sweep must still compile (ParseSweepSpec validated
		// it once; the canonical form must not lose that).
		if _, err := back.Compile(); err != nil {
			t.Fatalf("canonical sweep does not compile: %v", err)
		}
	})
}
