// Benchmark harness: one benchmark per figure and table in the paper's
// evaluation section (§V). Each benchmark regenerates its experiment at
// a reduced run count (3 instead of the paper's 10 — pass -benchruns in
// spirit by editing benchRuns) and reports headline series values via
// b.ReportMetric, so `go test -bench=.` both times the harness and
// emits the numbers EXPERIMENTS.md records. cmd/figures runs the same
// experiments at full fidelity with CSV output.
package dtnsim_test

import (
	"context"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"dtnsim"
	"dtnsim/internal/dist"
)

// benchRuns trades precision for speed in benchmarks; cmd/figures uses
// the paper's 10.
const benchRuns = 3

const benchSeed = 2012

// runFigure executes a figure's sweep sequentially (Workers: 1) once
// per benchmark iteration and reports the value of the figure's metric
// at the lowest and highest load for every series. The sequential pool
// keeps timings comparable with pre-parallel-harness records; the
// *Parallel variants below time the same sweeps on all CPUs, so the
// recorded pair documents the worker-pool speedup.
func runFigure(b *testing.B, id string) {
	b.Helper()
	runFigureWorkers(b, id, 1)
}

// runFigureWorkers is runFigure with an explicit Sweep.Workers value
// (0 = all CPUs). Metric values are identical for every worker count;
// only the wall clock changes.
func runFigureWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	f, err := dtnsim.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	f.Sweep.Runs = benchRuns
	f.Sweep.BaseSeed = benchSeed
	f.Sweep.Workers = workers
	var res *dtnsim.SweepResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = dtnsim.RunSweep(f.Sweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, s := range res.Series {
		first := s.Points[0].Values[f.Metric]
		last := s.Points[len(s.Points)-1].Values[f.Metric]
		tag := metricTag(s.Label)
		if !math.IsNaN(first) {
			b.ReportMetric(first, fmt.Sprintf("%s@load%d", tag, s.Points[0].Load))
		}
		if !math.IsNaN(last) {
			b.ReportMetric(last, fmt.Sprintf("%s@load%d", tag, s.Points[len(s.Points)-1].Load))
		}
	}
}

// metricTag compresses a protocol label into a benchmark-metric-safe tag.
func metricTag(label string) string {
	r := strings.NewReplacer(
		"Epidemic with ", "",
		"P-Q epidemic (anti-packets)", "pq-anti",
		"P-Q epidemic", "pq",
		"cumulative immunity", "cumimm",
		"dynamic TTL", "dynttl",
		" ", "",
		"=", "",
	)
	return strings.ToLower(r.Replace(label))
}

// Figures 7–13 and 15–20 plus the overhead comparison: §V's full set.

func BenchmarkFig07DelayTrace(b *testing.B)          { runFigure(b, "fig07") }
func BenchmarkFig08DelayRWP(b *testing.B)            { runFigure(b, "fig08") }
func BenchmarkFig09DupTrace(b *testing.B)            { runFigure(b, "fig09") }
func BenchmarkFig10DupRWP(b *testing.B)              { runFigure(b, "fig10") }
func BenchmarkFig11BufTrace(b *testing.B)            { runFigure(b, "fig11") }
func BenchmarkFig12BufRWP(b *testing.B)              { runFigure(b, "fig12") }
func BenchmarkFig13DeliveryTrace(b *testing.B)       { runFigure(b, "fig13") }
func BenchmarkFig15DeliveryEnhancedRWP(b *testing.B) { runFigure(b, "fig15") }
func BenchmarkFig16DeliveryEnhancedTrace(b *testing.B) {
	runFigure(b, "fig16")
}
func BenchmarkFig17BufEnhancedRWP(b *testing.B)   { runFigure(b, "fig17") }
func BenchmarkFig18BufEnhancedTrace(b *testing.B) { runFigure(b, "fig18") }
func BenchmarkFig19DupEnhancedRWP(b *testing.B)   { runFigure(b, "fig19") }
func BenchmarkFig20DupEnhancedTrace(b *testing.B) { runFigure(b, "fig20") }
func BenchmarkOverheadImmunity(b *testing.B)      { runFigure(b, "overhead") }

// BenchmarkFig14IntervalSensitivity runs the paired controlled-interval
// scenarios (max gap 400 s vs 2000 s) and reports TTL=300 delivery for
// both, whose ratio is the paper's Fig. 14 headline.
func BenchmarkFig14IntervalSensitivity(b *testing.B) {
	short, long := dtnsim.Fig14Pair()
	short.Runs, long.Runs = benchRuns, benchRuns
	short.BaseSeed, long.BaseSeed = benchSeed, benchSeed
	var rs, rl *dtnsim.SweepResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs, err = dtnsim.RunSweep(short); err != nil {
			b.Fatal(err)
		}
		if rl, err = dtnsim.RunSweep(long); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	avg := func(r *dtnsim.SweepResult) float64 {
		sum := 0.0
		for _, p := range r.Series[0].Points {
			sum += p.Values[dtnsim.MetricDelivery]
		}
		return sum / float64(len(r.Series[0].Points))
	}
	b.ReportMetric(avg(rs), "delivery@interval400")
	b.ReportMetric(avg(rl), "delivery@interval2000")
}

// BenchmarkTableIIComparison regenerates the paper's closing table and
// reports the six protocols' load-averaged delivery rates. Workers: 1
// times the sequential reference path.
func BenchmarkTableIIComparison(b *testing.B) {
	benchmarkTableII(b, 1)
}

// BenchmarkTableIIComparisonParallel is the same computation on a
// worker pool sized to all CPUs; its wall clock against the sequential
// benchmark above records the sweep harness's parallel speedup.
func BenchmarkTableIIComparisonParallel(b *testing.B) {
	benchmarkTableII(b, 0)
}

func benchmarkTableII(b *testing.B, workers int) {
	b.Helper()
	var rows []dtnsim.TableIIRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = dtnsim.TableIIWorkers(benchSeed, benchRuns, workers)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		tag := metricTag(r.Protocol)
		b.ReportMetric(r.DeliveryTr, tag+"-delivery-trace-%")
		b.ReportMetric(r.OccupancyTr, tag+"-occupancy-trace-%")
	}
}

// Parallel variants of figure sweeps (same metrics, all-CPU worker
// pool): paired with their sequential counterparts they record the
// speedup in BENCH_*.json.

func BenchmarkFig07DelayTraceParallel(b *testing.B) { runFigureWorkers(b, "fig07", 0) }
func BenchmarkFig16DeliveryEnhancedTraceParallel(b *testing.B) {
	runFigureWorkers(b, "fig16", 0)
}
func BenchmarkFig19DupEnhancedRWPParallel(b *testing.B) { runFigureWorkers(b, "fig19", 0) }

// --- engine micro-benchmarks -------------------------------------------------
//
// These time the simulator's hot paths so regressions in the substrate
// are visible independently of experiment composition.

func BenchmarkEngineTraceRun(b *testing.B) {
	schedule, err := dtnsim.CambridgeTrace(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := dtnsim.Run(dtnsim.Config{
			Schedule:     schedule,
			Protocol:     dtnsim.Immunity(),
			Flows:        []dtnsim.Flow{{Src: 0, Dst: 7, Count: 50}},
			Seed:         uint64(i),
			RunToHorizon: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTraceRunCancellable is BenchmarkEngineTraceRun with a
// live (never-cancelled) Config.Context, so the benchguard pair
// "cancel-overhead" proves the scheduler's interrupt poll costs nothing
// measurable on the engine hot path.
func BenchmarkEngineTraceRunCancellable(b *testing.B) {
	schedule, err := dtnsim.CambridgeTrace(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := dtnsim.Run(dtnsim.Config{
			Schedule:     schedule,
			Protocol:     dtnsim.Immunity(),
			Flows:        []dtnsim.Flow{{Src: 0, Dst: 7, Count: 50}},
			Seed:         uint64(i),
			RunToHorizon: true,
			Context:      ctx,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContactHotPath times the contact-processing hot path at
// Table II scale: every registry protocol at the paper's highest load
// (50 bundles) over both Table II substrates (Cambridge trace and
// subscriber RWP), run to the horizon so purge/TTL/sampling stay active
// after the last delivery. This is the headline number BENCH_hotpath.json
// tracks for the allocation-free store/metrics/scheduler rework.
func BenchmarkContactHotPath(b *testing.B) {
	trace, err := dtnsim.CambridgeTrace(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	rwp, err := dtnsim.SubscriberRWP(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	schedules := []*dtnsim.Schedule{trace, rwp}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sched := range schedules {
			for _, p := range dtnsim.Protocols() {
				_, err := dtnsim.Run(dtnsim.Config{
					Schedule:     sched,
					Protocol:     p,
					Flows:        []dtnsim.Flow{{Src: 0, Dst: 7, Count: 50}},
					Seed:         benchSeed,
					RunToHorizon: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkContactHotPathConstrained is BenchmarkContactHotPath with
// the finite-bandwidth machinery active but never binding: 1-byte
// bundles under an effectively unbounded bandwidth and byte capacity.
// The event sequence is identical to the unconstrained benchmark, so
// the pair isolates the resource model's bookkeeping overhead;
// benchguard gates the ratio at <~10% (BENCH_hotpath.json pair
// "constrained-overhead").
func BenchmarkContactHotPathConstrained(b *testing.B) {
	trace, err := dtnsim.CambridgeTrace(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	rwp, err := dtnsim.SubscriberRWP(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	schedules := []*dtnsim.Schedule{trace, rwp}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sched := range schedules {
			for _, p := range dtnsim.Protocols() {
				_, err := dtnsim.Run(dtnsim.Config{
					Schedule:     sched,
					Protocol:     p,
					Flows:        []dtnsim.Flow{{Src: 0, Dst: 7, Count: 50, Size: 1}},
					Seed:         benchSeed,
					RunToHorizon: true,
					Bandwidth:    1e15,
					BufferBytes:  1 << 50,
					DropPolicy:   "dropfront",
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkSyntheticTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dtnsim.CambridgeTrace(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubscriberRWPGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dtnsim.SubscriberRWP(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sharded executor benchmarks ---------------------------------------------
//
// The benchguard sharded pairs time the same 5k-node constant-density
// RWP cell under different executors. Results are bit-identical for
// every shard count (the DESIGN.md §12 contract, proven by the golden
// equivalence suite), so the slow/fast ratios isolate executor cost:
// "sharded-overhead" gates the K=1 sharded path's epoch/effect-buffer
// bookkeeping against the sequential event loop, "sharded-speedup"
// floors the parallel win at one shard per CPU.

// runShardedBench times one 5k-node run per iteration through the
// executor selected by shards (core.Config semantics: 0 = sequential
// loop, K >= 1 = K worker shards). Scenario compilation — cheap next to
// the run, but allocating — happens off the clock so the measured op is
// the executor alone.
func runShardedBench(b *testing.B, shards int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg, err := dtnsim.Scenario{
			Mobility:     "rwp:nodes=5000,area=14142,span=2500,range=100,dt=25",
			Protocol:     "pure",
			Flows:        []dtnsim.Flow{{Src: 0, Dst: 4999, Count: 30}},
			Seed:         benchSeed,
			RunToHorizon: true,
			Shards:       shards,
		}.Compile()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := dtnsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedRun5kSequential(b *testing.B) { runShardedBench(b, 0) }

// BenchmarkShardedRun5kOneShard runs the sharded executor with a single
// worker: all of the epoch protocol (collection, chains, mailboxes,
// effect replay) and none of the parallelism.
func BenchmarkShardedRun5kOneShard(b *testing.B) { runShardedBench(b, 1) }

// BenchmarkShardedRun5k runs one shard per CPU. It skips below four
// cores — the machine-independent speedup gate is only meaningful when
// there is parallel hardware to win on — and the benchguard pair is
// marked optional so the skip does not fail the gate.
func BenchmarkShardedRun5k(b *testing.B) {
	if runtime.GOMAXPROCS(0) < 4 {
		b.Skip("sharded speedup needs 4+ cores")
	}
	runShardedBench(b, runtime.GOMAXPROCS(0))
}

// --- distributed executor benchmarks -----------------------------------------
//
// The benchguard dist pairs put numbers on the process boundary using
// the same 5k-node cell as the sharded pairs (results stay
// bit-identical, so the ratios isolate executor cost): "dist-overhead"
// gates one worker process against the in-process one-shard executor —
// the full serialization/IPC cost with no parallelism to pay for it —
// and "dist-speedup" floors the N-worker win over the sequential loop
// on machines with the cores to show one.

// distWorker builds cmd/dtnsim-worker once per benchmark binary; the
// benchmarks need a real worker executable, which `go test` does not
// provide, so they build it with the go toolchain and skip without one.
var distWorker struct {
	once sync.Once
	bin  string
	err  error
}

func distWorkerBin(b *testing.B) string {
	b.Helper()
	distWorker.once.Do(func() {
		goTool, err := exec.LookPath("go")
		if err != nil {
			distWorker.err = fmt.Errorf("no go toolchain to build dtnsim-worker: %w", err)
			return
		}
		dir, err := os.MkdirTemp("", "dtnsim-bench-worker-")
		if err != nil {
			distWorker.err = err
			return
		}
		bin := filepath.Join(dir, "dtnsim-worker")
		if out, err := exec.Command(goTool, "build", "-o", bin, "dtnsim/cmd/dtnsim-worker").CombinedOutput(); err != nil {
			distWorker.err = fmt.Errorf("building dtnsim-worker: %v\n%s", err, out)
			return
		}
		distWorker.bin = bin
	})
	if distWorker.err != nil {
		b.Skip(distWorker.err)
	}
	return distWorker.bin
}

// runDistBench times the 5k-node cell on worker processes. The workers
// are spawned once, off the clock — process startup is session setup,
// not per-run executor cost; Init/round framing is on the clock because
// Run drives it. fullSnapshots disables delta shipping, isolating the
// wire-size win of the state cache.
func runDistBench(b *testing.B, workers int, fullSnapshots bool) {
	b.Helper()
	be, err := dist.New(dist.Options{Workers: workers, Protocol: "pure", WorkerBin: distWorkerBin(b), FullSnapshots: fullSnapshots})
	if err != nil {
		b.Fatal(err)
	}
	defer be.Close()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg, err := dtnsim.Scenario{
			Mobility:     "rwp:nodes=5000,area=14142,span=2500,range=100,dt=25",
			Protocol:     "pure",
			Flows:        []dtnsim.Flow{{Src: 0, Dst: 4999, Count: 30}},
			Seed:         benchSeed,
			RunToHorizon: true,
		}.Compile()
		if err != nil {
			b.Fatal(err)
		}
		cfg.Backend = be
		b.StartTimer()
		if _, err := dtnsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistRun5kOneWorker runs one worker process: every item
// crosses the process boundary and nothing runs in parallel, so the
// ratio against BenchmarkShardedRun5kOneShard is the pure
// serialization/IPC overhead.
func BenchmarkDistRun5kOneWorker(b *testing.B) { runDistBench(b, 1, false) }

// BenchmarkDistRun5kOneWorkerFull is the same cell with delta shipping
// disabled: every round re-ships full node snapshots, as every round
// did before the state cache existed. The benchguard
// "dist-delta-overhead" pair gates the delta path's win against it.
func BenchmarkDistRun5kOneWorkerFull(b *testing.B) { runDistBench(b, 1, true) }

// BenchmarkDistRun5k runs one worker process per CPU. Like
// BenchmarkShardedRun5k it skips below four cores and its benchguard
// pair is optional, so the speedup floor gates only on machines with
// parallel hardware.
func BenchmarkDistRun5k(b *testing.B) {
	if runtime.GOMAXPROCS(0) < 4 {
		b.Skip("distributed speedup needs 4+ cores")
	}
	runDistBench(b, runtime.GOMAXPROCS(0), false)
}

// --- parameter ablations (§IV swept values and enhancement knobs) ------------

func BenchmarkAblationTTLSweep(b *testing.B)      { runFigure(b, "ttlsweep") }
func BenchmarkAblationPQSweep(b *testing.B)       { runFigure(b, "pqsweep") }
func BenchmarkAblationDynMultiplier(b *testing.B) { runFigure(b, "dynmult") }
func BenchmarkAblationECThreshold(b *testing.B)   { runFigure(b, "ecthresh") }
