// Package dtnsim is a discrete-event Delay-Tolerant-Network simulator
// reproducing Feng & Chin, "A Unified Study of Epidemic Routing
// Protocols and their Enhancements" (IEEE IPDPSW 2012).
//
// It provides, under one unified framework (§IV of the paper):
//
//   - every epidemic routing protocol the paper studies — pure epidemic,
//     P-Q epidemic, epidemic with constant TTL, with encounter count
//     (EC), and with immunity tables — plus the paper's three
//     enhancements: dynamic TTL, EC+TTL, and cumulative immunity;
//   - the paper's mobility substrates: a Cambridge/Haggle-style
//     encounter trace (synthetic generator plus a parser for real trace
//     files), the modified subscriber-point Random-WayPoint model,
//     classic RWP, and the Fig. 14 controlled-interval scenario;
//   - the experiment harness regenerating every figure and table in the
//     paper's evaluation (§V), with CSV and ASCII-chart output.
//
// # Quick start
//
//	schedule, err := dtnsim.CambridgeTrace(42)
//	if err != nil { ... }
//	result, err := dtnsim.Run(dtnsim.Config{
//		Schedule: schedule,
//		Protocol: dtnsim.DynamicTTL(),
//		Flows:    []dtnsim.Flow{{Src: 0, Dst: 7, Count: 25}},
//	})
//	fmt.Printf("delivered %d/%d in %v\n",
//		result.Delivered, result.Generated, result.Makespan)
//
// # Scenarios as data
//
// Every run is also definable declaratively: a Scenario names its
// mobility model and protocol by registry spec strings ("cambridge:seed=42",
// "pq:p=0.8,q=0.5"), round-trips through JSON, and compiles to the same
// Config — bit-identical results — via Compile/RunScenario. Sweeps
// serialize the same way through SweepSpec. The protocol and mobility
// constructors below are thin wrappers over the same registries, so the
// two styles never diverge.
//
//	sc, err := dtnsim.ParseScenario(jsonBytes)
//	if err != nil { ... }
//	result, err := dtnsim.RunScenario(sc)
//
// See DESIGN.md for the architecture and modelling decisions (the
// Scenario/registry/Observer design is §4), and EXPERIMENTS.md for the
// paper-versus-measured record of every figure.
package dtnsim

import (
	"io"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/core"
	"dtnsim/internal/mobility"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// Core simulation types, re-exported from the engine.
type (
	// Config describes one simulation run; see core.Config.
	Config = core.Config
	// Flow is one source→destination bundle stream.
	Flow = core.Flow
	// Result summarizes one run.
	Result = core.Result
	// Protocol is the routing-policy interface all variants implement.
	Protocol = protocol.Protocol
	// Schedule is a validated, time-ordered set of node contacts.
	Schedule = contact.Schedule
	// Contact is one encounter window between two nodes.
	Contact = contact.Contact
	// NodeID identifies a node (dense integers from zero).
	NodeID = contact.NodeID
	// BundleID identifies a bundle globally (origin node + sequence
	// number); observers receive it in every event.
	BundleID = bundle.ID
	// Time is virtual time in seconds.
	Time = sim.Time
	// ContactStats summarizes a schedule's encounter structure.
	ContactStats = contact.Stats
	// ContactSource is a pull-based contact stream: the engine consumes
	// one contact at a time, so contact-plan memory is the source's
	// working set (O(nodes) for every built-in mobility model) instead
	// of O(#contacts). Set it via Config.Source; a materialized
	// Schedule remains the back-compat alternative. All mobility
	// generators provide a Stream method returning one.
	ContactSource = contact.Source
)

// Engine defaults from the paper's methodology (§IV).
const (
	// DefaultBufferCap is the per-node buffer size in bundles.
	DefaultBufferCap = core.DefaultBufferCap
	// DefaultTxTime is the per-bundle transmission time in seconds.
	DefaultTxTime = core.DefaultTxTime
)

// Run executes one simulation run.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// AnalyzeSchedule computes encounter statistics (contact counts,
// durations, inter-contact intervals) for a schedule.
func AnalyzeSchedule(s *Schedule) ContactStats { return contact.Analyze(s) }

// AnalyzeContactSource computes the same statistics from a streaming
// source in one O(nodes + pairs)-memory pass, consuming it.
func AnalyzeContactSource(src ContactSource) (ContactStats, error) {
	return contact.AnalyzeSource(src)
}

// --- Protocols -------------------------------------------------------------

// The constructors below are thin wrappers over the protocol registry:
// each resolves the equivalent spec string, so Go callers and scenario
// files construct identical instances.

// mustProtocol resolves a built-in spec; failure is a programming error.
func mustProtocol(spec string) Protocol {
	f, err := protocol.Parse(spec)
	if err != nil {
		panic(err)
	}
	return f.New()
}

// Pure returns pure epidemic routing (Vahdat & Becker): flood everything,
// drop-tail when full. Spec: "pure".
func Pure() Protocol { return mustProtocol("pure") }

// PQ returns (p,q)-epidemic routing (Matsuda & Takine): sources forward
// with probability p, relays with probability q. It panics unless both
// lie in [0,1]; use ParseProtocolSpec("pq:p=…,q=…") for an
// error-returning boundary. Spec: "pq:p=P,q=Q".
func PQ(p, q float64) Protocol { return protocol.NewPQ(p, q) }

// PQWithAntiPackets returns P-Q epidemic with the §II anti-packet purge
// channel, the variant whose delay the paper reports as identical to
// immunity's at P=Q=1.
func PQWithAntiPackets(p, q float64) Protocol { return protocol.NewPQ(p, q).WithAntiPackets() }

// TTL returns epidemic routing with a constant time-to-live in seconds
// (Harras et al.); the paper's comparative experiments use 300. It
// panics on a non-positive TTL; use ParseProtocolSpec("ttl:…") for an
// error-returning boundary. Spec: "ttl:SECONDS".
func TTL(seconds float64) Protocol { return protocol.NewTTL(seconds) }

// DynamicTTL returns the paper's first enhancement (Algorithm 1): TTL
// set to twice the storing node's last inter-encounter interval.
// Spec: "dynttl".
func DynamicTTL() Protocol { return mustProtocol("dynttl") }

// EC returns epidemic routing with encounter counts (Davis et al.):
// buffer-full eviction of the most-transmitted copy. Spec: "ec".
func EC() Protocol { return mustProtocol("ec") }

// ECTTL returns the paper's second enhancement (Algorithm 2): EC with a
// minimum-EC eviction guard and EC-driven TTL ageing. Spec: "ecttl".
func ECTTL() Protocol { return mustProtocol("ecttl") }

// Immunity returns epidemic routing with per-bundle immunity tables
// (Mundur et al.). Spec: "immunity".
func Immunity() Protocol { return mustProtocol("immunity") }

// CumulativeImmunity returns the paper's third enhancement: the
// destination acknowledges the highest contiguous bundle prefix with a
// single table. Spec: "cumimmunity".
func CumulativeImmunity() Protocol { return mustProtocol("cumimmunity") }

// Protocols returns one instance of every protocol the paper evaluates,
// in the paper's order: the four §II families (P-Q at P=Q=1 standing in
// for pure epidemic as in §V) followed by the three §III enhancements.
// The instances are built from the registry's canonical specs (see
// BuiltinProtocolSpecs).
func Protocols() []Protocol {
	specs := protocol.BuiltinSpecs()
	out := make([]Protocol, len(specs))
	for i, s := range specs {
		out[i] = mustProtocol(s)
	}
	return out
}

// --- Mobility ---------------------------------------------------------------

// CambridgeTrace returns the synthetic Cambridge/Haggle iMote encounter
// trace used for all trace-based experiments: 12 nodes over 524,162
// virtual seconds with heavy-tailed inter-contact gaps (see DESIGN.md §3
// for the substitution rationale).
func CambridgeTrace(seed uint64) (*Schedule, error) {
	return mobility.SyntheticCambridge{Seed: seed}.Generate()
}

// SubscriberRWP returns the paper's modified Random-WayPoint mobility:
// nodes hopping between subscriber points in a 1 km² area over 600,000
// virtual seconds, contacts capped at 500 s.
func SubscriberRWP(seed uint64) (*Schedule, error) {
	return mobility.SubscriberPointRWP{Seed: seed}.Generate()
}

// Generator variants with all knobs exposed.
type (
	// SyntheticCambridge generates Cambridge-like encounter traces.
	SyntheticCambridge = mobility.SyntheticCambridge
	// SubscriberPointRWP is the paper's modified RWP model.
	SubscriberPointRWP = mobility.SubscriberPointRWP
	// ClassicRWP is textbook random waypoint with range detection.
	ClassicRWP = mobility.ClassicRWP
	// ControlledInterval is the Fig. 14 bounded-interval scenario.
	ControlledInterval = mobility.ControlledInterval
)

// ParseTrace reads an encounter trace ("nodeA nodeB start end" lines,
// CRAWDAD Haggle-style); see mobility.ParseTrace for the format.
func ParseTrace(r io.Reader) (*Schedule, error) { return mobility.ParseTrace(r) }

// WriteTrace writes a schedule in the format ParseTrace reads.
func WriteTrace(w io.Writer, s *Schedule) error { return mobility.WriteTrace(w, s) }

// OpenTraceSource streams a trace file from disk as a ContactSource in
// O(1) memory (two sequential passes; see mobility.OpenTraceSource).
func OpenTraceSource(path string) (ContactSource, error) { return mobility.OpenTraceSource(path) }

// MaterializeSource drains a ContactSource into a validated Schedule,
// for callers that need random access (analysis, trace export). Runs
// never need it: pass the source to Config.Source instead.
func MaterializeSource(src ContactSource) (*Schedule, error) { return contact.Materialize(src) }
