// Package bundle defines DTN bundles (the message unit of the Bundle
// Protocol and of the paper), per-node copy state, and the summary-vector
// set algebra used by anti-entropy sessions.
//
// A Bundle is the immutable identity of a message; a Copy is one node's
// buffered instance of it, carrying the mutable metadata the protocols
// manipulate: encounter count (EC) and TTL deadline.
package bundle

import (
	"fmt"
	"sort"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// ID identifies a bundle globally: the originating node plus a sequence
// number within that origin's flow. The paper numbers the single flow's
// bundles 1..k; Seq preserves that numbering so cumulative immunity can
// acknowledge contiguous prefixes.
type ID struct {
	Src contact.NodeID
	Seq int
}

func (id ID) String() string { return fmt.Sprintf("b(%d:%d)", id.Src, id.Seq) }

// Less orders IDs by (Src, Seq); used to produce deterministic iteration
// order everywhere sets are materialized.
func (id ID) Less(o ID) bool {
	if id.Src != o.Src {
		return id.Src < o.Src
	}
	return id.Seq < o.Seq
}

// Meta carries a bundle's resource attributes: the knobs the
// finite-bandwidth contact model budgets against. The zero value is the
// legacy resource-less model, under which transfers consume only link
// slots and buffers only count copies.
type Meta struct {
	// Size is the bundle's payload size in bytes. Zero means size-less:
	// the bundle costs nothing against contact byte budgets or buffer
	// byte capacities.
	Size int64
}

// Bundle is the immutable description of a message.
type Bundle struct {
	ID        ID
	Dst       contact.NodeID
	CreatedAt sim.Time
	// Meta holds the bundle's resource attributes (payload size). Like
	// the rest of Bundle it is immutable after creation.
	Meta Meta
	// FirstSeq is the lowest sequence number any flow with this bundle's
	// (Src, Dst) pair uses — 1 for the paper's single-flow workloads,
	// higher when flows to other destinations occupy the source's earlier
	// sequence blocks. Cumulative immunity keys its tables by that pair
	// and uses FirstSeq to anchor contiguous-prefix acknowledgements; an
	// anchor above the pair's lowest block would falsely cover undelivered
	// bundles. A zero value (hand-built bundles) is treated as 1.
	FirstSeq int
}

// Copy is one node's buffered instance of a bundle.
type Copy struct {
	Bundle *Bundle
	// EC is the encounter count attached to this copy: the number of
	// times this copy's lineage has been transmitted (paper §II, Davis
	// et al.). The receiver inherits the sender's incremented value.
	EC int
	// Expiry is the sim time at which this copy's TTL lapses;
	// sim.Infinity means no TTL is set.
	Expiry sim.Time
	// StoredAt records when this node buffered the copy.
	StoredAt sim.Time
	// Pinned marks self-originated bundles at their source: never
	// evicted and exempt from the capacity check (DESIGN.md §3.3).
	Pinned bool
}

// Expired reports whether the copy's TTL has lapsed at time now.
func (c *Copy) Expired(now sim.Time) bool { return c.Expiry <= now }

// Clone returns a copy of c suitable for handing to a receiving node.
// The Bundle pointer is shared (identity is immutable); mutable state is
// duplicated, and Pinned never propagates.
func (c *Copy) Clone(now sim.Time) *Copy {
	return &Copy{Bundle: c.Bundle, EC: c.EC, Expiry: c.Expiry, StoredAt: now}
}

// SummaryVector is a set of bundle IDs. Pure epidemic calls it the
// summary vector; the immunity protocol calls the same structure the
// m-list. The zero value is not usable; call NewSummaryVector.
//
// Alongside the membership map the vector keeps a sorted-slice index,
// maintained incrementally on Add/Remove, so ordered traversal (Range,
// Items, Diff) never re-sorts — immunity-table transfers run it on
// every contact.
type SummaryVector struct {
	ids map[ID]struct{}
	// order holds the member IDs in ascending (Src, Seq) order.
	order []ID
}

// NewSummaryVector returns an empty vector.
func NewSummaryVector() *SummaryVector {
	return &SummaryVector{ids: make(map[ID]struct{})}
}

// searchIdx returns id's position in the sorted index, or the position
// it would be inserted at.
func (v *SummaryVector) searchIdx(id ID) int {
	return sort.Search(len(v.order), func(i int) bool { return !v.order[i].Less(id) })
}

// Add inserts id, reporting whether it was newly added.
func (v *SummaryVector) Add(id ID) bool {
	if _, ok := v.ids[id]; ok {
		return false
	}
	v.ids[id] = struct{}{}
	i := v.searchIdx(id)
	v.order = append(v.order, ID{})
	copy(v.order[i+1:], v.order[i:])
	v.order[i] = id
	return true
}

// Remove deletes id from the vector.
func (v *SummaryVector) Remove(id ID) {
	if _, ok := v.ids[id]; !ok {
		return
	}
	delete(v.ids, id)
	i := v.searchIdx(id)
	v.order = append(v.order[:i], v.order[i+1:]...)
}

// Has reports membership.
func (v *SummaryVector) Has(id ID) bool {
	_, ok := v.ids[id]
	return ok
}

// Len returns the number of IDs in the vector.
func (v *SummaryVector) Len() int { return len(v.ids) }

// Range calls fn for every member in ascending (Src, Seq) order,
// stopping early if fn returns false. It allocates nothing. The vector
// must not be mutated during the iteration.
func (v *SummaryVector) Range(fn func(ID) bool) {
	for _, id := range v.order {
		if !fn(id) {
			return
		}
	}
}

// Items returns a fresh slice of the IDs in deterministic (Src, Seq)
// order. Hot paths should prefer Range, which does not allocate.
func (v *SummaryVector) Items() []ID {
	return append([]ID(nil), v.order...)
}

// Diff returns the IDs present in v but absent from other, in
// deterministic order. This is the anti-entropy "what you are missing"
// computation from Vahdat & Becker.
func (v *SummaryVector) Diff(other *SummaryVector) []ID {
	out := make([]ID, 0)
	for _, id := range v.order {
		if !other.Has(id) {
			out = append(out, id)
		}
	}
	return out
}

// Union merges other into v, reporting how many IDs were new. Members
// are merged in ascending order, keeping the index insertions cheap.
func (v *SummaryVector) Union(other *SummaryVector) int {
	added := 0
	for _, id := range other.order {
		if v.Add(id) {
			added++
		}
	}
	return added
}

// Clone returns an independent copy of the vector.
func (v *SummaryVector) Clone() *SummaryVector {
	out := &SummaryVector{
		ids:   make(map[ID]struct{}, len(v.ids)),
		order: append([]ID(nil), v.order...),
	}
	for id := range v.ids {
		out.ids[id] = struct{}{}
	}
	return out
}
