package bundle

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dtnsim/internal/sim"
)

func TestIDOrdering(t *testing.T) {
	cases := []struct {
		a, b ID
		less bool
	}{
		{ID{0, 1}, ID{0, 2}, true},
		{ID{0, 2}, ID{0, 1}, false},
		{ID{1, 0}, ID{2, 0}, true},
		{ID{1, 5}, ID{1, 5}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestCopyExpiry(t *testing.T) {
	c := &Copy{Expiry: 100}
	if c.Expired(99) {
		t.Error("expired before deadline")
	}
	if !c.Expired(100) {
		t.Error("not expired at deadline")
	}
	inf := &Copy{Expiry: sim.Infinity}
	if inf.Expired(1e17) {
		t.Error("infinite TTL expired")
	}
}

func TestCloneSemantics(t *testing.T) {
	b := &Bundle{ID: ID{0, 1}, Dst: 3}
	orig := &Copy{Bundle: b, EC: 4, Expiry: 500, StoredAt: 10, Pinned: true}
	cl := orig.Clone(200)
	if cl.Bundle != b {
		t.Error("Clone must share the immutable Bundle")
	}
	if cl.EC != 4 || cl.Expiry != 500 {
		t.Error("Clone must duplicate EC and Expiry")
	}
	if cl.StoredAt != 200 {
		t.Errorf("Clone StoredAt = %v, want 200", cl.StoredAt)
	}
	if cl.Pinned {
		t.Error("Pinned must not propagate to receivers")
	}
	cl.EC = 9
	if orig.EC != 4 {
		t.Error("mutating clone affected the original")
	}
}

func TestSummaryVectorBasics(t *testing.T) {
	v := NewSummaryVector()
	id := ID{1, 1}
	if v.Has(id) || v.Len() != 0 {
		t.Fatal("fresh vector not empty")
	}
	if !v.Add(id) {
		t.Fatal("first Add returned false")
	}
	if v.Add(id) {
		t.Fatal("duplicate Add returned true")
	}
	if !v.Has(id) || v.Len() != 1 {
		t.Fatal("membership after Add wrong")
	}
	v.Remove(id)
	if v.Has(id) || v.Len() != 0 {
		t.Fatal("Remove did not delete")
	}
}

func TestSummaryVectorDiff(t *testing.T) {
	// Paper Fig. 2: node A holds {1,2,3,4,8}; node B holds {2,3,4,9,0}.
	// A sends B the diff {1,8}; B sends A {9,0} (here 0 is seq 0).
	a := NewSummaryVector()
	for _, s := range []int{1, 2, 3, 4, 8} {
		a.Add(ID{0, s})
	}
	b := NewSummaryVector()
	for _, s := range []int{2, 3, 4, 9, 0} {
		b.Add(ID{0, s})
	}
	aToB := a.Diff(b)
	if len(aToB) != 2 || aToB[0] != (ID{0, 1}) || aToB[1] != (ID{0, 8}) {
		t.Errorf("A\\B = %v, want [b(0:1) b(0:8)]", aToB)
	}
	bToA := b.Diff(a)
	if len(bToA) != 2 || bToA[0] != (ID{0, 0}) || bToA[1] != (ID{0, 9}) {
		t.Errorf("B\\A = %v, want [b(0:0) b(0:9)]", bToA)
	}
}

func TestSummaryVectorItemsDeterministic(t *testing.T) {
	v := NewSummaryVector()
	v.Add(ID{2, 1})
	v.Add(ID{0, 9})
	v.Add(ID{0, 2})
	got := v.Items()
	want := []ID{{0, 2}, {0, 9}, {2, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items() = %v, want %v", got, want)
		}
	}
}

func TestSummaryVectorUnionClone(t *testing.T) {
	a := NewSummaryVector()
	a.Add(ID{0, 1})
	b := NewSummaryVector()
	b.Add(ID{0, 1})
	b.Add(ID{0, 2})
	if n := a.Union(b); n != 1 {
		t.Errorf("Union added %d, want 1", n)
	}
	if a.Len() != 2 {
		t.Errorf("after union Len = %d", a.Len())
	}
	c := a.Clone()
	c.Add(ID{5, 5})
	if a.Has(ID{5, 5}) {
		t.Error("Clone shares storage with original")
	}
}

// Property: Diff and Union satisfy set identities.
func TestSummaryVectorSetAlgebraProperty(t *testing.T) {
	build := func(seed uint64, n int) *SummaryVector {
		r := rand.New(rand.NewPCG(seed, 7))
		v := NewSummaryVector()
		for i := 0; i < n; i++ {
			v.Add(ID{Src: 0, Seq: r.IntN(30)})
		}
		return v
	}
	f := func(sa, sb uint64) bool {
		a := build(sa, 20)
		b := build(sb, 20)
		// 1) Diff(a,b) ∩ b = ∅
		for _, id := range a.Diff(b) {
			if b.Has(id) {
				return false
			}
		}
		// 2) |a ∪ b| = |b| + |a \ b|
		u := b.Clone()
		added := u.Union(a)
		if u.Len() != b.Len()+added || added != len(a.Diff(b)) {
			return false
		}
		// 3) after union, a.Diff(u) = ∅
		if len(a.Diff(u)) != 0 {
			return false
		}
		// 4) union is idempotent
		if u.Union(a) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSummaryVectorRangeAndRemoveIndex checks the sorted-slice index:
// Range walks ascending, honours early stop, allocates nothing, and
// Remove keeps the index consistent.
func TestSummaryVectorRangeAndRemoveIndex(t *testing.T) {
	v := NewSummaryVector()
	for _, seq := range []int{7, 2, 9, 4, 2} {
		v.Add(ID{Src: 1, Seq: seq})
	}
	var seen []int
	v.Range(func(id ID) bool {
		seen = append(seen, id.Seq)
		return true
	})
	want := []int{2, 4, 7, 9}
	if len(seen) != len(want) {
		t.Fatalf("Range visited %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Range order %v, want %v", seen, want)
		}
	}
	n := 0
	v.Range(func(ID) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		v.Range(func(ID) bool { return true })
	}); allocs != 0 {
		t.Errorf("Range allocates %v/op, want 0", allocs)
	}

	v.Remove(ID{Src: 1, Seq: 4})
	v.Remove(ID{Src: 1, Seq: 99}) // absent: no-op
	got := v.Items()
	if len(got) != 3 || got[0].Seq != 2 || got[1].Seq != 7 || got[2].Seq != 9 {
		t.Errorf("after Remove, Items = %v", got)
	}
	if v.Has(ID{Src: 1, Seq: 4}) || v.Len() != 3 {
		t.Error("Remove left membership inconsistent")
	}
}
