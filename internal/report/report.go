// Package report renders experiment results as aligned text tables,
// CSV, and ASCII line charts, so every figure in the paper can be
// regenerated on a terminal without plotting dependencies.
package report

import (
	"fmt"
	"math"
	"strings"

	"dtnsim/internal/experiment"
)

// Table is a rectangular result: one row per load, one column per
// series.
type Table struct {
	Title   string
	XLabel  string
	Columns []string    // series labels
	XS      []float64   // row keys (loads)
	Cells   [][]float64 // Cells[row][col]; NaN renders as "-"
}

// FromResult extracts one metric from a sweep result as a Table.
func FromResult(r *experiment.Result, m experiment.Metric, title string) *Table {
	t := &Table{Title: title, XLabel: "load"}
	for _, s := range r.Series {
		t.Columns = append(t.Columns, s.Label)
	}
	for i, load := range r.Loads {
		t.XS = append(t.XS, float64(load))
		row := make([]float64, len(r.Series))
		for j, s := range r.Series {
			row[j] = s.Points[i].Values[m]
		}
		t.Cells = append(t.Cells, row)
		_ = i
	}
	return t
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for i, x := range t.XS {
		fmt.Fprintf(&b, "%g", x)
		for _, v := range t.Cells[i] {
			if math.IsNaN(v) {
				b.WriteString(",")
			} else {
				fmt.Fprintf(&b, ",%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	header := append([]string{t.XLabel}, t.Columns...)
	rows := make([][]string, len(t.XS))
	for i := range t.XS {
		rows[i] = make([]string, len(t.Columns)+1)
		rows[i][0] = fmt.Sprintf("%g", t.XS[i])
		for j, v := range t.Cells[i] {
			if math.IsNaN(v) {
				rows[i][j+1] = "-"
			} else {
				rows[i][j+1] = formatValue(v)
			}
		}
	}
	for j, h := range header {
		if len(h) > widths[j] {
			widths[j] = len(h)
		}
		for i := range rows {
			if len(rows[i][j]) > widths[j] {
				widths[j] = len(rows[i][j])
			}
		}
	}
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[j], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func formatValue(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return fmt.Sprintf("%.3g", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Plot renders an ASCII line chart of the table, one symbol per series.
func (t *Table) Plot(width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	symbols := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range t.Cells {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	if math.IsInf(lo, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	xmin, xmax := t.XS[0], t.XS[len(t.XS)-1]
	if xmax == xmin {
		xmax = xmin + 1
	}
	for j := range t.Columns {
		sym := symbols[j%len(symbols)]
		for i, x := range t.XS {
			v := t.Cells[i][j]
			if math.IsNaN(v) {
				continue
			}
			cx := int((x - xmin) / (xmax - xmin) * float64(width-1))
			cy := height - 1 - int((v-lo)/(hi-lo)*float64(height-1))
			grid[cy][cx] = sym
		}
	}
	for i, line := range grid {
		switch i {
		case 0:
			fmt.Fprintf(&b, "%10s |%s\n", formatValue(hi), line)
		case height - 1:
			fmt.Fprintf(&b, "%10s |%s\n", formatValue(lo), line)
		default:
			fmt.Fprintf(&b, "%10s |%s\n", "", line)
		}
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*g%*g\n", t.XLabel, width/2, xmin, width-width/2, xmax)
	for j, c := range t.Columns {
		fmt.Fprintf(&b, "  %c %s\n", symbols[j%len(symbols)], c)
	}
	return b.String()
}

// TableIIText renders the paper's Table II layout.
func TableIIText(rows []experiment.TableIIRow) string {
	var b strings.Builder
	b.WriteString("Comparison of original and enhanced protocols (Table II)\n")
	fmt.Fprintf(&b, "%-36s %9s %9s %9s %9s %9s %9s\n", "",
		"Dlvy RWP", "Dlvy Trc", "Occ RWP", "Occ Trc", "Dup RWP", "Dup Trc")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			r.Protocol, r.DeliveryRWP, r.DeliveryTr,
			r.OccupancyRWP, r.OccupancyTr, r.DupRWP, r.DupTr)
	}
	return b.String()
}
