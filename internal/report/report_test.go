package report

import (
	"math"
	"strings"
	"testing"

	"dtnsim/internal/experiment"
)

func sampleResult() *experiment.Result {
	return &experiment.Result{
		Scenario: "trace",
		Loads:    []int{5, 10},
		Series: []experiment.Series{
			{Label: "A", Points: []experiment.Point{
				{Load: 5, Values: map[experiment.Metric]float64{experiment.MetricDelivery: 1.0}},
				{Load: 10, Values: map[experiment.Metric]float64{experiment.MetricDelivery: 0.5}},
			}},
			{Label: "B, with comma", Points: []experiment.Point{
				{Load: 5, Values: map[experiment.Metric]float64{experiment.MetricDelivery: 0.8}},
				{Load: 10, Values: map[experiment.Metric]float64{experiment.MetricDelivery: math.NaN()}},
			}},
		},
	}
}

func TestFromResult(t *testing.T) {
	tab := FromResult(sampleResult(), experiment.MetricDelivery, "title")
	if tab.Title != "title" || len(tab.Columns) != 2 || len(tab.XS) != 2 {
		t.Fatalf("table structure: %+v", tab)
	}
	if tab.Cells[0][0] != 1.0 || tab.Cells[1][0] != 0.5 {
		t.Errorf("cells wrong: %v", tab.Cells)
	}
	if !math.IsNaN(tab.Cells[1][1]) {
		t.Error("NaN not preserved")
	}
}

func TestCSVEscapingAndNaN(t *testing.T) {
	csv := FromResult(sampleResult(), experiment.MetricDelivery, "").CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != `load,A,"B, with comma"` {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != "10,0.5," {
		t.Errorf("NaN row = %q, want trailing empty cell", lines[2])
	}
}

func TestASCIIRendering(t *testing.T) {
	out := FromResult(sampleResult(), experiment.MetricDelivery, "My Title").ASCII()
	if !strings.Contains(out, "My Title") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "-") {
		t.Error("NaN placeholder missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("ascii lines = %d:\n%s", len(lines), out)
	}
}

func TestPlotRendering(t *testing.T) {
	tab := FromResult(sampleResult(), experiment.MetricDelivery, "plot")
	out := tab.Plot(40, 10)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("series symbols missing:\n%s", out)
	}
	if !strings.Contains(out, "load") {
		t.Error("x label missing")
	}
	// Legend lists both series.
	if !strings.Contains(out, "A") || !strings.Contains(out, "B, with comma") {
		t.Error("legend incomplete")
	}
}

func TestPlotEmptyData(t *testing.T) {
	tab := &Table{Title: "empty", XLabel: "load", Columns: []string{"A"},
		XS: []float64{1}, Cells: [][]float64{{math.NaN()}}}
	if out := tab.Plot(40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty plot:\n%s", out)
	}
}

func TestPlotFlatSeries(t *testing.T) {
	tab := &Table{XLabel: "load", Columns: []string{"A"},
		XS: []float64{1, 2}, Cells: [][]float64{{3}, {3}}}
	if out := tab.Plot(40, 10); out == "" {
		t.Error("flat series render failed")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0.5, "0.500"},
		{42.42, "42.4"},
		{123456, "1.23e+05"},
	}
	for _, c := range cases {
		if got := formatValue(c.in); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableIIText(t *testing.T) {
	rows := []experiment.TableIIRow{{
		Protocol: "Epidemic with TTL", DeliveryRWP: 24.6, DeliveryTr: 74.4,
		OccupancyRWP: 5.1, OccupancyTr: 11.3, DupRWP: 13.8, DupTr: 66.3,
	}}
	out := TableIIText(rows)
	if !strings.Contains(out, "Epidemic with TTL") || !strings.Contains(out, "24.6%") {
		t.Errorf("Table II rendering:\n%s", out)
	}
}
