package report

import (
	"fmt"
	"io"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/metrics"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// Stream writes a simulation as a CSV time series while it runs: one
// row per periodic metric sample and — when events are enabled — one
// row per engine event (generate, transmit, deliver, drop). It
// implements core.Observer structurally and attaches through
// Config.Observers (or the dtnsim CLI's -series/-events flags).
//
// The column layout is fixed:
//
//	time,event,node,peer,bundle,detail,occupancy,duplication
//
// Sample rows fill the last two columns; event rows fill node/peer/
// bundle and put the delay (deliver) or drop reason (drop) in detail.
// Write errors are sticky: the first one stops all further output and
// is reported by Err.
type Stream struct {
	w      io.Writer
	events bool
	err    error
}

// NewStream returns a Stream writing to w. With events false only the
// periodic sample rows are written (a pure metric time series); with
// events true every engine event is logged too. The header row is
// written immediately.
func NewStream(w io.Writer, events bool) *Stream {
	s := &Stream{w: w, events: events}
	s.row("time,event,node,peer,bundle,detail,occupancy,duplication")
	return s
}

// Err returns the first write error, or nil.
func (s *Stream) Err() error { return s.err }

func (s *Stream) row(line string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, line+"\n")
}

func fmtID(id bundle.ID) string { return fmt.Sprintf("%d:%d", id.Src, id.Seq) }

// OnGenerate implements core.Observer.
func (s *Stream) OnGenerate(id bundle.ID, dst contact.NodeID, now sim.Time) {
	if !s.events {
		return
	}
	s.row(fmt.Sprintf("%g,generate,%d,%d,%s,,,", float64(now), id.Src, dst, fmtID(id)))
}

// OnTransmit implements core.Observer.
func (s *Stream) OnTransmit(from, to contact.NodeID, id bundle.ID, now sim.Time) {
	if !s.events {
		return
	}
	s.row(fmt.Sprintf("%g,transmit,%d,%d,%s,,,", float64(now), from, to, fmtID(id)))
}

// OnDeliver implements core.Observer.
func (s *Stream) OnDeliver(id bundle.ID, dst contact.NodeID, delay float64, now sim.Time) {
	if !s.events {
		return
	}
	s.row(fmt.Sprintf("%g,deliver,%d,,%s,%g,,", float64(now), dst, fmtID(id), delay))
}

// OnDrop implements core.Observer.
func (s *Stream) OnDrop(at contact.NodeID, id bundle.ID, reason node.DropReason, now sim.Time) {
	if !s.events {
		return
	}
	s.row(fmt.Sprintf("%g,drop,%d,,%s,%s,,", float64(now), at, fmtID(id), reason))
}

// OnSample implements core.Observer.
func (s *Stream) OnSample(sm metrics.Sample) {
	s.row(fmt.Sprintf("%g,sample,,,,,%g,%g", float64(sm.Now), sm.Occupancy, sm.Duplication))
}
