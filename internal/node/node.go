// Package node defines the per-node state a DTN participant carries:
// its bundle store, the encounter history that drives dynamic TTL
// (Algorithm 1 in the paper), delivery bookkeeping, and overhead
// counters. Protocol-specific state (immunity lists, cumulative ack
// tables) hangs off the Ext field, attached by the protocol's Init.
package node

import (
	"fmt"

	"dtnsim/internal/buffer"
	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// Node is one DTN participant.
type Node struct {
	ID    contact.NodeID
	Store *buffer.Store

	// Received records bundles this node has consumed as their
	// destination; a destination never re-accepts a received bundle.
	Received *bundle.SummaryVector

	// LastEncounterStart is the start time of this node's most recent
	// encounter, or -1 before the first.
	LastEncounterStart sim.Time
	// LastInterval is the gap in seconds between the starts of the last
	// two encounters; 0 until the node has seen two encounters. This is
	// GetLastInterval from the paper's Algorithm 1.
	LastInterval float64

	// ControlSent counts control records (immunity tables, anti-packets,
	// cumulative acks) this node has transmitted: the paper's signaling
	// overhead metric.
	ControlSent int64
	// DataSent counts bundle transmissions originated by this node.
	DataSent int64
	// Refused counts incoming bundles this node declined (buffer full
	// and no evictable victim).
	Refused int64
	// Expired counts copies this node dropped to TTL expiry.
	Expired int64
	// Evicted counts copies this node dropped to make room (the
	// protocols' slot-count policies).
	Evicted int64
	// ByteDropped counts copies this node shed to relieve byte pressure
	// (the buffer's DropPolicy making room under a byte capacity).
	ByteDropped int64

	// Ext holds protocol-specific state, attached by Protocol.Init.
	Ext any

	// Scratch is reusable working memory for the protocol hot path
	// (the per-contact anti-entropy diff). A node belongs to exactly
	// one engine goroutine and hooks are never re-entered while a
	// protocol iterates, so the buffers can be reused without locking;
	// after warm-up the diff allocates nothing.
	Scratch Scratch

	// DropHook, when non-nil, observes every buffer-policy drop this
	// node records (refusals, evictions, TTL expiries). The engine sets
	// it to fan events out to core.Observer implementations; protocols
	// report drops through NoteRefused/NoteEvicted/PurgeExpired and
	// never call it directly.
	DropHook func(id bundle.ID, reason DropReason, now sim.Time)
}

// Scratch is per-node reusable working memory for protocol hot paths.
// The slices keep their grown capacity across contacts; callers slice
// them to zero length, fill them, and store them back. The contents are
// only valid until the node's next protocol hook runs.
type Scratch struct {
	// Direct and Relay partition a contact's offerable copies into
	// receiver-destined and third-party traffic.
	Direct, Relay []*bundle.Copy
	// IDs is the assembled offer list handed back to the engine.
	IDs []bundle.ID
}

// DropReason classifies one dropped copy for observers. The constants
// below are the complete enum: every drop the engine reports carries
// one of them (Valid), and metrics.Collector accounts drops strictly by
// this taxonomy — a drop with an unlisted reason is a bookkeeping bug,
// not a new category.
type DropReason string

// The five ways a node sheds a bundle copy.
const (
	// DropRefused: an incoming copy was declined (buffer full, no
	// evictable victim).
	DropRefused DropReason = "refused"
	// DropEvicted: a stored copy was removed to make room (a protocol's
	// slot-count buffer policy, e.g. EC's highest-count eviction).
	DropEvicted DropReason = "evicted"
	// DropExpired: a stored copy's TTL lapsed.
	DropExpired DropReason = "expired"
	// DropPurged: a stored copy was shed because an immunity table or
	// anti-packet marked it delivered — protocol bookkeeping, not a
	// buffer-policy failure, so it increments no failure counter.
	DropPurged DropReason = "purged"
	// DropBytePressure: a stored copy was shed by the buffer's
	// DropPolicy to fit an incoming sized bundle under a byte capacity
	// (DESIGN.md §9).
	DropBytePressure DropReason = "bytepressure"
)

// DropReasons returns the complete reason enum in a fixed order.
func DropReasons() []DropReason {
	return []DropReason{DropRefused, DropEvicted, DropExpired, DropPurged, DropBytePressure}
}

// Valid reports whether r is one of the declared drop reasons.
func (r DropReason) Valid() bool {
	switch r {
	case DropRefused, DropEvicted, DropExpired, DropPurged, DropBytePressure:
		return true
	}
	return false
}

// New returns a node with an empty store of the given capacity.
func New(id contact.NodeID, bufCap int) *Node {
	return &Node{
		ID:                 id,
		Store:              buffer.New(bufCap),
		Received:           bundle.NewSummaryVector(),
		LastEncounterStart: -1,
	}
}

// ObserveEncounter updates the node's encounter history at the start of a
// contact. Per Algorithm 1, the interval is measured between the starts
// of the last two encounters.
func (n *Node) ObserveEncounter(start sim.Time) {
	if n.LastEncounterStart >= 0 && start > n.LastEncounterStart {
		n.LastInterval = float64(start - n.LastEncounterStart)
	}
	n.LastEncounterStart = start
}

// PurgeExpired removes lapsed copies and accounts for them.
func (n *Node) PurgeExpired(now sim.Time) {
	purged := n.Store.PurgeExpired(now)
	n.Expired += int64(len(purged))
	if n.DropHook != nil {
		for _, cp := range purged {
			n.DropHook(cp.Bundle.ID, DropExpired, now)
		}
	}
}

// NoteRefused accounts one refused incoming copy. Protocols call it
// from Admit instead of incrementing Refused directly so observers see
// the drop.
func (n *Node) NoteRefused(id bundle.ID, now sim.Time) {
	n.Refused++
	if n.DropHook != nil {
		n.DropHook(id, DropRefused, now)
	}
}

// NoteEvicted accounts one evicted copy (already removed from the
// store); the buffer-policy counterpart of NoteRefused.
func (n *Node) NoteEvicted(id bundle.ID, now sim.Time) {
	n.Evicted++
	if n.DropHook != nil {
		n.DropHook(id, DropEvicted, now)
	}
}

// NoteByteDropped accounts one copy the buffer's DropPolicy shed
// (already removed from the store) to fit an incoming sized bundle
// under the byte capacity.
func (n *Node) NoteByteDropped(id bundle.ID, now sim.Time) {
	n.ByteDropped++
	if n.DropHook != nil {
		n.DropHook(id, DropBytePressure, now)
	}
}

// NotePurged reports one protocol-purged copy (already removed from
// the store) to observers. Purging delivered copies is the immunity
// mechanism working as designed, so unlike the other drops it
// increments no counter.
func (n *Node) NotePurged(id bundle.ID, now sim.Time) {
	if n.DropHook != nil {
		n.DropHook(id, DropPurged, now)
	}
}

func (n *Node) String() string {
	return fmt.Sprintf("node(%d, %d/%d buffered)", n.ID, n.Store.Len(), n.Store.Cap())
}
