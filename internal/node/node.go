// Package node defines the per-node state a DTN participant carries:
// its bundle store, the encounter history that drives dynamic TTL
// (Algorithm 1 in the paper), delivery bookkeeping, and overhead
// counters. Protocol-specific state (immunity lists, cumulative ack
// tables) hangs off the Ext field, attached by the protocol's Init.
package node

import (
	"fmt"

	"dtnsim/internal/buffer"
	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// Node is one DTN participant.
type Node struct {
	ID    contact.NodeID
	Store *buffer.Store

	// Received records bundles this node has consumed as their
	// destination; a destination never re-accepts a received bundle.
	Received *bundle.SummaryVector

	// LastEncounterStart is the start time of this node's most recent
	// encounter, or -1 before the first.
	LastEncounterStart sim.Time
	// LastInterval is the gap in seconds between the starts of the last
	// two encounters; 0 until the node has seen two encounters. This is
	// GetLastInterval from the paper's Algorithm 1.
	LastInterval float64

	// ControlSent counts control records (immunity tables, anti-packets,
	// cumulative acks) this node has transmitted: the paper's signaling
	// overhead metric.
	ControlSent int64
	// DataSent counts bundle transmissions originated by this node.
	DataSent int64
	// Refused counts incoming bundles this node declined (buffer full
	// and no evictable victim).
	Refused int64
	// Expired counts copies this node dropped to TTL expiry.
	Expired int64
	// Evicted counts copies this node dropped to make room.
	Evicted int64

	// Ext holds protocol-specific state, attached by Protocol.Init.
	Ext any
}

// New returns a node with an empty store of the given capacity.
func New(id contact.NodeID, bufCap int) *Node {
	return &Node{
		ID:                 id,
		Store:              buffer.New(bufCap),
		Received:           bundle.NewSummaryVector(),
		LastEncounterStart: -1,
	}
}

// ObserveEncounter updates the node's encounter history at the start of a
// contact. Per Algorithm 1, the interval is measured between the starts
// of the last two encounters.
func (n *Node) ObserveEncounter(start sim.Time) {
	if n.LastEncounterStart >= 0 && start > n.LastEncounterStart {
		n.LastInterval = float64(start - n.LastEncounterStart)
	}
	n.LastEncounterStart = start
}

// PurgeExpired removes lapsed copies and accounts for them.
func (n *Node) PurgeExpired(now sim.Time) {
	n.Expired += int64(len(n.Store.PurgeExpired(now)))
}

func (n *Node) String() string {
	return fmt.Sprintf("node(%d, %d/%d buffered)", n.ID, n.Store.Len(), n.Store.Cap())
}
