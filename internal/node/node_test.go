package node

import (
	"testing"
)

func TestNewNode(t *testing.T) {
	n := New(3, 10)
	if n.ID != 3 || n.Store.Cap() != 10 {
		t.Fatalf("node misconstructed: %v", n)
	}
	if n.LastEncounterStart != -1 {
		t.Errorf("LastEncounterStart = %v, want -1", n.LastEncounterStart)
	}
	if n.LastInterval != 0 {
		t.Errorf("LastInterval = %v, want 0", n.LastInterval)
	}
	if n.Received.Len() != 0 {
		t.Error("Received not empty")
	}
}

func TestObserveEncounterIntervals(t *testing.T) {
	n := New(0, 10)
	n.ObserveEncounter(100)
	if n.LastInterval != 0 {
		t.Errorf("after first encounter LastInterval = %v, want 0 (no history)", n.LastInterval)
	}
	if n.LastEncounterStart != 100 {
		t.Errorf("LastEncounterStart = %v", n.LastEncounterStart)
	}
	n.ObserveEncounter(700)
	if n.LastInterval != 600 {
		t.Errorf("LastInterval = %v, want 600", n.LastInterval)
	}
	n.ObserveEncounter(800)
	if n.LastInterval != 100 {
		t.Errorf("LastInterval = %v, want 100", n.LastInterval)
	}
}

func TestObserveEncounterSimultaneous(t *testing.T) {
	// Two contacts starting at the same instant must not zero the
	// interval history.
	n := New(0, 10)
	n.ObserveEncounter(100)
	n.ObserveEncounter(700)
	n.ObserveEncounter(700)
	if n.LastInterval != 600 {
		t.Errorf("simultaneous encounter clobbered interval: %v", n.LastInterval)
	}
}

func TestNodeString(t *testing.T) {
	if New(1, 5).String() == "" {
		t.Error("empty String")
	}
}
