package contact

import (
	"dtnsim/internal/sim"
)

// Source is a pull-based stream of contacts in canonical order (see
// Less). It is the streaming counterpart of Schedule: the engine pulls
// one contact at a time, so a well-behaved source needs only O(nodes)
// working memory regardless of how many contacts the scenario contains.
//
// A Source is single-use: once Next has returned false the stream is
// exhausted. Sources that hold external resources (an open trace file)
// additionally implement io.Closer; the engine closes such sources when
// a run ends, even if it stopped before exhausting the stream.
type Source interface {
	// Next returns the next contact in canonical start order. ok is
	// false when the stream is exhausted or failed; check Err to tell
	// the two apart.
	Next() (c Contact, ok bool)
	// Nodes returns the node population size; contact endpoints lie in
	// [0, Nodes()).
	Nodes() int
	// Horizon returns an upper bound on the stream's contact end times
	// (typically the generator's configured span), or zero when the
	// bound is unknown before the stream is drained. Core requires an
	// explicit Config.Horizon when a source reports zero.
	Horizon() sim.Time
	// Err returns the error that truncated the stream, or nil after a
	// clean exhaustion. Like bufio.Scanner, Err is meaningful once Next
	// has returned false.
	Err() error
}

// Less is the canonical contact ordering shared by Schedule.Sort and
// every streaming source: by start, then endpoints, then end. It is a
// total order over the contacts of any valid schedule (a pair never
// repeats a start time within one schedule).
func Less(a, b Contact) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	return a.End < b.End
}

// ScheduleSource adapts a materialized Schedule to the Source
// interface: a cursor over the contact slice. It is the back-compat
// bridge that lets Config.Schedule callers run on the streaming engine
// unchanged.
type ScheduleSource struct {
	s       *Schedule
	i       int
	horizon sim.Time
}

// Stream returns a Source that yields the schedule's contacts in slice
// order. The schedule must already be sorted (Validate enforces this);
// the horizon is computed once here rather than per call.
func (s *Schedule) Stream() *ScheduleSource {
	return &ScheduleSource{s: s, horizon: s.Horizon()}
}

// Next returns the next contact of the underlying schedule.
func (c *ScheduleSource) Next() (Contact, bool) {
	if c.i >= len(c.s.Contacts) {
		return Contact{}, false
	}
	ct := c.s.Contacts[c.i]
	c.i++
	return ct, true
}

// Nodes returns the schedule's node count.
func (c *ScheduleSource) Nodes() int { return c.s.Nodes }

// Horizon returns the schedule's latest contact end time.
func (c *ScheduleSource) Horizon() sim.Time { return c.horizon }

// Err always returns nil: a materialized schedule cannot fail mid-read.
func (c *ScheduleSource) Err() error { return nil }

// Materialize drains a source into a validated Schedule. It is the
// inverse of Stream and exists for callers that genuinely need random
// access (analysis, trace export); the engine itself never calls it.
func Materialize(src Source) (*Schedule, error) {
	s := &Schedule{Nodes: src.Nodes()}
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		s.Contacts = append(s.Contacts, c)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Lookahead reorders an almost-sorted contact stream into canonical
// order. Generators that discover contacts slightly out of start order
// (a contact is only known when it *closes*, or rounds of encounters
// are drawn batch-wise) Add them as discovered and Pop them back once
// no later discovery can precede them: Pop releases the least contact
// only while its start lies strictly below the caller-supplied bound,
// which must be a lower bound on the start of every contact not yet
// Added. The heap therefore holds only the generator's reordering
// window, not the whole schedule.
type Lookahead struct{ h []Contact }

// Add inserts a discovered contact. The sift is hand-rolled rather
// than container/heap so the per-contact hot path never boxes through
// an interface (zero allocations at steady state).
func (l *Lookahead) Add(c Contact) {
	l.h = append(l.h, c)
	i := len(l.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !Less(l.h[i], l.h[parent]) {
			break
		}
		l.h[i], l.h[parent] = l.h[parent], l.h[i]
		i = parent
	}
}

// Pop removes and returns the least pending contact if its start is
// strictly below bound. Pass sim.Infinity to drain unconditionally.
func (l *Lookahead) Pop(bound sim.Time) (Contact, bool) {
	if len(l.h) == 0 || l.h[0].Start >= bound {
		return Contact{}, false
	}
	c := l.h[0]
	last := len(l.h) - 1
	l.h[0] = l.h[last]
	l.h = l.h[:last]
	i := 0
	for {
		kid := 2*i + 1
		if kid >= last {
			break
		}
		if kid+1 < last && Less(l.h[kid+1], l.h[kid]) {
			kid++
		}
		if !Less(l.h[kid], l.h[i]) {
			break
		}
		l.h[i], l.h[kid] = l.h[kid], l.h[i]
		i = kid
	}
	return c, true
}

// Len returns the number of buffered contacts.
func (l *Lookahead) Len() int { return len(l.h) }
