package contact

import (
	"fmt"
	"sort"

	"dtnsim/internal/sim"
)

// Stats summarizes the encounter structure of a schedule. The paper's
// arguments all hinge on these statistics (mean inter-contact interval
// versus TTL value, encounter counts versus EC thresholds), so they are a
// first-class output used by tests, examples and the tracegen tool.
type Stats struct {
	Contacts         int
	Nodes            int
	Span             sim.Time // latest end time
	MeanDuration     float64
	MinDuration      float64
	MaxDuration      float64
	MeanInterval     float64 // mean per-node inter-contact gap, seconds
	MaxInterval      float64
	EncountersPer    []int // contact count per node
	PairsWithContact int   // distinct pairs that ever meet
}

// Analyze computes Stats for a schedule. The schedule must be sorted
// (contacts in start-time order), as produced by every generator here.
func Analyze(s *Schedule) Stats {
	st, _ := AnalyzeSource(s.Stream())
	return st
}

// AnalyzeSource computes Stats from a streaming source in one pass,
// consuming it. State is O(nodes + meeting pairs) — a schedule too big
// to materialize can still be summarized. The error is the source's
// Err after exhaustion; the returned Stats cover the contacts seen.
func AnalyzeSource(src Source) (Stats, error) {
	st := Stats{Nodes: src.Nodes()}
	st.EncountersPer = make([]int, st.Nodes)
	pairs := make(map[PairKey]bool)
	lastSeen := make([]sim.Time, st.Nodes)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	var durSum float64
	var gapSum float64
	var gapCount int
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		st.Contacts++
		if c.End > st.Span {
			st.Span = c.End
		}
		d := float64(c.Duration())
		durSum += d
		if st.Contacts == 1 || d < st.MinDuration {
			st.MinDuration = d
		}
		if d > st.MaxDuration {
			st.MaxDuration = d
		}
		pairs[MakePairKey(c.A, c.B)] = true
		for _, n := range []NodeID{c.A, c.B} {
			st.EncountersPer[n]++
			if prev := lastSeen[n]; prev >= 0 && c.Start > prev {
				gap := float64(c.Start - prev)
				gapSum += gap
				gapCount++
				if gap > st.MaxInterval {
					st.MaxInterval = gap
				}
			}
			if c.End > lastSeen[n] {
				lastSeen[n] = c.End
			}
		}
	}
	if st.Contacts > 0 {
		st.MeanDuration = durSum / float64(st.Contacts)
	}
	if gapCount > 0 {
		st.MeanInterval = gapSum / float64(gapCount)
	}
	st.PairsWithContact = len(pairs)
	return st, src.Err()
}

// InterContactTimes returns, for the given node, the sequence of gaps
// between the end of one contact and the start of the next. Dynamic TTL
// (Algorithm 1 in the paper) keys off exactly this sequence.
func InterContactTimes(s *Schedule, n NodeID) []float64 {
	var windows []Contact
	for _, c := range s.Contacts {
		if c.Involves(n) {
			windows = append(windows, c)
		}
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i].Start < windows[j].Start })
	var gaps []float64
	var last sim.Time = -1
	for _, w := range windows {
		if last >= 0 && w.Start > last {
			gaps = append(gaps, float64(w.Start-last))
		}
		if w.End > last {
			last = w.End
		}
	}
	return gaps
}

func (st Stats) String() string {
	return fmt.Sprintf("contacts=%d nodes=%d span=%v meanDur=%.0fs meanGap=%.0fs pairs=%d",
		st.Contacts, st.Nodes, st.Span, st.MeanDuration, st.MeanInterval, st.PairsWithContact)
}
