package contact

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dtnsim/internal/sim"
)

func TestContactValidate(t *testing.T) {
	cases := []struct {
		name string
		c    Contact
		ok   bool
	}{
		{"valid", Contact{A: 0, B: 1, Start: 10, End: 20}, true},
		{"self", Contact{A: 3, B: 3, Start: 10, End: 20}, false},
		{"unordered endpoints", Contact{A: 2, B: 1, Start: 10, End: 20}, false},
		{"negative start", Contact{A: 0, B: 1, Start: -1, End: 20}, false},
		{"empty window", Contact{A: 0, B: 1, Start: 10, End: 10}, false},
		{"inverted window", Contact{A: 0, B: 1, Start: 20, End: 10}, false},
		{"per-contact bandwidth", Contact{A: 0, B: 1, Start: 10, End: 20, Bandwidth: 1e6}, true},
		{"negative bandwidth", Contact{A: 0, B: 1, Start: 10, End: 20, Bandwidth: -1}, false},
		{"NaN bandwidth", Contact{A: 0, B: 1, Start: 10, End: 20, Bandwidth: math.NaN()}, false},
		{"Inf bandwidth", Contact{A: 0, B: 1, Start: 10, End: 20, Bandwidth: math.Inf(1)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate(%v) = %v, want ok=%v", tc.c, err, tc.ok)
			}
		})
	}
}

func TestContactPeerAndInvolves(t *testing.T) {
	c := Contact{A: 2, B: 7, Start: 0, End: 1}
	if c.Peer(2) != 7 || c.Peer(7) != 2 {
		t.Error("Peer returned wrong endpoint")
	}
	if !c.Involves(2) || !c.Involves(7) || c.Involves(3) {
		t.Error("Involves wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Peer on non-member did not panic")
		}
	}()
	c.Peer(5)
}

func TestNormalize(t *testing.T) {
	c := Contact{A: 9, B: 2, Start: 1, End: 3}.Normalize()
	if c.A != 2 || c.B != 9 {
		t.Errorf("Normalize gave %v", c)
	}
}

func TestScheduleSortAndValidate(t *testing.T) {
	s := &Schedule{Nodes: 4, Contacts: []Contact{
		{A: 0, B: 1, Start: 100, End: 200},
		{A: 2, B: 3, Start: 50, End: 80},
		{A: 0, B: 2, Start: 50, End: 60},
	}}
	if err := s.Validate(); err == nil {
		t.Fatal("unsorted schedule validated")
	}
	s.Sort()
	if err := s.Validate(); err != nil {
		t.Fatalf("sorted schedule failed validation: %v", err)
	}
	if s.Contacts[0].B != 2 {
		t.Errorf("tie at t=50 should order (0,2) before (2,3): got %v", s.Contacts[0])
	}
}

func TestScheduleValidateBounds(t *testing.T) {
	s := &Schedule{Nodes: 2, Contacts: []Contact{{A: 0, B: 5, Start: 0, End: 10}}}
	if err := s.Validate(); err == nil {
		t.Fatal("out-of-range node ID validated")
	}
	empty := &Schedule{Nodes: 2}
	if err := empty.Validate(); !errors.Is(err, ErrEmptySchedule) {
		t.Fatalf("empty schedule: err=%v", err)
	}
}

func TestScheduleHorizonAndClip(t *testing.T) {
	s := &Schedule{Nodes: 3, Contacts: []Contact{
		{A: 0, B: 1, Start: 0, End: 100},
		{A: 1, B: 2, Start: 150, End: 400},
		{A: 0, B: 2, Start: 500, End: 600},
	}}
	if h := s.Horizon(); h != 600 {
		t.Fatalf("Horizon = %v, want 600", h)
	}
	c := s.Clip(200)
	if len(c.Contacts) != 2 {
		t.Fatalf("Clip kept %d contacts, want 2", len(c.Contacts))
	}
	if c.Contacts[1].End != 200 {
		t.Errorf("straddling contact not truncated: %v", c.Contacts[1])
	}
	if h := c.Horizon(); h != 200 {
		t.Errorf("clipped horizon = %v", h)
	}
}

func TestScheduleFilter(t *testing.T) {
	s := &Schedule{Nodes: 3, Contacts: []Contact{
		{A: 0, B: 1, Start: 0, End: 10}, {A: 1, B: 2, Start: 5, End: 15}, {A: 0, B: 2, Start: 20, End: 30},
	}}
	f := s.Filter(func(c Contact) bool { return c.Involves(0) })
	if len(f.Contacts) != 2 {
		t.Fatalf("Filter kept %d, want 2", len(f.Contacts))
	}
}

func TestMergeSorts(t *testing.T) {
	a := &Schedule{Nodes: 3, Contacts: []Contact{{A: 0, B: 1, Start: 100, End: 110}}}
	b := &Schedule{Nodes: 3, Contacts: []Contact{{A: 1, B: 2, Start: 50, End: 60}, {A: 0, B: 2, Start: 150, End: 160}}}
	m := Merge(a, b)
	if err := m.Validate(); err != nil {
		t.Fatalf("merged schedule invalid: %v", err)
	}
	if m.Contacts[0].Start != 50 || m.Contacts[2].Start != 150 {
		t.Errorf("merge not sorted: %v", m.Contacts)
	}
}

func TestMakePairKey(t *testing.T) {
	if MakePairKey(5, 2) != (PairKey{2, 5}) {
		t.Error("MakePairKey did not normalize")
	}
	if MakePairKey(2, 5) != MakePairKey(5, 2) {
		t.Error("PairKey not symmetric")
	}
}

// Property: Clip never yields contacts outside [0, t] and never grows
// the schedule.
func TestClipProperty(t *testing.T) {
	f := func(seed uint64, cut uint16) bool {
		r := rand.New(rand.NewPCG(seed, 2))
		s := &Schedule{Nodes: 5}
		for i := 0; i < 50; i++ {
			start := sim.Time(r.IntN(1000))
			end := start + sim.Time(r.IntN(100)+1)
			a := NodeID(r.IntN(5))
			b := NodeID(r.IntN(5))
			if a == b {
				continue
			}
			s.Contacts = append(s.Contacts, Contact{A: a, B: b, Start: start, End: end}.Normalize())
		}
		s.Sort()
		tcut := sim.Time(cut % 1100)
		c := s.Clip(tcut)
		if len(c.Contacts) > len(s.Contacts) {
			return false
		}
		for _, cc := range c.Contacts {
			if cc.End > tcut || cc.Start >= tcut || cc.End <= cc.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sort is idempotent and produces a valid schedule from any
// collection of individually valid contacts.
func TestSortProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		s := &Schedule{Nodes: 6}
		for i := 0; i < 40; i++ {
			a, b := NodeID(r.IntN(6)), NodeID(r.IntN(6))
			if a == b {
				continue
			}
			start := sim.Time(r.IntN(500))
			s.Contacts = append(s.Contacts, Contact{A: a, B: b, Start: start, End: start + 1 + sim.Time(r.IntN(50))}.Normalize())
		}
		if len(s.Contacts) == 0 {
			return true
		}
		s.Sort()
		if s.Validate() != nil {
			return false
		}
		before := make([]Contact, len(s.Contacts))
		copy(before, s.Contacts)
		s.Sort()
		for i := range before {
			if before[i] != s.Contacts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
