package contact

import (
	"testing"
)

func testSchedule() *Schedule {
	s := &Schedule{Nodes: 3, Contacts: []Contact{
		{A: 0, B: 1, Start: 0, End: 100},   // dur 100
		{A: 0, B: 2, Start: 300, End: 400}, // node0 gap 200; node2 first
		{A: 1, B: 2, Start: 500, End: 700}, // node1 gap 400, node2 gap 100
	}}
	s.Sort()
	return s
}

func TestAnalyzeBasics(t *testing.T) {
	st := Analyze(testSchedule())
	if st.Contacts != 3 || st.Nodes != 3 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.Span != 700 {
		t.Errorf("Span = %v, want 700", st.Span)
	}
	if st.MinDuration != 100 || st.MaxDuration != 200 {
		t.Errorf("durations: min=%v max=%v", st.MinDuration, st.MaxDuration)
	}
	wantMeanDur := (100.0 + 100.0 + 200.0) / 3
	if st.MeanDuration != wantMeanDur {
		t.Errorf("MeanDuration = %v, want %v", st.MeanDuration, wantMeanDur)
	}
	// Gaps: node0: 300-100=200; node1: 500-100=400; node2: 500-400=100.
	wantGap := (200.0 + 400.0 + 100.0) / 3
	if st.MeanInterval != wantGap {
		t.Errorf("MeanInterval = %v, want %v", st.MeanInterval, wantGap)
	}
	if st.MaxInterval != 400 {
		t.Errorf("MaxInterval = %v, want 400", st.MaxInterval)
	}
	if st.PairsWithContact != 3 {
		t.Errorf("PairsWithContact = %d, want 3", st.PairsWithContact)
	}
	wantEnc := []int{2, 2, 2}
	for i, w := range wantEnc {
		if st.EncountersPer[i] != w {
			t.Errorf("EncountersPer[%d] = %d, want %d", i, st.EncountersPer[i], w)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	st := Analyze(&Schedule{Nodes: 2})
	if st.Contacts != 0 || st.MeanDuration != 0 || st.MeanInterval != 0 {
		t.Errorf("empty schedule stats: %+v", st)
	}
}

func TestInterContactTimes(t *testing.T) {
	s := testSchedule()
	gaps := InterContactTimes(s, 0)
	if len(gaps) != 1 || gaps[0] != 200 {
		t.Errorf("node 0 gaps = %v, want [200]", gaps)
	}
	gaps = InterContactTimes(s, 1)
	if len(gaps) != 1 || gaps[0] != 400 {
		t.Errorf("node 1 gaps = %v, want [400]", gaps)
	}
	if got := InterContactTimes(s, 2); len(got) != 1 || got[0] != 100 {
		t.Errorf("node 2 gaps = %v, want [100]", got)
	}
}

func TestInterContactOverlapping(t *testing.T) {
	// Overlapping windows produce no negative gaps.
	s := &Schedule{Nodes: 3, Contacts: []Contact{
		{A: 0, B: 1, Start: 0, End: 100},
		{A: 0, B: 2, Start: 50, End: 150}, // overlaps previous for node 0
		{A: 0, B: 1, Start: 200, End: 250},
	}}
	s.Sort()
	gaps := InterContactTimes(s, 0)
	if len(gaps) != 1 || gaps[0] != 50 {
		t.Errorf("gaps = %v, want [50] (150..200)", gaps)
	}
	for _, g := range gaps {
		if g < 0 {
			t.Fatal("negative gap")
		}
	}
}

func TestStatsString(t *testing.T) {
	if Analyze(testSchedule()).String() == "" {
		t.Error("empty String()")
	}
}
