// Package contact defines the contact (encounter) abstraction shared by
// the mobility models and the simulation engine. A DTN's connectivity is
// fully described by when pairs of nodes are within radio range; every
// mobility source in this repository — parsed CRAWDAD-style traces, the
// synthetic Cambridge generator, and both RWP variants — reduces to a
// Schedule of Contacts that the engine replays.
package contact

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dtnsim/internal/sim"
)

// NodeID identifies a node. IDs are dense small integers [0, N).
type NodeID int

// Contact is one encounter window between two nodes. Invariants
// (enforced by Validate): A < B, Start < End, both times non-negative,
// Bandwidth non-negative.
type Contact struct {
	A, B  NodeID
	Start sim.Time
	End   sim.Time
	// Bandwidth is this contact's link capacity in bytes per second;
	// zero means "unset" — the engine falls back to its global
	// core.Config.Bandwidth, and when that too is zero the contact is
	// capacity-unbounded (the legacy slots-only model). The field rides
	// through streaming sources untouched, so heterogeneous-link contact
	// plans stay O(nodes) in memory like any other.
	Bandwidth float64
}

// Duration returns the length of the encounter window.
func (c Contact) Duration() sim.Duration { return c.End - c.Start }

// Involves reports whether node n is one of the contact's endpoints.
func (c Contact) Involves(n NodeID) bool { return c.A == n || c.B == n }

// Peer returns the other endpoint of the contact. It panics if n is not
// an endpoint.
func (c Contact) Peer(n NodeID) NodeID {
	switch n {
	case c.A:
		return c.B
	case c.B:
		return c.A
	}
	panic(fmt.Sprintf("contact: node %d not in contact %v", n, c))
}

// Normalize returns the contact with endpoints ordered so that A < B.
func (c Contact) Normalize() Contact {
	if c.A > c.B {
		c.A, c.B = c.B, c.A
	}
	return c
}

func (c Contact) String() string {
	return fmt.Sprintf("contact(%d<->%d, %v..%v)", c.A, c.B, c.Start, c.End)
}

// Validate checks the contact invariants.
func (c Contact) Validate() error {
	switch {
	case c.A == c.B:
		return fmt.Errorf("contact: self-contact on node %d", c.A)
	case c.A > c.B:
		return fmt.Errorf("contact: endpoints not normalized (%d > %d)", c.A, c.B)
	case c.Start < 0:
		return fmt.Errorf("contact: negative start %v", c.Start)
	case c.End <= c.Start:
		return fmt.Errorf("contact: empty or inverted window %v..%v", c.Start, c.End)
	// `!(>= 0)` also rejects NaN, which would otherwise slip past a
	// `< 0` check and silently run the contact unconstrained.
	case !(c.Bandwidth >= 0) || math.IsInf(c.Bandwidth, 0):
		return fmt.Errorf("contact: bandwidth %v must be finite and non-negative", c.Bandwidth)
	}
	return nil
}

// Schedule is a set of contacts ordered by start time (ties broken by
// (A, B, End) so ordering is total and deterministic).
type Schedule struct {
	Contacts []Contact
	// Nodes is the number of nodes in the scenario; node IDs in
	// Contacts lie in [0, Nodes).
	Nodes int
}

// ErrEmptySchedule is returned when a schedule contains no contacts.
var ErrEmptySchedule = errors.New("contact: empty schedule")

// Sort orders contacts canonically under Less: by start, then
// endpoints, then end.
func (s *Schedule) Sort() {
	sort.Slice(s.Contacts, func(i, j int) bool {
		return Less(s.Contacts[i], s.Contacts[j])
	})
}

// Validate checks every contact, node-ID bounds, and canonical ordering.
func (s *Schedule) Validate() error {
	if len(s.Contacts) == 0 {
		return ErrEmptySchedule
	}
	if s.Nodes < 2 {
		return fmt.Errorf("contact: schedule needs >=2 nodes, has %d", s.Nodes)
	}
	for i, c := range s.Contacts {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("contact %d: %w", i, err)
		}
		if int(c.B) >= s.Nodes {
			return fmt.Errorf("contact %d: node %d out of range [0,%d)", i, c.B, s.Nodes)
		}
		if i > 0 && s.Contacts[i-1].Start > c.Start {
			return fmt.Errorf("contact %d: schedule not sorted by start time", i)
		}
	}
	return nil
}

// NodeOverlap reports the first pair of contacts that share a node and
// overlap in time, in schedule order. Overlap is generally legal — a
// node co-located with two peers is in two simultaneous contacts under
// every waypoint model — so Validate does not reject it; generators
// whose canonical spec forbids it (ControlledInterval: a node's
// encounters are a renewal sequence) check it via ValidateDisjoint.
func (s *Schedule) NodeOverlap() (a, b Contact, found bool) {
	// Sorted by start, so node n's contact i overlaps a later contact j
	// iff j starts before the largest end seen for n up to i.
	type last struct {
		end sim.Time
		c   Contact
	}
	open := make(map[NodeID]last, s.Nodes)
	for _, c := range s.Contacts {
		for _, n := range [2]NodeID{c.A, c.B} {
			if prev, ok := open[n]; ok && c.Start < prev.end {
				return prev.c, c, true
			}
			if prev, ok := open[n]; !ok || c.End > prev.end {
				open[n] = last{end: c.End, c: c}
			}
		}
	}
	return Contact{}, Contact{}, false
}

// ValidateDisjoint runs Validate and additionally rejects schedules in
// which any node sits in two overlapping contacts.
func (s *Schedule) ValidateDisjoint() error {
	if err := s.Validate(); err != nil {
		return err
	}
	if a, b, found := s.NodeOverlap(); found {
		return fmt.Errorf("contact: node overlap: %v and %v share a node", a, b)
	}
	return nil
}

// Horizon returns the latest end time across all contacts, or zero for an
// empty schedule.
func (s *Schedule) Horizon() sim.Time {
	var h sim.Time
	for _, c := range s.Contacts {
		if c.End > h {
			h = c.End
		}
	}
	return h
}

// Clip returns a new schedule whose contacts are truncated to [0, t].
// Contacts entirely after t are dropped; contacts straddling t are
// shortened.
func (s *Schedule) Clip(t sim.Time) *Schedule {
	out := &Schedule{Nodes: s.Nodes}
	for _, c := range s.Contacts {
		if c.Start >= t {
			continue
		}
		if c.End > t {
			c.End = t
		}
		if c.End > c.Start {
			out.Contacts = append(out.Contacts, c)
		}
	}
	return out
}

// Filter returns a new schedule retaining only contacts for which keep
// returns true.
func (s *Schedule) Filter(keep func(Contact) bool) *Schedule {
	out := &Schedule{Nodes: s.Nodes}
	for _, c := range s.Contacts {
		if keep(c) {
			out.Contacts = append(out.Contacts, c)
		}
	}
	return out
}

// Merge combines two schedules over the same node population into one
// sorted schedule. It does not coalesce overlapping windows.
func Merge(a, b *Schedule) *Schedule {
	out := &Schedule{Nodes: max(a.Nodes, b.Nodes)}
	out.Contacts = append(out.Contacts, a.Contacts...)
	out.Contacts = append(out.Contacts, b.Contacts...)
	out.Sort()
	return out
}

// PairKey identifies an unordered node pair.
type PairKey struct{ A, B NodeID }

// MakePairKey normalizes (a,b) into a PairKey with A < B.
func MakePairKey(a, b NodeID) PairKey {
	if a > b {
		a, b = b, a
	}
	return PairKey{a, b}
}
