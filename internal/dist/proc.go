package dist

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

// This file owns the worker process lifecycle: locating the
// dtnsim-worker binary, spawning N processes wired up over stdin/stdout
// pipes, and reaping them at Close. It is process-boundary plumbing —
// the only code in the package allowed to touch the OS clock, and only
// for the shutdown grace period, which cannot influence simulation
// results (the run is over before wait is called).

// workerBinName is the worker executable Serve runs behind.
const workerBinName = "dtnsim-worker"

// findWorkerBin resolves the worker binary: an explicit path first,
// then a sibling of the running executable (the common install layout),
// then $PATH.
func findWorkerBin(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), workerBinName)
		if info, err := os.Stat(sibling); err == nil && !info.IsDir() {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath(workerBinName); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("dist: %s not found next to the executable or in $PATH (set -worker-bin)", workerBinName)
}

// procSet tracks spawned worker processes for teardown.
type procSet struct {
	cmds []*exec.Cmd
}

// procConn adapts a worker's stdin/stdout pipe pair to
// io.ReadWriteCloser; Close closes the worker's stdin, which is the
// shutdown signal Serve honors as clean EOF.
type procConn struct {
	io.Reader // the worker's stdout
	io.WriteCloser
}

func (p procConn) Close() error { return p.WriteCloser.Close() }

// spawnWorkers starts opt.Workers processes of the worker binary.
// On any failure the already-started processes are torn down.
func spawnWorkers(opt *Options) (*procSet, []io.ReadWriteCloser, error) {
	bin, err := findWorkerBin(opt.WorkerBin)
	if err != nil {
		return nil, nil, err
	}
	ps := &procSet{}
	conns := make([]io.ReadWriteCloser, 0, opt.Workers)
	fail := func(err error) (*procSet, []io.ReadWriteCloser, error) {
		closeAll(conns)
		ps.wait()
		return nil, nil, err
	}
	for i := 0; i < opt.Workers; i++ {
		cmd := exec.Command(bin, opt.WorkerArgs...)
		cmd.Stderr = opt.Stderr
		if cmd.Stderr == nil {
			cmd.Stderr = os.Stderr
		}
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail(fmt.Errorf("dist: worker %d stdin: %w", i, err))
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(fmt.Errorf("dist: worker %d stdout: %w", i, err))
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("dist: starting worker %d (%s): %w", i, bin, err))
		}
		ps.cmds = append(ps.cmds, cmd)
		conns = append(conns, procConn{Reader: stdout, WriteCloser: stdin})
	}
	return ps, conns, nil
}

// wait reaps every spawned worker. Callers close the connections (the
// workers' stdin) first, so a healthy worker exits on its own; one
// stuck past the grace period is killed rather than hanging Close.
func (ps *procSet) wait() error {
	var first error
	for _, cmd := range ps.cmds {
		kill := time.AfterFunc(5*time.Second, func() { //lint:allow rngdiscipline shutdown watchdog: wall-clock grace before killing a stuck worker process; runs after the simulation finished, so it cannot affect results
			cmd.Process.Kill()
		})
		err := cmd.Wait()
		kill.Stop()
		if err != nil && first == nil {
			first = fmt.Errorf("dist: worker exited: %w", err)
		}
	}
	ps.cmds = nil
	return first
}
