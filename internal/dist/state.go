package dist

import (
	"fmt"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/core"
	"dtnsim/internal/dist/frame"
	"dtnsim/internal/node"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// This file converts between live engine state and the wire structs of
// internal/dist/frame. The conversions are exact: restore(snapshot(n))
// reproduces a node observationally identical to n under every engine
// and protocol code path (store contents and incremental indexes,
// counters, encounter history, control load, Received set, Ext state),
// which is what lets a worker process execute items over restored nodes
// and produce bit-identical effects.

// Drop reasons cross the wire as a byte enum; the engine's
// node.DropReason strings stay the in-process representation.
const (
	reasonNone         = 0
	reasonRefused      = 1
	reasonEvicted      = 2
	reasonExpired      = 3
	reasonPurged       = 4
	reasonBytePressure = 5
)

func reasonToByte(r node.DropReason) (byte, error) {
	switch r {
	case "":
		return reasonNone, nil
	case node.DropRefused:
		return reasonRefused, nil
	case node.DropEvicted:
		return reasonEvicted, nil
	case node.DropExpired:
		return reasonExpired, nil
	case node.DropPurged:
		return reasonPurged, nil
	case node.DropBytePressure:
		return reasonBytePressure, nil
	}
	return 0, fmt.Errorf("dist: drop reason %q has no wire code", r)
}

func reasonFromByte(b byte) (node.DropReason, error) {
	switch b {
	case reasonNone:
		return "", nil
	case reasonRefused:
		return node.DropRefused, nil
	case reasonEvicted:
		return node.DropEvicted, nil
	case reasonExpired:
		return node.DropExpired, nil
	case reasonPurged:
		return node.DropPurged, nil
	case reasonBytePressure:
		return node.DropBytePressure, nil
	}
	return "", fmt.Errorf("dist: wire drop reason %d unknown", b)
}

// effectToWire converts one recorded kernel effect to wire form.
func effectToWire(fx *core.Effect) (frame.Effect, error) {
	reason, err := reasonToByte(fx.Reason)
	if err != nil {
		return frame.Effect{}, err
	}
	return frame.Effect{
		Kind:   byte(fx.Kind),
		From:   int(fx.From),
		To:     int(fx.To),
		Src:    int(fx.ID.Src),
		Seq:    fx.ID.Seq,
		Reason: reason,
		At:     float64(fx.At),
		Delay:  fx.Delay,
	}, nil
}

// effectFromWire converts one wire effect back to the kernel form.
func effectFromWire(fx *frame.Effect) (core.Effect, error) {
	reason, err := reasonFromByte(fx.Reason)
	if err != nil {
		return core.Effect{}, err
	}
	return core.Effect{
		Kind:   core.EffectKind(fx.Kind),
		From:   contact.NodeID(fx.From),
		To:     contact.NodeID(fx.To),
		ID:     bundle.ID{Src: contact.NodeID(fx.Src), Seq: fx.Seq},
		Reason: reason,
		At:     sim.Time(fx.At),
		Delay:  fx.Delay,
	}, nil
}

// snapshotNode captures n's complete state in wire form. Copies come
// out in the store's ascending bundle-ID order and the Received set in
// its sorted Items order, so equal nodes always snapshot to equal wire
// forms (the canonical form byte-identical frames rest on).
func snapshotNode(n *node.Node) (frame.NodeState, error) {
	st := frame.NodeState{
		ID:                 int(n.ID),
		ControlSent:        n.ControlSent,
		DataSent:           n.DataSent,
		Refused:            n.Refused,
		Expired:            n.Expired,
		Evicted:            n.Evicted,
		ByteDropped:        n.ByteDropped,
		ControlLoad:        n.Store.ControlLoad(),
		LastEncounterStart: float64(n.LastEncounterStart),
		LastInterval:       n.LastInterval,
	}
	for _, c := range n.Store.Items() {
		st.Copies = append(st.Copies, frame.Copy{
			Src:       int(c.Bundle.ID.Src),
			Seq:       c.Bundle.ID.Seq,
			Dst:       int(c.Bundle.Dst),
			CreatedAt: float64(c.Bundle.CreatedAt),
			Size:      c.Bundle.Meta.Size,
			FirstSeq:  c.Bundle.FirstSeq,
			EC:        c.EC,
			Expiry:    float64(c.Expiry),
			StoredAt:  float64(c.StoredAt),
			Pinned:    c.Pinned,
		})
	}
	for _, id := range n.Received.Items() {
		st.Received = append(st.Received, frame.IDPair{Src: int(id.Src), Seq: id.Seq})
	}
	ext, err := protocol.SnapshotExt(n.Ext)
	if err != nil {
		return frame.NodeState{}, fmt.Errorf("dist: node %d: %w", n.ID, err)
	}
	st.Ext = ext
	return st, nil
}

// restoreInto rebuilds n's state from a snapshot. n must be freshly
// constructed (empty store, empty Received set); the buffer capacities
// come from the node's own construction, not the snapshot.
func restoreInto(n *node.Node, st *frame.NodeState) error {
	n.ControlSent = st.ControlSent
	n.DataSent = st.DataSent
	n.Refused = st.Refused
	n.Expired = st.Expired
	n.Evicted = st.Evicted
	n.ByteDropped = st.ByteDropped
	n.LastEncounterStart = sim.Time(st.LastEncounterStart)
	n.LastInterval = st.LastInterval
	for i := range st.Copies {
		w := &st.Copies[i]
		cp := &bundle.Copy{
			Bundle: &bundle.Bundle{
				ID:        bundle.ID{Src: contact.NodeID(w.Src), Seq: w.Seq},
				Dst:       contact.NodeID(w.Dst),
				CreatedAt: sim.Time(w.CreatedAt),
				Meta:      bundle.Meta{Size: w.Size},
				FirstSeq:  w.FirstSeq,
			},
			EC:       w.EC,
			Expiry:   sim.Time(w.Expiry),
			StoredAt: sim.Time(w.StoredAt),
			Pinned:   w.Pinned,
		}
		if err := n.Store.Restore(cp); err != nil {
			return fmt.Errorf("dist: node %d copy %v: %w", st.ID, cp.Bundle.ID, err)
		}
	}
	// Control load after Restore: Restore never consults Free, so order
	// does not matter for correctness, but setting it last keeps the
	// store's invariants trivially intact throughout.
	n.Store.SetControlLoad(st.ControlLoad)
	for _, id := range st.Received {
		n.Received.Add(bundle.ID{Src: contact.NodeID(id.Src), Seq: id.Seq})
	}
	if err := protocol.RestoreExt(n, st.Ext); err != nil {
		return fmt.Errorf("dist: node %d: %w", st.ID, err)
	}
	return nil
}

// itemToWire converts one collected epoch item to wire form, keyed by
// its index in the epoch's canonical order.
func itemToWire(idx int, it *core.EpochItem) frame.Item {
	w := frame.Item{
		Idx: idx,
		Gen: it.Gen,
		T:   float64(it.T),
		A:   int(it.A),
		B:   int(it.B),
	}
	if it.Gen {
		w.FlowSrc = int(it.Flow.Src)
		w.FlowDst = int(it.Flow.Dst)
		w.Count = it.Flow.Count
		w.StartAt = float64(it.Flow.StartAt)
		w.Size = it.Flow.Size
		w.Base = it.Base
		w.FirstSeq = it.FirstSeq
	} else {
		w.Start = float64(it.C.Start)
		w.End = float64(it.C.End)
		w.Bandwidth = it.C.Bandwidth
	}
	return w
}

// itemFromWire reconstructs the epoch item a worker executes. The
// dependency-chain fields stay zero: within one round a worker runs its
// items strictly in order, so no countdown scheduling happens there.
func itemFromWire(w *frame.Item) core.EpochItem {
	it := core.EpochItem{
		T:   sim.Time(w.T),
		Gen: w.Gen,
		A:   contact.NodeID(w.A),
		B:   contact.NodeID(w.B),
	}
	if w.Gen {
		it.Flow = core.Flow{
			Src:     contact.NodeID(w.FlowSrc),
			Dst:     contact.NodeID(w.FlowDst),
			Count:   w.Count,
			StartAt: sim.Time(w.StartAt),
			Size:    w.Size,
		}
		it.Base = w.Base
		it.FirstSeq = w.FirstSeq
	} else {
		it.C = contact.Contact{
			A:         contact.NodeID(w.A),
			B:         contact.NodeID(w.B),
			Start:     sim.Time(w.Start),
			End:       sim.Time(w.End),
			Bandwidth: w.Bandwidth,
		}
	}
	return it
}
