package dist

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"dtnsim/internal/buffer"
	"dtnsim/internal/contact"
	"dtnsim/internal/core"
	"dtnsim/internal/dist/frame"
	"dtnsim/internal/node"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// Serve runs the worker side of the protocol over a frame stream: a
// Hello handshake, one Init, then rounds until the coordinator closes
// the stream (clean io.EOF returns nil — how Close shuts a worker
// down).
//
// Per round the worker reconstructs every node its items touch — from
// the shipped snapshot when one is present, from its live-node cache
// when the round carries a CacheRef (delta shipping), freshly
// (pristine) when neither — executes the items in order through
// core.Kernel, and replies with each item's effect buffer plus the
// updated snapshots of all involved nodes. Internal failures are
// reported as Error frames and latched: subsequent rounds get the same
// report instead of executing on corrupt state, and the coordinator
// turns the first one into the run error.
func Serve(r io.Reader, w io.Writer) error {
	return ServeWith(r, w, ServeOpts{})
}

// ServeOpts configures Serve's fault injection, used by recovery tests
// and the CI kill-a-worker smoke leg.
type ServeOpts struct {
	// FailAfterRounds > 0 makes the worker drop the connection
	// (simulating a crash) before replying to the FailAfterRounds-th
	// round it receives.
	FailAfterRounds int
}

// ServeWith is Serve with options.
func ServeWith(r io.Reader, w io.Writer, opts ServeOpts) error {
	br, bw := bufio.NewReader(r), bufio.NewWriter(w)
	var s workerState
	rounds := 0
	for {
		m, err := frame.Read(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch {
		case m.Hello != nil:
			reply := &frame.Msg{Enc: m.Enc, Hello: &frame.Hello{Version: frame.Version, Caps: frame.CapDelta}}
			if err := frame.Write(bw, reply); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case m.Init != nil:
			if err := s.init(m.Init); err != nil {
				s.fail = err.Error()
			}
		case m.Round != nil:
			rounds++
			if opts.FailAfterRounds > 0 && rounds >= opts.FailAfterRounds {
				return fmt.Errorf("dist: worker failure injected at round %d", rounds)
			}
			var reply *frame.Msg
			if s.fail != "" {
				reply = &frame.Msg{Enc: m.Enc, Err: &frame.ErrorMsg{Msg: s.fail}}
			} else if eff, err := s.round(m.Round); err != nil {
				s.fail = err.Error()
				reply = &frame.Msg{Enc: m.Enc, Err: &frame.ErrorMsg{Msg: s.fail}}
			} else {
				reply = &frame.Msg{Enc: m.Enc, Effects: eff}
			}
			if err := frame.Write(bw, reply); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: worker received unexpected frame type %d", m.Type())
		}
	}
}

// workerState is one run's worker-side state: the kernel, the protocol
// instance (for pristine-node Init), and the materialized nodes.
type workerState struct {
	cfg   frame.Init
	kern  *core.Kernel
	proto protocol.Protocol
	// nodes[i] is the local materialization of node i. A node the
	// worker executed stays live between rounds (live[i], at version
	// ver[i] — the Seq of the last round that touched it) so the
	// coordinator can ship a CacheRef instead of its snapshot; a
	// shipped snapshot always rebuilds the node from scratch.
	nodes []*node.Node
	live  []bool
	ver   []uint64
	items []core.EpochItem
	fail  string
}

func (s *workerState) init(in *frame.Init) error {
	if in.Nodes < 1 {
		return fmt.Errorf("dist: init for %d nodes", in.Nodes)
	}
	if in.BufferCap < 1 {
		return fmt.Errorf("dist: init with buffer capacity %d", in.BufferCap)
	}
	if in.BufferBytes < 0 {
		return fmt.Errorf("dist: init with buffer bytes %d", in.BufferBytes)
	}
	fac, err := protocol.Parse(in.Protocol)
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	s.cfg = *in
	s.proto = fac.New()
	s.nodes = make([]*node.Node, in.Nodes)
	s.live = make([]bool, in.Nodes)
	s.ver = make([]uint64, in.Nodes)
	s.kern = &core.Kernel{
		Nodes:          s.nodes,
		Hooks:          make([]*core.EffectBuf, in.Nodes),
		Protocol:       s.proto,
		Seed:           in.Seed,
		TxTime:         in.TxTime,
		RecordsPerSlot: in.RecordsPerSlot,
		Bandwidth:      in.Bandwidth,
		ControlBytes:   in.ControlBytes,
		RNG:            sim.NewReseedable(),
	}
	if in.DropPolicy != "" {
		// Mirror the engine's per-executor policy construction exactly:
		// same name, same derived seed, victim draws from this kernel's
		// encounter stream.
		pol, err := buffer.NewDropPolicy(in.DropPolicy, in.Seed^0xb17ed70b5eed)
		if err != nil {
			return fmt.Errorf("dist: %w", err)
		}
		if sp, ok := pol.(buffer.StreamPolicy); ok {
			sp.SetStream(s.kern.RNG)
		}
		s.kern.Policy = pol
	}
	return nil
}

// round executes one Round and builds its Effects reply.
func (s *workerState) round(r *frame.Round) (*frame.Effects, error) {
	if s.kern == nil {
		return nil, fmt.Errorf("dist: round %d before init", r.Seq)
	}
	// Materialize the shipped states first, resolve cache references
	// against the live nodes, then pristine nodes for any item endpoint
	// the round carried neither for.
	for i := range r.States {
		st := &r.States[i]
		if st.ID < 0 || st.ID >= len(s.nodes) {
			return nil, fmt.Errorf("dist: round %d: state for node %d outside population", r.Seq, st.ID)
		}
		if err := restoreInto(s.materialize(st.ID), st); err != nil {
			return nil, err
		}
	}
	fresh := make(map[int]bool, len(r.States)+len(r.Cached))
	for i := range r.States {
		fresh[r.States[i].ID] = true
	}
	for _, ref := range r.Cached {
		if ref.ID < 0 || ref.ID >= len(s.nodes) {
			return nil, fmt.Errorf("dist: round %d: cache ref for node %d outside population", r.Seq, ref.ID)
		}
		// A ref the worker cannot resolve means the two sides disagree
		// about what this worker holds — corruption, not recoverable.
		if !s.live[ref.ID] || s.ver[ref.ID] != ref.Ver {
			return nil, fmt.Errorf("dist: round %d: no live node %d at version %d", r.Seq, ref.ID, ref.Ver)
		}
		fresh[ref.ID] = true
	}
	for i := range r.Items {
		w := &r.Items[i]
		for _, id := range []int{w.A, w.B} {
			if id < 0 || id >= len(s.nodes) {
				return nil, fmt.Errorf("dist: round %d: item endpoint %d outside population", r.Seq, id)
			}
			if fresh[id] {
				continue
			}
			fresh[id] = true
			// Pristine node: exactly what the engine's setup produces.
			s.proto.Init(s.materialize(id))
		}
	}

	// Execute in wire order — the coordinator sends each worker's items
	// in ascending epoch order, so per-node program order is preserved.
	if cap(s.items) < len(r.Items) {
		s.items = make([]core.EpochItem, len(r.Items))
	}
	s.items = s.items[:len(r.Items)]
	eff := &frame.Effects{Seq: r.Seq, Items: make([]frame.ItemEffects, len(r.Items))}
	for i := range r.Items {
		w := &r.Items[i]
		s.items[i] = itemFromWire(w)
		it := &s.items[i]
		s.kern.Exec(it)
		ie := &eff.Items[i]
		ie.Idx = w.Idx
		fxs := it.Fx.Effects()
		for j := range fxs {
			wfx, err := effectToWire(&fxs[j])
			if err != nil {
				return nil, err
			}
			ie.Fx = append(ie.Fx, wfx)
		}
	}

	// Ship back the involved nodes' updated states, sorted by ID — the
	// same set and order the coordinator computed independently.
	ids := make([]int, 0, len(fresh))
	for i := range r.Items {
		w := &r.Items[i]
		ids = append(ids, w.A)
		if w.B != w.A {
			ids = append(ids, w.B)
		}
	}
	ids = dedupeSorted(ids)
	eff.States = make([]frame.NodeState, len(ids))
	for i, id := range ids {
		st, err := snapshotNode(s.nodes[id])
		if err != nil {
			return nil, err
		}
		eff.States[i] = st
		// The node stays live at this round's version — the
		// coordinator may reference it instead of re-shipping.
		s.live[id] = true
		s.ver[id] = r.Seq
	}
	return eff, nil
}

// materialize installs a fresh empty node instance for id, replacing
// any stale local one, with the run's buffer capacities and its drop
// hook bound to the kernel.
func (s *workerState) materialize(id int) *node.Node {
	n := node.New(contact.NodeID(id), s.cfg.BufferCap)
	if s.cfg.BufferBytes > 0 {
		n.Store.SetByteCap(s.cfg.BufferBytes)
	}
	s.kern.BindHook(n)
	s.nodes[id] = n
	return n
}

// dedupeSorted sorts ids and removes duplicates in place.
func dedupeSorted(ids []int) []int {
	sort.Ints(ids)
	uniq := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			uniq = append(uniq, id)
		}
	}
	return uniq
}
