package dist

// Distributed-executor equivalence suite: the proof obligation of
// DESIGN.md §13. Golden-style cells are run sequentially, through the
// in-process sharded executor, and through the distributed backend at
// several worker counts — Results compared field-for-field (floats
// bit-exact) and observer event CSVs byte-for-byte. The crash tests pin
// both failure contracts: with a redial-capable transport a worker
// dying mid-run is revived and its round replayed bit-identically;
// without one (or past the restart budget) the loss surfaces as a
// wrapped ErrWorkerLost instead of a deadlock.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/core"
	"dtnsim/internal/dist/frame"
	"dtnsim/internal/mobility"
	"dtnsim/internal/node"
	"dtnsim/internal/protocol"
	"dtnsim/internal/report"
	"dtnsim/internal/sim"
)

// TestMain doubles as the worker executable for the real-process
// tests: re-invoking the test binary with this argument runs Serve
// over stdin/stdout, exactly like cmd/dtnsim-worker. An optional
// second argument injects a crash after that many rounds (per
// process), exercising the respawn path with real processes.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "serve-worker" {
		var opts ServeOpts
		if len(os.Args) > 2 {
			n, err := strconv.Atoi(os.Args[2])
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad fail-rounds arg:", err)
				os.Exit(1)
			}
			opts.FailAfterRounds = n
		}
		if err := ServeWith(os.Stdin, os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

type distCell struct {
	name   string
	proto  string
	mob    string
	flows  []core.Flow
	txTime float64
}

// distCells mirrors the golden grid's mobility × workload spread:
// a fixed trace with two flows sharing a source, an RWP derivative,
// and the interval substrate with a shorter transmission time.
var distCells = []distCell{
	{
		name:  "trace",
		proto: "immunity",
		mob:   "cambridge:seed=7",
		flows: []core.Flow{
			{Src: 0, Dst: 7, Count: 25},
			{Src: 0, Dst: 3, Count: 10, StartAt: 5000},
		},
		txTime: 100,
	},
	{
		name:   "rwp",
		proto:  "cumimmunity",
		mob:    "subscriber:seed=7",
		flows:  []core.Flow{{Src: 1, Dst: 5, Count: 30}},
		txTime: 100,
	},
	{
		name:   "interval",
		proto:  "ecttl",
		mob:    "interval:max=400,seed=7",
		flows:  []core.Flow{{Src: 0, Dst: 7, Count: 20}},
		txTime: 25,
	},
}

// cellConfig builds a cell's run config; streamed selects the pull
// source form the sharded loop natively consumes.
func cellConfig(t testing.TB, c distCell, streamed bool) core.Config {
	t.Helper()
	src, err := mobility.Parse(c.mob)
	if err != nil {
		t.Fatalf("mobility spec %q: %v", c.mob, err)
	}
	fac, err := protocol.Parse(c.proto)
	if err != nil {
		t.Fatalf("protocol spec %q: %v", c.proto, err)
	}
	cfg := core.Config{
		Protocol:     fac.New(),
		Flows:        c.flows,
		TxTime:       c.txTime,
		Seed:         2012,
		RunToHorizon: true,
	}
	if streamed {
		stream, err := src.Stream(7)
		if err != nil {
			t.Fatalf("stream %q: %v", c.mob, err)
		}
		cfg.Source = stream
	} else {
		sched, err := src.Generate(7)
		if err != nil {
			t.Fatalf("generate %q: %v", c.mob, err)
		}
		cfg.Schedule = sched
	}
	return cfg
}

// inProcWorkers serves worker connections with in-process ServeWith
// goroutines over synchronous pipes — the Dial/Redial seam the
// white-box tests exercise the full coordinator↔worker protocol
// through without spawning processes. failAfter[i] > 0 injects a
// crash: worker i drops its connection before replying to its
// failAfter[i]-th round — on its first session only, or on every
// session (including redialed replacements) when failEvery is set.
type inProcWorkers struct {
	failAfter map[int]int
	failEvery bool

	mu       sync.Mutex
	sessions map[int]int
}

func newInProcWorkers(failAfter map[int]int) *inProcWorkers {
	return &inProcWorkers{failAfter: failAfter, sessions: make(map[int]int)}
}

func (p *inProcWorkers) dialOne(i int) io.ReadWriteCloser {
	p.mu.Lock()
	session := p.sessions[i]
	p.sessions[i]++
	fail := 0
	if p.failEvery || session == 0 {
		fail = p.failAfter[i]
	}
	p.mu.Unlock()
	toWorkerR, toWorkerW := io.Pipe()
	fromWorkerR, fromWorkerW := io.Pipe()
	go func() {
		err := ServeWith(toWorkerR, fromWorkerW, ServeOpts{FailAfterRounds: fail})
		// Unblock the coordinator's pending reads and fail its
		// future writes, like a dead process's pipes would.
		if err != nil {
			fromWorkerW.CloseWithError(err)
			toWorkerR.CloseWithError(err)
			return
		}
		fromWorkerW.Close()
		toWorkerR.Close()
	}()
	return struct {
		io.Reader
		io.WriteCloser
	}{fromWorkerR, toWorkerW}
}

func (p *inProcWorkers) dial(n int) ([]io.ReadWriteCloser, error) {
	conns := make([]io.ReadWriteCloser, n)
	for i := range conns {
		conns[i] = p.dialOne(i)
	}
	return conns, nil
}

func (p *inProcWorkers) redial(i int) (io.ReadWriteCloser, error) { return p.dialOne(i), nil }

// dialInProcess is the redial-less legacy seam: a backend built on it
// cannot recover lost workers, which the crash-contract test relies
// on.
func dialInProcess(failAfter map[int]int) func(n int) ([]io.ReadWriteCloser, error) {
	return newInProcWorkers(failAfter).dial
}

// runCell runs one cell and captures its Result plus event CSV.
func runCell(t testing.TB, cfg core.Config) (*core.Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	st := report.NewStream(&buf, true)
	cfg.Observers = append(cfg.Observers, st)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream write: %v", err)
	}
	return res, buf.Bytes()
}

// runCellDist runs one cell through a distributed backend.
func runCellDist(t testing.TB, c distCell, opt Options) (*core.Result, []byte) {
	t.Helper()
	if opt.Dial == nil {
		opt.Dial = dialInProcess(nil)
	}
	if opt.Protocol == "" {
		opt.Protocol = c.proto
	}
	b, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer b.Close()
	cfg := cellConfig(t, c, true)
	cfg.Backend = b
	return runCell(t, cfg)
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestDistWorkerCountInvariance is the tentpole proof: for every cell,
// the distributed backend at N ∈ {1, 2, 4} workers produces a Result
// and event CSV byte-identical to the sequential engine and to the
// in-process sharded executor. Small round windows force multi-round
// epochs, so state shipping and re-restoration are exercised hard.
func TestDistWorkerCountInvariance(t *testing.T) {
	for _, c := range distCells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			seqRes, seqCSV := runCell(t, cellConfig(t, c, false))
			shCfg := cellConfig(t, c, true)
			shCfg.Shards = 4
			shRes, shCSV := runCell(t, shCfg)
			if !reflect.DeepEqual(seqRes, shRes) {
				t.Fatalf("sharded (K=4) Result diverged from sequential")
			}
			if !bytes.Equal(seqCSV, shCSV) {
				t.Fatalf("sharded (K=4) event CSV diverged (byte %d)", firstDiff(seqCSV, shCSV))
			}
			for _, workers := range []int{1, 2, 4} {
				res, csv := runCellDist(t, c, Options{Workers: workers, RoundItems: 32})
				if !reflect.DeepEqual(seqRes, res) {
					t.Errorf("N=%d: Result diverged from sequential\n got: %+v\nwant: %+v",
						workers, res, seqRes)
				}
				if !bytes.Equal(seqCSV, csv) {
					t.Errorf("N=%d: event CSV diverged from sequential (first diff at byte %d)",
						workers, firstDiff(seqCSV, csv))
				}
			}
		})
	}
}

// TestDistJSONEncodingInvariance pins the canonical-JSON debug framing
// to the same bit-identity as the binary codec.
func TestDistJSONEncodingInvariance(t *testing.T) {
	c := distCells[0]
	seqRes, seqCSV := runCell(t, cellConfig(t, c, false))
	res, csv := runCellDist(t, c, Options{Workers: 2, RoundItems: 32, JSON: true})
	if !reflect.DeepEqual(seqRes, res) {
		t.Errorf("JSON framing: Result diverged from sequential")
	}
	if !bytes.Equal(seqCSV, csv) {
		t.Errorf("JSON framing: event CSV diverged (byte %d)", firstDiff(seqCSV, csv))
	}
}

// TestDistGoldenGrid runs the full builtin-protocol grid over the
// cells' mobilities at N=2 — the distributed arm of the golden
// equivalence suite.
func TestDistGoldenGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed golden grid is slow")
	}
	for _, protoSpec := range protocol.BuiltinSpecs() {
		for _, base := range distCells {
			c := base
			c.proto = protoSpec
			seqRes, _ := runCell(t, cellConfig(t, c, false))
			res, _ := runCellDist(t, c, Options{Workers: 2})
			if !reflect.DeepEqual(seqRes, res) {
				t.Errorf("%s|%s: distributed (N=2) Result diverged from sequential",
					protoSpec, c.name)
			}
		}
	}
}

// TestDistWorkerCrash is the satellite obligation: a worker dying
// mid-run (here: dropping its connection before replying to its second
// round) must surface as an error wrapping ErrWorkerLost — promptly,
// not as a deadlock — and Close must still tear the backend down.
func TestDistWorkerCrash(t *testing.T) {
	for _, crashWorker := range []int{0, 1} {
		b, err := New(Options{
			Workers:    2,
			Protocol:   distCells[0].proto,
			RoundItems: 8,
			Dial:       dialInProcess(map[int]int{crashWorker: 2}),
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		cfg := cellConfig(t, distCells[0], true)
		cfg.Backend = b
		_, err = core.Run(cfg)
		if !errors.Is(err, ErrWorkerLost) {
			t.Errorf("crash of worker %d: Run error = %v, want ErrWorkerLost", crashWorker, err)
		}
		if err := b.Close(); err != nil {
			t.Errorf("Close after crash: %v", err)
		}
	}
}

// TestDistWorkerLossReplay is the tentpole recovery proof: a worker
// dying mid-run on a redial-capable transport is replaced and its
// in-flight round replayed from the coordinator's authoritative
// states, completing the run with Results and event CSVs
// byte-identical to the sequential engine. Kill rounds are drawn from
// a seeded RNG (plus the first round, the boundary case) and both
// workers take turns dying. Run under -race in CI.
func TestDistWorkerLossReplay(t *testing.T) {
	c := distCells[0]
	seqRes, seqCSV := runCell(t, cellConfig(t, c, false))
	rng := sim.NewRNG(2012)
	killRounds := []int{1, 2 + rng.IntN(8), 2 + rng.IntN(20)}
	for _, kill := range killRounds {
		for _, victim := range []int{0, 1} {
			t.Run(fmt.Sprintf("round%d/worker%d", kill, victim), func(t *testing.T) {
				p := newInProcWorkers(map[int]int{victim: kill})
				b, err := New(Options{
					Workers:    2,
					Protocol:   c.proto,
					RoundItems: 8,
					Dial:       p.dial,
					Redial:     p.redial,
				})
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				defer b.Close()
				budget := b.restarts
				cfg := cellConfig(t, c, true)
				cfg.Backend = b
				res, csv := runCell(t, cfg)
				if b.restarts != budget-1 {
					t.Errorf("restart budget went %d -> %d, want exactly one revival", budget, b.restarts)
				}
				if !reflect.DeepEqual(seqRes, res) {
					t.Errorf("Result diverged from sequential after worker-loss replay")
				}
				if !bytes.Equal(seqCSV, csv) {
					t.Errorf("event CSV diverged after worker-loss replay (byte %d)", firstDiff(seqCSV, csv))
				}
			})
		}
	}
}

// TestDistRepeatedWorkerLoss crashes every session of one worker —
// including the redialed replacements — every few rounds. Each
// replacement makes progress before dying, so with budget the run
// still completes bit-identically: recovery is not a one-shot.
func TestDistRepeatedWorkerLoss(t *testing.T) {
	c := distCells[0]
	seqRes, seqCSV := runCell(t, cellConfig(t, c, false))
	p := newInProcWorkers(map[int]int{1: 4})
	p.failEvery = true
	b, err := New(Options{
		Workers:     2,
		Protocol:    c.proto,
		RoundItems:  16,
		MaxRestarts: 1000,
		Dial:        p.dial,
		Redial:      p.redial,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer b.Close()
	budget := b.restarts
	cfg := cellConfig(t, c, true)
	cfg.Backend = b
	res, csv := runCell(t, cfg)
	if revived := budget - b.restarts; revived < 2 {
		t.Errorf("only %d revivals; the cell should need several", revived)
	}
	if !reflect.DeepEqual(seqRes, res) {
		t.Errorf("Result diverged from sequential under repeated worker loss")
	}
	if !bytes.Equal(seqCSV, csv) {
		t.Errorf("event CSV diverged under repeated worker loss (byte %d)", firstDiff(seqCSV, csv))
	}
}

// TestDistRestartBudgetExhausted pins the recovery bound: a worker
// that dies on every session before completing a round burns the
// restart budget and the loss surfaces as ErrWorkerLost. A negative
// MaxRestarts disables recovery outright, failing on the first loss
// without consuming a redial.
func TestDistRestartBudgetExhausted(t *testing.T) {
	for _, maxRestarts := range []int{2, -1} {
		p := newInProcWorkers(map[int]int{1: 1})
		p.failEvery = true
		b, err := New(Options{
			Workers:     2,
			Protocol:    distCells[0].proto,
			RoundItems:  8,
			MaxRestarts: maxRestarts,
			Dial:        p.dial,
			Redial:      p.redial,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		cfg := cellConfig(t, distCells[0], true)
		cfg.Backend = b
		_, err = core.Run(cfg)
		if !errors.Is(err, ErrWorkerLost) {
			t.Errorf("MaxRestarts=%d: Run error = %v, want ErrWorkerLost", maxRestarts, err)
		}
		if maxRestarts < 0 {
			p.mu.Lock()
			if sessions := p.sessions[1]; sessions != 1 {
				t.Errorf("disabled recovery redialed anyway: %d sessions", sessions)
			}
			p.mu.Unlock()
		}
		if err := b.Close(); err != nil {
			t.Errorf("Close after exhausted budget: %v", err)
		}
	}
}

// serveTCPWorkers listens on an ephemeral loopback port and serves
// every accepted connection with an in-process ServeWith goroutine —
// a real dtnsim-worker -listen in miniature. failFirst > 0 makes the
// first accepted connection crash before replying to that round;
// later connections (the coordinator's redials) serve cleanly.
func serveTCPWorkers(t *testing.T, failFirst int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	var first atomic.Bool
	first.Store(true)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			fail := 0
			if first.Swap(false) {
				fail = failFirst
			}
			go func() {
				defer c.Close()
				ServeWith(c, c, ServeOpts{FailAfterRounds: fail})
			}()
		}
	}()
	return ln.Addr().String()
}

// TestDistTCPTransport is the tentpole transport proof: the same cell
// run over real TCP connections to listening workers — including one
// whose first session crashes mid-run and is revived by re-dialing
// the same host — stays byte-identical to the sequential engine.
func TestDistTCPTransport(t *testing.T) {
	c := distCells[0]
	seqRes, seqCSV := runCell(t, cellConfig(t, c, false))
	cases := []struct {
		name      string
		failFirst int
	}{
		{"healthy", 0},
		{"worker-killed-mid-run", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hosts := []string{serveTCPWorkers(t, 0), serveTCPWorkers(t, tc.failFirst)}
			b, err := New(Options{Hosts: hosts, Protocol: c.proto, RoundItems: 8})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer b.Close()
			if b.opt.Workers != len(hosts) {
				t.Errorf("Workers defaulted to %d, want %d", b.opt.Workers, len(hosts))
			}
			cfg := cellConfig(t, c, true)
			cfg.Backend = b
			res, csv := runCell(t, cfg)
			if !reflect.DeepEqual(seqRes, res) {
				t.Errorf("TCP transport: Result diverged from sequential")
			}
			if !bytes.Equal(seqCSV, csv) {
				t.Errorf("TCP transport: event CSV diverged (byte %d)", firstDiff(seqCSV, csv))
			}
		})
	}
}

// countingConn counts bytes the coordinator writes, for the delta
// wire-savings assertion.
type countingConn struct {
	io.ReadWriteCloser
	n *atomic.Int64
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.ReadWriteCloser.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// TestDistDeltaEqualsFull is the delta-shipping proof obligation:
// the same cells with delta shipping (default) and with
// FullSnapshots forced produce byte-identical Results and CSVs —
// applying cache references is observationally equal to restoring the
// full snapshot — while the delta path puts strictly fewer
// coordinator→worker bytes on the wire.
func TestDistDeltaEqualsFull(t *testing.T) {
	for _, c := range distCells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			seqRes, seqCSV := runCell(t, cellConfig(t, c, false))
			var sent [2]atomic.Int64
			for mode, full := range []bool{false, true} {
				p := newInProcWorkers(nil)
				counter := &sent[mode]
				dial := func(n int) ([]io.ReadWriteCloser, error) {
					conns, err := p.dial(n)
					for i := range conns {
						conns[i] = countingConn{ReadWriteCloser: conns[i], n: counter}
					}
					return conns, err
				}
				b, err := New(Options{
					Workers:       2,
					Protocol:      c.proto,
					RoundItems:    32,
					FullSnapshots: full,
					Dial:          dial,
				})
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				cfg := cellConfig(t, c, true)
				cfg.Backend = b
				res, csv := runCell(t, cfg)
				if err := b.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
				if !reflect.DeepEqual(seqRes, res) {
					t.Errorf("FullSnapshots=%v: Result diverged from sequential", full)
				}
				if !bytes.Equal(seqCSV, csv) {
					t.Errorf("FullSnapshots=%v: event CSV diverged (byte %d)", full, firstDiff(seqCSV, csv))
				}
			}
			delta, full := sent[0].Load(), sent[1].Load()
			if delta >= full {
				t.Errorf("delta shipping sent %d bytes, full snapshots %d — no wire savings", delta, full)
			}
			t.Logf("coordinator->worker bytes: delta %d, full %d (%.2fx)", delta, full, float64(full)/float64(delta))
		})
	}
}

// TestDistRealWorkerProcessRespawn exercises the pipe transport's
// respawn path with real processes: every incarnation of worker 1
// crashes after a few rounds, each respawned replacement resumes from
// replayed authoritative state, and the run still matches the
// sequential engine byte-for-byte.
func TestDistRealWorkerProcessRespawn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawning worker processes is slow")
	}
	c := distCells[0]
	seqRes, seqCSV := runCell(t, cellConfig(t, c, false))
	bin, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	b, err := New(Options{
		Workers:     2,
		Protocol:    c.proto,
		RoundItems:  16,
		MaxRestarts: 1000,
		WorkerBin:   bin,
		WorkerArgs:  []string{"serve-worker", "6"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	budget := b.restarts
	cfg := cellConfig(t, c, true)
	cfg.Backend = b
	res, csv := runCell(t, cfg)
	if err := b.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if revived := budget - b.restarts; revived < 1 {
		t.Errorf("no respawns happened; the fault injection should force several")
	}
	if !reflect.DeepEqual(seqRes, res) {
		t.Errorf("respawned processes: Result diverged from sequential")
	}
	if !bytes.Equal(seqCSV, csv) {
		t.Errorf("respawned processes: event CSV diverged (byte %d)", firstDiff(seqCSV, csv))
	}
}

// TestDistRealWorkerProcesses runs a cell over actual worker processes
// (the test binary re-invoked as a Serve loop), pinning the exec
// plumbing: pipes, binary discovery via WorkerBin, argument passing,
// and clean shutdown.
func TestDistRealWorkerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawning worker processes is slow")
	}
	c := distCells[0]
	seqRes, seqCSV := runCell(t, cellConfig(t, c, false))
	bin, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	b, err := New(Options{
		Workers:    2,
		Protocol:   c.proto,
		WorkerBin:  bin,
		WorkerArgs: []string{"serve-worker"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg := cellConfig(t, c, true)
	cfg.Backend = b
	res, csv := runCell(t, cfg)
	if err := b.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if !reflect.DeepEqual(seqRes, res) {
		t.Errorf("real processes: Result diverged from sequential")
	}
	if !bytes.Equal(seqCSV, csv) {
		t.Errorf("real processes: event CSV diverged (byte %d)", firstDiff(seqCSV, csv))
	}
}

// TestDistUnknownProtocolSpec pins Start's cross-check: a spec that
// resolves to a different protocol than the run config's instance is
// rejected before any item ships.
func TestDistUnknownProtocolSpec(t *testing.T) {
	b, err := New(Options{Workers: 1, Protocol: "pure", Dial: dialInProcess(nil)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer b.Close()
	cfg := cellConfig(t, distCells[0], true) // protocol "immunity"
	cfg.Backend = b
	if _, err := core.Run(cfg); err == nil {
		t.Fatal("mismatched protocol spec accepted")
	}
}

// TestSnapshotNodeRoundTrip pins the node codec on a node with every
// state dimension populated: counters, encounter history, control
// load, pinned and relay copies, Received set, Ext state.
func TestSnapshotNodeRoundTrip(t *testing.T) {
	fac, err := protocol.Parse("immunity")
	if err != nil {
		t.Fatal(err)
	}
	proto := fac.New()
	n := node.New(3, 10)
	proto.Init(n)
	n.ControlSent, n.DataSent, n.Refused = 17, 4, 1
	n.Expired, n.Evicted, n.ByteDropped = 2, 3, 9
	n.ObserveEncounter(100)
	n.ObserveEncounter(350)
	n.Store.SetControlLoad(0.25)
	mk := func(src contact.NodeID, seq int, dst contact.NodeID, pinned bool, expiry sim.Time) {
		cp := &bundle.Copy{
			Bundle: &bundle.Bundle{
				ID:        bundle.ID{Src: src, Seq: seq},
				Dst:       dst,
				CreatedAt: 42.5,
				Meta:      bundle.Meta{Size: 1024},
				FirstSeq:  seq,
			},
			EC:       2,
			Expiry:   expiry,
			StoredAt: 43,
			Pinned:   pinned,
		}
		if err := n.Store.Put(cp); err != nil {
			t.Fatalf("put %v: %v", cp.Bundle.ID, err)
		}
	}
	mk(3, 0, 7, true, sim.Infinity)
	mk(1, 2, 5, false, 900.25)
	n.Received.Add(bundle.ID{Src: 0, Seq: 4})
	st, err := snapshotNode(n)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// Round-trip through the frame codec too: the state must survive
	// the wire bit-exactly.
	enc, err := frame.Encode(&frame.Msg{Round: &frame.Round{States: []frame.NodeState{st}}})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := frame.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	st2 := dec.Round.States[0]
	n2 := node.New(3, 10)
	if err := restoreInto(n2, &st2); err != nil {
		t.Fatalf("restore: %v", err)
	}
	again, err := snapshotNode(n2)
	if err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	if !reflect.DeepEqual(st, again) {
		t.Errorf("node state did not survive the round trip:\n got %+v\nwant %+v", again, st)
	}
	if n2.Store.Len() != 2 || n2.Store.ControlLoad() != 0.25 {
		t.Errorf("restored store: len=%d load=%v", n2.Store.Len(), n2.Store.ControlLoad())
	}
	if n2.LastEncounterStart != 350 || n2.LastInterval != 250 {
		t.Errorf("restored encounter history: start=%v interval=%v",
			n2.LastEncounterStart, n2.LastInterval)
	}
}
