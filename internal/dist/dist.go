// Package dist is the distributed executor (DESIGN.md §13): a
// coordinator that runs the engine's sharded loop locally — item
// collection, canonical-order merge, sampling, Result assembly — while
// shipping epoch items to worker processes over length-prefixed binary
// frames (internal/dist/frame) and installing the returned effect
// buffers and node states. Connections come from a
// transport.Transport: locally spawned processes over stdin/stdout
// pipes, or TCP (optionally TLS) to workers on other machines.
//
// The coordinator owns the authoritative node state as decoded wire
// snapshots: each round it sends every involved worker the states of
// the non-pristine nodes its items touch — as full snapshots, or as
// cache references for nodes whose state the worker already holds from
// a previous round (delta shipping, negotiated via the Hello
// handshake) — the worker reconstructs those nodes, executes the items
// through the same core.Kernel the in-process shards run, and ships
// back the mutated states plus each item's effect buffer. Determinism
// is inherited wholesale: items execute over identical state through
// identical code with encounter-derived RNG seeding, and the merge
// replays effects in the same canonical order — so Results and
// observer streams are byte-identical to the in-process sharded (and
// sequential) engines for every worker count.
//
// Because the coordinator's snapshots are authoritative, a lost worker
// is recoverable: the transport re-dials or re-spawns it and the
// coordinator replays the in-flight round from its own states — full
// snapshots, since the replacement's cache is empty — so the run
// completes bit-identically instead of failing (bounded by
// Options.MaxRestarts).
package dist

import (
	"bufio"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"sort"

	"dtnsim/internal/buffer"
	"dtnsim/internal/core"
	"dtnsim/internal/dist/frame"
	"dtnsim/internal/dist/transport"
	"dtnsim/internal/protocol"
)

// DefaultRoundItems is the per-round item window: each epoch is cut
// into windows of this many canonical-order items, the window's items
// are grouped into node-disjoint components, and components are spread
// across workers. Smaller windows expose more parallelism on dense
// contact plans (a whole epoch's contact graph is usually one giant
// component; a window's rarely is) at the cost of more frames.
const DefaultRoundItems = 512

// ErrWorkerLost reports a worker process that died or broke its
// connection mid-run. Callers branch with errors.Is.
var ErrWorkerLost = errors.New("dist: worker lost")

// Options configures a distributed backend.
type Options struct {
	// Workers is the number of worker connections. Required, >= 1,
	// except that it defaults to len(Hosts) when Hosts is set.
	Workers int
	// Protocol is the protocol spec (e.g. "immunity", "pq:p=0.75") the
	// workers instantiate. Required; it must resolve to the same
	// protocol as the run Config's instance — Start cross-checks.
	Protocol string
	// RoundItems overrides DefaultRoundItems when positive.
	RoundItems int
	// JSON switches the frames to the canonical-JSON debugging encoding.
	JSON bool
	// Hosts, when set, connects to dtnsim-worker -listen processes at
	// these host:port addresses over TCP instead of spawning local
	// processes. More workers than hosts round-robin across them.
	Hosts []string
	// TLS, when set with Hosts, upgrades the worker connections to TLS.
	TLS *tls.Config
	// WorkerBin is the dtnsim-worker binary to spawn. Empty tries a
	// sibling of the running executable, then $PATH.
	WorkerBin string
	// WorkerArgs are extra arguments passed to the worker binary.
	WorkerArgs []string
	// Stderr receives the spawned workers' stderr; nil inherits the
	// coordinator's.
	Stderr io.Writer
	// FullSnapshots disables delta shipping: every round carries full
	// state snapshots even to workers that advertise the delta
	// capability. Benchmarks pin the delta path's win against this.
	FullSnapshots bool
	// MaxRestarts bounds how many lost workers the run may replace and
	// replay (summed across workers). 0 means 2×Workers; negative
	// disables recovery so the first loss fails the run.
	MaxRestarts int
	// Dial, when set, supplies the worker connections instead of a
	// built-in transport — the seam tests use to serve workers
	// in-process and to inject failing connections.
	Dial func(n int) ([]io.ReadWriteCloser, error)
	// Redial, optionally set with Dial, replaces worker i's connection
	// after a loss. When nil, a Dial-supplied backend cannot recover
	// lost workers.
	Redial func(i int) (io.ReadWriteCloser, error)
}

// verNone marks a node state a worker does not hold: pristine on the
// coordinator, absent from a worker's cache.
const verNone = ^uint64(0)

// Backend coordinates worker processes behind the core.EpochBackend
// seam. Create with New, hand to core.Config.Backend, Close when done.
type Backend struct {
	opt   Options
	tr    transport.Transport
	conns []*conn

	env    core.RunEnv
	bufCap int
	states []*frame.NodeState // authoritative; nil = pristine
	seq    uint64
	enc    byte
	init   *frame.Init // the run's Init, kept for worker revival

	// Delta-shipping bookkeeping. stateVer[n] is the round that
	// produced states[n]; seen[w][n] is the version worker w's live
	// node n mirrors (verNone: none). A round ships worker w a
	// CacheRef instead of a snapshot exactly when seen[w][n] ==
	// stateVer[n].
	stateVer []uint64
	seen     [][]uint64
	deltaOK  []bool // worker advertised CapDelta and Options allow it
	restarts int    // remaining worker-revival budget

	// Scratch reused across rounds.
	uf       unionFind
	fxBuf    []core.Effect
	assigned [][]int // assigned[w] = item indexes of worker w's round
	involved [][]int // involved[w] = sorted node IDs of worker w's round
}

// conn is one worker connection with buffered framing.
type conn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader
	bw  *bufio.Writer
}

func (c *conn) send(m *frame.Msg) error {
	if err := frame.Write(c.bw, m); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *conn) recv() (*frame.Msg, error) { return frame.Read(c.br) }

// New connects the backend's workers: through opt.Dial when set, over
// TCP when opt.Hosts is set, otherwise by spawning opt.Workers
// dtnsim-worker processes. Every connection is handshaken (Hello
// exchange: frame version must match, capabilities negotiate delta
// shipping downward) before the backend is returned.
func New(opt Options) (*Backend, error) {
	if opt.Workers == 0 && len(opt.Hosts) > 0 {
		opt.Workers = len(opt.Hosts)
	}
	if opt.Workers < 1 {
		return nil, fmt.Errorf("dist: need at least one worker, got %d", opt.Workers)
	}
	if opt.RoundItems == 0 {
		opt.RoundItems = DefaultRoundItems
	}
	if opt.RoundItems < 1 {
		return nil, fmt.Errorf("dist: round window %d items", opt.RoundItems)
	}
	b := &Backend{opt: opt, enc: frame.EncBinary}
	if opt.JSON {
		b.enc = frame.EncJSON
	}
	switch {
	case opt.Dial != nil:
		b.tr = funcTransport{dial: opt.Dial, redial: opt.Redial}
	case len(opt.Hosts) > 0:
		b.tr = &transport.TCP{Hosts: opt.Hosts, TLS: opt.TLS}
	default:
		b.tr = &transport.Pipes{Bin: opt.WorkerBin, Args: opt.WorkerArgs, Stderr: opt.Stderr}
	}
	rwcs, err := b.tr.Dial(opt.Workers)
	if err != nil {
		b.tr.Close()
		return nil, err
	}
	if len(rwcs) != opt.Workers {
		closeAll(rwcs)
		b.tr.Close()
		return nil, fmt.Errorf("dist: dialed %d connections for %d workers", len(rwcs), opt.Workers)
	}
	b.conns = make([]*conn, len(rwcs))
	for i, rwc := range rwcs {
		b.conns[i] = newConn(rwc)
	}
	b.restarts = opt.MaxRestarts
	if b.restarts == 0 {
		b.restarts = 2 * opt.Workers
	}
	b.deltaOK = make([]bool, opt.Workers)
	b.seen = make([][]uint64, opt.Workers)
	b.assigned = make([][]int, opt.Workers)
	b.involved = make([][]int, opt.Workers)
	for i := range b.conns {
		if err := b.handshake(i); err != nil {
			b.Close()
			return nil, err
		}
	}
	return b, nil
}

func newConn(rwc io.ReadWriteCloser) *conn {
	return &conn{rwc: rwc, br: bufio.NewReader(rwc), bw: bufio.NewWriter(rwc)}
}

// funcTransport adapts the Options.Dial/Options.Redial function seam
// to a transport.Transport.
type funcTransport struct {
	dial   func(n int) ([]io.ReadWriteCloser, error)
	redial func(i int) (io.ReadWriteCloser, error)
}

func (t funcTransport) Dial(n int) ([]io.ReadWriteCloser, error) { return t.dial(n) }

func (t funcTransport) Redial(i int) (io.ReadWriteCloser, error) {
	if t.redial == nil {
		return nil, errors.New("dist: transport cannot replace workers")
	}
	return t.redial(i)
}

func (t funcTransport) Close() error { return nil }

func closeAll(rwcs []io.ReadWriteCloser) {
	for _, rwc := range rwcs {
		rwc.Close()
	}
}

// handshake exchanges Hello frames with worker w: the coordinator
// announces its version and capabilities, the worker replies with its
// own. Version skew is fatal; capabilities only negotiate optional
// behavior (delta shipping) downward.
func (b *Backend) handshake(w int) error {
	hello := &frame.Hello{Version: frame.Version, Caps: frame.CapDelta}
	if err := b.conns[w].send(&frame.Msg{Enc: b.enc, Hello: hello}); err != nil {
		return fmt.Errorf("%w: worker %d: handshake: %v", ErrWorkerLost, w, err)
	}
	m, err := b.conns[w].recv()
	if err != nil {
		return fmt.Errorf("%w: worker %d: handshake: %v", ErrWorkerLost, w, err)
	}
	switch {
	case m.Err != nil:
		return fmt.Errorf("dist: worker %d: %s", w, m.Err.Msg)
	case m.Hello == nil:
		return fmt.Errorf("dist: worker %d: handshake got type-%d frame, want hello", w, m.Type())
	case m.Hello.Version != frame.Version:
		return fmt.Errorf("dist: worker %d speaks frame version %d, coordinator speaks %d",
			w, m.Hello.Version, frame.Version)
	}
	b.deltaOK[w] = !b.opt.FullSnapshots && m.Hello.Caps&frame.CapDelta != 0
	return nil
}

// revive replaces worker w after cause lost it: re-dial through the
// transport, handshake, re-send the run's Init, and forget everything
// the old worker held so the next round ships full snapshots. The
// caller then replays whatever was in flight from the coordinator's
// authoritative states. Each revival spends one unit of the restart
// budget; when it is gone, the original loss surfaces as the run
// error.
func (b *Backend) revive(w int, cause error) error {
	if b.restarts <= 0 {
		return fmt.Errorf("%w: worker %d: %v (worker-restart budget exhausted)", ErrWorkerLost, w, cause)
	}
	b.restarts--
	b.conns[w].rwc.Close()
	rwc, err := b.tr.Redial(w)
	if err != nil {
		return fmt.Errorf("%w: worker %d: %v (re-dial: %v)", ErrWorkerLost, w, cause, err)
	}
	b.conns[w] = newConn(rwc)
	for i := range b.seen[w] {
		b.seen[w][i] = verNone
	}
	if err := b.handshake(w); err != nil {
		return err
	}
	if b.init != nil {
		if err := b.conns[w].send(&frame.Msg{Enc: b.enc, Init: b.init}); err != nil {
			return fmt.Errorf("%w: worker %d: replayed init: %v", ErrWorkerLost, w, err)
		}
	}
	return nil
}

// Close tears the workers down: connections close (a worker's Serve
// loop exits on the EOF) and the transport cleans up — spawned
// processes are reaped, killed after a grace period if they ignore the
// EOF, with every worker's exit error aggregated. Safe after a failed
// run.
func (b *Backend) Close() error {
	var errs []error
	for _, c := range b.conns {
		if err := c.rwc.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	b.conns = nil
	if b.tr != nil {
		if err := b.tr.Close(); err != nil {
			errs = append(errs, err)
		}
		b.tr = nil
	}
	return errors.Join(errs...)
}

// Start implements core.EpochBackend: capture the run environment and
// initialize every worker.
func (b *Backend) Start(env core.RunEnv) error {
	fac, err := protocol.Parse(b.opt.Protocol)
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	if got, want := fac.New().Name(), env.Cfg.Protocol.Name(); got != want {
		return fmt.Errorf("dist: worker protocol spec %q resolves to %q; run uses %q",
			b.opt.Protocol, got, want)
	}
	b.env = env
	b.bufCap = env.Cfg.BufferCap
	b.states = make([]*frame.NodeState, len(env.Nodes))
	b.stateVer = make([]uint64, len(env.Nodes))
	for w := range b.seen {
		if len(b.seen[w]) != len(env.Nodes) {
			b.seen[w] = make([]uint64, len(env.Nodes))
		}
		for i := range b.seen[w] {
			b.seen[w][i] = verNone
		}
	}
	b.seq = 0
	policy := ""
	if env.Cfg.BufferBytes > 0 {
		if policy = env.Cfg.DropPolicy; policy == "" {
			policy = buffer.DefaultDropPolicy
		}
	}
	b.init = &frame.Init{
		Seed:           env.Cfg.Seed,
		Nodes:          len(env.Nodes),
		BufferCap:      env.Cfg.BufferCap,
		BufferBytes:    env.Cfg.BufferBytes,
		DropPolicy:     policy,
		TxTime:         env.Cfg.TxTime,
		Bandwidth:      env.Cfg.Bandwidth,
		ControlBytes:   env.Cfg.ControlBytes,
		RecordsPerSlot: env.Cfg.RecordsPerSlot,
		Protocol:       b.opt.Protocol,
	}
	for i, c := range b.conns {
		if err := c.send(&frame.Msg{Enc: b.enc, Init: b.init}); err != nil {
			// revive re-sends the Init itself after the handshake.
			if err := b.revive(i, err); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunEpoch implements core.EpochBackend: slice the epoch into
// RoundItems windows and run each as one coordinator↔workers round.
func (b *Backend) RunEpoch(ep *core.Epoch) error {
	n := ep.Len()
	for lo := 0; lo < n; lo += b.opt.RoundItems {
		hi := lo + b.opt.RoundItems
		if hi > n {
			hi = n
		}
		if err := b.runRound(ep, lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// runRound executes items [lo, hi) of the epoch: group them into
// node-disjoint components, spread components across workers, ship one
// Round per involved worker, install the returned states and effects.
// The read-back barrier between rounds is what preserves the per-node
// order across rounds; within a round, items sharing a node land in one
// component and execute in item order on one worker.
//
// A lost worker at any point is revived and its round replayed. That
// replay is deterministic by construction: a round's per-worker inputs
// are disjoint (components share no nodes), so the coordinator's
// authoritative states for the lost worker's nodes are exactly what it
// sent the first time, and the replacement executes the identical
// items over identical state. Worker-reported errors and protocol-skew
// mismatches are not losses — they are corruption and stay fatal.
func (b *Backend) runRound(ep *core.Epoch, lo, hi int) error {
	comps := b.components(ep, lo, hi)
	b.assign(ep, comps)

	// Ship the rounds, then collect replies in worker order — the reply
	// order (not arrival order) is what keeps state installation
	// deterministic.
	for w := range b.assigned {
		if len(b.assigned[w]) == 0 {
			continue
		}
		if err := b.sendRound(ep, w); err != nil {
			return err
		}
	}
	for w, idxs := range b.assigned {
		if len(idxs) == 0 {
			continue
		}
		for {
			err := b.collect(ep, w, idxs)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrWorkerLost) {
				return err
			}
			if err := b.revive(w, err); err != nil {
				return err
			}
			if err := b.sendRound(ep, w); err != nil {
				return err
			}
		}
	}
	b.seq++
	return nil
}

// sendRound builds worker w's Round from the current assignment and
// ships it, reviving and retrying on connection loss. For each
// involved non-pristine node the round carries either the full
// snapshot or, when the worker already holds the current version, a
// CacheRef — the delta path that keeps repeat encounters off the wire.
func (b *Backend) sendRound(ep *core.Epoch, w int) error {
	for {
		idxs := b.assigned[w]
		round := frame.Round{Seq: b.seq, Items: make([]frame.Item, len(idxs))}
		for j, idx := range idxs {
			round.Items[j] = itemToWire(idx, ep.Item(idx))
		}
		for _, id := range b.involved[w] {
			st := b.states[id]
			if st == nil {
				continue
			}
			if b.deltaOK[w] && b.seen[w][id] == b.stateVer[id] {
				round.Cached = append(round.Cached, frame.CacheRef{ID: id, Ver: b.stateVer[id]})
			} else {
				round.States = append(round.States, *st)
			}
		}
		err := b.conns[w].send(&frame.Msg{Enc: b.enc, Round: &round})
		if err == nil {
			return nil
		}
		if err := b.revive(w, err); err != nil {
			return err
		}
	}
}

// collect reads one worker's Effects reply and installs it.
func (b *Backend) collect(ep *core.Epoch, w int, idxs []int) error {
	m, err := b.conns[w].recv()
	if err != nil {
		return fmt.Errorf("%w: worker %d: %v", ErrWorkerLost, w, err)
	}
	if m.Err != nil {
		return fmt.Errorf("dist: worker %d: %s", w, m.Err.Msg)
	}
	eff := m.Effects
	if eff == nil {
		return fmt.Errorf("dist: worker %d: unexpected %d frame in round %d", w, m.Type(), b.seq)
	}
	if eff.Seq != b.seq {
		return fmt.Errorf("dist: worker %d: reply for round %d in round %d", w, eff.Seq, b.seq)
	}
	if len(eff.Items) != len(idxs) {
		return fmt.Errorf("dist: worker %d: %d item replies for %d items", w, len(eff.Items), len(idxs))
	}
	for j := range eff.Items {
		ie := &eff.Items[j]
		if ie.Idx != idxs[j] {
			return fmt.Errorf("dist: worker %d: reply item %d, sent %d", w, ie.Idx, idxs[j])
		}
		b.fxBuf = b.fxBuf[:0]
		for k := range ie.Fx {
			fx, err := effectFromWire(&ie.Fx[k])
			if err != nil {
				return fmt.Errorf("dist: worker %d item %d: %w", w, ie.Idx, err)
			}
			b.fxBuf = append(b.fxBuf, fx)
		}
		ep.Item(ie.Idx).Fx.Set(b.fxBuf)
	}
	// The worker returns the updated state of exactly the nodes its
	// items involve; anything else means the two sides disagree about
	// the work, which is corruption, not a recoverable condition.
	if len(eff.States) != len(b.involved[w]) {
		return fmt.Errorf("dist: worker %d: %d states returned for %d involved nodes",
			w, len(eff.States), len(b.involved[w]))
	}
	for j := range eff.States {
		st := &eff.States[j]
		if st.ID != b.involved[w][j] {
			return fmt.Errorf("dist: worker %d: state for node %d, expected %d",
				w, st.ID, b.involved[w][j])
		}
		b.states[st.ID] = st
		// The worker now holds this node live at this round's version —
		// the next round it is involved in may ship a CacheRef.
		b.stateVer[st.ID] = b.seq
		b.seen[w][st.ID] = b.seq
	}
	return nil
}

// components groups items [lo, hi) into connected components of the
// window's endpoint graph via union-find. Each component's items are in
// ascending index order; the component list is in first-item order.
func (b *Backend) components(ep *core.Epoch, lo, hi int) []component {
	b.uf.reset(len(b.env.Nodes))
	for i := lo; i < hi; i++ {
		it := ep.Item(i)
		if it.B != it.A {
			b.uf.union(int(it.A), int(it.B))
		} else {
			b.uf.find(int(it.A))
		}
	}
	var comps []component
	compOf := make(map[int]int, 8)
	for i := lo; i < hi; i++ {
		root := b.uf.find(int(ep.Item(i).A))
		ci, ok := compOf[root]
		if !ok {
			ci = len(comps)
			compOf[root] = ci
			comps = append(comps, component{})
		}
		comps[ci].items = append(comps[ci].items, i)
	}
	return comps
}

type component struct{ items []int }

// assign spreads components across workers: components sorted by item
// count descending (ties by first item index ascending, so the order is
// a pure function of the window), each to the least-loaded worker (ties
// to the lowest worker index). Fills b.assigned and b.involved.
func (b *Backend) assign(ep *core.Epoch, comps []component) {
	order := make([]int, len(comps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		cx, cy := &comps[order[x]], &comps[order[y]]
		if len(cx.items) != len(cy.items) {
			return len(cx.items) > len(cy.items)
		}
		return cx.items[0] < cy.items[0]
	})
	loads := make([]int, b.opt.Workers)
	for w := range b.assigned {
		b.assigned[w] = b.assigned[w][:0]
		b.involved[w] = b.involved[w][:0]
	}
	for _, ci := range order {
		best := 0
		for w := 1; w < len(loads); w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		loads[best] += len(comps[ci].items)
		b.assigned[best] = append(b.assigned[best], comps[ci].items...)
	}
	for w := range b.assigned {
		idxs := b.assigned[w]
		if len(idxs) == 0 {
			continue
		}
		// A worker executes its items in epoch order; components are
		// node-disjoint, so interleaving them is harmless and sorting
		// keeps the wire order canonical.
		sort.Ints(idxs)
		b.involved[w] = involvedNodes(ep, idxs, b.involved[w])
	}
}

// involvedNodes returns the sorted, deduplicated node IDs touched by
// the given epoch items.
func involvedNodes(ep *core.Epoch, idxs []int, dst []int) []int {
	for _, idx := range idxs {
		it := ep.Item(idx)
		dst = append(dst, int(it.A))
		if it.B != it.A {
			dst = append(dst, int(it.B))
		}
	}
	sort.Ints(dst)
	uniq := dst[:0]
	for i, id := range dst {
		if i == 0 || id != dst[i-1] {
			uniq = append(uniq, id)
		}
	}
	return uniq
}

// NodeOccupancy implements core.EpochBackend: the occupancy the node's
// authoritative state would report from its own Store — bitwise the
// same (copies + control load)/cap expression buffer.Store.Occupancy
// computes. Pristine nodes hold nothing.
func (b *Backend) NodeOccupancy(i int) float64 {
	st := b.states[i]
	if st == nil {
		return 0
	}
	return (float64(len(st.Copies)) + st.ControlLoad) / float64(b.bufCap)
}

// Finish implements core.EpochBackend: decode every non-pristine
// authoritative state into the coordinator's (still pristine) nodes so
// Result assembly reads final stores and counters locally.
func (b *Backend) Finish() error {
	for _, st := range b.states {
		if st == nil {
			continue
		}
		if st.ID < 0 || st.ID >= len(b.env.Nodes) {
			return fmt.Errorf("dist: final state for node %d outside population", st.ID)
		}
		if err := restoreInto(b.env.Nodes[st.ID], st); err != nil {
			return err
		}
	}
	return nil
}

// unionFind is a path-compressing union-find over node IDs, reset per
// round by undoing only the touched entries.
type unionFind struct {
	parent  []int32
	touched []int32
}

func (u *unionFind) reset(n int) {
	if len(u.parent) < n {
		u.parent = make([]int32, n)
		for i := range u.parent {
			u.parent[i] = -1
		}
		u.touched = u.touched[:0]
		return
	}
	for _, i := range u.touched {
		u.parent[i] = -1
	}
	u.touched = u.touched[:0]
}

func (u *unionFind) find(x int) int {
	if u.parent[x] == -1 {
		u.parent[x] = int32(x)
		u.touched = append(u.touched, int32(x))
	}
	root := x
	for int(u.parent[root]) != root {
		root = int(u.parent[root])
	}
	for int(u.parent[x]) != root {
		x, u.parent[x] = int(u.parent[x]), int32(root)
	}
	return root
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	// Smaller root wins: deterministic, and good enough without ranks at
	// round-window sizes.
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
}
