// Package transport supplies the distributed executor's worker
// connections (DESIGN.md §13): byte streams the coordinator speaks the
// frame protocol over. The coordinator neither knows nor cares what
// carries the bytes — a Transport hands it io.ReadWriteClosers and can
// replace one after a loss, which is the whole recovery seam.
//
// Two implementations ship: Pipes spawns dtnsim-worker processes
// locally and wires their stdin/stdout (the original single-host
// layout), TCP dials workers already listening on other machines
// (dtnsim-worker -listen), optionally over TLS. Both are pure
// process/socket plumbing: no simulation state, no RNG, and wall-clock
// use only for connection timeouts and the shutdown watchdog, neither
// of which can influence simulation results.
package transport

import "io"

// Transport establishes and replaces worker connections for the
// distributed coordinator.
type Transport interface {
	// Dial connects all n workers at once, index-aligned with the
	// coordinator's worker slots. On error no connections are retained.
	Dial(n int) ([]io.ReadWriteCloser, error)
	// Redial replaces worker i's connection after the coordinator lost
	// it. The caller has already closed (or given up on) the old
	// connection. A transport that cannot replace connections returns an
	// error, which makes worker loss fatal for the run.
	Redial(i int) (io.ReadWriteCloser, error)
	// Close releases transport-owned resources — spawned processes are
	// reaped, for instance. The coordinator closes the connections
	// themselves before calling Close.
	Close() error
}

// closeAll closes every connection in rwcs, for teardown paths.
func closeAll(rwcs []io.ReadWriteCloser) {
	for _, rwc := range rwcs {
		if rwc != nil {
			rwc.Close()
		}
	}
}
