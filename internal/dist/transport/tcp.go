package transport

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"io"
	"net"
	"os"
	"time"
)

// ClientCAs builds a coordinator-side TLS config that verifies worker
// listeners against the CA certificates in the PEM bundle at path —
// what dtnsim -dist-ca and dtnsimd -workers-ca load.
func ClientCAs(path string) (*tls.Config, error) {
	pemBytes, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pemBytes) {
		return nil, fmt.Errorf("dist: no CA certificates in %s", path)
	}
	return &tls.Config{RootCAs: pool}, nil
}

// DefaultDialTimeout bounds one TCP connection attempt.
const DefaultDialTimeout = 10 * time.Second

// TCP dials workers already listening on host:port addresses
// (dtnsim-worker -listen). Worker slot i connects to Hosts[i % len],
// so more workers than hosts round-robin across them — a listening
// worker serves each accepted connection independently. Redial
// reconnects to the lost worker's host, which is the multi-host
// recovery path: the remote listener outlives individual sessions.
type TCP struct {
	// Hosts are the worker addresses, host:port each. Required.
	Hosts []string
	// TLS, when set, upgrades every connection to TLS. The config is
	// cloned per connection with ServerName defaulted from the host.
	TLS *tls.Config
	// Timeout bounds one connection attempt; 0 means
	// DefaultDialTimeout.
	Timeout time.Duration
}

func (t *TCP) dialOne(i int) (io.ReadWriteCloser, error) {
	if len(t.Hosts) == 0 {
		return nil, fmt.Errorf("dist: TCP transport has no worker hosts")
	}
	addr := t.Hosts[i%len(t.Hosts)]
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	d := net.Dialer{Timeout: timeout}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %d at %s: %w", i, addr, err)
	}
	if t.TLS == nil {
		return c, nil
	}
	cfg := t.TLS.Clone()
	if cfg.ServerName == "" && !cfg.InsecureSkipVerify {
		host, _, err := net.SplitHostPort(addr)
		if err != nil {
			host = addr
		}
		cfg.ServerName = host
	}
	tc := tls.Client(c, cfg)
	if err := tc.Handshake(); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: worker %d at %s: TLS handshake: %w", i, addr, err)
	}
	return tc, nil
}

// Dial implements Transport: connect all n worker slots.
func (t *TCP) Dial(n int) ([]io.ReadWriteCloser, error) {
	conns := make([]io.ReadWriteCloser, 0, n)
	for i := 0; i < n; i++ {
		c, err := t.dialOne(i)
		if err != nil {
			closeAll(conns)
			return nil, err
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// Redial implements Transport: reconnect worker slot i to its host.
func (t *TCP) Redial(i int) (io.ReadWriteCloser, error) { return t.dialOne(i) }

// Close implements Transport: nothing held beyond the connections the
// coordinator already closed.
func (t *TCP) Close() error { return nil }
