package transport

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

// workerBinName is the worker executable Pipes runs.
const workerBinName = "dtnsim-worker"

// killGrace is how long a worker gets to exit on its own after its
// stdin closes before the reaper kills it.
const killGrace = 5 * time.Second

// findWorkerBin resolves the worker binary: an explicit path first,
// then a sibling of the running executable (the common install layout),
// then $PATH.
func findWorkerBin(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), workerBinName)
		if info, err := os.Stat(sibling); err == nil && !info.IsDir() {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath(workerBinName); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("dist: %s not found next to the executable or in $PATH (set -worker-bin)", workerBinName)
}

// Pipes spawns worker processes locally and connects them over
// stdin/stdout pipes. Redial respawns a lost worker's process, so a
// crashed local worker is replaceable mid-run.
type Pipes struct {
	// Bin is the dtnsim-worker binary to spawn. Empty tries a sibling
	// of the running executable, then $PATH.
	Bin string
	// Args are extra arguments passed to the worker binary.
	Args []string
	// Stderr receives the spawned workers' stderr; nil inherits the
	// coordinator's.
	Stderr io.Writer

	bin  string // resolved path
	cmds []*exec.Cmd
}

// procConn adapts a worker's stdin/stdout pipe pair to
// io.ReadWriteCloser; Close closes the worker's stdin, which is the
// shutdown signal Serve honors as clean EOF.
type procConn struct {
	io.Reader // the worker's stdout
	io.WriteCloser
}

func (p procConn) Close() error { return p.WriteCloser.Close() }

// spawn starts one worker process and returns its pipe connection. On
// failure every pipe created along the way is closed before returning:
// a half-built worker must not leak its fds (cmd.Start's own error
// path closes them too, but the StdoutPipe-failure path would leak the
// already-built stdin pipe without this).
func (p *Pipes) spawn() (*exec.Cmd, io.ReadWriteCloser, error) {
	cmd := exec.Command(p.bin, p.Args...)
	cmd.Stderr = p.Stderr
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, nil, fmt.Errorf("stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		stdin.Close()
		return nil, nil, fmt.Errorf("stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		stdin.Close()
		stdout.Close()
		return nil, nil, fmt.Errorf("starting %s: %w", p.bin, err)
	}
	return cmd, procConn{Reader: stdout, WriteCloser: stdin}, nil
}

// Dial implements Transport: spawn n worker processes. On any failure
// the already-started processes are torn down and nothing leaks.
func (p *Pipes) Dial(n int) ([]io.ReadWriteCloser, error) {
	bin, err := findWorkerBin(p.Bin)
	if err != nil {
		return nil, err
	}
	p.bin = bin
	conns := make([]io.ReadWriteCloser, 0, n)
	for i := 0; i < n; i++ {
		cmd, conn, err := p.spawn()
		if err != nil {
			closeAll(conns)
			p.Close()
			return nil, fmt.Errorf("dist: worker %d: %w", i, err)
		}
		p.cmds = append(p.cmds, cmd)
		conns = append(conns, conn)
	}
	return conns, nil
}

// Redial implements Transport: reap worker i's dead process and spawn
// a replacement. The old process's exit error is discarded — its loss
// already surfaced to the caller as the reason for this Redial.
func (p *Pipes) Redial(i int) (io.ReadWriteCloser, error) {
	if i < 0 || i >= len(p.cmds) {
		return nil, fmt.Errorf("dist: re-dial of unknown worker %d", i)
	}
	if cmd := p.cmds[i]; cmd != nil {
		p.cmds[i] = nil
		reap(cmd)
	}
	cmd, conn, err := p.spawn()
	if err != nil {
		return nil, fmt.Errorf("dist: respawning worker %d: %w", i, err)
	}
	p.cmds[i] = cmd
	return conn, nil
}

// Close implements Transport: reap every spawned worker, aggregating
// each worker's exit error so a crashed worker's identity reaches the
// caller. Callers close the connections (the workers' stdin) first, so
// a healthy worker exits on its own; one stuck past the grace period
// is killed rather than hanging Close.
func (p *Pipes) Close() error {
	var errs []error
	for i, cmd := range p.cmds {
		if cmd == nil {
			continue
		}
		if err := reap(cmd); err != nil {
			errs = append(errs, fmt.Errorf("dist: worker %d exited: %w", i, err))
		}
	}
	p.cmds = nil
	return errors.Join(errs...)
}

// reap waits for one worker process, killing it after the grace
// period. A watchdog kill's own failure is reported, not swallowed:
// the process may then still be alive, and the caller should know.
func reap(cmd *exec.Cmd) error {
	fired := make(chan error, 1)
	kill := time.AfterFunc(killGrace, func() { //lint:allow rngdiscipline shutdown watchdog: wall-clock grace before killing a stuck worker process; runs after the simulation finished, so it cannot affect results
		fired <- cmd.Process.Kill()
	})
	err := cmd.Wait()
	if !kill.Stop() {
		if kerr := <-fired; kerr != nil {
			err = errors.Join(err, fmt.Errorf("watchdog kill failed: %w", kerr))
		}
	}
	return err
}
