package transport

// Transport-layer unit tests: process lifecycle (spawn-failure
// cleanup, per-worker exit-error aggregation, respawn) and TCP/TLS
// dialing against loopback listeners. The frame protocol is not
// involved — transports move opaque bytes.

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"io"
	"math/big"
	"net"
	"strings"
	"testing"
	"time"
)

// echo serves every accepted connection by copying reads back to
// writes, closing when the peer does.
func echo(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
}

// roundTrip writes a probe through the connection and expects it
// echoed back.
func roundTrip(t *testing.T, c io.ReadWriteCloser, probe string) {
	t.Helper()
	if _, err := c.Write([]byte(probe)); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(probe))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != probe {
		t.Fatalf("echoed %q, want %q", buf, probe)
	}
}

// TestPipesDialFailureCleansUp pins the spawn-failure path: a binary
// that cannot start fails Dial with a useful error and leaves no
// processes behind (Close after the failure is a no-op).
func TestPipesDialFailureCleansUp(t *testing.T) {
	p := &Pipes{Bin: "/nonexistent/worker-binary"}
	if _, err := p.Dial(2); err == nil {
		t.Fatal("Dial with a nonexistent binary succeeded")
	}
	if len(p.cmds) != 0 {
		t.Errorf("%d processes tracked after failed Dial", len(p.cmds))
	}
	if err := p.Close(); err != nil {
		t.Errorf("Close after failed Dial: %v", err)
	}
}

// TestPipesCloseAggregatesExitErrors is the satellite obligation:
// when several workers exit abnormally, Close reports every worker's
// identity and exit error, not just the first.
func TestPipesCloseAggregatesExitErrors(t *testing.T) {
	p := &Pipes{Bin: "/bin/false"}
	conns, err := p.Dial(2)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for _, c := range conns {
		c.Close()
	}
	err = p.Close()
	if err == nil {
		t.Fatal("Close of workers that exited 1 returned nil")
	}
	for _, want := range []string{"worker 0", "worker 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error %q does not mention %s", err, want)
		}
	}
}

// TestPipesRedial pins the respawn path: replacing a worker's process
// yields a fresh working connection and the replacement is reaped
// cleanly at Close.
func TestPipesRedial(t *testing.T) {
	p := &Pipes{Bin: "/bin/cat"}
	conns, err := p.Dial(1)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	roundTrip(t, conns[0], "before\n")
	conns[0].Close()
	replacement, err := p.Redial(0)
	if err != nil {
		t.Fatalf("Redial: %v", err)
	}
	roundTrip(t, replacement, "after\n")
	replacement.Close()
	if err := p.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := p.Redial(5); err == nil {
		t.Error("Redial of an unknown worker index succeeded")
	}
}

// TestTCPDialRedial pins the TCP transport: round-robin host
// assignment, working byte streams, and Redial reconnecting to the
// lost slot's host.
func TestTCPDialRedial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echo(t, ln)
	tr := &TCP{Hosts: []string{ln.Addr().String()}}
	conns, err := tr.Dial(2) // two workers round-robin onto one host
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for i, c := range conns {
		roundTrip(t, c, "ping\n")
		if err := c.Close(); err != nil {
			t.Errorf("close conn %d: %v", i, err)
		}
	}
	again, err := tr.Redial(1)
	if err != nil {
		t.Fatalf("Redial: %v", err)
	}
	roundTrip(t, again, "pong\n")
	again.Close()
	if err := tr.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := (&TCP{}).Dial(1); err == nil {
		t.Error("Dial with no hosts succeeded")
	}
}

// selfSignedCert builds an ECDSA certificate for 127.0.0.1, returning
// the server keypair and a pool trusting it.
func selfSignedCert(t *testing.T) (tls.Certificate, *x509.CertPool) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "dtnsim-worker-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}, pool
}

// TestTCPTLS pins the TLS upgrade: a certificate the client trusts
// handshakes and moves bytes; an untrusted one fails the dial instead
// of silently downgrading.
func TestTCPTLS(t *testing.T) {
	cert, pool := selfSignedCert(t)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	ln := tls.NewListener(inner, &tls.Config{Certificates: []tls.Certificate{cert}})
	echo(t, ln)
	tr := &TCP{Hosts: []string{inner.Addr().String()}, TLS: &tls.Config{RootCAs: pool}}
	conns, err := tr.Dial(1)
	if err != nil {
		t.Fatalf("Dial over TLS: %v", err)
	}
	roundTrip(t, conns[0], "secret\n")
	conns[0].Close()
	untrusting := &TCP{Hosts: []string{inner.Addr().String()}, TLS: &tls.Config{RootCAs: x509.NewCertPool()}}
	if _, err := untrusting.Dial(1); err == nil {
		t.Error("Dial with an empty trust pool succeeded")
	}
}
