// Package frame is the wire codec of the distributed executor
// (DESIGN.md §13): length-prefixed frames carrying epoch rounds and
// effect buffers between the coordinator and its worker processes.
//
// Layout of one frame:
//
//	[u32 LE length] [version=2] [type] [enc] [payload…]
//
// where length covers everything after itself (3 + len(payload)).
// Types: Init (run setup), Round (items + touched node states and
// cache references, coordinator→worker), Effects (recorded effects +
// updated states, worker→coordinator), Error (worker failure report),
// Hello (version/capability handshake, both directions). The payload is
// either the compact binary encoding (enc 0: varints for integers,
// fixed 8-byte little-endian IEEE bits for floats, length-prefixed
// strings) or, behind the coordinator's -dist-json debugging flag,
// canonical JSON of the same structs (enc 1).
//
// Decode never panics on arbitrary bytes (FuzzDecodeFrame), and
// encoding is a canonical function of the message: for any frame that
// decodes, encode(decode(b)) is a byte-level fixed point after one
// normalization pass.
package frame

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/protocol"
)

// Version is the only frame version this codec speaks. Version 2
// added the Hello handshake frame and the Round.Cached delta records;
// the version byte rides every frame, so a coordinator and worker
// from different versions fail loudly on the first frame either way.
const Version = 2

// Payload encodings.
const (
	EncBinary = 0
	EncJSON   = 1
)

// Frame types.
const (
	TInit    = 1
	TRound   = 2
	TEffects = 3
	TError   = 4
	THello   = 5
)

// maxFrame bounds one frame's declared length: large enough for a
// multi-million-item epoch, small enough that a corrupt length prefix
// cannot make Read allocate unbounded memory.
const maxFrame = 1 << 26

// ErrFrame wraps every decoding failure.
var ErrFrame = errors.New("frame: invalid frame")

// Capability bits carried in Hello.Caps.
const (
	// CapDelta: the sender understands Round.Cached references and, as
	// a worker, keeps executed nodes live between rounds so the
	// coordinator may ship a CacheRef instead of a full snapshot.
	CapDelta uint64 = 1 << 0
)

// Hello is the handshake payload both sides exchange on a fresh
// connection before any Init: the coordinator announces its codec
// version and capabilities, the worker replies with its own. The
// version byte on the frame header already rejects cross-version
// frames; Hello makes the failure mode a readable error and lets the
// two sides negotiate optional behavior (delta shipping) downward.
type Hello struct {
	Version int    `json:"version"`
	Caps    uint64 `json:"caps,omitempty"`
}

// CacheRef is a Round delta record: "node ID is unchanged since the
// round with sequence number Ver, whose resulting state you already
// hold." The worker resolves it against its live node cache instead of
// restoring a shipped snapshot; a worker that cannot (fresh
// connection, version skew) reports the mismatch as corruption rather
// than guessing — the coordinator only emits refs it knows the worker
// holds.
type CacheRef struct {
	ID  int    `json:"id"`
	Ver uint64 `json:"ver"`
}

// Init is the run-setup payload: everything a worker needs to mirror
// the coordinator's engine configuration (scalars after defaulting and
// the protocol spec — the worker builds its own instance).
type Init struct {
	Seed           uint64  `json:"seed"`
	Nodes          int     `json:"nodes"`
	BufferCap      int     `json:"buffer_cap"`
	BufferBytes    int64   `json:"buffer_bytes,omitempty"`
	DropPolicy     string  `json:"drop_policy,omitempty"`
	TxTime         float64 `json:"tx_time"`
	Bandwidth      float64 `json:"bandwidth,omitempty"`
	ControlBytes   float64 `json:"control_bytes,omitempty"`
	RecordsPerSlot int     `json:"records_per_slot"`
	Protocol       string  `json:"protocol"`
}

// Item is one epoch item in wire form: a generation (Gen, flow fields)
// or a contact (contact fields). Idx is the item's index in the
// coordinator's canonical epoch order — effects come back keyed by it.
type Item struct {
	Idx int     `json:"idx"`
	Gen bool    `json:"gen,omitempty"`
	T   float64 `json:"t"`
	A   int     `json:"a"`
	B   int     `json:"b"`
	// Contact payload (Gen=false).
	Start     float64 `json:"start,omitempty"`
	End       float64 `json:"end,omitempty"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Flow payload (Gen=true).
	FlowSrc  int     `json:"flow_src,omitempty"`
	FlowDst  int     `json:"flow_dst,omitempty"`
	Count    int     `json:"count,omitempty"`
	StartAt  float64 `json:"start_at,omitempty"`
	Size     int64   `json:"size,omitempty"`
	Base     int     `json:"base,omitempty"`
	FirstSeq int     `json:"first_seq,omitempty"`
}

// Copy is one buffered bundle copy in wire form: the immutable bundle
// identity plus the per-copy mutable state.
type Copy struct {
	Src       int     `json:"src"`
	Seq       int     `json:"seq"`
	Dst       int     `json:"dst"`
	CreatedAt float64 `json:"created_at"`
	Size      int64   `json:"size,omitempty"`
	FirstSeq  int     `json:"first_seq,omitempty"`
	EC        int     `json:"ec,omitempty"`
	Expiry    float64 `json:"expiry"`
	StoredAt  float64 `json:"stored_at"`
	Pinned    bool    `json:"pinned,omitempty"`
}

// IDPair is one bundle ID in wire form.
type IDPair struct {
	Src int `json:"src"`
	Seq int `json:"seq"`
}

// NodeState is one node's complete serialized state. A node involved in
// a round but absent from the round's States is pristine: the worker
// constructs it fresh (node.New + protocol Init) instead of restoring.
type NodeState struct {
	ID                 int               `json:"id"`
	ControlSent        int64             `json:"control_sent,omitempty"`
	DataSent           int64             `json:"data_sent,omitempty"`
	Refused            int64             `json:"refused,omitempty"`
	Expired            int64             `json:"expired,omitempty"`
	Evicted            int64             `json:"evicted,omitempty"`
	ByteDropped        int64             `json:"byte_dropped,omitempty"`
	ControlLoad        float64           `json:"control_load,omitempty"`
	LastEncounterStart float64           `json:"last_encounter_start"`
	LastInterval       float64           `json:"last_interval,omitempty"`
	Copies             []Copy            `json:"copies,omitempty"`
	Received           []IDPair          `json:"received,omitempty"`
	Ext                protocol.ExtState `json:"ext,omitempty"`
}

// Round is one coordinator→worker work assignment: the states of every
// involved non-pristine node the worker does not already hold, cache
// references for those it does, then the items to execute in order.
// Seq numbers rounds within a run for error reporting and as the
// version stamp CacheRef.Ver refers to. Involved nodes in neither
// States nor Cached are pristine: the worker constructs them fresh.
type Round struct {
	Seq    uint64      `json:"seq"`
	States []NodeState `json:"states,omitempty"`
	Cached []CacheRef  `json:"cached,omitempty"`
	Items  []Item      `json:"items,omitempty"`
}

// Effect is one recorded side effect in wire form (core.Effect).
type Effect struct {
	Kind   byte    `json:"kind"`
	From   int     `json:"from,omitempty"`
	To     int     `json:"to,omitempty"`
	Src    int     `json:"src"`
	Seq    int     `json:"seq"`
	Reason byte    `json:"reason,omitempty"`
	At     float64 `json:"at"`
	Delay  float64 `json:"delay,omitempty"`
}

// ItemEffects is one item's replayed effect buffer, keyed by the
// item's coordinator-side index.
type ItemEffects struct {
	Idx int      `json:"idx"`
	Fx  []Effect `json:"fx,omitempty"`
}

// Effects is one worker→coordinator round reply: the updated states of
// every node the round's items touched, and each item's effects.
type Effects struct {
	Seq    uint64        `json:"seq"`
	States []NodeState   `json:"states,omitempty"`
	Items  []ItemEffects `json:"items,omitempty"`
}

// ErrorMsg is a worker's failure report; the coordinator surfaces it
// as the run error.
type ErrorMsg struct {
	Msg string `json:"msg"`
}

// Msg is one decoded frame: exactly one payload pointer is non-nil.
// Enc records the payload encoding, so encode(decode(b)) re-encodes a
// JSON frame as JSON.
type Msg struct {
	Enc     byte
	Init    *Init
	Round   *Round
	Effects *Effects
	Err     *ErrorMsg
	Hello   *Hello
}

// Type returns the frame type of the set payload, or 0 if none is set.
func (m *Msg) Type() byte {
	switch {
	case m.Init != nil:
		return TInit
	case m.Round != nil:
		return TRound
	case m.Effects != nil:
		return TEffects
	case m.Err != nil:
		return TError
	case m.Hello != nil:
		return THello
	}
	return 0
}

// Encode serializes one message to a complete frame.
func Encode(m *Msg) ([]byte, error) {
	t := m.Type()
	if t == 0 {
		return nil, fmt.Errorf("%w: message has no payload", ErrFrame)
	}
	var payload []byte
	if m.Enc == EncJSON {
		var v any
		switch t {
		case TInit:
			v = m.Init
		case TRound:
			v = m.Round
		case TEffects:
			v = m.Effects
		case TError:
			v = m.Err
		case THello:
			v = m.Hello
		}
		var err error
		payload, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFrame, err)
		}
	} else if m.Enc == EncBinary {
		switch t {
		case TInit:
			payload = appendInit(nil, m.Init)
		case TRound:
			payload = appendRound(nil, m.Round)
		case TEffects:
			payload = appendEffects(nil, m.Effects)
		case TError:
			payload = appendString(nil, m.Err.Msg)
		case THello:
			payload = appendHello(nil, m.Hello)
		}
	} else {
		return nil, fmt.Errorf("%w: unknown encoding %d", ErrFrame, m.Enc)
	}
	if len(payload)+3 > maxFrame {
		return nil, fmt.Errorf("%w: payload of %d bytes exceeds frame limit", ErrFrame, len(payload))
	}
	out := make([]byte, 4, 4+3+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(3+len(payload)))
	out = append(out, Version, t, m.Enc)
	return append(out, payload...), nil
}

// Write encodes m and writes the frame to w.
func Write(w io.Writer, m *Msg) error {
	b, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Read reads exactly one frame from r. io.EOF is returned verbatim
// when the stream ends cleanly before a frame starts (the coordinator
// closing a worker's stdin); any mid-frame truncation is an error.
func Read(r io.Reader) (*Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: reading length: %v", ErrFrame, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 3 || n > maxFrame {
		return nil, fmt.Errorf("%w: length %d out of range", ErrFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: reading %d-byte body: %v", ErrFrame, n, err)
	}
	return decodeBody(body)
}

// Decode parses one complete frame (length prefix included). The input
// must contain exactly one frame with no trailing bytes.
func Decode(b []byte) (*Msg, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a length prefix", ErrFrame, len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n < 3 || n > maxFrame {
		return nil, fmt.Errorf("%w: length %d out of range", ErrFrame, n)
	}
	if uint32(len(b)-4) != n {
		return nil, fmt.Errorf("%w: length prefix %d does not match %d body bytes", ErrFrame, n, len(b)-4)
	}
	return decodeBody(b[4:])
}

func decodeBody(body []byte) (*Msg, error) {
	if body[0] != Version {
		return nil, fmt.Errorf("%w: version %d (speak %d)", ErrFrame, body[0], Version)
	}
	t, enc := body[1], body[2]
	payload := body[3:]
	m := &Msg{Enc: enc}
	switch enc {
	case EncJSON:
		var err error
		switch t {
		case TInit:
			m.Init = new(Init)
			err = strictUnmarshal(payload, m.Init)
		case TRound:
			m.Round = new(Round)
			err = strictUnmarshal(payload, m.Round)
		case TEffects:
			m.Effects = new(Effects)
			err = strictUnmarshal(payload, m.Effects)
		case TError:
			m.Err = new(ErrorMsg)
			err = strictUnmarshal(payload, m.Err)
		case THello:
			m.Hello = new(Hello)
			err = strictUnmarshal(payload, m.Hello)
		default:
			return nil, fmt.Errorf("%w: unknown type %d", ErrFrame, t)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFrame, err)
		}
	case EncBinary:
		d := &dec{b: payload}
		switch t {
		case TInit:
			m.Init = readInit(d)
		case TRound:
			m.Round = readRound(d)
		case TEffects:
			m.Effects = readEffects(d)
		case TError:
			m.Err = &ErrorMsg{Msg: d.str()}
		case THello:
			m.Hello = readHello(d)
		default:
			return nil, fmt.Errorf("%w: unknown type %d", ErrFrame, t)
		}
		if d.fail {
			return nil, fmt.Errorf("%w: truncated type-%d payload", ErrFrame, t)
		}
		if d.off != len(d.b) {
			return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrFrame, len(d.b)-d.off)
		}
	default:
		return nil, fmt.Errorf("%w: unknown encoding %d", ErrFrame, enc)
	}
	return m, nil
}

// strictUnmarshal decodes JSON and rejects trailing data, matching the
// binary decoder's full-consumption rule.
func strictUnmarshal(b []byte, v any) error {
	if err := json.Unmarshal(b, v); err != nil {
		return err
	}
	return nil
}

// --- binary encoding ---

func appendUint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendInt(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }
func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendInit(b []byte, in *Init) []byte {
	b = appendUint(b, in.Seed)
	b = appendInt(b, int64(in.Nodes))
	b = appendInt(b, int64(in.BufferCap))
	b = appendInt(b, in.BufferBytes)
	b = appendString(b, in.DropPolicy)
	b = appendFloat(b, in.TxTime)
	b = appendFloat(b, in.Bandwidth)
	b = appendFloat(b, in.ControlBytes)
	b = appendInt(b, int64(in.RecordsPerSlot))
	return appendString(b, in.Protocol)
}

func appendItem(b []byte, it *Item) []byte {
	b = appendInt(b, int64(it.Idx))
	b = appendBool(b, it.Gen)
	b = appendFloat(b, it.T)
	b = appendInt(b, int64(it.A))
	b = appendInt(b, int64(it.B))
	if it.Gen {
		b = appendInt(b, int64(it.FlowSrc))
		b = appendInt(b, int64(it.FlowDst))
		b = appendInt(b, int64(it.Count))
		b = appendFloat(b, it.StartAt)
		b = appendInt(b, it.Size)
		b = appendInt(b, int64(it.Base))
		return appendInt(b, int64(it.FirstSeq))
	}
	b = appendFloat(b, it.Start)
	b = appendFloat(b, it.End)
	return appendFloat(b, it.Bandwidth)
}

func appendCopy(b []byte, c *Copy) []byte {
	b = appendInt(b, int64(c.Src))
	b = appendInt(b, int64(c.Seq))
	b = appendInt(b, int64(c.Dst))
	b = appendFloat(b, c.CreatedAt)
	b = appendInt(b, c.Size)
	b = appendInt(b, int64(c.FirstSeq))
	b = appendInt(b, int64(c.EC))
	b = appendFloat(b, c.Expiry)
	b = appendFloat(b, c.StoredAt)
	return appendBool(b, c.Pinned)
}

func appendExt(b []byte, st *protocol.ExtState) []byte {
	b = appendString(b, st.Kind)
	b = appendUint(b, uint64(len(st.IDs)))
	for _, id := range st.IDs {
		b = appendInt(b, int64(id.Src))
		b = appendInt(b, int64(id.Seq))
	}
	b = appendUint(b, uint64(len(st.Acks)))
	for _, fc := range st.Acks {
		b = appendFlowCount(b, fc)
	}
	b = appendUint(b, uint64(len(st.Base)))
	for _, fc := range st.Base {
		b = appendFlowCount(b, fc)
	}
	b = appendUint(b, uint64(len(st.Rcvd)))
	for _, fs := range st.Rcvd {
		b = appendInt(b, int64(fs.Src))
		b = appendInt(b, int64(fs.Dst))
		b = appendUint(b, uint64(len(fs.Seqs)))
		for _, s := range fs.Seqs {
			b = appendInt(b, int64(s))
		}
	}
	return b
}

func appendFlowCount(b []byte, fc protocol.FlowCount) []byte {
	b = appendInt(b, int64(fc.Src))
	b = appendInt(b, int64(fc.Dst))
	return appendInt(b, int64(fc.N))
}

func appendNodeState(b []byte, st *NodeState) []byte {
	b = appendInt(b, int64(st.ID))
	b = appendInt(b, st.ControlSent)
	b = appendInt(b, st.DataSent)
	b = appendInt(b, st.Refused)
	b = appendInt(b, st.Expired)
	b = appendInt(b, st.Evicted)
	b = appendInt(b, st.ByteDropped)
	b = appendFloat(b, st.ControlLoad)
	b = appendFloat(b, st.LastEncounterStart)
	b = appendFloat(b, st.LastInterval)
	b = appendUint(b, uint64(len(st.Copies)))
	for i := range st.Copies {
		b = appendCopy(b, &st.Copies[i])
	}
	b = appendUint(b, uint64(len(st.Received)))
	for _, id := range st.Received {
		b = appendInt(b, int64(id.Src))
		b = appendInt(b, int64(id.Seq))
	}
	return appendExt(b, &st.Ext)
}

func appendRound(b []byte, r *Round) []byte {
	b = appendUint(b, r.Seq)
	b = appendUint(b, uint64(len(r.States)))
	for i := range r.States {
		b = appendNodeState(b, &r.States[i])
	}
	b = appendUint(b, uint64(len(r.Cached)))
	for i := range r.Cached {
		b = appendInt(b, int64(r.Cached[i].ID))
		b = appendUint(b, r.Cached[i].Ver)
	}
	b = appendUint(b, uint64(len(r.Items)))
	for i := range r.Items {
		b = appendItem(b, &r.Items[i])
	}
	return b
}

func appendHello(b []byte, h *Hello) []byte {
	b = appendInt(b, int64(h.Version))
	return appendUint(b, h.Caps)
}

func appendEffects(b []byte, e *Effects) []byte {
	b = appendUint(b, e.Seq)
	b = appendUint(b, uint64(len(e.States)))
	for i := range e.States {
		b = appendNodeState(b, &e.States[i])
	}
	b = appendUint(b, uint64(len(e.Items)))
	for i := range e.Items {
		ie := &e.Items[i]
		b = appendInt(b, int64(ie.Idx))
		b = appendUint(b, uint64(len(ie.Fx)))
		for j := range ie.Fx {
			fx := &ie.Fx[j]
			b = append(b, fx.Kind)
			b = appendInt(b, int64(fx.From))
			b = appendInt(b, int64(fx.To))
			b = appendInt(b, int64(fx.Src))
			b = appendInt(b, int64(fx.Seq))
			b = append(b, fx.Reason)
			b = appendFloat(b, fx.At)
			b = appendFloat(b, fx.Delay)
		}
	}
	return b
}

// --- binary decoding ---

// dec is a bounds-checked, error-latching payload reader: after the
// first failure every accessor returns zero values and fail stays set,
// so decoding code needs no per-field error plumbing and can never
// index out of range.
type dec struct {
	b    []byte
	off  int
	fail bool
}

func (d *dec) uint() uint64 {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail = true
		return 0
	}
	d.off += n
	return v
}

func (d *dec) int() int64 {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail = true
		return 0
	}
	d.off += n
	return v
}

func (d *dec) float() float64 {
	if d.off+8 > len(d.b) {
		d.fail = true
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) str() string {
	n := d.uint()
	if d.fail || n > uint64(len(d.b)-d.off) {
		d.fail = true
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *dec) bool() bool {
	if d.off >= len(d.b) {
		d.fail = true
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *dec) byte() byte {
	if d.off >= len(d.b) {
		d.fail = true
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// count reads a slice length and validates it against the bytes left
// (each element costs at least one byte), so a corrupt count cannot
// drive an allocation beyond the payload's own size.
func (d *dec) count() int {
	n := d.uint()
	if d.fail || n > uint64(len(d.b)-d.off) {
		d.fail = true
		return 0
	}
	return int(n)
}

func readInit(d *dec) *Init {
	return &Init{
		Seed:           d.uint(),
		Nodes:          int(d.int()),
		BufferCap:      int(d.int()),
		BufferBytes:    d.int(),
		DropPolicy:     d.str(),
		TxTime:         d.float(),
		Bandwidth:      d.float(),
		ControlBytes:   d.float(),
		RecordsPerSlot: int(d.int()),
		Protocol:       d.str(),
	}
}

func readItem(d *dec, it *Item) {
	it.Idx = int(d.int())
	it.Gen = d.bool()
	it.T = d.float()
	it.A = int(d.int())
	it.B = int(d.int())
	if it.Gen {
		it.FlowSrc = int(d.int())
		it.FlowDst = int(d.int())
		it.Count = int(d.int())
		it.StartAt = d.float()
		it.Size = d.int()
		it.Base = int(d.int())
		it.FirstSeq = int(d.int())
		return
	}
	it.Start = d.float()
	it.End = d.float()
	it.Bandwidth = d.float()
}

func readCopy(d *dec, c *Copy) {
	c.Src = int(d.int())
	c.Seq = int(d.int())
	c.Dst = int(d.int())
	c.CreatedAt = d.float()
	c.Size = d.int()
	c.FirstSeq = int(d.int())
	c.EC = int(d.int())
	c.Expiry = d.float()
	c.StoredAt = d.float()
	c.Pinned = d.bool()
}

func readExt(d *dec, st *protocol.ExtState) {
	st.Kind = d.str()
	if n := d.count(); n > 0 {
		st.IDs = make([]bundle.ID, n)
		for i := range st.IDs {
			st.IDs[i] = bundle.ID{Src: contact.NodeID(d.int()), Seq: int(d.int())}
		}
	}
	if n := d.count(); n > 0 {
		st.Acks = make([]protocol.FlowCount, n)
		for i := range st.Acks {
			st.Acks[i] = readFlowCount(d)
		}
	}
	if n := d.count(); n > 0 {
		st.Base = make([]protocol.FlowCount, n)
		for i := range st.Base {
			st.Base[i] = readFlowCount(d)
		}
	}
	if n := d.count(); n > 0 {
		st.Rcvd = make([]protocol.FlowSeqs, n)
		for i := range st.Rcvd {
			fs := &st.Rcvd[i]
			fs.Src = int(d.int())
			fs.Dst = int(d.int())
			if k := d.count(); k > 0 {
				fs.Seqs = make([]int, k)
				for j := range fs.Seqs {
					fs.Seqs[j] = int(d.int())
				}
			}
		}
	}
}

func readFlowCount(d *dec) protocol.FlowCount {
	return protocol.FlowCount{Src: int(d.int()), Dst: int(d.int()), N: int(d.int())}
}

func readNodeState(d *dec, st *NodeState) {
	st.ID = int(d.int())
	st.ControlSent = d.int()
	st.DataSent = d.int()
	st.Refused = d.int()
	st.Expired = d.int()
	st.Evicted = d.int()
	st.ByteDropped = d.int()
	st.ControlLoad = d.float()
	st.LastEncounterStart = d.float()
	st.LastInterval = d.float()
	if n := d.count(); n > 0 {
		st.Copies = make([]Copy, n)
		for i := range st.Copies {
			readCopy(d, &st.Copies[i])
		}
	}
	if n := d.count(); n > 0 {
		st.Received = make([]IDPair, n)
		for i := range st.Received {
			st.Received[i] = IDPair{Src: int(d.int()), Seq: int(d.int())}
		}
	}
	readExt(d, &st.Ext)
}

func readRound(d *dec) *Round {
	r := &Round{Seq: d.uint()}
	if n := d.count(); n > 0 {
		r.States = make([]NodeState, n)
		for i := range r.States {
			readNodeState(d, &r.States[i])
		}
	}
	if n := d.count(); n > 0 {
		r.Cached = make([]CacheRef, n)
		for i := range r.Cached {
			r.Cached[i] = CacheRef{ID: int(d.int()), Ver: d.uint()}
		}
	}
	if n := d.count(); n > 0 {
		r.Items = make([]Item, n)
		for i := range r.Items {
			readItem(d, &r.Items[i])
		}
	}
	return r
}

func readHello(d *dec) *Hello {
	return &Hello{Version: int(d.int()), Caps: d.uint()}
}

func readEffects(d *dec) *Effects {
	e := &Effects{Seq: d.uint()}
	if n := d.count(); n > 0 {
		e.States = make([]NodeState, n)
		for i := range e.States {
			readNodeState(d, &e.States[i])
		}
	}
	if n := d.count(); n > 0 {
		e.Items = make([]ItemEffects, n)
		for i := range e.Items {
			ie := &e.Items[i]
			ie.Idx = int(d.int())
			if k := d.count(); k > 0 {
				ie.Fx = make([]Effect, k)
				for j := range ie.Fx {
					fx := &ie.Fx[j]
					fx.Kind = d.byte()
					fx.From = int(d.int())
					fx.To = int(d.int())
					fx.Src = int(d.int())
					fx.Seq = int(d.int())
					fx.Reason = d.byte()
					fx.At = d.float()
					fx.Delay = d.float()
				}
			}
		}
	}
	return e
}
