package frame

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/protocol"
)

// sampleMsgs covers every frame type with every field populated,
// including the edge values the binary codec must carry exactly
// (negative varints, NaN-free but extreme floats, empty slices).
func sampleMsgs() []*Msg {
	return []*Msg{
		{Init: &Init{
			Seed: 2012, Nodes: 48, BufferCap: 10, BufferBytes: 1 << 20,
			DropPolicy: "evict-oldest", TxTime: 100, Bandwidth: 2.5e4,
			ControlBytes: 12.5, RecordsPerSlot: 10, Protocol: "immunity",
		}},
		{Init: &Init{Protocol: "pure"}},
		{Round: &Round{
			Seq: 7,
			States: []NodeState{
				{
					ID: 3, ControlSent: 17, DataSent: 4, Refused: 1,
					Expired: 2, Evicted: 3, ByteDropped: 9,
					ControlLoad: 0.25, LastEncounterStart: -1, LastInterval: 312.5,
					Copies: []Copy{
						{Src: 0, Seq: 5, Dst: 7, CreatedAt: 42.5, Size: 1024,
							FirstSeq: 5, EC: 2, Expiry: 1e18, StoredAt: 43, Pinned: true},
						{Src: 1, Seq: 0, Dst: 3, CreatedAt: 0, Expiry: 400.25, StoredAt: 99.5},
					},
					Received: []IDPair{{Src: 0, Seq: 1}, {Src: 2, Seq: 8}},
					Ext: protocol.ExtState{
						Kind: protocol.ExtCumulative,
						Acks: []protocol.FlowCount{{Src: 0, Dst: 7, N: 3}},
						Base: []protocol.FlowCount{{Src: 0, Dst: 7, N: 1}},
						Rcvd: []protocol.FlowSeqs{{Src: 0, Dst: 7, Seqs: []int{4, 6}}},
					},
				},
				{ID: 9, LastEncounterStart: -1,
					Ext: protocol.ExtState{Kind: protocol.ExtImmunity,
						IDs: []bundle.ID{{Src: 1, Seq: 2}, {Src: 3, Seq: 4}}}},
			},
			Cached: []CacheRef{{ID: 5, Ver: 3}, {ID: 11, Ver: 6}},
			Items: []Item{
				{Idx: 0, Gen: true, T: 100, A: 5, B: 5, FlowSrc: 5, FlowDst: 11,
					Count: 30, StartAt: 100, Size: 512, Base: 0, FirstSeq: 0},
				{Idx: 1, T: 250.5, A: 5, B: 11, Start: 250.5, End: 900, Bandwidth: 2.5e4},
			},
		}},
		{Round: &Round{Seq: 0}},
		{Round: &Round{Seq: 12, Cached: []CacheRef{{ID: 0, Ver: 11}},
			Items: []Item{{Idx: 9, T: 1, A: 0, B: 0, Start: 1, End: 2}}}},
		{Hello: &Hello{Version: Version, Caps: CapDelta}},
		{Hello: &Hello{Version: 1}},
		{Enc: EncJSON, Hello: &Hello{Version: Version, Caps: CapDelta}},
		{Effects: &Effects{
			Seq: 7,
			States: []NodeState{
				{ID: 5, DataSent: 2, LastEncounterStart: 250.5, LastInterval: 50},
			},
			Items: []ItemEffects{
				{Idx: 0, Fx: []Effect{
					{Kind: 0, From: 5, Src: 5, Seq: 0, At: 100},
					{Kind: 1, From: 5, To: 11, Src: 5, Seq: 0, At: 250.5},
					{Kind: 2, To: 11, Src: 5, Seq: 0, At: 250.5, Delay: 150.5},
					{Kind: 3, From: 11, Src: 5, Seq: 0, Reason: 2, At: 260},
					{Kind: 4, From: 11, Src: 5, Seq: 0, At: 250.5},
				}},
				{Idx: 1},
			},
		}},
		{Err: &ErrorMsg{Msg: "worker: protocol \"martian\" unknown"}},
		{Enc: EncJSON, Init: &Init{Seed: 2012, Nodes: 48, TxTime: 100,
			RecordsPerSlot: 10, Protocol: "cum"}},
		{Enc: EncJSON, Round: &Round{Seq: 3, Items: []Item{
			{Idx: 0, T: 12.5, A: 1, B: 2, Start: 12.5, End: 80, Bandwidth: 1e18}}}},
		{Enc: EncJSON, Effects: &Effects{Seq: 3}},
		{Enc: EncJSON, Err: &ErrorMsg{Msg: "boom"}},
	}
}

// TestRoundTrip pins structural exactness through both encodings:
// Decode(Encode(m)) == m, and re-encoding yields identical bytes.
func TestRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(type %d enc %d): %v", m.Type(), m.Enc, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(type %d enc %d): %v", m.Type(), m.Enc, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("type %d enc %d: round trip mismatch\n got %#v\nwant %#v", m.Type(), m.Enc, got, m)
		}
		again, err := Encode(got)
		if err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(again, b) {
			t.Errorf("type %d enc %d: re-encode differs from original bytes", m.Type(), m.Enc)
		}
	}
}

// TestStreamReadWrite pins the stream framing: a sequence of frames
// written to one pipe reads back in order, and clean stream end is
// io.EOF while mid-frame truncation is an ErrFrame.
func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMsgs()
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	stream := buf.Bytes()
	r := bytes.NewReader(stream)
	for i, want := range msgs {
		got, err := Read(r)
		if err != nil {
			t.Fatalf("Read #%d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Read #%d: mismatch", i)
		}
	}
	if _, err := Read(r); err != io.EOF {
		t.Errorf("Read at clean end = %v, want io.EOF", err)
	}
	tr := bytes.NewReader(stream[:len(stream)-1])
	var last error
	for {
		if _, last = Read(tr); last != nil {
			break
		}
	}
	if last == io.EOF {
		t.Errorf("truncated stream ended with clean io.EOF; want ErrFrame error")
	}
}

// TestDecodeRejects pins the malformed-input error paths.
func TestDecodeRejects(t *testing.T) {
	good, err := Encode(&Msg{Err: &ErrorMsg{Msg: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short-prefix", []byte{1, 0}},
		{"length-zero", []byte{0, 0, 0, 0}},
		{"length-mismatch", append(append([]byte{}, good[:4]...), good[4:len(good)-1]...)},
		{"length-over-limit", []byte{0xff, 0xff, 0xff, 0xff, Version, TError, EncBinary}},
		{"bad-version", []byte{3, 0, 0, 0, 9, TError, EncBinary}},
		{"bad-type", []byte{3, 0, 0, 0, Version, 99, EncBinary}},
		{"bad-enc", []byte{3, 0, 0, 0, Version, TError, 7}},
		{"truncated-payload", []byte{4, 0, 0, 0, Version, TError, EncBinary, 5}},
		{"trailing-bytes", append(append([]byte{}, good...), 0)[4:]},
		{"bad-json", []byte{6, 0, 0, 0, Version, TInit, EncJSON, '{', '{', '{'}},
	}
	// trailing-bytes case needs a corrected length prefix.
	trailing := append(append([]byte{}, good...), 0)
	trailing[0]++
	cases[9].b = trailing
	for _, tc := range cases {
		if _, err := Decode(tc.b); err == nil {
			t.Errorf("Decode(%s) succeeded; want error", tc.name)
		}
	}
}

// TestBinaryFloatExactness pins bit-level float carriage, including
// the engine's Infinity sentinel and negative zero.
func TestBinaryFloatExactness(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1e18, -1e18, 0.1, 1.0 / 3.0, math.MaxFloat64}
	for _, v := range vals {
		m := &Msg{Round: &Round{Items: []Item{{T: v, Start: v, End: v, Bandwidth: v}}}}
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		it := got.Round.Items[0]
		for _, f := range []float64{it.T, it.Start, it.End, it.Bandwidth} {
			if math.Float64bits(f) != math.Float64bits(v) {
				t.Errorf("float %g: bits changed to %g", v, f)
			}
		}
	}
}

// FuzzDecodeFrame is the satellite obligation: Decode must never panic
// on arbitrary bytes, and any frame that decodes must reach a
// byte-level encoding fixed point after one normalization pass
// (decode→encode→decode→encode is byte-identical).
func FuzzDecodeFrame(f *testing.F) {
	for _, m := range sampleMsgs() {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{3, 0, 0, 0, Version, TError, EncBinary})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		enc1, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode of decoded frame failed: %v", err)
		}
		m2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("Decode of re-encoded frame failed: %v", err)
		}
		enc2, err := Encode(m2)
		if err != nil {
			t.Fatalf("second Encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Errorf("encoding is not a fixed point:\nenc1 %x\nenc2 %x", enc1, enc2)
		}
	})
}
