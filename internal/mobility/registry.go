package mobility

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
	"dtnsim/internal/spec"
)

// ErrSpec wraps every mobility-spec parsing failure.
var ErrSpec = errors.New("mobility: invalid spec")

// Source is one parsed mobility specification: a named, seedable
// contact-schedule generator. It is the data form of a mobility model —
// scenario files, sweeps and the CLI all reduce to a Source.
type Source struct {
	// Spec is the canonical spec string: Parse(Spec) yields a Source
	// with this same Spec, so specs round-trip.
	Spec string
	// Kind is the registry key the spec resolved to ("cambridge", …).
	Kind string
	// PerRun reports whether sweep harnesses should regenerate the
	// schedule for every run (synthetic waypoint models) or generate it
	// once and share it (trace files, seed-pinned generators).
	PerRun bool
	// Generate materializes the full schedule. The seed is the run's
	// seed unless the spec pinned one with seed=N. Must be safe for
	// concurrent use.
	Generate func(seed uint64) (*contact.Schedule, error)
	// Stream builds a pull-based contact source emitting the same
	// stream Generate materializes, in O(nodes) working memory. Every
	// built-in spec provides it; the engine and sweep harnesses prefer
	// it over Generate. A source is single-use: call Stream once per
	// run. Must be safe for concurrent use.
	Stream func(seed uint64) (contact.Source, error)
}

// SpecInfo documents one registered spec for listings (-list).
type SpecInfo struct {
	Name  string
	Usage string
}

// Parser turns the argument part of "name:args" into a Source.
type Parser func(args string) (Source, error)

// Registry maps spec names to mobility parsers, mirroring
// protocol.Registry: new generators register under a string key and
// become usable everywhere specs are accepted without touching callers.
type Registry struct {
	names   []string
	entries map[string]entry
}

type entry struct {
	usage string
	parse Parser
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]entry{}}
}

// Register adds a named parser; it panics on an empty or duplicate name
// (registration is init-time, a collision is a programming error).
func (r *Registry) Register(name, usage string, p Parser) {
	if name == "" || p == nil {
		panic("mobility: Register requires a name and a parser")
	}
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("mobility: %q registered twice", name))
	}
	r.names = append(r.names, name)
	r.entries[name] = entry{usage: usage, parse: p}
}

// Names returns the registered spec names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Specs returns name and usage for every registered parser.
func (r *Registry) Specs() []SpecInfo {
	out := make([]SpecInfo, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, SpecInfo{Name: n, Usage: r.entries[n].usage})
	}
	return out
}

// Parse resolves a spec string ("cambridge:seed=42", "subscriber",
// "rwp:nodes=40", "interval:max=2000", "trace:PATH") to a Source. All
// failures wrap ErrSpec; Parse never panics and never touches the
// filesystem (trace files are opened by Generate).
func (r *Registry) Parse(s string) (Source, error) {
	name, args := spec.Split(s)
	if name == "" {
		return Source{}, fmt.Errorf("%w: empty spec", ErrSpec)
	}
	e, ok := r.entries[name]
	if !ok {
		return Source{}, fmt.Errorf("%w: unknown mobility %q (have %s)",
			ErrSpec, name, strings.Join(r.names, ", "))
	}
	src, err := e.parse(args)
	if err != nil {
		if errors.Is(err, ErrSpec) {
			return Source{}, err
		}
		return Source{}, fmt.Errorf("%w: %s: %v", ErrSpec, name, err)
	}
	src.Kind = name
	return src, nil
}

// Default is the registry holding every mobility source the paper uses:
//
//	cambridge[:seed=N,nodes=N,span=S]    synthetic Cambridge/Haggle trace
//	subscriber[:seed=N,nodes=N,...]      the paper's modified (subscriber-point) RWP
//	rwp[:seed=N,nodes=N,...]             textbook random waypoint
//	interval[:max=S,min=S,...]           the Fig. 14 controlled-interval scenario
//	trace:PATH                           an encounter-trace file on disk
var Default = builtinRegistry()

// Parse resolves a spec against the Default registry.
func Parse(s string) (Source, error) { return Default.Parse(s) }

// BuiltinSpecs returns one canonical spec per built-in source.
func BuiltinSpecs() []string {
	return []string{"cambridge", "subscriber", "rwp", "interval:max=400"}
}

func builtinRegistry() *Registry {
	r := NewRegistry()
	r.Register("cambridge",
		"cambridge[:seed=N,nodes=N,span=S] — synthetic Cambridge/Haggle iMote encounter trace (fixed across sweep runs)",
		parseCambridge)
	r.Register("subscriber",
		"subscriber[:seed=N,nodes=N,points=N,area=M,span=S] — the paper's modified subscriber-point RWP (regenerated per run)",
		parseSubscriber)
	r.Register("rwp",
		"rwp[:seed=N,nodes=N,area=M,span=S,range=M,dt=S] — textbook random waypoint with range detection (regenerated per run)",
		parseClassic)
	r.Register("interval",
		"interval[:max=S,min=S,nodes=N,encounters=N,seed=N] — the Fig. 14 bounded inter-encounter-interval scenario (regenerated per run)",
		parseInterval)
	r.Register("trace",
		"trace:PATH — encounter-trace file (\"nodeA nodeB start end\" lines, CRAWDAD Haggle style)",
		parseTraceFile)
	return r
}

// seedParam reads the optional seed pin. A pinned seed makes Generate
// ignore the caller's seed, fixing the schedule across sweep runs.
func seedParam(ps *spec.Params) (pinned bool, seed uint64, err error) {
	pinned = ps.Has("seed")
	seed, err = ps.Uint("seed", 0)
	return pinned, seed, err
}

func fmtUint(v uint64) string   { return strconv.FormatUint(v, 10) }
func fmtInt(v int) string       { return strconv.Itoa(v) }
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// canonical renders "name" or "name:pairs", omitting empty values.
func canonical(name string, pairs ...[2]string) string {
	args := spec.Canonical(pairs...)
	if args == "" {
		return name
	}
	return name + ":" + args
}

func parseCambridge(args string) (Source, error) {
	ps, err := spec.Parse(args)
	if err != nil {
		return Source{}, err
	}
	pinned, seed, err := seedParam(ps)
	if err != nil {
		return Source{}, err
	}
	nodes, err := ps.Int("nodes", 0)
	if err != nil {
		return Source{}, err
	}
	span, err := ps.Float("span", 0)
	if err != nil {
		return Source{}, err
	}
	if err := ps.Unknown(); err != nil {
		return Source{}, err
	}
	if nodes < 0 || span < 0 {
		return Source{}, fmt.Errorf("nodes and span must be non-negative")
	}
	var pairs [][2]string
	if pinned {
		pairs = append(pairs, [2]string{"seed", fmtUint(seed)})
	}
	if nodes != 0 {
		pairs = append(pairs, [2]string{"nodes", fmtInt(nodes)})
	}
	if span != 0 {
		pairs = append(pairs, [2]string{"span", fmtFloat(span)})
	}
	gen := func(runSeed uint64) SyntheticCambridge {
		if pinned {
			runSeed = seed
		}
		return SyntheticCambridge{Seed: runSeed, Nodes: nodes, Span: sim.Time(span)}
	}
	return Source{
		Spec:   canonical("cambridge", pairs...),
		PerRun: false, // a trace is fixed across runs, like the real file
		Generate: func(runSeed uint64) (*contact.Schedule, error) {
			return gen(runSeed).Generate()
		},
		Stream: func(runSeed uint64) (contact.Source, error) {
			return gen(runSeed).Stream()
		},
	}, nil
}

func parseSubscriber(args string) (Source, error) {
	ps, err := spec.Parse(args)
	if err != nil {
		return Source{}, err
	}
	pinned, seed, err := seedParam(ps)
	if err != nil {
		return Source{}, err
	}
	nodes, err := ps.Int("nodes", 0)
	if err != nil {
		return Source{}, err
	}
	points, err := ps.Int("points", 0)
	if err != nil {
		return Source{}, err
	}
	area, err := ps.Float("area", 0)
	if err != nil {
		return Source{}, err
	}
	span, err := ps.Float("span", 0)
	if err != nil {
		return Source{}, err
	}
	if err := ps.Unknown(); err != nil {
		return Source{}, err
	}
	if nodes < 0 || points < 0 || area < 0 || span < 0 {
		return Source{}, fmt.Errorf("parameters must be non-negative")
	}
	var pairs [][2]string
	if pinned {
		pairs = append(pairs, [2]string{"seed", fmtUint(seed)})
	}
	if nodes != 0 {
		pairs = append(pairs, [2]string{"nodes", fmtInt(nodes)})
	}
	if points != 0 {
		pairs = append(pairs, [2]string{"points", fmtInt(points)})
	}
	if area != 0 {
		pairs = append(pairs, [2]string{"area", fmtFloat(area)})
	}
	if span != 0 {
		pairs = append(pairs, [2]string{"span", fmtFloat(span)})
	}
	gen := func(runSeed uint64) SubscriberPointRWP {
		if pinned {
			runSeed = seed
		}
		return SubscriberPointRWP{
			Seed: runSeed, Nodes: nodes, Points: points,
			AreaSide: area, Span: sim.Time(span),
		}
	}
	return Source{
		Spec:   canonical("subscriber", pairs...),
		PerRun: !pinned,
		Generate: func(runSeed uint64) (*contact.Schedule, error) {
			return gen(runSeed).Generate()
		},
		Stream: func(runSeed uint64) (contact.Source, error) {
			return gen(runSeed).Stream()
		},
	}, nil
}

func parseClassic(args string) (Source, error) {
	ps, err := spec.Parse(args)
	if err != nil {
		return Source{}, err
	}
	pinned, seed, err := seedParam(ps)
	if err != nil {
		return Source{}, err
	}
	nodes, err := ps.Int("nodes", 0)
	if err != nil {
		return Source{}, err
	}
	area, err := ps.Float("area", 0)
	if err != nil {
		return Source{}, err
	}
	span, err := ps.Float("span", 0)
	if err != nil {
		return Source{}, err
	}
	rng, err := ps.Float("range", 0)
	if err != nil {
		return Source{}, err
	}
	dt, err := ps.Float("dt", 0)
	if err != nil {
		return Source{}, err
	}
	if err := ps.Unknown(); err != nil {
		return Source{}, err
	}
	if nodes < 0 || area < 0 || span < 0 || rng < 0 || dt < 0 {
		return Source{}, fmt.Errorf("parameters must be non-negative")
	}
	var pairs [][2]string
	if pinned {
		pairs = append(pairs, [2]string{"seed", fmtUint(seed)})
	}
	if nodes != 0 {
		pairs = append(pairs, [2]string{"nodes", fmtInt(nodes)})
	}
	if area != 0 {
		pairs = append(pairs, [2]string{"area", fmtFloat(area)})
	}
	if span != 0 {
		pairs = append(pairs, [2]string{"span", fmtFloat(span)})
	}
	if rng != 0 {
		pairs = append(pairs, [2]string{"range", fmtFloat(rng)})
	}
	if dt != 0 {
		pairs = append(pairs, [2]string{"dt", fmtFloat(dt)})
	}
	gen := func(runSeed uint64) ClassicRWP {
		if pinned {
			runSeed = seed
		}
		return ClassicRWP{
			Seed: runSeed, Nodes: nodes, AreaSide: area,
			Span: sim.Time(span), Range: rng, SampleDT: dt,
		}
	}
	return Source{
		Spec:   canonical("rwp", pairs...),
		PerRun: !pinned,
		Generate: func(runSeed uint64) (*contact.Schedule, error) {
			return gen(runSeed).Generate()
		},
		Stream: func(runSeed uint64) (contact.Source, error) {
			return gen(runSeed).Stream()
		},
	}, nil
}

func parseInterval(args string) (Source, error) {
	ps, err := spec.Parse(args)
	if err != nil {
		return Source{}, err
	}
	pinned, seed, err := seedParam(ps)
	if err != nil {
		return Source{}, err
	}
	maxI, err := ps.Float("max", 0)
	if err != nil {
		return Source{}, err
	}
	minI, err := ps.Float("min", 0)
	if err != nil {
		return Source{}, err
	}
	nodes, err := ps.Int("nodes", 0)
	if err != nil {
		return Source{}, err
	}
	enc, err := ps.Int("encounters", 0)
	if err != nil {
		return Source{}, err
	}
	if err := ps.Unknown(); err != nil {
		return Source{}, err
	}
	if maxI < 0 || minI < 0 || nodes < 0 || enc < 0 {
		return Source{}, fmt.Errorf("parameters must be non-negative")
	}
	var pairs [][2]string
	if maxI != 0 {
		pairs = append(pairs, [2]string{"max", fmtFloat(maxI)})
	}
	if minI != 0 {
		pairs = append(pairs, [2]string{"min", fmtFloat(minI)})
	}
	if nodes != 0 {
		pairs = append(pairs, [2]string{"nodes", fmtInt(nodes)})
	}
	if enc != 0 {
		pairs = append(pairs, [2]string{"encounters", fmtInt(enc)})
	}
	if pinned {
		pairs = append(pairs, [2]string{"seed", fmtUint(seed)})
	}
	gen := func(runSeed uint64) ControlledInterval {
		if pinned {
			runSeed = seed
		}
		return ControlledInterval{
			Seed: runSeed, MaxInterval: maxI, MinInterval: minI,
			Nodes: nodes, Encounters: enc,
		}
	}
	return Source{
		Spec:   canonical("interval", pairs...),
		PerRun: !pinned,
		Generate: func(runSeed uint64) (*contact.Schedule, error) {
			return gen(runSeed).Generate()
		},
		Stream: func(runSeed uint64) (contact.Source, error) {
			return gen(runSeed).Stream()
		},
	}, nil
}

// parseTraceFile takes the whole argument string as the file path, so
// paths may contain colons, commas, and equals signs.
func parseTraceFile(args string) (Source, error) {
	if args == "" {
		return Source{}, fmt.Errorf("needs a file path (trace:PATH)")
	}
	path := args
	return Source{
		Spec:   "trace:" + path,
		PerRun: false,
		Generate: func(uint64) (*contact.Schedule, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, fmt.Errorf("mobility: trace spec: %w", err)
			}
			defer f.Close()
			return ParseTrace(f)
		},
		Stream: func(uint64) (contact.Source, error) {
			return OpenTraceSource(path)
		},
	}, nil
}
