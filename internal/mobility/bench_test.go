package mobility

import (
	"runtime"
	"testing"
)

// The schedule-memory benchmark pair behind cmd/benchguard's memory
// gate: generating 5k-node subscriber-point mobility materialized
// versus streamed. benchguard enforces (from BENCH_hotpath.json) that
// the materialized path allocates and retains at least min_ratio times
// more than the streaming path — the O(#contacts) → O(nodes) claim as
// a regression gate.
//
// Both benchmarks also report "resident-B": the heap bytes still live
// (after GC) while the run's contact plan is held — the peak schedule
// residency a simulation pays. The materialized plan retains every
// contact; the streaming plan retains per-node generator state.

// bench5k is the 5k-node scenario: 100 km² keeps 2000 points legal
// under the paper's 100/km² density bound, and the span is long enough
// that the contact count (hundreds of thousands) dwarfs the node
// count — the regime the O(nodes)-vs-O(#contacts) gate is about.
func bench5k() SubscriberPointRWP {
	return SubscriberPointRWP{Nodes: 5000, Points: 2000, AreaSide: 10000, Span: 200000, Seed: 1}
}

// residentDelta reports the live-heap growth of build, with the
// returned value kept reachable, as the "resident-B" metric.
func residentDelta(b *testing.B, build func() any) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	keep := build()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc), "resident-B")
	} else {
		b.ReportMetric(0, "resident-B")
	}
	runtime.KeepAlive(keep)
}

func BenchmarkScheduleMaterialized5k(b *testing.B) {
	g := bench5k()
	b.ReportAllocs()
	var contacts int
	for i := 0; i < b.N; i++ {
		s, err := g.Generate()
		if err != nil {
			b.Fatal(err)
		}
		contacts = len(s.Contacts)
	}
	b.StopTimer()
	b.ReportMetric(float64(contacts), "contacts")
	residentDelta(b, func() any {
		s, err := g.Generate()
		if err != nil {
			b.Fatal(err)
		}
		return s
	})
}

func BenchmarkScheduleStreaming5k(b *testing.B) {
	g := bench5k()
	b.ReportAllocs()
	var contacts int
	for i := 0; i < b.N; i++ {
		src, err := g.Stream()
		if err != nil {
			b.Fatal(err)
		}
		contacts = 0
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			contacts++
		}
		if err := src.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(contacts), "contacts")
	// Residency mid-stream: the source half drained, as the engine
	// would hold it.
	residentDelta(b, func() any {
		src, err := g.Stream()
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < contacts/2; i++ {
			if _, ok := src.Next(); !ok {
				break
			}
		}
		return src
	})
}
