package mobility

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// ParseTrace reads an encounter trace in the canonical text format:
//
//	# comment lines and blank lines are ignored
//	<nodeA> <nodeB> <start-seconds> <end-seconds>
//
// Node IDs are non-negative integers; fields are whitespace-separated.
// This is the column layout of CRAWDAD Haggle-style sighting records
// (device, peer, first-seen, last-seen), so converted iMote traces load
// directly. Contacts are normalized, sorted, and validated; the node
// count is inferred as max(ID)+1 unless a "# nodes: N" header raises it.
func ParseTrace(r io.Reader) (*contact.Schedule, error) {
	s := &contact.Schedule{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	maxID := contact.NodeID(-1)
	declaredNodes := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if n, ok := parseNodesHeader(text); ok {
				declaredNodes = n
			}
			continue
		}
		c, err := parseTraceLine(text, line)
		if err != nil {
			return nil, err
		}
		if c.B > maxID {
			maxID = c.B
		}
		s.Contacts = append(s.Contacts, c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mobility: reading trace: %w", err)
	}
	s.Nodes = int(maxID) + 1
	if declaredNodes > s.Nodes {
		s.Nodes = declaredNodes
	}
	s.Sort()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseTraceLine parses one non-comment record of the canonical trace
// format into a normalized, validated contact.
func parseTraceLine(text string, line int) (contact.Contact, error) {
	fields := strings.Fields(text)
	if len(fields) < 4 {
		return contact.Contact{}, fmt.Errorf("mobility: trace line %d: want 4 fields, got %d", line, len(fields))
	}
	var vals [4]float64
	for i := 0; i < 4; i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return contact.Contact{}, fmt.Errorf("mobility: trace line %d field %d: %v", line, i+1, err)
		}
		vals[i] = v
	}
	a, b := contact.NodeID(vals[0]), contact.NodeID(vals[1])
	if float64(a) != vals[0] || float64(b) != vals[1] || a < 0 || b < 0 {
		return contact.Contact{}, fmt.Errorf("mobility: trace line %d: node IDs must be non-negative integers", line)
	}
	c := contact.Contact{A: a, B: b, Start: sim.Time(vals[2]), End: sim.Time(vals[3])}.Normalize()
	if err := c.Validate(); err != nil {
		return contact.Contact{}, fmt.Errorf("mobility: trace line %d: %w", line, err)
	}
	return c, nil
}

func parseNodesHeader(line string) (int, bool) {
	rest, ok := strings.CutPrefix(line, "#")
	if !ok {
		return 0, false
	}
	rest = strings.TrimSpace(rest)
	rest, ok = strings.CutPrefix(rest, "nodes:")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// WriteTrace emits a schedule in the canonical text format read by
// ParseTrace, including the node-count header.
func WriteTrace(w io.Writer, s *contact.Schedule) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes: %d\n", s.Nodes); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "# contacts: %d\n", len(s.Contacts)); err != nil {
		return err
	}
	for _, c := range s.Contacts {
		if _, err := fmt.Fprintf(bw, "%d %d %.0f %.0f\n", c.A, c.B, float64(c.Start), float64(c.End)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
