package mobility

import (
	"testing"
	"testing/quick"

	"dtnsim/internal/contact"
)

func TestSyntheticCambridgeDeterminism(t *testing.T) {
	a, err := SyntheticCambridge{Seed: 7}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticCambridge{Seed: 7}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("same seed gave %d vs %d contacts", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("same seed diverged at contact %d", i)
		}
	}
	c, err := SyntheticCambridge{Seed: 8}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Contacts) == len(a.Contacts) {
		same := true
		for i := range a.Contacts {
			if a.Contacts[i] != c.Contacts[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestSyntheticCambridgeShape(t *testing.T) {
	s, err := SyntheticCambridge{Seed: 1}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != CambridgeNodes {
		t.Errorf("Nodes = %d, want %d", s.Nodes, CambridgeNodes)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if h := s.Horizon(); h > CambridgeSpan {
		t.Errorf("Horizon %v exceeds span %v", h, CambridgeSpan)
	}
	st := contact.Analyze(s)
	// The paper's arguments need a sparse DTN: node-level inter-contact
	// gaps well above the 300 s TTL, and contacts that usually carry a
	// couple of 100 s bundle slots.
	if st.MeanInterval < 500 || st.MeanInterval > 20000 {
		t.Errorf("mean node inter-contact interval = %.0fs, want sparse-DTN range [500,20000]", st.MeanInterval)
	}
	if st.MeanDuration < 100 || st.MeanDuration > 1500 {
		t.Errorf("mean contact duration = %.0fs, want [100,1500]", st.MeanDuration)
	}
	if st.Contacts < 500 {
		t.Errorf("only %d contacts over 5 days; trace too sparse to exercise protocols", st.Contacts)
	}
	// Every pair should eventually meet in a campus trace.
	wantPairs := CambridgeNodes * (CambridgeNodes - 1) / 2
	if st.PairsWithContact < wantPairs*3/4 {
		t.Errorf("only %d/%d pairs ever meet", st.PairsWithContact, wantPairs)
	}
	// All nodes participate.
	for n, e := range st.EncountersPer {
		if e == 0 {
			t.Errorf("node %d has no encounters", n)
		}
	}
}

func TestSyntheticCambridgeHeavyTail(t *testing.T) {
	s, err := SyntheticCambridge{Seed: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	gaps := contact.InterContactTimes(s, 0)
	if len(gaps) < 20 {
		t.Fatalf("node 0 has only %d gaps", len(gaps))
	}
	mean, over := 0.0, 0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		if g > 2*mean {
			over++
		}
	}
	// A heavy-tailed gap distribution has a meaningful share of gaps far
	// above the mean (an exponential would have ~13.5% above 2×mean; we
	// only require the tail to exist).
	if over == 0 {
		t.Error("no inter-contact gaps above 2×mean; distribution not heavy-tailed")
	}
}

func TestSyntheticCambridgeErrors(t *testing.T) {
	if _, err := (SyntheticCambridge{Seed: 1, Nodes: 1}).Generate(); err == nil {
		t.Error("1 node accepted")
	}
	if _, err := (SyntheticCambridge{Seed: 1, Span: -5}).Generate(); err == nil {
		t.Error("negative span accepted")
	}
}

func TestSyntheticCambridgeRetriesEmptyDraw(t *testing.T) {
	// This seed's first draw places every pair's first encounter beyond
	// the 100,000 s span; Generate must retry with a derived stream
	// instead of returning an "empty schedule" validation error.
	s, err := SyntheticCambridge{Seed: 0xae8dd413d6aea8a6, Nodes: 4, Span: 100000}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Contacts) == 0 {
		t.Fatal("retry produced an empty schedule")
	}
	if s.Horizon() > 100000 {
		t.Errorf("horizon %v beyond span", s.Horizon())
	}
}

func TestSyntheticCambridgeCustomSizes(t *testing.T) {
	f := func(seed uint64) bool {
		s, err := SyntheticCambridge{Seed: seed, Nodes: 4, Span: 100000}.Generate()
		if err != nil {
			return false
		}
		return s.Validate() == nil && s.Horizon() <= 100000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalFactor(t *testing.T) {
	g := SyntheticCambridge{}.Defaults()
	if f := g.diurnalFactor(3 * 3600); f != g.NightQuiet {
		t.Errorf("night factor = %v", f)
	}
	if f := g.diurnalFactor(12 * 3600); f != 1.0 {
		t.Errorf("day factor = %v", f)
	}
	if f := g.diurnalFactor(daySeconds + 3*3600); f != g.NightQuiet {
		t.Errorf("night factor on day 2 = %v", f)
	}
}
