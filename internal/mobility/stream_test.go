package mobility

import (
	"os"
	"path/filepath"
	"testing"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// streamCase is one generator under equivalence test: the materialized
// reference and the streaming implementation built from the same
// parameters.
type streamCase struct {
	name     string
	generate func(seed uint64) (*contact.Schedule, error)
	stream   func(seed uint64) (contact.Source, error)
	// horizonIsSpan marks generators whose Source reports the
	// configured span (an upper bound); others must report the exact
	// schedule horizon.
	horizonIsSpan bool
}

func streamCases() []streamCase {
	return []streamCase{
		{
			name: "cambridge",
			generate: func(s uint64) (*contact.Schedule, error) {
				return SyntheticCambridge{Seed: s}.Generate()
			},
			stream: func(s uint64) (contact.Source, error) {
				return SyntheticCambridge{Seed: s}.Stream()
			},
			horizonIsSpan: true,
		},
		{
			name: "cambridge-small",
			generate: func(s uint64) (*contact.Schedule, error) {
				return SyntheticCambridge{Seed: s, Nodes: 4, Span: 200000}.Generate()
			},
			stream: func(s uint64) (contact.Source, error) {
				return SyntheticCambridge{Seed: s, Nodes: 4, Span: 200000}.Stream()
			},
			horizonIsSpan: true,
		},
		{
			name: "subscriber",
			generate: func(s uint64) (*contact.Schedule, error) {
				return SubscriberPointRWP{Seed: s}.Generate()
			},
			stream: func(s uint64) (contact.Source, error) {
				return SubscriberPointRWP{Seed: s}.Stream()
			},
			horizonIsSpan: true,
		},
		{
			name: "subscriber-dense",
			generate: func(s uint64) (*contact.Schedule, error) {
				return SubscriberPointRWP{Seed: s, Nodes: 30, Points: 5, Span: 150000}.Generate()
			},
			stream: func(s uint64) (contact.Source, error) {
				return SubscriberPointRWP{Seed: s, Nodes: 30, Points: 5, Span: 150000}.Stream()
			},
			horizonIsSpan: true,
		},
		{
			name: "rwp-classic",
			generate: func(s uint64) (*contact.Schedule, error) {
				return ClassicRWP{Seed: s, Span: 120000}.Generate()
			},
			stream: func(s uint64) (contact.Source, error) {
				return ClassicRWP{Seed: s, Span: 120000}.Stream()
			},
			horizonIsSpan: true,
		},
		{
			name: "rwp-classic-dense",
			generate: func(s uint64) (*contact.Schedule, error) {
				return ClassicRWP{Seed: s, Nodes: 24, AreaSide: 800, Range: 150, Span: 60000}.Generate()
			},
			stream: func(s uint64) (contact.Source, error) {
				return ClassicRWP{Seed: s, Nodes: 24, AreaSide: 800, Range: 150, Span: 60000}.Stream()
			},
			horizonIsSpan: true,
		},
		{
			name: "interval",
			generate: func(s uint64) (*contact.Schedule, error) {
				return ControlledInterval{Seed: s, MaxInterval: 400}.Generate()
			},
			stream: func(s uint64) (contact.Source, error) {
				return ControlledInterval{Seed: s, MaxInterval: 400}.Stream()
			},
		},
		{
			name: "interval-long",
			generate: func(s uint64) (*contact.Schedule, error) {
				return ControlledInterval{Seed: s, MaxInterval: 2000, Nodes: 9, Encounters: 30}.Generate()
			},
			stream: func(s uint64) (contact.Source, error) {
				return ControlledInterval{Seed: s, MaxInterval: 2000, Nodes: 9, Encounters: 30}.Stream()
			},
		},
	}
}

// drain pulls a source dry, failing on a stream error.
func drain(t testing.TB, src contact.Source) []contact.Contact {
	t.Helper()
	var out []contact.Contact
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, c)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("stream error after %d contacts: %v", len(out), err)
	}
	return out
}

// TestStreamMatchesGenerate: every streaming source must reproduce its
// materialized generator contact-for-contact, in canonical order, for
// several seeds — streaming is a memory refactor, not a new model.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, tc := range streamCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 5; seed++ {
				want, err := tc.generate(seed)
				if err != nil {
					t.Fatalf("seed %d: generate: %v", seed, err)
				}
				src, err := tc.stream(seed)
				if err != nil {
					t.Fatalf("seed %d: stream: %v", seed, err)
				}
				if src.Nodes() != want.Nodes {
					t.Fatalf("seed %d: stream reports %d nodes, schedule has %d", seed, src.Nodes(), want.Nodes)
				}
				if !tc.horizonIsSpan && src.Horizon() != want.Horizon() {
					t.Fatalf("seed %d: stream horizon %v, schedule horizon %v", seed, src.Horizon(), want.Horizon())
				}
				if tc.horizonIsSpan && src.Horizon() < want.Horizon() {
					t.Fatalf("seed %d: stream horizon %v below schedule horizon %v", seed, src.Horizon(), want.Horizon())
				}
				got := drain(t, src)
				if len(got) != len(want.Contacts) {
					t.Fatalf("seed %d: stream yielded %d contacts, generate %d", seed, len(got), len(want.Contacts))
				}
				for i := range got {
					if got[i] != want.Contacts[i] {
						t.Fatalf("seed %d: contact %d: stream %v, generate %v", seed, i, got[i], want.Contacts[i])
					}
				}
			}
		})
	}
}

// TestStreamDeterministic: two sources built from the same parameters
// must yield identical streams.
func TestStreamDeterministic(t *testing.T) {
	for _, tc := range streamCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			a, err := tc.stream(42)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tc.stream(42)
			if err != nil {
				t.Fatal(err)
			}
			ca, cb := drain(t, a), drain(t, b)
			if len(ca) != len(cb) {
				t.Fatalf("same-seed streams differ in length: %d vs %d", len(ca), len(cb))
			}
			for i := range ca {
				if ca[i] != cb[i] {
					t.Fatalf("same-seed streams diverge at contact %d: %v vs %v", i, ca[i], cb[i])
				}
			}
		})
	}
}

// checkStreamClean asserts the Source contract on a drained stream:
// contacts individually valid, endpoints in range, canonically sorted,
// ends within the reported horizon (when one is reported).
func checkStreamClean(t *testing.T, src contact.Source, got []contact.Contact) {
	t.Helper()
	horizon := src.Horizon()
	for i, c := range got {
		if err := c.Validate(); err != nil {
			t.Fatalf("contact %d: %v", i, err)
		}
		if int(c.B) >= src.Nodes() {
			t.Fatalf("contact %d: node %d out of range [0,%d)", i, c.B, src.Nodes())
		}
		if horizon > 0 && c.End > horizon {
			t.Fatalf("contact %d: end %v beyond reported horizon %v", i, c.End, horizon)
		}
		if i > 0 && contact.Less(c, got[i-1]) {
			t.Fatalf("contact %d out of canonical order: %v after %v", i, c, got[i-1])
		}
	}
}

// TestStreamSortedAndValid is the property test behind the engine's
// incremental validation: across many seeds, every source emits a
// sorted, Validate-clean stream.
func TestStreamSortedAndValid(t *testing.T) {
	for _, tc := range streamCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(100); seed < 110; seed++ {
				src, err := tc.stream(seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				checkStreamClean(t, src, drain(t, src))
			}
		})
	}
}

// TestIntervalEndAnchoredDisjoint: under the end-anchored canonical
// spec a node is never in two overlapping encounters, for any seed.
func TestIntervalEndAnchoredDisjoint(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		s, err := ControlledInterval{Seed: seed, MaxInterval: 400, MinDur: 250, MaxDur: 300}.Generate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a, b, found := s.NodeOverlap(); found {
			t.Fatalf("seed %d: node overlap %v / %v", seed, a, b)
		}
	}
}

// TestNodeOverlapDetection: the detector finds a planted overlap and
// accepts schedules produced by models where overlap is legal.
func TestNodeOverlapDetection(t *testing.T) {
	s := &contact.Schedule{Nodes: 3, Contacts: []contact.Contact{
		{A: 0, B: 1, Start: 10, End: 100},
		{A: 0, B: 2, Start: 50, End: 80},
	}}
	if _, _, found := s.NodeOverlap(); !found {
		t.Error("planted overlap on node 0 not detected")
	}
	if err := s.ValidateDisjoint(); err == nil {
		t.Error("ValidateDisjoint accepted an overlapping schedule")
	}
	ok := &contact.Schedule{Nodes: 3, Contacts: []contact.Contact{
		{A: 0, B: 1, Start: 10, End: 50},
		{A: 0, B: 2, Start: 50, End: 80},
	}}
	if _, _, found := ok.NodeOverlap(); found {
		t.Error("touching windows flagged as overlap")
	}
}

// TestTraceSourceStreamsFile: a sorted trace file streams identically
// to ParseTrace, with the exact horizon and node count.
func TestTraceSourceStreamsFile(t *testing.T) {
	want, err := SyntheticCambridge{Seed: 11}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "contacts.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(f, want); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	parsed, err := func() (*contact.Schedule, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ParseTrace(f)
	}()
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenTraceSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if src.Nodes() != parsed.Nodes {
		t.Errorf("source nodes %d, parsed %d", src.Nodes(), parsed.Nodes)
	}
	if src.Horizon() != parsed.Horizon() {
		t.Errorf("source horizon %v, parsed %v", src.Horizon(), parsed.Horizon())
	}
	got := drain(t, src)
	if len(got) != len(parsed.Contacts) {
		t.Fatalf("source yielded %d contacts, parsed %d", len(got), len(parsed.Contacts))
	}
	for i := range got {
		if got[i] != parsed.Contacts[i] {
			t.Fatalf("contact %d: source %v, parsed %v", i, got[i], parsed.Contacts[i])
		}
	}
}

// TestTraceSourceUnsortedFallsBack: out-of-order records cannot stream
// but must still load, sorted, through the same interface.
func TestTraceSourceUnsortedFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unsorted.txt")
	data := "# nodes: 3\n1 2 500 600\n0 1 100 200\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenTraceSource(path)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, src)
	if len(got) != 2 || got[0].Start != 100 || got[1].Start != 500 {
		t.Fatalf("fallback stream wrong: %v", got)
	}
}

// TestTraceSourceErrors: missing files, empty traces and bad records
// fail at open, not mid-run.
func TestTraceSourceErrors(t *testing.T) {
	if _, err := OpenTraceSource(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("# nodes: 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceSource(empty); err == nil {
		t.Error("empty trace accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("0 1 oops 100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceSource(bad); err == nil {
		t.Error("malformed record accepted")
	}
}

// TestSubscriberPointsPerKm2: the paper's density bound scales with the
// area — 96 points in 1 km² is legal, 101 is not, and a 2 km side
// legalizes 400.
func TestSubscriberPointsPerKm2(t *testing.T) {
	if _, err := (SubscriberPointRWP{Points: 101, Seed: 1}).Generate(); err == nil {
		t.Error("101 points in 1 km² accepted")
	}
	if _, err := (SubscriberPointRWP{Points: 400, AreaSide: 2000, Span: 20000, Seed: 1}).Generate(); err != nil {
		t.Errorf("400 points in 4 km² rejected: %v", err)
	}
	if _, err := (SubscriberPointRWP{Points: 401, AreaSide: 2000, Seed: 1}).Stream(); err == nil {
		t.Error("401 points in 4 km² accepted by Stream")
	}
}

// FuzzIntervalStream: for arbitrary parameters the interval source
// must either fail to construct or emit a sorted, Validate-clean,
// node-disjoint stream equal to its materialized schedule.
func FuzzIntervalStream(f *testing.F) {
	f.Add(uint64(1), 10, 8, 100.0, 400.0)
	f.Add(uint64(7), 3, 1, 0.5, 0.6)
	f.Add(uint64(9), 21, 5, 2000.0, 2000.0)
	f.Fuzz(func(t *testing.T, seed uint64, nodes, encounters int, minI, maxI float64) {
		if nodes < 2 || nodes > 40 || encounters < 1 || encounters > 40 {
			t.Skip()
		}
		if minI < 0 || maxI < minI || maxI > 1e6 {
			t.Skip()
		}
		g := ControlledInterval{Seed: seed, Nodes: nodes, Encounters: encounters, MinInterval: minI, MaxInterval: maxI}
		want, genErr := g.Generate()
		src, err := g.Stream()
		if (err == nil) != (genErr == nil) {
			t.Fatalf("Stream err %v, Generate err %v", err, genErr)
		}
		if err != nil {
			return
		}
		got := drain(t, src)
		checkStreamClean(t, src, got)
		if len(got) != len(want.Contacts) {
			t.Fatalf("stream %d contacts, generate %d", len(got), len(want.Contacts))
		}
		s := &contact.Schedule{Nodes: src.Nodes(), Contacts: got}
		if a, b, found := s.NodeOverlap(); found {
			t.Fatalf("node overlap: %v / %v", a, b)
		}
	})
}

// FuzzCambridgeStream: arbitrary small populations and spans must
// stream sorted and clean, matching the materialized generator.
func FuzzCambridgeStream(f *testing.F) {
	f.Add(uint64(3), 5, 250000.0)
	f.Add(uint64(0), 2, 40000.0)
	f.Fuzz(func(t *testing.T, seed uint64, nodes int, span float64) {
		if nodes < 2 || nodes > 16 || span <= 0 || span > 700000 {
			t.Skip()
		}
		g := SyntheticCambridge{Seed: seed, Nodes: nodes, Span: sim.Time(span)}
		want, genErr := g.Generate()
		src, err := g.Stream()
		if (err == nil) != (genErr == nil) {
			t.Fatalf("Stream err %v, Generate err %v", err, genErr)
		}
		if err != nil {
			return
		}
		got := drain(t, src)
		checkStreamClean(t, src, got)
		if len(got) != len(want.Contacts) {
			t.Fatalf("stream %d contacts, generate %d", len(got), len(want.Contacts))
		}
	})
}
