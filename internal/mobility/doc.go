// Package mobility produces contact schedules from mobility models and
// trace files. It implements every mobility source the paper uses:
//
//   - ParseTrace / WriteTrace: a line-oriented encounter-trace format
//     compatible with CRAWDAD Haggle-style records (node node start end),
//     so the real cambridge/haggle/imote trace can be dropped in.
//   - SyntheticCambridge: a seeded generator reproducing the first-order
//     statistics of the Cambridge iMote trace the paper uses (12 devices,
//     524,162 s span, heavy-tailed inter-contact times, random contact
//     durations, diurnal activity) — the substitution documented in
//     DESIGN.md §3.1.
//   - SubscriberPointRWP: the paper's modified Random-WayPoint model
//     (§IV): nodes hop between subscriber points in a 1 km² area, pause
//     up to 1000 s, move at 0–10 m/s, and encounter each other when
//     co-located at a point, with contacts capped at 500 s.
//   - ClassicRWP: textbook RWP with range-based contact detection,
//     provided because the paper discusses (and avoids) its pathologies.
//   - ControlledInterval: the Fig. 14 scenario generator — n nodes, a
//     bounded number of encounters per node, and a configurable maximum
//     inter-encounter interval.
//
// Every generator is deterministic under an explicit seed and comes in
// two observationally identical forms: Generate materializes a
// validated, sorted contact.Schedule, and Stream returns a pull-based
// contact.Source emitting the same contacts in the same order from an
// O(nodes) working set (per-point and grid occupancy indexes, lazy
// waypoint paths, lookahead-heap emission; OpenTraceSource streams
// trace files from disk in O(1) memory). DESIGN.md §8 describes the
// streaming architecture; stream_test.go proves the bit-equivalence.
package mobility
