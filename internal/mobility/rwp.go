package mobility

import (
	"fmt"
	"math"
	"sort"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// RWPSpan is the simulated period for RWP experiments (§IV: "within a
// 600,000 seconds period").
const RWPSpan sim.Time = 600000

// SubscriberPointRWP is the paper's modified Random-WayPoint model (§IV).
// Nodes hop between subscriber points scattered over a square area.
// At each point a node pauses for a random time, then travels to another
// random point; two nodes are in contact while co-located at a point,
// with contact duration capped at MaxContact.
//
// The paper's parameters: fewer than 100 subscriber points per km²,
// pauses under 1000 s, node speed in (0, 10] m/s (derived from distance
// over interval), contacts capped at 500 s.
type SubscriberPointRWP struct {
	Nodes      int
	Points     int      // subscriber points in the area
	AreaSide   float64  // metres; area is AreaSide × AreaSide
	Span       sim.Time // simulated period
	Seed       uint64
	MaxPause   float64 // seconds, pause at a point is Uniform(MinPause, MaxPause)
	MinPause   float64
	MinSpeed   float64 // m/s
	MaxSpeed   float64 // m/s
	MaxContact float64 // seconds, contact duration cap
}

// Defaults fills unset fields with the paper's §IV values.
func (g SubscriberPointRWP) Defaults() SubscriberPointRWP {
	if g.Nodes == 0 {
		g.Nodes = CambridgeNodes
	}
	if g.Points == 0 {
		g.Points = 96
	}
	if g.AreaSide == 0 {
		g.AreaSide = 1000
	}
	if g.Span == 0 {
		g.Span = RWPSpan
	}
	if g.MaxPause == 0 {
		g.MaxPause = 1000
	}
	if g.MinPause == 0 {
		g.MinPause = 50
	}
	if g.MinSpeed == 0 {
		g.MinSpeed = 0.5
	}
	if g.MaxSpeed == 0 {
		g.MaxSpeed = 10
	}
	if g.MaxContact == 0 {
		g.MaxContact = 500
	}
	return g
}

type point struct{ x, y float64 }

// visit is one node's dwell interval at a subscriber point.
type visit struct {
	node   contact.NodeID
	arrive float64
	depart float64
}

// Generate simulates the itineraries and extracts the contact schedule.
func (g SubscriberPointRWP) Generate() (*contact.Schedule, error) {
	g = g.Defaults()
	if err := g.check(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(g.Seed)
	placeRNG := root.Derive(0xA11)
	pts := make([]point, g.Points)
	for i := range pts {
		pts[i] = point{placeRNG.Uniform(0, g.AreaSide), placeRNG.Uniform(0, g.AreaSide)}
	}

	// Build itineraries: per-point visit lists.
	visitsAt := make([][]visit, g.Points)
	for n := 0; n < g.Nodes; n++ {
		rng := root.Derive(0xB00 + uint64(n))
		cur := rng.IntN(g.Points)
		t := rng.Uniform(0, g.MaxPause) // staggered starts
		for sim.Time(t) < g.Span {
			pause := rng.Uniform(g.MinPause, g.MaxPause)
			depart := t + pause
			if sim.Time(depart) > g.Span {
				depart = float64(g.Span)
			}
			visitsAt[cur] = append(visitsAt[cur], visit{node: contact.NodeID(n), arrive: t, depart: depart})
			if sim.Time(depart) >= g.Span {
				break
			}
			// Choose a different next point and travel there.
			next := rng.IntN(g.Points - 1)
			if next >= cur {
				next++
			}
			d := dist(pts[cur], pts[next])
			speed := rng.Uniform(g.MinSpeed, g.MaxSpeed)
			t = depart + d/speed
			cur = next
		}
	}

	// Sweep each point's visits for pairwise dwell overlaps.
	s := &contact.Schedule{Nodes: g.Nodes}
	for _, vs := range visitsAt {
		sort.Slice(vs, func(i, j int) bool { return vs[i].arrive < vs[j].arrive })
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				if vs[j].arrive >= vs[i].depart {
					break // sorted by arrival: no later visit overlaps vs[i]
				}
				if vs[i].node == vs[j].node {
					continue
				}
				start := vs[j].arrive
				end := math.Min(vs[i].depart, vs[j].depart)
				if end-start > g.MaxContact {
					end = start + g.MaxContact
				}
				rs, re := math.Round(start), math.Round(end)
				if re <= rs {
					continue
				}
				c := contact.Contact{
					A: vs[i].node, B: vs[j].node,
					Start: sim.Time(rs), End: sim.Time(re),
				}.Normalize()
				s.Contacts = append(s.Contacts, c)
			}
		}
	}
	s.Sort()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: RWP schedule invalid: %w", err)
	}
	return s, nil
}

func dist(a, b point) float64 {
	return math.Hypot(a.x-b.x, a.y-b.y)
}
