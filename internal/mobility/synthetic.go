package mobility

import (
	"fmt"
	"math"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// CambridgeSpan is the latest timestamp in the paper's trace file
// (§IV: "the maximum recorded time from the trace file is 524,162s").
const CambridgeSpan sim.Time = 524162

// CambridgeNodes is the device count in the paper's trace (§IV:
// "In total, there are 12 devices").
const CambridgeNodes = 12

// SyntheticCambridge generates an encounter trace statistically matching
// the Cambridge/Haggle iMote trace used by the paper: a small student
// population carrying short-range devices for five days, meeting
// irregularly with heavy-tailed inter-contact gaps and highly variable
// contact durations, more active by day than by night.
//
// Each unordered node pair is an independent renewal process:
//
//	gap      ~ boundedPareto(Alpha, MinGap, MaxGap) × diurnal(t)
//	duration ~ logNormal(ln(MedianDur), DurSigma), clamped to
//	           [MinDur, MaxDur]
//
// All fields have sensible defaults (zero value works after Defaults);
// the generator is deterministic for a given Seed.
type SyntheticCambridge struct {
	Nodes      int
	Span       sim.Time
	Seed       uint64
	Alpha      float64 // Pareto shape for inter-contact gaps
	MinGap     float64 // seconds
	MaxGap     float64 // seconds
	MedianDur  float64 // seconds, median contact duration
	DurSigma   float64 // log-normal sigma of durations
	MinDur     float64 // seconds
	MaxDur     float64 // seconds
	NightQuiet float64 // gap multiplier during 00:00–08:00
	// PairActivity skews how social each pair is: pair rates are scaled
	// by a factor drawn uniformly from [1-PairActivity, 1+PairActivity].
	// Real sighting traces are strongly heterogeneous across pairs.
	PairActivity float64
}

// Defaults fills unset (zero) fields with the calibrated values from
// DESIGN.md §3.1. Returns the receiver for chaining.
func (g SyntheticCambridge) Defaults() SyntheticCambridge {
	if g.Nodes == 0 {
		g.Nodes = CambridgeNodes
	}
	if g.Span == 0 {
		g.Span = CambridgeSpan
	}
	if g.Alpha == 0 {
		g.Alpha = 1.3
	}
	if g.MinGap == 0 {
		g.MinGap = 15000
	}
	if g.MaxGap == 0 {
		g.MaxGap = 130000
	}
	if g.MedianDur == 0 {
		g.MedianDur = 250
	}
	if g.DurSigma == 0 {
		g.DurSigma = 0.8
	}
	if g.MinDur == 0 {
		g.MinDur = 60
	}
	if g.MaxDur == 0 {
		g.MaxDur = 2500
	}
	if g.NightQuiet == 0 {
		g.NightQuiet = 3.0
	}
	if g.PairActivity == 0 {
		g.PairActivity = 0.9
	}
	return g
}

const daySeconds = 86400

// diurnalFactor stretches gaps that start at night: students meet far
// less between midnight and 08:00.
func (g SyntheticCambridge) diurnalFactor(t float64) float64 {
	tod := math.Mod(t, daySeconds)
	if tod < 8*3600 {
		return g.NightQuiet
	}
	return 1.0
}

// Generate produces the synthetic trace. With few nodes or a short
// span, a draw can place every pair's first encounter beyond the span;
// an empty schedule is unusable (contact.Validate rejects it), so
// Generate deterministically retries with a derived stream until some
// pair meets. The first attempt matches the historical output bit for
// bit, so existing seeds reproduce their traces.
func (g SyntheticCambridge) Generate() (*contact.Schedule, error) {
	g = g.Defaults()
	if g.Nodes < 2 {
		return nil, fmt.Errorf("mobility: SyntheticCambridge needs >=2 nodes, got %d", g.Nodes)
	}
	if g.Span <= 0 {
		return nil, fmt.Errorf("mobility: SyntheticCambridge needs positive span, got %v", g.Span)
	}
	const maxAttempts = 16
	for attempt := 0; attempt < maxAttempts; attempt++ {
		s := g.generateOnce(sim.NewRNG(g.Seed + uint64(attempt)*0x9e3779b97f4a7c15))
		if len(s.Contacts) == 0 {
			continue
		}
		s.Sort()
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("mobility: synthetic trace invalid: %w", err)
		}
		return s, nil
	}
	return nil, fmt.Errorf("mobility: no contacts within span %v after %d attempts; increase Span or Nodes",
		g.Span, maxAttempts)
}

// generateOnce runs every pair's renewal process from one root stream.
func (g SyntheticCambridge) generateOnce(root *sim.RNG) *contact.Schedule {
	s := &contact.Schedule{Nodes: g.Nodes}
	for i := 0; i < g.Nodes; i++ {
		for j := i + 1; j < g.Nodes; j++ {
			// A dedicated stream per pair keeps the trace stable when
			// the node count changes.
			rng := root.Derive(uint64(i)<<32 | uint64(j))
			activity := rng.Uniform(1-g.PairActivity, 1+g.PairActivity)
			// Start each pair at a random phase so contacts do not
			// synchronize at t=0.
			t := rng.Uniform(0, g.MaxGap/4)
			for {
				gap := rng.Pareto(g.Alpha, g.MinGap, g.MaxGap) * g.diurnalFactor(t) / activity
				t += gap
				if sim.Time(t) >= g.Span {
					break
				}
				dur := rng.LogNormal(math.Log(g.MedianDur), g.DurSigma)
				if dur < g.MinDur {
					dur = g.MinDur
				}
				if dur > g.MaxDur {
					dur = g.MaxDur
				}
				end := t + dur
				if sim.Time(end) > g.Span {
					end = float64(g.Span)
				}
				if rs, re := math.Round(t), math.Round(end); re > rs {
					s.Contacts = append(s.Contacts, contact.Contact{
						A: contact.NodeID(i), B: contact.NodeID(j),
						Start: sim.Time(rs), End: sim.Time(re),
					})
				}
				t = end
			}
		}
	}
	return s
}
