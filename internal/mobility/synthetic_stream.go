package mobility

import (
	"container/heap"
	"fmt"
	"math"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// Stream returns a pull-based source of the same contact stream
// Generate materializes, bit for bit: every unordered pair is an
// independent renewal process drawn lazily from its own RNG stream, and
// a k-way merge heap releases the per-pair streams in canonical order.
// Working memory is O(pairs) — each pair holds one RNG and one pending
// contact — independent of the contact count, which grows with Span.
//
// The same empty-draw retry as Generate applies: emptiness is decidable
// at construction because every pair's first contact is pulled to prime
// the merge heap.
func (g SyntheticCambridge) Stream() (contact.Source, error) {
	g = g.Defaults()
	if g.Nodes < 2 {
		return nil, fmt.Errorf("mobility: SyntheticCambridge needs >=2 nodes, got %d", g.Nodes)
	}
	if g.Span <= 0 {
		return nil, fmt.Errorf("mobility: SyntheticCambridge needs positive span, got %v", g.Span)
	}
	const maxAttempts = 16
	for attempt := 0; attempt < maxAttempts; attempt++ {
		src := g.newStream(sim.NewRNG(g.Seed + uint64(attempt)*0x9e3779b97f4a7c15))
		if src.merge.Len() > 0 {
			return src, nil
		}
	}
	return nil, fmt.Errorf("mobility: no contacts within span %v after %d attempts; increase Span or Nodes",
		g.Span, maxAttempts)
}

// pairRenewal is one unordered pair's lazy renewal process. Its draw
// sequence is exactly generateOnce's inner loop, so a drained pair
// stream equals the pair's slice of the materialized schedule.
type pairRenewal struct {
	a, b     contact.NodeID
	rng      *sim.RNG
	activity float64
	t        float64
	done     bool
}

// next advances the renewal process to its next non-degenerate contact.
func (p *pairRenewal) next(g SyntheticCambridge) (contact.Contact, bool) {
	for !p.done {
		gap := p.rng.Pareto(g.Alpha, g.MinGap, g.MaxGap) * g.diurnalFactor(p.t) / p.activity
		p.t += gap
		if sim.Time(p.t) >= g.Span {
			p.done = true
			return contact.Contact{}, false
		}
		dur := p.rng.LogNormal(math.Log(g.MedianDur), g.DurSigma)
		if dur < g.MinDur {
			dur = g.MinDur
		}
		if dur > g.MaxDur {
			dur = g.MaxDur
		}
		end := p.t + dur
		if sim.Time(end) > g.Span {
			end = float64(g.Span)
		}
		rs, re := math.Round(p.t), math.Round(end)
		p.t = end
		if re > rs {
			return contact.Contact{A: p.a, B: p.b, Start: sim.Time(rs), End: sim.Time(re)}, true
		}
	}
	return contact.Contact{}, false
}

// syntheticSource merges the per-pair renewal streams. Each pair's
// contacts strictly increase in start time, so holding one pending
// contact per pair in a heap ordered by contact.Less yields the global
// canonical order — the order Generate's sort produces.
type syntheticSource struct {
	g     SyntheticCambridge
	pairs []pairRenewal
	merge mergeHeap
}

// mergeEntry is one pair's pending contact in the merge heap.
type mergeEntry struct {
	c    contact.Contact
	pair int
}

type mergeHeap []mergeEntry

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return contact.Less(h[i].c, h[j].c) }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// newStream primes one attempt: pair RNGs are derived from the root in
// (i, j) order — the order generateOnce consumes the root stream — and
// each pair's first contact seeds the merge heap.
func (g SyntheticCambridge) newStream(root *sim.RNG) *syntheticSource {
	s := &syntheticSource{g: g, pairs: make([]pairRenewal, 0, g.Nodes*(g.Nodes-1)/2)}
	for i := 0; i < g.Nodes; i++ {
		for j := i + 1; j < g.Nodes; j++ {
			rng := root.Derive(uint64(i)<<32 | uint64(j))
			p := pairRenewal{
				a:        contact.NodeID(i),
				b:        contact.NodeID(j),
				rng:      rng,
				activity: rng.Uniform(1-g.PairActivity, 1+g.PairActivity),
			}
			p.t = rng.Uniform(0, g.MaxGap/4)
			s.pairs = append(s.pairs, p)
		}
	}
	for idx := range s.pairs {
		if c, ok := s.pairs[idx].next(g); ok {
			s.merge = append(s.merge, mergeEntry{c: c, pair: idx})
		}
	}
	heap.Init(&s.merge)
	return s
}

// Next pops the globally least pending contact and refills its pair.
func (s *syntheticSource) Next() (contact.Contact, bool) {
	if s.merge.Len() == 0 {
		return contact.Contact{}, false
	}
	out := s.merge[0]
	if c, ok := s.pairs[out.pair].next(s.g); ok {
		s.merge[0] = mergeEntry{c: c, pair: out.pair}
		heap.Fix(&s.merge, 0)
	} else {
		heap.Pop(&s.merge)
	}
	return out.c, true
}

func (s *syntheticSource) Nodes() int        { return s.g.Nodes }
func (s *syntheticSource) Horizon() sim.Time { return s.g.Span }
func (s *syntheticSource) Err() error        { return nil }
