package mobility

import (
	"fmt"
	"math"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// Stream returns a pull-based source of the same contact stream
// Generate materializes, bit for bit. Instead of building per-point
// visit lists for the whole span (O(#visits) memory) and sweeping them
// pairwise, the itineraries are simulated lazily in arrival order with
// a per-point occupancy index:
//
//   - each node keeps only its RNG and its next arrival; a min-heap
//     over nodes orders arrivals globally;
//   - each subscriber point holds the dwell window of the nodes
//     currently (or last) occupying it — at most one entry per node,
//     because a node replaces its previous entry on every arrival — so
//     an arrival is checked only against the O(co-located) occupants of
//     its own point, never against the other n−1 nodes;
//   - contacts form at the later arrival time, which is nondecreasing,
//     so a contact.Lookahead heap bounded by the next global arrival
//     restores the canonical order across equal rounded starts.
//
// Working memory is O(nodes + points), independent of Span.
func (g SubscriberPointRWP) Stream() (contact.Source, error) {
	g = g.Defaults()
	if err := g.check(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(g.Seed)
	placeRNG := root.Derive(0xA11)
	s := &subscriberSource{
		g:         g,
		pts:       make([]point, g.Points),
		nodes:     make([]subNode, g.Nodes),
		occupants: make([]map[contact.NodeID]dwell, g.Points),
	}
	for i := range s.pts {
		s.pts[i] = point{placeRNG.Uniform(0, g.AreaSide), placeRNG.Uniform(0, g.AreaSide)}
	}
	for n := range s.nodes {
		rng := root.Derive(0xB00 + uint64(n))
		nd := &s.nodes[n]
		nd.rng = rng
		nd.prev = -1
		nd.cur = rng.IntN(g.Points)
		nd.arrive = rng.Uniform(0, g.MaxPause) // staggered starts
		if sim.Time(nd.arrive) < g.Span {
			s.arrivals.push(arrival{at: nd.arrive, node: contact.NodeID(n)})
		}
	}
	return s, nil
}

// check validates the generator parameters shared by Generate and
// Stream.
func (g SubscriberPointRWP) check() error {
	if g.Nodes < 2 {
		return fmt.Errorf("mobility: RWP needs >=2 nodes, got %d", g.Nodes)
	}
	if g.Points < 2 {
		return fmt.Errorf("mobility: RWP needs >=2 subscriber points, got %d", g.Points)
	}
	if km2 := (g.AreaSide / 1000) * (g.AreaSide / 1000); float64(g.Points) > 100*km2 {
		return fmt.Errorf("mobility: paper bounds subscriber points at 100/km²: %d points in %.2f km²", g.Points, km2)
	}
	return nil
}

// dwell is one node's stay at a point.
type dwell struct{ arrive, depart float64 }

// subNode is one node's lazy itinerary state.
type subNode struct {
	rng    *sim.RNG
	cur    int // point being travelled to (or dwelt at)
	prev   int // point holding the node's occupancy entry, -1 if none
	arrive float64
}

// arrival orders the global node heap by next arrival time, node ID
// breaking ties deterministically (equal-time arrivals produce the same
// contacts in either processing order; the tie-break only pins the heap).
type arrival struct {
	at   float64
	node contact.NodeID
}

func (a arrival) before(b arrival) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.node < b.node
}

// arrivalHeap is a hand-rolled min-heap: the push/pop hot path runs
// once per visit and must not box through container/heap's interface.
type arrivalHeap []arrival

func (h *arrivalHeap) push(a arrival) {
	*h = append(*h, a)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *arrivalHeap) pop() arrival {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = *h
	i := 0
	for {
		kid := 2*i + 1
		if kid >= last {
			break
		}
		if kid+1 < last && s[kid+1].before(s[kid]) {
			kid++
		}
		if !s[kid].before(s[i]) {
			break
		}
		s[i], s[kid] = s[kid], s[i]
		i = kid
	}
	return top
}

type subscriberSource struct {
	g         SubscriberPointRWP
	pts       []point
	nodes     []subNode
	occupants []map[contact.NodeID]dwell
	arrivals  arrivalHeap
	ahead     contact.Lookahead
}

// processArrival plays one node's arrival: contacts with every live
// occupant of the point, occupancy update, and the node's next hop.
//
//dtn:hotpath
func (s *subscriberSource) processArrival(a arrival) {
	g := s.g
	nd := &s.nodes[a.node]
	t := nd.arrive
	pause := nd.rng.Uniform(g.MinPause, g.MaxPause)
	depart := t + pause
	if sim.Time(depart) > g.Span {
		depart = float64(g.Span)
	}
	p := nd.cur
	if s.occupants[p] == nil {
		//lint:allow hotpathalloc lazy per-point init, amortized to once per subscriber point
		s.occupants[p] = make(map[contact.NodeID]dwell)
	}
	// Drop this node's previous occupancy entry before scanning, so a
	// revisit never pairs a node with itself and every node holds at
	// most one entry across all points.
	if nd.prev >= 0 {
		delete(s.occupants[nd.prev], a.node)
	}
	// Order-insensitive despite the map range: each occupant yields an
	// independent contact (no cross-iteration state), expired-dwell
	// deletion commutes, and emission order is erased by the
	// Lookahead's canonical total order (stream goldens pin this).
	//lint:allow maporder per-occupant contacts reordered by total-order Lookahead
	for m, w := range s.occupants[p] {
		if w.depart <= t {
			delete(s.occupants[p], m) // dwell over before this arrival
			continue
		}
		start := t
		end := math.Min(w.depart, depart)
		if end-start > g.MaxContact {
			end = start + g.MaxContact
		}
		rs, re := math.Round(start), math.Round(end)
		if re > rs {
			s.ahead.Add(contact.Contact{
				A: a.node, B: m, Start: sim.Time(rs), End: sim.Time(re),
			}.Normalize())
		}
	}
	s.occupants[p][a.node] = dwell{arrive: t, depart: depart}
	nd.prev = p
	if sim.Time(depart) >= g.Span {
		return // itinerary over, matching Generate's loop exit
	}
	// Choose a different next point and travel there.
	next := nd.rng.IntN(g.Points - 1)
	if next >= p {
		next++
	}
	d := dist(s.pts[p], s.pts[next])
	speed := nd.rng.Uniform(g.MinSpeed, g.MaxSpeed)
	nd.arrive = depart + d/speed
	nd.cur = next
	if sim.Time(nd.arrive) < g.Span {
		s.arrivals.push(arrival{at: nd.arrive, node: a.node})
	}
}

// Next plays arrivals until a contact can be released in canonical
// order: every future contact starts at (the rounding of) an arrival
// time no earlier than the heap head, which bounds the lookahead.
func (s *subscriberSource) Next() (contact.Contact, bool) {
	for {
		bound := sim.Infinity
		if len(s.arrivals) > 0 {
			bound = sim.Time(math.Round(s.arrivals[0].at))
		}
		if c, ok := s.ahead.Pop(bound); ok {
			return c, true
		}
		if len(s.arrivals) == 0 {
			return contact.Contact{}, false
		}
		s.processArrival(s.arrivals.pop())
	}
}

func (s *subscriberSource) Nodes() int        { return s.g.Nodes }
func (s *subscriberSource) Horizon() sim.Time { return s.g.Span }
func (s *subscriberSource) Err() error        { return nil }
