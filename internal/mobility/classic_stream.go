package mobility

import (
	"fmt"
	"math"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// Stream returns a pull-based source producing exactly Generate's
// contact stream while holding only O(nodes) state:
//
//   - waypoint paths are generated lazily — each node keeps its RNG and
//     its current leg, drawing the next leg on demand instead of
//     materializing the whole itinerary;
//   - range detection uses a grid occupancy index with cell side Range:
//     per sample step each node is checked only against nodes in its
//     own and neighbouring cells (any pair within Range must share a
//     3×3 neighbourhood), so a step costs O(nodes + nearby pairs)
//     instead of the materialized path's O(nodes²) full pairwise scan;
//   - contacts are only known when they *close*, which is out of start
//     order, so closes go through a contact.Lookahead heap bounded by
//     the earliest still-open contact — the heap holds the reordering
//     window, not the schedule.
func (g ClassicRWP) Stream() (contact.Source, error) {
	g = g.Defaults()
	if g.Nodes < 2 {
		return nil, fmt.Errorf("mobility: ClassicRWP needs >=2 nodes, got %d", g.Nodes)
	}
	if g.MinSpeed <= 0 {
		return nil, fmt.Errorf("mobility: ClassicRWP MinSpeed must be > 0 (speed-decay pathology), got %v", g.MinSpeed)
	}
	root := sim.NewRNG(g.Seed)
	s := &classicSource{
		g:     g,
		walks: make([]classicWalk, g.Nodes),
		pos:   make([]point, g.Nodes),
		open:  make(map[contact.PairKey]*classicOpen),
		grid:  make(map[gridCell][]int),
		steps: int(float64(g.Span)/g.SampleDT) + 1,
	}
	for n := range s.walks {
		rng := root.Derive(0xC00 + uint64(n))
		w := &s.walks[n]
		w.rng = rng
		w.genPos = point{rng.Uniform(0, g.AreaSide), rng.Uniform(0, g.AreaSide)}
		w.cur = leg{a: w.genPos, b: w.genPos} // zero-length pause until the first draw
		s.advanceWalk(w, 0)
	}
	return s, nil
}

// classicWalk is one node's lazy waypoint path: the current leg plus
// the generation clock for drawing the next one.
type classicWalk struct {
	rng     *sim.RNG
	cur     leg
	pending leg // the pause leg paired with a freshly drawn travel leg
	hasPend bool
	genT    float64 // time at which the next leg pair starts
	genPos  point
	done    bool // generation loop ended (genT reached the span)
}

// classicOpen is an in-range pair's open contact window.
type classicOpen struct {
	start float64
	seen  int // last sample step this pair tested in range
}

type gridCell struct{ x, y int }

// classicSource runs the sampled-position simulation step by step,
// emitting closed contacts through a lookahead heap.
type classicSource struct {
	g     ClassicRWP
	walks []classicWalk
	pos   []point
	open  map[contact.PairKey]*classicOpen
	grid  map[gridCell][]int
	cells []gridCell // cells occupied this step, for O(occupied) reset
	free  [][]int    // recycled node slices for vacated cells
	ahead contact.Lookahead
	step  int
	steps int
	done  bool
	bound sim.Time // release bound for the lookahead heap
}

// advanceWalk moves a node's current leg forward until it covers time t,
// drawing new legs on demand with exactly Generate's draw sequence
// (destination, speed, pause — two legs per draw).
//
//dtn:hotpath
func (s *classicSource) advanceWalk(w *classicWalk, t float64) {
	for w.cur.t1 < t {
		if w.hasPend {
			w.cur, w.hasPend = w.pending, false
			continue
		}
		if w.done || sim.Time(w.genT) >= s.g.Span {
			w.done = true
			return // clamp to the final pause leg, as posAt's hint walk does
		}
		dst := point{w.rng.Uniform(0, s.g.AreaSide), w.rng.Uniform(0, s.g.AreaSide)}
		speed := w.rng.Uniform(s.g.MinSpeed, s.g.MaxSpeed)
		arrive := w.genT + dist(w.genPos, dst)/speed
		pause := w.rng.Uniform(0, s.g.MaxPause)
		w.cur = leg{t0: w.genT, t1: arrive, a: w.genPos, b: dst}
		w.pending = leg{t0: arrive, t1: arrive + pause, a: dst, b: dst}
		w.hasPend = true
		w.genPos = dst
		w.genT = arrive + pause
	}
}

// runStep samples every node's position at the step time, updates the
// occupancy grid and the open-pair set, and queues closed contacts.
// It returns the time the step sampled.
//
//dtn:hotpath
func (s *classicSource) runStep() float64 {
	g := s.g
	t := float64(s.step) * g.SampleDT
	if sim.Time(t) > g.Span {
		t = float64(g.Span)
	}
	for n := range s.walks {
		w := &s.walks[n]
		s.advanceWalk(w, t)
		s.pos[n] = w.cur.at(t)
	}
	// Rebuild the occupancy index. Cell side = Range, so every in-range
	// pair shares a 3×3 cell neighbourhood. Vacated cells are deleted —
	// not truncated — so the map tracks the cells occupied *this* step
	// (≤ nodes of them), not every cell ever visited; the node slices
	// are recycled through a free list to keep the rebuild light.
	for _, c := range s.cells {
		s.free = append(s.free, s.grid[c][:0])
		delete(s.grid, c)
	}
	s.cells = s.cells[:0]
	for n, p := range s.pos {
		c := gridCell{int(math.Floor(p.x / g.Range)), int(math.Floor(p.y / g.Range))}
		cell, ok := s.grid[c]
		if !ok {
			s.cells = append(s.cells, c)
			if k := len(s.free); k > 0 {
				cell = s.free[k-1]
				s.free = s.free[:k-1]
			}
		}
		s.grid[c] = append(cell, n)
	}
	r2 := g.Range * g.Range
	for _, c := range s.cells {
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				nb := gridCell{c.x + dx, c.y + dy}
				for _, i := range s.grid[c] {
					for _, j := range s.grid[nb] {
						if j <= i {
							continue
						}
						ddx := s.pos[i].x - s.pos[j].x
						ddy := s.pos[i].y - s.pos[j].y
						if ddx*ddx+ddy*ddy > r2 {
							continue
						}
						key := contact.MakePairKey(contact.NodeID(i), contact.NodeID(j))
						st := s.open[key]
						if st == nil {
							s.open[key] = &classicOpen{start: t, seen: s.step}
						} else {
							st.seen = s.step
						}
					}
				}
			}
		}
	}
	// Pairs not re-confirmed this step have moved out of range: close
	// them. The remaining opens set the lookahead release bound — no
	// future close can start before the earliest open window.
	minOpen := math.Inf(1)
	// Order-insensitive despite the map range: float min commutes, and
	// every closed contact drains through the Lookahead, whose
	// canonical total order (contact.Less) erases insertion order
	// before the engine sees it (stream goldens pin this).
	//lint:allow maporder min commutes; closes reordered by total-order Lookahead
	for key, st := range s.open {
		if st.seen == s.step {
			if st.start < minOpen {
				minOpen = st.start
			}
			continue
		}
		delete(s.open, key)
		if t > st.start {
			s.ahead.Add(contact.Contact{A: key.A, B: key.B, Start: sim.Time(st.start), End: sim.Time(t)})
		}
	}
	next := t + g.SampleDT
	if next > minOpen {
		next = minOpen
	}
	s.bound = sim.Time(next)
	return t
}

// finish closes every contact still open at the span.
func (s *classicSource) finish() {
	// Same argument as step's close loop: emission order is erased by
	// the Lookahead's canonical total order, deletion commutes.
	//lint:allow maporder closes reordered by total-order Lookahead
	for key, st := range s.open {
		if float64(s.g.Span) > st.start {
			s.ahead.Add(contact.Contact{A: key.A, B: key.B, Start: sim.Time(st.start), End: s.g.Span})
		}
		delete(s.open, key)
	}
	s.bound = sim.Infinity
	s.done = true
}

// Next advances the sampled simulation until a contact is releasable.
func (s *classicSource) Next() (contact.Contact, bool) {
	for {
		if c, ok := s.ahead.Pop(s.bound); ok {
			return c, true
		}
		if s.done {
			return contact.Contact{}, false
		}
		if s.step > s.steps {
			s.finish()
			continue
		}
		t := s.runStep()
		s.step++
		if sim.Time(t) >= s.g.Span {
			s.finish()
		}
	}
}

func (s *classicSource) Nodes() int        { return s.g.Nodes }
func (s *classicSource) Horizon() sim.Time { return s.g.Span }
func (s *classicSource) Err() error        { return nil }
