package mobility

import (
	"dtnsim/internal/contact"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMobilitySpecsRoundTrip(t *testing.T) {
	specs := append(BuiltinSpecs(),
		"cambridge:seed=42", "cambridge:nodes=8,seed=7", "cambridge:span=100000",
		"subscriber:nodes=20", "subscriber:seed=3,points=50,area=2000",
		"rwp:nodes=40", "rwp:area=500,range=50", "rwp:nodes=24,dt=5",
		"interval:max=2000", "interval:max=400,min=100,nodes=10,encounters=5",
		"trace:/tmp/contacts.txt", "trace:odd:path,with=chars",
	)
	for _, s := range specs {
		src, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		again, err := Parse(src.Spec)
		if err != nil {
			t.Fatalf("Parse(canonical %q of %q): %v", src.Spec, s, err)
		}
		if again.Spec != src.Spec {
			t.Errorf("%q: canonical %q re-parses to %q", s, src.Spec, again.Spec)
		}
		if again.Kind != src.Kind || again.PerRun != src.PerRun {
			t.Errorf("%q: canonical re-parse changed Kind/PerRun", s)
		}
	}
}

// TestGeneratorsMatchDirectConstruction: spec-built schedules must be
// identical to the ones built by the generator structs.
func TestGeneratorsMatchDirectConstruction(t *testing.T) {
	cases := []struct {
		spec   string
		direct func(seed uint64) (*contact.Schedule, error)
	}{
		{"cambridge", func(s uint64) (*contact.Schedule, error) { return SyntheticCambridge{Seed: s}.Generate() }},
		{"subscriber", func(s uint64) (*contact.Schedule, error) { return SubscriberPointRWP{Seed: s}.Generate() }},
		{"rwp", func(s uint64) (*contact.Schedule, error) { return ClassicRWP{Seed: s}.Generate() }},
		{"interval:max=400", func(s uint64) (*contact.Schedule, error) {
			return ControlledInterval{Seed: s, MaxInterval: 400}.Generate()
		}},
	}
	for _, c := range cases {
		src, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		got, err := src.Generate(11)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		want, err := c.direct(11)
		if err != nil {
			t.Fatal(err)
		}
		if got.Nodes != want.Nodes || len(got.Contacts) != len(want.Contacts) {
			t.Errorf("%q: spec-built schedule differs from direct construction", c.spec)
			continue
		}
		for i := range got.Contacts {
			if got.Contacts[i] != want.Contacts[i] {
				t.Errorf("%q: contact %d differs", c.spec, i)
				break
			}
		}
	}
}

func TestPinnedSeedFixesSchedule(t *testing.T) {
	src, err := Parse("subscriber:seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if src.PerRun {
		t.Error("seed-pinned generator should not be per-run")
	}
	a, err := src.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := src.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatal("pinned seed still varies with the run seed")
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatal("pinned seed still varies with the run seed")
		}
	}
}

func TestTraceSpecReadsFile(t *testing.T) {
	want, err := SyntheticCambridge{Seed: 5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "contacts.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(f, want); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := Parse("trace:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if src.PerRun {
		t.Error("a trace file must be shared across runs")
	}
	got, err := src.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Contacts) != len(want.Contacts) {
		t.Errorf("trace round trip: %d contacts, want %d", len(got.Contacts), len(want.Contacts))
	}

	missing, err := Parse("trace:" + filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatalf("parse must not touch the filesystem: %v", err)
	}
	if _, err := missing.Generate(0); err == nil {
		t.Error("missing trace file accepted at Generate")
	}
}

func TestParseErrorsWrapErrSpec(t *testing.T) {
	bad := []string{
		"",
		"bogus",
		"cambridge:nodes=-1",
		"cambridge:nodes=two",
		"cambridge:seed=-1",
		"cambridge:zap=1",
		"subscriber:area=nan",
		"rwp:range=inf",
		"interval:max=-5",
		"interval:max=1,max=2",
		"trace:",
		"cambridge:,",
	}
	for _, s := range bad {
		if _, err := Parse(s); !errors.Is(err, ErrSpec) {
			t.Errorf("Parse(%q): err = %v, want ErrSpec", s, err)
		}
	}
}

func TestSpecsListsEveryBuiltin(t *testing.T) {
	names := map[string]bool{}
	for _, in := range Default.Specs() {
		names[in.Name] = true
		if in.Usage == "" {
			t.Errorf("%s: empty usage", in.Name)
		}
	}
	for _, s := range append(BuiltinSpecs(), "trace:x") {
		name := s
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[:i]
		}
		if !names[name] {
			t.Errorf("builtin spec %q has no registry entry", s)
		}
	}
}

// FuzzParse: Parse must never panic and never touch the filesystem,
// and every accepted spec must canonicalize to a fixed point.
func FuzzParse(f *testing.F) {
	for _, s := range BuiltinSpecs() {
		f.Add(s)
	}
	f.Add("trace:/some/path")
	f.Add("cambridge:seed=18446744073709551615")
	f.Add("interval:max=1e308")
	f.Add("subscriber:nodes=0,points=0")
	f.Add(":::")
	f.Fuzz(func(t *testing.T, s string) {
		src, err := Parse(s)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("Parse(%q): non-ErrSpec error %v", s, err)
			}
			return
		}
		again, err := Parse(src.Spec)
		if err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", src.Spec, s, err)
		}
		if again.Spec != src.Spec {
			t.Fatalf("canonical of %q is not a fixed point: %q → %q", s, src.Spec, again.Spec)
		}
	})
}
