package mobility

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// OpenTraceSource streams an encounter-trace file as a contact.Source
// in O(1) memory. It makes two passes over the file: a pre-scan that
// validates every record and learns what a materialized parse would
// have known up front — the node count (max ID + 1, raised by a
// "# nodes: N" header), the exact horizon (latest contact end), and
// whether the records are already in start order — then a streaming
// pass that re-parses records lazily as the engine pulls them.
//
// Trace files whose records are out of start order (WriteTrace always
// writes sorted ones) cannot be streamed; they fall back to a fully
// parsed, sorted schedule behind the same Source interface, trading
// memory for compatibility.
//
// The returned source owns the open file; it closes it on exhaustion
// or error, and also implements io.Closer for callers (the engine)
// that abandon a stream early.
func OpenTraceSource(path string) (contact.Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mobility: trace source: %w", err)
	}
	pre, err := preScanTrace(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if !pre.sorted {
		// Out-of-order records: materialize once, stream the sorted slice.
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("mobility: trace source: %w", err)
		}
		defer f.Close()
		s, err := ParseTrace(f)
		if err != nil {
			return nil, err
		}
		return s.Stream(), nil
	}
	f, err = os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mobility: trace source: %w", err)
	}
	return &traceSource{f: f, sc: newTraceScanner(f), pre: pre}, nil
}

// traceStats is what the pre-scan learns about a trace file.
type traceStats struct {
	nodes   int
	horizon sim.Time
	sorted  bool
}

// preScanTrace validates every record and accumulates the stats in one
// sequential O(1)-memory read.
func preScanTrace(f *os.File) (traceStats, error) {
	st := traceStats{sorted: true}
	sc := newTraceScanner(f)
	line, records := 0, 0
	maxID := contact.NodeID(-1)
	declared := 0
	var prevStart sim.Time
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if n, ok := parseNodesHeader(text); ok {
				declared = n
			}
			continue
		}
		c, err := parseTraceLine(text, line)
		if err != nil {
			return st, err
		}
		records++
		if c.Start < prevStart {
			st.sorted = false
		}
		prevStart = c.Start
		if c.B > maxID {
			maxID = c.B
		}
		if c.End > st.horizon {
			st.horizon = c.End
		}
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("mobility: reading trace: %w", err)
	}
	if records == 0 {
		return st, fmt.Errorf("mobility: trace source: %w", contact.ErrEmptySchedule)
	}
	st.nodes = int(maxID) + 1
	if declared > st.nodes {
		st.nodes = declared
	}
	if st.nodes < 2 {
		return st, fmt.Errorf("mobility: trace source: schedule needs >=2 nodes, has %d", st.nodes)
	}
	return st, nil
}

func newTraceScanner(f *os.File) *bufio.Scanner {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	return sc
}

// traceSource is the line-by-line streaming pass.
type traceSource struct {
	f    *os.File
	sc   *bufio.Scanner
	pre  traceStats
	line int
	err  error
	done bool
}

func (t *traceSource) Next() (contact.Contact, bool) {
	if t.done {
		return contact.Contact{}, false
	}
	for t.sc.Scan() {
		t.line++
		text := strings.TrimSpace(t.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		c, err := parseTraceLine(text, t.line)
		if err != nil {
			// The pre-scan accepted this file; a parse failure now means
			// it changed underneath us.
			t.fail(fmt.Errorf("%v (file changed since pre-scan?)", err))
			return contact.Contact{}, false
		}
		return c, true
	}
	if err := t.sc.Err(); err != nil {
		t.fail(fmt.Errorf("mobility: reading trace: %w", err))
		return contact.Contact{}, false
	}
	t.close()
	return contact.Contact{}, false
}

func (t *traceSource) fail(err error) {
	t.err = err
	t.close()
}

func (t *traceSource) close() {
	if !t.done {
		t.done = true
		t.f.Close()
	}
}

// Close releases the underlying file; safe to call more than once.
func (t *traceSource) Close() error {
	t.close()
	return nil
}

func (t *traceSource) Nodes() int        { return t.pre.nodes }
func (t *traceSource) Horizon() sim.Time { return t.pre.horizon }
func (t *traceSource) Err() error        { return t.err }
