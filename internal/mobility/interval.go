package mobility

import (
	"fmt"
	"math"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// ControlledInterval generates the Fig. 14 scenarios: a population where
// every node has a bounded number of encounters and the gap between a
// node's successive encounters never exceeds MaxInterval. The paper runs
// it with 20 nodes, at most 20 encounters per node, and MaxInterval of
// 400 s versus 2000 s to show constant-TTL's sensitivity to encounter
// intervals: with TTL=300 s most 100–400 s gaps can be bridged by a
// relayed copy before it expires, while 100–2000 s gaps mostly cannot.
//
// Encounters happen in rounds: each round the population is randomly
// paired off; a pair's meeting starts Uniform(MinInterval, MaxInterval)
// seconds after the later partner's previous meeting started (the
// paper bounds the interval between successive encounters, a
// start-to-start measure), anchored at the previous meeting's *end*
// whenever that drawn start would fall inside it — a node is never in
// two meetings at once (ValidateDisjoint enforces this). An earlier
// revision skipped the end anchor, so a long meeting could overlap the
// next one drawn from a short interval. The meeting lasts
// Uniform(MinDur, MaxDur) seconds; every node gets exactly Encounters
// meetings (one per round when the population is even).
type ControlledInterval struct {
	Nodes       int
	Encounters  int     // encounters per node
	MinInterval float64 // seconds
	MaxInterval float64 // seconds
	MinDur      float64 // seconds
	MaxDur      float64 // seconds
	Seed        uint64
}

// Defaults fills unset fields with the Fig. 14 parameters (the 400 s
// scenario; set MaxInterval explicitly for the 2000 s one). Run this
// scenario with a faster link than the trace (experiment.IntervalScenario
// uses 25 s/bundle) so twenty encounters carry a workload-scale number
// of bundles while contacts stay short relative to the TTL, as the
// paper's delivery ratios imply.
func (g ControlledInterval) Defaults() ControlledInterval {
	if g.Nodes == 0 {
		g.Nodes = 20
	}
	if g.Encounters == 0 {
		g.Encounters = 20
	}
	if g.MinInterval == 0 {
		g.MinInterval = 100
	}
	if g.MaxInterval == 0 {
		g.MaxInterval = 400
	}
	if g.MinDur == 0 {
		g.MinDur = 100
	}
	if g.MaxDur == 0 {
		g.MaxDur = 300
	}
	return g
}

// check validates the generator parameters shared by Generate and
// Stream.
func (g ControlledInterval) check() error {
	if g.Nodes < 2 {
		return fmt.Errorf("mobility: ControlledInterval needs >=2 nodes, got %d", g.Nodes)
	}
	if g.MaxInterval < g.MinInterval {
		return fmt.Errorf("mobility: MaxInterval %v < MinInterval %v", g.MaxInterval, g.MinInterval)
	}
	return nil
}

// intervalState tracks each node's previous meeting window: the start
// anchors the paper's start-to-start interval draw, the end is the
// floor below which the next meeting may not begin.
type intervalState struct{ start, end []float64 }

func newIntervalState(nodes int) *intervalState {
	return &intervalState{start: make([]float64, nodes), end: make([]float64, nodes)}
}

// round draws one pairing round into emit. Factoring the draw loop
// keeps Generate, Stream, and Stream's horizon pre-pass on one RNG
// sequence by construction.
func (g ControlledInterval) round(rng *sim.RNG, st *intervalState, emit func(contact.Contact)) {
	perm := rng.Perm(g.Nodes)
	for k := 0; k+1 < len(perm); k += 2 {
		a := contact.NodeID(perm[k])
		b := contact.NodeID(perm[k+1])
		start := math.Max(st.start[a], st.start[b]) + rng.Uniform(g.MinInterval, g.MaxInterval)
		// End anchor: a drawn interval shorter than the previous
		// meeting's duration would start this one inside it.
		start = math.Max(start, math.Max(st.end[a], st.end[b]))
		end := start + rng.Uniform(g.MinDur, g.MaxDur)
		rs, re := math.Round(start), math.Round(end)
		if re > rs {
			emit(contact.Contact{
				A: a, B: b, Start: sim.Time(rs), End: sim.Time(re),
			}.Normalize())
		}
		st.start[a], st.start[b] = start, start
		st.end[a], st.end[b] = end, end
	}
}

// Generate produces the controlled-interval schedule.
func (g ControlledInterval) Generate() (*contact.Schedule, error) {
	g = g.Defaults()
	if err := g.check(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(g.Seed)
	s := &contact.Schedule{Nodes: g.Nodes}
	st := newIntervalState(g.Nodes)
	for round := 0; round < g.Encounters; round++ {
		g.round(rng, st, func(c contact.Contact) { s.Contacts = append(s.Contacts, c) })
	}
	s.Sort()
	if err := s.ValidateDisjoint(); err != nil {
		return nil, fmt.Errorf("mobility: controlled-interval schedule invalid: %w", err)
	}
	return s, nil
}

// Stream returns a pull-based source of the same contact stream
// Generate materializes, bit for bit. Rounds are drawn lazily into a
// contact.Lookahead heap: a contact drawn in a later round can start
// before one drawn earlier (nodes' renewal chains progress at different
// rates), but never before min(last) + MinInterval, which bounds the
// release. The horizon — needed up front, and unknowable without
// playing the renewal chains out — comes from a contact-free pre-pass
// over the same draw sequence: O(nodes·encounters) time, O(nodes)
// memory, no contact storage.
func (g ControlledInterval) Stream() (contact.Source, error) {
	g = g.Defaults()
	if err := g.check(); err != nil {
		return nil, err
	}
	var horizon sim.Time
	pre := sim.NewRNG(g.Seed)
	st := newIntervalState(g.Nodes)
	for round := 0; round < g.Encounters; round++ {
		g.round(pre, st, func(c contact.Contact) {
			if c.End > horizon {
				horizon = c.End
			}
		})
	}
	return &intervalSource{
		g:       g,
		rng:     sim.NewRNG(g.Seed),
		st:      newIntervalState(g.Nodes),
		horizon: horizon,
	}, nil
}

type intervalSource struct {
	g       ControlledInterval
	rng     *sim.RNG
	st      *intervalState
	round   int
	horizon sim.Time
	ahead   contact.Lookahead
}

// bound returns a lower bound on the start of every contact in rounds
// not yet drawn: no node meets again before its previous meeting's
// start plus MinInterval, and the end anchor only pushes starts later
// (rounding is monotone, so rounding the bound keeps it below every
// future rounded start).
func (s *intervalSource) bound() sim.Time {
	if s.round >= s.g.Encounters {
		return sim.Infinity
	}
	minStart := math.Inf(1)
	for _, v := range s.st.start {
		if v < minStart {
			minStart = v
		}
	}
	return sim.Time(math.Round(minStart + s.g.MinInterval))
}

func (s *intervalSource) Next() (contact.Contact, bool) {
	for {
		if c, ok := s.ahead.Pop(s.bound()); ok {
			return c, true
		}
		if s.round >= s.g.Encounters {
			return contact.Contact{}, false
		}
		s.g.round(s.rng, s.st, s.ahead.Add)
		s.round++
	}
}

func (s *intervalSource) Nodes() int        { return s.g.Nodes }
func (s *intervalSource) Horizon() sim.Time { return s.horizon }
func (s *intervalSource) Err() error        { return nil }
