package mobility

import (
	"fmt"
	"math"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// ControlledInterval generates the Fig. 14 scenarios: a population where
// every node has a bounded number of encounters and the gap between a
// node's successive encounters never exceeds MaxInterval. The paper runs
// it with 20 nodes, at most 20 encounters per node, and MaxInterval of
// 400 s versus 2000 s to show constant-TTL's sensitivity to encounter
// intervals: with TTL=300 s most 100–400 s gaps can be bridged by a
// relayed copy before it expires, while 100–2000 s gaps mostly cannot.
//
// Encounters happen in rounds: each round the population is randomly
// paired off; a pair's meeting starts Uniform(MinInterval, MaxInterval)
// seconds after the later partner's previous meeting *started* (the
// paper bounds the interval between successive encounters, which is a
// start-to-start measure), and lasts Uniform(MinDur, MaxDur) seconds.
// Consecutive meetings of a node may therefore overlap slightly, which
// the engine permits — a node can exchange with two peers in one
// window. Every node gets exactly Encounters meetings (one per round
// when the population is even).
type ControlledInterval struct {
	Nodes       int
	Encounters  int     // encounters per node
	MinInterval float64 // seconds
	MaxInterval float64 // seconds
	MinDur      float64 // seconds
	MaxDur      float64 // seconds
	Seed        uint64
}

// Defaults fills unset fields with the Fig. 14 parameters (the 400 s
// scenario; set MaxInterval explicitly for the 2000 s one). Run this
// scenario with a faster link than the trace (experiment.IntervalScenario
// uses 25 s/bundle) so twenty encounters carry a workload-scale number
// of bundles while contacts stay short relative to the TTL, as the
// paper's delivery ratios imply.
func (g ControlledInterval) Defaults() ControlledInterval {
	if g.Nodes == 0 {
		g.Nodes = 20
	}
	if g.Encounters == 0 {
		g.Encounters = 20
	}
	if g.MinInterval == 0 {
		g.MinInterval = 100
	}
	if g.MaxInterval == 0 {
		g.MaxInterval = 400
	}
	if g.MinDur == 0 {
		g.MinDur = 100
	}
	if g.MaxDur == 0 {
		g.MaxDur = 300
	}
	return g
}

// Generate produces the controlled-interval schedule.
func (g ControlledInterval) Generate() (*contact.Schedule, error) {
	g = g.Defaults()
	if g.Nodes < 2 {
		return nil, fmt.Errorf("mobility: ControlledInterval needs >=2 nodes, got %d", g.Nodes)
	}
	if g.MaxInterval < g.MinInterval {
		return nil, fmt.Errorf("mobility: MaxInterval %v < MinInterval %v", g.MaxInterval, g.MinInterval)
	}
	rng := sim.NewRNG(g.Seed)
	s := &contact.Schedule{Nodes: g.Nodes}
	lastStart := make([]float64, g.Nodes)
	for round := 0; round < g.Encounters; round++ {
		perm := rng.Perm(g.Nodes)
		for k := 0; k+1 < len(perm); k += 2 {
			a := contact.NodeID(perm[k])
			b := contact.NodeID(perm[k+1])
			start := math.Max(lastStart[a], lastStart[b]) + rng.Uniform(g.MinInterval, g.MaxInterval)
			end := start + rng.Uniform(g.MinDur, g.MaxDur)
			rs, re := math.Round(start), math.Round(end)
			if re > rs {
				s.Contacts = append(s.Contacts, contact.Contact{
					A: a, B: b, Start: sim.Time(rs), End: sim.Time(re),
				}.Normalize())
			}
			lastStart[a] = start
			lastStart[b] = start
		}
	}
	s.Sort()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: controlled-interval schedule invalid: %w", err)
	}
	return s, nil
}
