package mobility

import (
	"fmt"
	"math"

	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// ClassicRWP is the textbook Random-WayPoint model [9][19]: nodes pick a
// uniform destination in the area, travel to it at a uniform speed, pause,
// and repeat. Contacts are detected by sampling positions every SampleDT
// seconds and thresholding pairwise distance against Range.
//
// The paper deliberately replaces this model with SubscriberPointRWP
// because of its known pathologies (speed decay when MinSpeed→0, border
// effects); it is included so the pathologies can be demonstrated and the
// protocols exercised under a second independent mobility source.
type ClassicRWP struct {
	Nodes    int
	AreaSide float64  // metres
	Span     sim.Time // seconds
	Seed     uint64
	MinSpeed float64 // m/s; keep > 0 to avoid RWP speed decay
	MaxSpeed float64 // m/s
	MaxPause float64 // seconds
	Range    float64 // metres, radio range
	SampleDT float64 // seconds between position samples
}

// Defaults fills unset fields with values matching the paper's scale
// (Table I: area ≤ 50 km², range ≤ 300 m).
func (g ClassicRWP) Defaults() ClassicRWP {
	if g.Nodes == 0 {
		g.Nodes = CambridgeNodes
	}
	if g.AreaSide == 0 {
		g.AreaSide = 2000
	}
	if g.Span == 0 {
		g.Span = RWPSpan
	}
	if g.MinSpeed == 0 {
		g.MinSpeed = 0.5
	}
	if g.MaxSpeed == 0 {
		g.MaxSpeed = 10
	}
	if g.MaxPause == 0 {
		g.MaxPause = 1000
	}
	if g.Range == 0 {
		g.Range = 100
	}
	if g.SampleDT == 0 {
		g.SampleDT = 10
	}
	return g
}

// leg is one straight-line movement (or pause) segment of a node's path.
type leg struct {
	t0, t1 float64 // time window
	a, b   point   // endpoints (a==b for a pause)
}

func (l leg) at(t float64) point {
	if l.t1 == l.t0 {
		return l.a
	}
	f := (t - l.t0) / (l.t1 - l.t0)
	return point{l.a.x + f*(l.b.x-l.a.x), l.a.y + f*(l.b.y-l.a.y)}
}

// Generate builds per-node waypoint paths and extracts range contacts.
func (g ClassicRWP) Generate() (*contact.Schedule, error) {
	g = g.Defaults()
	if g.Nodes < 2 {
		return nil, fmt.Errorf("mobility: ClassicRWP needs >=2 nodes, got %d", g.Nodes)
	}
	if g.MinSpeed <= 0 {
		return nil, fmt.Errorf("mobility: ClassicRWP MinSpeed must be > 0 (speed-decay pathology), got %v", g.MinSpeed)
	}
	root := sim.NewRNG(g.Seed)
	paths := make([][]leg, g.Nodes)
	for n := range paths {
		rng := root.Derive(0xC00 + uint64(n))
		pos := point{rng.Uniform(0, g.AreaSide), rng.Uniform(0, g.AreaSide)}
		t := 0.0
		for sim.Time(t) < g.Span {
			dst := point{rng.Uniform(0, g.AreaSide), rng.Uniform(0, g.AreaSide)}
			speed := rng.Uniform(g.MinSpeed, g.MaxSpeed)
			arrive := t + dist(pos, dst)/speed
			paths[n] = append(paths[n], leg{t0: t, t1: arrive, a: pos, b: dst})
			pause := rng.Uniform(0, g.MaxPause)
			paths[n] = append(paths[n], leg{t0: arrive, t1: arrive + pause, a: dst, b: dst})
			pos = dst
			t = arrive + pause
		}
	}

	posAt := func(n int, t float64, hint *int) point {
		p := paths[n]
		i := *hint
		for i < len(p)-1 && p[i].t1 < t {
			i++
		}
		*hint = i
		return p[i].at(t)
	}

	s := &contact.Schedule{Nodes: g.Nodes}
	r2 := g.Range * g.Range
	steps := int(float64(g.Span)/g.SampleDT) + 1
	// Per-pair open contact start (NaN when not in contact).
	type pairState struct {
		open  bool
		start float64
	}
	states := make(map[contact.PairKey]*pairState)
	hints := make([]int, g.Nodes)
	positions := make([]point, g.Nodes)
	for step := 0; step <= steps; step++ {
		t := float64(step) * g.SampleDT
		if sim.Time(t) > g.Span {
			t = float64(g.Span)
		}
		for n := 0; n < g.Nodes; n++ {
			positions[n] = posAt(n, t, &hints[n])
		}
		for i := 0; i < g.Nodes; i++ {
			for j := i + 1; j < g.Nodes; j++ {
				dx := positions[i].x - positions[j].x
				dy := positions[i].y - positions[j].y
				in := dx*dx+dy*dy <= r2
				key := contact.MakePairKey(contact.NodeID(i), contact.NodeID(j))
				st := states[key]
				if st == nil {
					st = &pairState{}
					states[key] = st
				}
				switch {
				case in && !st.open:
					st.open = true
					st.start = t
				case !in && st.open:
					st.open = false
					if t > st.start {
						s.Contacts = append(s.Contacts, contact.Contact{
							A: key.A, B: key.B, Start: sim.Time(st.start), End: sim.Time(t),
						})
					}
				}
			}
		}
		if sim.Time(t) >= g.Span {
			break
		}
	}
	// Close any contacts still open at the horizon.
	for key, st := range states {
		if st.open && float64(g.Span) > st.start {
			s.Contacts = append(s.Contacts, contact.Contact{
				A: key.A, B: key.B, Start: sim.Time(st.start), End: g.Span,
			})
		}
	}
	s.Sort()
	if len(s.Contacts) == 0 {
		return nil, fmt.Errorf("mobility: ClassicRWP produced no contacts (range %.0fm too small for area %.0fm?)", g.Range, g.AreaSide)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: ClassicRWP schedule invalid: %w", err)
	}
	return s, nil
}

// MeanSpeedDecay estimates the classic-RWP mean node speed over time by
// averaging leg speeds weighted by time, demonstrating the [19] pathology
// when MinSpeed approaches zero. Exposed for the pathology example and
// tests; returns the mean speed in the first and last quarter of the span.
func (g ClassicRWP) MeanSpeedDecay() (early, late float64, err error) {
	g = g.Defaults()
	root := sim.NewRNG(g.Seed)
	span := float64(g.Span)
	var sumE, timeE, sumL, timeL float64
	for n := 0; n < g.Nodes; n++ {
		rng := root.Derive(0xC00 + uint64(n))
		pos := point{rng.Uniform(0, g.AreaSide), rng.Uniform(0, g.AreaSide)}
		t := 0.0
		for t < span {
			dst := point{rng.Uniform(0, g.AreaSide), rng.Uniform(0, g.AreaSide)}
			speed := rng.Uniform(g.MinSpeed, g.MaxSpeed)
			travel := dist(pos, dst) / speed
			accumulate := func(t0, t1 float64) {
				if t1 <= span/4 {
					sumE += speed * (t1 - t0)
					timeE += t1 - t0
				}
				if t0 >= 3*span/4 {
					sumL += speed * (t1 - t0)
					timeL += t1 - t0
				}
			}
			accumulate(t, math.Min(t+travel, span))
			pos = dst
			t += travel + rng.Uniform(0, g.MaxPause)
		}
	}
	if timeE == 0 || timeL == 0 {
		return 0, 0, fmt.Errorf("mobility: span too short to measure speed decay")
	}
	return sumE / timeE, sumL / timeL, nil
}
