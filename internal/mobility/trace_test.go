package mobility

import (
	"bytes"
	"strings"
	"testing"

	"dtnsim/internal/contact"
)

func TestParseTraceBasic(t *testing.T) {
	in := `# nodes: 15
# a comment
3 9 3568 3882

0 1 10 20
`
	s, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 15 {
		t.Errorf("Nodes = %d, want 15 (header raises inferred count)", s.Nodes)
	}
	if len(s.Contacts) != 2 {
		t.Fatalf("parsed %d contacts", len(s.Contacts))
	}
	// Sorted by start: (0,1) first.
	if s.Contacts[0] != (contact.Contact{A: 0, B: 1, Start: 10, End: 20}) {
		t.Errorf("first contact = %v", s.Contacts[0])
	}
	// The paper's worked example: nodes 3 and 9 meet for 314 s.
	if got := s.Contacts[1].Duration(); got != 314 {
		t.Errorf("example contact duration = %v, want 314", got)
	}
}

func TestParseTraceNormalizes(t *testing.T) {
	s, err := ParseTrace(strings.NewReader("7 2 0 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Contacts[0].A != 2 || s.Contacts[0].B != 7 {
		t.Errorf("contact not normalized: %v", s.Contacts[0])
	}
	if s.Nodes != 8 {
		t.Errorf("Nodes inferred = %d, want 8", s.Nodes)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"too few fields", "1 2 3\n"},
		{"non-numeric", "a b 0 5\n"},
		{"fractional node id", "1.5 2 0 5\n"},
		{"negative node id", "-1 2 0 5\n"},
		{"self contact", "2 2 0 5\n"},
		{"inverted window", "1 2 10 5\n"},
		{"empty window", "1 2 5 5\n"},
		{"empty trace", "# nothing\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseTrace(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ParseTrace(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g := SyntheticCambridge{Seed: 42, Nodes: 6, Span: 50000}
	s, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nodes != s.Nodes {
		t.Errorf("round-trip Nodes = %d, want %d", back.Nodes, s.Nodes)
	}
	if len(back.Contacts) != len(s.Contacts) {
		t.Fatalf("round-trip contacts = %d, want %d", len(back.Contacts), len(s.Contacts))
	}
	for i := range s.Contacts {
		if back.Contacts[i] != s.Contacts[i] {
			t.Fatalf("contact %d: %v != %v", i, back.Contacts[i], s.Contacts[i])
		}
	}
}

func TestParseNodesHeader(t *testing.T) {
	if n, ok := parseNodesHeader("# nodes: 12"); !ok || n != 12 {
		t.Errorf("parseNodesHeader = %d,%v", n, ok)
	}
	if _, ok := parseNodesHeader("# contacts: 12"); ok {
		t.Error("contacts header misparsed as nodes")
	}
	if _, ok := parseNodesHeader("# nodes: x"); ok {
		t.Error("bad count accepted")
	}
}
