package mobility

import (
	"testing"

	"dtnsim/internal/contact"
)

func TestSubscriberPointRWPDeterminism(t *testing.T) {
	a, err := SubscriberPointRWP{Seed: 5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := SubscriberPointRWP{Seed: 5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("same seed: %d vs %d contacts", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestSubscriberPointRWPPaperConstraints(t *testing.T) {
	g := SubscriberPointRWP{Seed: 2}.Defaults()
	s, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Nodes != CambridgeNodes {
		t.Errorf("Nodes = %d", s.Nodes)
	}
	for i, c := range s.Contacts {
		if float64(c.Duration()) > g.MaxContact {
			t.Fatalf("contact %d duration %v exceeds paper cap %v", i, c.Duration(), g.MaxContact)
		}
		if c.End > g.Span {
			t.Fatalf("contact %d ends after span", i)
		}
	}
	st := contact.Analyze(s)
	if st.Contacts < 200 {
		t.Errorf("RWP produced only %d contacts; too sparse", st.Contacts)
	}
	for n, e := range st.EncountersPer {
		if e == 0 {
			t.Errorf("node %d never meets anyone", n)
		}
	}
}

func TestSubscriberPointRWPErrors(t *testing.T) {
	if _, err := (SubscriberPointRWP{Nodes: 1, Seed: 1}).Generate(); err == nil {
		t.Error("1 node accepted")
	}
	if _, err := (SubscriberPointRWP{Points: 1, Seed: 1}).Generate(); err == nil {
		t.Error("1 point accepted")
	}
	if _, err := (SubscriberPointRWP{Points: 101, Seed: 1}).Generate(); err == nil {
		t.Error("paper's 100-points/km² bound not enforced")
	}
}

func TestSubscriberPointRWPDenserPointsFewerMeetings(t *testing.T) {
	// With more subscriber points, co-location (hence contact count)
	// should drop — a sanity check that contacts really come from
	// point co-location.
	sparse, err := SubscriberPointRWP{Seed: 9, Points: 10}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dense, err := SubscriberPointRWP{Seed: 9, Points: 100}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.Contacts) >= len(sparse.Contacts) {
		t.Errorf("100 points gave %d contacts, 10 points gave %d; expected fewer with more points",
			len(dense.Contacts), len(sparse.Contacts))
	}
}

func TestClassicRWPGenerate(t *testing.T) {
	g := ClassicRWP{Seed: 4, Span: 100000}
	s, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	gd := g.Defaults()
	for i, c := range s.Contacts {
		if c.End > gd.Span {
			t.Fatalf("contact %d ends after span", i)
		}
	}
}

func TestClassicRWPDeterminism(t *testing.T) {
	a, err := ClassicRWP{Seed: 6, Span: 50000}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClassicRWP{Seed: 6, Span: 50000}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("same seed: %d vs %d", len(a.Contacts), len(b.Contacts))
	}
}

func TestClassicRWPRejectsZeroMinSpeed(t *testing.T) {
	g := ClassicRWP{Seed: 1}
	g.MinSpeed = -1 // explicit bad value; zero would take the default
	if _, err := g.Generate(); err == nil {
		t.Error("MinSpeed <= 0 accepted despite speed-decay pathology")
	}
}

func TestClassicRWPSpeedDecayMeasurable(t *testing.T) {
	// With MinSpeed well above zero there should be no systematic decay.
	g := ClassicRWP{Seed: 3, Span: 200000}
	early, late, err := g.MeanSpeedDecay()
	if err != nil {
		t.Fatal(err)
	}
	if early <= 0 || late <= 0 {
		t.Fatalf("speeds: early=%v late=%v", early, late)
	}
	ratio := late / early
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("healthy RWP should hold mean speed steady: early=%.2f late=%.2f", early, late)
	}
}

func TestControlledIntervalShape(t *testing.T) {
	for _, maxI := range []float64{400, 2000} {
		g := ControlledInterval{Seed: 11, MaxInterval: maxI}
		s, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		gd := g.Defaults()
		st := contact.Analyze(s)
		// Every node gets exactly Encounters meetings (even population:
		// one per round).
		for n, e := range st.EncountersPer {
			if e != gd.Encounters {
				t.Errorf("maxI=%v: node %d has %d encounters, want %d", maxI, n, e, gd.Encounters)
			}
		}
		// A node's inter-encounter gap never exceeds the bound by more
		// than a partner-wait round: the generated spacing draw is
		// capped at MaxInterval; waiting for a busy partner can stretch
		// it, so verify the mean sits inside the configured band.
		gaps := 0.0
		count := 0
		for n := 0; n < s.Nodes; n++ {
			for _, gap := range contact.InterContactTimes(s, contact.NodeID(n)) {
				gaps += gap
				count++
			}
		}
		mean := gaps / float64(count)
		if mean < gd.MinInterval || mean > 2.5*maxI {
			t.Errorf("maxI=%v: mean node gap %.0f outside expected band", maxI, mean)
		}
	}
}

func TestControlledIntervalScalesWithMax(t *testing.T) {
	short, err := ControlledInterval{Seed: 13, MaxInterval: 400}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	long, err := ControlledInterval{Seed: 13, MaxInterval: 2000}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ss, sl := contact.Analyze(short), contact.Analyze(long)
	if sl.MeanInterval <= ss.MeanInterval {
		t.Errorf("MaxInterval=2000 mean gap %.0f not above MaxInterval=400 mean gap %.0f",
			sl.MeanInterval, ss.MeanInterval)
	}
}

func TestControlledIntervalErrors(t *testing.T) {
	if _, err := (ControlledInterval{Nodes: 1, Seed: 1}).Generate(); err == nil {
		t.Error("1 node accepted")
	}
	if _, err := (ControlledInterval{MinInterval: 500, MaxInterval: 100, Seed: 1}).Generate(); err == nil {
		t.Error("inverted interval bounds accepted")
	}
}
