package buffer

import (
	"errors"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// sized builds an unpinned copy of the given payload size.
func sized(src contact.NodeID, seq int, size int64, storedAt sim.Time) *bundle.Copy {
	return &bundle.Copy{
		Bundle: &bundle.Bundle{
			ID:   bundle.ID{Src: src, Seq: seq},
			Meta: bundle.Meta{Size: size},
		},
		Expiry:   sim.Infinity,
		StoredAt: storedAt,
	}
}

func TestByteCapAccounting(t *testing.T) {
	s := New(10)
	s.SetByteCap(100)
	if err := s.Put(sized(0, 1, 60, 0)); err != nil {
		t.Fatal(err)
	}
	if got := s.UsedBytes(); got != 60 {
		t.Fatalf("UsedBytes = %d, want 60", got)
	}
	if !s.FitsBytes(40) || s.FitsBytes(41) {
		t.Fatalf("FitsBytes wrong at 60/100 used")
	}
	if err := s.Put(sized(0, 2, 41, 0)); !errors.Is(err, ErrFullBytes) {
		t.Fatalf("oversized Put err = %v, want ErrFullBytes", err)
	}
	// Pinned copies bypass the byte check but count in UsedBytes.
	pinned := sized(0, 3, 500, 0)
	pinned.Pinned = true
	if err := s.Put(pinned); err != nil {
		t.Fatalf("pinned Put: %v", err)
	}
	if got := s.UsedBytes(); got != 560 {
		t.Fatalf("UsedBytes = %d, want 560", got)
	}
	if got := s.UnpinnedBytes(); got != 60 {
		t.Fatalf("UnpinnedBytes = %d, want 60", got)
	}
	s.Remove(bundle.ID{Src: 0, Seq: 1})
	if got, want := s.UsedBytes(), int64(500); got != want {
		t.Fatalf("UsedBytes after Remove = %d, want %d", got, want)
	}
	if s.UnpinnedBytes() != 0 {
		t.Fatalf("UnpinnedBytes after Remove = %d, want 0", s.UnpinnedBytes())
	}
}

func TestByteCapZeroDisablesCheck(t *testing.T) {
	s := New(10)
	if err := s.Put(sized(0, 1, 1<<40, 0)); err != nil {
		t.Fatalf("unbounded store refused sized copy: %v", err)
	}
	if got := s.UsedBytes(); got != 1<<40 {
		t.Fatalf("bytes still tracked without a cap: got %d", got)
	}
}

func TestPurgeRecomputesBytes(t *testing.T) {
	s := New(10)
	s.SetByteCap(1000)
	for i := 1; i <= 4; i++ {
		cp := sized(0, i, int64(10*i), 0)
		cp.Expiry = sim.Time(100 * i)
		if err := s.Put(cp); err != nil {
			t.Fatal(err)
		}
	}
	s.PurgeExpired(250) // sheds sizes 10 and 20
	if got := s.UsedBytes(); got != 70 {
		t.Fatalf("UsedBytes after purge = %d, want 70", got)
	}
	if got := s.UnpinnedBytes(); got != 70 {
		t.Fatalf("UnpinnedBytes after purge = %d, want 70", got)
	}
}

func TestDropPolicyRegistry(t *testing.T) {
	for _, name := range []string{"droptail", "dropfront", "droprandom"} {
		p, err := NewDropPolicy(name, 7)
		if err != nil {
			t.Fatalf("NewDropPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
		if !ValidDropPolicy(name) {
			t.Errorf("ValidDropPolicy(%q) = false", name)
		}
	}
	if _, err := NewDropPolicy("nosuch", 0); !errors.Is(err, ErrDropPolicy) {
		t.Fatalf("unknown policy err = %v, want ErrDropPolicy", err)
	}
	if ValidDropPolicy("nosuch") {
		t.Error("ValidDropPolicy accepted unknown name")
	}
}

func TestDropTailRefuses(t *testing.T) {
	s := New(10)
	s.SetByteCap(100)
	if err := s.Put(sized(0, 1, 90, 0)); err != nil {
		t.Fatal(err)
	}
	p, _ := NewDropPolicy("droptail", 0)
	evicted, ok := s.MakeByteRoom(20, p)
	if ok || len(evicted) != 0 {
		t.Fatalf("droptail MakeByteRoom = (%v, %v), want refuse with no evictions", evicted, ok)
	}
	if s.Len() != 1 {
		t.Fatal("droptail mutated the store")
	}
}

func TestDropFrontEvictsOldest(t *testing.T) {
	s := New(10)
	s.SetByteCap(100)
	// Stored newest-first by ID to prove selection is by StoredAt.
	for i, at := range []sim.Time{300, 100, 200} {
		if err := s.Put(sized(0, i+1, 30, at)); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := NewDropPolicy("dropfront", 0)
	evicted, ok := s.MakeByteRoom(40, p)
	if !ok || len(evicted) != 1 {
		t.Fatalf("MakeByteRoom = (%d evicted, %v), want 1 eviction", len(evicted), ok)
	}
	if got := evicted[0].Bundle.ID.Seq; got != 2 {
		t.Fatalf("evicted seq %d, want 2 (oldest StoredAt)", got)
	}
	if !s.FitsBytes(40) {
		t.Fatal("room not actually made")
	}
}

func TestDropFrontEvictsSeveral(t *testing.T) {
	s := New(10)
	s.SetByteCap(100)
	for i := 1; i <= 3; i++ {
		if err := s.Put(sized(0, i, 30, sim.Time(i))); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := NewDropPolicy("dropfront", 0)
	evicted, ok := s.MakeByteRoom(70, p)
	if !ok || len(evicted) != 2 {
		t.Fatalf("MakeByteRoom = (%d evicted, %v), want 2 evictions", len(evicted), ok)
	}
	if evicted[0].Bundle.ID.Seq != 1 || evicted[1].Bundle.ID.Seq != 2 {
		t.Fatalf("evicted %v,%v; want seq 1 then 2", evicted[0].Bundle.ID, evicted[1].Bundle.ID)
	}
}

func TestMakeByteRoomOversizedRefusedUpFront(t *testing.T) {
	s := New(10)
	s.SetByteCap(100)
	if err := s.Put(sized(0, 1, 50, 0)); err != nil {
		t.Fatal(err)
	}
	p, _ := NewDropPolicy("dropfront", 0)
	evicted, ok := s.MakeByteRoom(101, p)
	if ok || len(evicted) != 0 {
		t.Fatalf("oversized incoming must be refused before evicting; got (%d, %v)", len(evicted), ok)
	}
	if s.Len() != 1 {
		t.Fatal("store mutated by refused oversized incoming")
	}
}

func TestMakeByteRoomSkipsPinnedAndSizeless(t *testing.T) {
	s := New(10)
	s.SetByteCap(100)
	pinned := sized(0, 1, 80, 0)
	pinned.Pinned = true
	if err := s.Put(pinned); err != nil {
		t.Fatal(err)
	}
	// A size-less copy cannot relieve byte pressure and must never be a
	// victim.
	if err := s.Put(sized(0, 2, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(sized(0, 3, 90, 0)); err != nil {
		t.Fatal(err)
	}
	p, _ := NewDropPolicy("dropfront", 0)
	evicted, ok := s.MakeByteRoom(50, p)
	if !ok || len(evicted) != 1 || evicted[0].Bundle.ID.Seq != 3 {
		t.Fatalf("MakeByteRoom = (%v, %v), want to evict only seq 3", evicted, ok)
	}
	if !s.Has(bundle.ID{Src: 0, Seq: 1}) || !s.Has(bundle.ID{Src: 0, Seq: 2}) {
		t.Fatal("pinned or size-less copy was evicted")
	}
}

func TestDropRandomDeterministic(t *testing.T) {
	build := func() *Store {
		s := New(20)
		s.SetByteCap(100)
		for i := 1; i <= 10; i++ {
			if err := s.Put(sized(0, i, 10, 0)); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	run := func(seed uint64) []bundle.ID {
		s := build()
		p, _ := NewDropPolicy("droprandom", seed)
		evicted, ok := s.MakeByteRoom(30, p)
		if !ok || len(evicted) != 3 {
			t.Fatalf("MakeByteRoom = (%d, %v), want 3 evictions", len(evicted), ok)
		}
		ids := make([]bundle.ID, len(evicted))
		for i, c := range evicted {
			ids[i] = c.Bundle.ID
		}
		return ids
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	// A different seed should (for this configuration) pick a different
	// victim sequence; equality here would suggest the seed is ignored.
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 evicted identically: %v", a)
	}
}
