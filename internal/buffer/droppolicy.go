package buffer

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dtnsim/internal/bundle"
	"dtnsim/internal/sim"
)

// ErrDropPolicy wraps drop-policy spec resolution failures.
var ErrDropPolicy = errors.New("buffer: invalid drop policy")

// DropPolicy decides which stored copy to shed when an incoming sized
// copy does not fit a store's byte capacity. The engine consults it
// only under byte pressure; the paper's slot-count policies stay in the
// protocols (Admit), untouched.
//
// Contract: Victim returns an unpinned stored copy with a positive
// payload size — evicting anything else cannot relieve byte pressure —
// or nil to refuse the incoming copy instead. Selection must be
// deterministic given the policy's own state (seeded RNG included), so
// runs stay reproducible.
type DropPolicy interface {
	// Name returns the registry spec this policy resolves from.
	Name() string
	// Victim picks the next copy to drop from s, or nil to refuse the
	// incoming copy.
	Victim(s *Store) *bundle.Copy
}

// DropPolicyFactory builds a policy instance for one run; seed feeds
// randomized policies (droprandom) so victim choices are reproducible.
type DropPolicyFactory func(seed uint64) DropPolicy

// StreamPolicy is implemented by randomized drop policies that can draw
// from an externally owned stream instead of their seeded fallback. The
// engine injects its per-encounter stream (reseeded from
// sim.EncounterSeed at every contact), making victim choices a function
// of the encounter alone — the property that lets any shard worker
// replay a contact's drops bit-identically (DESIGN.md §12).
type StreamPolicy interface {
	SetStream(*sim.RNG)
}

type dropPolicyEntry struct {
	usage   string
	factory DropPolicyFactory
}

var dropPolicies = map[string]dropPolicyEntry{}
var dropPolicyNames []string

// RegisterDropPolicy adds a named drop policy; it panics on an empty or
// duplicate name (registration is init-time, a collision is a
// programming error).
func RegisterDropPolicy(name, usage string, f DropPolicyFactory) {
	if name == "" || f == nil {
		panic("buffer: RegisterDropPolicy requires a name and a factory")
	}
	if _, dup := dropPolicies[name]; dup {
		panic(fmt.Sprintf("buffer: drop policy %q registered twice", name))
	}
	dropPolicies[name] = dropPolicyEntry{usage: usage, factory: f}
	dropPolicyNames = append(dropPolicyNames, name)
}

// NewDropPolicy resolves a drop-policy name to a fresh instance. All
// failures wrap ErrDropPolicy; it never panics, making it the safe
// boundary for user-supplied specs.
func NewDropPolicy(name string, seed uint64) (DropPolicy, error) {
	e, ok := dropPolicies[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown policy %q (have %s)",
			ErrDropPolicy, name, strings.Join(DropPolicyNames(), ", "))
	}
	return e.factory(seed), nil
}

// ValidDropPolicy reports whether name resolves in the registry.
func ValidDropPolicy(name string) bool {
	_, ok := dropPolicies[name]
	return ok
}

// CheckDropPolicy validates a config-level drop-policy name: empty
// (meaning "the default") and registered names pass; anything else
// returns the registry's unknown-policy error for the caller to wrap
// in its own sentinel. Config boundaries share this so the message has
// one source of truth. The error wraps ErrDropPolicy, keeping the
// registry contract uniform: every policy-resolution failure answers
// errors.Is(err, ErrDropPolicy) whichever boundary reported it
// (dtnlint's errsentinel pass enforces this).
func CheckDropPolicy(name string) error {
	if name == "" || ValidDropPolicy(name) {
		return nil
	}
	return fmt.Errorf("%w: unknown drop policy %q (have %s)",
		ErrDropPolicy, name, strings.Join(DropPolicyNames(), ", "))
}

// DropPolicyNames returns the registered policy names, sorted.
func DropPolicyNames() []string {
	out := append([]string(nil), dropPolicyNames...)
	sort.Strings(out)
	return out
}

// DropPolicyUsage returns the one-line description of a registered
// policy, or "".
func DropPolicyUsage(name string) string { return dropPolicies[name].usage }

// DefaultDropPolicy is the policy byte-capacity configs get when they
// name none: droptail, the paper's implicit policy everywhere a full
// buffer simply refuses new bundles.
const DefaultDropPolicy = "droptail"

func init() {
	RegisterDropPolicy("droptail",
		"refuse the incoming bundle when it does not fit (the paper's implicit full-buffer behaviour)",
		func(uint64) DropPolicy { return dropTail{} })
	RegisterDropPolicy("dropfront",
		"evict the oldest stored sized bundle (FIFO / drop-from-front)",
		func(uint64) DropPolicy { return dropFront{} })
	RegisterDropPolicy("droprandom",
		"evict a uniformly random stored sized bundle (seeded, reproducible)",
		func(seed uint64) DropPolicy { return &dropRandom{rng: sim.NewRNG(seed)} })
}

// evictable reports whether dropping c can relieve byte pressure.
func evictable(c *bundle.Copy) bool { return !c.Pinned && c.Bundle.Meta.Size > 0 }

// dropTail never evicts: arriving traffic is shed, stored traffic kept.
type dropTail struct{}

func (dropTail) Name() string               { return "droptail" }
func (dropTail) Victim(*Store) *bundle.Copy { return nil }

// dropFront evicts the oldest stored copy (minimum StoredAt, ties
// broken by bundle ID so runs are deterministic).
type dropFront struct{}

func (dropFront) Name() string { return "dropfront" }

func (dropFront) Victim(s *Store) *bundle.Copy {
	var victim *bundle.Copy
	s.Range(func(c *bundle.Copy) bool {
		if !evictable(c) {
			return true
		}
		// Range walks ascending bundle IDs, so a strict StoredAt
		// comparison keeps the smallest-ID copy among ties.
		if victim == nil || c.StoredAt < victim.StoredAt {
			victim = c
		}
		return true
	})
	return victim
}

// dropRandom evicts a uniformly random evictable copy (reservoir
// sampling over the store's deterministic iteration order). Draws come
// from the injected stream when the engine set one (SetStream), else
// from the policy's own seeded RNG, so choices replay exactly either
// way.
type dropRandom struct{ rng *sim.RNG }

func (*dropRandom) Name() string { return "droprandom" }

// SetStream implements StreamPolicy: subsequent Victim draws pull from
// the engine's per-encounter stream.
func (p *dropRandom) SetStream(rng *sim.RNG) { p.rng = rng }

func (p *dropRandom) Victim(s *Store) *bundle.Copy {
	var victim *bundle.Copy
	n := 0
	s.Range(func(c *bundle.Copy) bool {
		if !evictable(c) {
			return true
		}
		n++
		if p.rng.IntN(n) == 0 {
			victim = c
		}
		return true
	})
	return victim
}

// MakeByteRoom evicts copies chosen by policy until an unpinned copy of
// the given payload size fits the byte capacity, returning the evicted
// copies (already removed from the store) in eviction order. ok reports
// whether the incoming copy now fits; on ok=false the caller refuses
// it. A copy larger than the whole byte capacity is refused up front,
// before anything is evicted.
//
// Every victim satisfies the DropPolicy contract (unpinned, positive
// size), so each round strictly shrinks the unpinned byte load and the
// loop terminates.
func (s *Store) MakeByteRoom(size int64, policy DropPolicy) (evicted []*bundle.Copy, ok bool) {
	if s.FitsBytes(size) {
		return nil, true
	}
	if size > s.capBytes {
		return nil, false
	}
	for !s.FitsBytes(size) {
		v := policy.Victim(s)
		if v == nil {
			return evicted, false
		}
		if !evictable(v) {
			panic(fmt.Sprintf("buffer: drop policy %q picked non-evictable victim %v", policy.Name(), v.Bundle.ID))
		}
		s.Remove(v.Bundle.ID)
		evicted = append(evicted, v)
	}
	return evicted, true
}
