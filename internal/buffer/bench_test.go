package buffer

// Per-operation benchmarks for the store hot path: the operations every
// contact pays (Free, in-order iteration, the no-op PurgeExpired fast
// path) and the Put/Remove churn that maintains the index. After the
// indexed-store rework these fast paths must run with zero allocs/op —
// asserted by TestHotPathZeroAlloc and tracked by cmd/benchguard.

import (
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/sim"
)

// benchStore returns a store holding n unpinned copies (IDs 1..n) with
// far-future expiries, plus one pinned copy.
func benchStore(n int) *Store {
	s := New(n + 1)
	for i := 1; i <= n; i++ {
		c := mk(i)
		c.Expiry = sim.Time(1 << 40)
		if err := s.Put(c); err != nil {
			panic(err)
		}
	}
	p := mkPinned(n + 1)
	p.Expiry = sim.Infinity
	if err := s.Put(p); err != nil {
		panic(err)
	}
	return s
}

// BenchmarkStoreFree times the per-admission capacity check.
func BenchmarkStoreFree(b *testing.B) {
	s := benchStore(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Free() < 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkStoreIterate times one in-order pass over all copies — the
// anti-entropy diff every contact starts from. Range walks the sorted
// index; before the indexed store this required Items(), which copied
// and sorted.
func BenchmarkStoreIterate(b *testing.B) {
	s := benchStore(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Range(func(*bundle.Copy) bool { n++; return true })
		if n != 11 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkStoreItems times the allocating snapshot path kept for
// non-hot callers, as the paired reference for BenchmarkStoreIterate.
func BenchmarkStoreItems(b *testing.B) {
	s := benchStore(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(s.Items()) != 11 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkStorePurgeExpiredIdle times PurgeExpired when nothing has
// lapsed — the common case paid twice per contact.
func BenchmarkStorePurgeExpiredIdle(b *testing.B) {
	s := benchStore(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if purged := s.PurgeExpired(1000); purged != nil {
			b.Fatal("unexpected purge")
		}
	}
}

// BenchmarkStorePutRemove times the index-maintaining churn pair.
func BenchmarkStorePutRemove(b *testing.B) {
	s := benchStore(10)
	c := mk(999)
	c.Expiry = sim.Time(1 << 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Put(c); err != nil {
			b.Fatal(err)
		}
		if !s.Remove(c.Bundle.ID) {
			b.Fatal("remove failed")
		}
	}
}
