// Package buffer implements the capacity-bounded bundle store each DTN
// node carries. The paper fixes capacity at 10 bundles; the policies that
// decide *which* bundle to drop live in the protocols — the store only
// enforces mechanics: capacity accounting, pinning of self-originated
// bundles, TTL purging, and deterministic iteration.
package buffer

import (
	"errors"
	"fmt"
	"sort"

	"dtnsim/internal/bundle"
	"dtnsim/internal/sim"
)

// ErrFull is returned by Put when the store is at capacity and the copy
// is not pinned.
var ErrFull = errors.New("buffer: store full")

// ErrDuplicate is returned by Put when a copy of the bundle is already
// stored.
var ErrDuplicate = errors.New("buffer: duplicate bundle")

// Store holds one node's buffered bundle copies.
//
// Pinned copies (a source's own undelivered bundles) are exempt from the
// capacity check and cannot be evicted — see DESIGN.md §3.3 for why the
// paper's results imply this behaviour — but they do count in Occupancy,
// which is how the paper's occupancy plots exceed 1.0.
type Store struct {
	cap    int
	copies map[bundle.ID]*bundle.Copy
	// controlLoad is the buffer space consumed by stored control
	// metadata (immunity tables / anti-packets), in bundle-slot units.
	// The paper observes that "nodes' buffer occupancy is dependent on
	// immunity tables stored in each node" — tables occupy buffer space
	// and compete with bundles (DESIGN.md §3).
	controlLoad float64
}

// New returns an empty store with the given capacity in bundles.
// Capacity must be positive.
func New(capacity int) *Store {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: capacity must be positive, got %d", capacity))
	}
	return &Store{cap: capacity, copies: make(map[bundle.ID]*bundle.Copy)}
}

// Cap returns the configured capacity.
func (s *Store) Cap() int { return s.cap }

// Len returns the total number of stored copies, pinned included.
func (s *Store) Len() int { return len(s.copies) }

// Unpinned returns the number of copies that count against capacity.
func (s *Store) Unpinned() int {
	n := 0
	for _, c := range s.copies {
		if !c.Pinned {
			n++
		}
	}
	return n
}

// SetControlLoad records the buffer space consumed by control metadata,
// in bundle-slot units. Negative values are clamped to zero.
func (s *Store) SetControlLoad(load float64) {
	if load < 0 {
		load = 0
	}
	s.controlLoad = load
}

// ControlLoad returns the buffer space consumed by control metadata.
func (s *Store) ControlLoad() float64 { return s.controlLoad }

// Free returns the number of unpinned slots still available after
// accounting for whole slots consumed by control metadata.
func (s *Store) Free() int {
	free := s.cap - s.Unpinned() - int(s.controlLoad)
	if free < 0 {
		free = 0
	}
	return free
}

// Occupancy returns (copies + control load)/Cap(): the paper's "buffer
// occupancy level". It may exceed 1.0 at a source holding pinned bundles
// beyond capacity.
func (s *Store) Occupancy() float64 {
	return (float64(len(s.copies)) + s.controlLoad) / float64(s.cap)
}

// Has reports whether a copy of id is stored.
func (s *Store) Has(id bundle.ID) bool {
	_, ok := s.copies[id]
	return ok
}

// Get returns the stored copy of id, or nil.
func (s *Store) Get(id bundle.ID) *bundle.Copy { return s.copies[id] }

// Put stores a copy. Unpinned copies are refused with ErrFull when no
// unpinned slot is free; a second copy of the same bundle is refused with
// ErrDuplicate.
func (s *Store) Put(c *bundle.Copy) error {
	if _, ok := s.copies[c.Bundle.ID]; ok {
		return fmt.Errorf("%w: %v", ErrDuplicate, c.Bundle.ID)
	}
	if !c.Pinned && s.Free() <= 0 {
		return fmt.Errorf("%w: cap=%d", ErrFull, s.cap)
	}
	s.copies[c.Bundle.ID] = c
	return nil
}

// Remove deletes the copy of id, reporting whether it was present.
// Pinned copies can be removed — delivery and immunity purge both apply
// to sources once a bundle is known delivered.
func (s *Store) Remove(id bundle.ID) bool {
	if _, ok := s.copies[id]; !ok {
		return false
	}
	delete(s.copies, id)
	return true
}

// Items returns the stored copies in deterministic bundle-ID order.
func (s *Store) Items() []*bundle.Copy {
	out := make([]*bundle.Copy, 0, len(s.copies))
	for _, c := range s.copies {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bundle.ID.Less(out[j].Bundle.ID) })
	return out
}

// IDs returns the stored bundle IDs in deterministic order.
func (s *Store) IDs() []bundle.ID {
	out := make([]bundle.ID, 0, len(s.copies))
	for id := range s.copies {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Vector returns a summary vector of the store's current contents.
func (s *Store) Vector() *bundle.SummaryVector {
	v := bundle.NewSummaryVector()
	for id := range s.copies {
		v.Add(id)
	}
	return v
}

// PurgeExpired removes every unpinned copy whose TTL lapsed at or before
// now and returns the purged copies in deterministic order. Pinned
// copies never expire: a source holds its own bundles until delivery.
func (s *Store) PurgeExpired(now sim.Time) []*bundle.Copy {
	var purged []*bundle.Copy
	for _, c := range s.Items() {
		if !c.Pinned && c.Expired(now) {
			delete(s.copies, c.Bundle.ID)
			purged = append(purged, c)
		}
	}
	return purged
}

// PurgeMatching removes every copy (pinned included) for which match
// returns true and returns the removed copies in deterministic order.
// Immunity protocols use this to discard delivered bundles everywhere,
// including the source.
func (s *Store) PurgeMatching(match func(*bundle.Copy) bool) []*bundle.Copy {
	var purged []*bundle.Copy
	for _, c := range s.Items() {
		if match(c) {
			delete(s.copies, c.Bundle.ID)
			purged = append(purged, c)
		}
	}
	return purged
}
