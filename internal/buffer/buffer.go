// Package buffer implements the capacity-bounded bundle store each DTN
// node carries. The paper fixes capacity at 10 bundles; the policies that
// decide *which* bundle to drop live in the protocols — the store only
// enforces mechanics: capacity accounting, pinning of self-originated
// bundles, TTL purging, and deterministic iteration.
//
// The store is engineered for the contact hot path (DESIGN.md §7.1):
// alongside the ID-keyed map it maintains a bundle-ID-sorted slice
// index incrementally on Put/Remove, a pinned-copy count, and a
// conservative minimum-expiry bound. In-order iteration (Range,
// AppendIDs), the capacity check (Free, Unpinned) and the idle
// PurgeExpired fast path are therefore allocation-free — nothing is
// re-sorted or re-counted per contact.
package buffer

import (
	"errors"
	"fmt"
	"sort"

	"dtnsim/internal/bundle"
	"dtnsim/internal/sim"
)

// ErrFull is returned by Put when the store is at capacity and the copy
// is not pinned.
var ErrFull = errors.New("buffer: store full")

// ErrFullBytes is returned by Put when storing the copy would exceed the
// store's byte capacity. Callers relieve byte pressure first via
// MakeByteRoom with a DropPolicy.
var ErrFullBytes = errors.New("buffer: store byte capacity exceeded")

// ErrDuplicate is returned by Put when a copy of the bundle is already
// stored.
var ErrDuplicate = errors.New("buffer: duplicate bundle")

// Store holds one node's buffered bundle copies.
//
// Pinned copies (a source's own undelivered bundles) are exempt from the
// capacity check and cannot be evicted — see DESIGN.md §3.3 for why the
// paper's results imply this behaviour — but they do count in Occupancy,
// which is how the paper's occupancy plots exceed 1.0.
//
// Two invariants let the index stay incremental; both hold for every
// protocol in this repository:
//
//   - A copy's Pinned flag never changes while the copy is stored.
//   - Code that lowers a stored copy's Expiry in place (TTL renewal /
//     EC ageing run inside Protocol.OnTransmit) must call NoteExpiry
//     afterwards so the min-expiry bound stays conservative. Raising an
//     expiry needs no notice — a stale-low bound only costs a scan that
//     finds nothing.
type Store struct {
	cap    int
	copies map[bundle.ID]*bundle.Copy
	// order indexes the stored copies in ascending bundle-ID order. It
	// is maintained incrementally: O(log n) search plus an O(n) memmove
	// on Put/Remove (n ≤ a few dozen in practice), so every iteration —
	// the anti-entropy diff each contact runs — is allocation-free and
	// never re-sorts.
	order []*bundle.Copy
	// pinned counts stored pinned copies, so Unpinned/Free are O(1).
	pinned int
	// minExpiry is a conservative lower bound on the minimum Expiry over
	// the unpinned stored copies (Infinity when there are none): if
	// now < minExpiry, nothing can have lapsed and PurgeExpired is O(1).
	// Removals may leave it stale-low, which only costs a no-op scan;
	// full purge scans recompute it exactly.
	minExpiry sim.Time
	// controlLoad is the buffer space consumed by stored control
	// metadata (immunity tables / anti-packets), in bundle-slot units.
	// The paper observes that "nodes' buffer occupancy is dependent on
	// immunity tables stored in each node" — tables occupy buffer space
	// and compete with bundles (DESIGN.md §3).
	controlLoad float64
	// capBytes is the optional byte capacity (DESIGN.md §9); zero means
	// unbounded, the legacy slots-only model. Like the slot capacity it
	// binds only unpinned copies.
	capBytes int64
	// unpinnedBytes and totalBytes track the stored payload bytes
	// (Bundle.Meta.Size) incrementally on Put/Remove/purge, so the byte
	// capacity check is O(1). Size-less (legacy) bundles contribute
	// nothing to either.
	unpinnedBytes, totalBytes int64
}

// New returns an empty store with the given capacity in bundles.
// Capacity must be positive.
func New(capacity int) *Store {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: capacity must be positive, got %d", capacity))
	}
	return &Store{
		cap:       capacity,
		copies:    make(map[bundle.ID]*bundle.Copy),
		minExpiry: sim.Infinity,
	}
}

// Cap returns the configured capacity.
func (s *Store) Cap() int { return s.cap }

// SetByteCap sets the store's byte capacity; zero disables byte
// accounting checks (bytes are still tracked). It must be called before
// copies are stored — shrinking under live contents is not supported —
// and panics on a negative capacity.
func (s *Store) SetByteCap(capBytes int64) {
	if capBytes < 0 {
		panic(fmt.Sprintf("buffer: byte capacity must be non-negative, got %d", capBytes))
	}
	if len(s.copies) > 0 {
		panic("buffer: SetByteCap on a non-empty store")
	}
	s.capBytes = capBytes
}

// ByteCap returns the configured byte capacity (0 = unbounded).
func (s *Store) ByteCap() int64 { return s.capBytes }

// UsedBytes returns the payload bytes of every stored copy, pinned
// included.
func (s *Store) UsedBytes() int64 { return s.totalBytes }

// UnpinnedBytes returns the payload bytes counted against the byte
// capacity.
func (s *Store) UnpinnedBytes() int64 { return s.unpinnedBytes }

// FitsBytes reports whether an unpinned copy of the given payload size
// would pass the byte capacity check right now.
//
//dtn:hotpath
func (s *Store) FitsBytes(size int64) bool {
	return s.capBytes == 0 || size <= 0 || s.unpinnedBytes+size <= s.capBytes
}

// Len returns the total number of stored copies, pinned included.
func (s *Store) Len() int { return len(s.copies) }

// Unpinned returns the number of copies that count against capacity.
func (s *Store) Unpinned() int { return len(s.copies) - s.pinned }

// SetControlLoad records the buffer space consumed by control metadata,
// in bundle-slot units. Negative values are clamped to zero.
func (s *Store) SetControlLoad(load float64) {
	if load < 0 {
		load = 0
	}
	s.controlLoad = load
}

// ControlLoad returns the buffer space consumed by control metadata.
func (s *Store) ControlLoad() float64 { return s.controlLoad }

// Free returns the number of unpinned slots still available after
// accounting for whole slots consumed by control metadata.
//
//dtn:hotpath
func (s *Store) Free() int {
	free := s.cap - s.Unpinned() - int(s.controlLoad)
	if free < 0 {
		free = 0
	}
	return free
}

// Occupancy returns (copies + control load)/Cap(): the paper's "buffer
// occupancy level". It may exceed 1.0 at a source holding pinned bundles
// beyond capacity.
//
//dtn:hotpath
func (s *Store) Occupancy() float64 {
	return (float64(len(s.copies)) + s.controlLoad) / float64(s.cap)
}

// Has reports whether a copy of id is stored.
//
//dtn:hotpath
func (s *Store) Has(id bundle.ID) bool {
	_, ok := s.copies[id]
	return ok
}

// Get returns the stored copy of id, or nil.
//
//dtn:hotpath
func (s *Store) Get(id bundle.ID) *bundle.Copy { return s.copies[id] }

// searchIdx returns the position of id in the order index, or the
// position it would be inserted at.
//
//dtn:hotpath
func (s *Store) searchIdx(id bundle.ID) int {
	return sort.Search(len(s.order), func(i int) bool {
		return !s.order[i].Bundle.ID.Less(id)
	})
}

// Put stores a copy. Unpinned copies are refused with ErrFull when no
// unpinned slot is free; a second copy of the same bundle is refused with
// ErrDuplicate.
//
//dtn:hotpath
func (s *Store) Put(c *bundle.Copy) error {
	// Refusals return the bare sentinels: under buffer pressure they
	// are steady-state control flow on the contact hot path, and
	// callers only ever branch with errors.Is — formatting a wrapped
	// message here allocated on every refused transfer.
	if _, ok := s.copies[c.Bundle.ID]; ok {
		return ErrDuplicate
	}
	if !c.Pinned && s.Free() <= 0 {
		return ErrFull
	}
	if !c.Pinned && !s.FitsBytes(c.Bundle.Meta.Size) {
		return ErrFullBytes
	}
	s.copies[c.Bundle.ID] = c
	i := s.searchIdx(c.Bundle.ID)
	s.order = append(s.order, nil)
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = c
	s.totalBytes += c.Bundle.Meta.Size
	if c.Pinned {
		s.pinned++
	} else {
		s.unpinnedBytes += c.Bundle.Meta.Size
		if c.Expiry < s.minExpiry {
			s.minExpiry = c.Expiry
		}
	}
	return nil
}

// Remove deletes the copy of id, reporting whether it was present.
// Pinned copies can be removed — delivery and immunity purge both apply
// to sources once a bundle is known delivered.
//
//dtn:hotpath
func (s *Store) Remove(id bundle.ID) bool {
	c, ok := s.copies[id]
	if !ok {
		return false
	}
	delete(s.copies, id)
	i := s.searchIdx(id)
	copy(s.order[i:], s.order[i+1:])
	s.order[len(s.order)-1] = nil
	s.order = s.order[:len(s.order)-1]
	s.totalBytes -= c.Bundle.Meta.Size
	if c.Pinned {
		s.pinned--
	} else {
		s.unpinnedBytes -= c.Bundle.Meta.Size
	}
	if s.Unpinned() == 0 {
		// Cheap exact reset; otherwise the stale-low bound stands until
		// the next full purge scan recomputes it.
		s.minExpiry = sim.Infinity
	}
	return true
}

// Restore stores a copy while rebuilding a store from a snapshot
// (internal/dist workers reconstruct node state between epochs): it
// performs Put's indexing and accounting but skips the capacity checks,
// which legal live contents can fail — control load can push Free()
// to zero with copies still stored, and pinned source bundles exceed
// capacity by design. The duplicate check stays: a snapshot with two
// copies of one bundle is corrupt. Restoring into an empty store leaves
// minExpiry at the exact minimum over the unpinned copies, which is
// observationally equivalent to the live store's conservative bound
// (a stale-low bound only ever costs a no-op purge scan).
func (s *Store) Restore(c *bundle.Copy) error {
	if _, ok := s.copies[c.Bundle.ID]; ok {
		return ErrDuplicate
	}
	s.copies[c.Bundle.ID] = c
	i := s.searchIdx(c.Bundle.ID)
	s.order = append(s.order, nil)
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = c
	s.totalBytes += c.Bundle.Meta.Size
	if c.Pinned {
		s.pinned++
	} else {
		s.unpinnedBytes += c.Bundle.Meta.Size
		if c.Expiry < s.minExpiry {
			s.minExpiry = c.Expiry
		}
	}
	return nil
}

// NoteExpiry tells the store that the stored copy c's Expiry was lowered
// in place (TTL renewal, EC ageing). The store folds it into the
// min-expiry bound; without the call PurgeExpired's fast path could skip
// a lapsed copy.
//
//dtn:hotpath
func (s *Store) NoteExpiry(c *bundle.Copy) {
	if !c.Pinned && c.Expiry < s.minExpiry {
		s.minExpiry = c.Expiry
	}
}

// Range calls fn for every stored copy in ascending bundle-ID order,
// stopping early if fn returns false. It allocates nothing. The store
// must not be mutated during the iteration.
//
//dtn:hotpath
func (s *Store) Range(fn func(*bundle.Copy) bool) {
	for _, c := range s.order {
		if !fn(c) {
			return
		}
	}
}

// AppendIDs appends the stored bundle IDs in ascending order to dst and
// returns the extended slice, allocating only when dst lacks capacity.
//
//dtn:hotpath
func (s *Store) AppendIDs(dst []bundle.ID) []bundle.ID {
	for _, c := range s.order {
		dst = append(dst, c.Bundle.ID)
	}
	return dst
}

// Items returns a fresh slice of the stored copies in deterministic
// bundle-ID order. Hot paths should prefer Range/AppendIDs, which do
// not allocate.
func (s *Store) Items() []*bundle.Copy {
	return append([]*bundle.Copy(nil), s.order...)
}

// IDs returns the stored bundle IDs in deterministic order.
func (s *Store) IDs() []bundle.ID {
	return s.AppendIDs(make([]bundle.ID, 0, len(s.order)))
}

// Vector returns a summary vector of the store's current contents.
func (s *Store) Vector() *bundle.SummaryVector {
	v := bundle.NewSummaryVector()
	for _, c := range s.order {
		v.Add(c.Bundle.ID)
	}
	return v
}

// PurgeExpired removes every unpinned copy whose TTL lapsed at or before
// now and returns the purged copies in deterministic order. Pinned
// copies never expire: a source holds its own bundles until delivery.
// When no expiry can have lapsed (tracked via the min-expiry bound) it
// returns nil without scanning or allocating.
//
//dtn:hotpath
func (s *Store) PurgeExpired(now sim.Time) []*bundle.Copy {
	if now < s.minExpiry {
		return nil
	}
	return s.purge(func(c *bundle.Copy) bool { return !c.Pinned && c.Expired(now) })
}

// PurgeMatching removes every copy (pinned included) for which match
// returns true and returns the removed copies in deterministic order.
// Immunity protocols use this to discard delivered bundles everywhere,
// including the source.
func (s *Store) PurgeMatching(match func(*bundle.Copy) bool) []*bundle.Copy {
	return s.purge(match)
}

// purge removes matching copies in one in-order pass over the index,
// recomputing the pinned count and the exact min-expiry bound on the
// way. It allocates only when something actually matches.
func (s *Store) purge(match func(*bundle.Copy) bool) []*bundle.Copy {
	var purged []*bundle.Copy
	kept := s.order[:0]
	minExpiry := sim.Infinity
	pinned := 0
	var unpinnedBytes, totalBytes int64
	for _, c := range s.order {
		if match(c) {
			delete(s.copies, c.Bundle.ID)
			purged = append(purged, c)
			continue
		}
		totalBytes += c.Bundle.Meta.Size
		if c.Pinned {
			pinned++
		} else {
			unpinnedBytes += c.Bundle.Meta.Size
			if c.Expiry < minExpiry {
				minExpiry = c.Expiry
			}
		}
		kept = append(kept, c)
	}
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = kept
	s.pinned = pinned
	s.minExpiry = minExpiry
	s.unpinnedBytes, s.totalBytes = unpinnedBytes, totalBytes
	return purged
}
