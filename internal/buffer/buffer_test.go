package buffer

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

func mk(seq int) *bundle.Copy {
	return &bundle.Copy{
		Bundle: &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: seq}, Dst: 1},
		Expiry: sim.Infinity,
	}
}

func mkPinned(seq int) *bundle.Copy {
	c := mk(seq)
	c.Pinned = true
	return c
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestPutGetRemove(t *testing.T) {
	s := New(3)
	c := mk(1)
	if err := s.Put(c); err != nil {
		t.Fatal(err)
	}
	if !s.Has(c.Bundle.ID) || s.Get(c.Bundle.ID) != c || s.Len() != 1 {
		t.Fatal("store state wrong after Put")
	}
	if err := s.Put(mk(1)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Put: err=%v", err)
	}
	if !s.Remove(c.Bundle.ID) {
		t.Fatal("Remove returned false for present bundle")
	}
	if s.Remove(c.Bundle.ID) {
		t.Fatal("Remove returned true for absent bundle")
	}
}

func TestCapacityEnforced(t *testing.T) {
	s := New(2)
	if err := s.Put(mk(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mk(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mk(3)); !errors.Is(err, ErrFull) {
		t.Fatalf("over-capacity Put: err=%v", err)
	}
	if s.Free() != 0 {
		t.Errorf("Free = %d, want 0", s.Free())
	}
}

func TestPinnedBypassesCapacity(t *testing.T) {
	s := New(2)
	for i := 0; i < 5; i++ {
		if err := s.Put(mkPinned(i)); err != nil {
			t.Fatalf("pinned Put %d: %v", i, err)
		}
	}
	if s.Len() != 5 || s.Unpinned() != 0 || s.Free() != 2 {
		t.Fatalf("len=%d unpinned=%d free=%d", s.Len(), s.Unpinned(), s.Free())
	}
	// Unpinned slots still available despite 5 pinned copies.
	if err := s.Put(mk(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mk(11)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mk(12)); !errors.Is(err, ErrFull) {
		t.Fatalf("unpinned over capacity: err=%v", err)
	}
}

func TestOccupancyCanExceedOne(t *testing.T) {
	s := New(2)
	for i := 0; i < 6; i++ {
		if err := s.Put(mkPinned(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Occupancy(); got != 3.0 {
		t.Errorf("Occupancy = %v, want 3.0", got)
	}
}

func TestItemsAndIDsDeterministic(t *testing.T) {
	s := New(10)
	for _, seq := range []int{5, 1, 9, 3} {
		if err := s.Put(mk(seq)); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.IDs()
	want := []int{1, 3, 5, 9}
	for i, id := range ids {
		if id.Seq != want[i] {
			t.Fatalf("IDs() = %v", ids)
		}
	}
	items := s.Items()
	for i, c := range items {
		if c.Bundle.ID.Seq != want[i] {
			t.Fatalf("Items() order wrong: %v", c.Bundle.ID)
		}
	}
	v := s.Vector()
	if v.Len() != 4 || !v.Has(bundle.ID{Src: 0, Seq: 9}) {
		t.Error("Vector() contents wrong")
	}
}

func TestPurgeExpired(t *testing.T) {
	s := New(10)
	a := mk(1)
	a.Expiry = 100
	b := mk(2)
	b.Expiry = 200
	p := mkPinned(3)
	p.Expiry = 50 // pinned: must survive regardless
	for _, c := range []*bundle.Copy{a, b, p} {
		if err := s.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	purged := s.PurgeExpired(150)
	if len(purged) != 1 || purged[0] != a {
		t.Fatalf("purged %v, want [a]", purged)
	}
	if !s.Has(b.Bundle.ID) || !s.Has(p.Bundle.ID) {
		t.Error("purge removed live or pinned copies")
	}
}

func TestPurgeMatching(t *testing.T) {
	s := New(10)
	for i := 1; i <= 5; i++ {
		c := mk(i)
		if i == 5 {
			c.Pinned = true
		}
		if err := s.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	purged := s.PurgeMatching(func(c *bundle.Copy) bool { return c.Bundle.ID.Seq >= 4 })
	if len(purged) != 2 {
		t.Fatalf("purged %d, want 2 (pinned included)", len(purged))
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

// Property: under any sequence of Put/Remove, Unpinned() never exceeds
// capacity, and Len() == Unpinned() + pinned count.
func TestStoreInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		s := New(4)
		pinned := 0
		live := map[bundle.ID]bool{}
		for op := 0; op < 200; op++ {
			seq := r.IntN(20)
			id := bundle.ID{Src: contact.NodeID(0), Seq: seq}
			if r.IntN(3) == 0 && live[id] {
				wasPinned := s.Get(id).Pinned
				s.Remove(id)
				delete(live, id)
				if wasPinned {
					pinned--
				}
			} else if !live[id] {
				c := mk(seq)
				c.Pinned = r.IntN(4) == 0
				if err := s.Put(c); err == nil {
					live[id] = true
					if c.Pinned {
						pinned++
					}
				} else if c.Pinned {
					return false // pinned Put must never fail
				}
			}
			if s.Unpinned() > s.Cap() {
				return false
			}
			if s.Len() != len(live) || s.Len() != s.Unpinned()+pinned {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPurgeExpiredEarlyExit pins the satellite fix: PurgeExpired must
// not allocate or scan when the store is empty, holds only pinned
// copies, or when nothing can have lapsed yet.
func TestPurgeExpiredEarlyExit(t *testing.T) {
	empty := New(4)
	pinnedOnly := New(4)
	p := mkPinned(1)
	p.Expiry = 50 // pinned never expires; must not arm the fast path
	if err := pinnedOnly.Put(p); err != nil {
		t.Fatal(err)
	}
	future := New(4)
	c := mk(1)
	c.Expiry = 1000
	if err := future.Put(c); err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*Store{"empty": empty, "pinned-only": pinnedOnly, "unexpired": future} {
		if got := s.PurgeExpired(500); got != nil {
			t.Errorf("%s: PurgeExpired = %v, want nil", name, got)
		}
		if allocs := testing.AllocsPerRun(100, func() { s.PurgeExpired(500) }); allocs != 0 {
			t.Errorf("%s: PurgeExpired fast path allocates %v/op", name, allocs)
		}
	}
	// The fast path must still fire once a deadline actually lapses.
	if got := future.PurgeExpired(1000); len(got) != 1 || got[0] != c {
		t.Fatalf("PurgeExpired(1000) = %v, want [c]", got)
	}
}

// TestHotPathZeroAlloc asserts the per-contact operations allocate
// nothing: the capacity check, in-order iteration, ID collection into a
// reused buffer, and the idle purge.
func TestHotPathZeroAlloc(t *testing.T) {
	s := New(11)
	for i := 1; i <= 10; i++ {
		c := mk(i)
		c.Expiry = sim.Time(1 << 40)
		if err := s.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]bundle.ID, 0, 16)
	cases := map[string]func(){
		"Free":         func() { _ = s.Free() },
		"Unpinned":     func() { _ = s.Unpinned() },
		"Range":        func() { s.Range(func(*bundle.Copy) bool { return true }) },
		"AppendIDs":    func() { ids = s.AppendIDs(ids[:0]) },
		"PurgeExpired": func() { s.PurgeExpired(100) },
		"NoteExpiry":   func() { s.NoteExpiry(s.Get(bundle.ID{Src: 0, Seq: 1})) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %v/op, want 0", name, allocs)
		}
	}
}

// TestRangeOrderAndEarlyStop checks Range iterates in ascending ID
// order and honours an early stop.
func TestRangeOrderAndEarlyStop(t *testing.T) {
	s := New(10)
	for _, seq := range []int{5, 1, 9, 3} {
		if err := s.Put(mk(seq)); err != nil {
			t.Fatal(err)
		}
	}
	var seen []int
	s.Range(func(c *bundle.Copy) bool {
		seen = append(seen, c.Bundle.ID.Seq)
		return true
	})
	want := []int{1, 3, 5, 9}
	for i, seq := range seen {
		if seq != want[i] {
			t.Fatalf("Range order = %v, want %v", seen, want)
		}
	}
	n := 0
	s.Range(func(*bundle.Copy) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d copies, want 2", n)
	}
	got := s.AppendIDs(nil)
	if len(got) != 4 || got[0].Seq != 1 || got[3].Seq != 9 {
		t.Errorf("AppendIDs = %v", got)
	}
}

// TestMinExpiryTracking exercises the conservative min-expiry bound:
// in-place lowering via NoteExpiry must defeat the fast path, and purge
// scans must recompute the bound exactly so later purges work.
func TestMinExpiryTracking(t *testing.T) {
	s := New(10)
	a := mk(1)
	a.Expiry = 1000
	b := mk(2)
	b.Expiry = 2000
	for _, c := range []*bundle.Copy{a, b} {
		if err := s.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	// Lower a's deadline in place (as TTL ageing does) and notify.
	a.Expiry = 100
	s.NoteExpiry(a)
	if purged := s.PurgeExpired(100); len(purged) != 1 || purged[0] != a {
		t.Fatalf("purged %v, want [a]", purged)
	}
	// The purge scan recomputed the bound from survivors: b at 2000.
	if purged := s.PurgeExpired(1500); purged != nil {
		t.Fatalf("purged %v, want nil", purged)
	}
	if purged := s.PurgeExpired(2000); len(purged) != 1 || purged[0] != b {
		t.Fatalf("purged %v, want [b]", purged)
	}
	// Empty again: the bound must have reset.
	if purged := s.PurgeExpired(1 << 50); purged != nil {
		t.Fatalf("purged %v from empty store", purged)
	}
}

// TestIndexConsistencyProperty hammers Put/Remove/PurgeExpired/
// PurgeMatching with random churn and cross-checks the incremental
// index (order, pinned count, min-expiry fast path) against scratch
// recomputation.
func TestIndexConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		s := New(6)
		now := sim.Time(0)
		for op := 0; op < 300; op++ {
			now += sim.Time(r.IntN(50))
			switch r.IntN(10) {
			case 0, 1, 2, 3, 4:
				c := mk(r.IntN(30))
				c.Pinned = r.IntN(5) == 0
				c.Expiry = now + sim.Time(r.IntN(200))
				if r.IntN(4) == 0 {
					c.Expiry = sim.Infinity
				}
				_ = s.Put(c)
			case 5, 6:
				s.Remove(bundle.ID{Src: 0, Seq: r.IntN(30)})
			case 7:
				for _, c := range s.PurgeExpired(now) {
					if c.Pinned || !c.Expired(now) {
						return false
					}
				}
			case 8:
				s.PurgeMatching(func(c *bundle.Copy) bool { return c.Bundle.ID.Seq%5 == int(seed%5) })
			case 9:
				if c := s.Get(bundle.ID{Src: 0, Seq: r.IntN(30)}); c != nil && !c.Pinned {
					if e := now + sim.Time(r.IntN(100)); e < c.Expiry {
						c.Expiry = e
						s.NoteExpiry(c)
					}
				}
			}
			// Index must agree with the membership map.
			ids := s.AppendIDs(nil)
			if len(ids) != s.Len() {
				return false
			}
			pinned := 0
			for i, id := range ids {
				if i > 0 && !ids[i-1].Less(id) {
					return false // out of order or duplicate
				}
				c := s.Get(id)
				if c == nil {
					return false
				}
				if c.Pinned {
					pinned++
				}
			}
			if s.Unpinned() != s.Len()-pinned {
				return false
			}
			// The fast path must never hide a lapsed unpinned copy: a
			// purge at now must leave none behind.
			for _, c := range s.PurgeExpired(now) {
				if c.Pinned || !c.Expired(now) {
					return false
				}
			}
			lapsed := false
			s.Range(func(c *bundle.Copy) bool {
				if !c.Pinned && c.Expired(now) {
					lapsed = true
				}
				return !lapsed
			})
			if lapsed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestControlLoadAffectsFreeAndOccupancy(t *testing.T) {
	s := New(10)
	for i := 0; i < 4; i++ {
		if err := s.Put(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Free() != 6 {
		t.Fatalf("Free = %d, want 6", s.Free())
	}
	s.SetControlLoad(2.5) // 25 stored immunity records at 0.1 slots each
	if s.Free() != 4 {
		t.Errorf("Free with control load 2.5 = %d, want 4 (whole slots)", s.Free())
	}
	if got, want := s.Occupancy(), (4+2.5)/10.0; got != want {
		t.Errorf("Occupancy = %v, want %v", got, want)
	}
	if s.ControlLoad() != 2.5 {
		t.Errorf("ControlLoad = %v", s.ControlLoad())
	}
	s.SetControlLoad(-1)
	if s.ControlLoad() != 0 {
		t.Error("negative control load not clamped")
	}
}

func TestControlLoadBlocksPut(t *testing.T) {
	s := New(3)
	s.SetControlLoad(2.2) // consumes 2 whole slots
	if err := s.Put(mk(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mk(2)); !errors.Is(err, ErrFull) {
		t.Fatalf("Put with control-consumed buffer: err=%v, want ErrFull", err)
	}
	// Pinned copies still bypass.
	if err := s.Put(mkPinned(3)); err != nil {
		t.Fatal(err)
	}
	if s.Free() != 0 {
		t.Errorf("Free = %d, want 0", s.Free())
	}
}
