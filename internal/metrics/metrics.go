// Package metrics implements the paper's four evaluation metrics (§IV):
//
//   - Buffer occupancy level: "the average buffer utilization of all
//     nodes" — sampled periodically, averaged over nodes then time.
//   - Bundle duplication rate: "the number of nodes in the network that
//     has a copy of a given bundle over the total number of nodes" —
//     averaged over bundles then time.
//   - Delivery ratio: received bundles over bundles sent.
//   - Delay: "the time taken for all bundles to arrive" (makespan),
//     recorded only for runs that complete.
//
// plus the signaling-overhead counter used by the §V-C comparison of
// immunity variants.
//
// The engine computes one Sample per sampling period via Snapshot and
// streams it — together with generate/transmit/deliver/drop events — to
// every core.Observer. Collector is the engine's built-in observer: it
// folds samples into the time-averaged occupancy and duplication the
// Result reports. It satisfies core.Observer structurally, without
// importing core.
package metrics

import (
	"fmt"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
	"dtnsim/internal/stats"
)

// Sample is one periodic observation of the running simulation,
// computed by Snapshot at every sampling tick.
type Sample struct {
	// Now is the virtual time of the observation.
	Now sim.Time
	// Occupancy is the node-averaged buffer occupancy level.
	Occupancy float64
	// Duplication is the bundle-averaged duplication rate over the
	// Alive bundles; zero when none is alive.
	Duplication float64
	// Alive counts tracked bundles with at least one stored copy.
	// Duplication is conditioned on them: a bundle whose copies were
	// all purged (immunity) no longer has a duplication rate, rather
	// than dragging the average toward zero. This matches the paper's
	// reading, where effective purging and a high reported duplication
	// rate coexist (Fig. 9/10 vs §II-B).
	Alive int
	// Tracked counts workload bundles generated so far.
	Tracked int
}

// Snapshot computes one periodic observation over the population by
// full scan: O(nodes × tracked) for the duplication term. The engine's
// hot path uses HolderTracker.Sample instead, which maintains the
// holder counts incrementally and reproduces this function's result
// bit-for-bit (the float accumulation order is identical); Snapshot is
// kept as the reference implementation the equivalence tests and the
// paired BenchmarkSnapshot* compare against.
func Snapshot(nodes []*node.Node, tracked []*bundle.Bundle, now sim.Time) Sample {
	s := Sample{Now: now, Tracked: len(tracked)}
	var occSum float64
	for _, n := range nodes {
		occSum += n.Store.Occupancy()
	}
	s.Occupancy = occSum / float64(len(nodes))

	var dupSum float64
	for _, b := range tracked {
		holders := 0
		for _, n := range nodes {
			if n.Store.Has(b.ID) {
				holders++
			}
		}
		if holders == 0 {
			continue
		}
		s.Alive++
		dupSum += float64(holders) / float64(len(nodes))
	}
	if s.Alive > 0 {
		s.Duplication = dupSum / float64(s.Alive)
	}
	return s
}

// HolderTracker maintains, for every tracked workload bundle, the
// number of node stores currently holding a copy of it — updated
// incrementally from the engine's store/drop/deliver bookkeeping
// instead of recomputed by scanning every store at every sampling tick.
// Sample therefore costs O(nodes + tracked) rather than
// O(nodes × tracked).
//
// The engine is the single writer: Track on generation, Inc whenever a
// copy enters a store (the source's pinned Put, a relay's admission),
// Dec whenever a stored copy leaves one (eviction, TTL expiry, immunity
// purge — but not refusals, which never stored the copy). Bookkeeping
// bugs panic immediately rather than silently skewing the paper's
// duplication metric.
type HolderTracker struct {
	idx map[bundle.ID]int
	// counts[i] is the holder count of the i-th tracked bundle, in
	// creation order — the same order Snapshot scans, which keeps the
	// duplication sum's float accumulation bit-identical.
	counts []int
}

// NewHolderTracker returns an empty tracker.
func NewHolderTracker() *HolderTracker {
	return &HolderTracker{idx: make(map[bundle.ID]int)}
}

// Track registers a newly generated workload bundle with zero holders.
func (t *HolderTracker) Track(id bundle.ID) {
	if _, dup := t.idx[id]; dup {
		panic(fmt.Sprintf("metrics: bundle %v tracked twice", id))
	}
	t.idx[id] = len(t.counts)
	t.counts = append(t.counts, 0)
}

// Tracked returns the number of registered bundles.
func (t *HolderTracker) Tracked() int { return len(t.counts) }

// Inc records one more store holding a copy of id.
//
//dtn:hotpath
func (t *HolderTracker) Inc(id bundle.ID) {
	i, ok := t.idx[id]
	if !ok {
		panic(fmt.Sprintf("metrics: Inc on untracked bundle %v", id))
	}
	t.counts[i]++
}

// Dec records one store shedding its copy of id.
//
//dtn:hotpath
func (t *HolderTracker) Dec(id bundle.ID) {
	i, ok := t.idx[id]
	if !ok {
		panic(fmt.Sprintf("metrics: Dec on untracked bundle %v", id))
	}
	if t.counts[i] == 0 {
		panic(fmt.Sprintf("metrics: holder count of %v went negative", id))
	}
	t.counts[i]--
}

// Holders returns the current holder count of id (zero if untracked).
//
//dtn:hotpath
func (t *HolderTracker) Holders(id bundle.ID) int {
	if i, ok := t.idx[id]; ok {
		return t.counts[i]
	}
	return 0
}

// Sample computes one periodic observation from the maintained counts:
// bit-identical to Snapshot over the same population, without the
// per-bundle store scans.
//
//dtn:hotpath
func (t *HolderTracker) Sample(nodes []*node.Node, now sim.Time) Sample {
	s := Sample{Now: now, Tracked: len(t.counts)}
	var occSum float64
	for _, n := range nodes {
		occSum += n.Store.Occupancy()
	}
	s.Occupancy = occSum / float64(len(nodes))

	var dupSum float64
	for _, holders := range t.counts {
		if holders == 0 {
			continue
		}
		s.Alive++
		dupSum += float64(holders) / float64(len(nodes))
	}
	if s.Alive > 0 {
		s.Duplication = dupSum / float64(s.Alive)
	}
	return s
}

// SampleFunc computes one periodic observation like Sample, reading
// each of the n nodes' occupancy through occ instead of a node slice:
// the distributed coordinator samples the backend's authoritative state
// without materializing local nodes. Bit-identical to Sample when
// occ(i) returns what nodes[i].Store.Occupancy() would — the float
// accumulation order is the same. Kept as a duplicate of Sample rather
// than a shared closure-taking core so the in-process hot path stays
// call-free.
//
//dtn:hotpath
func (t *HolderTracker) SampleFunc(n int, occ func(int) float64, now sim.Time) Sample {
	s := Sample{Now: now, Tracked: len(t.counts)}
	var occSum float64
	for i := 0; i < n; i++ {
		occSum += occ(i)
	}
	s.Occupancy = occSum / float64(n)

	var dupSum float64
	for _, holders := range t.counts {
		if holders == 0 {
			continue
		}
		s.Alive++
		dupSum += float64(holders) / float64(n)
	}
	if s.Alive > 0 {
		s.Duplication = dupSum / float64(s.Alive)
	}
	return s
}

// Collector aggregates streamed samples into the run's time-averaged
// metrics. It is the engine's built-in core.Observer.
type Collector struct {
	occ stats.Welford
	dup stats.Welford

	samples       int64
	generated     int64
	transmissions int64
	delivered     int64
	drops         int64
	// byReason holds per-reason drop counts keyed by the node.DropReason
	// enum; their sum plus invalidDrops is drops. Kept so tests can
	// cross-check the observer stream against the engine's node counters
	// (Refused/Evicted/Expired/ByteDropped) and catch bookkeeping drift.
	byReason map[node.DropReason]int64
	// invalidDrops counts drops whose reason is outside the enum — a
	// reporting bug TestCollectorMatchesNodeCounters pins at zero.
	invalidDrops int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byReason: make(map[node.DropReason]int64, len(node.DropReasons()))}
}

// OnGenerate implements core.Observer.
func (c *Collector) OnGenerate(bundle.ID, contact.NodeID, sim.Time) { c.generated++ }

// OnTransmit implements core.Observer.
func (c *Collector) OnTransmit(_, _ contact.NodeID, _ bundle.ID, _ sim.Time) { c.transmissions++ }

// OnDeliver implements core.Observer.
func (c *Collector) OnDeliver(_ bundle.ID, _ contact.NodeID, _ float64, _ sim.Time) { c.delivered++ }

// OnDrop implements core.Observer.
func (c *Collector) OnDrop(_ contact.NodeID, _ bundle.ID, reason node.DropReason, _ sim.Time) {
	c.drops++
	if !reason.Valid() {
		c.invalidDrops++
		return
	}
	c.byReason[reason]++
}

// OnSample implements core.Observer: fold one periodic observation into
// the time averages. Duplication samples with no alive bundle are
// skipped, not zero-counted (see Sample.Alive).
func (c *Collector) OnSample(s Sample) {
	c.samples++
	c.occ.Add(s.Occupancy)
	if s.Tracked == 0 {
		return
	}
	if s.Alive > 0 {
		c.dup.Add(s.Duplication)
	}
}

// Samples returns the number of observations folded in.
func (c *Collector) Samples() int64 { return c.samples }

// Generated, Delivered, Transmissions and Drops report the event counts
// the collector has seen, for cross-checking engine bookkeeping.
func (c *Collector) Generated() int64     { return c.generated }
func (c *Collector) Delivered() int64     { return c.delivered }
func (c *Collector) Transmissions() int64 { return c.transmissions }
func (c *Collector) Drops() int64         { return c.drops }

// DropsByReason returns the number of drops observed with the given
// reason. Unknown reasons return zero.
func (c *Collector) DropsByReason(reason node.DropReason) int64 { return c.byReason[reason] }

// InvalidDrops returns the number of drops whose reason fell outside
// the node.DropReason enum; anything above zero is a reporting bug.
func (c *Collector) InvalidDrops() int64 { return c.invalidDrops }

// MeanOccupancy returns the time-averaged buffer occupancy level.
func (c *Collector) MeanOccupancy() float64 { return c.occ.Mean() }

// MeanDuplication returns the time-averaged bundle duplication rate.
func (c *Collector) MeanDuplication() float64 { return c.dup.Mean() }

// Overhead sums control records transmitted across the population: the
// paper's signaling overhead.
func Overhead(nodes []*node.Node) int64 {
	var total int64
	for _, n := range nodes {
		total += n.ControlSent
	}
	return total
}

// DataTransmissions sums bundle transmissions across the population.
func DataTransmissions(nodes []*node.Node) int64 {
	var total int64
	for _, n := range nodes {
		total += n.DataSent
	}
	return total
}
