// Package metrics implements the paper's four evaluation metrics (§IV):
//
//   - Buffer occupancy level: "the average buffer utilization of all
//     nodes" — sampled periodically, averaged over nodes then time.
//   - Bundle duplication rate: "the number of nodes in the network that
//     has a copy of a given bundle over the total number of nodes" —
//     averaged over bundles then time.
//   - Delivery ratio: received bundles over bundles sent.
//   - Delay: "the time taken for all bundles to arrive" (makespan),
//     recorded only for runs that complete.
//
// plus the signaling-overhead counter used by the §V-C comparison of
// immunity variants.
package metrics

import (
	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
	"dtnsim/internal/stats"
)

// Collector samples the running simulation.
type Collector struct {
	nodes   []*node.Node
	tracked []*bundle.Bundle

	occ stats.Welford
	dup stats.Welford

	samples int64
}

// NewCollector returns a collector over the given population.
func NewCollector(nodes []*node.Node) *Collector {
	return &Collector{nodes: nodes}
}

// Track registers a generated bundle for duplication accounting.
func (c *Collector) Track(b *bundle.Bundle) { c.tracked = append(c.tracked, b) }

// Sample records one periodic observation of occupancy and duplication.
func (c *Collector) Sample(now sim.Time) {
	c.samples++
	var occSum float64
	for _, n := range c.nodes {
		occSum += n.Store.Occupancy()
	}
	c.occ.Add(occSum / float64(len(c.nodes)))

	if len(c.tracked) == 0 {
		return
	}
	// Duplication is conditioned on bundles that still exist somewhere:
	// a bundle whose copies were all purged (immunity) no longer has a
	// duplication rate, rather than dragging the average toward zero.
	// This matches the paper's reading, where effective purging and a
	// high reported duplication rate coexist (Fig. 9/10 vs §II-B).
	var dupSum float64
	alive := 0
	for _, b := range c.tracked {
		holders := 0
		for _, n := range c.nodes {
			if n.Store.Has(b.ID) {
				holders++
			}
		}
		if holders == 0 {
			continue
		}
		alive++
		dupSum += float64(holders) / float64(len(c.nodes))
	}
	if alive > 0 {
		c.dup.Add(dupSum / float64(alive))
	}
}

// Samples returns the number of observations taken.
func (c *Collector) Samples() int64 { return c.samples }

// MeanOccupancy returns the time-averaged buffer occupancy level.
func (c *Collector) MeanOccupancy() float64 { return c.occ.Mean() }

// MeanDuplication returns the time-averaged bundle duplication rate.
func (c *Collector) MeanDuplication() float64 { return c.dup.Mean() }

// Overhead sums control records transmitted across the population: the
// paper's signaling overhead.
func Overhead(nodes []*node.Node) int64 {
	var total int64
	for _, n := range nodes {
		total += n.ControlSent
	}
	return total
}

// DataTransmissions sums bundle transmissions across the population.
func DataTransmissions(nodes []*node.Node) int64 {
	var total int64
	for _, n := range nodes {
		total += n.DataSent
	}
	return total
}
