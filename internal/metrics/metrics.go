// Package metrics implements the paper's four evaluation metrics (§IV):
//
//   - Buffer occupancy level: "the average buffer utilization of all
//     nodes" — sampled periodically, averaged over nodes then time.
//   - Bundle duplication rate: "the number of nodes in the network that
//     has a copy of a given bundle over the total number of nodes" —
//     averaged over bundles then time.
//   - Delivery ratio: received bundles over bundles sent.
//   - Delay: "the time taken for all bundles to arrive" (makespan),
//     recorded only for runs that complete.
//
// plus the signaling-overhead counter used by the §V-C comparison of
// immunity variants.
//
// The engine computes one Sample per sampling period via Snapshot and
// streams it — together with generate/transmit/deliver/drop events — to
// every core.Observer. Collector is the engine's built-in observer: it
// folds samples into the time-averaged occupancy and duplication the
// Result reports. It satisfies core.Observer structurally, without
// importing core.
package metrics

import (
	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
	"dtnsim/internal/stats"
)

// Sample is one periodic observation of the running simulation,
// computed by Snapshot at every sampling tick.
type Sample struct {
	// Now is the virtual time of the observation.
	Now sim.Time
	// Occupancy is the node-averaged buffer occupancy level.
	Occupancy float64
	// Duplication is the bundle-averaged duplication rate over the
	// Alive bundles; zero when none is alive.
	Duplication float64
	// Alive counts tracked bundles with at least one stored copy.
	// Duplication is conditioned on them: a bundle whose copies were
	// all purged (immunity) no longer has a duplication rate, rather
	// than dragging the average toward zero. This matches the paper's
	// reading, where effective purging and a high reported duplication
	// rate coexist (Fig. 9/10 vs §II-B).
	Alive int
	// Tracked counts workload bundles generated so far.
	Tracked int
}

// Snapshot computes one periodic observation over the population.
func Snapshot(nodes []*node.Node, tracked []*bundle.Bundle, now sim.Time) Sample {
	s := Sample{Now: now, Tracked: len(tracked)}
	var occSum float64
	for _, n := range nodes {
		occSum += n.Store.Occupancy()
	}
	s.Occupancy = occSum / float64(len(nodes))

	var dupSum float64
	for _, b := range tracked {
		holders := 0
		for _, n := range nodes {
			if n.Store.Has(b.ID) {
				holders++
			}
		}
		if holders == 0 {
			continue
		}
		s.Alive++
		dupSum += float64(holders) / float64(len(nodes))
	}
	if s.Alive > 0 {
		s.Duplication = dupSum / float64(s.Alive)
	}
	return s
}

// Collector aggregates streamed samples into the run's time-averaged
// metrics. It is the engine's built-in core.Observer.
type Collector struct {
	occ stats.Welford
	dup stats.Welford

	samples       int64
	generated     int64
	transmissions int64
	delivered     int64
	drops         int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// OnGenerate implements core.Observer.
func (c *Collector) OnGenerate(bundle.ID, contact.NodeID, sim.Time) { c.generated++ }

// OnTransmit implements core.Observer.
func (c *Collector) OnTransmit(_, _ contact.NodeID, _ bundle.ID, _ sim.Time) { c.transmissions++ }

// OnDeliver implements core.Observer.
func (c *Collector) OnDeliver(_ bundle.ID, _ contact.NodeID, _ float64, _ sim.Time) { c.delivered++ }

// OnDrop implements core.Observer.
func (c *Collector) OnDrop(_ contact.NodeID, _ bundle.ID, _ node.DropReason, _ sim.Time) { c.drops++ }

// OnSample implements core.Observer: fold one periodic observation into
// the time averages. Duplication samples with no alive bundle are
// skipped, not zero-counted (see Sample.Alive).
func (c *Collector) OnSample(s Sample) {
	c.samples++
	c.occ.Add(s.Occupancy)
	if s.Tracked == 0 {
		return
	}
	if s.Alive > 0 {
		c.dup.Add(s.Duplication)
	}
}

// Samples returns the number of observations folded in.
func (c *Collector) Samples() int64 { return c.samples }

// Generated, Delivered, Transmissions and Drops report the event counts
// the collector has seen, for cross-checking engine bookkeeping.
func (c *Collector) Generated() int64     { return c.generated }
func (c *Collector) Delivered() int64     { return c.delivered }
func (c *Collector) Transmissions() int64 { return c.transmissions }
func (c *Collector) Drops() int64         { return c.drops }

// MeanOccupancy returns the time-averaged buffer occupancy level.
func (c *Collector) MeanOccupancy() float64 { return c.occ.Mean() }

// MeanDuplication returns the time-averaged bundle duplication rate.
func (c *Collector) MeanDuplication() float64 { return c.dup.Mean() }

// Overhead sums control records transmitted across the population: the
// paper's signaling overhead.
func Overhead(nodes []*node.Node) int64 {
	var total int64
	for _, n := range nodes {
		total += n.ControlSent
	}
	return total
}

// DataTransmissions sums bundle transmissions across the population.
func DataTransmissions(nodes []*node.Node) int64 {
	var total int64
	for _, n := range nodes {
		total += n.DataSent
	}
	return total
}
