package metrics

// Hot-path benchmarks for the periodic sampling tick. BenchmarkSnapshot
// times the reference full-scan computation (O(nodes × tracked) for the
// duplication term); the paired incremental-tracker benchmark times the
// engine's indexed path over identical state. cmd/benchguard compares
// the pair's speedup against the baseline in BENCH_hotpath.json.

import (
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/node"
)

// benchPopulation builds a deterministic population: nNodes nodes with
// 10-slot buffers and nTracked bundles whose copies are spread over the
// stores in a fixed pattern (~37% of node×bundle pairs hold a copy,
// capped by buffer capacity; every 7th bundle has no holder at all).
func benchPopulation(b testing.TB, nNodes, nTracked int) ([]*node.Node, []*bundle.Bundle) {
	b.Helper()
	nodes := make([]*node.Node, nNodes)
	for i := range nodes {
		nodes[i] = node.New(contact.NodeID(i), 10)
	}
	tracked := make([]*bundle.Bundle, nTracked)
	for j := range tracked {
		tracked[j] = &bundle.Bundle{
			ID:  bundle.ID{Src: contact.NodeID(j % nNodes), Seq: j + 1},
			Dst: contact.NodeID((j + 1) % nNodes),
		}
	}
	for i, n := range nodes {
		for j, bb := range tracked {
			if j%7 == 0 || (i*31+j*17)%8 >= 3 {
				continue
			}
			if n.Store.Free() == 0 {
				break
			}
			cp := &bundle.Copy{Bundle: bb, Expiry: 1 << 40}
			if err := n.Store.Put(cp); err != nil {
				b.Fatal(err)
			}
		}
	}
	return nodes, tracked
}

// BenchmarkSnapshot times the reference full-scan sample computation.
func BenchmarkSnapshot(b *testing.B) {
	nodes, tracked := benchPopulation(b, 100, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := Snapshot(nodes, tracked, 1000)
		if s.Tracked != len(tracked) {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkSnapshotIncremental times the engine's sampling path: the
// same observation computed from incrementally maintained holder
// counts. Its speedup over BenchmarkSnapshot is what cmd/benchguard
// tracks against BENCH_hotpath.json.
func BenchmarkSnapshotIncremental(b *testing.B) {
	nodes, tracked := benchPopulation(b, 100, 400)
	tr := NewHolderTracker()
	for _, bb := range tracked {
		tr.Track(bb.ID)
	}
	for _, n := range nodes {
		n.Store.Range(func(cp *bundle.Copy) bool {
			tr.Inc(cp.Bundle.ID)
			return true
		})
	}
	// The incremental path must agree with the reference scan exactly.
	if tr.Sample(nodes, 1000) != Snapshot(nodes, tracked, 1000) {
		b.Fatal("incremental sample diverges from scan")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.Sample(nodes, 1000)
		if s.Tracked != len(tracked) {
			b.Fatal("bad sample")
		}
	}
}
