package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// sample snapshots the population and folds the observation into c,
// replicating the engine's sampling tick.
func sample(c *Collector, nodes []*node.Node, tracked []*bundle.Bundle, now sim.Time) {
	c.OnSample(Snapshot(nodes, tracked, now))
}

func TestCollectorOccupancy(t *testing.T) {
	nodes := []*node.Node{node.New(0, 10), node.New(1, 10)}
	c := NewCollector()
	put := func(n *node.Node, seq int) {
		cp := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: seq}, Dst: 1}, Expiry: sim.Infinity}
		if err := n.Store.Put(cp); err != nil {
			t.Fatal(err)
		}
	}
	put(nodes[0], 1)
	put(nodes[0], 2)
	// Node0: 2/10, node1: 0/10 → mean 0.1.
	sample(c, nodes, nil, 0)
	if got := c.MeanOccupancy(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("occupancy = %v, want 0.1", got)
	}
	put(nodes[1], 1)
	put(nodes[1], 2)
	// Second sample: (0.2+0.2)/2 = 0.2; time-average (0.1+0.2)/2 = 0.15.
	sample(c, nodes, nil, 1000)
	if got := c.MeanOccupancy(); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("occupancy after 2 samples = %v, want 0.15", got)
	}
	if c.Samples() != 2 {
		t.Errorf("Samples = %d", c.Samples())
	}
}

func TestCollectorDuplication(t *testing.T) {
	nodes := []*node.Node{node.New(0, 10), node.New(1, 10), node.New(2, 10), node.New(3, 10)}
	c := NewCollector()
	b1 := &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 1}, Dst: 3}
	b2 := &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 2}, Dst: 3}
	tracked := []*bundle.Bundle{b1, b2}
	store := func(n *node.Node, b *bundle.Bundle) {
		if err := n.Store.Put(&bundle.Copy{Bundle: b, Expiry: sim.Infinity}); err != nil {
			t.Fatal(err)
		}
	}
	// b1 at 2/4 nodes, b2 at 1/4 nodes → mean (0.5+0.25)/2 = 0.375.
	store(nodes[0], b1)
	store(nodes[1], b1)
	store(nodes[0], b2)
	sample(c, nodes, tracked, 0)
	if got := c.MeanDuplication(); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("duplication = %v, want 0.375", got)
	}
}

func TestCollectorNoBundlesNoDuplicationSamples(t *testing.T) {
	c := NewCollector()
	sample(c, []*node.Node{node.New(0, 10)}, nil, 0)
	if c.MeanDuplication() != 0 {
		t.Error("duplication with no tracked bundles should be 0")
	}
}

func TestOverheadAndDataTotals(t *testing.T) {
	a, b := node.New(0, 10), node.New(1, 10)
	a.ControlSent = 7
	b.ControlSent = 5
	a.DataSent = 3
	if Overhead([]*node.Node{a, b}) != 12 {
		t.Error("Overhead sum wrong")
	}
	if DataTransmissions([]*node.Node{a, b}) != 3 {
		t.Error("DataTransmissions sum wrong")
	}
}

func TestCollectorDuplicationSkipsDeadBundles(t *testing.T) {
	nodes := []*node.Node{node.New(0, 10), node.New(1, 10)}
	c := NewCollector()
	alive := &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 1}, Dst: 1}
	dead := &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 2}, Dst: 1}
	tracked := []*bundle.Bundle{alive, dead}
	if err := nodes[0].Store.Put(&bundle.Copy{Bundle: alive, Expiry: sim.Infinity}); err != nil {
		t.Fatal(err)
	}
	// dead has zero holders: it must not drag the average down.
	sample(c, nodes, tracked, 0)
	if got := c.MeanDuplication(); got != 0.5 {
		t.Errorf("duplication = %v, want 0.5 (alive bundle at 1/2 nodes)", got)
	}
}

func TestCollectorAllDeadSkipsSample(t *testing.T) {
	c := NewCollector()
	tracked := []*bundle.Bundle{{ID: bundle.ID{Src: 0, Seq: 1}, Dst: 1}}
	// No holders anywhere: the sample contributes nothing.
	sample(c, []*node.Node{node.New(0, 10)}, tracked, 0)
	if c.MeanDuplication() != 0 {
		t.Error("all-dead sample counted")
	}
}

func TestCollectorEventCounts(t *testing.T) {
	c := NewCollector()
	id := bundle.ID{Src: 0, Seq: 1}
	c.OnGenerate(id, 1, 0)
	c.OnTransmit(0, 1, id, 100)
	c.OnTransmit(1, 2, id, 200)
	c.OnDeliver(id, 1, 300, 300)
	c.OnDrop(2, id, node.DropEvicted, 400)
	if c.Generated() != 1 || c.Transmissions() != 2 || c.Delivered() != 1 || c.Drops() != 1 {
		t.Errorf("counts = %d/%d/%d/%d, want 1/2/1/1",
			c.Generated(), c.Transmissions(), c.Delivered(), c.Drops())
	}
}

// TestHolderTrackerBasics covers Track/Inc/Dec bookkeeping and the
// panics guarding against silent drift.
func TestHolderTrackerBasics(t *testing.T) {
	tr := NewHolderTracker()
	id := bundle.ID{Src: 1, Seq: 1}
	tr.Track(id)
	if tr.Tracked() != 1 || tr.Holders(id) != 0 {
		t.Fatalf("fresh bundle: tracked=%d holders=%d", tr.Tracked(), tr.Holders(id))
	}
	tr.Inc(id)
	tr.Inc(id)
	tr.Dec(id)
	if tr.Holders(id) != 1 {
		t.Errorf("holders = %d, want 1", tr.Holders(id))
	}
	if tr.Holders(bundle.ID{Src: 9, Seq: 9}) != 0 {
		t.Error("untracked bundle should report zero holders")
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("double Track", func() { tr.Track(id) })
	mustPanic("Inc untracked", func() { tr.Inc(bundle.ID{Src: 9, Seq: 9}) })
	mustPanic("Dec untracked", func() { tr.Dec(bundle.ID{Src: 9, Seq: 9}) })
	tr.Dec(id)
	mustPanic("Dec below zero", func() { tr.Dec(id) })
}

// TestHolderTrackerSampleMatchesSnapshot is the metric-level
// equivalence proof: under random store churn mirrored into a tracker,
// the incremental Sample must equal the reference full-scan Snapshot
// bit-for-bit at every step.
func TestHolderTrackerSampleMatchesSnapshot(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		nNodes := 3 + int(seed%5)
		nodes := make([]*node.Node, nNodes)
		for i := range nodes {
			nodes[i] = node.New(contact.NodeID(i), 4)
		}
		tr := NewHolderTracker()
		var tracked []*bundle.Bundle
		for step := 0; step < 150; step++ {
			switch r.IntN(4) {
			case 0: // generate a new tracked bundle
				b := &bundle.Bundle{
					ID:  bundle.ID{Src: contact.NodeID(r.IntN(nNodes)), Seq: len(tracked) + 1},
					Dst: contact.NodeID(r.IntN(nNodes)),
				}
				tracked = append(tracked, b)
				tr.Track(b.ID)
			case 1: // store a copy somewhere
				if len(tracked) == 0 {
					continue
				}
				b := tracked[r.IntN(len(tracked))]
				n := nodes[r.IntN(nNodes)]
				cp := &bundle.Copy{Bundle: b, Expiry: 1 << 40, Pinned: r.IntN(6) == 0}
				if err := n.Store.Put(cp); err == nil {
					tr.Inc(b.ID)
				}
			case 2: // drop a copy
				if len(tracked) == 0 {
					continue
				}
				b := tracked[r.IntN(len(tracked))]
				n := nodes[r.IntN(nNodes)]
				if n.Store.Remove(b.ID) {
					tr.Dec(b.ID)
				}
			case 3: // compare a sample
				now := sim.Time(step)
				if tr.Sample(nodes, now) != Snapshot(nodes, tracked, now) {
					return false
				}
			}
		}
		return tr.Sample(nodes, 999) == Snapshot(nodes, tracked, 999)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHolderTrackerSampleZeroAlloc: the per-tick sampling path must not
// allocate.
func TestHolderTrackerSampleZeroAlloc(t *testing.T) {
	nodes, tracked := benchPopulation(t, 20, 50)
	tr := NewHolderTracker()
	for _, b := range tracked {
		tr.Track(b.ID)
	}
	for _, n := range nodes {
		n.Store.Range(func(cp *bundle.Copy) bool { tr.Inc(cp.Bundle.ID); return true })
	}
	if allocs := testing.AllocsPerRun(100, func() { tr.Sample(nodes, 1000) }); allocs != 0 {
		t.Errorf("Sample allocates %v/op, want 0", allocs)
	}
}

// TestCollectorDropsByReason checks the per-reason split sums to the
// total and lands in the right buckets.
func TestCollectorDropsByReason(t *testing.T) {
	c := NewCollector()
	id := bundle.ID{Src: 0, Seq: 1}
	c.OnDrop(0, id, node.DropRefused, 0)
	c.OnDrop(0, id, node.DropRefused, 0)
	c.OnDrop(0, id, node.DropEvicted, 0)
	c.OnDrop(0, id, node.DropExpired, 0)
	c.OnDrop(0, id, node.DropPurged, 0)
	if c.Drops() != 5 {
		t.Fatalf("Drops = %d, want 5", c.Drops())
	}
	want := map[node.DropReason]int64{
		node.DropRefused: 2, node.DropEvicted: 1, node.DropExpired: 1, node.DropPurged: 1,
	}
	var sum int64
	for reason, n := range want {
		if got := c.DropsByReason(reason); got != n {
			t.Errorf("DropsByReason(%s) = %d, want %d", reason, got, n)
		}
		sum += c.DropsByReason(reason)
	}
	if sum != c.Drops() {
		t.Errorf("per-reason sum %d != total %d", sum, c.Drops())
	}
	if c.DropsByReason("bogus") != 0 {
		t.Error("unknown reason should be zero")
	}
}
