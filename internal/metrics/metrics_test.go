package metrics

import (
	"math"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// sample snapshots the population and folds the observation into c,
// replicating the engine's sampling tick.
func sample(c *Collector, nodes []*node.Node, tracked []*bundle.Bundle, now sim.Time) {
	c.OnSample(Snapshot(nodes, tracked, now))
}

func TestCollectorOccupancy(t *testing.T) {
	nodes := []*node.Node{node.New(0, 10), node.New(1, 10)}
	c := NewCollector()
	put := func(n *node.Node, seq int) {
		cp := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: seq}, Dst: 1}, Expiry: sim.Infinity}
		if err := n.Store.Put(cp); err != nil {
			t.Fatal(err)
		}
	}
	put(nodes[0], 1)
	put(nodes[0], 2)
	// Node0: 2/10, node1: 0/10 → mean 0.1.
	sample(c, nodes, nil, 0)
	if got := c.MeanOccupancy(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("occupancy = %v, want 0.1", got)
	}
	put(nodes[1], 1)
	put(nodes[1], 2)
	// Second sample: (0.2+0.2)/2 = 0.2; time-average (0.1+0.2)/2 = 0.15.
	sample(c, nodes, nil, 1000)
	if got := c.MeanOccupancy(); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("occupancy after 2 samples = %v, want 0.15", got)
	}
	if c.Samples() != 2 {
		t.Errorf("Samples = %d", c.Samples())
	}
}

func TestCollectorDuplication(t *testing.T) {
	nodes := []*node.Node{node.New(0, 10), node.New(1, 10), node.New(2, 10), node.New(3, 10)}
	c := NewCollector()
	b1 := &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 1}, Dst: 3}
	b2 := &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 2}, Dst: 3}
	tracked := []*bundle.Bundle{b1, b2}
	store := func(n *node.Node, b *bundle.Bundle) {
		if err := n.Store.Put(&bundle.Copy{Bundle: b, Expiry: sim.Infinity}); err != nil {
			t.Fatal(err)
		}
	}
	// b1 at 2/4 nodes, b2 at 1/4 nodes → mean (0.5+0.25)/2 = 0.375.
	store(nodes[0], b1)
	store(nodes[1], b1)
	store(nodes[0], b2)
	sample(c, nodes, tracked, 0)
	if got := c.MeanDuplication(); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("duplication = %v, want 0.375", got)
	}
}

func TestCollectorNoBundlesNoDuplicationSamples(t *testing.T) {
	c := NewCollector()
	sample(c, []*node.Node{node.New(0, 10)}, nil, 0)
	if c.MeanDuplication() != 0 {
		t.Error("duplication with no tracked bundles should be 0")
	}
}

func TestOverheadAndDataTotals(t *testing.T) {
	a, b := node.New(0, 10), node.New(1, 10)
	a.ControlSent = 7
	b.ControlSent = 5
	a.DataSent = 3
	if Overhead([]*node.Node{a, b}) != 12 {
		t.Error("Overhead sum wrong")
	}
	if DataTransmissions([]*node.Node{a, b}) != 3 {
		t.Error("DataTransmissions sum wrong")
	}
}

func TestCollectorDuplicationSkipsDeadBundles(t *testing.T) {
	nodes := []*node.Node{node.New(0, 10), node.New(1, 10)}
	c := NewCollector()
	alive := &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 1}, Dst: 1}
	dead := &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 2}, Dst: 1}
	tracked := []*bundle.Bundle{alive, dead}
	if err := nodes[0].Store.Put(&bundle.Copy{Bundle: alive, Expiry: sim.Infinity}); err != nil {
		t.Fatal(err)
	}
	// dead has zero holders: it must not drag the average down.
	sample(c, nodes, tracked, 0)
	if got := c.MeanDuplication(); got != 0.5 {
		t.Errorf("duplication = %v, want 0.5 (alive bundle at 1/2 nodes)", got)
	}
}

func TestCollectorAllDeadSkipsSample(t *testing.T) {
	c := NewCollector()
	tracked := []*bundle.Bundle{{ID: bundle.ID{Src: 0, Seq: 1}, Dst: 1}}
	// No holders anywhere: the sample contributes nothing.
	sample(c, []*node.Node{node.New(0, 10)}, tracked, 0)
	if c.MeanDuplication() != 0 {
		t.Error("all-dead sample counted")
	}
}

func TestCollectorEventCounts(t *testing.T) {
	c := NewCollector()
	id := bundle.ID{Src: 0, Seq: 1}
	c.OnGenerate(id, 1, 0)
	c.OnTransmit(0, 1, id, 100)
	c.OnTransmit(1, 2, id, 200)
	c.OnDeliver(id, 1, 300, 300)
	c.OnDrop(2, id, node.DropEvicted, 400)
	if c.Generated() != 1 || c.Transmissions() != 2 || c.Delivered() != 1 || c.Drops() != 1 {
		t.Errorf("counts = %d/%d/%d/%d, want 1/2/1/1",
			c.Generated(), c.Transmissions(), c.Delivered(), c.Drops())
	}
}
