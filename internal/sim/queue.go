package sim

import "container/heap"

// Event is a unit of work scheduled at a point in virtual time.
type Event struct {
	At       Time
	Do       func()
	class    uint8  // ordering class: lower classes run first at equal times
	seq      uint64 // FIFO tie-break for equal (timestamp, class)
	index    int    // heap index; -1 once popped or cancelled
	canceled bool
}

// Cancel marks the event so the scheduler skips it when its time comes.
// Cancelling an already-executed event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether the event has been cancelled.
func (e *Event) Canceled() bool { return e.canceled }

// eventHeap orders events by (At, class, seq): earlier times first,
// lower classes among equal times, insertion order within a class.
// Deterministic ordering is essential for reproducible runs; the class
// tier lets producers that schedule lazily (the engine's streaming
// contact scheduler) keep the same equal-timestamp ordering as eager
// producers, whose insertion order encoded priority implicitly.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	if h[i].class != h[j].class {
		return h[i].class < h[j].class
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Queue is a deterministic priority queue of events.
// The zero value is ready to use.
type Queue struct {
	h       eventHeap
	nextSeq uint64
}

// Len returns the number of pending events, including cancelled ones that
// have not yet been popped.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules an event. Events pushed with equal timestamps pop in
// insertion order.
//
//dtn:hotpath
func (q *Queue) Push(e *Event) {
	e.seq = q.nextSeq
	q.nextSeq++
	//lint:allow hotpathalloc elements are *Event pointers; pointer-to-interface conversion is allocation-free
	heap.Push(&q.h, e)
}

// Pop removes and returns the earliest pending event, skipping cancelled
// events. It returns nil when the queue is empty.
//
//dtn:hotpath
func (q *Queue) Pop() *Event {
	for len(q.h) > 0 {
		//lint:allow hotpathalloc elements are *Event pointers; pointer-to-interface conversion is allocation-free
		e := heap.Pop(&q.h).(*Event)
		if e.canceled {
			continue
		}
		return e
	}
	return nil
}

// PeekTime returns the timestamp of the earliest pending event, or
// Infinity when the queue is empty. Cancelled events at the head are
// discarded first.
func (q *Queue) PeekTime() Time {
	for len(q.h) > 0 {
		if q.h[0].canceled {
			heap.Pop(&q.h)
			continue
		}
		return q.h[0].At
	}
	return Infinity
}
