package sim

import (
	"errors"
	"testing"
)

func TestSchedulerRunsInOrder(t *testing.T) {
	s := NewScheduler(0)
	var trace []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		if _, err := s.At(at, func() { trace = append(trace, s.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	end := s.Run()
	want := []Time{10, 20, 30}
	if len(trace) != 3 {
		t.Fatalf("ran %d events, want 3", len(trace))
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("event %d ran at %v, want %v", i, trace[i], want[i])
		}
	}
	if end != 30 {
		t.Errorf("Run returned %v, want 30", end)
	}
}

func TestSchedulerRejectsPastEvents(t *testing.T) {
	s := NewScheduler(0)
	if _, err := s.At(10, func() {
		if _, err := s.At(5, func() {}); !errors.Is(err, ErrTimeReversal) {
			t.Errorf("scheduling in the past: err = %v, want ErrTimeReversal", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
}

func TestSchedulerHorizon(t *testing.T) {
	s := NewScheduler(100)
	ran := make(map[Time]bool)
	for _, at := range []Time{50, 100, 150} {
		at := at
		if _, err := s.At(at, func() { ran[at] = true }); err != nil {
			t.Fatal(err)
		}
	}
	end := s.Run()
	if !ran[50] || !ran[100] {
		t.Errorf("events at/before horizon must run: ran=%v", ran)
	}
	if ran[150] {
		t.Error("event past horizon ran")
	}
	if end != 100 {
		t.Errorf("final time = %v, want horizon 100", end)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (the post-horizon event)", s.Pending())
	}
}

func TestSchedulerAdvancesToHorizonOnDrain(t *testing.T) {
	s := NewScheduler(1000)
	if _, err := s.At(10, func() {}); err != nil {
		t.Fatal(err)
	}
	if end := s.Run(); end != 1000 {
		t.Errorf("drained run should end at horizon: got %v", end)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(0)
	count := 0
	for i := 1; i <= 5; i++ {
		i := i
		if _, err := s.At(Time(i), func() {
			count++
			if i == 3 {
				s.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	end := s.Run()
	if count != 3 {
		t.Errorf("ran %d events, want 3 (stopped mid-run)", count)
	}
	if end != 3 {
		t.Errorf("stopped at %v, want 3", end)
	}
}

func TestSchedulerEventChaining(t *testing.T) {
	// Events scheduled by running events must execute, supporting the
	// engine's pattern of contacts scheduling per-slot transmissions.
	s := NewScheduler(0)
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 10 {
			if _, err := s.After(1, chain); err != nil {
				t.Errorf("chain scheduling failed: %v", err)
			}
		}
	}
	if _, err := s.At(0, chain); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if depth != 10 {
		t.Errorf("chain depth = %d, want 10", depth)
	}
}

func TestSchedulerAfter(t *testing.T) {
	s := NewScheduler(0)
	var at Time = -1
	if _, err := s.At(5, func() {
		if _, err := s.After(7, func() { at = s.Now() }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if at != 12 {
		t.Errorf("After(7) from t=5 ran at %v, want 12", at)
	}
}

// TestSchedulerAtClass: AtClass tiers events at equal times; At is
// class 0 and therefore runs before higher classes scheduled earlier.
func TestSchedulerAtClass(t *testing.T) {
	s := NewScheduler(100)
	var got []string
	if _, err := s.AtClass(10, 2, func() { got = append(got, "late-class") }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(10, func() { got = append(got, "default-class") }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AtClass(10, 1, func() { got = append(got, "mid-class") }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	want := []string{"default-class", "mid-class", "late-class"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if _, err := s.AtClass(1, 0, func() {}); err == nil {
		t.Error("AtClass in the past should error")
	}
}

func TestSchedulerSetHorizon(t *testing.T) {
	s := NewScheduler(1000)
	var ran []Time
	for _, at := range []Time{100, 400, 900} {
		at := at
		if _, err := s.At(at, func() { ran = append(ran, at) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.At(100, func() { s.SetHorizon(500) }); err != nil {
		t.Fatal(err)
	}
	end := s.Run()
	if len(ran) != 2 || ran[0] != 100 || ran[1] != 400 {
		t.Errorf("ran %v, want [100 400] after lowering the horizon to 500", ran)
	}
	if end != 500 {
		t.Errorf("end = %v, want the lowered horizon 500", end)
	}

	// Raising is ignored; moving before the current time is ignored.
	s2 := NewScheduler(300)
	s2.SetHorizon(900)
	if s2.Horizon() != 300 {
		t.Errorf("raise accepted: horizon %v", s2.Horizon())
	}
	if _, err := s2.At(200, func() { s2.SetHorizon(100) }); err != nil {
		t.Fatal(err)
	}
	s2.Run()
	if s2.Horizon() != 300 {
		t.Errorf("pre-now lowering accepted: horizon %v", s2.Horizon())
	}
}

func TestSchedulerInterrupt(t *testing.T) {
	// The interrupt is polled before every pop: once it reports true,
	// no further event runs and the clock stays where it stopped.
	s := NewScheduler(1000)
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		if _, err := s.At(at, func() { ran = append(ran, at) }); err != nil {
			t.Fatal(err)
		}
	}
	polls := 0
	s.SetInterrupt(func() bool {
		polls++
		return len(ran) >= 2
	})
	end := s.Run()
	if len(ran) != 2 || ran[0] != 10 || ran[1] != 20 {
		t.Errorf("ran %v, want [10 20] before the interrupt fired", ran)
	}
	if !s.Stopped() {
		t.Error("interrupted scheduler should report Stopped")
	}
	if end != 20 {
		t.Errorf("end = %v, want 20 (no horizon advance after an interrupt)", end)
	}
	if polls < 3 {
		t.Errorf("interrupt polled %d times, want one per pop attempt (>=3)", polls)
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want the 2 unrun events left queued", s.Pending())
	}

	// Removing the poll resumes normal draining.
	s.SetInterrupt(nil)
	s.Run()
	if len(ran) != 4 {
		t.Errorf("after clearing the interrupt ran %v, want all four events", ran)
	}
}
