package sim

import (
	"errors"
	"fmt"
)

// ErrTimeReversal is returned by Scheduler.At when an event is scheduled
// in the past relative to the current virtual clock.
var ErrTimeReversal = errors.New("sim: event scheduled before current time")

// Scheduler owns a virtual clock and an event queue and runs events in
// timestamp order. A Scheduler is single-goroutine by design: DTN
// simulation at this scale is sequential, and determinism matters more
// than parallelism (see DESIGN.md §5).
type Scheduler struct {
	now     Time
	queue   Queue
	horizon Time
	stopped bool
	// interrupt, when set, is polled before every event pop; returning
	// true aborts Run as if Stop had been called. The single nil check
	// is the entire cost when unset (benchguard pair "cancel-overhead").
	interrupt func() bool
}

// NewScheduler returns a scheduler whose clock starts at zero and which
// refuses to run events past the given horizon. A non-positive horizon
// means no limit.
func NewScheduler(horizon Time) *Scheduler {
	if horizon <= 0 {
		horizon = Infinity
	}
	return &Scheduler{horizon: horizon}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Horizon returns the time at which the scheduler stops processing events.
func (s *Scheduler) Horizon() Time { return s.horizon }

// SetHorizon lowers the horizon mid-run. A producer that streams events
// from a source whose true extent is only known at exhaustion (the
// engine's contact source) calls this once the final extent is known;
// events already queued beyond the new horizon simply never run.
// Raising the horizon or moving it before the current time is ignored.
func (s *Scheduler) SetHorizon(t Time) {
	if t >= s.now && t < s.horizon {
		s.horizon = t
	}
}

// At schedules fn to run at time t in the default ordering class 0. It
// returns the event handle so the caller may cancel it, or an error if
// t precedes the current time.
func (s *Scheduler) At(t Time, fn func()) (*Event, error) {
	return s.AtClass(t, 0, fn)
}

// AtClass schedules fn at time t in the given ordering class. Among
// events with equal timestamps, lower classes run first; within one
// class, insertion order wins. Classes let a producer that schedules
// events lazily (one pending at a time) preserve the equal-timestamp
// ordering it would have had by pushing everything up front.
func (s *Scheduler) AtClass(t Time, class uint8, fn func()) (*Event, error) {
	if t < s.now {
		return nil, fmt.Errorf("%w: now=%v event=%v", ErrTimeReversal, s.now, t)
	}
	e := &Event{At: t, Do: fn, class: class}
	s.queue.Push(e)
	return e, nil
}

// After schedules fn to run d seconds from now.
func (s *Scheduler) After(d Duration, fn func()) (*Event, error) {
	return s.At(s.now+d, fn)
}

// SetInterrupt installs a poll called before every event pop: returning
// true aborts Run exactly as Stop would, leaving the remaining events
// queued. The engine uses it to thread context cancellation and
// per-job timeouts into the event loop without the scheduler importing
// context (virtual time stays wall-clock-free); the poll itself decides
// how often to do real work (e.g. check a context every N calls).
// A nil fn removes the poll.
func (s *Scheduler) SetInterrupt(fn func() bool) { s.interrupt = fn }

// Stop makes Run return after the currently executing event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// Pending returns the number of events still queued.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Run executes events in order until the queue drains, the horizon is
// reached, or Stop is called. It returns the final virtual time.
//
// Events scheduled exactly at the horizon still run; events beyond it are
// left in the queue.
func (s *Scheduler) Run() Time {
	s.stopped = false
	for !s.stopped {
		if s.interrupt != nil && s.interrupt() {
			s.stopped = true
			break
		}
		next := s.queue.PeekTime()
		if next > s.horizon {
			break
		}
		e := s.queue.Pop()
		if e == nil {
			break
		}
		s.now = e.At
		e.Do()
	}
	if s.now < s.horizon && s.queue.PeekTime() > s.horizon && !s.stopped {
		// Queue drained (or only post-horizon events remain): the
		// simulation observed nothing further; advance to horizon so
		// time-weighted metrics cover the full window.
		s.now = s.horizon
	}
	return s.now
}
