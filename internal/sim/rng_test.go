package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGDeriveIndependence(t *testing.T) {
	// Streams derived with different tags from identically seeded parents
	// must themselves be deterministic and distinct.
	p1 := NewRNG(7)
	p2 := NewRNG(7)
	c1 := p1.Derive(1)
	c2 := p2.Derive(1)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("derived streams with same lineage diverged at %d", i)
		}
	}
	d1 := NewRNG(7).Derive(1)
	d2 := NewRNG(7).Derive(2)
	same := 0
	for i := 0; i < 100; i++ {
		if d1.Uint64() == d2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different tags produced %d/100 identical draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := g.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform(10,20) = %v out of range", v)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(5)
	lo, hi := 60.0, 86400.0
	for i := 0; i < 10000; i++ {
		v := g.Pareto(1.4, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Pareto draw %v outside [%v,%v]", v, lo, hi)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// A bounded Pareto with small alpha should put noticeably more mass
	// near lo than a uniform would, and its mean should exceed the median.
	g := NewRNG(11)
	lo, hi := 60.0, 86400.0
	n := 20000
	vals := make([]float64, n)
	sum := 0.0
	for i := range vals {
		vals[i] = g.Pareto(1.2, lo, hi)
		sum += vals[i]
	}
	mean := sum / float64(n)
	below := 0
	for _, v := range vals {
		if v < mean {
			below++
		}
	}
	if frac := float64(below) / float64(n); frac < 0.60 {
		t.Errorf("heavy tail expected: only %.2f of draws below mean", frac)
	}
}

func TestParetoPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(1, 10, 5) did not panic")
		}
	}()
	NewRNG(1).Pareto(1, 10, 5)
}

func TestBoolEdges(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	g := NewRNG(13)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %.3f", got)
	}
}

func TestIntNRange(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := g.IntN(17)
			if v < 0 || v >= 17 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(21)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(500)
	}
	mean := sum / float64(n)
	if math.Abs(mean-500) > 25 {
		t.Errorf("Exp(500) sample mean = %.1f", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%64) + 1
		p := NewRNG(seed).Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(42).String(); got != "42s" {
		t.Errorf("Time(42).String() = %q", got)
	}
	if got := Infinity.String(); got != "+inf" {
		t.Errorf("Infinity.String() = %q", got)
	}
}

func TestReseedReplaysStream(t *testing.T) {
	g := NewReseedable()
	s1, s2 := EncounterSeed(2012, 3, 9, 1500)
	g.Reseed(s1, s2)
	first := []uint64{g.Uint64(), g.Uint64(), g.Uint64()}
	// Perturb the state, then reseed: the stream must replay exactly.
	g.Reseed(99, 1)
	g.Uint64()
	g.Reseed(s1, s2)
	for i, want := range first {
		if got := g.Uint64(); got != want {
			t.Fatalf("draw %d after reseed = %d, want %d", i, got, want)
		}
	}
}

func TestReseedPanicsOnPlainRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reseed on a NewRNG stream did not panic")
		}
	}()
	NewRNG(1).Reseed(1, 2)
}

// TestEncounterSeedIsPure pins the property the sharded engine rests
// on: the derived state depends only on (runSeed, a, b, start), never
// on call order or prior draws, and distinct encounters decorrelate.
func TestEncounterSeedIsPure(t *testing.T) {
	a1, b1 := EncounterSeed(7, 1, 2, 100)
	a2, b2 := EncounterSeed(7, 1, 2, 100)
	if a1 != a2 || b1 != b2 {
		t.Fatal("EncounterSeed is not a pure function of its inputs")
	}
	seen := map[[2]uint64]string{{a1, b1}: "base"}
	for name, pair := range map[string][2]uint64{
		"seed":  first2(EncounterSeed(8, 1, 2, 100)),
		"nodeA": first2(EncounterSeed(7, 3, 2, 100)),
		"nodeB": first2(EncounterSeed(7, 1, 4, 100)),
		"start": first2(EncounterSeed(7, 1, 2, 200)),
	} {
		if prev, dup := seen[pair]; dup {
			t.Fatalf("varying %s collided with %s", name, prev)
		}
		seen[pair] = name
	}
}

func first2(a, b uint64) [2]uint64 { return [2]uint64{a, b} }
