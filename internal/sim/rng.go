package sim

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source with the distribution helpers the
// mobility models and workload generators need. Every stream is derived
// from an explicit 64-bit seed; the same seed always yields the same
// sequence, which is the backbone of run reproducibility.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Derive returns an independent stream keyed by (parent seed stream, tag).
// Use it to give each node or pair its own stream so that adding one
// consumer does not perturb the draws of another.
func (g *RNG) Derive(tag uint64) *RNG {
	// Draw two words from the parent and mix with the tag.
	a := g.r.Uint64()
	b := g.r.Uint64()
	return &RNG{r: rand.New(rand.NewPCG(a^tag*0xbf58476d1ce4e5b9, b+tag))}
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform draw in [0,n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit draw.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential draw with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Pareto returns a bounded Pareto draw with shape alpha on [lo, hi].
// Heavy-tailed inter-contact times in human-mobility traces are well
// modelled by truncated power laws (Chaintreau et al.), which is why the
// synthetic Cambridge generator uses this distribution.
func (g *RNG) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("sim: Pareto requires 0 < lo < hi")
	}
	u := g.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	// Inverse CDF of the bounded Pareto distribution.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// LogNormal returns a log-normal draw parameterised by the mean and sigma
// of the underlying normal.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}
