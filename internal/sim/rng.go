package sim

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source with the distribution helpers the
// mobility models and workload generators need. Every stream is derived
// from an explicit 64-bit seed; the same seed always yields the same
// sequence, which is the backbone of run reproducibility.
type RNG struct {
	r *rand.Rand
	// pcg is retained only by reseedable streams (NewReseedable) so
	// Reseed can repoint the generator without allocating.
	pcg *rand.PCG
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// NewReseedable returns a stream whose state can be repointed with
// Reseed. The engine keeps one per executor and reseeds it at each
// encounter from EncounterSeed, so per-encounter draw sequences cost
// zero allocations and are independent of which executor (sequential
// engine, any shard worker) runs the encounter.
func NewReseedable() *RNG {
	pcg := rand.NewPCG(0, 0)
	return &RNG{r: rand.New(pcg), pcg: pcg}
}

// Reseed repoints a reseedable stream at the state (s1, s2). It panics
// on streams not built with NewReseedable — silently reseeding a shared
// model stream would corrupt unrelated consumers.
func (g *RNG) Reseed(s1, s2 uint64) {
	if g.pcg == nil {
		panic("sim: Reseed on a non-reseedable RNG")
	}
	g.pcg.Seed(s1, s2)
}

// splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mix with
// full avalanche, the standard way to expand one seed into decorrelated
// streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// EncounterSeed derives the canonical PCG state for the random draws of
// one encounter: the contact between nodes a and b starting at start,
// under the run seed. The state is a pure function of those four values
// — no draw order, no executor identity — which is what lets a sharded
// engine replay any encounter on any worker and still produce the draw
// sequence the sequential engine produces (DESIGN.md §12).
func EncounterSeed(runSeed, a, b uint64, start Time) (uint64, uint64) {
	h := splitmix64(runSeed ^ 0xd1b54a32d192ed03)
	h = splitmix64(h ^ a)
	h = splitmix64(h ^ b)
	h = splitmix64(h ^ math.Float64bits(float64(start)))
	return h, splitmix64(h)
}

// Derive returns an independent stream keyed by (parent seed stream, tag).
// Use it to give each node or pair its own stream so that adding one
// consumer does not perturb the draws of another.
func (g *RNG) Derive(tag uint64) *RNG {
	// Draw two words from the parent and mix with the tag.
	a := g.r.Uint64()
	b := g.r.Uint64()
	return &RNG{r: rand.New(rand.NewPCG(a^tag*0xbf58476d1ce4e5b9, b+tag))}
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform draw in [0,n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit draw.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential draw with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Pareto returns a bounded Pareto draw with shape alpha on [lo, hi].
// Heavy-tailed inter-contact times in human-mobility traces are well
// modelled by truncated power laws (Chaintreau et al.), which is why the
// synthetic Cambridge generator uses this distribution.
func (g *RNG) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("sim: Pareto requires 0 < lo < hi")
	}
	u := g.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	// Inverse CDF of the bounded Pareto distribution.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// LogNormal returns a log-normal draw parameterised by the mean and sigma
// of the underlying normal.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}
