package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue
	times := []Time{50, 10, 30, 20, 40}
	for _, at := range times {
		q.Push(&Event{At: at})
	}
	var got []Time
	for e := q.Pop(); e != nil; e = q.Pop() {
		got = append(got, e.At)
	}
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pop %d: got t=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestQueueFIFOAmongEqualTimes(t *testing.T) {
	var q Queue
	const n = 100
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		i := i
		q.Push(&Event{At: 7, Do: func() { order = append(order, i) }})
	}
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Do()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events popped out of insertion order: pos %d got %d", i, v)
		}
	}
}

func TestQueueCancel(t *testing.T) {
	var q Queue
	e1 := &Event{At: 1}
	e2 := &Event{At: 2}
	e3 := &Event{At: 3}
	q.Push(e1)
	q.Push(e2)
	q.Push(e3)
	e2.Cancel()
	if got := q.Pop(); got != e1 {
		t.Fatalf("first pop: got %v, want e1", got)
	}
	if got := q.Pop(); got != e3 {
		t.Fatalf("second pop skipped cancel: got %+v, want e3", got)
	}
	if got := q.Pop(); got != nil {
		t.Fatalf("third pop: got %+v, want nil", got)
	}
}

func TestQueuePeekTimeSkipsCanceled(t *testing.T) {
	var q Queue
	e1 := &Event{At: 5}
	q.Push(e1)
	q.Push(&Event{At: 9})
	e1.Cancel()
	if got := q.PeekTime(); got != 9 {
		t.Fatalf("PeekTime = %v, want 9", got)
	}
}

func TestQueuePeekTimeEmpty(t *testing.T) {
	var q Queue
	if got := q.PeekTime(); got != Infinity {
		t.Fatalf("PeekTime on empty queue = %v, want Infinity", got)
	}
}

// Property: for any multiset of timestamps, popping yields the sorted
// sequence.
func TestQueuePopSortedProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		var q Queue
		for _, s := range stamps {
			q.Push(&Event{At: Time(s)})
		}
		sorted := make([]Time, len(stamps))
		for i, s := range stamps {
			sorted[i] = Time(s)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := 0; i < len(sorted); i++ {
			e := q.Pop()
			if e == nil || e.At != sorted[i] {
				return false
			}
		}
		return q.Pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset never disturbs the relative
// order of the survivors.
func TestQueueCancelSubsetProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		var q Queue
		events := make([]*Event, n)
		for i := range events {
			events[i] = &Event{At: Time(r.IntN(50))}
			q.Push(events[i])
		}
		keep := make([]*Event, 0, n)
		for _, e := range events {
			if r.IntN(2) == 0 {
				e.Cancel()
			} else {
				keep = append(keep, e)
			}
		}
		sort.SliceStable(keep, func(i, j int) bool { return keep[i].At < keep[j].At })
		for _, want := range keep {
			if got := q.Pop(); got != want {
				return false
			}
		}
		return q.Pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueClassOrdering: among equal timestamps, lower classes pop
// first; within a class, insertion order wins — even when a low-class
// event is pushed after a high-class one. This is what lets the
// engine's streaming contact scheduler (which pushes contacts lazily)
// keep the same equal-time ordering as the old preloaded path.
func TestQueueClassOrdering(t *testing.T) {
	var q Queue
	var got []string
	push := func(name string, at Time, class uint8) {
		q.Push(&Event{At: at, class: class, Do: func() { got = append(got, name) }})
	}
	push("sampler@5", 5, 2)
	push("contactB@5", 5, 1)
	push("flow@5", 5, 0)
	push("contactA@5", 5, 1) // same class as contactB, pushed later
	push("early@1", 1, 2)    // earlier time beats any class
	for {
		e := q.Pop()
		if e == nil {
			break
		}
		e.Do()
	}
	want := []string{"early@1", "flow@5", "contactB@5", "contactA@5", "sampler@5"}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
