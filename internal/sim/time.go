// Package sim provides the discrete-event simulation kernel used by the
// DTN engine: a virtual clock, a priority event queue with deterministic
// tie-breaking, and seeded random-number streams.
//
// The kernel is deliberately independent of DTN concepts so it can be
// tested in isolation and reused by the mobility generators.
package sim

import "fmt"

// Time is a point in virtual time, in seconds since the start of the
// simulation. Sub-second resolution is supported (mobility models may
// produce fractional travel times) but all paper scenarios use integral
// seconds.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Infinity is a time later than any event the kernel will ever schedule.
const Infinity Time = 1e18

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Before reports whether t occurs strictly before u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t occurs strictly after u.
func (t Time) After(u Time) bool { return t > u }

func (t Time) String() string {
	if t >= Infinity {
		return "+inf"
	}
	return fmt.Sprintf("%.0fs", float64(t))
}
