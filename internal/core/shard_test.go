package core_test

// Sharded-executor equivalence suite: the proof obligation of DESIGN.md
// §12. Every golden cell is re-run through the sharded executor (K=4)
// and its Result compared field-for-field — floats bit-exact — against
// the sequential engine; the four event-CSV cells are additionally
// compared byte-for-byte, pinning the order and timing of every
// observable engine action. TestShardedDeterminismRace repeats sharded
// runs concurrently under `go test -race` (CI's default), which fails
// on any cross-worker data race in the epoch executor.

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"dtnsim/internal/core"
	"dtnsim/internal/protocol"
	"dtnsim/internal/report"
)

// shardedConfig builds a golden-cell config routed through the sharded
// executor with k workers, pulling from a streaming source (the sharded
// loop's native contact-plan form).
func shardedConfig(t testing.TB, protoSpec string, m goldenMobility, k int) core.Config {
	t.Helper()
	cfg := goldenConfig(t, protoSpec, m, true)
	cfg.Shards = k
	return cfg
}

// TestShardedGoldenEquivalence runs the full protocol × mobility golden
// grid on the sharded executor (K=4) and demands Results bit-identical
// to the sequential engine's.
func TestShardedGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded golden grid is slow")
	}
	for _, protoSpec := range protocol.BuiltinSpecs() {
		for _, m := range goldenMobilities {
			seq, err := core.Run(goldenConfig(t, protoSpec, m, false))
			if err != nil {
				t.Fatalf("%s|%s sequential: %v", protoSpec, m.name, err)
			}
			sh, err := core.Run(shardedConfig(t, protoSpec, m, 4))
			if err != nil {
				t.Fatalf("%s|%s sharded: %v", protoSpec, m.name, err)
			}
			if !reflect.DeepEqual(toGolden(seq), toGolden(sh)) {
				t.Errorf("%s|%s: sharded (K=4) Result diverged from sequential\n got: %+v\nwant: %+v",
					protoSpec, m.name, toGolden(sh), toGolden(seq))
			}
		}
	}
}

// TestShardedShardCountInvariance pins the stronger form of the
// invariant on two eventful cells: every shard count — including K=1,
// the sharded path the overhead benchmark compares against the
// sequential engine — produces the byte-identical event CSV.
func TestShardedShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded event streams are slow")
	}
	for _, cell := range []struct {
		proto string
		mob   goldenMobility
	}{
		{"immunity", goldenMobilities[0]},
		{"ecttl", goldenMobilities[2]},
	} {
		want := runStream(t, cell.proto, cell.mob, false)
		for _, k := range []int{1, 2, 3, 8} {
			got := runStreamSharded(t, cell.proto, cell.mob, k)
			if !bytes.Equal(want, got) {
				t.Errorf("%s|%s: K=%d event CSV diverged from sequential (first diff at byte %d)",
					cell.proto, cell.mob.name, k, firstDiff(want, got))
			}
		}
	}
}

// runStreamSharded is runStream through the sharded executor.
func runStreamSharded(t testing.TB, proto string, mob goldenMobility, k int) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg := shardedConfig(t, proto, mob, k)
	st := report.NewStream(&buf, true)
	cfg.Observers = []core.Observer{st}
	if _, err := core.Run(cfg); err != nil {
		t.Fatalf("%s|%s (K=%d): %v", proto, mob.name, k, err)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("%s|%s (K=%d): stream write: %v", proto, mob.name, k, err)
	}
	return buf.Bytes()
}

// TestShardedStreamCSV diffs every event-CSV golden cell sharded (K=4)
// against both the sequential run and the committed golden file.
func TestShardedStreamCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded event streams are slow")
	}
	for _, cell := range streamGoldenCells {
		cell := cell
		t.Run(cell.file, func(t *testing.T) {
			t.Parallel()
			want := runStream(t, cell.proto, cell.mob, false)
			got := runStreamSharded(t, cell.proto, cell.mob, 4)
			if !bytes.Equal(want, got) {
				t.Errorf("sharded (K=4) event CSV diverged from sequential (first diff at byte %d)",
					firstDiff(want, got))
			}
		})
	}
}

// TestShardedDeterminismRace runs each event-CSV cell three times
// concurrently on the sharded executor — same seed, different worker
// interleavings — and demands byte-identical CSVs. Under -race this
// doubles as the data-race proof for the epoch executor's chains,
// mailboxes and effect buffers.
func TestShardedDeterminismRace(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent sharded streams are slow")
	}
	for _, cell := range streamGoldenCells {
		cell := cell
		t.Run(cell.file, func(t *testing.T) {
			t.Parallel()
			var wg sync.WaitGroup
			out := make([][]byte, 3)
			errs := make([]error, 3)
			for i := range out {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					var buf bytes.Buffer
					cfg := shardedConfig(t, cell.proto, cell.mob, 4)
					cfg.Observers = []core.Observer{report.NewStream(&buf, true)}
					_, errs[i] = core.Run(cfg)
					out[i] = buf.Bytes()
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
			}
			for i := 1; i < len(out); i++ {
				if !bytes.Equal(out[0], out[i]) {
					t.Errorf("concurrent sharded runs 0 and %d diverge (first diff at byte %d)",
						i, firstDiff(out[0], out[i]))
				}
			}
		})
	}
}

// TestShardsValidation pins the config boundary: negative shard counts
// are rejected, and the zero value keeps the sequential path.
func TestShardsValidation(t *testing.T) {
	cfg := goldenConfig(t, "pure", goldenMobilities[2], false)
	cfg.Shards = -1
	if _, err := core.Run(cfg); !errors.Is(err, core.ErrConfig) {
		t.Fatalf("Shards=-1: got %v, want ErrConfig", err)
	}
}
