package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"dtnsim/internal/buffer"
	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/metrics"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
	"dtnsim/internal/stats"
)

// Result summarizes one run.
type Result struct {
	// Protocol is the display name of the protocol under test.
	Protocol string
	// Generated and Delivered count workload bundles.
	Generated, Delivered int
	// DeliveryRatio is Delivered/Generated: the paper's delivery ratio.
	DeliveryRatio float64
	// Completed reports whether every flow delivered all bundles before
	// the horizon. Failed runs record no delay (§IV).
	Completed bool
	// Makespan is the paper's delay metric: seconds from the earliest
	// flow start until the last bundle arrived. Valid only if Completed.
	Makespan float64
	// MeanDelay is the mean per-bundle delivery delay of the bundles
	// that did arrive (an auxiliary metric, defined even for failed
	// runs with at least one delivery).
	MeanDelay float64
	// DelayP50 and DelayP95 are per-bundle delay quantiles over the
	// delivered bundles; zero when nothing was delivered.
	DelayP50, DelayP95 float64
	// MeanOccupancy is the time- and node-averaged buffer occupancy.
	MeanOccupancy float64
	// MeanDuplication is the time- and bundle-averaged duplication rate.
	MeanDuplication float64
	// ControlRecords is the total signaling overhead in records.
	ControlRecords int64
	// DataTransmissions counts bundle transmissions.
	DataTransmissions int64
	// Refused, Evicted and Expired aggregate buffer-policy events.
	Refused, Evicted, Expired int64
	// ByteDropped aggregates copies shed by the buffer DropPolicy under
	// byte pressure; always zero in the unconstrained default model.
	ByteDropped int64
	// FinishedAt is the virtual time the run ended.
	FinishedAt sim.Time
	// DeliveryTimes maps each delivered bundle to its arrival time.
	DeliveryTimes map[bundle.ID]sim.Time
	// FinalOccupancy is each node's buffer occupancy when the run
	// ended, indexed by node ID.
	FinalOccupancy []float64
	// FinalBuffered is the number of copies each node held at the end.
	FinalBuffered []int
}

// ErrCancelled wraps run abortions triggered through Config.Context
// (explicit cancel or per-run deadline). The context's own error is
// wrapped alongside it, so errors.Is works against ErrCancelled,
// context.Canceled and context.DeadlineExceeded alike.
var ErrCancelled = errors.New("core: run cancelled")

// interruptEvery is how many scheduler event pops separate consecutive
// Context polls: small enough that a cancel lands within microseconds
// of real work, large enough that ctx.Err()'s lock never shows up in
// the contact hot path.
const interruptEvery = 64

// Event ordering classes: among events with equal timestamps, flows
// run first, then contacts, then the sampling tick — the same order the
// pre-streaming engine got implicitly by pushing the whole schedule up
// front in that sequence. The explicit tiers let the contact scheduler
// keep only one pending event without perturbing equal-time ordering.
const (
	classWorkload = 0
	classContact  = 1
	classSampler  = 2
)

// engine is the per-run state.
type engine struct {
	cfg   Config
	sched *sim.Scheduler
	// rng is the encounter stream: one reseedable generator repointed at
	// every contact from sim.EncounterSeed(seed, a, b, start). All random
	// draws inside a contact — the protocol's Wants shuffles and P-Q
	// coin flips, droprandom's victim reservoir — pull from it in
	// program order, so the draw sequence is a pure function of the
	// encounter and replays identically on any executor (the sharded
	// engine's workers reseed their own streams the same way).
	rng   *sim.RNG
	nodes []*node.Node
	coll  *metrics.Collector
	// obs is every observer of this run: the built-in collector first,
	// then Config.Observers in order.
	obs []Observer
	// holders maintains per-bundle holder counts incrementally from the
	// engine's store/drop bookkeeping (in creation order, replacing the
	// old tracked-bundle scan), making each sampling tick
	// O(nodes + tracked) instead of O(nodes × tracked).
	holders *metrics.HolderTracker
	// src streams the contact plan; a materialized Config.Schedule is
	// adapted via Stream, so the engine has a single pull-based path.
	src contact.Source
	// dropPolicy is consulted on byte-pressure admission; nil while
	// Config.BufferBytes is zero (no byte capacity, the legacy model).
	dropPolicy buffer.DropPolicy
	// cap is the run's horizon bound; adaptiveCap marks it as a
	// source-reported upper bound (the generator's span) that settle
	// tightens to the true latest contact end at source exhaustion,
	// reproducing a materialized schedule's horizon exactly.
	cap         sim.Time
	adaptiveCap bool
	srcDone     bool
	// Incremental stream validation: contacts must arrive in canonical
	// start order with in-range endpoints.
	prevStart sim.Time
	maxEnd    sim.Time
	pulled    int
	// err truncates the run: the first stream failure stops the
	// scheduler and is returned from Run.
	err error

	remaining int
	// completedStop records that the run terminated early because a
	// sampling tick observed every flow complete (!RunToHorizon);
	// the run then ends at the final arrival time, not the tick.
	completedStop bool
	deliveredAt   map[bundle.ID]sim.Time
	// delays accumulates per-bundle delivery delays, measured from each
	// bundle's own CreatedAt (bundles from late-starting flows must not
	// inherit another flow's start time).
	delays      []float64
	firstStart  sim.Time
	lastArrival sim.Time
}

// Run executes one simulation and returns its result.
func Run(cfg Config) (*Result, error) {
	if closer, ok := cfg.Source.(io.Closer); ok {
		// A file-backed source must be released however the run ends:
		// validation failure, early termination, explicit horizon.
		defer closer.Close()
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := cfg.Source
	if cfg.Schedule != nil {
		src = cfg.Schedule.Stream()
	}
	cap, adaptive := cfg.horizonCap()
	e := &engine{
		cfg:         cfg,
		sched:       sim.NewScheduler(cap),
		rng:         sim.NewReseedable(),
		holders:     metrics.NewHolderTracker(),
		src:         src,
		cap:         cap,
		adaptiveCap: adaptive,
		deliveredAt: make(map[bundle.ID]sim.Time),
		firstStart:  sim.Infinity,
	}
	e.coll = metrics.NewCollector()
	e.obs = append([]Observer{e.coll}, cfg.Observers...)
	if cfg.BufferBytes > 0 {
		name := cfg.DropPolicy
		if name == "" {
			name = buffer.DefaultDropPolicy
		}
		pol, err := buffer.NewDropPolicy(name, cfg.Seed^0xb17ed70b5eed)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		// Randomized policies draw from the encounter stream: victim
		// choices then depend only on the contact being processed, never
		// on drops in unrelated contacts — required for executor-
		// independent replay (DESIGN.md §12).
		if sp, ok := pol.(buffer.StreamPolicy); ok {
			sp.SetStream(e.rng)
		}
		e.dropPolicy = pol
	}
	e.nodes = make([]*node.Node, cfg.nodeCount())
	for i := range e.nodes {
		n := node.New(contact.NodeID(i), cfg.BufferCap)
		if cfg.BufferBytes > 0 {
			n.Store.SetByteCap(cfg.BufferBytes)
		}
		at := n.ID
		n.DropHook = func(id bundle.ID, reason node.DropReason, now sim.Time) {
			if reason != node.DropRefused {
				// Every non-refusal drop sheds a stored copy; refusals
				// never stored one.
				e.holders.Dec(id)
			}
			for _, o := range e.obs {
				o.OnDrop(at, id, reason, now)
			}
		}
		cfg.Protocol.Init(n)
		e.nodes[i] = n
	}

	if cfg.Shards > 0 || cfg.Backend != nil {
		// Sharded execution replaces the scheduler-driven event loop
		// (including the drop hooks installed above) but produces
		// bit-identical Results and observer streams — see shard.go. A
		// Backend rides the same epoch loop with execution delegated,
		// so the shard count only sizes the (unused) local worker set;
		// clamp it to a valid value.
		k := cfg.Shards
		if k == 0 {
			k = 1
		}
		return e.runSharded(k)
	}

	if err := e.scheduleWorkload(); err != nil {
		return nil, err
	}
	if err := e.scheduleContacts(); err != nil {
		return nil, err
	}
	e.scheduleSampling()
	if ctx := cfg.Context; ctx != nil {
		// Poll the context at event pops, amortized: ctx.Err() may take
		// a lock, so one real check per interruptEvery pops keeps the
		// cancellable engine within noise of the plain one while still
		// reacting to a cancel within a sliver of wall time.
		polls := 0
		e.sched.SetInterrupt(func() bool {
			polls++
			if polls%interruptEvery != 0 {
				return false
			}
			return ctx.Err() != nil
		})
	}

	end := e.sched.Run()
	if e.err != nil {
		return nil, e.err
	}
	if ctx := cfg.Context; ctx != nil && ctx.Err() != nil {
		// A run truncated by cancellation has no meaningful Result:
		// report where it stopped and why, wrapping both ErrCancelled
		// and the context's error so callers can errors.Is against
		// either (context.Canceled, context.DeadlineExceeded).
		return nil, fmt.Errorf("%w at t=%v: %w", ErrCancelled, e.sched.Now(), context.Cause(ctx))
	}
	if e.completedStop {
		// Early termination: the run ends at the final arrival, exactly
		// where a stop issued mid-delivery would have landed (the stop
		// tick's own timestamp is a detection artifact, not an event).
		end = e.lastArrival
	} else if e.lastArrival > end {
		// Deliveries inside the final contact complete after the
		// contact-start event's timestamp.
		end = e.lastArrival
	}
	return e.result(end), nil
}

// fail records the first stream failure and stops the run.
func (e *engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.sched.Stop()
}

// flowPlan assigns each flow its per-source sequence block and the
// first-sequence anchor of its (src, dst) pair. Sequence numbers are
// 1-based per source, matching the paper's "bundles 1 to k"; when
// several flows share a source, each flow takes the next contiguous
// block in flow-declaration order so IDs never collide. The anchor is
// the lowest block base among the flows sharing a bundle's (Src, Dst)
// pair: cumulative immunity keys its tables by that pair, so an
// acknowledgement anchored any higher could falsely cover another block
// of the same pair. Both executors derive the workload from this plan.
func flowPlan(flows []Flow) (bases, firsts []int) {
	type pair struct{ src, dst contact.NodeID }
	nextSeq := make(map[contact.NodeID]int)
	firstSeq := make(map[pair]int)
	bases = make([]int, len(flows))
	for i, f := range flows {
		bases[i] = nextSeq[f.Src] + 1
		nextSeq[f.Src] += f.Count
		key := pair{f.Src, f.Dst}
		if fs, ok := firstSeq[key]; !ok || bases[i] < fs {
			firstSeq[key] = bases[i]
		}
	}
	firsts = make([]int, len(flows))
	for i, f := range flows {
		firsts[i] = firstSeq[pair{f.Src, f.Dst}]
	}
	return bases, firsts
}

// scheduleWorkload creates flow bundles at their start times per
// flowPlan's block assignment.
func (e *engine) scheduleWorkload() error {
	bases, firsts := flowPlan(e.cfg.Flows)
	for i, f := range e.cfg.Flows {
		f := f
		base, first := bases[i], firsts[i]
		if f.StartAt < e.firstStart {
			e.firstStart = f.StartAt
		}
		e.remaining += f.Count
		if _, err := e.sched.AtClass(f.StartAt, classWorkload, func() { e.generate(f, base, first) }); err != nil {
			return fmt.Errorf("core: scheduling flow: %w", err)
		}
	}
	return nil
}

func (e *engine) generate(f Flow, base, firstSeq int) {
	src := e.nodes[f.Src]
	now := e.sched.Now()
	for i := 0; i < f.Count; i++ {
		b := &bundle.Bundle{
			ID:        bundle.ID{Src: f.Src, Seq: base + i},
			Dst:       f.Dst,
			CreatedAt: now,
			Meta:      bundle.Meta{Size: f.Size},
			FirstSeq:  firstSeq,
		}
		cp := &bundle.Copy{Bundle: b, StoredAt: now, Pinned: true, Expiry: sim.Infinity}
		e.cfg.Protocol.OnGenerate(src, cp, now)
		if err := src.Store.Put(cp); err != nil {
			// Pinned puts bypass capacity; failure means a duplicate ID,
			// which per-source block allocation rules out.
			panic(fmt.Sprintf("core: generating %v: %v", b.ID, err))
		}
		e.holders.Track(b.ID)
		e.holders.Inc(b.ID)
		for _, o := range e.obs {
			o.OnGenerate(b.ID, b.Dst, now)
		}
	}
}

// scheduleContacts starts pulling the contact stream into the event
// queue one pending event at a time: each contact event pulls and
// schedules its successor before processing, so queue residency is O(1)
// per run regardless of contact count. Ordering class tiers keep
// equal-timestamp ordering identical to a preloaded event queue. An
// immediately-exhausted source is rejected here, mirroring
// Schedule.Validate's empty-schedule error on the materialized path.
func (e *engine) scheduleContacts() error {
	e.pushNextContact()
	if e.err != nil {
		return e.err
	}
	if e.pulled == 0 {
		return fmt.Errorf("%w: %v", ErrConfig, contact.ErrEmptySchedule)
	}
	return nil
}

// pushNextContact pulls the next contact from the source and schedules
// it, validating the stream incrementally: contacts must be
// individually valid, in-range, and in canonical start order. Pulling
// stops at the first contact starting beyond the horizon (the stream is
// sorted, so the rest are out of range too).
func (e *engine) pushNextContact() {
	if e.srcDone {
		return
	}
	c, ok := e.src.Next()
	if !ok {
		e.srcDone = true
		if err := e.src.Err(); err != nil {
			e.fail(fmt.Errorf("core: contact source failed after %d contacts: %w", e.pulled, err))
			return
		}
		e.settleHorizon()
		return
	}
	if err := e.checkStreamed(c); err != nil {
		e.srcDone = true
		e.fail(err)
		return
	}
	e.pulled++
	e.prevStart = c.Start
	if c.End > e.maxEnd {
		e.maxEnd = c.End
	}
	if c.Start > e.cap {
		e.srcDone = true
		e.settleHorizon()
		return
	}
	if _, err := e.sched.AtClass(c.Start, classContact, func() {
		e.pushNextContact()
		e.contact(c)
	}); err != nil {
		panic(fmt.Sprintf("core: scheduling contact %v: %v", c, err))
	}
}

// checkStreamed validates one pulled contact against the stream
// invariants a materialized schedule would have been checked for up
// front.
func (e *engine) checkStreamed(c contact.Contact) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("core: streamed contact %d: %w", e.pulled, err)
	}
	if int(c.B) >= len(e.nodes) {
		return fmt.Errorf("core: streamed contact %d: node %d out of range [0,%d)", e.pulled, c.B, len(e.nodes))
	}
	if c.Start < e.prevStart {
		return fmt.Errorf("core: streamed contact %d: start %v before previous start %v (stream not sorted)",
			e.pulled, c.Start, e.prevStart)
	}
	return nil
}

// settleHorizon tightens an adaptive (source-span) horizon to the true
// latest contact end once the stream is exhausted. Any event already
// queued past the settled horizon — a sampling tick, a late flow —
// could only have run after every contact had been pulled, so lowering
// the bound here is indistinguishable from having known it up front.
func (e *engine) settleHorizon() {
	if !e.adaptiveCap {
		return
	}
	h := e.maxEnd
	if h > e.cap {
		h = e.cap
	}
	e.sched.SetHorizon(h)
}

func (e *engine) scheduleSampling() {
	var tick func()
	tick = func() {
		s := e.holders.Sample(e.nodes, e.sched.Now())
		for _, o := range e.obs {
			o.OnSample(s)
		}
		// Completion is detected here, not mid-contact: quantizing the
		// early stop to sampling ticks makes the set of processed events
		// a pure function of (config, seed) rather than of processing
		// order, which is what lets the sharded executor run a whole
		// inter-tick epoch in parallel and still stop at the same tick
		// (DESIGN.md §12).
		if e.remaining == 0 && !e.cfg.RunToHorizon {
			e.completedStop = true
			e.sched.Stop()
			return
		}
		next := e.sched.Now() + sim.Time(e.cfg.SampleEvery)
		if _, err := e.sched.AtClass(next, classSampler, tick); err != nil {
			panic(fmt.Sprintf("core: rescheduling sampler: %v", err)) // future time: unreachable
		}
	}
	// First sample lands after workload generation at t=firstStart.
	at := e.firstStart
	if at >= sim.Infinity {
		at = 0
	}
	if _, err := e.sched.AtClass(at, classSampler, tick); err != nil {
		panic(fmt.Sprintf("core: scheduling sampler: %v", err))
	}
}

// contact processes one encounter per DESIGN.md §5: purge, control
// exchange, then budgeted half-duplex transmissions, lower ID first.
// With a finite bandwidth in effect (the contact's own, else the
// config's), the encounter additionally carries at most ⌊D·B⌋ payload
// bytes across both directions, with the control exchange optionally
// charged ControlBytes per record first (DESIGN.md §9).
func (e *engine) contact(c contact.Contact) {
	e.rng.Reseed(sim.EncounterSeed(e.cfg.Seed, uint64(c.A), uint64(c.B), c.Start))
	now := e.sched.Now()
	a, b := e.nodes[c.A], e.nodes[c.B]
	a.PurgeExpired(now)
	b.PurgeExpired(now)
	a.ObserveEncounter(now)
	b.ObserveEncounter(now)

	dur := float64(c.Duration())
	recordBudget := int(dur / e.cfg.TxTime * float64(e.cfg.RecordsPerSlot))
	bw := c.Bandwidth
	if bw == 0 {
		bw = e.cfg.Bandwidth
	}
	limited := bw > 0
	var bytesLeft int64
	var ctlBefore int64
	if limited {
		// ⌊D·B⌋, clamped: an out-of-range float→int64 conversion is
		// implementation-defined (a huge bandwidth must mean "effectively
		// unbounded", not a negative budget).
		if budget := math.Floor(dur * bw); budget >= math.MaxInt64 {
			bytesLeft = math.MaxInt64
		} else {
			bytesLeft = int64(budget)
		}
		ctlBefore = a.ControlSent + b.ControlSent
	}
	e.cfg.Protocol.Exchange(a, b, now, recordBudget)
	if limited && e.cfg.ControlBytes > 0 {
		// Signaling shares the link: the records the exchange carried
		// are charged against the contact's byte budget before data.
		bytesLeft -= int64(float64(a.ControlSent+b.ControlSent-ctlBefore) * e.cfg.ControlBytes)
		if bytesLeft < 0 {
			bytesLeft = 0
		}
	}

	slots := int(dur / e.cfg.TxTime)
	if slots <= 0 {
		return
	}
	// Lower-ID node sends first (§IV collision avoidance); the peer uses
	// whatever slot and byte budget remains.
	used, bytesLeft := e.transmitBatch(a, b, now, slots, 0, limited, bytesLeft)
	e.transmitBatch(b, a, now, slots, used, limited, bytesLeft)
}

// transmitBatch sends the sender's wanted bundles while slots — and,
// when the contact is bandwidth-limited, payload bytes — remain. used
// is the number of slots already consumed in this contact; the return
// values are the updated slot count and byte budget. Transmission i
// completes at start + (i+1)·TxTime.
//
// Partial-transfer semantics: a bundle the remaining byte budget cannot
// carry whole ends the batch — it is not transmitted, not mutated, and
// not marked carried by the receiver; budget is consumed strictly in
// the protocol's Wants order, so a large bundle is never skipped in
// favour of a smaller, lower-priority one.
func (e *engine) transmitBatch(sender, receiver *node.Node, start sim.Time, slots, used int, limited bool, bytesLeft int64) (int, int64) {
	if used >= slots {
		return used, bytesLeft
	}
	wants := e.cfg.Protocol.Wants(sender, receiver, start, e.rng)
	for _, id := range wants {
		if used >= slots {
			break
		}
		cp := sender.Store.Get(id)
		if cp == nil {
			// Purged mid-contact (e.g. covered by a fresh immunity
			// table); the node would not put it on the air.
			continue
		}
		if receiver.Store.Has(id) || receiver.Received.Has(id) {
			continue
		}
		if limited {
			if cp.Bundle.Meta.Size > bytesLeft {
				break
			}
			bytesLeft -= cp.Bundle.Meta.Size
		}
		used++
		at := start + sim.Time(float64(used)*e.cfg.TxTime)
		e.transmit(sender, receiver, cp, at)
	}
	return used, bytesLeft
}

// transmit performs one bundle transmission. OnTransmit (EC increments,
// TTL renewal) applies only to transfers the receiver actually takes —
// delivered or stored. A refused transfer burns the slot and is counted,
// but mutates no copy state: a sender cannot renew a bundle's TTL by
// shouting into a full buffer.
func (e *engine) transmit(sender, receiver *node.Node, cp *bundle.Copy, at sim.Time) {
	sender.DataSent++
	for _, o := range e.obs {
		o.OnTransmit(sender.ID, receiver.ID, cp.Bundle.ID, at)
	}
	rcpt := cp.Clone(at)
	if cp.Bundle.Dst == receiver.ID {
		e.cfg.Protocol.OnTransmit(sender, receiver, cp, rcpt, at)
		e.deliver(sender, receiver, cp.Bundle, at)
		return
	}
	// Byte admission runs before the protocol's slot-count Admit:
	// Admit may evict destructively (EC sheds its highest-count copy),
	// and a byte refusal after that eviction would have drained a
	// buffered copy with nothing admitted in its place. The order is
	// safe the other way around — a byte-pressure eviction also frees
	// a slot, and a protocol eviction also frees bytes, so neither
	// stage can invalidate the other's admission.
	if !e.admitBytes(receiver, rcpt, at) {
		return
	}
	if e.cfg.Protocol.Admit(receiver, rcpt, at) {
		e.cfg.Protocol.OnTransmit(sender, receiver, cp, rcpt, at)
		if err := receiver.Store.Put(rcpt); err != nil {
			panic(fmt.Sprintf("core: admit promised room for %v at node %d: %v",
				cp.Bundle.ID, receiver.ID, err))
		}
		e.holders.Inc(rcpt.Bundle.ID)
	}
}

// admitBytes relieves byte pressure at the receiver for an incoming
// sized copy: victims chosen by the configured DropPolicy are shed
// (reported with the bytepressure drop reason), and the incoming copy
// is refused when room cannot be made. A nil policy (no byte capacity
// configured) and size-less copies pass through untouched — the legacy
// path costs one branch.
func (e *engine) admitBytes(receiver *node.Node, rcpt *bundle.Copy, at sim.Time) bool {
	if e.dropPolicy == nil || rcpt.Bundle.Meta.Size == 0 {
		return true
	}
	evicted, ok := receiver.Store.MakeByteRoom(rcpt.Bundle.Meta.Size, e.dropPolicy)
	for _, cp := range evicted {
		receiver.NoteByteDropped(cp.Bundle.ID, at)
	}
	if !ok {
		receiver.NoteRefused(rcpt.Bundle.ID, at)
		return false
	}
	return true
}

func (e *engine) deliver(sender, dst *node.Node, b *bundle.Bundle, at sim.Time) {
	if dst.Received.Has(b.ID) {
		return // duplicate delivery; Wants filtering should prevent this
	}
	dst.Received.Add(b.ID)
	e.deliveredAt[b.ID] = at
	delay := float64(at - b.CreatedAt)
	e.delays = append(e.delays, delay)
	for _, o := range e.obs {
		o.OnDeliver(b.ID, dst.ID, delay, at)
	}
	if at > e.lastArrival {
		e.lastArrival = at
	}
	e.remaining--
	e.cfg.Protocol.OnDelivered(dst, sender, b.ID, at)
}

func (e *engine) result(end sim.Time) *Result {
	generated := 0
	for _, f := range e.cfg.Flows {
		generated += f.Count
	}
	delivered := len(e.deliveredAt)
	r := &Result{
		Protocol:          e.cfg.Protocol.Name(),
		Generated:         generated,
		Delivered:         delivered,
		DeliveryRatio:     float64(delivered) / float64(generated),
		Completed:         delivered == generated,
		Makespan:          -1,
		MeanOccupancy:     e.coll.MeanOccupancy(),
		MeanDuplication:   e.coll.MeanDuplication(),
		ControlRecords:    metrics.Overhead(e.nodes),
		DataTransmissions: metrics.DataTransmissions(e.nodes),
		FinishedAt:        end,
		DeliveryTimes:     e.deliveredAt,
	}
	if r.Completed {
		r.Makespan = float64(e.lastArrival - e.firstStart)
	}
	if delivered > 0 {
		sort.Float64s(e.delays)
		r.MeanDelay = stats.Mean(e.delays)
		r.DelayP50 = stats.Quantile(e.delays, 0.5)
		r.DelayP95 = stats.Quantile(e.delays, 0.95)
	}
	r.FinalOccupancy = make([]float64, len(e.nodes))
	r.FinalBuffered = make([]int, len(e.nodes))
	for i, n := range e.nodes {
		r.Refused += n.Refused
		r.Evicted += n.Evicted
		r.Expired += n.Expired
		r.ByteDropped += n.ByteDropped
		r.FinalOccupancy[i] = n.Store.Occupancy()
		r.FinalBuffered[i] = n.Store.Len()
	}
	return r
}
