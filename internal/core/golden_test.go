package core_test

// Golden equivalence harness: every registry protocol × three mobility
// substrates (synthetic Cambridge trace, subscriber-point RWP, the
// Fig. 14 controlled-interval scenario) is run with fixed seeds and the
// full Result compared field-for-field — floats bit-exact — against
// testdata/golden_results.json.
//
// The golden file was generated from the pre-indexed-store engine (the
// scan-and-sort hot path), so these tests prove the allocation-free
// rework (indexed buffer store, incremental duplication metrics,
// streaming contact scheduling) is observationally identical to the
// seed implementation. Regenerate only when a change is *meant* to
// alter results:
//
//	go test ./internal/core -run TestGoldenResults -update
import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/core"
	"dtnsim/internal/mobility"
	"dtnsim/internal/protocol"
)

var update = flag.Bool("update", false, "rewrite golden testdata files")

// goldenMobility is one mobility substrate under golden test. TxTime
// follows the experiment harness: the paper's 100 s/bundle link for the
// trace and RWP substrates, the faster 25 s link for the short
// controlled-interval scenario.
type goldenMobility struct {
	name   string
	spec   string
	flows  []core.Flow
	txTime float64
}

var goldenMobilities = []goldenMobility{
	{
		name: "trace",
		spec: "cambridge:seed=7",
		// Two flows sharing source 0 exercise the contiguous
		// sequence-block and FirstSeq paths.
		flows: []core.Flow{
			{Src: 0, Dst: 7, Count: 25},
			{Src: 0, Dst: 3, Count: 10, StartAt: 5000},
		},
		txTime: 100,
	},
	{
		name:   "rwp",
		spec:   "subscriber:seed=7",
		flows:  []core.Flow{{Src: 1, Dst: 5, Count: 30}},
		txTime: 100,
	},
	{
		name:   "interval",
		spec:   "interval:max=400,seed=7",
		flows:  []core.Flow{{Src: 0, Dst: 7, Count: 20}},
		txTime: 25,
	},
	// The three cells below fill the golden grid's substrate gaps
	// (PR 5): a classic-RWP cell — the one registry mobility the grid
	// never covered — plus cambridge and subscriber cells at a second
	// seed with different workloads, so the fixed-trace substrates are
	// pinned at more than one draw.
	{
		name: "classic",
		// Reduced span keeps the cell fast while still producing ~700
		// contacts among 12 nodes.
		spec:   "rwp:seed=7,span=100000,dt=25",
		flows:  []core.Flow{{Src: 2, Dst: 9, Count: 20}},
		txTime: 100,
	},
	{
		name: "cambridge",
		spec: "cambridge:seed=11",
		// Two flows with distinct sources (the trace cell pins the
		// shared-source block allocation; this one pins independent
		// sources).
		flows: []core.Flow{
			{Src: 3, Dst: 10, Count: 15},
			{Src: 5, Dst: 2, Count: 10, StartAt: 20000},
		},
		txTime: 100,
	},
	{
		name:   "subscriber",
		spec:   "subscriber:seed=11",
		flows:  []core.Flow{{Src: 4, Dst: 11, Count: 25}},
		txTime: 100,
	},
}

// goldenDelivery is one DeliveryTimes entry in deterministic order.
type goldenDelivery struct {
	Src  int     `json:"src"`
	Seq  int     `json:"seq"`
	Time float64 `json:"time"`
}

// goldenResult mirrors core.Result with a JSON-friendly DeliveryTimes.
// All floats round-trip bit-exactly through encoding/json.
type goldenResult struct {
	Protocol          string           `json:"protocol"`
	Generated         int              `json:"generated"`
	Delivered         int              `json:"delivered"`
	DeliveryRatio     float64          `json:"delivery_ratio"`
	Completed         bool             `json:"completed"`
	Makespan          float64          `json:"makespan"`
	MeanDelay         float64          `json:"mean_delay"`
	DelayP50          float64          `json:"delay_p50"`
	DelayP95          float64          `json:"delay_p95"`
	MeanOccupancy     float64          `json:"mean_occupancy"`
	MeanDuplication   float64          `json:"mean_duplication"`
	ControlRecords    int64            `json:"control_records"`
	DataTransmissions int64            `json:"data_transmissions"`
	Refused           int64            `json:"refused"`
	Evicted           int64            `json:"evicted"`
	Expired           int64            `json:"expired"`
	ByteDropped       int64            `json:"byte_dropped,omitempty"`
	FinishedAt        float64          `json:"finished_at"`
	DeliveryTimes     []goldenDelivery `json:"delivery_times"`
	FinalOccupancy    []float64        `json:"final_occupancy"`
	FinalBuffered     []int            `json:"final_buffered"`
}

func toGolden(r *core.Result) goldenResult {
	ids := make([]bundle.ID, 0, len(r.DeliveryTimes))
	for id := range r.DeliveryTimes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	dt := make([]goldenDelivery, len(ids))
	for i, id := range ids {
		dt[i] = goldenDelivery{Src: int(id.Src), Seq: id.Seq, Time: float64(r.DeliveryTimes[id])}
	}
	return goldenResult{
		Protocol:          r.Protocol,
		Generated:         r.Generated,
		Delivered:         r.Delivered,
		DeliveryRatio:     r.DeliveryRatio,
		Completed:         r.Completed,
		Makespan:          r.Makespan,
		MeanDelay:         r.MeanDelay,
		DelayP50:          r.DelayP50,
		DelayP95:          r.DelayP95,
		MeanOccupancy:     r.MeanOccupancy,
		MeanDuplication:   r.MeanDuplication,
		ControlRecords:    r.ControlRecords,
		DataTransmissions: r.DataTransmissions,
		Refused:           r.Refused,
		Evicted:           r.Evicted,
		Expired:           r.Expired,
		ByteDropped:       r.ByteDropped,
		FinishedAt:        float64(r.FinishedAt),
		DeliveryTimes:     dt,
		FinalOccupancy:    r.FinalOccupancy,
		FinalBuffered:     r.FinalBuffered,
	}
}

// goldenConfig builds the run config for one (protocol spec, mobility)
// cell. Every run uses RunToHorizon so sampling, purging and TTL decay
// stay active after the last delivery. streamed selects the contact
// plan form: the materialized Schedule or the pull-based Source — the
// golden grid runs both and demands bit-identical results, which is
// the proof that streaming mobility is observationally equivalent.
func goldenConfig(t testing.TB, protoSpec string, m goldenMobility, streamed bool) core.Config {
	t.Helper()
	src, err := mobility.Parse(m.spec)
	if err != nil {
		t.Fatalf("mobility spec %q: %v", m.spec, err)
	}
	f, err := protocol.Parse(protoSpec)
	if err != nil {
		t.Fatalf("protocol spec %q: %v", protoSpec, err)
	}
	cfg := core.Config{
		Protocol:     f.New(),
		Flows:        m.flows,
		TxTime:       m.txTime,
		Seed:         2012,
		RunToHorizon: true,
	}
	if streamed {
		stream, err := src.Stream(7)
		if err != nil {
			t.Fatalf("stream %q: %v", m.spec, err)
		}
		cfg.Source = stream
	} else {
		sched, err := src.Generate(7)
		if err != nil {
			t.Fatalf("generate %q: %v", m.spec, err)
		}
		cfg.Schedule = sched
	}
	return cfg
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

// TestGoldenResults runs the full protocol × mobility grid and compares
// each Result bit-for-bit against the committed golden file.
func TestGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is slow")
	}
	got := make(map[string]goldenResult)
	for _, protoSpec := range protocol.BuiltinSpecs() {
		for _, m := range goldenMobilities {
			key := fmt.Sprintf("%s|%s", protoSpec, m.name)
			res, err := core.Run(goldenConfig(t, protoSpec, m, false))
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			got[key] = toGolden(res)
			// The same cell through a streaming source must be
			// indistinguishable from the materialized run.
			sres, err := core.Run(goldenConfig(t, protoSpec, m, true))
			if err != nil {
				t.Fatalf("%s (streamed): %v", key, err)
			}
			if !reflect.DeepEqual(toGolden(res), toGolden(sres)) {
				t.Errorf("%s: streamed source diverged from materialized schedule\n got: %+v\nwant: %+v",
					key, toGolden(sres), toGolden(res))
			}
		}
	}

	path := goldenPath("golden_results.json")
	if *update {
		buf, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cells)", path, len(got))
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want map[string]goldenResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cells, run produced %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from run", key)
			continue
		}
		if !reflect.DeepEqual(w, g) {
			t.Errorf("%s: result diverged from golden\n got: %+v\nwant: %+v", key, g, w)
		}
	}
}

// TestGoldenResultsRepeatable re-runs two grid cells and checks the
// engine is deterministic run-to-run in-process (fresh protocol
// instances, fresh schedules, same seeds).
func TestGoldenResultsRepeatable(t *testing.T) {
	for _, cell := range []struct {
		proto string
		mob   goldenMobility
	}{
		{"immunity", goldenMobilities[0]},
		{"ecttl", goldenMobilities[2]},
	} {
		a, err := core.Run(goldenConfig(t, cell.proto, cell.mob, false))
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Run(goldenConfig(t, cell.proto, cell.mob, true))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(toGolden(a), toGolden(b)) {
			t.Errorf("%s|%s: back-to-back runs diverge", cell.proto, cell.mob.name)
		}
	}
}
