package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dtnsim/internal/buffer"
	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/metrics"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// This file is the sharded executor (DESIGN.md §12): Config.Shards >= 1
// runs the simulation with K worker goroutines instead of the
// sequential event loop, producing bit-identical Results and observer
// event streams for every K.
//
// The design in one paragraph: virtual time is cut into epochs at the
// sampling ticks (the only events that read global state). Within an
// epoch, the canonical (time, class, seq) event order is materialized
// into an item list — flow generations and contacts — and each item is
// ready to execute as soon as the previous item touching either of its
// nodes has finished (per-node dependency chains). Items execute on K
// workers, mutating only the states of their own two nodes and
// recording their global side effects (observer events, holder-count
// and delivery bookkeeping) into a per-item effect buffer. After a
// barrier, a single merger replays the buffers in canonical item order,
// so everything order-sensitive — observer CSV streams, delay
// accumulation, duplication metrics — is byte-identical to the
// sequential engine. Random draws inside a contact come from a
// per-worker stream reseeded from sim.EncounterSeed, so the draw
// sequence is a function of the encounter, not of the executor.
//
// The per-item execution logic lives in Kernel (kernel.go): the same
// state machine a worker goroutine runs here is what a worker *process*
// runs in the distributed backend (internal/dist), which replaces only
// runEpoch's dispatch — collection, merge and sampling stay on this
// loop (backend.go). The kernel deliberately duplicates engine.contact
// and friends rather than abstracting them behind a shared interface:
// the contact path is the hot path, and the golden equivalence suite
// (shard_test.go) pins the two copies together bit-for-bit, which is a
// stronger drift guard than shared indirection.

// EffectKind tags one recorded side effect.
type EffectKind uint8

const (
	EffectGenerate EffectKind = iota // a workload bundle was created at its source
	EffectTransmit                   // a bundle went on the air
	EffectDeliver                    // a bundle reached its destination
	EffectDrop                       // a node shed (or refused) a copy
	EffectStored                     // a relay stored a copy
)

// Effect is one deferred global side effect of an item, replayed by the
// merger in canonical order. Field use varies by kind; see merge.
type Effect struct {
	Kind   EffectKind
	From   contact.NodeID // transmit: sender; drop: the shedding node
	To     contact.NodeID // transmit: receiver; generate/deliver: destination
	ID     bundle.ID
	Reason node.DropReason // drop only
	At     sim.Time
	Delay  float64 // deliver only
}

// EffectBuf accumulates one item's effects in program order.
type EffectBuf struct{ fx []Effect }

//dtn:hotpath
func (b *EffectBuf) add(e Effect) { b.fx = append(b.fx, e) }

// Effects returns the recorded effects in program order. The slice is
// owned by the buffer; callers must not retain it across epochs.
func (b *EffectBuf) Effects() []Effect { return b.fx }

// Set replaces the buffer's contents — how a distributed backend
// installs a worker's replayed effects before the merge.
func (b *EffectBuf) Set(fx []Effect) { b.fx = append(b.fx[:0], fx...) }

// EpochItem is one unit of epoch work: a flow generation (Gen=true,
// endpoint A only) or a contact (endpoints A < B). deps counts
// unfinished predecessor items on its nodes' chains; next holds the
// successor on A's chain (slot 0) and B's chain (slot 1).
type EpochItem struct {
	T   sim.Time
	Gen bool
	A,
	B contact.NodeID
	C              contact.Contact
	Flow           Flow
	Base, FirstSeq int
	deps           int32
	next           [2]*EpochItem
	Fx             EffectBuf
}

// shardWorker is one executor goroutine's private state: a Kernel with
// its own reseedable encounter stream and drop-policy instance, so no
// random draw ever crosses a goroutine boundary.
type shardWorker struct {
	kern *Kernel
	mbox chan *EpochItem
}

// shardRun drives the epoch loop over an engine's state.
type shardRun struct {
	e *engine
	k int
	// horizon is the effective run bound, lowered by settle exactly as
	// the sequential scheduler's horizon would be.
	horizon sim.Time
	// hookTarget[n] is the effect buffer of the item currently executing
	// on node n; the node's DropHook writes through it. Only the worker
	// holding n's chain position touches entry n, so writes are ordered
	// by the chain's happens-before edges.
	hookTarget []*EffectBuf
	// flows is the workload sorted by (StartAt, declaration order) — the
	// order the scheduler's (time, class, seq) tiers would pop the
	// generation events in.
	flows    []shardFlow
	nextFlow int
	// pending buffers the one contact pulled past the current epoch
	// boundary (the stream is start-sorted, so one suffices).
	pending    contact.Contact
	hasPending bool
	// items is the current epoch's canonical-order item list, reused
	// across epochs (grown once, effect buffers keep their capacity).
	items []EpochItem
	// tails/touched index the per-node chain heads during item linking.
	tails   []*EpochItem
	touched []contact.NodeID
	workers []*shardWorker
}

type shardFlow struct {
	f              Flow
	base, firstSeq int
}

// runSharded executes the run with k worker shards — or, when
// Config.Backend is set, hands each epoch's item list to the backend
// instead of the in-process workers. It is called from Run after common
// setup (validation, node creation, drop policy) and replaces the
// scheduler-driven event loop.
func (e *engine) runSharded(k int) (*Result, error) {
	r := &shardRun{
		e:          e,
		k:          k,
		horizon:    e.cap,
		hookTarget: make([]*EffectBuf, len(e.nodes)),
		tails:      make([]*EpochItem, len(e.nodes)),
	}
	// Re-point the drop hooks at the shard effect buffers: a drop lands
	// in the buffer of whichever item is executing on the node, and the
	// merger replays it exactly where the sequential observers saw it.
	for _, n := range e.nodes {
		at := n.ID
		n.DropHook = func(id bundle.ID, reason node.DropReason, now sim.Time) {
			r.hookTarget[at].add(Effect{Kind: EffectDrop, From: at, ID: id, Reason: reason, At: now})
		}
	}
	bases, firsts := flowPlan(e.cfg.Flows)
	r.flows = make([]shardFlow, len(e.cfg.Flows))
	for i, f := range e.cfg.Flows {
		r.flows[i] = shardFlow{f: f, base: bases[i], firstSeq: firsts[i]}
		if f.StartAt < e.firstStart {
			e.firstStart = f.StartAt
		}
		e.remaining += f.Count
	}
	sort.SliceStable(r.flows, func(i, j int) bool { return r.flows[i].f.StartAt < r.flows[j].f.StartAt })
	if b := e.cfg.Backend; b != nil {
		// Execution is delegated: items never run on this process's
		// nodes, so no local workers (and no local kernels) exist.
		if err := b.Start(RunEnv{Cfg: e.cfg, Nodes: e.nodes}); err != nil {
			return nil, err
		}
	} else {
		r.workers = make([]*shardWorker, k)
		for i := range r.workers {
			kern := &Kernel{
				Nodes:          e.nodes,
				Hooks:          r.hookTarget,
				Protocol:       e.cfg.Protocol,
				Seed:           e.cfg.Seed,
				TxTime:         e.cfg.TxTime,
				RecordsPerSlot: e.cfg.RecordsPerSlot,
				Bandwidth:      e.cfg.Bandwidth,
				ControlBytes:   e.cfg.ControlBytes,
				RNG:            sim.NewReseedable(),
			}
			if e.dropPolicy != nil {
				// Same policy name and seed as the engine's instance; the
				// per-worker copy exists so randomized policies can draw from
				// this worker's encounter stream.
				pol, err := buffer.NewDropPolicy(e.dropPolicy.Name(), e.cfg.Seed^0xb17ed70b5eed)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrConfig, err)
				}
				if sp, ok := pol.(buffer.StreamPolicy); ok {
					sp.SetStream(kern.RNG)
				}
				kern.Policy = pol
			}
			r.workers[i] = &shardWorker{kern: kern}
		}
	}
	// Prime the stream, mirroring scheduleContacts' empty-source check.
	r.pull()
	if e.err != nil {
		return nil, e.err
	}
	if e.pulled == 0 {
		return nil, fmt.Errorf("%w: %v", ErrConfig, contact.ErrEmptySchedule)
	}
	end, err := r.loop()
	if err != nil {
		return nil, err
	}
	if ctx := e.cfg.Context; ctx != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("%w at t=%v: %w", ErrCancelled, end, context.Cause(ctx))
	}
	if b := e.cfg.Backend; b != nil {
		// Download the final node states: Result's per-node columns
		// (occupancy, buffered copies, overhead counters) read e.nodes.
		if err := b.Finish(); err != nil {
			return nil, err
		}
	}
	return e.result(end), nil
}

// loop runs epochs delimited by sampling ticks until the run completes
// (every flow delivered, observed at a tick) or the horizon is reached.
// The tick runs after the epoch's merge, exactly where the sequential
// classSampler tier places it among equal-time events.
func (r *shardRun) loop() (sim.Time, error) {
	e := r.e
	tickAt := e.firstStart
	last := sim.Time(math.Inf(-1)) // last completed epoch boundary
	for {
		if ctx := e.cfg.Context; ctx != nil && ctx.Err() != nil {
			return 0, fmt.Errorf("%w at t=%v: %w", ErrCancelled, last, context.Cause(ctx))
		}
		withTick := tickAt <= r.horizon
		boundary := tickAt
		if !withTick {
			boundary = r.horizon
		}
		r.collect(boundary)
		if e.err != nil {
			return 0, e.err
		}
		if r.horizon < boundary {
			// The stream settled mid-collection below the target
			// boundary: the tick at the old boundary never fires (it is
			// past the true horizon), and neither do generations beyond
			// it. Contacts cannot be affected — every pulled in-range
			// contact starts before the settled horizon.
			r.filterBeyond(r.horizon)
			boundary = r.horizon
			withTick = false
		}
		if err := r.runEpoch(); err != nil {
			return 0, err
		}
		r.merge()
		if !withTick {
			// Final partial epoch (lastTick, horizon]: the run ends at
			// the horizon, raised to the last arrival exactly like the
			// sequential path.
			end := r.horizon
			if e.lastArrival > end {
				end = e.lastArrival
			}
			return end, nil
		}
		var s = r.sample(tickAt)
		for _, o := range e.obs {
			o.OnSample(s)
		}
		if e.remaining == 0 && !e.cfg.RunToHorizon {
			e.completedStop = true
			return e.lastArrival, nil
		}
		tickAt += sim.Time(e.cfg.SampleEvery)
		last = boundary
	}
}

// sample reads the tick's metrics: local node stores on the in-process
// executor, the backend's authoritative occupancy view when execution
// is delegated (this process's nodes are stale between epochs there).
// Duplication comes from the merge-maintained holder counts either way.
func (r *shardRun) sample(tickAt sim.Time) metrics.Sample {
	e := r.e
	if b := e.cfg.Backend; b != nil {
		return e.holders.SampleFunc(len(e.nodes), b.NodeOccupancy, tickAt)
	}
	return e.holders.Sample(e.nodes, tickAt)
}

// pull advances the contact stream by one, mirroring pushNextContact's
// incremental validation, horizon bookkeeping and settle-on-exhaustion
// — minus the scheduling.
func (r *shardRun) pull() {
	e := r.e
	if e.srcDone || r.hasPending {
		return
	}
	c, ok := e.src.Next()
	if !ok {
		e.srcDone = true
		if err := e.src.Err(); err != nil {
			e.err = fmt.Errorf("core: contact source failed after %d contacts: %w", e.pulled, err)
			return
		}
		r.settle()
		return
	}
	if err := e.checkStreamed(c); err != nil {
		e.srcDone = true
		e.err = err
		return
	}
	e.pulled++
	e.prevStart = c.Start
	if c.End > e.maxEnd {
		e.maxEnd = c.End
	}
	if c.Start > e.cap {
		e.srcDone = true
		r.settle()
		return
	}
	r.pending, r.hasPending = c, true
}

// settle tightens an adaptive horizon to the true latest contact end,
// the shard-loop counterpart of engine.settleHorizon.
func (r *shardRun) settle() {
	if !r.e.adaptiveCap {
		return
	}
	h := r.e.maxEnd
	if h > r.e.cap {
		h = r.e.cap
	}
	if h < r.horizon {
		r.horizon = h
	}
}

// collect materializes the epoch's items in canonical (time, class,
// seq) order: flow generations (class 0, declaration order) merged with
// contacts (class 1, stream order), up to and including the boundary.
func (r *shardRun) collect(boundary sim.Time) {
	e := r.e
	r.items = r.items[:0]
	for {
		ft := sim.Infinity
		if r.nextFlow < len(r.flows) {
			ft = r.flows[r.nextFlow].f.StartAt
		}
		r.pull()
		if e.err != nil {
			return
		}
		ct := sim.Infinity
		if r.hasPending {
			ct = r.pending.Start
		}
		if ft > boundary && ct > boundary {
			return
		}
		// Equal-time tie: workload class runs before contact class.
		if ft <= ct {
			fl := r.flows[r.nextFlow]
			r.nextFlow++
			it := r.nextItem()
			it.T, it.Gen = ft, true
			it.A, it.B = fl.f.Src, fl.f.Src
			it.Flow, it.Base, it.FirstSeq = fl.f, fl.base, fl.firstSeq
		} else {
			c := r.pending
			r.hasPending = false
			it := r.nextItem()
			it.T, it.Gen = ct, false
			it.A, it.B = c.A, c.B
			it.C = c
		}
	}
}

// nextItem extends the epoch item list by one reused slot. Pointers
// into r.items are only taken after collection finishes, so append
// reallocation during growth is safe.
func (r *shardRun) nextItem() *EpochItem {
	if len(r.items) < cap(r.items) {
		r.items = r.items[:len(r.items)+1]
	} else {
		r.items = append(r.items, EpochItem{})
	}
	it := &r.items[len(r.items)-1]
	it.Fx.fx = it.Fx.fx[:0]
	it.next[0], it.next[1] = nil, nil
	it.deps = 0
	return it
}

// filterBeyond drops items past the settled horizon. Only generation
// items can be affected (see loop); a contact beyond the horizon would
// violate the settle invariant.
func (r *shardRun) filterBeyond(h sim.Time) {
	kept := r.items[:0]
	for i := range r.items {
		if r.items[i].T <= h {
			kept = append(kept, r.items[i])
		} else if !r.items[i].Gen {
			panic(fmt.Sprintf("core: sharded contact at %v beyond settled horizon %v", r.items[i].T, h))
		}
	}
	r.items = kept
}

// runEpoch executes the collected items on K workers — or ships the
// whole epoch to the configured backend. Dependency chains: an item is
// ready once every earlier item sharing one of its nodes has finished;
// readiness is tracked with an atomic countdown and ready items travel
// to their owner shard (lower endpoint mod K) over buffered channels,
// so sends never block and every channel receive gives the race
// detector the happens-before edge matching the chain.
func (r *shardRun) runEpoch() error {
	n := len(r.items)
	if n == 0 {
		return nil
	}
	if b := r.e.cfg.Backend; b != nil {
		// The backend owns node state and dependency scheduling; it must
		// leave each item's Fx holding the effects the in-process kernel
		// would have recorded, in the same program order.
		return b.RunEpoch(&Epoch{r: r})
	}
	for i := range r.items {
		it := &r.items[i]
		r.chain(it, it.A)
		if it.B != it.A {
			r.chain(it, it.B)
		}
	}
	var items sync.WaitGroup
	items.Add(n)
	for _, w := range r.workers {
		w.mbox = make(chan *EpochItem, n)
	}
	// Seed the roots before any worker starts: deps still holds the
	// chain builder's single-threaded value here, so "deps == 0" is
	// exactly the root set, and the buffered sends cannot block. Seeding
	// after spawn would race — a running worker's fanout can decrement a
	// successor to zero and enqueue it while the scan is still walking,
	// and the scan would then send that item a second time.
	for i := range r.items {
		it := &r.items[i]
		if it.deps == 0 {
			r.workers[int(it.A)%r.k].mbox <- it
		}
	}
	var done sync.WaitGroup
	for _, w := range r.workers {
		done.Add(1)
		go func(w *shardWorker) {
			defer done.Done()
			for it := range w.mbox {
				w.kern.Exec(it)
				r.fanout(it)
				items.Done()
			}
		}(w)
	}
	items.Wait()
	for _, w := range r.workers {
		close(w.mbox)
	}
	done.Wait()
	for _, nd := range r.touched {
		r.tails[nd] = nil
	}
	r.touched = r.touched[:0]
	return nil
}

// chain links it onto node nd's dependency chain.
func (r *shardRun) chain(it *EpochItem, nd contact.NodeID) {
	prev := r.tails[nd]
	if prev == nil {
		r.touched = append(r.touched, nd)
	} else {
		slot := 0
		if prev.A != nd {
			slot = 1
		}
		prev.next[slot] = it
		it.deps++
	}
	r.tails[nd] = it
}

// fanout releases it's chain successors, dispatching any that became
// ready to their owner shard's mailbox.
//
//dtn:hotpath
func (r *shardRun) fanout(it *EpochItem) {
	for s := 0; s < 2; s++ {
		nxt := it.next[s]
		if nxt != nil && atomic.AddInt32(&nxt.deps, -1) == 0 {
			r.workers[int(nxt.A)%r.k].mbox <- nxt
		}
	}
}

// merge replays the epoch's effect buffers in canonical item order on
// the single merger goroutine, reproducing the exact observer call
// sequence and holder/delivery bookkeeping of the sequential engine.
//
//dtn:hotpath
func (r *shardRun) merge() {
	e := r.e
	for i := range r.items {
		it := &r.items[i]
		for j := range it.Fx.fx {
			fx := &it.Fx.fx[j]
			switch fx.Kind {
			case EffectGenerate:
				e.holders.Track(fx.ID)
				e.holders.Inc(fx.ID)
				for _, o := range e.obs {
					o.OnGenerate(fx.ID, fx.To, fx.At)
				}
			case EffectTransmit:
				for _, o := range e.obs {
					o.OnTransmit(fx.From, fx.To, fx.ID, fx.At)
				}
			case EffectDeliver:
				e.deliveredAt[fx.ID] = fx.At
				e.delays = append(e.delays, fx.Delay)
				for _, o := range e.obs {
					o.OnDeliver(fx.ID, fx.To, fx.Delay, fx.At)
				}
				if fx.At > e.lastArrival {
					e.lastArrival = fx.At
				}
				e.remaining--
			case EffectDrop:
				if fx.Reason != node.DropRefused {
					e.holders.Dec(fx.ID)
				}
				for _, o := range e.obs {
					o.OnDrop(fx.From, fx.ID, fx.Reason, fx.At)
				}
			case EffectStored:
				e.holders.Inc(fx.ID)
			}
		}
	}
}
