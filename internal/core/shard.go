package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dtnsim/internal/buffer"
	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// This file is the sharded executor (DESIGN.md §12): Config.Shards >= 1
// runs the simulation with K worker goroutines instead of the
// sequential event loop, producing bit-identical Results and observer
// event streams for every K.
//
// The design in one paragraph: virtual time is cut into epochs at the
// sampling ticks (the only events that read global state). Within an
// epoch, the canonical (time, class, seq) event order is materialized
// into an item list — flow generations and contacts — and each item is
// ready to execute as soon as the previous item touching either of its
// nodes has finished (per-node dependency chains). Items execute on K
// workers, mutating only the states of their own two nodes and
// recording their global side effects (observer events, holder-count
// and delivery bookkeeping) into a per-item effect buffer. After a
// barrier, a single merger replays the buffers in canonical item order,
// so everything order-sensitive — observer CSV streams, delay
// accumulation, duplication metrics — is byte-identical to the
// sequential engine. Random draws inside a contact come from a
// per-worker stream reseeded from sim.EncounterSeed, so the draw
// sequence is a function of the encounter, not of the executor.
//
// The per-contact logic below deliberately duplicates engine.contact
// and friends rather than abstracting them behind an executor
// interface: the contact path is the hot path, and the golden
// equivalence suite (shard_test.go) pins the two copies together
// bit-for-bit, which is a stronger drift guard than shared indirection.

// fxKind tags one recorded side effect.
type fxKind uint8

const (
	fxGenerate fxKind = iota // a workload bundle was created at its source
	fxTransmit               // a bundle went on the air
	fxDeliver                // a bundle reached its destination
	fxDrop                   // a node shed (or refused) a copy
	fxStored                 // a relay stored a copy
)

// effect is one deferred global side effect of an item, replayed by the
// merger in canonical order. Field use varies by kind; see merge.
type effect struct {
	kind   fxKind
	from   contact.NodeID // transmit: sender; drop: the shedding node
	to     contact.NodeID // transmit: receiver; generate/deliver: destination
	id     bundle.ID
	reason node.DropReason // drop only
	at     sim.Time
	delay  float64 // deliver only
}

// fxBuf accumulates one item's effects in program order.
type fxBuf struct{ fx []effect }

//dtn:hotpath
func (b *fxBuf) add(e effect) { b.fx = append(b.fx, e) }

// shardItem is one unit of epoch work: a flow generation (gen=true,
// endpoint a only) or a contact (endpoints a < b). deps counts
// unfinished predecessor items on its nodes' chains; next holds the
// successor on a's chain (slot 0) and b's chain (slot 1).
type shardItem struct {
	t   sim.Time
	gen bool
	a,
	b contact.NodeID
	c              contact.Contact
	flow           Flow
	base, firstSeq int
	deps           int32
	next           [2]*shardItem
	fx             fxBuf
}

// shardWorker is one executor goroutine's private state: its own
// reseedable encounter stream and drop-policy instance, so no random
// draw ever crosses a goroutine boundary.
type shardWorker struct {
	r    *shardRun
	rng  *sim.RNG
	pol  buffer.DropPolicy
	mbox chan *shardItem
}

// shardRun drives the epoch loop over an engine's state.
type shardRun struct {
	e *engine
	k int
	// horizon is the effective run bound, lowered by settle exactly as
	// the sequential scheduler's horizon would be.
	horizon sim.Time
	// hookTarget[n] is the effect buffer of the item currently executing
	// on node n; the node's DropHook writes through it. Only the worker
	// holding n's chain position touches entry n, so writes are ordered
	// by the chain's happens-before edges.
	hookTarget []*fxBuf
	// flows is the workload sorted by (StartAt, declaration order) — the
	// order the scheduler's (time, class, seq) tiers would pop the
	// generation events in.
	flows    []shardFlow
	nextFlow int
	// pending buffers the one contact pulled past the current epoch
	// boundary (the stream is start-sorted, so one suffices).
	pending    contact.Contact
	hasPending bool
	// items is the current epoch's canonical-order item list, reused
	// across epochs (grown once, effect buffers keep their capacity).
	items []shardItem
	// tails/touched index the per-node chain heads during item linking.
	tails   []*shardItem
	touched []contact.NodeID
	workers []*shardWorker
}

type shardFlow struct {
	f              Flow
	base, firstSeq int
}

// runSharded executes the run with k worker shards. It is called from
// Run after common setup (validation, node creation, drop policy) and
// replaces the scheduler-driven event loop.
func (e *engine) runSharded(k int) (*Result, error) {
	r := &shardRun{
		e:          e,
		k:          k,
		horizon:    e.cap,
		hookTarget: make([]*fxBuf, len(e.nodes)),
		tails:      make([]*shardItem, len(e.nodes)),
	}
	// Re-point the drop hooks at the shard effect buffers: a drop lands
	// in the buffer of whichever item is executing on the node, and the
	// merger replays it exactly where the sequential observers saw it.
	for _, n := range e.nodes {
		at := n.ID
		n.DropHook = func(id bundle.ID, reason node.DropReason, now sim.Time) {
			r.hookTarget[at].add(effect{kind: fxDrop, from: at, id: id, reason: reason, at: now})
		}
	}
	bases, firsts := flowPlan(e.cfg.Flows)
	r.flows = make([]shardFlow, len(e.cfg.Flows))
	for i, f := range e.cfg.Flows {
		r.flows[i] = shardFlow{f: f, base: bases[i], firstSeq: firsts[i]}
		if f.StartAt < e.firstStart {
			e.firstStart = f.StartAt
		}
		e.remaining += f.Count
	}
	sort.SliceStable(r.flows, func(i, j int) bool { return r.flows[i].f.StartAt < r.flows[j].f.StartAt })
	r.workers = make([]*shardWorker, k)
	for i := range r.workers {
		w := &shardWorker{r: r, rng: sim.NewReseedable()}
		if e.dropPolicy != nil {
			// Same policy name and seed as the engine's instance; the
			// per-worker copy exists so randomized policies can draw from
			// this worker's encounter stream.
			pol, err := buffer.NewDropPolicy(e.dropPolicy.Name(), e.cfg.Seed^0xb17ed70b5eed)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrConfig, err)
			}
			if sp, ok := pol.(buffer.StreamPolicy); ok {
				sp.SetStream(w.rng)
			}
			w.pol = pol
		}
		r.workers[i] = w
	}
	// Prime the stream, mirroring scheduleContacts' empty-source check.
	r.pull()
	if e.err != nil {
		return nil, e.err
	}
	if e.pulled == 0 {
		return nil, fmt.Errorf("%w: %v", ErrConfig, contact.ErrEmptySchedule)
	}
	end, err := r.loop()
	if err != nil {
		return nil, err
	}
	if ctx := e.cfg.Context; ctx != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("%w at t=%v: %w", ErrCancelled, end, context.Cause(ctx))
	}
	return e.result(end), nil
}

// loop runs epochs delimited by sampling ticks until the run completes
// (every flow delivered, observed at a tick) or the horizon is reached.
// The tick runs after the epoch's merge, exactly where the sequential
// classSampler tier places it among equal-time events.
func (r *shardRun) loop() (sim.Time, error) {
	e := r.e
	tickAt := e.firstStart
	last := sim.Time(math.Inf(-1)) // last completed epoch boundary
	for {
		if ctx := e.cfg.Context; ctx != nil && ctx.Err() != nil {
			return 0, fmt.Errorf("%w at t=%v: %w", ErrCancelled, last, context.Cause(ctx))
		}
		withTick := tickAt <= r.horizon
		boundary := tickAt
		if !withTick {
			boundary = r.horizon
		}
		r.collect(boundary)
		if e.err != nil {
			return 0, e.err
		}
		if r.horizon < boundary {
			// The stream settled mid-collection below the target
			// boundary: the tick at the old boundary never fires (it is
			// past the true horizon), and neither do generations beyond
			// it. Contacts cannot be affected — every pulled in-range
			// contact starts before the settled horizon.
			r.filterBeyond(r.horizon)
			boundary = r.horizon
			withTick = false
		}
		r.runEpoch()
		r.merge()
		if !withTick {
			// Final partial epoch (lastTick, horizon]: the run ends at
			// the horizon, raised to the last arrival exactly like the
			// sequential path.
			end := r.horizon
			if e.lastArrival > end {
				end = e.lastArrival
			}
			return end, nil
		}
		s := e.holders.Sample(e.nodes, tickAt)
		for _, o := range e.obs {
			o.OnSample(s)
		}
		if e.remaining == 0 && !e.cfg.RunToHorizon {
			e.completedStop = true
			return e.lastArrival, nil
		}
		tickAt += sim.Time(e.cfg.SampleEvery)
		last = boundary
	}
}

// pull advances the contact stream by one, mirroring pushNextContact's
// incremental validation, horizon bookkeeping and settle-on-exhaustion
// — minus the scheduling.
func (r *shardRun) pull() {
	e := r.e
	if e.srcDone || r.hasPending {
		return
	}
	c, ok := e.src.Next()
	if !ok {
		e.srcDone = true
		if err := e.src.Err(); err != nil {
			e.err = fmt.Errorf("core: contact source failed after %d contacts: %w", e.pulled, err)
			return
		}
		r.settle()
		return
	}
	if err := e.checkStreamed(c); err != nil {
		e.srcDone = true
		e.err = err
		return
	}
	e.pulled++
	e.prevStart = c.Start
	if c.End > e.maxEnd {
		e.maxEnd = c.End
	}
	if c.Start > e.cap {
		e.srcDone = true
		r.settle()
		return
	}
	r.pending, r.hasPending = c, true
}

// settle tightens an adaptive horizon to the true latest contact end,
// the shard-loop counterpart of engine.settleHorizon.
func (r *shardRun) settle() {
	if !r.e.adaptiveCap {
		return
	}
	h := r.e.maxEnd
	if h > r.e.cap {
		h = r.e.cap
	}
	if h < r.horizon {
		r.horizon = h
	}
}

// collect materializes the epoch's items in canonical (time, class,
// seq) order: flow generations (class 0, declaration order) merged with
// contacts (class 1, stream order), up to and including the boundary.
func (r *shardRun) collect(boundary sim.Time) {
	e := r.e
	r.items = r.items[:0]
	for {
		ft := sim.Infinity
		if r.nextFlow < len(r.flows) {
			ft = r.flows[r.nextFlow].f.StartAt
		}
		r.pull()
		if e.err != nil {
			return
		}
		ct := sim.Infinity
		if r.hasPending {
			ct = r.pending.Start
		}
		if ft > boundary && ct > boundary {
			return
		}
		// Equal-time tie: workload class runs before contact class.
		if ft <= ct {
			fl := r.flows[r.nextFlow]
			r.nextFlow++
			it := r.nextItem()
			it.t, it.gen = ft, true
			it.a, it.b = fl.f.Src, fl.f.Src
			it.flow, it.base, it.firstSeq = fl.f, fl.base, fl.firstSeq
		} else {
			c := r.pending
			r.hasPending = false
			it := r.nextItem()
			it.t, it.gen = ct, false
			it.a, it.b = c.A, c.B
			it.c = c
		}
	}
}

// nextItem extends the epoch item list by one reused slot. Pointers
// into r.items are only taken after collection finishes, so append
// reallocation during growth is safe.
func (r *shardRun) nextItem() *shardItem {
	if len(r.items) < cap(r.items) {
		r.items = r.items[:len(r.items)+1]
	} else {
		r.items = append(r.items, shardItem{})
	}
	it := &r.items[len(r.items)-1]
	it.fx.fx = it.fx.fx[:0]
	it.next[0], it.next[1] = nil, nil
	it.deps = 0
	return it
}

// filterBeyond drops items past the settled horizon. Only generation
// items can be affected (see loop); a contact beyond the horizon would
// violate the settle invariant.
func (r *shardRun) filterBeyond(h sim.Time) {
	kept := r.items[:0]
	for i := range r.items {
		if r.items[i].t <= h {
			kept = append(kept, r.items[i])
		} else if !r.items[i].gen {
			panic(fmt.Sprintf("core: sharded contact at %v beyond settled horizon %v", r.items[i].t, h))
		}
	}
	r.items = kept
}

// runEpoch executes the collected items on K workers. Dependency
// chains: an item is ready once every earlier item sharing one of its
// nodes has finished; readiness is tracked with an atomic countdown and
// ready items travel to their owner shard (lower endpoint mod K) over
// buffered channels, so sends never block and every channel receive
// gives the race detector the happens-before edge matching the chain.
func (r *shardRun) runEpoch() {
	n := len(r.items)
	if n == 0 {
		return
	}
	for i := range r.items {
		it := &r.items[i]
		r.chain(it, it.a)
		if it.b != it.a {
			r.chain(it, it.b)
		}
	}
	var items sync.WaitGroup
	items.Add(n)
	for _, w := range r.workers {
		w.mbox = make(chan *shardItem, n)
	}
	// Seed the roots before any worker starts: deps still holds the
	// chain builder's single-threaded value here, so "deps == 0" is
	// exactly the root set, and the buffered sends cannot block. Seeding
	// after spawn would race — a running worker's fanout can decrement a
	// successor to zero and enqueue it while the scan is still walking,
	// and the scan would then send that item a second time.
	for i := range r.items {
		it := &r.items[i]
		if it.deps == 0 {
			r.workers[int(it.a)%r.k].mbox <- it
		}
	}
	var done sync.WaitGroup
	for _, w := range r.workers {
		done.Add(1)
		go func(w *shardWorker) {
			defer done.Done()
			for it := range w.mbox {
				w.exec(it)
				r.fanout(it)
				items.Done()
			}
		}(w)
	}
	items.Wait()
	for _, w := range r.workers {
		close(w.mbox)
	}
	done.Wait()
	for _, nd := range r.touched {
		r.tails[nd] = nil
	}
	r.touched = r.touched[:0]
}

// chain links it onto node nd's dependency chain.
func (r *shardRun) chain(it *shardItem, nd contact.NodeID) {
	prev := r.tails[nd]
	if prev == nil {
		r.touched = append(r.touched, nd)
	} else {
		slot := 0
		if prev.a != nd {
			slot = 1
		}
		prev.next[slot] = it
		it.deps++
	}
	r.tails[nd] = it
}

// fanout releases it's chain successors, dispatching any that became
// ready to their owner shard's mailbox.
//
//dtn:hotpath
func (r *shardRun) fanout(it *shardItem) {
	for s := 0; s < 2; s++ {
		nxt := it.next[s]
		if nxt != nil && atomic.AddInt32(&nxt.deps, -1) == 0 {
			r.workers[int(nxt.a)%r.k].mbox <- nxt
		}
	}
}

// exec runs one item on this worker, first aiming the item's nodes'
// drop hooks at its effect buffer.
//
//dtn:hotpath
func (w *shardWorker) exec(it *shardItem) {
	w.r.hookTarget[it.a] = &it.fx
	if it.gen {
		w.generate(it)
		return
	}
	w.r.hookTarget[it.b] = &it.fx
	w.contact(it)
}

// generate mirrors engine.generate, recording effects instead of
// touching global state.
func (w *shardWorker) generate(it *shardItem) {
	e := w.r.e
	src := e.nodes[it.flow.Src]
	now := it.t
	for i := 0; i < it.flow.Count; i++ {
		b := &bundle.Bundle{
			ID:        bundle.ID{Src: it.flow.Src, Seq: it.base + i},
			Dst:       it.flow.Dst,
			CreatedAt: now,
			Meta:      bundle.Meta{Size: it.flow.Size},
			FirstSeq:  it.firstSeq,
		}
		cp := &bundle.Copy{Bundle: b, StoredAt: now, Pinned: true, Expiry: sim.Infinity}
		e.cfg.Protocol.OnGenerate(src, cp, now)
		if err := src.Store.Put(cp); err != nil {
			panic(fmt.Sprintf("core: generating %v: %v", b.ID, err))
		}
		it.fx.add(effect{kind: fxGenerate, to: b.Dst, id: b.ID, at: now})
	}
}

// contact mirrors engine.contact: purge, control exchange, budgeted
// half-duplex transmissions, lower ID first — drawing from this
// worker's stream reseeded for the encounter.
//
//dtn:hotpath
func (w *shardWorker) contact(it *shardItem) {
	e := w.r.e
	c := it.c
	w.rng.Reseed(sim.EncounterSeed(e.cfg.Seed, uint64(c.A), uint64(c.B), c.Start))
	now := c.Start
	a, b := e.nodes[c.A], e.nodes[c.B]
	a.PurgeExpired(now)
	b.PurgeExpired(now)
	a.ObserveEncounter(now)
	b.ObserveEncounter(now)

	dur := float64(c.Duration())
	recordBudget := int(dur / e.cfg.TxTime * float64(e.cfg.RecordsPerSlot))
	bw := c.Bandwidth
	if bw == 0 {
		bw = e.cfg.Bandwidth
	}
	limited := bw > 0
	var bytesLeft int64
	var ctlBefore int64
	if limited {
		if budget := math.Floor(dur * bw); budget >= math.MaxInt64 {
			bytesLeft = math.MaxInt64
		} else {
			bytesLeft = int64(budget)
		}
		ctlBefore = a.ControlSent + b.ControlSent
	}
	e.cfg.Protocol.Exchange(a, b, now, recordBudget)
	if limited && e.cfg.ControlBytes > 0 {
		bytesLeft -= int64(float64(a.ControlSent+b.ControlSent-ctlBefore) * e.cfg.ControlBytes)
		if bytesLeft < 0 {
			bytesLeft = 0
		}
	}

	slots := int(dur / e.cfg.TxTime)
	if slots <= 0 {
		return
	}
	used, bytesLeft := w.transmitBatch(it, a, b, now, slots, 0, limited, bytesLeft)
	w.transmitBatch(it, b, a, now, slots, used, limited, bytesLeft)
}

// transmitBatch mirrors engine.transmitBatch (see its doc for the
// partial-transfer semantics).
//
//dtn:hotpath
func (w *shardWorker) transmitBatch(it *shardItem, sender, receiver *node.Node, start sim.Time, slots, used int, limited bool, bytesLeft int64) (int, int64) {
	if used >= slots {
		return used, bytesLeft
	}
	e := w.r.e
	wants := e.cfg.Protocol.Wants(sender, receiver, start, w.rng)
	for _, id := range wants {
		if used >= slots {
			break
		}
		cp := sender.Store.Get(id)
		if cp == nil {
			continue
		}
		if receiver.Store.Has(id) || receiver.Received.Has(id) {
			continue
		}
		if limited {
			if cp.Bundle.Meta.Size > bytesLeft {
				break
			}
			bytesLeft -= cp.Bundle.Meta.Size
		}
		used++
		at := start + sim.Time(float64(used)*e.cfg.TxTime)
		w.transmit(it, sender, receiver, cp, at)
	}
	return used, bytesLeft
}

// transmit mirrors engine.transmit, recording the global bookkeeping as
// effects.
//
//dtn:hotpath
func (w *shardWorker) transmit(it *shardItem, sender, receiver *node.Node, cp *bundle.Copy, at sim.Time) {
	e := w.r.e
	sender.DataSent++
	it.fx.add(effect{kind: fxTransmit, from: sender.ID, to: receiver.ID, id: cp.Bundle.ID, at: at})
	rcpt := cp.Clone(at)
	if cp.Bundle.Dst == receiver.ID {
		e.cfg.Protocol.OnTransmit(sender, receiver, cp, rcpt, at)
		w.deliver(it, sender, receiver, cp.Bundle, at)
		return
	}
	if !w.admitBytes(receiver, rcpt, at) {
		return
	}
	if e.cfg.Protocol.Admit(receiver, rcpt, at) {
		e.cfg.Protocol.OnTransmit(sender, receiver, cp, rcpt, at)
		if err := receiver.Store.Put(rcpt); err != nil {
			panic(fmt.Sprintf("core: admit promised room for %v at node %d: %v",
				cp.Bundle.ID, receiver.ID, err))
		}
		it.fx.add(effect{kind: fxStored, id: rcpt.Bundle.ID, at: at})
	}
}

// admitBytes mirrors engine.admitBytes with this worker's policy
// instance; evictions and refusals reach the effect buffer through the
// node's drop hook.
//
//dtn:hotpath
func (w *shardWorker) admitBytes(receiver *node.Node, rcpt *bundle.Copy, at sim.Time) bool {
	if w.pol == nil || rcpt.Bundle.Meta.Size == 0 {
		return true
	}
	evicted, ok := receiver.Store.MakeByteRoom(rcpt.Bundle.Meta.Size, w.pol)
	for _, cp := range evicted {
		receiver.NoteByteDropped(cp.Bundle.ID, at)
	}
	if !ok {
		receiver.NoteRefused(rcpt.Bundle.ID, at)
		return false
	}
	return true
}

// deliver mirrors engine.deliver: destination state mutates here (the
// destination is one of the item's chained nodes); run-global delivery
// bookkeeping is deferred to the merger.
//
//dtn:hotpath
func (w *shardWorker) deliver(it *shardItem, sender, dst *node.Node, b *bundle.Bundle, at sim.Time) {
	if dst.Received.Has(b.ID) {
		return // duplicate delivery; Wants filtering should prevent this
	}
	dst.Received.Add(b.ID)
	it.fx.add(effect{
		kind:  fxDeliver,
		from:  sender.ID,
		to:    dst.ID,
		id:    b.ID,
		at:    at,
		delay: float64(at - b.CreatedAt),
	})
	e := w.r.e
	e.cfg.Protocol.OnDelivered(dst, sender, b.ID, at)
}

// merge replays the epoch's effect buffers in canonical item order on
// the single merger goroutine, reproducing the exact observer call
// sequence and holder/delivery bookkeeping of the sequential engine.
//
//dtn:hotpath
func (r *shardRun) merge() {
	e := r.e
	for i := range r.items {
		it := &r.items[i]
		for j := range it.fx.fx {
			fx := &it.fx.fx[j]
			switch fx.kind {
			case fxGenerate:
				e.holders.Track(fx.id)
				e.holders.Inc(fx.id)
				for _, o := range e.obs {
					o.OnGenerate(fx.id, fx.to, fx.at)
				}
			case fxTransmit:
				for _, o := range e.obs {
					o.OnTransmit(fx.from, fx.to, fx.id, fx.at)
				}
			case fxDeliver:
				e.deliveredAt[fx.id] = fx.at
				e.delays = append(e.delays, fx.delay)
				for _, o := range e.obs {
					o.OnDeliver(fx.id, fx.to, fx.delay, fx.at)
				}
				if fx.at > e.lastArrival {
					e.lastArrival = fx.at
				}
				e.remaining--
			case fxDrop:
				if fx.reason != node.DropRefused {
					e.holders.Dec(fx.id)
				}
				for _, o := range e.obs {
					o.OnDrop(fx.from, fx.id, fx.reason, fx.at)
				}
			case fxStored:
				e.holders.Inc(fx.id)
			}
		}
	}
}
