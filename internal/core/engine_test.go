package core

import (
	"errors"
	"math"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/mobility"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// sched builds a small sorted schedule over n nodes.
func sched(n int, cs ...contact.Contact) *contact.Schedule {
	s := &contact.Schedule{Nodes: n, Contacts: cs}
	s.Sort()
	return s
}

func TestDirectDelivery(t *testing.T) {
	// One contact of 350 s carries 3 bundles at 100 s each.
	s := sched(2, contact.Contact{A: 0, B: 1, Start: 1000, End: 1350})
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 1, Count: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed || r.Delivered != 3 {
		t.Fatalf("delivered %d/3, completed=%v", r.Delivered, r.Completed)
	}
	// Deliveries complete at 1100, 1200, 1300; makespan from t=0.
	if r.Makespan != 1300 {
		t.Errorf("Makespan = %v, want 1300", r.Makespan)
	}
	want := map[int]sim.Time{1: 1100, 2: 1200, 3: 1300}
	for seq, at := range want {
		if got := r.DeliveryTimes[bundle.ID{Src: 0, Seq: seq}]; got != at {
			t.Errorf("bundle %d delivered at %v, want %v", seq, got, at)
		}
	}
}

func TestBudgetLimitsTransfer(t *testing.T) {
	// 250 s contact → 2 slots; only 2 of 5 bundles arrive.
	s := sched(2, contact.Contact{A: 0, B: 1, Start: 0, End: 250})
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 1, Count: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != 2 || r.Completed {
		t.Fatalf("delivered %d, want 2 (budget)", r.Delivered)
	}
	if r.Makespan != -1 {
		t.Errorf("failed run recorded delay %v", r.Makespan)
	}
}

func TestRelayChain(t *testing.T) {
	// 0 never meets 2; bundles must travel 0→1→2.
	s := sched(3,
		contact.Contact{A: 0, B: 1, Start: 100, End: 350},   // 2 slots
		contact.Contact{A: 1, B: 2, Start: 1000, End: 1250}, // 2 slots
	)
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 2, Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("relay chain failed: delivered %d/2", r.Delivered)
	}
	if r.Makespan != 1200 {
		t.Errorf("Makespan = %v, want 1200", r.Makespan)
	}
}

func TestLowerIDSendsFirst(t *testing.T) {
	// Node 0 and node 2 both carry bundles for each other via one
	// 150 s contact (1 slot). Lower ID (0) wins the slot.
	s := sched(3,
		contact.Contact{A: 0, B: 1, Start: 0, End: 150},
		contact.Contact{A: 1, B: 2, Start: 500, End: 650},
	)
	// Flow A: 0→2 via 1. Flow B: 1→0 direct (node 1 is its source).
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewPure(),
		Flows: []Flow{
			{Src: 0, Dst: 2, Count: 1},
			{Src: 1, Dst: 0, Count: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Contact 1 (0↔1, 1 slot): node 0 sends its bundle to 1 (lower ID
	// first); node 1's own bundle for 0 never gets a slot.
	// Contact 2 (1↔2, 1 slot): node 1 forwards flow A's bundle to 2.
	if got := r.DeliveryTimes[bundle.ID{Src: 0, Seq: 1}]; got != 600 {
		t.Errorf("flow A delivery at %v, want 600", got)
	}
	if _, ok := r.DeliveryTimes[bundle.ID{Src: 1, Seq: 1}]; ok {
		t.Error("flow B delivered despite losing the slot to the lower ID")
	}
	if r.Delivered != 1 {
		t.Errorf("Delivered = %d, want 1", r.Delivered)
	}
}

func TestEarlyTerminationStopsAtLastDelivery(t *testing.T) {
	s := sched(2,
		contact.Contact{A: 0, B: 1, Start: 100, End: 250},
		contact.Contact{A: 0, B: 1, Start: 10000, End: 10150},
	)
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 1, Count: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed || r.FinishedAt != 200 {
		t.Errorf("FinishedAt = %v, want 200 (early stop)", r.FinishedAt)
	}
}

func TestRunToHorizonKeepsGoing(t *testing.T) {
	s := sched(2,
		contact.Contact{A: 0, B: 1, Start: 100, End: 250},
		contact.Contact{A: 0, B: 1, Start: 10000, End: 10150},
	)
	r, err := Run(Config{
		Schedule:     s,
		Protocol:     protocol.NewPure(),
		Flows:        []Flow{{Src: 0, Dst: 1, Count: 1}},
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.FinishedAt != 10150 {
		t.Errorf("FinishedAt = %v, want horizon 10150", r.FinishedAt)
	}
}

func TestSourcePinningBeyondCapacity(t *testing.T) {
	// Load 50 with buffer 10: the source holds all 50 pinned; delivery
	// still completes over repeated long contacts.
	var cs []contact.Contact
	for i := 0; i < 20; i++ {
		start := sim.Time(i * 10000)
		cs = append(cs, contact.Contact{A: 0, B: 1, Start: start, End: start + 500}) // 5 slots
	}
	r, err := Run(Config{
		Schedule: sched(2, cs...),
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 1, Count: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("delivered %d/50", r.Delivered)
	}
	// Source occupancy 50/10=5 dominates the two-node average early on.
	if r.MeanOccupancy <= 1.0 {
		t.Errorf("MeanOccupancy = %v; pinned source should push it above 1", r.MeanOccupancy)
	}
}

func TestDropTailLimitsRelayBuffer(t *testing.T) {
	// Source meets relay with huge contact; relay cap 10 → only 10
	// unpinned copies stored.
	s := sched(3, contact.Contact{A: 0, B: 1, Start: 0, End: 5000}) // 50 slots
	r, err := Run(Config{
		Schedule:     s,
		Protocol:     protocol.NewPure(),
		Flows:        []Flow{{Src: 0, Dst: 2, Count: 30}},
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != 0 {
		t.Fatal("nothing should reach node 2")
	}
	if r.Refused == 0 {
		t.Error("relay never refused despite cap 10 and 30 offers")
	}
	// 10 stored + 20 refused = 30 transmissions attempted.
	if r.DataTransmissions != 30 {
		t.Errorf("DataTransmissions = %d, want 30", r.DataTransmissions)
	}
	if r.Refused != 20 {
		t.Errorf("Refused = %d, want 20", r.Refused)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	gen := mobility.SyntheticCambridge{Seed: 99, Nodes: 8, Span: 200000}
	s, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		r, err := Run(Config{
			Schedule: s,
			Protocol: protocol.NewPQ(0.5, 0.5), // exercises the RNG path
			Flows:    []Flow{{Src: 0, Dst: 5, Count: 20}},
			Seed:     1234,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Makespan != b.Makespan ||
		a.MeanOccupancy != b.MeanOccupancy || a.MeanDuplication != b.MeanDuplication ||
		a.ControlRecords != b.ControlRecords || a.DataTransmissions != b.DataTransmissions {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestImmunityPurgesSenderOnDelivery(t *testing.T) {
	// After 0 delivers to 1, node 0's copies are purged (link-level
	// immunity), unlike pure epidemic where the source keeps them.
	s := sched(2, contact.Contact{A: 0, B: 1, Start: 0, End: 350})
	rImm, err := Run(Config{
		Schedule:     s,
		Protocol:     protocol.NewImmunity(),
		Flows:        []Flow{{Src: 0, Dst: 1, Count: 3}},
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rPure, err := Run(Config{
		Schedule:     s,
		Protocol:     protocol.NewPure(),
		Flows:        []Flow{{Src: 0, Dst: 1, Count: 3}},
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rImm.Completed || !rPure.Completed {
		t.Fatal("both should deliver all 3")
	}
	if rImm.MeanDuplication >= rPure.MeanDuplication {
		t.Errorf("immunity duplication %v not below pure %v",
			rImm.MeanDuplication, rPure.MeanDuplication)
	}
}

func TestMeanDelayComputed(t *testing.T) {
	s := sched(2, contact.Contact{A: 0, B: 1, Start: 0, End: 250})
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 1, Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals at 100 and 200 → mean delay 150.
	if r.MeanDelay != 150 {
		t.Errorf("MeanDelay = %v, want 150", r.MeanDelay)
	}
}

func TestConfigValidation(t *testing.T) {
	good := sched(3, contact.Contact{A: 0, B: 1, Start: 0, End: 100})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil schedule", Config{Protocol: protocol.NewPure(), Flows: []Flow{{Src: 0, Dst: 1, Count: 1}}}},
		{"nil protocol", Config{Schedule: good, Flows: []Flow{{Src: 0, Dst: 1, Count: 1}}}},
		{"no flows", Config{Schedule: good, Protocol: protocol.NewPure()}},
		{"zero count", Config{Schedule: good, Protocol: protocol.NewPure(), Flows: []Flow{{Src: 0, Dst: 1}}}},
		{"self flow", Config{Schedule: good, Protocol: protocol.NewPure(), Flows: []Flow{{Src: 1, Dst: 1, Count: 1}}}},
		{"out of range", Config{Schedule: good, Protocol: protocol.NewPure(), Flows: []Flow{{Src: 0, Dst: 9, Count: 1}}}},
		{"negative start", Config{Schedule: good, Protocol: protocol.NewPure(),
			Flows: []Flow{{Src: 0, Dst: 1, Count: 1, StartAt: -5}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestMultiFlowDistinctSources(t *testing.T) {
	s := sched(4,
		contact.Contact{A: 0, B: 3, Start: 0, End: 250},
		contact.Contact{A: 1, B: 2, Start: 300, End: 550},
	)
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewPure(),
		Flows: []Flow{
			{Src: 0, Dst: 3, Count: 2},
			{Src: 1, Dst: 2, Count: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed || r.Generated != 4 {
		t.Fatalf("delivered %d/%d", r.Delivered, r.Generated)
	}
}

func TestMultiFlowSharedSourceDelays(t *testing.T) {
	// Two bursts from node 0 to node 1: two bundles at t=0 (seqs 1-2)
	// and two more at t=2000 (seqs 3-4, contiguous block). Per-bundle
	// delay must be measured from each bundle's own creation time, not
	// from the first flow's StartAt.
	s := sched(2,
		contact.Contact{A: 0, B: 1, Start: 0, End: 250},
		contact.Contact{A: 0, B: 1, Start: 2100, End: 2450},
	)
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewPure(),
		Flows: []Flow{
			{Src: 0, Dst: 1, Count: 2, StartAt: 0},
			{Src: 0, Dst: 1, Count: 2, StartAt: 2000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed || r.Delivered != 4 {
		t.Fatalf("delivered %d/4, completed=%v", r.Delivered, r.Completed)
	}
	// First burst arrives at 100 and 200; second at 2200 and 2300.
	want := map[int]sim.Time{1: 100, 2: 200, 3: 2200, 4: 2300}
	for seq, at := range want {
		if got := r.DeliveryTimes[bundle.ID{Src: 0, Seq: seq}]; got != at {
			t.Errorf("bundle %d delivered at %v, want %v", seq, got, at)
		}
	}
	// Delays: 100, 200 (created at 0) and 200, 300 (created at 2000).
	if r.MeanDelay != 200 {
		t.Errorf("MeanDelay = %v, want 200 (second burst measured from t=2000)", r.MeanDelay)
	}
	if math.Abs(r.DelayP95-285) > 1e-9 {
		t.Errorf("DelayP95 = %v, want 285", r.DelayP95)
	}
	if r.Makespan != 2300 {
		t.Errorf("Makespan = %v, want 2300", r.Makespan)
	}
}

func TestMultiFlowSharedSourceCumulativeImmunity(t *testing.T) {
	// Node 0 sources two flows: seq 1 to node 1 and seqs 2-3 to node 2.
	// The second flow's sequence block starts at 2, so its cumulative
	// prefix must anchor at FirstSeq=2 — a table of 3 then covers the
	// whole flow, and relay 3 purges its copies after hearing the table
	// second-hand from relay 4 (which never received the bundles).
	s := sched(5,
		contact.Contact{A: 0, B: 3, Start: 0, End: 350},     // 3 copies to relay 3
		contact.Contact{A: 0, B: 2, Start: 1000, End: 1350}, // deliver seqs 2,3 to dst 2
		contact.Contact{A: 2, B: 4, Start: 2000, End: 2150}, // relay 4 learns the table
		contact.Contact{A: 3, B: 4, Start: 3000, End: 3100}, // relay 3 purges via table
	)
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewCumulativeImmunity(),
		Flows: []Flow{
			{Src: 0, Dst: 1, Count: 1},
			{Src: 0, Dst: 2, Count: 2},
		},
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != 2 {
		t.Fatalf("delivered %d, want 2 (flow to node 2)", r.Delivered)
	}
	// Relay 3 received seqs 1, 2, 3; the table ack of 3 for flow (0→2)
	// must purge seqs 2 and 3, leaving only the seq-1 copy bound for
	// node 1. A prefix wrongly anchored at 1 would never advance and
	// relay 3 would still hold all three copies.
	if r.FinalBuffered[3] != 1 {
		t.Errorf("relay 3 ended with %d buffered copies, want 1 (delivered flow purged by table)",
			r.FinalBuffered[3])
	}
}

func TestMultiFlowSameSrcDstOutOfOrderBursts(t *testing.T) {
	// Two bursts from node 0 to node 1 where the LATER-declared block
	// (seqs 3-4) starts — and delivers — first. Both blocks share the
	// cumulative-immunity flow key (0→1), so the early delivery of the
	// second block must not anchor an acknowledgement that falsely
	// covers the still-undelivered seqs 1-2 (which would purge them
	// everywhere, including the pinned source copies, and lose them).
	s := sched(2,
		contact.Contact{A: 0, B: 1, Start: 100, End: 350},   // seqs 3-4 delivered
		contact.Contact{A: 0, B: 1, Start: 6000, End: 6250}, // seqs 1-2 delivered
	)
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewCumulativeImmunity(),
		Flows: []Flow{
			{Src: 0, Dst: 1, Count: 2, StartAt: 5000}, // seqs 1-2, created late
			{Src: 0, Dst: 1, Count: 2, StartAt: 0},    // seqs 3-4, created first
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed || r.Delivered != 4 {
		t.Fatalf("delivered %d/4, completed=%v; the first block was lost to a false ack",
			r.Delivered, r.Completed)
	}
	// Deliveries: seqs 3-4 at 200, 300 (created 0); seqs 1-2 at 6100,
	// 6200 (created 5000) → delays 200, 300, 1100, 1200.
	if r.MeanDelay != 700 {
		t.Errorf("MeanDelay = %v, want 700", r.MeanDelay)
	}
}

func TestTTLExpiryEndToEnd(t *testing.T) {
	// 0→1 at t=0 (relay copy, TTL 300); 1 meets 2 at t=1000 — too late,
	// the copy expired at 400. Source 0 never meets 2.
	s := sched(3,
		contact.Contact{A: 0, B: 1, Start: 0, End: 150},
		contact.Contact{A: 1, B: 2, Start: 1000, End: 1150},
	)
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewTTL(300),
		Flows:    []Flow{{Src: 0, Dst: 2, Count: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != 0 {
		t.Fatal("expired copy was delivered")
	}
	if r.Expired != 1 {
		t.Errorf("Expired = %d, want 1", r.Expired)
	}
	// Same topology with a TTL long enough succeeds.
	r2, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewTTL(2000),
		Flows:    []Flow{{Src: 0, Dst: 2, Count: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Completed {
		t.Error("long-TTL copy not delivered")
	}
}

func TestDynamicTTLSurvivesWhereConstantDies(t *testing.T) {
	// Relay 1's encounter rhythm: meets 0 at t=0 and t=2000 (interval
	// 2000), receives the bundle at the second meeting → TTL 4000,
	// surviving until it meets 2 at t=5000. Constant TTL 300 dies.
	s := sched(3,
		contact.Contact{A: 0, B: 1, Start: 0, End: 150},
		contact.Contact{A: 0, B: 1, Start: 2000, End: 2150},
		contact.Contact{A: 1, B: 2, Start: 5000, End: 5150},
	)
	flow := []Flow{{Src: 0, Dst: 2, Count: 1}}
	rConst, err := Run(Config{Schedule: s, Protocol: protocol.NewTTL(300), Flows: flow})
	if err != nil {
		t.Fatal(err)
	}
	rDyn, err := Run(Config{Schedule: s, Protocol: protocol.NewDynamicTTL(), Flows: flow})
	if err != nil {
		t.Fatal(err)
	}
	if rConst.Delivered != 0 {
		t.Error("constant TTL=300 should fail in this topology")
	}
	if rDyn.Delivered != 1 {
		t.Error("dynamic TTL should deliver (TTL = 2×2000)")
	}
}

func TestCumulativeOverheadBelowImmunity(t *testing.T) {
	gen := mobility.SyntheticCambridge{Seed: 5, Nodes: 10, Span: 300000}
	s, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	flows := []Flow{{Src: 0, Dst: 7, Count: 40}}
	rImm, err := Run(Config{Schedule: s, Protocol: protocol.NewImmunity(), Flows: flows, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rCum, err := Run(Config{Schedule: s, Protocol: protocol.NewCumulativeImmunity(), Flows: flows, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rCum.ControlRecords >= rImm.ControlRecords {
		t.Errorf("cumulative overhead %d not below immunity %d",
			rCum.ControlRecords, rImm.ControlRecords)
	}
}

func TestConservationInvariants(t *testing.T) {
	// Across protocols: delivered ⊆ generated; ratio in [0,1]; counters
	// non-negative.
	gen := mobility.SyntheticCambridge{Seed: 21, Nodes: 8, Span: 200000}
	s, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	protos := []protocol.Protocol{
		protocol.NewPure(), protocol.NewPQ(0.5, 0.5), protocol.NewTTL(300),
		protocol.NewDynamicTTL(), protocol.NewEC(), protocol.NewECTTL(),
		protocol.NewImmunity(), protocol.NewCumulativeImmunity(),
	}
	for _, p := range protos {
		r, err := Run(Config{
			Schedule: s,
			Protocol: p,
			Flows:    []Flow{{Src: 1, Dst: 6, Count: 25}},
			Seed:     7,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if r.Delivered > r.Generated || r.DeliveryRatio < 0 || r.DeliveryRatio > 1 {
			t.Errorf("%s: impossible delivery accounting %+v", p.Name(), r)
		}
		if r.MeanOccupancy < 0 || r.MeanDuplication < 0 || r.MeanDuplication > 1 {
			t.Errorf("%s: metric out of range: occ=%v dup=%v", p.Name(), r.MeanOccupancy, r.MeanDuplication)
		}
		if r.ControlRecords < 0 || r.DataTransmissions < 0 {
			t.Errorf("%s: negative counters", p.Name())
		}
		for id, at := range r.DeliveryTimes {
			if id.Seq < 1 || id.Seq > 25 || at < 0 {
				t.Errorf("%s: bogus delivery record %v@%v", p.Name(), id, at)
			}
		}
	}
}

func TestDelayQuantiles(t *testing.T) {
	// Deliveries at 100, 200, 300 → P50 = 200, mean = 200.
	s := sched(2, contact.Contact{A: 0, B: 1, Start: 0, End: 350})
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 1, Count: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DelayP50 != 200 {
		t.Errorf("DelayP50 = %v, want 200", r.DelayP50)
	}
	if r.DelayP95 < 280 || r.DelayP95 > 300 {
		t.Errorf("DelayP95 = %v, want near 300", r.DelayP95)
	}
	if r.MeanDelay != 200 {
		t.Errorf("MeanDelay = %v, want 200", r.MeanDelay)
	}
	// No deliveries → zero quantiles.
	empty := sched(3, contact.Contact{A: 1, B: 2, Start: 0, End: 150})
	r2, err := Run(Config{
		Schedule: empty,
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 2, Count: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2.DelayP50 != 0 || r2.DelayP95 != 0 {
		t.Error("quantiles nonzero with no deliveries")
	}
}
