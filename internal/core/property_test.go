package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// randomSchedule builds a random valid schedule over n nodes.
func randomSchedule(r *rand.Rand, n, contacts int) *contact.Schedule {
	s := &contact.Schedule{Nodes: n}
	for len(s.Contacts) < contacts {
		a := contact.NodeID(r.IntN(n))
		b := contact.NodeID(r.IntN(n))
		if a == b {
			continue
		}
		start := sim.Time(r.IntN(100000))
		dur := sim.Time(r.IntN(900) + 50)
		s.Contacts = append(s.Contacts, contact.Contact{A: a, B: b, Start: start, End: start + dur}.Normalize())
	}
	s.Sort()
	return s
}

func allProtocols() []func() protocol.Protocol {
	return []func() protocol.Protocol{
		func() protocol.Protocol { return protocol.NewPure() },
		func() protocol.Protocol { return protocol.NewPQ(0.7, 0.4) },
		func() protocol.Protocol { return protocol.NewPQ(1, 1).WithAntiPackets() },
		func() protocol.Protocol { return protocol.NewTTL(500) },
		func() protocol.Protocol { return protocol.NewDynamicTTL() },
		func() protocol.Protocol { return protocol.NewEC() },
		func() protocol.Protocol { return protocol.NewECTTL() },
		func() protocol.Protocol { return protocol.NewImmunity() },
		func() protocol.Protocol { return protocol.NewCumulativeImmunity() },
	}
}

// TestEngineInvariantsProperty fuzzes random scenarios through every
// protocol and checks the engine's global invariants.
func TestEngineInvariantsProperty(t *testing.T) {
	protos := allProtocols()
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 23))
		nodes := r.IntN(8) + 3
		s := randomSchedule(r, nodes, r.IntN(200)+20)
		src := contact.NodeID(r.IntN(nodes))
		dst := contact.NodeID(r.IntN(nodes - 1))
		if dst >= src {
			dst++
		}
		count := r.IntN(40) + 1
		proto := protos[r.IntN(len(protos))]()
		cfg := Config{
			Schedule:     s,
			Protocol:     proto,
			Flows:        []Flow{{Src: src, Dst: dst, Count: count}},
			Seed:         seed,
			RunToHorizon: r.IntN(2) == 0,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Logf("%s: %v", proto.Name(), err)
			return false
		}
		// Conservation: delivered ⊆ generated, each at most once.
		if res.Delivered != len(res.DeliveryTimes) || res.Delivered > count {
			t.Logf("%s: delivery accounting %d/%d", proto.Name(), res.Delivered, count)
			return false
		}
		for id, at := range res.DeliveryTimes {
			if id.Src != src || id.Seq < 1 || id.Seq > count {
				t.Logf("%s: alien delivery %v", proto.Name(), id)
				return false
			}
			if at < 0 || at > res.FinishedAt {
				t.Logf("%s: delivery at %v outside run (end %v)", proto.Name(), at, res.FinishedAt)
				return false
			}
		}
		// Completed ⇔ all delivered; makespan only when completed.
		if res.Completed != (res.Delivered == count) {
			return false
		}
		if !res.Completed && res.Makespan != -1 {
			return false
		}
		if res.Completed && res.Makespan < 0 {
			return false
		}
		// Buffer discipline: relays never exceed capacity with unpinned
		// copies (the source may hold pinned bundles beyond cap).
		for i, buffered := range res.FinalBuffered {
			limit := DefaultBufferCap
			if contact.NodeID(i) == src {
				limit += count
			}
			if buffered > limit {
				t.Logf("%s: node %d holds %d > %d", proto.Name(), i, buffered, limit)
				return false
			}
			if res.FinalOccupancy[i] < 0 {
				return false
			}
		}
		// Counters sane.
		if res.Refused < 0 || res.Evicted < 0 || res.Expired < 0 ||
			res.ControlRecords < 0 || res.DataTransmissions < 0 {
			return false
		}
		// Every refusal/eviction/expiry implies the bundle was
		// transmitted at least once overall.
		if res.DataTransmissions == 0 && (res.Refused > 0 || res.Delivered > 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDeterminismProperty: same seed ⇒ identical results, across
// random scenarios and protocols.
func TestEngineDeterminismProperty(t *testing.T) {
	protos := allProtocols()
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 29))
		nodes := r.IntN(6) + 3
		s := randomSchedule(r, nodes, 80)
		proto := protos[r.IntN(len(protos))]
		cfg := func() Config {
			return Config{
				Schedule: s,
				Protocol: proto(),
				Flows:    []Flow{{Src: 0, Dst: contact.NodeID(nodes - 1), Count: 15}},
				Seed:     seed,
			}
		}
		a, err := Run(cfg())
		if err != nil {
			return false
		}
		b, err := Run(cfg())
		if err != nil {
			return false
		}
		if a.Delivered != b.Delivered || a.Makespan != b.Makespan ||
			a.ControlRecords != b.ControlRecords ||
			a.DataTransmissions != b.DataTransmissions ||
			a.MeanOccupancy != b.MeanOccupancy {
			return false
		}
		for id, at := range a.DeliveryTimes {
			if b.DeliveryTimes[id] != at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineMoreContactsNeverHurtsPure: adding contacts to a schedule
// cannot reduce pure epidemic's delivered count (monotonicity of
// flooding under extra connectivity) — a relation-style property the
// engine must respect.
func TestEngineMoreContactsNeverHurtsPure(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 31))
		nodes := 6
		base := randomSchedule(r, nodes, 30)
		extra := randomSchedule(r, nodes, 30)
		merged := contact.Merge(base, extra)
		run := func(s *contact.Schedule) int {
			res, err := Run(Config{
				Schedule: s,
				Protocol: protocol.NewPure(),
				Flows:    []Flow{{Src: 0, Dst: 5, Count: 8}},
				Seed:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Delivered
		}
		return run(merged) >= run(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowStartAtDelaysGeneration(t *testing.T) {
	s := sched(2,
		contact.Contact{A: 0, B: 1, Start: 100, End: 250},
		contact.Contact{A: 0, B: 1, Start: 5000, End: 5150},
	)
	r, err := Run(Config{
		Schedule: s,
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 1, Count: 1, StartAt: 1000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first contact predates the flow; delivery must use the second.
	if !r.Completed {
		t.Fatal("not delivered")
	}
	if at := r.DeliveryTimes[bundle.ID{Src: 0, Seq: 1}]; at != 5100 {
		t.Errorf("delivered at %v, want 5100", at)
	}
	// Makespan counts from the flow start.
	if r.Makespan != 4100 {
		t.Errorf("Makespan = %v, want 4100", r.Makespan)
	}
}

func TestShortContactCarriesRecordsOnly(t *testing.T) {
	// A 50 s contact has no bundle slot (tx time 100 s) but carries
	// 5 control records — immunity knowledge can spread through
	// contacts too short for data.
	s := sched(3,
		contact.Contact{A: 0, B: 1, Start: 0, End: 350},     // source hands 3 copies to relay 1
		contact.Contact{A: 1, B: 2, Start: 500, End: 850},   // 1 delivers to 2 (dst)
		contact.Contact{A: 0, B: 1, Start: 1000, End: 1050}, // 50 s: records only
	)
	r, err := Run(Config{
		Schedule:     s,
		Protocol:     protocol.NewImmunity(),
		Flows:        []Flow{{Src: 0, Dst: 2, Count: 3}},
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("delivered %d/3", r.Delivered)
	}
	// After the third (short) contact, node 0 must have learned the
	// deliveries from node 1's i-list and purged its pinned copies.
	if r.FinalBuffered[0] != 0 {
		t.Errorf("source still holds %d copies after record-only contact", r.FinalBuffered[0])
	}
}
