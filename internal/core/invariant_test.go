package core_test

// Cross-check invariants between the two independent sets of books the
// engine keeps: the per-node counters aggregated into Result
// (DataSent → DataTransmissions, Refused/Evicted/Expired) and the
// observer event stream folded by metrics.Collector. The satellite fix
// this pins: the counts were double-booked with no consistency check,
// so a drift introduced by the incremental holder-count bookkeeping
// would previously have gone unnoticed.

import (
	"fmt"
	"testing"

	"dtnsim/internal/core"
	"dtnsim/internal/metrics"
	"dtnsim/internal/node"
	"dtnsim/internal/protocol"
)

func TestCollectorMatchesNodeCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol grid is slow")
	}
	for _, protoSpec := range protocol.BuiltinSpecs() {
		for _, m := range goldenMobilities {
			t.Run(fmt.Sprintf("%s|%s", protoSpec, m.name), func(t *testing.T) {
				coll := metrics.NewCollector()
				// The streamed path exercises the same books through the
				// pull-based contact pipeline.
				cfg := goldenConfig(t, protoSpec, m, true)
				cfg.Observers = []core.Observer{coll}
				res, err := core.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := coll.Transmissions(), res.DataTransmissions; got != want {
					t.Errorf("observer transmissions %d != node DataSent aggregate %d", got, want)
				}
				if got, want := int(coll.Generated()), res.Generated; got != want {
					t.Errorf("observer generated %d != result %d", got, want)
				}
				if got, want := int(coll.Delivered()), res.Delivered; got != want {
					t.Errorf("observer delivered %d != result %d", got, want)
				}
				if got, want := coll.DropsByReason(node.DropRefused), res.Refused; got != want {
					t.Errorf("observer refused %d != node aggregate %d", got, want)
				}
				if got, want := coll.DropsByReason(node.DropEvicted), res.Evicted; got != want {
					t.Errorf("observer evicted %d != node aggregate %d", got, want)
				}
				if got, want := coll.DropsByReason(node.DropExpired), res.Expired; got != want {
					t.Errorf("observer expired %d != node aggregate %d", got, want)
				}
				// Purged drops have no failure counter by design; the
				// total must still reconcile exactly.
				purged := coll.Drops() - coll.DropsByReason(node.DropRefused) -
					coll.DropsByReason(node.DropEvicted) - coll.DropsByReason(node.DropExpired)
				if purged != coll.DropsByReason(node.DropPurged) {
					t.Errorf("drop reasons do not sum: total %d, purged %d",
						coll.Drops(), coll.DropsByReason(node.DropPurged))
				}
			})
		}
	}
}
