package core_test

// Cross-check invariants between the two independent sets of books the
// engine keeps: the per-node counters aggregated into Result
// (DataSent → DataTransmissions, Refused/Evicted/Expired) and the
// observer event stream folded by metrics.Collector. The satellite fix
// this pins: the counts were double-booked with no consistency check,
// so a drift introduced by the incremental holder-count bookkeeping
// would previously have gone unnoticed.

import (
	"fmt"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/core"
	"dtnsim/internal/metrics"
	"dtnsim/internal/node"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

func TestCollectorMatchesNodeCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol grid is slow")
	}
	for _, protoSpec := range protocol.BuiltinSpecs() {
		for _, m := range goldenMobilities {
			t.Run(fmt.Sprintf("%s|%s", protoSpec, m.name), func(t *testing.T) {
				// The streamed path exercises the same books through the
				// pull-based contact pipeline.
				cfg := goldenConfig(t, protoSpec, m, true)
				reconcileCollector(t, cfg)
			})
			// The same cell again under the constrained resource model,
			// tuned so the byte capacity binds: the bytepressure drop
			// reason must reconcile end-to-end like the original four.
			t.Run(fmt.Sprintf("%s|%s|constrained", protoSpec, m.name), func(t *testing.T) {
				cfg := goldenConfig(t, protoSpec, m, true)
				for i := range cfg.Flows {
					cfg.Flows[i].Size = 1 << 20
				}
				cfg.Bandwidth = 50_000
				cfg.BufferBytes = 3 << 20
				cfg.DropPolicy = "dropfront"
				cfg.ControlBytes = 64
				reconcileCollector(t, cfg)
			})
		}
	}
}

// reconcileCollector runs cfg with a fresh collector and a
// reason-validity observer attached and cross-checks the observer
// stream against the node-counter aggregates in the Result.
func reconcileCollector(t *testing.T, cfg core.Config) {
	t.Helper()
	coll := metrics.NewCollector()
	// Every drop on the observer stream must carry a reason from the
	// node.DropReason enum — the unified taxonomy this test pins.
	valid := &core.FuncObserver{
		Drop: func(at contact.NodeID, id bundle.ID, reason node.DropReason, now sim.Time) {
			if !reason.Valid() {
				t.Errorf("drop of %v at node %d carries invalid reason %q", id, at, reason)
			}
		},
	}
	cfg.Observers = []core.Observer{coll, valid}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := coll.Transmissions(), res.DataTransmissions; got != want {
		t.Errorf("observer transmissions %d != node DataSent aggregate %d", got, want)
	}
	if got, want := int(coll.Generated()), res.Generated; got != want {
		t.Errorf("observer generated %d != result %d", got, want)
	}
	if got, want := int(coll.Delivered()), res.Delivered; got != want {
		t.Errorf("observer delivered %d != result %d", got, want)
	}
	if got, want := coll.DropsByReason(node.DropRefused), res.Refused; got != want {
		t.Errorf("observer refused %d != node aggregate %d", got, want)
	}
	if got, want := coll.DropsByReason(node.DropEvicted), res.Evicted; got != want {
		t.Errorf("observer evicted %d != node aggregate %d", got, want)
	}
	if got, want := coll.DropsByReason(node.DropExpired), res.Expired; got != want {
		t.Errorf("observer expired %d != node aggregate %d", got, want)
	}
	if got, want := coll.DropsByReason(node.DropBytePressure), res.ByteDropped; got != want {
		t.Errorf("observer bytepressure %d != node aggregate %d", got, want)
	}
	if got := coll.InvalidDrops(); got != 0 {
		t.Errorf("collector saw %d drops with reasons outside the enum", got)
	}
	// Summing the complete reason enum must reproduce the total drop
	// count exactly — a drop with a missing or double-counted reason
	// cannot hide.
	var sum int64
	for _, reason := range node.DropReasons() {
		sum += coll.DropsByReason(reason)
	}
	if sum != coll.Drops() {
		t.Errorf("drop reasons do not sum: total %d, by-reason sum %d", coll.Drops(), sum)
	}
}
