package core_test

// Golden report.Stream tests: the full event CSV (every generate /
// transmit / deliver / drop plus periodic samples) of a trace scenario
// and an RWP scenario is compared byte-for-byte against committed
// golden files generated from the pre-refactor engine. A byte-equal
// event log is a much finer equivalence than the Result fields: it
// pins the order and timing of every observable engine action.
//
// TestStreamDeterminismRace additionally runs each scenario twice
// concurrently; under `go test -race` (CI's default) this fails if the
// reworked hot path ever shares mutable state between runs.

import (
	"bytes"
	"os"
	"sync"
	"testing"

	"dtnsim/internal/core"
	"dtnsim/internal/report"
)

// streamGoldenCells pair an eventful protocol with each mobility:
// immunity purges and refuses on the trace; EC+TTL evicts and expires
// on the controlled-interval scenario; pure epidemic saturates RWP
// buffers with refusals.
var streamGoldenCells = []struct {
	file  string
	proto string
	mob   goldenMobility
}{
	{"stream_trace_immunity.csv", "immunity", goldenMobilities[0]},
	{"stream_rwp_pure.csv", "pure", goldenMobilities[1]},
	{"stream_interval_ecttl.csv", "ecttl", goldenMobilities[2]},
	// The classic-RWP substrate added with the PR 5 grid gap fill; TTL
	// renewals expire copies on its sparse contacts.
	{"stream_classic_ttl.csv", "ttl:300", goldenMobilities[3]},
}

// runStream executes one golden cell with a full event stream attached
// and returns the CSV bytes. streamed selects the contact-plan form.
func runStream(t testing.TB, proto string, mob goldenMobility, streamed bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg := goldenConfig(t, proto, mob, streamed)
	st := report.NewStream(&buf, true)
	cfg.Observers = []core.Observer{st}
	if _, err := core.Run(cfg); err != nil {
		t.Fatalf("%s|%s: %v", proto, mob.name, err)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("%s|%s: stream write: %v", proto, mob.name, err)
	}
	return buf.Bytes()
}

func TestGoldenStreamCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("golden streams are slow")
	}
	for _, cell := range streamGoldenCells {
		cell := cell
		t.Run(cell.file, func(t *testing.T) {
			got := runStream(t, cell.proto, cell.mob, false)
			// The streamed-source run must produce the byte-identical
			// event log: every observable engine action in the same
			// order at the same time.
			streamed := runStream(t, cell.proto, cell.mob, true)
			if !bytes.Equal(got, streamed) {
				t.Errorf("streamed source event CSV diverged from materialized (first diff at byte %d)",
					firstDiff(got, streamed))
			}
			path := goldenPath(cell.file)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("event CSV diverged from golden %s: got %d bytes, want %d (first diff at byte %d)",
					cell.file, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestStreamDeterminismRace runs each golden stream cell twice
// concurrently and demands byte-identical CSVs. With -race this also
// proves the indexed store, per-node scratch and streaming contact
// scheduler keep runs fully isolated.
func TestStreamDeterminismRace(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent golden streams are slow")
	}
	for _, cell := range streamGoldenCells {
		cell := cell
		t.Run(cell.file, func(t *testing.T) {
			t.Parallel()
			var wg sync.WaitGroup
			out := make([][]byte, 2)
			errs := make([]error, 2)
			for i := range out {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					var buf bytes.Buffer
					// One run materialized, one streamed: concurrent
					// equality also covers cross-path equivalence.
					cfg := goldenConfig(t, cell.proto, cell.mob, i == 1)
					cfg.Observers = []core.Observer{report.NewStream(&buf, true)}
					_, errs[i] = core.Run(cfg)
					out[i] = buf.Bytes()
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
			}
			if !bytes.Equal(out[0], out[1]) {
				t.Errorf("concurrent runs diverge (first diff at byte %d)", firstDiff(out[0], out[1]))
			}
		})
	}
}
