package core

import (
	"fmt"
	"math"

	"dtnsim/internal/buffer"
	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// Kernel is the per-item execution state machine of the sharded
// executor, factored out of the worker goroutine so a worker *process*
// (internal/dist) can run the identical code over restored node state.
// Exec mutates only the item's two endpoint nodes and records every
// global side effect into the item's EffectBuf; nothing here reads or
// writes run-global state, which is exactly what makes an item's
// execution location — goroutine or process — unobservable.
//
// A Kernel belongs to one executor thread: RNG and Policy are private
// streams (reseeded per encounter from sim.EncounterSeed, so the draw
// sequence is a function of the encounter, not of the executor), and
// Hooks is the shared hook-target table every kernel of a run aims
// drop hooks through.
type Kernel struct {
	// Nodes is the node population Exec indexes into. In-process
	// kernels share the engine's slice; a worker process holds its own
	// restored instances.
	Nodes []*node.Node
	// Hooks[n] is the effect buffer of the item currently executing on
	// node n; BindHook points a node's DropHook through it.
	Hooks []*EffectBuf
	// Protocol, Seed, TxTime, RecordsPerSlot, Bandwidth and
	// ControlBytes mirror the run Config fields of the same names
	// (after defaulting).
	Protocol       protocol.Protocol
	Seed           uint64
	TxTime         float64
	RecordsPerSlot int
	Bandwidth      float64
	ControlBytes   float64
	// RNG is this kernel's private reseedable encounter stream.
	RNG *sim.RNG
	// Policy is this kernel's private byte-pressure drop policy; nil
	// when the run has no byte capacity.
	Policy buffer.DropPolicy
}

// BindHook aims n's drop hook at whichever item is executing on n, so
// evictions and refusals land in that item's effect buffer. The
// in-process executor installs an equivalent closure in runSharded; a
// worker process calls this on every node it materializes.
func (k *Kernel) BindHook(n *node.Node) {
	at := n.ID
	n.DropHook = func(id bundle.ID, reason node.DropReason, now sim.Time) {
		k.Hooks[at].add(Effect{Kind: EffectDrop, From: at, ID: id, Reason: reason, At: now})
	}
}

// Exec runs one item, first aiming the item's nodes' drop hooks at its
// effect buffer.
//
//dtn:hotpath
func (k *Kernel) Exec(it *EpochItem) {
	k.Hooks[it.A] = &it.Fx
	if it.Gen {
		k.generate(it)
		return
	}
	k.Hooks[it.B] = &it.Fx
	k.contact(it)
}

// generate mirrors engine.generate, recording effects instead of
// touching global state.
func (k *Kernel) generate(it *EpochItem) {
	src := k.Nodes[it.Flow.Src]
	now := it.T
	for i := 0; i < it.Flow.Count; i++ {
		b := &bundle.Bundle{
			ID:        bundle.ID{Src: it.Flow.Src, Seq: it.Base + i},
			Dst:       it.Flow.Dst,
			CreatedAt: now,
			Meta:      bundle.Meta{Size: it.Flow.Size},
			FirstSeq:  it.FirstSeq,
		}
		cp := &bundle.Copy{Bundle: b, StoredAt: now, Pinned: true, Expiry: sim.Infinity}
		k.Protocol.OnGenerate(src, cp, now)
		if err := src.Store.Put(cp); err != nil {
			panic(fmt.Sprintf("core: generating %v: %v", b.ID, err))
		}
		it.Fx.add(Effect{Kind: EffectGenerate, To: b.Dst, ID: b.ID, At: now})
	}
}

// contact mirrors engine.contact: purge, control exchange, budgeted
// half-duplex transmissions, lower ID first — drawing from this
// kernel's stream reseeded for the encounter.
//
//dtn:hotpath
func (k *Kernel) contact(it *EpochItem) {
	c := it.C
	k.RNG.Reseed(sim.EncounterSeed(k.Seed, uint64(c.A), uint64(c.B), c.Start))
	now := c.Start
	a, b := k.Nodes[c.A], k.Nodes[c.B]
	a.PurgeExpired(now)
	b.PurgeExpired(now)
	a.ObserveEncounter(now)
	b.ObserveEncounter(now)

	dur := float64(c.Duration())
	recordBudget := int(dur / k.TxTime * float64(k.RecordsPerSlot))
	bw := c.Bandwidth
	if bw == 0 {
		bw = k.Bandwidth
	}
	limited := bw > 0
	var bytesLeft int64
	var ctlBefore int64
	if limited {
		if budget := math.Floor(dur * bw); budget >= math.MaxInt64 {
			bytesLeft = math.MaxInt64
		} else {
			bytesLeft = int64(budget)
		}
		ctlBefore = a.ControlSent + b.ControlSent
	}
	k.Protocol.Exchange(a, b, now, recordBudget)
	if limited && k.ControlBytes > 0 {
		bytesLeft -= int64(float64(a.ControlSent+b.ControlSent-ctlBefore) * k.ControlBytes)
		if bytesLeft < 0 {
			bytesLeft = 0
		}
	}

	slots := int(dur / k.TxTime)
	if slots <= 0 {
		return
	}
	used, bytesLeft := k.transmitBatch(it, a, b, now, slots, 0, limited, bytesLeft)
	k.transmitBatch(it, b, a, now, slots, used, limited, bytesLeft)
}

// transmitBatch mirrors engine.transmitBatch (see its doc for the
// partial-transfer semantics).
//
//dtn:hotpath
func (k *Kernel) transmitBatch(it *EpochItem, sender, receiver *node.Node, start sim.Time, slots, used int, limited bool, bytesLeft int64) (int, int64) {
	if used >= slots {
		return used, bytesLeft
	}
	wants := k.Protocol.Wants(sender, receiver, start, k.RNG)
	for _, id := range wants {
		if used >= slots {
			break
		}
		cp := sender.Store.Get(id)
		if cp == nil {
			continue
		}
		if receiver.Store.Has(id) || receiver.Received.Has(id) {
			continue
		}
		if limited {
			if cp.Bundle.Meta.Size > bytesLeft {
				break
			}
			bytesLeft -= cp.Bundle.Meta.Size
		}
		used++
		at := start + sim.Time(float64(used)*k.TxTime)
		k.transmit(it, sender, receiver, cp, at)
	}
	return used, bytesLeft
}

// transmit mirrors engine.transmit, recording the global bookkeeping as
// effects.
//
//dtn:hotpath
func (k *Kernel) transmit(it *EpochItem, sender, receiver *node.Node, cp *bundle.Copy, at sim.Time) {
	sender.DataSent++
	it.Fx.add(Effect{Kind: EffectTransmit, From: sender.ID, To: receiver.ID, ID: cp.Bundle.ID, At: at})
	rcpt := cp.Clone(at)
	if cp.Bundle.Dst == receiver.ID {
		k.Protocol.OnTransmit(sender, receiver, cp, rcpt, at)
		k.deliver(it, sender, receiver, cp.Bundle, at)
		return
	}
	if !k.admitBytes(receiver, rcpt, at) {
		return
	}
	if k.Protocol.Admit(receiver, rcpt, at) {
		k.Protocol.OnTransmit(sender, receiver, cp, rcpt, at)
		if err := receiver.Store.Put(rcpt); err != nil {
			panic(fmt.Sprintf("core: admit promised room for %v at node %d: %v",
				cp.Bundle.ID, receiver.ID, err))
		}
		it.Fx.add(Effect{Kind: EffectStored, ID: rcpt.Bundle.ID, At: at})
	}
}

// admitBytes mirrors engine.admitBytes with this kernel's policy
// instance; evictions and refusals reach the effect buffer through the
// node's drop hook.
//
//dtn:hotpath
func (k *Kernel) admitBytes(receiver *node.Node, rcpt *bundle.Copy, at sim.Time) bool {
	if k.Policy == nil || rcpt.Bundle.Meta.Size == 0 {
		return true
	}
	evicted, ok := receiver.Store.MakeByteRoom(rcpt.Bundle.Meta.Size, k.Policy)
	for _, cp := range evicted {
		receiver.NoteByteDropped(cp.Bundle.ID, at)
	}
	if !ok {
		receiver.NoteRefused(rcpt.Bundle.ID, at)
		return false
	}
	return true
}

// deliver mirrors engine.deliver: destination state mutates here (the
// destination is one of the item's chained nodes); run-global delivery
// bookkeeping is deferred to the merger.
//
//dtn:hotpath
func (k *Kernel) deliver(it *EpochItem, sender, dst *node.Node, b *bundle.Bundle, at sim.Time) {
	if dst.Received.Has(b.ID) {
		return // duplicate delivery; Wants filtering should prevent this
	}
	dst.Received.Add(b.ID)
	it.Fx.add(Effect{
		Kind:  EffectDeliver,
		From:  sender.ID,
		To:    dst.ID,
		ID:    b.ID,
		At:    at,
		Delay: float64(at - b.CreatedAt),
	})
	k.Protocol.OnDelivered(dst, sender, b.ID, at)
}
