package core

import (
	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/metrics"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// Observer receives engine events while a run progresses, turning the
// post-hoc Result into a stream: metric collectors, live dashboards and
// time-series writers all attach through Config.Observers without the
// engine knowing their shape. metrics.Collector is the built-in
// observer every run carries; report.Stream is the CSV one.
//
// All hooks are invoked synchronously from the single simulation
// goroutine, in virtual-time order, so implementations need no locking
// but must not block.
type Observer interface {
	// OnGenerate fires once per workload bundle created at its source
	// (the source is id.Src).
	OnGenerate(id bundle.ID, dst contact.NodeID, now sim.Time)
	// OnTransmit fires for every bundle transmission, including
	// transfers the receiver goes on to refuse; now is the transfer's
	// completion time.
	OnTransmit(from, to contact.NodeID, id bundle.ID, now sim.Time)
	// OnDeliver fires when a bundle first reaches its destination.
	// delay is seconds since the bundle's creation.
	OnDeliver(id bundle.ID, dst contact.NodeID, delay float64, now sim.Time)
	// OnDrop fires when a node sheds a copy: refused on arrival,
	// evicted for room, expired by TTL, or purged as delivered by an
	// immunity table / anti-packet.
	OnDrop(at contact.NodeID, id bundle.ID, reason node.DropReason, now sim.Time)
	// OnSample fires once per sampling period with the engine's
	// periodic metric observation.
	OnSample(s metrics.Sample)
}

// Compile-time check: the metrics collector is just another observer.
var _ Observer = (*metrics.Collector)(nil)

// FuncObserver adapts optional callbacks into an Observer; nil fields
// are skipped. It is the quickest way to tap one event kind.
type FuncObserver struct {
	Generate func(id bundle.ID, dst contact.NodeID, now sim.Time)
	Transmit func(from, to contact.NodeID, id bundle.ID, now sim.Time)
	Deliver  func(id bundle.ID, dst contact.NodeID, delay float64, now sim.Time)
	Drop     func(at contact.NodeID, id bundle.ID, reason node.DropReason, now sim.Time)
	Sample   func(s metrics.Sample)
}

// OnGenerate implements Observer.
func (f *FuncObserver) OnGenerate(id bundle.ID, dst contact.NodeID, now sim.Time) {
	if f.Generate != nil {
		f.Generate(id, dst, now)
	}
}

// OnTransmit implements Observer.
func (f *FuncObserver) OnTransmit(from, to contact.NodeID, id bundle.ID, now sim.Time) {
	if f.Transmit != nil {
		f.Transmit(from, to, id, now)
	}
}

// OnDeliver implements Observer.
func (f *FuncObserver) OnDeliver(id bundle.ID, dst contact.NodeID, delay float64, now sim.Time) {
	if f.Deliver != nil {
		f.Deliver(id, dst, delay, now)
	}
}

// OnDrop implements Observer.
func (f *FuncObserver) OnDrop(at contact.NodeID, id bundle.ID, reason node.DropReason, now sim.Time) {
	if f.Drop != nil {
		f.Drop(at, id, reason, now)
	}
}

// OnSample implements Observer.
func (f *FuncObserver) OnSample(s metrics.Sample) {
	if f.Sample != nil {
		f.Sample(s)
	}
}
