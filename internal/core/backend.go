package core

import (
	"dtnsim/internal/node"
)

// This file is the executor seam (DESIGN.md §13): the narrow interface
// through which the sharded loop (shard.go) hands epochs to an
// execution backend that owns node state elsewhere — worker processes
// today, remote hosts tomorrow. Everything order-sensitive stays on
// this side of the seam: item collection, the canonical-order merge,
// sampling, and the Result assembly all run on the coordinating
// process, so a backend only has to execute items faithfully (via
// Kernel) to inherit the executor-independence proofs wholesale.

// RunEnv is the run context handed to a backend at Start: the defaulted
// Config (protocol instance included) and the coordinator's node slice.
// The backend owns the authoritative node state for the whole run; the
// coordinator's nodes stay pristine until Finish writes the final
// states back into them (Result reads per-node counters and stores).
type RunEnv struct {
	Cfg   Config
	Nodes []*node.Node
}

// Epoch is one collected epoch: the canonical (time, class, seq)
// ordered item list between two sampling ticks. Items expose their
// endpoints and payloads for shipping; the backend must leave each
// item's Fx holding exactly the effects Kernel.Exec would have
// recorded, in the same program order — merge replays them assuming so.
type Epoch struct {
	r *shardRun
}

// Len returns the number of items in the epoch.
func (ep *Epoch) Len() int { return len(ep.r.items) }

// Item returns the i-th item in canonical order. The pointer is valid
// until the next epoch's collection.
func (ep *Epoch) Item(i int) *EpochItem { return &ep.r.items[i] }

// EpochBackend executes epochs on behalf of the sharded loop.
// Implementations must respect the per-node dependency order: two items
// sharing an endpoint execute in item-index order, with the later one
// observing all node mutations of the earlier. Items not sharing a node
// may run concurrently, anywhere.
type EpochBackend interface {
	// Start begins a run. The backend captures what it needs from the
	// environment (config scalars, protocol spec, population) and
	// prepares its executors.
	Start(env RunEnv) error
	// RunEpoch executes every item and fills the items' effect buffers.
	// It is never called with an empty epoch.
	RunEpoch(ep *Epoch) error
	// NodeOccupancy returns node i's current buffer occupancy — the
	// value nodes[i].Store.Occupancy() would return on the
	// authoritative state — read at sampling ticks between epochs.
	NodeOccupancy(i int) float64
	// Finish ends the run, restoring the authoritative final node
	// states into the Start environment's Nodes so Result assembly
	// reads them locally. Called once, only on successful runs.
	Finish() error
}
