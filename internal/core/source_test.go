package core

import (
	"errors"
	"reflect"
	"testing"

	"dtnsim/internal/contact"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// fakeSource is a scriptable contact source for engine-level tests.
type fakeSource struct {
	contacts []contact.Contact
	nodes    int
	horizon  sim.Time
	i        int
	err      error
	closed   int
}

func (f *fakeSource) Next() (contact.Contact, bool) {
	if f.i >= len(f.contacts) {
		return contact.Contact{}, false
	}
	c := f.contacts[f.i]
	f.i++
	return c, true
}
func (f *fakeSource) Nodes() int        { return f.nodes }
func (f *fakeSource) Horizon() sim.Time { return f.horizon }
func (f *fakeSource) Err() error        { return f.err }
func (f *fakeSource) Close() error      { f.closed++; return nil }

func sourceConfig(src contact.Source) Config {
	return Config{
		Source:   src,
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 1, Count: 1}},
	}
}

func TestConfigRejectsBothPlans(t *testing.T) {
	cfg := validConfig(t)
	cfg.Source = cfg.Schedule.Stream()
	if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
		t.Errorf("both Schedule and Source: err = %v, want ErrConfig", err)
	}
}

func TestConfigRejectsNoPlan(t *testing.T) {
	cfg := validConfig(t)
	cfg.Schedule = nil
	if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
		t.Errorf("no contact plan: err = %v, want ErrConfig", err)
	}
}

// TestConfigRequiresHorizonForSource pins the satellite fix: a source
// that cannot report its extent must be paired with an explicit
// horizon, instead of the old silent run-to-t=0.
func TestConfigRequiresHorizonForSource(t *testing.T) {
	src := &fakeSource{nodes: 2, horizon: 0,
		contacts: []contact.Contact{{A: 0, B: 1, Start: 100, End: 1100}}}
	cfg := sourceConfig(src)
	if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero-horizon source without explicit horizon: err = %v, want ErrConfig", err)
	}
	src.i = 0
	cfg.Horizon = 1100
	if _, err := Run(cfg); err != nil {
		t.Fatalf("explicit horizon must satisfy the source path: %v", err)
	}
}

func TestConfigRejectsNegativeHorizon(t *testing.T) {
	cfg := validConfig(t)
	cfg.Horizon = -10
	if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
		t.Errorf("negative horizon: err = %v, want ErrConfig", err)
	}
}

func TestEmptySourceRejected(t *testing.T) {
	cfg := sourceConfig(&fakeSource{nodes: 2, horizon: 1000})
	if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
		t.Errorf("empty source: err = %v, want ErrConfig", err)
	}
}

func TestTinySourceRejected(t *testing.T) {
	cfg := sourceConfig(&fakeSource{nodes: 1, horizon: 1000,
		contacts: []contact.Contact{{A: 0, B: 1, Start: 1, End: 2}}})
	if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
		t.Errorf("1-node source: err = %v, want ErrConfig", err)
	}
}

// TestStreamedContactsValidatedIncrementally: invalid or out-of-order
// contacts surfaced mid-stream abort the run with an error instead of
// corrupting it.
func TestStreamedContactsValidatedIncrementally(t *testing.T) {
	for name, contacts := range map[string][]contact.Contact{
		"unsorted": {
			{A: 0, B: 1, Start: 500, End: 600},
			{A: 0, B: 1, Start: 100, End: 200},
		},
		"invalid": {
			{A: 0, B: 1, Start: 100, End: 200},
			{A: 1, B: 1, Start: 300, End: 400},
		},
		"out-of-range": {
			{A: 0, B: 1, Start: 100, End: 200},
			{A: 0, B: 7, Start: 300, End: 400},
		},
	} {
		cfg := sourceConfig(&fakeSource{nodes: 2, horizon: 1000, contacts: contacts})
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s stream accepted", name)
		}
	}
}

// TestSourceErrSurfaces: a source failing mid-stream (disk error)
// truncates the run with its error.
func TestSourceErrSurfaces(t *testing.T) {
	src := &fakeSource{nodes: 2, horizon: 1000,
		contacts: []contact.Contact{{A: 0, B: 1, Start: 100, End: 300}},
		err:      errors.New("disk on fire")}
	cfg := sourceConfig(src)
	cfg.Flows = []Flow{{Src: 0, Dst: 1, Count: 50}} // cannot finish in one contact
	cfg.RunToHorizon = true
	if _, err := Run(cfg); err == nil || !errors.Is(err, src.err) {
		t.Errorf("source error not surfaced: %v", err)
	}
}

// TestSourceClosedOnEarlyStop: a Closer source is released even when
// the run terminates before draining it.
func TestSourceClosedOnEarlyStop(t *testing.T) {
	src := &fakeSource{nodes: 2, horizon: 10000, contacts: []contact.Contact{
		{A: 0, B: 1, Start: 100, End: 1100},
		{A: 0, B: 1, Start: 2000, End: 3100},
		{A: 0, B: 1, Start: 4000, End: 5100},
	}}
	cfg := sourceConfig(src) // single bundle: delivered in the first contact
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if src.closed == 0 {
		t.Error("io.Closer source not closed by Run")
	}
}

// TestAdaptiveHorizonMatchesMaterialized: a source reporting only a
// span upper bound must still end the run at the true latest contact
// end, exactly like the materialized schedule whose horizon is known up
// front.
func TestAdaptiveHorizonMatchesMaterialized(t *testing.T) {
	contacts := []contact.Contact{
		{A: 0, B: 1, Start: 100, End: 1100},
		{A: 1, B: 2, Start: 2500, End: 2600},
		{A: 0, B: 2, Start: 5000, End: 7300},
	}
	sched := &contact.Schedule{Nodes: 3, Contacts: contacts}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	run := func(cfg Config) *Result {
		cfg.Protocol = protocol.NewPure()
		cfg.Flows = []Flow{{Src: 0, Dst: 2, Count: 3}}
		cfg.RunToHorizon = true
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	mat := run(Config{Schedule: sched})
	// The source reports a generous span (the generator's configured
	// horizon), strictly above the real latest end.
	str := run(Config{Source: &fakeSource{nodes: 3, horizon: 50000, contacts: contacts}})
	if !reflect.DeepEqual(mat, str) {
		t.Errorf("adaptive horizon diverged:\nmaterialized: %+v\nstreamed:     %+v", mat, str)
	}
	if str.FinishedAt != 7300 {
		t.Errorf("run finished at %v, want the latest contact end 7300", str.FinishedAt)
	}
}
