package core_test

// Tests of the finite-bandwidth contact model (DESIGN.md §9): byte
// budgets, strict Wants-order consumption with partial-transfer =
// not-carried semantics, control-record byte charging, byte-capacity
// admission through the DropPolicy registry, and the bit-identity of
// the unconstrained default (the golden grid pins the latter across the
// whole protocol registry; the tests here pin it on targeted cells).

import (
	"errors"
	"reflect"
	"testing"

	"dtnsim/internal/contact"
	"dtnsim/internal/core"
	"dtnsim/internal/metrics"
	"dtnsim/internal/node"
	"dtnsim/internal/protocol"
)

// lineSchedule is a 3-node plan with one long 0<->1 contact: ten
// 100-second slots, so slot budget never binds before byte budget does
// in the tests below.
func lineSchedule() *contact.Schedule {
	return &contact.Schedule{
		Nodes: 3,
		Contacts: []contact.Contact{
			{A: 0, B: 1, Start: 0, End: 1000},
		},
	}
}

func TestBandwidthCapsContactBytes(t *testing.T) {
	// 5 bundles of 1000 B each; 1000 s x 3 B/s = 3000 B budget => the
	// contact carries exactly 3 bundles even though 10 slots are free.
	res, err := core.Run(core.Config{
		Schedule:     lineSchedule(),
		Protocol:     protocol.NewPure(),
		Flows:        []core.Flow{{Src: 0, Dst: 2, Count: 5, Size: 1000}},
		Bandwidth:    3,
		Seed:         1,
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataTransmissions != 3 {
		t.Fatalf("DataTransmissions = %d, want 3 (3000 B budget / 1000 B bundles)", res.DataTransmissions)
	}
}

func TestBandwidthUnsetIsUnlimited(t *testing.T) {
	res, err := core.Run(core.Config{
		Schedule:     lineSchedule(),
		Protocol:     protocol.NewPure(),
		Flows:        []core.Flow{{Src: 0, Dst: 2, Count: 5, Size: 1000}},
		Seed:         1,
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataTransmissions != 5 {
		t.Fatalf("DataTransmissions = %d, want all 5 with no bandwidth set", res.DataTransmissions)
	}
}

func TestPerContactBandwidthOverridesGlobal(t *testing.T) {
	sched := lineSchedule()
	sched.Contacts[0].Bandwidth = 1 // 1000 B: one bundle, despite a generous global
	res, err := core.Run(core.Config{
		Schedule:     sched,
		Protocol:     protocol.NewPure(),
		Flows:        []core.Flow{{Src: 0, Dst: 2, Count: 5, Size: 1000}},
		Bandwidth:    1e9,
		Seed:         1,
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataTransmissions != 1 {
		t.Fatalf("DataTransmissions = %d, want 1 (per-contact bandwidth wins)", res.DataTransmissions)
	}
}

// TestPartialTransferEndsBatch pins the strict Wants-order semantics: a
// bundle the remaining budget cannot carry whole ends the direction's
// batch — later, smaller bundles are NOT sent around it.
func TestPartialTransferEndsBatch(t *testing.T) {
	// Direct traffic to node 1, so Wants order is ascending sequence:
	// seq 1 is 5000 B, seq 2 is 50 B. Budget 4000 B fits neither seq 1
	// nor (because the batch ends there) seq 2.
	res, err := core.Run(core.Config{
		Schedule: lineSchedule(),
		Protocol: protocol.NewPure(),
		Flows: []core.Flow{
			{Src: 0, Dst: 1, Count: 1, Size: 5000},
			{Src: 0, Dst: 1, Count: 1, Size: 50},
		},
		Bandwidth:    4, // 4000 B over the 1000 s contact
		Seed:         1,
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.DataTransmissions != 0 {
		t.Fatalf("delivered %d / transmitted %d; want 0/0 (oversized head must not be skipped)",
			res.Delivered, res.DataTransmissions)
	}

	// Raising the budget above seq 1's size delivers both in order.
	res, err = core.Run(core.Config{
		Schedule: lineSchedule(),
		Protocol: protocol.NewPure(),
		Flows: []core.Flow{
			{Src: 0, Dst: 1, Count: 1, Size: 5000},
			{Src: 0, Dst: 1, Count: 1, Size: 50},
		},
		Bandwidth:    6,
		Seed:         1,
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Fatalf("delivered %d, want 2 once the head fits", res.Delivered)
	}
}

// TestZeroSizeBundlesFlowUnderBandwidth: size-less bundles consume no
// budget, so even a tiny bandwidth carries them all — the legacy
// workload is unaffected by turning bandwidth on.
func TestZeroSizeBundlesFlowUnderBandwidth(t *testing.T) {
	res, err := core.Run(core.Config{
		Schedule:     lineSchedule(),
		Protocol:     protocol.NewPure(),
		Flows:        []core.Flow{{Src: 0, Dst: 1, Count: 5}},
		Bandwidth:    1e-9,
		Seed:         1,
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 5 {
		t.Fatalf("delivered %d, want 5 (zero-size bundles are budget-free)", res.Delivered)
	}
}

// TestControlBytesChargeBudget: with immunity's record exchange charged
// per record, signaling crowds out data on a tight contact.
func TestControlBytesChargeBudget(t *testing.T) {
	sched := &contact.Schedule{
		Nodes: 2,
		Contacts: []contact.Contact{
			{A: 0, B: 1, Start: 0, End: 400},
			{A: 0, B: 1, Start: 1000, End: 1400},
		},
	}
	run := func(controlBytes float64) *core.Result {
		res, err := core.Run(core.Config{
			Schedule: sched,
			Protocol: protocol.NewImmunity(),
			// Two 300 B bundles; each 400 s contact has a 400 B budget,
			// so exactly one bundle fits per contact when signaling is
			// free.
			Flows:        []core.Flow{{Src: 0, Dst: 1, Count: 2, Size: 300}},
			Bandwidth:    1,
			ControlBytes: controlBytes,
			Seed:         1,
			RunToHorizon: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run(0)
	if free.Delivered != 2 {
		t.Fatalf("free signaling: delivered %d, want 2", free.Delivered)
	}
	// After contact 1 delivers seq 1, both nodes hold its immunity
	// record; contact 2's exchange then carries 2 records (one each
	// way). At 150 B per record that is 300 B of the 400 B budget —
	// seq 2 (300 B) no longer fits.
	charged := run(150)
	if charged.Delivered != 1 {
		t.Fatalf("charged signaling: delivered %d, want 1 (records crowd out data)", charged.Delivered)
	}
	if charged.ControlRecords == 0 {
		t.Fatal("expected control records to have been exchanged")
	}
}

func TestBytePressureDropFront(t *testing.T) {
	coll := metrics.NewCollector()
	res, err := core.Run(core.Config{
		Schedule: lineSchedule(),
		Protocol: protocol.NewPure(),
		// Relay 1 takes 1000 B bundles under a 2500 B byte capacity:
		// the third arrival forces the dropfront policy to shed the
		// oldest stored copy.
		Flows:        []core.Flow{{Src: 0, Dst: 2, Count: 3, Size: 1000}},
		BufferBytes:  2500,
		DropPolicy:   "dropfront",
		Seed:         1,
		Observers:    []core.Observer{coll},
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByteDropped != 1 {
		t.Fatalf("ByteDropped = %d, want 1", res.ByteDropped)
	}
	if res.Refused != 0 {
		t.Fatalf("Refused = %d, want 0 (dropfront makes room instead)", res.Refused)
	}
	if got := coll.DropsByReason(node.DropBytePressure); got != 1 {
		t.Fatalf("observer bytepressure drops = %d, want 1", got)
	}
	if got := coll.InvalidDrops(); got != 0 {
		t.Fatalf("observer saw %d drops with invalid reasons", got)
	}
}

func TestBytePressureDropTailRefuses(t *testing.T) {
	coll := metrics.NewCollector()
	res, err := core.Run(core.Config{
		Schedule:     lineSchedule(),
		Protocol:     protocol.NewPure(),
		Flows:        []core.Flow{{Src: 0, Dst: 2, Count: 3, Size: 1000}},
		BufferBytes:  2500,
		DropPolicy:   "droptail",
		Seed:         1,
		Observers:    []core.Observer{coll},
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByteDropped != 0 {
		t.Fatalf("ByteDropped = %d, want 0 under droptail", res.ByteDropped)
	}
	if res.Refused != 1 {
		t.Fatalf("Refused = %d, want 1 (third arrival refused)", res.Refused)
	}
	if got := coll.DropsByReason(node.DropRefused); got != 1 {
		t.Fatalf("observer refused drops = %d, want 1", got)
	}
}

func TestBytePressureDropRandomSeeded(t *testing.T) {
	run := func(seed uint64) *core.Result {
		res, err := core.Run(core.Config{
			Schedule:     lineSchedule(),
			Protocol:     protocol.NewPure(),
			Flows:        []core.Flow{{Src: 0, Dst: 2, Count: 5, Size: 1000}},
			BufferBytes:  2500,
			DropPolicy:   "droprandom",
			Seed:         seed,
			RunToHorizon: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(toGolden(a), toGolden(b)) {
		t.Fatal("droprandom runs with the same seed diverged")
	}
	if a.ByteDropped != 3 {
		t.Fatalf("ByteDropped = %d, want 3 (5 arrivals into 2 byte-slots)", a.ByteDropped)
	}
}

// TestByteRefusalBeforeSlotEviction: byte admission runs before the
// protocol's slot-count Admit, so a byte-refused incoming bundle must
// not trigger a destructive protocol eviction (EC would otherwise shed
// its highest-count copy for nothing).
func TestByteRefusalBeforeSlotEviction(t *testing.T) {
	sched := &contact.Schedule{
		Nodes: 3,
		Contacts: []contact.Contact{
			{A: 0, B: 1, Start: 0, End: 1000},
			{A: 0, B: 1, Start: 3000, End: 4000},
		},
	}
	res, err := core.Run(core.Config{
		Schedule: sched,
		Protocol: protocol.NewEC(),
		Flows: []core.Flow{
			// Contact 1 fills relay 1 to its exact byte capacity.
			{Src: 0, Dst: 2, Count: 5, Size: 500},
			// Contact 2 offers a bundle droptail cannot make room for.
			{Src: 0, Dst: 2, Count: 1, Size: 2000, StartAt: 2000},
		},
		BufferBytes:  2500,
		DropPolicy:   "droptail",
		Seed:         1,
		RunToHorizon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 0 {
		t.Fatalf("Evicted = %d, want 0: byte refusal must precede EC's slot eviction", res.Evicted)
	}
	if res.Refused != 1 {
		t.Fatalf("Refused = %d, want 1 (the oversized arrival)", res.Refused)
	}
	if res.ByteDropped != 0 {
		t.Fatalf("ByteDropped = %d, want 0 under droptail", res.ByteDropped)
	}
}

// TestConstrainedInertIsBitIdentical: turning the constrained machinery
// on without letting it bind (huge bandwidth and byte capacity, size-
// less bundles) reproduces the unconstrained run bit for bit — the
// compiled-in resource model is invisible until it binds.
func TestConstrainedInertIsBitIdentical(t *testing.T) {
	for _, protoSpec := range []string{"pure", "immunity", "ecttl"} {
		base := goldenConfig(t, protoSpec, goldenMobilities[0], false)
		want, err := core.Run(base)
		if err != nil {
			t.Fatal(err)
		}
		inert := goldenConfig(t, protoSpec, goldenMobilities[0], false)
		inert.Bandwidth = 1e18
		inert.BufferBytes = 1 << 60
		inert.DropPolicy = "dropfront"
		got, err := core.Run(inert)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(toGolden(want), toGolden(got)) {
			t.Errorf("%s: inert constrained run diverged from unconstrained", protoSpec)
		}
	}
}

func TestConstrainedConfigValidation(t *testing.T) {
	valid := func() core.Config {
		return core.Config{
			Schedule: lineSchedule(),
			Protocol: protocol.NewPure(),
			Flows:    []core.Flow{{Src: 0, Dst: 1, Count: 1}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"negative bandwidth", func(c *core.Config) { c.Bandwidth = -1 }},
		{"negative buffer bytes", func(c *core.Config) { c.BufferBytes = -1 }},
		{"negative control bytes", func(c *core.Config) { c.ControlBytes = -5 }},
		{"unknown drop policy", func(c *core.Config) { c.DropPolicy = "nosuch" }},
		{"negative flow size", func(c *core.Config) { c.Flows[0].Size = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mutate(&cfg)
			if _, err := core.Run(cfg); !errors.Is(err, core.ErrConfig) {
				t.Fatalf("err = %v, want ErrConfig", err)
			}
		})
	}
	// The valid baseline itself must run.
	if _, err := core.Run(valid()); err != nil {
		t.Fatalf("baseline config failed: %v", err)
	}
	// A drop policy without a byte capacity is accepted and inert.
	cfg := valid()
	cfg.DropPolicy = "droprandom"
	if _, err := core.Run(cfg); err != nil {
		t.Fatalf("drop policy without byte cap: %v", err)
	}
}

// TestMobilityStreamsCarryBandwidth: a contact's bandwidth rides
// through the streaming adapter untouched.
func TestMobilityStreamsCarryBandwidth(t *testing.T) {
	sched := lineSchedule()
	sched.Contacts[0].Bandwidth = 123
	src := sched.Stream()
	c, ok := src.Next()
	if !ok || c.Bandwidth != 123 {
		t.Fatalf("streamed contact = %+v (ok=%v), want bandwidth 123", c, ok)
	}
}
