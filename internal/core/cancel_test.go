package core

import (
	"context"
	"errors"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/mobility"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// cancelConfig builds a deterministic trace-backed run for the
// cancellation tests.
func cancelConfig(t *testing.T) Config {
	t.Helper()
	sched, err := mobility.SyntheticCambridge{Seed: 42}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	fac, err := protocol.Parse("pure")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Schedule:     sched,
		Protocol:     fac.New(),
		Flows:        []Flow{{Src: 0, Dst: 7, Count: 25}},
		Seed:         42,
		RunToHorizon: true,
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := cancelConfig(t)
	cfg.Context = ctx
	res, err := Run(cfg)
	if err == nil {
		t.Fatalf("pre-cancelled run returned a result: %+v", res)
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap ErrCancelled and context.Canceled: %v", err)
	}
}

func TestRunCancelMidRun(t *testing.T) {
	// Cancel from inside the event stream: the first transmission pulls
	// the plug, so the run is provably past setup and mid-simulation
	// when the scheduler's interrupt poll sees the cancel.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := cancelConfig(t)
	cfg.Context = ctx
	transmits := 0
	cfg.Observers = []Observer{&FuncObserver{
		Transmit: func(from, to contact.NodeID, id bundle.ID, now sim.Time) {
			transmits++
			cancel()
		},
	}}
	res, err := Run(cfg)
	if err == nil {
		t.Fatalf("cancelled run returned a result: %+v", res)
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap ErrCancelled and context.Canceled: %v", err)
	}
	if transmits == 0 {
		t.Fatal("observer never fired; the run was not cancelled mid-stream")
	}
	// The interrupt polls every interruptEvery pops, so after the cancel
	// at the first transmission the run may process at most one poll
	// window of further events — far short of draining the schedule.
	full, err := Run(cancelConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if int64(transmits) >= full.DataTransmissions {
		t.Errorf("cancelled run transmitted %d of %d bundles; cancellation did not truncate it",
			transmits, full.DataTransmissions)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	// An already-expired deadline must abort with DeadlineExceeded; the
	// zero-duration timeout keeps the test wall-clock independent.
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	cfg := cancelConfig(t)
	cfg.Context = ctx
	if _, err := Run(cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: got %v, want DeadlineExceeded", err)
	}
}

func TestRunLiveContextBitIdentical(t *testing.T) {
	// A context that never cancels must not perturb the run: the
	// interrupt only polls, the event stream is untouched.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plain, err := Run(cancelConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cancelConfig(t)
	cfg.Context = ctx
	withCtx, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Delivered != withCtx.Delivered ||
		plain.FinishedAt != withCtx.FinishedAt ||
		plain.ControlRecords != withCtx.ControlRecords ||
		plain.DataTransmissions != withCtx.DataTransmissions ||
		plain.MeanOccupancy != withCtx.MeanOccupancy ||
		plain.MeanDuplication != withCtx.MeanDuplication {
		t.Errorf("live context perturbed the run:\nplain   %+v\nwithCtx %+v", plain, withCtx)
	}
}
