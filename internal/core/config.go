// Package core is the unified DTN simulation engine — the paper's
// central artifact. It replays a contact schedule through a routing
// protocol under the paper's §IV semantics: anti-entropy control
// sessions at contact start, half-duplex links with a fixed per-bundle
// transmission time and lower-ID-sends-first arbitration, 10-bundle
// relay buffers with pinned source bundles, periodic metric sampling,
// and early termination once every flow completes.
package core

import (
	"errors"
	"fmt"
	"math"

	"dtnsim/internal/contact"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// Defaults from the paper's §IV methodology.
const (
	// DefaultBufferCap is the per-node buffer size in bundles ("we set
	// each node to hold 10 bundles").
	DefaultBufferCap = 10
	// DefaultTxTime is the per-bundle transmission time in seconds ("we
	// fix the transmission time to 100 seconds").
	DefaultTxTime = 100
	// DefaultSampleEvery is the metric sampling period in seconds.
	DefaultSampleEvery = 1000
	// DefaultRecordsPerSlot is how many control records fit in one
	// bundle-slot time: anti-packets are small relative to the paper's
	// hundreds-of-megabytes bundles, but not free.
	DefaultRecordsPerSlot = 10
)

// Flow is one source→destination stream of Count bundles created at
// StartAt. The paper's workload is a single flow of k ∈ {5..50} bundles
// created at t=0.
// The JSON field names are part of the public Scenario file format.
type Flow struct {
	Src     contact.NodeID `json:"src"`
	Dst     contact.NodeID `json:"dst"`
	Count   int            `json:"count"`
	StartAt sim.Time       `json:"start_at,omitempty"`
}

// Config describes one simulation run.
type Config struct {
	// Schedule is the contact plan to replay. Required, validated.
	Schedule *contact.Schedule
	// Protocol is the routing policy under test. Required.
	Protocol protocol.Protocol
	// Flows is the workload. Required, non-empty. A source node may
	// appear in several flows (e.g. bursts with different start times or
	// destinations); each flow takes the next contiguous block of the
	// source's sequence numbers in declaration order.
	Flows []Flow
	// BufferCap is the per-node buffer capacity in bundles.
	BufferCap int
	// TxTime is the seconds needed to transmit one bundle.
	TxTime float64
	// RecordsPerSlot scales the control-record budget of a contact.
	RecordsPerSlot int
	// SampleEvery is the metric sampling period in seconds.
	SampleEvery float64
	// Horizon caps the run; zero means the schedule's horizon.
	Horizon sim.Time
	// Seed drives the protocol's random choices (P-Q draws).
	Seed uint64
	// RunToHorizon disables early termination when all flows complete,
	// so buffer/duplication dynamics can be observed afterwards.
	RunToHorizon bool
	// Observers receive engine events (generation, transmission,
	// delivery, drops, periodic samples) as the run progresses, after
	// the built-in metrics collector. Hooks run on the simulation
	// goroutine in virtual-time order.
	Observers []Observer
}

// ErrConfig wraps configuration validation failures.
var ErrConfig = errors.New("core: invalid config")

// withDefaults returns cfg with zero fields replaced by the paper's
// defaults.
func (cfg Config) withDefaults() Config {
	if cfg.BufferCap == 0 {
		cfg.BufferCap = DefaultBufferCap
	}
	if cfg.TxTime == 0 {
		cfg.TxTime = DefaultTxTime
	}
	if cfg.RecordsPerSlot == 0 {
		cfg.RecordsPerSlot = DefaultRecordsPerSlot
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.Horizon == 0 && cfg.Schedule != nil {
		cfg.Horizon = cfg.Schedule.Horizon()
	}
	return cfg
}

// validate checks the configuration after defaulting.
func (cfg Config) validate() error {
	if cfg.Schedule == nil {
		return fmt.Errorf("%w: nil schedule", ErrConfig)
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if cfg.Protocol == nil {
		return fmt.Errorf("%w: nil protocol", ErrConfig)
	}
	if len(cfg.Flows) == 0 {
		return fmt.Errorf("%w: no flows", ErrConfig)
	}
	if cfg.BufferCap < 1 {
		return fmt.Errorf("%w: buffer capacity %d", ErrConfig, cfg.BufferCap)
	}
	// The `!(x > 0)` form also rejects NaN, which passes `x <= 0`.
	if !(cfg.TxTime > 0) || math.IsInf(cfg.TxTime, 0) {
		return fmt.Errorf("%w: tx time %v", ErrConfig, cfg.TxTime)
	}
	// withDefaults only replaces exact zeros, so negative (and
	// non-finite) values reach this point; they would silently corrupt
	// sampling and control budgets rather than fail.
	if !(cfg.SampleEvery > 0) || math.IsInf(cfg.SampleEvery, 0) {
		return fmt.Errorf("%w: sample period %v", ErrConfig, cfg.SampleEvery)
	}
	if cfg.RecordsPerSlot < 0 {
		return fmt.Errorf("%w: records per slot %d", ErrConfig, cfg.RecordsPerSlot)
	}
	for i, f := range cfg.Flows {
		if f.Count <= 0 {
			return fmt.Errorf("%w: flow %d has count %d", ErrConfig, i, f.Count)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("%w: flow %d is a self-loop on node %d", ErrConfig, i, f.Src)
		}
		if f.StartAt < 0 {
			return fmt.Errorf("%w: flow %d starts at %v", ErrConfig, i, f.StartAt)
		}
		n := contact.NodeID(cfg.Schedule.Nodes)
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
			return fmt.Errorf("%w: flow %d endpoints (%d,%d) outside [0,%d)", ErrConfig, i, f.Src, f.Dst, n)
		}
	}
	return nil
}
