// Package core is the unified DTN simulation engine — the paper's
// central artifact. It replays a contact schedule through a routing
// protocol under the paper's §IV semantics: anti-entropy control
// sessions at contact start, half-duplex links with a fixed per-bundle
// transmission time and lower-ID-sends-first arbitration, 10-bundle
// relay buffers with pinned source bundles, periodic metric sampling,
// and early termination once every flow completes.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dtnsim/internal/buffer"
	"dtnsim/internal/contact"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// Defaults from the paper's §IV methodology.
const (
	// DefaultBufferCap is the per-node buffer size in bundles ("we set
	// each node to hold 10 bundles").
	DefaultBufferCap = 10
	// DefaultTxTime is the per-bundle transmission time in seconds ("we
	// fix the transmission time to 100 seconds").
	DefaultTxTime = 100
	// DefaultSampleEvery is the metric sampling period in seconds.
	DefaultSampleEvery = 1000
	// DefaultRecordsPerSlot is how many control records fit in one
	// bundle-slot time: anti-packets are small relative to the paper's
	// hundreds-of-megabytes bundles, but not free.
	DefaultRecordsPerSlot = 10
)

// Flow is one source→destination stream of Count bundles created at
// StartAt. The paper's workload is a single flow of k ∈ {5..50} bundles
// created at t=0.
// The JSON field names are part of the public Scenario file format.
type Flow struct {
	Src     contact.NodeID `json:"src"`
	Dst     contact.NodeID `json:"dst"`
	Count   int            `json:"count"`
	StartAt sim.Time       `json:"start_at,omitempty"`
	// Size is the payload size in bytes of every bundle in this flow;
	// zero keeps the legacy size-less model in which transfers consume
	// only link slots (DESIGN.md §9).
	Size int64 `json:"size,omitempty"`
}

// Config describes one simulation run.
type Config struct {
	// Schedule is a materialized contact plan to replay. Exactly one of
	// Schedule and Source must be set; a Schedule is adapted to the
	// streaming engine via contact.Schedule.Stream, so existing callers
	// are unaffected by the pull-based contact pipeline.
	Schedule *contact.Schedule
	// Source is a streaming contact plan: the engine pulls one contact
	// at a time, keeping contact-plan memory at the source's working
	// set (O(nodes) for the built-in mobility models) instead of
	// O(#contacts). A Source is consumed by the run — build a fresh one
	// per Run. Contacts are validated incrementally as they are pulled.
	Source contact.Source
	// Protocol is the routing policy under test. Required.
	Protocol protocol.Protocol
	// Flows is the workload. Required, non-empty. A source node may
	// appear in several flows (e.g. bursts with different start times or
	// destinations); each flow takes the next contiguous block of the
	// source's sequence numbers in declaration order.
	Flows []Flow
	// BufferCap is the per-node buffer capacity in bundles.
	BufferCap int
	// TxTime is the seconds needed to transmit one bundle.
	TxTime float64
	// RecordsPerSlot scales the control-record budget of a contact.
	RecordsPerSlot int
	// SampleEvery is the metric sampling period in seconds.
	SampleEvery float64
	// Horizon caps the run; zero means the schedule's horizon.
	Horizon sim.Time
	// Seed drives the protocol's random choices (P-Q draws).
	Seed uint64
	// Bandwidth is the contact link capacity in bytes per second,
	// applied to every contact that does not carry its own
	// Contact.Bandwidth. Zero means unconstrained (the legacy
	// slots-only model): a contact of duration D at bandwidth B
	// transfers at most ⌊D·B⌋ payload bytes, consumed in the protocol's
	// Wants order; a bundle the remaining budget cannot carry whole is
	// not transferred at all (DESIGN.md §9).
	Bandwidth float64
	// BufferBytes is the per-node buffer byte capacity alongside the
	// BufferCap slot count; zero means unbounded bytes. Under byte
	// pressure the store consults DropPolicy.
	BufferBytes int64
	// DropPolicy names the buffer.DropPolicy consulted when an incoming
	// sized bundle does not fit BufferBytes: "droptail" (default),
	// "dropfront", or "droprandom". Ignored while BufferBytes is zero.
	DropPolicy string
	// ControlBytes is the signaling cost in bytes of one control record
	// (summary-vector entry, immunity record, anti-packet), charged
	// against a bandwidth-constrained contact's byte budget before data
	// transfers — the §V-C overhead as a first-class resource. Zero
	// keeps signaling free; it has no effect on unconstrained contacts.
	ControlBytes float64
	// RunToHorizon disables early termination when all flows complete,
	// so buffer/duplication dynamics can be observed afterwards.
	RunToHorizon bool
	// Shards selects the execution engine: 0 runs the classic sequential
	// event loop; K >= 1 runs the sharded executor with K worker
	// goroutines (DESIGN.md §12). Purely an execution knob — results are
	// bit-identical for every value, which is why it never enters a
	// scenario's canonical key.
	Shards int
	// Backend, when non-nil, delegates epoch execution to an external
	// executor (worker processes — internal/dist) through the seam in
	// backend.go: the engine still collects items, merges effects and
	// samples metrics, but items execute on the backend's authoritative
	// node state. Like Shards this is purely an execution knob —
	// results are bit-identical with and without one, and it never
	// enters a scenario's canonical key.
	Backend EpochBackend
	// Context, when non-nil, lets the caller abort the run: the engine
	// polls it at scheduler event pops (every interruptEvery events, so
	// a cancel or deadline lands within microseconds of virtual-event
	// processing) and Run returns an error wrapping the context's error
	// instead of a Result. Nil costs a single nil check per event pop —
	// results are bit-identical with and without a never-cancelled
	// context (benchguard pair "cancel-overhead" gates the overhead).
	// Cancellation is a runtime knob, not part of the scenario: it never
	// enters the canonical key.
	Context context.Context
	// Observers receive engine events (generation, transmission,
	// delivery, drops, periodic samples) as the run progresses, after
	// the built-in metrics collector. Hooks run on the simulation
	// goroutine in virtual-time order.
	Observers []Observer
}

// ErrConfig wraps configuration validation failures.
var ErrConfig = errors.New("core: invalid config")

// withDefaults returns cfg with zero fields replaced by the paper's
// defaults.
func (cfg Config) withDefaults() Config {
	if cfg.BufferCap == 0 {
		cfg.BufferCap = DefaultBufferCap
	}
	if cfg.TxTime == 0 {
		cfg.TxTime = DefaultTxTime
	}
	if cfg.RecordsPerSlot == 0 {
		cfg.RecordsPerSlot = DefaultRecordsPerSlot
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	return cfg
}

// nodeCount returns the node population of whichever contact plan is
// set, or zero when neither is.
func (cfg Config) nodeCount() int {
	switch {
	case cfg.Schedule != nil:
		return cfg.Schedule.Nodes
	case cfg.Source != nil:
		return cfg.Source.Nodes()
	}
	return 0
}

// horizonCap resolves the run's horizon after validation: the explicit
// Config.Horizon when set, otherwise the contact plan's own extent.
// adaptive reports that the cap is an upper bound from a streaming
// source (its span), which the engine tightens to the true latest
// contact end once the source is exhausted — reproducing exactly the
// horizon a materialized Schedule would have reported up front.
func (cfg Config) horizonCap() (cap sim.Time, adaptive bool) {
	if cfg.Horizon != 0 {
		return cfg.Horizon, false
	}
	if cfg.Schedule != nil {
		return cfg.Schedule.Horizon(), false
	}
	return cfg.Source.Horizon(), true
}

// validate checks the configuration after defaulting.
func (cfg Config) validate() error {
	if cfg.Schedule == nil && cfg.Source == nil {
		return fmt.Errorf("%w: no contact plan (set Schedule or Source)", ErrConfig)
	}
	if cfg.Schedule != nil && cfg.Source != nil {
		return fmt.Errorf("%w: both Schedule and Source set; pick one", ErrConfig)
	}
	if cfg.Schedule != nil {
		if err := cfg.Schedule.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrConfig, err)
		}
	} else if n := cfg.Source.Nodes(); n < 2 {
		return fmt.Errorf("%w: contact source reports %d node(s); need >=2", ErrConfig, n)
	}
	if cfg.Horizon < 0 {
		return fmt.Errorf("%w: negative horizon %v", ErrConfig, cfg.Horizon)
	}
	// A run must know when to stop: a materialized schedule's horizon
	// is its latest contact end, but a streaming source may not know
	// its extent (an unbounded generator). Refusing here beats the old
	// failure mode of silently running to t=0 on an empty horizon.
	if cap, _ := cfg.horizonCap(); cap <= 0 {
		return fmt.Errorf("%w: no horizon: set Config.Horizon or use a source that reports one", ErrConfig)
	}
	if cfg.Protocol == nil {
		return fmt.Errorf("%w: nil protocol", ErrConfig)
	}
	if len(cfg.Flows) == 0 {
		return fmt.Errorf("%w: no flows", ErrConfig)
	}
	if cfg.BufferCap < 1 {
		return fmt.Errorf("%w: buffer capacity %d", ErrConfig, cfg.BufferCap)
	}
	// The `!(x > 0)` form also rejects NaN, which passes `x <= 0`.
	if !(cfg.TxTime > 0) || math.IsInf(cfg.TxTime, 0) {
		return fmt.Errorf("%w: tx time %v", ErrConfig, cfg.TxTime)
	}
	// withDefaults only replaces exact zeros, so negative (and
	// non-finite) values reach this point; they would silently corrupt
	// sampling and control budgets rather than fail.
	if !(cfg.SampleEvery > 0) || math.IsInf(cfg.SampleEvery, 0) {
		return fmt.Errorf("%w: sample period %v", ErrConfig, cfg.SampleEvery)
	}
	if cfg.RecordsPerSlot < 0 {
		return fmt.Errorf("%w: records per slot %d", ErrConfig, cfg.RecordsPerSlot)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("%w: shards %d", ErrConfig, cfg.Shards)
	}
	// Resource-model knobs: zero disables each one, so only negative and
	// non-finite values (and unknown policy names) can be invalid.
	if cfg.Bandwidth < 0 || math.IsNaN(cfg.Bandwidth) || math.IsInf(cfg.Bandwidth, 0) {
		return fmt.Errorf("%w: bandwidth %v", ErrConfig, cfg.Bandwidth)
	}
	if cfg.BufferBytes < 0 {
		return fmt.Errorf("%w: buffer bytes %d", ErrConfig, cfg.BufferBytes)
	}
	if cfg.ControlBytes < 0 || math.IsNaN(cfg.ControlBytes) || math.IsInf(cfg.ControlBytes, 0) {
		return fmt.Errorf("%w: control bytes %v", ErrConfig, cfg.ControlBytes)
	}
	if err := buffer.CheckDropPolicy(cfg.DropPolicy); err != nil {
		return fmt.Errorf("%w: %v", ErrConfig, err)
	}
	for i, f := range cfg.Flows {
		if f.Count <= 0 {
			return fmt.Errorf("%w: flow %d has count %d", ErrConfig, i, f.Count)
		}
		if f.Size < 0 {
			return fmt.Errorf("%w: flow %d has bundle size %d", ErrConfig, i, f.Size)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("%w: flow %d is a self-loop on node %d", ErrConfig, i, f.Src)
		}
		if f.StartAt < 0 {
			return fmt.Errorf("%w: flow %d starts at %v", ErrConfig, i, f.StartAt)
		}
		n := contact.NodeID(cfg.nodeCount())
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
			return fmt.Errorf("%w: flow %d endpoints (%d,%d) outside [0,%d)", ErrConfig, i, f.Src, f.Dst, n)
		}
	}
	return nil
}
