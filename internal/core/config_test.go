package core

import (
	"errors"
	"math"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/metrics"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
)

// twoNodeSchedule returns a minimal valid schedule.
func twoNodeSchedule(t *testing.T) *contact.Schedule {
	t.Helper()
	// The contact starts after the first sampling tick at t=0, so even
	// a run that completes in its first contact records one sample.
	s := &contact.Schedule{
		Nodes:    2,
		Contacts: []contact.Contact{{A: 0, B: 1, Start: 100, End: 1100}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func validConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Schedule: twoNodeSchedule(t),
		Protocol: protocol.NewPure(),
		Flows:    []Flow{{Src: 0, Dst: 1, Count: 1}},
	}
}

func TestValidateRejectsNegativeSampleEvery(t *testing.T) {
	cfg := validConfig(t)
	cfg.SampleEvery = -5
	if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
		t.Errorf("negative SampleEvery: err = %v, want ErrConfig", err)
	}
}

func TestValidateRejectsNegativeRecordsPerSlot(t *testing.T) {
	cfg := validConfig(t)
	cfg.RecordsPerSlot = -1
	if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
		t.Errorf("negative RecordsPerSlot: err = %v, want ErrConfig", err)
	}
}

func TestValidateDefaultsStillApply(t *testing.T) {
	// Exact zeros keep taking the paper's defaults.
	cfg := validConfig(t)
	cfg.SampleEvery = 0
	cfg.RecordsPerSlot = 0
	if _, err := Run(cfg); err != nil {
		t.Errorf("zero knobs must default, got %v", err)
	}
}

func TestObserversSeeEvents(t *testing.T) {
	cfg := validConfig(t)
	cfg.Flows = []Flow{{Src: 0, Dst: 1, Count: 3}}
	var generated, transmitted, delivered, sampled int
	cfg.Observers = []Observer{&FuncObserver{
		Generate: func(bundle.ID, contact.NodeID, sim.Time) { generated++ },
		Transmit: func(_, _ contact.NodeID, _ bundle.ID, _ sim.Time) { transmitted++ },
		Deliver:  func(bundle.ID, contact.NodeID, float64, sim.Time) { delivered++ },
		Sample:   func(metrics.Sample) { sampled++ },
	}}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if generated != 3 {
		t.Errorf("generated events = %d, want 3", generated)
	}
	if delivered != r.Delivered {
		t.Errorf("deliver events = %d, want %d", delivered, r.Delivered)
	}
	if int64(transmitted) != r.DataTransmissions {
		t.Errorf("transmit events = %d, want %d", transmitted, r.DataTransmissions)
	}
	if sampled == 0 {
		t.Error("no sample events")
	}
}

func TestObserverDoesNotPerturbResult(t *testing.T) {
	run := func(obs []Observer) *Result {
		cfg := validConfig(t)
		cfg.Flows = []Flow{{Src: 0, Dst: 1, Count: 5}}
		cfg.Observers = obs
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain := run(nil)
	observed := run([]Observer{&FuncObserver{}})
	if plain.Delivered != observed.Delivered || plain.MeanOccupancy != observed.MeanOccupancy ||
		plain.MeanDuplication != observed.MeanDuplication || plain.Makespan != observed.Makespan {
		t.Error("attaching an observer changed the result")
	}
}

func TestValidateRejectsNonFiniteKnobs(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"NaN SampleEvery", func(c *Config) { c.SampleEvery = math.NaN() }},
		{"+Inf SampleEvery", func(c *Config) { c.SampleEvery = math.Inf(1) }},
		{"NaN TxTime", func(c *Config) { c.TxTime = math.NaN() }},
		{"+Inf TxTime", func(c *Config) { c.TxTime = math.Inf(1) }},
	} {
		cfg := validConfig(t)
		tc.mut(&cfg)
		if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", tc.name, err)
		}
	}
}
