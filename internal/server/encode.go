package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"dtnsim"
	"dtnsim/client"
	"dtnsim/internal/report"
)

// This file renders engine results into the deterministic wire forms
// the cache stores. Determinism is load-bearing: the service's
// contract is that equal specs yield byte-identical bodies, so every
// nondeterministic Go representation is normalized here — the delivery
// map becomes a (src, seq)-sorted list, sweep metric maps become
// string-keyed maps (encoding/json sorts those), and NaN (which JSON
// cannot represent as a number) becomes null.

// marshalCanonical is the one JSON encoder for cached bodies: indented
// with a trailing newline, so artifacts are also pleasant to curl.
func marshalCanonical(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("server: encoding result: %w", err)
	}
	return append(data, '\n'), nil
}

// encodeRunResult converts one engine result to its wire form.
func encodeRunResult(res *dtnsim.Result) ([]byte, error) {
	out := client.RunResult{
		Protocol:          res.Protocol,
		Generated:         res.Generated,
		Delivered:         res.Delivered,
		DeliveryRatio:     res.DeliveryRatio,
		Completed:         res.Completed,
		Makespan:          res.Makespan,
		MeanDelay:         res.MeanDelay,
		DelayP50:          res.DelayP50,
		DelayP95:          res.DelayP95,
		MeanOccupancy:     res.MeanOccupancy,
		MeanDuplication:   res.MeanDuplication,
		ControlRecords:    res.ControlRecords,
		DataTransmissions: res.DataTransmissions,
		Refused:           res.Refused,
		Evicted:           res.Evicted,
		Expired:           res.Expired,
		ByteDropped:       res.ByteDropped,
		FinishedAt:        float64(res.FinishedAt),
		FinalOccupancy:    res.FinalOccupancy,
		FinalBuffered:     res.FinalBuffered,
	}
	for id, at := range res.DeliveryTimes {
		out.Deliveries = append(out.Deliveries, client.Delivery{
			Src: int(id.Src), Seq: id.Seq, At: float64(at),
		})
	}
	sort.Slice(out.Deliveries, func(i, j int) bool {
		a, b := out.Deliveries[i], out.Deliveries[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Seq < b.Seq
	})
	return marshalCanonical(out)
}

// encodeSweepResult converts a finished sweep to its wire form.
func encodeSweepResult(res *dtnsim.SweepResult) ([]byte, error) {
	out := client.SweepResult{Scenario: res.Scenario, Loads: res.Loads}
	for _, s := range res.Series {
		ws := client.SweepSeries{Label: s.Label}
		for _, p := range s.Points {
			wp := client.SweepPoint{
				Load:      p.Load,
				Values:    map[string]*float64{},
				Completed: p.Completed,
				Runs:      p.Runs,
			}
			for m, v := range p.Values {
				if math.IsNaN(v) {
					wp.Values[string(m)] = nil
					continue
				}
				v := v
				wp.Values[string(m)] = &v
			}
			ws.Points = append(ws.Points, wp)
		}
		out.Series = append(out.Series, ws)
	}
	return marshalCanonical(out)
}

// encodeSweepSeries renders the sweep's per-metric load tables as one
// CSV document: each metric's table prefixed by a "# metric: name"
// comment line, metrics in the sweep's declared order.
func encodeSweepSeries(res *dtnsim.SweepResult, metrics []dtnsim.Metric) []byte {
	var buf bytes.Buffer
	for i, m := range metrics {
		if i > 0 {
			buf.WriteByte('\n')
		}
		fmt.Fprintf(&buf, "# metric: %s\n", m)
		buf.WriteString(report.FromResult(res, m, string(m)).CSV())
	}
	return buf.Bytes()
}
