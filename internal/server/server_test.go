package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dtnsim"
	"dtnsim/client"
	"dtnsim/internal/dist"
)

// quickScenario is a sub-second run: the synthetic Cambridge trace with
// a tiny workload.
const quickScenario = `{"mobility":"cambridge","protocol":"pure","flows":[{"src":0,"dst":7,"count":5}],"seed":42}`

// quickScenarioRespelled is the same run in a different JSON spelling:
// permuted keys, reordered flow fields, extra whitespace.
const quickScenarioRespelled = `{
	"seed":     42,
	"flows":    [ { "count": 5, "dst": 7, "src": 0 } ],
	"protocol": "pure",
	"mobility": "cambridge"
}`

// quickSweep is a one-point one-run sweep.
const quickSweep = `{"scenario":{"mobility":"cambridge","seed":42},"protocols":["pure"],"loads":[5],"runs":1}`

// quickSweepRespelled adds an execution knob (workers) and permutes
// keys; it must hit the same cache entry as quickSweep.
const quickSweepRespelled = `{"runs":1,"workers":3,"loads":[5],"protocols":["pure"],"scenario":{"seed":42,"mobility":"cambridge"}}`

// slowScenario is a run big enough to still be in flight when a test
// cancels it: a 1500-node constant-density classic-RWP population.
func slowScenario() string {
	return fmt.Sprintf(`{"mobility":%q,"protocol":"pure","flows":[{"src":0,"dst":7,"count":20}],"seed":1,"run_to_horizon":true}`,
		dtnsim.ScaleMobility(1500))
}

// newTestServer starts a service over a fresh (or given) cache dir and
// returns a client pointed at it.
func newTestServer(t *testing.T, opts Options) (*Server, *client.Client) {
	srv, c, _ := newTestServerURL(t, opts)
	return srv, c
}

func newTestServerURL(t *testing.T, opts Options) (*Server, *client.Client, string) {
	t.Helper()
	if opts.CacheDir == "" {
		opts.CacheDir = t.TempDir()
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Manager().Close()
	})
	return srv, client.New(ts.URL), ts.URL
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// mustRun submits a spec and waits for done, returning the job id.
func mustRun(t *testing.T, ctx context.Context, c *client.Client, req client.SubmitRequest) string {
	t.Helper()
	sub, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.JobID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateDone {
		t.Fatalf("job %s ended %s: %s", st.JobID, st.State, st.Error)
	}
	return sub.JobID
}

func TestScenarioJobHappyPath(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := testCtx(t)

	sub, err := c.SubmitScenario(ctx, []byte(quickScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Kind != client.KindScenario || !strings.HasPrefix(sub.JobID, "sc-") {
		t.Errorf("submit response: %+v", sub)
	}
	if sub.Cached {
		t.Error("first submission reported cached")
	}
	st, err := c.Wait(ctx, sub.JobID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	res, err := c.RunResult(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol == "" || res.Generated != 5 {
		t.Errorf("run result: %+v", res)
	}
	if len(res.Deliveries) != res.Delivered {
		t.Errorf("deliveries list %d entries for %d delivered", len(res.Deliveries), res.Delivered)
	}

	series, err := c.SeriesCSV(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(series, []byte("time,event")) {
		t.Errorf("series CSV header: %q", firstLine(series))
	}
	events, err := c.EventsCSV(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) <= len(series) {
		t.Errorf("event stream (%dB) should dominate the sample stream (%dB)", len(events), len(series))
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executed != 1 || m.Submitted != 1 {
		t.Errorf("metrics after one run: %+v", m)
	}
}

func TestSweepJobHappyPath(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := testCtx(t)

	sub, err := c.SubmitSweep(ctx, []byte(quickSweep))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Kind != client.KindSweep || !strings.HasPrefix(sub.JobID, "sw-") {
		t.Errorf("submit response: %+v", sub)
	}
	if st, err := c.Wait(ctx, sub.JobID, 10*time.Millisecond); err != nil || st.State != client.StateDone {
		t.Fatalf("wait: %v %+v", err, st)
	}

	res, err := c.SweepResult(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 1 {
		t.Fatalf("sweep shape: %+v", res)
	}
	// The normalized sweep collects all five metrics.
	if got := len(res.Series[0].Points[0].Values); got != 5 {
		t.Errorf("metrics per point = %d, want 5", got)
	}

	series, err := c.SeriesCSV(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(series, []byte("# metric: delay")) {
		t.Errorf("sweep series CSV starts %q", firstLine(series))
	}

	// Sweep jobs have no event stream.
	if _, err := c.EventsCSV(ctx, sub.JobID); !isStatus(err, http.StatusNotFound) {
		t.Errorf("events on a sweep job: %v, want 404", err)
	}
}

func TestSubmitRejections(t *testing.T) {
	_, c, url := newTestServerURL(t, Options{})
	ctx := testCtx(t)

	// A body that is not JSON at all never reaches spec validation.
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(`{"scenario": {`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}

	cases := []struct {
		name string
		req  client.SubmitRequest
	}{
		{"empty", client.SubmitRequest{}},
		{"both", client.SubmitRequest{Scenario: []byte(quickScenario), Sweep: []byte(quickSweep)}},
		{"scenario is not an object", client.SubmitRequest{Scenario: []byte(`"pure"`)}},
		{"unknown field", client.SubmitRequest{Scenario: []byte(`{"mobility":"cambridge","protocol":"pure","flows":[{"src":0,"dst":7,"count":5}],"bogus":1}`)}},
		{"bad protocol spec", client.SubmitRequest{Scenario: []byte(`{"mobility":"cambridge","protocol":"warp9","flows":[{"src":0,"dst":7,"count":5}]}`)}},
		{"bad mobility spec", client.SubmitRequest{Scenario: []byte(`{"mobility":"teleport","protocol":"pure","flows":[{"src":0,"dst":7,"count":5}]}`)}},
		{"no flows", client.SubmitRequest{Scenario: []byte(`{"mobility":"cambridge","protocol":"pure"}`)}},
		{"sweep without protocols", client.SubmitRequest{Sweep: []byte(`{"scenario":{"mobility":"cambridge"}}`)}},
		{"sweep with horizon", client.SubmitRequest{Sweep: []byte(`{"scenario":{"mobility":"cambridge","horizon":10},"protocols":["pure"]}`)}},
	}
	for _, tc := range cases {
		if _, err := c.Submit(ctx, tc.req); !isStatus(err, http.StatusBadRequest) {
			t.Errorf("%s: %v, want 400", tc.name, err)
		}
	}

	if _, err := c.Status(ctx, "sc-"+strings.Repeat("ab", 32)); !isStatus(err, http.StatusNotFound) {
		t.Errorf("unknown job id: %v, want 404", err)
	}
	if _, err := c.Status(ctx, "not-a-job-id"); !isStatus(err, http.StatusNotFound) {
		t.Errorf("malformed job id: %v, want 404", err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executed != 0 {
		t.Errorf("rejected submissions ran %d simulations", m.Executed)
	}
}

// TestCacheHitByteIdentical is the service's core promise: an
// equivalent resubmission (any spelling) returns byte-identical bodies
// and runs zero additional simulations.
func TestCacheHitByteIdentical(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := testCtx(t)

	id := mustRun(t, ctx, c, client.SubmitRequest{Scenario: []byte(quickScenario)})
	result1, err := c.ResultBytes(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	series1, _ := c.SeriesCSV(ctx, id)
	events1, _ := c.EventsCSV(ctx, id)
	before, _ := c.Metrics(ctx)
	if before.Executed != 1 {
		t.Fatalf("baseline executed = %d", before.Executed)
	}

	sub, err := c.SubmitScenario(ctx, []byte(quickScenarioRespelled))
	if err != nil {
		t.Fatal(err)
	}
	if sub.JobID != id {
		t.Fatalf("respelled spec got job %s, want %s (canonical key must be spelling-invariant)", sub.JobID, id)
	}
	if !sub.Cached || sub.State != client.StateDone {
		t.Errorf("resubmission not served from cache: %+v", sub)
	}
	result2, err := c.ResultBytes(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	series2, _ := c.SeriesCSV(ctx, id)
	events2, _ := c.EventsCSV(ctx, id)
	if !bytes.Equal(result1, result2) || !bytes.Equal(series1, series2) || !bytes.Equal(events1, events2) {
		t.Error("resubmission bodies differ from the originals")
	}

	after, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Executed != before.Executed {
		t.Errorf("resubmission ran the engine: executed %d -> %d", before.Executed, after.Executed)
	}

	// Sweeps: the workers knob and spelling must not split the cache.
	swID := mustRun(t, ctx, c, client.SubmitRequest{Sweep: []byte(quickSweep)})
	swResult1, err := c.ResultBytes(ctx, swID)
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := c.Metrics(ctx)
	sub2, err := c.SubmitSweep(ctx, []byte(quickSweepRespelled))
	if err != nil {
		t.Fatal(err)
	}
	if sub2.JobID != swID || !sub2.Cached {
		t.Errorf("sweep resubmission: %+v, want cached job %s", sub2, swID)
	}
	swResult2, _ := c.ResultBytes(ctx, swID)
	if !bytes.Equal(swResult1, swResult2) {
		t.Error("sweep resubmission bodies differ")
	}
	end, _ := c.Metrics(ctx)
	if end.Executed != mid.Executed {
		t.Errorf("sweep resubmission ran the engine: executed %d -> %d", mid.Executed, end.Executed)
	}
}

// TestCacheSurvivesRestart proves the across-restart half of the cache
// contract: a second daemon instance over the same cache directory
// serves the first instance's bytes without running anything.
func TestCacheSurvivesRestart(t *testing.T) {
	cacheDir := t.TempDir()
	ctx := testCtx(t)

	srv1, err := New(Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL)
	id := mustRun(t, ctx, c1, client.SubmitRequest{Scenario: []byte(quickScenario)})
	result1, err := c1.ResultBytes(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	series1, _ := c1.SeriesCSV(ctx, id)
	events1, _ := c1.EventsCSV(ctx, id)
	ts1.Close()
	srv1.Manager().Close()

	_, c2 := newTestServer(t, Options{CacheDir: cacheDir})

	// The job id alone locates the entry: status works pre-submission.
	st, err := c2.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateDone || !st.Cached {
		t.Errorf("restarted status: %+v", st)
	}

	sub, err := c2.SubmitScenario(ctx, []byte(quickScenarioRespelled))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Cached || sub.JobID != id {
		t.Errorf("restarted resubmission: %+v", sub)
	}
	result2, err := c2.ResultBytes(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	series2, _ := c2.SeriesCSV(ctx, id)
	events2, _ := c2.EventsCSV(ctx, id)
	if !bytes.Equal(result1, result2) || !bytes.Equal(series1, series2) || !bytes.Equal(events1, events2) {
		t.Error("bodies differ across restart")
	}
	m, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executed != 0 {
		t.Errorf("restarted daemon ran %d simulations for a cached spec", m.Executed)
	}
}

// TestCacheIntegrityCheck corrupts a cached artifact on disk and
// verifies it is treated as a miss (re-executed), never served.
func TestCacheIntegrityCheck(t *testing.T) {
	cacheDir := t.TempDir()
	ctx := testCtx(t)

	srv1, err := New(Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	id := mustRun(t, ctx, client.New(ts1.URL), client.SubmitRequest{Scenario: []byte(quickScenario)})
	ts1.Close()
	srv1.Manager().Close()

	matches, err := filepath.Glob(filepath.Join(cacheDir, "scenario", "*", "*", fileSeries))
	if err != nil || len(matches) != 1 {
		t.Fatalf("cache layout: %v %v", matches, err)
	}
	if err := os.WriteFile(matches[0], []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, c2 := newTestServer(t, Options{CacheDir: cacheDir})
	if _, err := c2.Status(ctx, id); !isStatus(err, http.StatusNotFound) {
		t.Errorf("corrupt entry still resolves: %v, want 404", err)
	}
	sub, err := c2.SubmitScenario(ctx, []byte(quickScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Cached {
		t.Error("corrupt entry served as a cache hit")
	}
	if st, err := c2.Wait(ctx, sub.JobID, 10*time.Millisecond); err != nil || st.State != client.StateDone {
		t.Fatalf("re-execution after corruption: %v %+v", err, st)
	}
	m, _ := c2.Metrics(ctx)
	if m.Executed != 1 {
		t.Errorf("executed = %d after corrupted entry, want 1", m.Executed)
	}
}

func TestCancelMidRun(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := testCtx(t)

	sub, err := c.SubmitScenario(ctx, []byte(slowScenario()))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, ctx, c, sub.JobID, client.StateRunning)

	// A result fetch on a running job is a 409, not a partial body.
	if _, err := c.ResultBytes(ctx, sub.JobID); !errors.Is(err, client.ErrJobNotDone) {
		t.Errorf("result while running: %v, want ErrJobNotDone", err)
	}

	if err := c.Cancel(ctx, sub.JobID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.JobID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateCancelled {
		t.Fatalf("cancelled job ended %s: %s", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "cancelled") {
		t.Errorf("cancellation error: %q", st.Error)
	}
	m, _ := c.Metrics(ctx)
	if m.Cancelled != 1 || m.Executed != 0 {
		t.Errorf("metrics after cancel: %+v", m)
	}
}

func TestJobTimeout(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1, JobTimeout: 50 * time.Millisecond})
	ctx := testCtx(t)

	sub, err := c.SubmitScenario(ctx, []byte(slowScenario()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.JobID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateCancelled {
		t.Fatalf("timed-out job ended %s: %s", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("timeout error: %q", st.Error)
	}
}

// TestConcurrentSubmissions races many clients at the same and at
// distinct specs; run under -race. Distinct specs execute exactly
// once each — concurrent duplicates join the live job.
func TestConcurrentSubmissions(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := testCtx(t)

	specs := make([]string, 4)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"mobility":"cambridge","protocol":"pure","flows":[{"src":0,"dst":7,"count":%d}],"seed":42}`, i+1)
	}
	const fanout = 4
	ids := make([]string, len(specs)*fanout)
	var wg sync.WaitGroup
	errCh := make(chan error, len(ids))
	for i, spec := range specs {
		for k := 0; k < fanout; k++ {
			wg.Add(1)
			go func(slot int, spec string) {
				defer wg.Done()
				sub, err := c.SubmitScenario(ctx, []byte(spec))
				if err != nil {
					errCh <- err
					return
				}
				if _, err := c.Wait(ctx, sub.JobID, 10*time.Millisecond); err != nil {
					errCh <- err
					return
				}
				ids[slot] = sub.JobID
			}(i*fanout+k, spec)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want := ids[i*fanout]
		for k := 1; k < fanout; k++ {
			if ids[i*fanout+k] != want {
				t.Errorf("spec %q produced job ids %s and %s", spec, want, ids[i*fanout+k])
			}
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executed != int64(len(specs)) {
		t.Errorf("executed = %d for %d distinct specs (duplicates must join, not re-run)", m.Executed, len(specs))
	}
	if m.Submitted != int64(len(ids)) {
		t.Errorf("submitted = %d, want %d", m.Submitted, len(ids))
	}
}

func TestSpecsHealthMetrics(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := testCtx(t)

	if !c.Healthy(ctx) {
		t.Error("healthz not ok")
	}
	specs, err := c.Specs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !hasSpec(specs.Protocols, "pq") || !hasSpec(specs.Mobility, "cambridge") {
		t.Errorf("spec listing incomplete: %+v", specs)
	}
	if len(specs.DropPolicies) == 0 {
		t.Error("no drop policies listed")
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatal(err)
	}
}

// --- helpers ----------------------------------------------------------------

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return string(b[:i])
	}
	return string(b)
}

func isStatus(err error, code int) bool {
	var se *client.StatusError
	return errors.As(err, &se) && se.Code == code
}

func hasSpec(infos []client.SpecInfo, name string) bool {
	for _, in := range infos {
		if in.Name == name {
			return true
		}
	}
	return false
}

func waitForState(t *testing.T, ctx context.Context, c *client.Client, id, want string) {
	t.Helper()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if st.Terminal() {
			t.Fatalf("job %s reached %s (%s) before %s", id, st.State, st.Error, want)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("timed out waiting for %s: %v", want, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestWireRoundTrip pins the scenario result wire shape: unmarshalling
// the cached body and re-marshalling it canonically is the identity,
// so client-side decoding loses nothing.
func TestWireRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := testCtx(t)
	id := mustRun(t, ctx, c, client.SubmitRequest{Scenario: []byte(quickScenario)})
	raw, err := c.ResultBytes(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var r client.RunResult
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	again, err := marshalCanonical(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again) {
		t.Error("RunResult wire form does not round-trip")
	}
}

// dialServe is a dist.Options.Dial that serves every worker in-process
// over pipes — the seam that lets these tests exercise distributed
// scenario execution without spawning dtnsim-worker binaries.
func dialServe(n int) ([]io.ReadWriteCloser, error) {
	conns := make([]io.ReadWriteCloser, n)
	for i := range conns {
		coordR, workerW := io.Pipe()
		workerR, coordW := io.Pipe()
		go func() {
			if err := dist.Serve(workerR, workerW); err != nil {
				workerW.CloseWithError(err)
				workerR.CloseWithError(err)
				return
			}
			workerW.Close()
		}()
		conns[i] = struct {
			io.Reader
			io.WriteCloser
		}{coordR, coordW}
	}
	return conns, nil
}

// deadConn refuses all traffic, simulating a worker that died before
// its first frame.
type deadConn struct{}

func (deadConn) Read([]byte) (int, error)  { return 0, io.ErrClosedPipe }
func (deadConn) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
func (deadConn) Close() error              { return nil }

func dialDead(n int) ([]io.ReadWriteCloser, error) {
	conns := make([]io.ReadWriteCloser, n)
	for i := range conns {
		conns[i] = deadConn{}
	}
	return conns, nil
}

// TestDistributedScenarioJobByteIdentical runs the same scenario on a
// plain server and on one with distributed execution enabled: the job
// ids (canonical keys) and all three cached artifacts must be
// byte-identical, which is what makes the cache executor-oblivious.
func TestDistributedScenarioJobByteIdentical(t *testing.T) {
	_, plain := newTestServer(t, Options{})
	_, distributed := newTestServer(t, Options{Dist: dist.Options{Workers: 2, Dial: dialServe}})
	ctx := testCtx(t)

	idP := mustRun(t, ctx, plain, client.SubmitRequest{Scenario: []byte(quickScenario)})
	idD := mustRun(t, ctx, distributed, client.SubmitRequest{Scenario: []byte(quickScenario)})
	if idP != idD {
		t.Fatalf("job ids differ: plain %s, distributed %s", idP, idD)
	}
	fetch := []struct {
		name string
		get  func(*client.Client) ([]byte, error)
	}{
		{"result", func(c *client.Client) ([]byte, error) { return c.ResultBytes(ctx, idP) }},
		{"series", func(c *client.Client) ([]byte, error) { return c.SeriesCSV(ctx, idP) }},
		{"events", func(c *client.Client) ([]byte, error) { return c.EventsCSV(ctx, idP) }},
	}
	for _, f := range fetch {
		want, err := f.get(plain)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.get(distributed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s artifact differs between in-process and distributed execution", f.name)
		}
	}
	m, err := distributed.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Executed != 1 {
		t.Errorf("distributed server executed %d jobs, want 1", m.Executed)
	}
}

// TestDistributedScenarioJobWorkerLost pins the failure contract at the
// job layer: a worker connection dying surfaces as dist.ErrWorkerLost
// from the job function, and through the HTTP layer as a failed job
// whose error names the lost worker.
func TestDistributedScenarioJobWorkerLost(t *testing.T) {
	sc, err := dtnsim.ParseScenario([]byte(quickScenario))
	if err != nil {
		t.Fatal(err)
	}
	_, err = runScenarioJob(testCtx(t), sc, dist.Options{Workers: 1, Dial: dialDead})
	if !errors.Is(err, dist.ErrWorkerLost) {
		t.Fatalf("runScenarioJob over a dead worker = %v, want dist.ErrWorkerLost", err)
	}

	_, c := newTestServer(t, Options{Dist: dist.Options{Workers: 1, Dial: dialDead}})
	ctx := testCtx(t)
	sub, err := c.SubmitScenario(ctx, []byte(quickScenario))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.JobID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateFailed || !strings.Contains(st.Error, "worker lost") {
		t.Fatalf("job over a dead worker ended %s (%q), want failed with a worker-lost error", st.State, st.Error)
	}
}
