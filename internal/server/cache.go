// Package server implements the dtnsimd simulation service: a job
// manager that executes scenario and sweep specs on a bounded worker
// pool, a content-addressed result cache keyed by the specs' canonical
// JSON (Scenario.CanonicalKey / SweepSpec.CanonicalKey), and the /v1
// REST API over both. Because every simulation is a deterministic
// function of its normalized spec (seed included), a result computed
// once is valid forever: repeat submissions — any JSON spelling, any
// worker count, before or after a daemon restart — return byte-
// identical bodies without running the engine again.
//
// DESIGN.md §11 documents the architecture; package client holds the
// wire types.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Artifact names within one cache entry. Scenario entries carry all
// three; sweep entries have no event stream.
const (
	fileResult = "result.json"
	fileSeries = "series.csv"
	fileEvents = "events.csv"
	fileMeta   = "meta.json"
)

// cacheMeta is the entry's manifest, written last: its presence marks
// the entry complete, and its digests let reads detect torn or
// corrupted files (which are then treated as misses, never served).
type cacheMeta struct {
	Kind string `json:"kind"`
	Key  string `json:"key"`
	// Spec is the normalized spec JSON the key hashes.
	Spec json.RawMessage `json:"spec"`
	// Files maps artifact name to hex SHA-256 of its bytes.
	Files map[string]string `json:"files"`
}

// cache is a content-addressed result store on disk. Entries live at
// root/<kind>/<key[:2]>/<key>/ — derivable from a job id alone, which
// is what lets results survive daemon restarts. Writes are atomic
// (staging directory + rename), so a crash mid-write leaves either no
// entry or a complete one; concurrent writers of the same key are
// harmless because both write identical bytes and the loser discards.
type cache struct {
	root string
}

func newCache(root string) (*cache, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("server: cache root: %w", err)
	}
	return &cache{root: root}, nil
}

// dir is the entry directory for (kind, key). The two-hex-digit shard
// level keeps any one directory from accumulating every entry.
func (c *cache) dir(kind, key string) string {
	return filepath.Join(c.root, kind, key[:2], key)
}

func sha256hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// get loads and verifies an entry's manifest. A missing entry returns
// (nil, nil); a present but incomplete or corrupt entry is also a miss
// (the next put simply rewrites it).
func (c *cache) get(kind, key string) (*cacheMeta, error) {
	raw, err := os.ReadFile(filepath.Join(c.dir(kind, key), fileMeta))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: cache meta: %w", err)
	}
	var meta cacheMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, nil // corrupt manifest: miss
	}
	if meta.Kind != kind || meta.Key != key || len(meta.Files) == 0 {
		return nil, nil
	}
	for name, want := range meta.Files {
		data, err := os.ReadFile(filepath.Join(c.dir(kind, key), name))
		if err != nil || sha256hex(data) != want {
			return nil, nil // torn or corrupted artifact: miss
		}
	}
	return &meta, nil
}

// read returns one artifact's bytes, verifying its digest against the
// manifest so a corrupted file can never be served as a result.
func (c *cache) read(kind, key, name string) ([]byte, error) {
	meta, err := c.get(kind, key)
	if err != nil {
		return nil, err
	}
	if meta == nil {
		return nil, fmt.Errorf("server: cache entry %s/%s missing", kind, key)
	}
	want, ok := meta.Files[name]
	if !ok {
		return nil, fmt.Errorf("server: entry %s/%s has no %s", kind, key, name)
	}
	data, err := os.ReadFile(filepath.Join(c.dir(kind, key), name))
	if err != nil {
		return nil, fmt.Errorf("server: cache read: %w", err)
	}
	if sha256hex(data) != want {
		return nil, fmt.Errorf("server: cache entry %s/%s: %s fails integrity check", kind, key, name)
	}
	return data, nil
}

// put writes a complete entry atomically: all artifacts plus the
// manifest go into a staging directory, which is renamed into place in
// one step. If another writer won the race the staging copy is
// discarded — the bytes are identical by construction.
func (c *cache) put(kind, key string, spec []byte, files map[string][]byte) error {
	dst := c.dir(kind, key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("server: cache shard: %w", err)
	}
	staging, err := os.MkdirTemp(filepath.Dir(dst), "."+key[:8]+".staging-")
	if err != nil {
		return fmt.Errorf("server: cache staging: %w", err)
	}
	defer os.RemoveAll(staging)

	meta := cacheMeta{Kind: kind, Key: key, Spec: spec, Files: map[string]string{}}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(staging, name), files[name], 0o644); err != nil {
			return fmt.Errorf("server: cache write: %w", err)
		}
		meta.Files[name] = sha256hex(files[name])
	}
	manifest, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("server: cache manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(staging, fileMeta), manifest, 0o644); err != nil {
		return fmt.Errorf("server: cache write: %w", err)
	}
	if err := os.Rename(staging, dst); err != nil {
		if _, statErr := os.Stat(filepath.Join(dst, fileMeta)); statErr == nil {
			return nil // lost the race to an identical entry
		}
		return fmt.Errorf("server: cache commit: %w", err)
	}
	return nil
}
