package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"dtnsim"
	"dtnsim/client"
)

// maxSpecBytes bounds a submission body; spec documents are small, so
// the limit only guards against accidental uploads.
const maxSpecBytes = 1 << 20

// Server is the dtnsimd HTTP front end over a Manager.
type Server struct {
	jobs *Manager
	mux  *http.ServeMux
}

// New builds the service: manager, cache, and routes.
func New(opts Options) (*Server, error) {
	m, err := NewManager(opts)
	if err != nil {
		return nil, err
	}
	s := &Server{jobs: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.artifactHandler(fileResult, "application/json"))
	s.mux.HandleFunc("GET /v1/jobs/{id}/series", s.artifactHandler(fileSeries, "text/csv; charset=utf-8"))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.artifactHandler(fileEvents, "text/csv; charset=utf-8"))
	s.mux.HandleFunc("GET /v1/specs", s.handleSpecs)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the job manager (drain on shutdown, metrics).
func (s *Server) Manager() *Manager { return s.jobs }

// writeJSON renders a 2xx JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps a manager/spec error to its status code.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, dtnsim.ErrScenario), errors.Is(err, errBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, errNotFound):
		code = http.StatusNotFound
	case errors.Is(err, errNotDone):
		code = http.StatusConflict
	}
	writeJSON(w, code, client.ErrorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, err)
		return
	}
	var req client.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, errors.Join(errBadRequest, err))
		return
	}
	job, err := s.jobs.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	state, _ := job.State()
	writeJSON(w, http.StatusAccepted, client.SubmitResponse{
		JobID: job.ID,
		Kind:  job.Kind,
		Key:   job.Key,
		// Done at submission means this submission started no work —
		// whether the bytes came from disk or from a finished in-memory
		// job, the caller is getting a cached result.
		Cached: job.Cached || state == client.StateDone,
		State:  state,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.jobs.Cancel(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// artifactHandler serves one cached artifact verbatim: the bytes the
// worker wrote are the bytes every client gets, which is what makes
// repeat fetches byte-identical.
func (s *Server) artifactHandler(name, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		data, err := s.jobs.Artifact(r.PathValue("id"), name)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", contentType)
		_, _ = w.Write(data)
	}
}

func (s *Server) handleSpecs(w http.ResponseWriter, _ *http.Request) {
	out := client.Specs{DropPolicies: dtnsim.DropPolicies()}
	for _, p := range dtnsim.ProtocolSpecs() {
		out.Protocols = append(out.Protocols, client.SpecInfo{Name: p.Name, Usage: p.Usage})
	}
	for _, m := range dtnsim.MobilitySpecs() {
		out.Mobility = append(out.Mobility, client.SpecInfo{Name: m.Name, Usage: m.Usage})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.Metrics())
}
