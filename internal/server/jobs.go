package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dtnsim"
	"dtnsim/client"
	"dtnsim/internal/core"
	"dtnsim/internal/dist"
	"dtnsim/internal/report"
)

// Typed errors the HTTP layer maps to status codes.
var (
	// errBadRequest wraps submission-shape problems (no spec, both
	// specs); spec-content problems already wrap dtnsim.ErrScenario.
	errBadRequest = errors.New("server: bad request")
	// errNotFound wraps lookups of ids with no job and no cache entry.
	errNotFound = errors.New("server: job not found")
	// errNotDone wraps artifact fetches on jobs not (yet) done.
	errNotDone = errors.New("server: job not done")
)

// Job is one submitted computation. Its id is deterministic —
// "sc-<key>" or "sw-<key>" with key the spec's canonical content key —
// so equal specs share a job and, once computed, a cache entry.
type Job struct {
	ID   string
	Kind string
	Key  string
	// Cached marks a job satisfied from the result cache at submit.
	Cached bool

	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	state  string
	errMsg string
}

// State returns the job's current state and error message.
func (j *Job) State() (string, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *Job) finish(state, msg string) {
	j.mu.Lock()
	j.state, j.errMsg = state, msg
	j.mu.Unlock()
	close(j.done)
}

// status renders the job as its wire form.
func (j *Job) status() client.JobStatus {
	state, msg := j.State()
	return client.JobStatus{
		JobID: j.ID, Kind: j.Kind, Key: j.Key,
		State: state, Error: msg, Cached: j.Cached,
	}
}

// Options configures a Manager.
type Options struct {
	// CacheDir is the result-cache root. Required.
	CacheDir string
	// Workers bounds concurrently executing jobs (not goroutines inside
	// a sweep — SweepSpec.Workers governs those). 0 means GOMAXPROCS.
	Workers int
	// JobTimeout caps each job's wall time from submission; 0 means no
	// limit. The deadline is threaded into the engine's event loop via
	// core.Config.Context, so even a single long run aborts promptly.
	JobTimeout time.Duration
	// Dist, when Dist.Workers > 0 or Dist.Hosts is set, executes each
	// scenario job's epochs on dtnsim-worker processes — spawned per
	// job and reaped with it, or dialed over TCP at Dist.Hosts;
	// Dist.Protocol is filled in from the job's scenario. Results stay
	// byte-identical to in-process execution, so the cache needs no
	// notion of how an entry was computed. Sweep jobs ignore it — their
	// parallelism is across runs, governed by SweepSpec.Workers.
	Dist dist.Options
}

// Manager owns the worker pool, the job table and the result cache.
type Manager struct {
	cache   *cache
	sem     chan struct{}
	timeout time.Duration
	dist    dist.Options
	ctx     context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*Job

	submitted atomic.Int64
	cacheHits atomic.Int64
	executed  atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
}

// NewManager opens (or creates) the cache directory and starts an
// empty manager.
func NewManager(opts Options) (*Manager, error) {
	c, err := newCache(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cache:   c,
		sem:     make(chan struct{}, workers),
		timeout: opts.JobTimeout,
		dist:    opts.Dist,
		ctx:     ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
	}, nil
}

// keyPattern is the canonical content key: 64 lowercase hex digits.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// splitJobID resolves "sc-<key>"/"sw-<key>" to (kind, key).
func splitJobID(id string) (kind, key string, err error) {
	prefix, key, ok := strings.Cut(id, "-")
	if ok && keyPattern.MatchString(key) {
		switch prefix {
		case "sc":
			return client.KindScenario, key, nil
		case "sw":
			return client.KindSweep, key, nil
		}
	}
	return "", "", fmt.Errorf("%w: malformed job id %q", errNotFound, id)
}

func jobID(kind, key string) string {
	if kind == client.KindScenario {
		return "sc-" + key
	}
	return "sw-" + key
}

// Submit validates a spec, computes its canonical key and either joins
// the existing job, answers from the cache, or queues an execution.
func (m *Manager) Submit(req client.SubmitRequest) (*Job, error) {
	m.submitted.Add(1)
	switch {
	case len(req.Scenario) != 0 && len(req.Sweep) != 0:
		return nil, fmt.Errorf("%w: set exactly one of scenario and sweep, not both", errBadRequest)
	case len(req.Scenario) != 0:
		sc, err := dtnsim.ParseScenario(req.Scenario)
		if err != nil {
			return nil, err
		}
		key, err := sc.CanonicalKey()
		if err != nil {
			return nil, err
		}
		norm, err := sc.Normalize()
		if err != nil {
			return nil, err
		}
		spec, err := norm.JSON()
		if err != nil {
			return nil, err
		}
		return m.enqueue(client.KindScenario, key, spec, func(ctx context.Context) (map[string][]byte, error) {
			return runScenarioJob(ctx, sc, m.dist)
		})
	case len(req.Sweep) != 0:
		spec, err := dtnsim.ParseSweepSpec(req.Sweep)
		if err != nil {
			return nil, err
		}
		norm, err := spec.Normalize()
		if err != nil {
			return nil, err
		}
		key, err := norm.CanonicalKey()
		if err != nil {
			return nil, err
		}
		normJSON, err := norm.JSON()
		if err != nil {
			return nil, err
		}
		return m.enqueue(client.KindSweep, key, normJSON, func(ctx context.Context) (map[string][]byte, error) {
			return runSweepJob(ctx, spec, norm.Metrics)
		})
	default:
		return nil, fmt.Errorf("%w: submit a scenario or a sweep spec", errBadRequest)
	}
}

// enqueue is the post-validation half of Submit: dedupe against live
// jobs, probe the cache, or start a worker.
func (m *Manager) enqueue(kind, key string, spec []byte, exec func(context.Context) (map[string][]byte, error)) (*Job, error) {
	id := jobID(kind, key)
	if j := m.liveJob(id); j != nil {
		return j, nil
	}
	// Disk probe outside the lock; reads of a committed entry are safe
	// against concurrent writers (rename is atomic).
	if meta, err := m.cache.get(kind, key); err != nil {
		return nil, err
	} else if meta != nil {
		m.cacheHits.Add(1)
		j := &Job{ID: id, Kind: kind, Key: key, Cached: true, state: client.StateDone, done: make(chan struct{})}
		close(j.done)
		m.mu.Lock()
		// A live job (possibly just created by a concurrent submit)
		// keeps precedence over our synthesized cached one.
		if cur, ok := m.jobs[id]; ok && !isTerminalFailure(cur) {
			m.mu.Unlock()
			return cur, nil
		}
		m.jobs[id] = j
		m.mu.Unlock()
		return j, nil
	}

	var ctx context.Context
	var cancel context.CancelFunc
	if m.timeout > 0 {
		// The per-job clock starts at submission: a job that queues past
		// its deadline is cancelled when a worker finally picks it up.
		ctx, cancel = context.WithTimeout(m.ctx, m.timeout)
	} else {
		ctx, cancel = context.WithCancel(m.ctx)
	}
	j := &Job{ID: id, Kind: kind, Key: key, cancel: cancel, state: client.StatePending, done: make(chan struct{})}
	m.mu.Lock()
	if cur, ok := m.jobs[id]; ok && !isTerminalFailure(cur) {
		m.mu.Unlock()
		cancel()
		return cur, nil
	}
	m.jobs[id] = j
	m.mu.Unlock()
	m.wg.Add(1)
	go m.run(j, ctx, spec, exec)
	return j, nil
}

// liveJob returns the current job for id unless it failed or was
// cancelled — those may be resubmitted.
func (m *Manager) liveJob(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok && !isTerminalFailure(j) {
		return j
	}
	return nil
}

func isTerminalFailure(j *Job) bool {
	state, _ := j.State()
	return state == client.StateFailed || state == client.StateCancelled
}

// run executes one job on the worker pool.
func (m *Manager) run(j *Job, ctx context.Context, spec []byte, exec func(context.Context) (map[string][]byte, error)) {
	defer m.wg.Done()
	defer j.cancel()
	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-ctx.Done():
		m.cancelled.Add(1)
		j.finish(client.StateCancelled, ctx.Err().Error())
		return
	}
	j.setState(client.StateRunning)
	files, err := exec(ctx)
	if err != nil {
		if errors.Is(err, core.ErrCancelled) || ctx.Err() != nil {
			m.cancelled.Add(1)
			j.finish(client.StateCancelled, err.Error())
		} else {
			m.failed.Add(1)
			j.finish(client.StateFailed, err.Error())
		}
		return
	}
	if err := m.cache.put(j.Kind, j.Key, spec, files); err != nil {
		m.failed.Add(1)
		j.finish(client.StateFailed, err.Error())
		return
	}
	m.executed.Add(1)
	j.finish(client.StateDone, "")
}

// runScenarioJob executes one scenario and renders all three cached
// artifacts. The event and series CSVs stream from the same run the
// result came from, so the three artifacts are mutually consistent.
// With dopt.Workers > 0 or dopt.Hosts set the run's epochs execute on
// worker processes — spawned and owned by this job, or dialed over
// TCP — and torn down with it; since distributed results are
// byte-identical, the artifacts (and thus the cache) are the same
// either way.
func runScenarioJob(ctx context.Context, sc dtnsim.Scenario, dopt dist.Options) (map[string][]byte, error) {
	cfg, err := sc.Compile()
	if err != nil {
		return nil, err
	}
	cfg.Context = ctx
	if dopt.Workers > 0 || len(dopt.Hosts) > 0 {
		dopt.Protocol = string(sc.Protocol)
		be, err := dist.New(dopt)
		if err != nil {
			return nil, err
		}
		defer be.Close()
		cfg.Backend = be
	}
	var seriesBuf, eventsBuf bytes.Buffer
	series := report.NewStream(&seriesBuf, false)
	events := report.NewStream(&eventsBuf, true)
	cfg.Observers = append(cfg.Observers, series, events)
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	if err := series.Err(); err != nil {
		return nil, err
	}
	if err := events.Err(); err != nil {
		return nil, err
	}
	result, err := encodeRunResult(res)
	if err != nil {
		return nil, err
	}
	return map[string][]byte{
		fileResult: result,
		fileSeries: seriesBuf.Bytes(),
		fileEvents: eventsBuf.Bytes(),
	}, nil
}

// runSweepJob executes one sweep. metrics is the normalized metric
// list, so the series CSV always covers exactly what the sweep
// measured, in canonical order.
func runSweepJob(ctx context.Context, spec dtnsim.SweepSpec, metrics []dtnsim.Metric) (map[string][]byte, error) {
	sw, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	sw.Context = ctx
	res, err := dtnsim.RunSweep(sw)
	if err != nil {
		return nil, err
	}
	result, err := encodeSweepResult(res)
	if err != nil {
		return nil, err
	}
	return map[string][]byte{
		fileResult: result,
		fileSeries: encodeSweepSeries(res, metrics),
	}, nil
}

// Lookup resolves a job id to its status: live jobs first, then the
// cache — which is how finished jobs survive a daemon restart.
func (m *Manager) Lookup(id string) (client.JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok {
		return j.status(), nil
	}
	kind, key, err := splitJobID(id)
	if err != nil {
		return client.JobStatus{}, err
	}
	meta, err := m.cache.get(kind, key)
	if err != nil {
		return client.JobStatus{}, err
	}
	if meta == nil {
		return client.JobStatus{}, fmt.Errorf("%w: %s", errNotFound, id)
	}
	return client.JobStatus{JobID: id, Kind: kind, Key: key, State: client.StateDone, Cached: true}, nil
}

// Artifact returns one of a done job's cached files.
func (m *Manager) Artifact(id, name string) ([]byte, error) {
	st, err := m.Lookup(id)
	if err != nil {
		return nil, err
	}
	switch st.State {
	case client.StateDone:
	case client.StateFailed, client.StateCancelled:
		return nil, fmt.Errorf("%w: job %s %s: %s", errNotDone, id, st.State, st.Error)
	default:
		return nil, fmt.Errorf("%w: job %s is %s", errNotDone, id, st.State)
	}
	if st.Kind == client.KindSweep && name == fileEvents {
		return nil, fmt.Errorf("%w: sweep jobs have no event stream", errNotFound)
	}
	return m.cache.read(st.Kind, st.Key, name)
}

// Cancel aborts a live job; terminal and cache-only jobs are a no-op.
func (m *Manager) Cancel(id string) error {
	if _, _, err := splitJobID(id); err != nil {
		return err
	}
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok && j.cancel != nil {
		j.cancel()
	}
	return nil
}

// Metrics snapshots the counters.
func (m *Manager) Metrics() client.Metrics {
	var pending, running int64
	m.mu.Lock()
	for _, j := range m.jobs {
		switch state, _ := j.State(); state {
		case client.StatePending:
			pending++
		case client.StateRunning:
			running++
		}
	}
	m.mu.Unlock()
	return client.Metrics{
		Submitted: m.submitted.Load(),
		CacheHits: m.cacheHits.Load(),
		Executed:  m.executed.Load(),
		Failed:    m.failed.Load(),
		Cancelled: m.cancelled.Load(),
		Pending:   pending,
		Running:   running,
	}
}

// Drain waits for in-flight jobs; when ctx expires first, remaining
// jobs are cancelled (their engine loops abort at the next interrupt
// poll) and Drain still waits for them to unwind.
func (m *Manager) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.stop()
		<-done
		return ctx.Err()
	}
}

// Close aborts every job and waits; for tests and final shutdown.
func (m *Manager) Close() {
	m.stop()
	m.wg.Wait()
}
