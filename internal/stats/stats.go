// Package stats provides the small statistical toolkit the simulator and
// experiment harness need: streaming accumulators, summary statistics
// and series averaging across runs. Everything is deterministic and
// allocation-light.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm), numerically stable for long sample streams.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Std        float64
	P25, Median, P75 float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var w Welford
	for _, x := range sorted {
		w.Add(x)
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   w.Mean(),
		Std:    w.Std(),
		P25:    Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		P75:    Quantile(sorted, 0.75),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation. It panics on unsorted input being
// undetected; callers must sort first.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanSeries averages several equal-length series point-wise: the
// cross-run averaging step of the experiment harness. It returns an
// error if the series lengths differ.
func MeanSeries(series [][]float64) ([]float64, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("stats: no series to average")
	}
	n := len(series[0])
	for i, s := range series {
		if len(s) != n {
			return nil, fmt.Errorf("stats: series %d has length %d, want %d", i, len(s), n)
		}
	}
	out := make([]float64, n)
	for _, s := range series {
		for i, v := range s {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(series))
	}
	return out, nil
}
