package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if !almost(w.Mean(), 5) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Direct unbiased variance: sum((x-5)^2)/7 = 32/7.
	if !almost(w.Var(), 32.0/7.0) {
		t.Errorf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Error("empty accumulator not zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 {
		t.Error("single observation stats wrong")
	}
}

// Property: Welford matches the two-pass computation on random samples.
func TestWelfordProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		n := r.IntN(200) + 2
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.Float64()*1000 - 500
			w.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		direct := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-direct) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile not 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if s.N != 3 || s.Min != 1 || s.Max != 5 || !almost(s.Mean, 3) || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if (Summarize(nil) != Summary{}) {
		t.Error("empty summary not zero")
	}
}

func TestMeanSeries(t *testing.T) {
	out, err := MeanSeries([][]float64{{1, 2, 3}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if !almost(out[i], want[i]) {
			t.Fatalf("MeanSeries = %v", out)
		}
	}
	if _, err := MeanSeries([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MeanSeries(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}
