package protocol

import (
	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// Pure is Vahdat & Becker's epidemic routing: on every encounter, nodes
// exchange summary vectors and transmit every bundle the peer is missing.
// There is no discard policy — a full relay simply refuses new bundles —
// so buffer occupancy only ever grows (§II-A).
type Pure struct{}

// NewPure returns the pure epidemic protocol.
func NewPure() *Pure { return &Pure{} }

// Name implements Protocol.
func (*Pure) Name() string { return "Pure epidemic" }

// Init implements Protocol; pure epidemic keeps no per-node state beyond
// the store itself.
func (*Pure) Init(*node.Node) {}

// OnGenerate implements Protocol: no TTL, no EC.
func (*Pure) OnGenerate(_ *node.Node, cp *bundle.Copy, _ sim.Time) {
	cp.Expiry = sim.Infinity
}

// Exchange implements Protocol: the summary-vector session carries no
// extra control records.
func (*Pure) Exchange(_, _ *node.Node, _ sim.Time, _ int) {}

// Wants implements Protocol: everything the receiver is missing.
func (*Pure) Wants(sender, receiver *node.Node, _ sim.Time, rng *sim.RNG) []bundle.ID {
	return missing(sender, receiver, rng)
}

// OnTransmit implements Protocol: copies carry no mutable state.
func (*Pure) OnTransmit(_, _ *node.Node, _, _ *bundle.Copy, _ sim.Time) {}

// Admit implements Protocol: drop-tail — refuse when full.
func (*Pure) Admit(receiver *node.Node, incoming *bundle.Copy, now sim.Time) bool {
	if receiver.Store.Free() <= 0 {
		receiver.NoteRefused(incoming.Bundle.ID, now)
		return false
	}
	return true
}

// OnDelivered implements Protocol: pure epidemic has no feedback channel.
func (*Pure) OnDelivered(_, _ *node.Node, _ bundle.ID, _ sim.Time) {}
