package protocol

import (
	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// DynamicTTL is the paper's first enhancement (§III, Algorithm 1): the
// TTL of a stored copy is set to Multiplier × the storing node's interval
// between its last two encounters. Sparse neighbourhoods (long
// inter-contact gaps) thus buffer bundles longer, dense ones recycle
// buffer space faster. A node with no interval history yet stores the
// copy without a deadline.
type DynamicTTL struct {
	// Multiplier scales the last inter-encounter interval; the paper
	// uses 2.0 ("a bundle's TTL value is set to double the interval
	// time between the last two encounters").
	Multiplier float64
}

// NewDynamicTTL returns the enhancement with the paper's 2× multiplier.
func NewDynamicTTL() *DynamicTTL { return &DynamicTTL{Multiplier: 2.0} }

// Name implements Protocol.
func (*DynamicTTL) Name() string { return "Epidemic with dynamic TTL" }

// Init implements Protocol.
func (*DynamicTTL) Init(*node.Node) {}

// OnGenerate implements Protocol: source copies are pinned; no deadline.
func (*DynamicTTL) OnGenerate(_ *node.Node, cp *bundle.Copy, _ sim.Time) {
	cp.Expiry = sim.Infinity
}

// Exchange implements Protocol.
func (*DynamicTTL) Exchange(_, _ *node.Node, _ sim.Time, _ int) {}

// Wants implements Protocol.
func (*DynamicTTL) Wants(sender, receiver *node.Node, _ sim.Time, rng *sim.RNG) []bundle.ID {
	return missing(sender, receiver, rng)
}

// expiry computes Algorithm 1's deadline for a copy stored at n at time
// now.
func (d *DynamicTTL) expiry(n *node.Node, now sim.Time) sim.Time {
	if n.LastInterval <= 0 {
		return sim.Infinity // no history yet: hold until the network teaches us
	}
	return now + sim.Time(d.Multiplier*n.LastInterval)
}

// OnTransmit implements Protocol: the receiver's deadline reflects the
// receiver's encounter rhythm; the sender's copy is renewed with the
// sender's, mirroring constant TTL's renewal rule. A shrinking
// encounter interval can lower the sender's deadline in place, so the
// store's min-expiry bound is notified.
func (d *DynamicTTL) OnTransmit(sender, receiver *node.Node, sent, rcpt *bundle.Copy, now sim.Time) {
	rcpt.Expiry = d.expiry(receiver, now)
	if !sent.Pinned {
		sent.Expiry = d.expiry(sender, now)
		sender.Store.NoteExpiry(sent)
	}
}

// Admit implements Protocol: drop-tail.
func (*DynamicTTL) Admit(receiver *node.Node, incoming *bundle.Copy, now sim.Time) bool {
	if receiver.Store.Free() <= 0 {
		receiver.NoteRefused(incoming.Bundle.ID, now)
		return false
	}
	return true
}

// OnDelivered implements Protocol.
func (*DynamicTTL) OnDelivered(_, _ *node.Node, _ bundle.ID, _ sim.Time) {}
