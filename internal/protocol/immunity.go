package protocol

import (
	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// Immunity is epidemic routing with per-bundle immunity tables (Mundur
// et al.): the destination emits one immunity record ("anti-packet") per
// bundle it receives; records spread epidemically on encounters; a node
// holding a record purges the corresponding bundle and never re-accepts
// it — the "infection and vaccination" analogy of §II-B.
//
// Two costs, both from the paper, are modelled explicitly:
//
//   - Dissemination is metered: an encounter can carry only as many
//     records as its duration allows (the engine's record budget), so
//     with one record per delivered bundle the tables "are propagated
//     slowly" and overhead grows with load.
//   - Stored records consume buffer space (RecordSlotFraction of a slot
//     each): "nodes' buffer occupancy is dependent on immunity tables
//     stored in each node".
type Immunity struct {
	// RecordSlotFraction is the buffer cost of one stored immunity
	// record, in bundle slots. The default of five records per bundle
	// slot is calibrated to the paper's observed table cost: its
	// immunity occupancy sits at 58-72% (Table II), only possible if
	// stored tables consume a substantial share of the buffer ("nodes'
	// buffer occupancy is dependent on immunity tables stored in each
	// node").
	RecordSlotFraction float64
}

// NewImmunity returns epidemic-with-immunity with default record sizing.
func NewImmunity() *Immunity { return &Immunity{RecordSlotFraction: 0.2} }

// immunityState is the per-node i-list.
type immunityState struct {
	ilist *bundle.SummaryVector
}

// Name implements Protocol.
func (*Immunity) Name() string { return "Epidemic with immunity" }

// Init implements Protocol.
func (*Immunity) Init(n *node.Node) {
	n.Ext = &immunityState{ilist: bundle.NewSummaryVector()}
}

func ilistOf(n *node.Node) *bundle.SummaryVector {
	return n.Ext.(*immunityState).ilist
}

// OnGenerate implements Protocol.
func (*Immunity) OnGenerate(_ *node.Node, cp *bundle.Copy, _ sim.Time) {
	cp.Expiry = sim.Infinity
}

// refreshControlLoad re-prices the node's stored records.
func (im *Immunity) refreshControlLoad(n *node.Node) {
	n.Store.SetControlLoad(float64(ilistOf(n).Len()) * im.RecordSlotFraction)
}

// purgeDead drops every buffered copy the node's i-list marks delivered
// ("check each other's buffer and delete redundant bundles according to
// this i-list").
func purgeDead(n *node.Node, now sim.Time) {
	il := ilistOf(n)
	for _, cp := range n.Store.PurgeMatching(func(cp *bundle.Copy) bool { return il.Has(cp.Bundle.ID) }) {
		n.NotePurged(cp.Bundle.ID, now)
	}
}

// Exchange implements Protocol: per Mundur et al., the peers "combine
// their immunity tables into one i-list" — each side transmits its whole
// list blind (there is no delta protocol; a node cannot know what the
// peer lacks without sending the list), truncated at the contact's
// record budget. Then both purge dead bundles.
func (im *Immunity) Exchange(a, b *node.Node, now sim.Time, recordBudget int) {
	im.transferRecords(a, b, recordBudget)
	im.transferRecords(b, a, recordBudget)
	purgeDead(a, now)
	purgeDead(b, now)
	im.refreshControlLoad(a)
	im.refreshControlLoad(b)
}

// transferRecords transmits from's i-list to the peer in deterministic
// ID order, up to budget records, counting every transmitted record as
// signaling overhead. Because the list is resent on every encounter,
// overhead grows with the number of delivered bundles — the §II-C
// complaint that "the number of immunity tables transmitted is
// proportional to the load" — and short contacts truncate the transfer,
// so tables "are propagated slowly".
func (im *Immunity) transferRecords(from, to *node.Node, budget int) {
	fromList, toList := ilistOf(from), ilistOf(to)
	sent := 0
	fromList.Range(func(id bundle.ID) bool {
		if sent >= budget {
			return false
		}
		sent++
		toList.Add(id)
		return true
	})
	from.ControlSent += int64(sent)
}

// Wants implements Protocol: skip bundles either side knows are dead.
func (*Immunity) Wants(sender, receiver *node.Node, _ sim.Time, rng *sim.RNG) []bundle.ID {
	rl := ilistOf(receiver)
	candidates := missing(sender, receiver, rng)
	out := candidates[:0]
	for _, id := range candidates {
		if rl.Has(id) {
			continue
		}
		out = append(out, id)
	}
	return out
}

// OnTransmit implements Protocol.
func (*Immunity) OnTransmit(_, _ *node.Node, _, _ *bundle.Copy, _ sim.Time) {}

// Admit implements Protocol: immunity relies on purging, not eviction —
// a full relay refuses.
func (*Immunity) Admit(receiver *node.Node, incoming *bundle.Copy, now sim.Time) bool {
	if receiver.Store.Free() <= 0 {
		receiver.NoteRefused(incoming.Bundle.ID, now)
		return false
	}
	return true
}

// OnDelivered implements Protocol: the destination generates the record;
// the sender observes the delivery on-link, adopts the record, and drops
// its now-redundant copy.
func (im *Immunity) OnDelivered(dst, sender *node.Node, id bundle.ID, now sim.Time) {
	ilistOf(dst).Add(id)
	if ilistOf(sender).Add(id) {
		if sender.Store.Remove(id) {
			sender.NotePurged(id, now)
		}
	}
	im.refreshControlLoad(dst)
	im.refreshControlLoad(sender)
}
