package protocol

import (
	"errors"
	"strings"
	"testing"
)

// TestBuiltinSpecsRoundTrip: parse → Spec → parse must be a fixed
// point for every built-in spec and for spelled-out variants.
func TestBuiltinSpecsRoundTrip(t *testing.T) {
	specs := append(BuiltinSpecs(),
		"pq", "pq:p=0.8,q=0.5", "pq:q=0.5,p=0.8", "pq:p=1,q=1,anti",
		"ttl", "ttl:50", "dynttl:mult=4", "ecttl:thresh=4", "ecttl:minec=5,thresh=12",
	)
	for _, s := range specs {
		f, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		again, err := Parse(f.Spec)
		if err != nil {
			t.Fatalf("Parse(canonical %q of %q): %v", f.Spec, s, err)
		}
		if again.Spec != f.Spec {
			t.Errorf("%q: canonical %q re-parses to %q", s, f.Spec, again.Spec)
		}
		if again.Label != f.Label {
			t.Errorf("%q: label %q re-parses to %q", s, f.Label, again.Label)
		}
		if f.New() == nil || f.New().Name() == "" {
			t.Errorf("%q: factory builds an unusable protocol", s)
		}
	}
}

// TestParseMatchesConstructors: registry-built instances must equal the
// Go-constructor ones where the paper pins parameters.
func TestParseMatchesConstructors(t *testing.T) {
	cases := []struct {
		spec string
		want string // protocol display name
	}{
		{"pure", NewPure().Name()},
		{"pq:p=1,q=1", NewPQ(1, 1).Name()},
		{"pq:p=0.5,q=0.25", NewPQ(0.5, 0.25).Name()},
		{"ttl:300", NewTTL(300).Name()},
		{"ec", NewEC().Name()},
		{"immunity", NewImmunity().Name()},
		{"dynttl", NewDynamicTTL().Name()},
		{"ecttl", NewECTTL().Name()},
		{"cumimmunity", NewCumulativeImmunity().Name()},
	}
	for _, c := range cases {
		f, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got := f.New().Name(); got != c.want {
			t.Errorf("Parse(%q).New().Name() = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestParseErrorsWrapErrSpec(t *testing.T) {
	bad := []string{
		"",                  // empty
		"bogus",             // unknown name
		"pq:p=2",            // out of range (would panic in NewPQ)
		"pq:p=-0.1",         // out of range
		"pq:p=nan",          // non-finite
		"pq:p=inf,q=1",      // non-finite
		"pq:zap=1",          // unknown argument
		"pq:p=1,p=1",        // duplicate argument
		"ttl:0",             // non-positive (would panic in NewTTL)
		"ttl:-3",            // negative
		"ttl:nan",           // non-finite
		"ttl:many",          // not a number
		"pure:x=1",          // arguments on an argument-free protocol
		"dynttl:mult=0",     // non-positive multiplier
		"dynttl:mult=",      // empty value
		"ecttl:thresh=-1",   // negative threshold
		"ecttl:thresh=1.5",  // non-integer
		"pq:,",              // empty argument fields
		"cumimmunity:extra", // args on arg-free protocol
	}
	for _, s := range bad {
		if _, err := Parse(s); !errors.Is(err, ErrSpec) {
			t.Errorf("Parse(%q): err = %v, want ErrSpec", s, err)
		}
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	r.Register("x", "", func(string) (Factory, error) { return Factory{}, nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	r.Register("x", "", func(string) (Factory, error) { return Factory{}, nil })
}

func TestSpecsListsEveryBuiltin(t *testing.T) {
	names := map[string]bool{}
	for _, in := range Default.Specs() {
		names[in.Name] = true
		if in.Usage == "" {
			t.Errorf("%s: empty usage", in.Name)
		}
	}
	for _, s := range BuiltinSpecs() {
		name := s
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[:i]
		}
		if !names[name] {
			t.Errorf("builtin spec %q has no registry entry", s)
		}
	}
}

// FuzzParse: Parse must never panic, and every accepted spec must
// canonicalize to a fixed point.
func FuzzParse(f *testing.F) {
	for _, s := range BuiltinSpecs() {
		f.Add(s)
	}
	f.Add("pq:p=0.8,q=0.5")
	f.Add("ttl:1e6")
	f.Add("pq:p=nan,q=inf")
	f.Add("::::")
	f.Add("pq:p==1")
	f.Add("ecttl:thresh=99999999999999999999")
	f.Fuzz(func(t *testing.T, s string) {
		fac, err := Parse(s)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("Parse(%q): non-ErrSpec error %v", s, err)
			}
			return
		}
		again, err := Parse(fac.Spec)
		if err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", fac.Spec, s, err)
		}
		if again.Spec != fac.Spec {
			t.Fatalf("canonical of %q is not a fixed point: %q → %q", s, fac.Spec, again.Spec)
		}
		if fac.New() == nil {
			t.Fatalf("Parse(%q): nil protocol", s)
		}
	})
}
