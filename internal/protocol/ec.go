package protocol

import (
	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// EC is epidemic routing with Encounter Count (Davis et al.): each copy
// carries a counter incremented on every transmission (the receiver
// inherits the incremented value — paper Fig. 5: bundles with EC 3,2,6
// arrive as 4,3,7). A full buffer makes room for a never-seen incoming
// bundle by evicting the stored copy with the highest EC: a high count
// means many duplicates exist elsewhere, so the copy "can be safely
// overwritten" (§II-B).
type EC struct{}

// NewEC returns epidemic-with-encounter-count.
func NewEC() *EC { return &EC{} }

// Name implements Protocol.
func (*EC) Name() string { return "Epidemic with EC" }

// Init implements Protocol.
func (*EC) Init(*node.Node) {}

// OnGenerate implements Protocol: fresh bundles start at EC 0.
func (*EC) OnGenerate(_ *node.Node, cp *bundle.Copy, _ sim.Time) {
	cp.EC = 0
	cp.Expiry = sim.Infinity
}

// Exchange implements Protocol.
func (*EC) Exchange(_, _ *node.Node, _ sim.Time, _ int) {}

// Wants implements Protocol.
func (*EC) Wants(sender, receiver *node.Node, _ sim.Time, rng *sim.RNG) []bundle.ID {
	return missing(sender, receiver, rng)
}

// OnTransmit implements Protocol: increment the sender's counter; the
// receiver inherits the incremented value.
func (*EC) OnTransmit(_, _ *node.Node, sent, rcpt *bundle.Copy, _ sim.Time) {
	sent.EC++
	rcpt.EC = sent.EC
}

// evictHighestEC removes the unpinned copy with the highest EC whose
// count is at least minEC. Ties break toward the oldest copy, then the
// smallest ID, keeping runs deterministic. It reports whether a victim
// was evicted.
func evictHighestEC(n *node.Node, minEC int, now sim.Time) bool {
	var victim *bundle.Copy
	n.Store.Range(func(cp *bundle.Copy) bool {
		if cp.Pinned || cp.EC < minEC {
			return true
		}
		if victim == nil || better(cp, victim) {
			victim = cp
		}
		return true
	})
	if victim == nil {
		return false
	}
	n.Store.Remove(victim.Bundle.ID)
	n.NoteEvicted(victim.Bundle.ID, now)
	return true
}

// better reports whether a should be evicted in preference to b.
func better(a, b *bundle.Copy) bool {
	if a.EC != b.EC {
		return a.EC > b.EC
	}
	if a.StoredAt != b.StoredAt {
		return a.StoredAt < b.StoredAt
	}
	return a.Bundle.ID.Less(b.Bundle.ID)
}

// Admit implements Protocol: always make room for a never-seen bundle by
// evicting the highest-EC copy ("undelivered bundles have higher
// priority even though they have a higher EC value").
func (*EC) Admit(receiver *node.Node, incoming *bundle.Copy, now sim.Time) bool {
	if receiver.Store.Free() > 0 {
		return true
	}
	if evictHighestEC(receiver, 0, now) {
		return true
	}
	receiver.NoteRefused(incoming.Bundle.ID, now)
	return false
}

// OnDelivered implements Protocol: EC has no feedback channel.
func (*EC) OnDelivered(_, _ *node.Node, _ bundle.ID, _ sim.Time) {}
