package protocol

import (
	"fmt"
	"sort"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/node"
)

// This file is the Ext-state codec for process-boundary executors
// (internal/dist): a worker process reconstructs a node from a
// coordinator snapshot and ships the mutated state back. The codec
// lives in this package because the concrete Ext types are unexported
// by design — protocols own their state layout; executors only get a
// neutral, deterministic wire form.
//
// Exactness contract: RestoreExt(SnapshotExt(x)) must reproduce state
// observationally identical to x under every protocol hook, including
// iteration counts (len(acks) prices the cumulative control load) and
// map-key presence (transferTables charges one record per known flow).
// Snapshot therefore preserves entry presence verbatim rather than
// dropping zero values, and encodes map contents in sorted order so
// equal states always snapshot to equal wire forms.

// Ext-state kinds. The zero value marks protocols that hang no state
// off node.Ext (pure, ttl, ec, …).
const (
	ExtNone       = ""
	ExtImmunity   = "immunity"
	ExtCumulative = "cum"
)

// FlowCount is one (flow, counter) entry of a cumulative-immunity
// table, in the wire form shared by the acks and base tables.
type FlowCount struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
	N   int `json:"n"`
}

// FlowSeqs is one flow's out-of-order received set at a destination.
type FlowSeqs struct {
	Src  int   `json:"src"`
	Dst  int   `json:"dst"`
	Seqs []int `json:"seqs"`
}

// ExtState is the serializable form of a node's protocol-specific Ext
// state. Field use depends on Kind: IDs carries the immunity i-list;
// Acks/Base/Rcvd carry the cumulative tables. Slices are sorted (IDs by
// bundle ID, flows by (Src, Dst), Seqs ascending), so the wire form is
// a canonical function of the state.
type ExtState struct {
	Kind string      `json:"kind,omitempty"`
	IDs  []bundle.ID `json:"ids,omitempty"`
	Acks []FlowCount `json:"acks,omitempty"`
	Base []FlowCount `json:"base,omitempty"`
	Rcvd []FlowSeqs  `json:"rcvd,omitempty"`
}

// SnapshotExt captures a node's Ext state (as attached by a protocol's
// Init and mutated since) into its wire form. It fails on an Ext type
// it does not know — adding a stateful protocol requires extending this
// codec, which the dist round-trip tests enforce.
func SnapshotExt(ext any) (ExtState, error) {
	switch st := ext.(type) {
	case nil:
		return ExtState{}, nil
	case *immunityState:
		return ExtState{Kind: ExtImmunity, IDs: st.ilist.Items()}, nil
	case *cumState:
		out := ExtState{Kind: ExtCumulative}
		out.Acks = flowCounts(st.acks)
		out.Base = flowCounts(st.base)
		for _, f := range sortedFlows(st.rcvd) {
			seqs := make([]int, 0, len(st.rcvd[f]))
			for s, ok := range st.rcvd[f] {
				if ok {
					seqs = append(seqs, s)
				}
			}
			sort.Ints(seqs)
			out.Rcvd = append(out.Rcvd, FlowSeqs{Src: int(f.Src), Dst: int(f.Dst), Seqs: seqs})
		}
		return out, nil
	}
	return ExtState{}, fmt.Errorf("protocol: Ext state %T has no snapshot codec", ext)
}

// RestoreExt reattaches a snapshotted Ext state to n, replacing
// whatever the protocol's Init installed.
func RestoreExt(n *node.Node, st ExtState) error {
	switch st.Kind {
	case ExtNone:
		n.Ext = nil
		return nil
	case ExtImmunity:
		v := bundle.NewSummaryVector()
		for _, id := range st.IDs {
			v.Add(id)
		}
		n.Ext = &immunityState{ilist: v}
		return nil
	case ExtCumulative:
		cs := &cumState{
			acks: make(map[Flow]int, len(st.Acks)),
			rcvd: make(map[Flow]map[int]bool, len(st.Rcvd)),
			base: make(map[Flow]int, len(st.Base)),
		}
		for _, fc := range st.Acks {
			cs.acks[Flow{Src: contact.NodeID(fc.Src), Dst: contact.NodeID(fc.Dst)}] = fc.N
		}
		for _, fc := range st.Base {
			cs.base[Flow{Src: contact.NodeID(fc.Src), Dst: contact.NodeID(fc.Dst)}] = fc.N
		}
		for _, fs := range st.Rcvd {
			m := make(map[int]bool, len(fs.Seqs))
			for _, s := range fs.Seqs {
				m[s] = true
			}
			cs.rcvd[Flow{Src: contact.NodeID(fs.Src), Dst: contact.NodeID(fs.Dst)}] = m
		}
		n.Ext = cs
		return nil
	}
	return fmt.Errorf("protocol: unknown Ext state kind %q", st.Kind)
}

// flowCounts converts one cumulative table to its sorted wire form,
// preserving every entry — presence is behavior-bearing.
func flowCounts(m map[Flow]int) []FlowCount {
	if len(m) == 0 {
		return nil
	}
	flows := sortedFlows(m)
	out := make([]FlowCount, len(flows))
	for i, f := range flows {
		out[i] = FlowCount{Src: int(f.Src), Dst: int(f.Dst), N: m[f]}
	}
	return out
}

// sortedFlows collects a flow-keyed table's keys and returns them
// sorted by (Src, Dst) — the same order transferTables uses.
func sortedFlows[V any](m map[Flow]V) []Flow {
	flows := make([]Flow, 0, len(m))
	for f := range m {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	return flows
}
