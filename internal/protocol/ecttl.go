package protocol

import (
	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// ECTTL is the paper's second enhancement (§III, Algorithm 2): Encounter
// Count combined with TTL.
//
//   - Eviction discipline: a copy may be evicted to make room only once
//     its EC reaches MinEC ("we define a minimum EC value before nodes
//     are allowed to delete a bundle"), so rarely-duplicated bundles
//     survive buffer pressure.
//   - Ageing discipline: once a copy's EC exceeds ECThreshold, it is
//     given the Algorithm 2 deadline TTL = TTLBase − (EC−ECThreshold) ×
//     TTLStep (clamped at zero, i.e. immediate expiry), so heavily
//     duplicated bundles drain out of buffers instead of lingering until
//     pressure forces eviction.
type ECTTL struct {
	// MinEC is the minimum encounter count before a copy becomes
	// evictable under buffer pressure.
	MinEC int
	// ECThreshold is the transmission count beyond which copies age out
	// via TTL; the paper uses 8.
	ECThreshold int
	// TTLBase and TTLStep parameterize Algorithm 2's deadline; the paper
	// uses 300 and 100 seconds.
	TTLBase, TTLStep float64
}

// NewECTTL returns the enhancement with the paper's §III parameters.
func NewECTTL() *ECTTL {
	return &ECTTL{MinEC: 2, ECThreshold: 8, TTLBase: 300, TTLStep: 100}
}

// Name implements Protocol.
func (*ECTTL) Name() string { return "Epidemic with EC+TTL" }

// Init implements Protocol.
func (*ECTTL) Init(*node.Node) {}

// OnGenerate implements Protocol.
func (*ECTTL) OnGenerate(_ *node.Node, cp *bundle.Copy, _ sim.Time) {
	cp.EC = 0
	cp.Expiry = sim.Infinity
}

// Exchange implements Protocol.
func (*ECTTL) Exchange(_, _ *node.Node, _ sim.Time, _ int) {}

// Wants implements Protocol.
func (*ECTTL) Wants(sender, receiver *node.Node, _ sim.Time, rng *sim.RNG) []bundle.ID {
	return missing(sender, receiver, rng)
}

// deadline applies Algorithm 2 to a copy: below the threshold copies
// live indefinitely; above it the remaining TTL shrinks by TTLStep per
// extra transmission.
func (e *ECTTL) deadline(cp *bundle.Copy, now sim.Time) sim.Time {
	if cp.EC <= e.ECThreshold {
		return sim.Infinity
	}
	ttl := e.TTLBase - float64(cp.EC-e.ECThreshold)*e.TTLStep
	if ttl <= 0 {
		return now // expires immediately at the next purge point
	}
	return now + sim.Time(ttl)
}

// OnTransmit implements Protocol: EC bookkeeping as in EC, then the
// Algorithm 2 ageing rule on both copies. Ageing only ever shortens a
// deadline, so the sender's store must be told about the in-place
// change (the receiver's copy is observed by Put).
func (e *ECTTL) OnTransmit(sender, _ *node.Node, sent, rcpt *bundle.Copy, now sim.Time) {
	sent.EC++
	rcpt.EC = sent.EC
	rcpt.Expiry = e.deadline(rcpt, now)
	if !sent.Pinned {
		sent.Expiry = e.deadline(sent, now)
		sender.Store.NoteExpiry(sent)
	}
}

// Admit implements Protocol: evict the highest-EC copy, but only among
// copies that have been transmitted at least MinEC times.
func (e *ECTTL) Admit(receiver *node.Node, incoming *bundle.Copy, now sim.Time) bool {
	if receiver.Store.Free() > 0 {
		return true
	}
	if evictHighestEC(receiver, e.MinEC, now) {
		return true
	}
	receiver.NoteRefused(incoming.Bundle.ID, now)
	return false
}

// OnDelivered implements Protocol.
func (*ECTTL) OnDelivered(_, _ *node.Node, _ bundle.ID, _ sim.Time) {}
