package protocol

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/sim"
)

// --- cross-protocol Wants properties ----------------------------------------

// TestWantsNeverOffersWhatReceiverHas: for every protocol, the offer
// list never contains a bundle the receiver stores or has consumed.
func TestWantsNeverOffersWhatReceiverHas(t *testing.T) {
	protos := []Protocol{
		NewPure(), NewPQ(1, 1), NewTTL(300), NewDynamicTTL(),
		NewEC(), NewECTTL(), NewImmunity(), NewCumulativeImmunity(),
	}
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 41))
		for _, p := range protos {
			a := mkNode(p, 0, 30)
			b := mkNode(p, 1, 30)
			for s := 1; s <= 20; s++ {
				cp := &bundle.Copy{
					Bundle: &bundle.Bundle{ID: bundle.ID{Src: 9, Seq: s}, Dst: 5},
					Expiry: sim.Infinity,
				}
				if err := a.Store.Put(cp); err != nil {
					return false
				}
				switch r.IntN(3) {
				case 0: // receiver holds a copy
					if err := b.Store.Put(cp.Clone(0)); err != nil {
						return false
					}
				case 1: // receiver consumed it as destination
					b.Received.Add(cp.Bundle.ID)
				}
			}
			for _, id := range p.Wants(a, b, 0, sim.NewRNG(seed)) {
				if b.Store.Has(id) || b.Received.Has(id) {
					t.Logf("%s offered %v the receiver already has", p.Name(), id)
					return false
				}
				if !a.Store.Has(id) {
					t.Logf("%s offered %v the sender does not hold", p.Name(), id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWantsNoDuplicates: offers are unique.
func TestWantsNoDuplicates(t *testing.T) {
	for _, p := range []Protocol{NewPure(), NewEC(), NewImmunity(), NewCumulativeImmunity()} {
		a := mkNode(p, 0, 40)
		b := mkNode(p, 1, 40)
		for s := 1; s <= 30; s++ {
			give(t, a, 9, s, 5, 0)
		}
		seen := map[bundle.ID]bool{}
		for _, id := range p.Wants(a, b, 0, sim.NewRNG(3)) {
			if seen[id] {
				t.Fatalf("%s offered %v twice", p.Name(), id)
			}
			seen[id] = true
		}
	}
}

// --- EC family ----------------------------------------------------------------

// TestECEvictionDeterministicTieBreak: equal ECs evict the oldest copy,
// then the smallest ID.
func TestECEvictionDeterministicTieBreak(t *testing.T) {
	p := NewEC()
	n := mkNode(p, 1, 3)
	c1 := give(t, n, 9, 1, 5, 2)
	c1.StoredAt = 100
	c2 := give(t, n, 9, 2, 5, 2)
	c2.StoredAt = 50 // oldest: the victim
	c3 := give(t, n, 9, 3, 5, 2)
	c3.StoredAt = 100
	in := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 9, Seq: 4}, Dst: 5}}
	if !p.Admit(n, in, 200) {
		t.Fatal("refused")
	}
	if n.Store.Has(bundle.ID{Src: 9, Seq: 2}) {
		t.Error("oldest equal-EC copy not evicted")
	}
	// Next eviction: equal EC, equal StoredAt → smallest ID.
	if err := n.Store.Put(in); err != nil {
		t.Fatal(err)
	}
	in2 := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 9, Seq: 5}, Dst: 5}}
	if !p.Admit(n, in2, 200) {
		t.Fatal("refused second")
	}
	if n.Store.Has(bundle.ID{Src: 9, Seq: 1}) {
		t.Error("smallest-ID copy not evicted on full tie")
	}
}

func TestECTTLSenderPinnedNeverAges(t *testing.T) {
	p := NewECTTL()
	src := mkNode(p, 0, 10)
	dst := mkNode(p, 1, 10)
	cp := &bundle.Copy{
		Bundle: &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 1}, Dst: 1},
		Pinned: true, Expiry: sim.Infinity, EC: 20, // way past threshold
	}
	if err := src.Store.Put(cp); err != nil {
		t.Fatal(err)
	}
	rcpt := cp.Clone(100)
	p.OnTransmit(src, dst, cp, rcpt, 100)
	if cp.Expiry != sim.Infinity {
		t.Error("pinned source copy aged by Algorithm 2")
	}
	if rcpt.Expiry == sim.Infinity {
		t.Error("receiver copy past threshold must age")
	}
}

// --- immunity family -----------------------------------------------------------

func TestImmunityControlLoadBlocksData(t *testing.T) {
	// A node whose i-list grows large loses usable buffer slots: the
	// §II-C congestion effect.
	p := NewImmunity() // 0.2 slots/record
	n := mkNode(p, 1, 10)
	for s := 1; s <= 40; s++ {
		ilistOf(n).Add(bundle.ID{Src: 9, Seq: s})
	}
	p.refreshControlLoad(n)
	// 40 records × 0.2 = 8 slots consumed; 2 left.
	if free := n.Store.Free(); free != 2 {
		t.Fatalf("Free = %d, want 2", free)
	}
	in := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 8, Seq: 1}, Dst: 5}}
	if !p.Admit(n, in, 0) {
		t.Fatal("should still admit with 2 free slots")
	}
	if err := n.Store.Put(in); err != nil {
		t.Fatal(err)
	}
	in2 := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 8, Seq: 2}, Dst: 5}}
	if err := n.Store.Put(in2); err != nil {
		t.Fatal(err)
	}
	in3 := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 8, Seq: 3}, Dst: 5}}
	if p.Admit(n, in3, 0) {
		t.Error("admitted into record-congested buffer")
	}
}

func TestImmunityExchangeSymmetric(t *testing.T) {
	p := NewImmunity()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	ilistOf(a).Add(bundle.ID{Src: 9, Seq: 1})
	ilistOf(b).Add(bundle.ID{Src: 9, Seq: 2})
	p.Exchange(a, b, 0, 100)
	if ilistOf(a).Len() != 2 || ilistOf(b).Len() != 2 {
		t.Error("i-lists not merged both ways")
	}
	// Blind retransmission: a second exchange costs overhead again.
	before := a.ControlSent + b.ControlSent
	p.Exchange(a, b, 10, 100)
	after := a.ControlSent + b.ControlSent
	if after != before+4 {
		t.Errorf("second exchange sent %d records, want 4 (2 each way)", after-before)
	}
}

func TestCumulativeMultiFlow(t *testing.T) {
	p := NewCumulativeImmunity()
	dst := mkNode(p, 1, 10)
	sender := mkNode(p, 0, 20)
	other := mkNode(p, 2, 10)
	// Two flows to different destinations; tables must not interfere.
	f1 := Flow{Src: 7, Dst: 1}
	f2 := Flow{Src: 8, Dst: 2}
	cp1 := give(t, sender, 7, 1, 1, 0)
	p.OnDelivered(dst, sender, cp1.Bundle.ID, 0)
	cp2 := give(t, sender, 8, 1, 2, 0)
	p.OnDelivered(other, sender, cp2.Bundle.ID, 0)
	if cumOf(dst).acks[f1] != 1 || cumOf(dst).acks[f2] != 0 {
		t.Error("flow-1 ack leaked into destination 2's table space")
	}
	if cumOf(other).acks[f2] != 1 || cumOf(other).acks[f1] != 0 {
		t.Error("flow-2 ack wrong")
	}
	if cumOf(sender).acks[f1] != 1 || cumOf(sender).acks[f2] != 1 {
		t.Errorf("sender tables: %+v", cumOf(sender).acks)
	}
	// Exchange propagates both tables for 2 records.
	third := mkNode(p, 3, 10)
	sent := sender.ControlSent
	p.Exchange(sender, third, 5, 100)
	if sender.ControlSent-sent != 2 {
		t.Errorf("sent %d records for two flows, want 2", sender.ControlSent-sent)
	}
	if cumOf(third).acks[f1] != 1 || cumOf(third).acks[f2] != 1 {
		t.Error("tables did not propagate")
	}
}

func TestCumulativePurgeOnMeetingDestination(t *testing.T) {
	p := NewCumulativeImmunity()
	dst := mkNode(p, 1, 10)
	holder := mkNode(p, 2, 10)
	// dst consumed seq 5 (out of order: prefix stuck at 0).
	dst.Received.Add(bundle.ID{Src: 7, Seq: 5})
	give(t, holder, 7, 5, 1, 0) // zombie copy at the holder
	give(t, holder, 7, 6, 1, 0) // undelivered: must survive
	p.Exchange(dst, holder, 0, 100)
	if holder.Store.Has(bundle.ID{Src: 7, Seq: 5}) {
		t.Error("copy the destination already consumed survived a direct contact")
	}
	if !holder.Store.Has(bundle.ID{Src: 7, Seq: 6}) {
		t.Error("undelivered copy purged")
	}
}

func TestCumulativeRecordBudgetRespected(t *testing.T) {
	p := NewCumulativeImmunity()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	for i := 0; i < 5; i++ {
		cumOf(a).acks[Flow{Src: contact.NodeID(10 + i), Dst: 5}] = i + 1
	}
	p.Exchange(a, b, 0, 2)
	if a.ControlSent != 2 {
		t.Errorf("sent %d records with budget 2", a.ControlSent)
	}
	if len(cumOf(b).acks) != 2 {
		t.Errorf("receiver learned %d tables, want 2", len(cumOf(b).acks))
	}
}

// --- P-Q family -----------------------------------------------------------------

func TestPQDrawsIndependentPerOffer(t *testing.T) {
	// With P=0.5 across many bundles, both inclusion and exclusion must
	// occur within a single Wants call.
	p := NewPQ(0.5, 0.5)
	a := mkNode(p, 0, 200)
	b := mkNode(p, 1, 200)
	for s := 1; s <= 100; s++ {
		give(t, a, 0, s, 6, 0)
	}
	got := p.Wants(a, b, 0, sim.NewRNG(5))
	if len(got) == 0 || len(got) == 100 {
		t.Errorf("P=0.5 offered %d/100; draws not independent", len(got))
	}
}

func TestPQAntiPacketsControlLoad(t *testing.T) {
	p := NewPQ(1, 1).WithAntiPackets()
	a := mkNode(p, 0, 10)
	dst := mkNode(p, 1, 10)
	cp := give(t, a, 7, 1, 1, 0)
	p.OnDelivered(dst, a, cp.Bundle.ID, 0)
	if dst.Store.ControlLoad() == 0 {
		t.Error("anti-packet variant tracks no control load")
	}
}

// --- node-level dynamics ----------------------------------------------------------

func TestDynamicTTLRenewalTracksCurrentInterval(t *testing.T) {
	// Renewal must use the node's *current* interval, not the one at
	// store time: a node whose rhythm accelerates re-deadlines sooner.
	p := NewDynamicTTL()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	a.ObserveEncounter(0)
	a.ObserveEncounter(4000) // interval 4000
	cp := give(t, a, 9, 1, 5, 0)
	cp.Expiry = 4000 + 8000
	a.ObserveEncounter(4500) // interval now 500
	rcpt := cp.Clone(4500)
	p.OnTransmit(a, b, cp, rcpt, 4500)
	if cp.Expiry != 4500+1000 {
		t.Errorf("sender renewal = %v, want 5500 (2×500)", cp.Expiry)
	}
}
