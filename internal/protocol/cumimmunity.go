package protocol

import (
	"sort"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// CumulativeImmunity is the paper's third enhancement (§III): the
// destination acknowledges the highest *contiguous* bundle-sequence
// prefix it has received — "an immunity table with a bundle ID of 30
// means the destination node has received bundles 1 to 30". One record
// covers any number of bundles, so signaling overhead is one record per
// flow per encounter instead of one per delivered bundle, and a node
// keeps at most one table per flow ("a node removes any immunity tables
// that are redundant").
type CumulativeImmunity struct {
	// RecordSlotFraction prices one stored cumulative table in bundle
	// slots, matching Immunity's record sizing.
	RecordSlotFraction float64
}

// NewCumulativeImmunity returns the enhancement with default sizing.
func NewCumulativeImmunity() *CumulativeImmunity {
	return &CumulativeImmunity{RecordSlotFraction: 0.2}
}

// Flow identifies a (source, destination) bundle stream.
type Flow struct {
	Src, Dst contact.NodeID
}

func flowOf(b *bundle.Bundle) Flow { return Flow{Src: b.ID.Src, Dst: b.Dst} }

// cumState is the per-node cumulative-immunity state.
type cumState struct {
	// acks[f] is the highest contiguous sequence known delivered for
	// flow f; sequences are 1-based, so 0 means nothing acknowledged.
	acks map[Flow]int
	// rcvd tracks out-of-order deliveries at a destination so the
	// contiguous prefix can advance when gaps fill.
	rcvd map[Flow]map[int]bool
	// base[f] is the flow's first sequence number once learned from a
	// delivered copy (bundle.FirstSeq); 0 means still unknown. Flows
	// sharing a source take contiguous sequence blocks, so a flow's
	// prefix must anchor at its own base rather than at 1.
	base map[Flow]int
}

func cumOf(n *node.Node) *cumState { return n.Ext.(*cumState) }

// Name implements Protocol.
func (*CumulativeImmunity) Name() string { return "Epidemic with cumulative immunity" }

// Init implements Protocol.
func (*CumulativeImmunity) Init(n *node.Node) {
	n.Ext = &cumState{acks: make(map[Flow]int), rcvd: make(map[Flow]map[int]bool), base: make(map[Flow]int)}
}

// OnGenerate implements Protocol.
func (*CumulativeImmunity) OnGenerate(_ *node.Node, cp *bundle.Copy, _ sim.Time) {
	cp.Expiry = sim.Infinity
}

func (ci *CumulativeImmunity) refreshControlLoad(n *node.Node) {
	n.Store.SetControlLoad(float64(len(cumOf(n).acks)) * ci.RecordSlotFraction)
}

// purgeAcked drops copies covered by the node's tables.
func purgeAcked(n *node.Node, now sim.Time) {
	st := cumOf(n)
	for _, cp := range n.Store.PurgeMatching(func(cp *bundle.Copy) bool {
		return cp.Bundle.ID.Seq <= st.acks[flowOf(cp.Bundle)]
	}) {
		n.NotePurged(cp.Bundle.ID, now)
	}
}

// Exchange implements Protocol: each side transmits its table(s) blind —
// "the destination transmits an immunity table for each node that it
// meets" — one record per flow regardless of load, within the record
// budget. The receiver keeps the dominant table per flow.
//
// Additionally, a node in contact with a bundle's *destination* learns
// from the anti-entropy summary-vector exchange exactly which bundles
// that destination has already consumed (the m-list is on the air
// anyway), and purges those copies even when the cumulative prefix has
// not reached them yet. Without this, copies delivered out of order
// would keep circulating until the prefix catches up.
func (ci *CumulativeImmunity) Exchange(a, b *node.Node, now sim.Time, recordBudget int) {
	ci.transferTables(a, b, recordBudget)
	ci.transferTables(b, a, recordBudget)
	purgeReceivedByPeer(a, b, now)
	purgeReceivedByPeer(b, a, now)
	purgeAcked(a, now)
	purgeAcked(b, now)
	ci.refreshControlLoad(a)
	ci.refreshControlLoad(b)
}

// purgeReceivedByPeer drops n's copies of bundles the peer has already
// consumed as their destination.
func purgeReceivedByPeer(n, peer *node.Node, now sim.Time) {
	if peer.Received.Len() == 0 {
		return
	}
	for _, cp := range n.Store.PurgeMatching(func(cp *bundle.Copy) bool {
		return cp.Bundle.Dst == peer.ID && peer.Received.Has(cp.Bundle.ID)
	}) {
		n.NotePurged(cp.Bundle.ID, now)
	}
}

func (ci *CumulativeImmunity) transferTables(from, to *node.Node, budget int) {
	fs, ts := cumOf(from), cumOf(to)
	flows := make([]Flow, 0, len(fs.acks))
	for f := range fs.acks {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	for _, f := range flows {
		if budget <= 0 {
			return
		}
		from.ControlSent++
		budget--
		if fs.acks[f] > ts.acks[f] {
			ts.acks[f] = fs.acks[f]
		}
	}
}

// Wants implements Protocol: skip bundles covered by the receiver's
// tables (the sender's own copies are already purged).
func (*CumulativeImmunity) Wants(sender, receiver *node.Node, _ sim.Time, rng *sim.RNG) []bundle.ID {
	rs := cumOf(receiver)
	candidates := missing(sender, receiver, rng)
	out := candidates[:0]
	for _, id := range candidates {
		cp := sender.Store.Get(id)
		if cp != nil && id.Seq <= rs.acks[flowOf(cp.Bundle)] {
			continue
		}
		out = append(out, id)
	}
	return out
}

// OnTransmit implements Protocol.
func (*CumulativeImmunity) OnTransmit(_, _ *node.Node, _, _ *bundle.Copy, _ sim.Time) {}

// Admit implements Protocol: drop-tail, as in plain immunity.
func (*CumulativeImmunity) Admit(receiver *node.Node, incoming *bundle.Copy, now sim.Time) bool {
	if receiver.Store.Free() <= 0 {
		receiver.NoteRefused(incoming.Bundle.ID, now)
		return false
	}
	return true
}

// OnDelivered implements Protocol: the destination records the arrival,
// advances its contiguous prefix, and the sender — having observed the
// delivery on-link — adopts the new table, drops covered copies, and
// drops its copy of the just-delivered bundle.
func (ci *CumulativeImmunity) OnDelivered(dst, sender *node.Node, id bundle.ID, now sim.Time) {
	cp := sender.Store.Get(id)
	var f Flow
	ds := cumOf(dst)
	if cp != nil {
		f = flowOf(cp.Bundle)
		if ds.base[f] == 0 {
			if b := cp.Bundle.FirstSeq; b > 1 {
				ds.base[f] = b
			} else {
				ds.base[f] = 1
			}
		}
	} else {
		// Copy already gone (e.g. purged mid-contact); the destination
		// is the flow's endpoint, so reconstruct the key from the
		// delivery itself. The flow base stays unknown until a delivery
		// arrives with its copy intact.
		f = Flow{Src: id.Src, Dst: dst.ID}
	}
	if ds.rcvd[f] == nil {
		ds.rcvd[f] = make(map[int]bool)
	}
	ds.rcvd[f][id.Seq] = true
	// Once the flow's base is known, skip the nonexistent sequences
	// below it; without this a flow whose block starts above 1 could
	// never advance past its (vacuously missing) low seqs. Walking the
	// received set itself is always sound: it only acks sequences that
	// actually arrived.
	if base := ds.base[f]; base != 0 && ds.acks[f] < base-1 {
		ds.acks[f] = base - 1
	}
	for ds.rcvd[f][ds.acks[f]+1] {
		ds.acks[f]++
	}
	// Link-layer feedback: the sender learns the destination's table and
	// sheds its delivered copy even when the prefix has not reached it.
	ss := cumOf(sender)
	if ds.acks[f] > ss.acks[f] {
		ss.acks[f] = ds.acks[f]
	}
	if sender.Store.Remove(id) {
		sender.NotePurged(id, now)
	}
	purgeAcked(sender, now)
	ci.refreshControlLoad(dst)
	ci.refreshControlLoad(sender)
}
