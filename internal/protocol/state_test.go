package protocol

import (
	"reflect"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
)

// TestSnapshotExtRoundTrip pins the Ext codec's exactness contract:
// restore(snapshot(x)) reproduces x structurally, and snapshotting the
// restored state yields the identical wire form (the canonical-form
// fixed point the frame codec's byte-identity rests on).
func TestSnapshotExtRoundTrip(t *testing.T) {
	il := bundle.NewSummaryVector()
	il.Add(bundle.ID{Src: 3, Seq: 2})
	il.Add(bundle.ID{Src: 1, Seq: 9})
	cases := []struct {
		name string
		ext  any
	}{
		{"none", nil},
		{"immunity", &immunityState{ilist: il}},
		{"immunity-empty", &immunityState{ilist: bundle.NewSummaryVector()}},
		{"cum", &cumState{
			acks: map[Flow]int{{Src: 0, Dst: 7}: 3, {Src: 2, Dst: 1}: 5},
			base: map[Flow]int{{Src: 0, Dst: 7}: 1},
			rcvd: map[Flow]map[int]bool{{Src: 0, Dst: 7}: {4: true, 6: true}},
		}},
		{"cum-empty", &cumState{
			acks: map[Flow]int{}, base: map[Flow]int{}, rcvd: map[Flow]map[int]bool{},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := SnapshotExt(tc.ext)
			if err != nil {
				t.Fatalf("SnapshotExt: %v", err)
			}
			n := node.New(0, 10)
			if err := RestoreExt(n, st); err != nil {
				t.Fatalf("RestoreExt: %v", err)
			}
			if !reflect.DeepEqual(n.Ext, tc.ext) {
				t.Errorf("restored Ext = %#v, want %#v", n.Ext, tc.ext)
			}
			again, err := SnapshotExt(n.Ext)
			if err != nil {
				t.Fatalf("re-snapshot: %v", err)
			}
			if !reflect.DeepEqual(again, st) {
				t.Errorf("re-snapshot = %#v, want %#v", again, st)
			}
		})
	}
}

// TestSnapshotExtUnknown rejects Ext types without a codec rather than
// silently dropping state across the process boundary.
func TestSnapshotExtUnknown(t *testing.T) {
	if _, err := SnapshotExt(42); err == nil {
		t.Fatal("SnapshotExt(int) succeeded; want error")
	}
	n := node.New(0, 10)
	if err := RestoreExt(n, ExtState{Kind: "martian"}); err == nil {
		t.Fatal("RestoreExt(unknown kind) succeeded; want error")
	}
}
