package protocol

import (
	"fmt"

	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// TTL is epidemic routing with a constant Time-To-Live (Harras et al.):
// a copy's TTL starts counting down once the bundle is "transmitted and
// stored in a buffer" — i.e. at relays, not at the source — and is
// renewed whenever the bundle is forwarded again before expiring (§II-B,
// Fig. 6 in the paper). Expired copies are purged; a full relay refuses
// new bundles.
type TTL struct {
	// TTL is the constant time-to-live in seconds. The paper sweeps
	// {50,100,150,200} and uses 300 in the comparative experiments.
	TTL float64
}

// NewTTL returns epidemic-with-TTL using the given constant value.
func NewTTL(ttl float64) *TTL {
	if ttl <= 0 {
		panic(fmt.Sprintf("protocol: TTL must be positive, got %v", ttl))
	}
	return &TTL{TTL: ttl}
}

// Name implements Protocol.
func (t *TTL) Name() string { return fmt.Sprintf("Epidemic with TTL=%g", t.TTL) }

// Init implements Protocol.
func (*TTL) Init(*node.Node) {}

// OnGenerate implements Protocol: source copies are pinned and carry no
// countdown (the paper starts TTL when a bundle is transmitted into a
// relay's buffer).
func (*TTL) OnGenerate(_ *node.Node, cp *bundle.Copy, _ sim.Time) {
	cp.Expiry = sim.Infinity
}

// Exchange implements Protocol.
func (*TTL) Exchange(_, _ *node.Node, _ sim.Time, _ int) {}

// Wants implements Protocol.
func (*TTL) Wants(sender, receiver *node.Node, _ sim.Time, rng *sim.RNG) []bundle.ID {
	return missing(sender, receiver, rng)
}

// OnTransmit implements Protocol: the receiver's copy starts a fresh
// countdown and the sender's copy is renewed ("if a bundle is
// transmitted to other nodes before its TTL expires, the bundle's TTL
// value is renewed"). The sender's store is told about the in-place
// deadline change so its min-expiry bound stays conservative; the
// receiver's copy is not stored yet, so Put will observe it.
func (t *TTL) OnTransmit(sender, _ *node.Node, sent, rcpt *bundle.Copy, now sim.Time) {
	rcpt.Expiry = now + sim.Time(t.TTL)
	if !sent.Pinned {
		sent.Expiry = now + sim.Time(t.TTL)
		sender.Store.NoteExpiry(sent)
	}
}

// Admit implements Protocol: drop-tail.
func (*TTL) Admit(receiver *node.Node, incoming *bundle.Copy, now sim.Time) bool {
	if receiver.Store.Free() <= 0 {
		receiver.NoteRefused(incoming.Bundle.ID, now)
		return false
	}
	return true
}

// OnDelivered implements Protocol.
func (*TTL) OnDelivered(_, _ *node.Node, _ bundle.ID, _ sim.Time) {}
