package protocol

import (
	"math"
	"testing"

	"dtnsim/internal/bundle"
	"dtnsim/internal/contact"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// mkNode returns an initialized node for protocol p.
func mkNode(p Protocol, id contact.NodeID, cap int) *node.Node {
	n := node.New(id, cap)
	p.Init(n)
	return n
}

// give stores a copy of bundle (src:seq)->dst at n with the given EC.
func give(t *testing.T, n *node.Node, src contact.NodeID, seq int, dst contact.NodeID, ec int) *bundle.Copy {
	t.Helper()
	cp := &bundle.Copy{
		Bundle: &bundle.Bundle{ID: bundle.ID{Src: src, Seq: seq}, Dst: dst},
		EC:     ec,
		Expiry: sim.Infinity,
	}
	if err := n.Store.Put(cp); err != nil {
		t.Fatalf("give %d:%d to node %d: %v", src, seq, n.ID, err)
	}
	return cp
}

func seqs(ids []bundle.ID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = id.Seq
	}
	return out
}

func wantSeqs(t *testing.T, got []bundle.ID, want ...int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want seqs %v", got, want)
	}
	for i, id := range got {
		if id.Seq != want[i] {
			t.Fatalf("got seqs %v, want %v", seqs(got), want)
		}
	}
}

// wantSeqSet compares ignoring order: relay offers are intentionally
// randomized (see missing).
func wantSeqSet(t *testing.T, got []bundle.ID, want ...int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want seqs %v", got, want)
	}
	gs := make(map[int]int)
	for _, id := range got {
		gs[id.Seq]++
	}
	for _, w := range want {
		if gs[w] == 0 {
			t.Fatalf("got seqs %v, want set %v", seqs(got), want)
		}
		gs[w]--
	}
}

// --- Pure epidemic -------------------------------------------------------

// TestPureFig2 encodes the paper's Fig. 2: A{1,2,3,4,8} and B{0,2,3,4,9}
// exchange exactly the bundles the other is missing.
func TestPureFig2(t *testing.T) {
	p := NewPure()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	for _, s := range []int{1, 2, 3, 4, 8} {
		give(t, a, 5, s, 6, 0)
	}
	for _, s := range []int{0, 2, 3, 4, 9} {
		give(t, b, 5, s, 6, 0)
	}
	wantSeqSet(t, p.Wants(a, b, 0, sim.NewRNG(1)), 1, 8)
	wantSeqSet(t, p.Wants(b, a, 0, sim.NewRNG(1)), 0, 9)
}

func TestPureWantsSkipsDeliveredAtDestination(t *testing.T) {
	p := NewPure()
	a := mkNode(p, 0, 10)
	dst := mkNode(p, 1, 10)
	give(t, a, 0, 1, 1, 0)
	give(t, a, 0, 2, 1, 0)
	dst.Received.Add(bundle.ID{Src: 0, Seq: 1}) // already consumed
	wantSeqs(t, p.Wants(a, dst, 0, sim.NewRNG(1)), 2)
}

func TestPureAdmitDropTail(t *testing.T) {
	p := NewPure()
	n := mkNode(p, 0, 2)
	give(t, n, 9, 1, 1, 0)
	give(t, n, 9, 2, 1, 0)
	in := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 9, Seq: 3}, Dst: 1}}
	if p.Admit(n, in, 0) {
		t.Fatal("full pure-epidemic buffer admitted a bundle")
	}
	if n.Refused != 1 {
		t.Errorf("Refused = %d, want 1", n.Refused)
	}
	if n.Store.Len() != 2 {
		t.Error("admit mutated the store")
	}
}

func TestPureWantsDestinationTrafficFirst(t *testing.T) {
	// Bundles addressed to the encountered peer precede relay traffic,
	// in arrival order; relay traffic follows in randomized order.
	p := NewPure()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	for s := 1; s <= 5; s++ {
		give(t, a, 5, s, 6, 0) // relay traffic for node 6
	}
	own2 := give(t, a, 5, 12, 1, 0) // b's own traffic, arrived later
	own2.StoredAt = 50
	own1 := give(t, a, 5, 11, 1, 0)
	own1.StoredAt = 10
	got := p.Wants(a, b, 600, sim.NewRNG(1))
	if len(got) != 7 {
		t.Fatalf("offered %v", got)
	}
	if got[0].Seq != 11 || got[1].Seq != 12 {
		t.Fatalf("destination traffic not first in arrival order: %v", seqs(got))
	}
	wantSeqSet(t, got[2:], 1, 2, 3, 4, 5)
}

func TestPureWantsShuffleIsSeedDeterministic(t *testing.T) {
	p := NewPure()
	a := mkNode(p, 0, 30)
	b := mkNode(p, 1, 30)
	for s := 1; s <= 20; s++ {
		give(t, a, 5, s, 6, 0)
	}
	// Wants returns scratch-backed slices valid only until the next
	// call on the same sender, so each offer must be snapshotted.
	x := append([]bundle.ID(nil), p.Wants(a, b, 0, sim.NewRNG(7))...)
	y := append([]bundle.ID(nil), p.Wants(a, b, 0, sim.NewRNG(7))...)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("same RNG seed produced different offer orders")
		}
	}
	z := append([]bundle.ID(nil), p.Wants(a, b, 0, sim.NewRNG(8))...)
	same := true
	for i := range x {
		if x[i] != z[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical orders for 20 bundles")
	}
}

// --- P-Q epidemic --------------------------------------------------------

func TestPQDegeneratesToPureAtOne(t *testing.T) {
	p := NewPQ(1, 1)
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	for s := 1; s <= 5; s++ {
		give(t, a, 0, s, 6, 0)
	}
	wantSeqSet(t, p.Wants(a, b, 0, sim.NewRNG(1)), 1, 2, 3, 4, 5)
}

func TestPQZeroSendsNothing(t *testing.T) {
	p := NewPQ(0, 0)
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	for s := 1; s <= 5; s++ {
		give(t, a, 0, s, 6, 0)
	}
	if got := p.Wants(a, b, 0, sim.NewRNG(1)); len(got) != 0 {
		t.Fatalf("P=Q=0 offered %v", got)
	}
}

func TestPQSourceUsesPRelaysUseQ(t *testing.T) {
	// P=1, Q=0: node 0 offers only bundles it originated.
	p := NewPQ(1, 0)
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	give(t, a, 0, 1, 6, 0) // own bundle
	give(t, a, 7, 2, 6, 0) // carried for node 7
	got := p.Wants(a, b, 0, sim.NewRNG(1))
	if len(got) != 1 || got[0].Src != 0 {
		t.Fatalf("P=1,Q=0 offered %v, want only own bundle", got)
	}
}

func TestPQProbabilityRoughlyHonoured(t *testing.T) {
	p := NewPQ(0.5, 0.5)
	a := mkNode(p, 0, 200)
	b := mkNode(p, 1, 200)
	for s := 1; s <= 100; s++ {
		give(t, a, 0, s, 6, 0)
	}
	rng := sim.NewRNG(42)
	total := 0
	const draws = 50
	for i := 0; i < draws; i++ {
		total += len(p.Wants(a, b, 0, rng))
	}
	mean := float64(total) / draws
	if mean < 40 || mean > 60 {
		t.Errorf("P=0.5 offered %.1f/100 bundles on average", mean)
	}
}

func TestPQRejectsBadProbabilities(t *testing.T) {
	for _, pq := range [][2]float64{{-0.1, 0.5}, {0.5, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPQ(%v,%v) did not panic", pq[0], pq[1])
				}
			}()
			NewPQ(pq[0], pq[1])
		}()
	}
}

// --- Constant TTL --------------------------------------------------------

func TestTTLReceiverGetsCountdownSourceDoesNot(t *testing.T) {
	p := NewTTL(300)
	src := mkNode(p, 0, 10)
	cp := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 1}, Dst: 5}, Pinned: true}
	p.OnGenerate(src, cp, 0)
	if cp.Expiry != sim.Infinity {
		t.Fatal("source copy given a countdown")
	}
	rcpt := cp.Clone(1000)
	p.OnTransmit(src, nil, cp, rcpt, 1000)
	if rcpt.Expiry != 1300 {
		t.Errorf("receiver expiry = %v, want 1300", rcpt.Expiry)
	}
	if cp.Expiry != sim.Infinity {
		t.Error("pinned sender copy must not start a countdown")
	}
}

// TestTTLFig6 encodes the paper's Fig. 6: bundles stored at relays are
// removed once the TTL elapses without a forward (t=50s example).
func TestTTLFig6ExpiryAtRelay(t *testing.T) {
	p := NewTTL(50)
	relayA := mkNode(p, 0, 10)
	relayB := mkNode(p, 1, 10)
	sent := give(t, relayA, 9, 1, 5, 0)
	rcpt := sent.Clone(0)
	p.OnTransmit(relayA, relayB, sent, rcpt, 0)
	if err := relayB.Store.Put(rcpt); err != nil {
		t.Fatal(err)
	}
	// Sender's (unpinned) copy is renewed too.
	if sent.Expiry != 50 || rcpt.Expiry != 50 {
		t.Fatalf("expiries = %v, %v, want 50, 50", sent.Expiry, rcpt.Expiry)
	}
	relayA.PurgeExpired(50)
	relayB.PurgeExpired(50)
	if relayA.Store.Len() != 0 || relayB.Store.Len() != 0 {
		t.Error("copies survived past their TTL")
	}
	if relayA.Expired != 1 || relayB.Expired != 1 {
		t.Error("expiry not accounted")
	}
}

func TestTTLRenewalOnForward(t *testing.T) {
	p := NewTTL(100)
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	cp := give(t, a, 9, 1, 5, 0)
	cp.Expiry = 80 // about to lapse
	rcpt := cp.Clone(60)
	p.OnTransmit(a, b, cp, rcpt, 60)
	if cp.Expiry != 160 {
		t.Errorf("sender renewal: expiry = %v, want 160", cp.Expiry)
	}
}

func TestTTLPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTTL(0) did not panic")
		}
	}()
	NewTTL(0)
}

// --- Dynamic TTL (Algorithm 1) -------------------------------------------

func TestDynamicTTLUsesReceiverInterval(t *testing.T) {
	p := NewDynamicTTL()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	// Algorithm 1: TTL = 2 × interval between the node's last two
	// encounters.
	b.ObserveEncounter(1000)
	b.ObserveEncounter(1400) // interval 400
	a.ObserveEncounter(0)
	a.ObserveEncounter(3000) // interval 3000
	cp := give(t, a, 9, 1, 5, 0)
	rcpt := cp.Clone(1400)
	p.OnTransmit(a, b, cp, rcpt, 1400)
	if rcpt.Expiry != 1400+800 {
		t.Errorf("receiver expiry = %v, want 2200 (2×400)", rcpt.Expiry)
	}
	if cp.Expiry != 1400+6000 {
		t.Errorf("sender expiry = %v, want 7400 (2×3000)", cp.Expiry)
	}
}

func TestDynamicTTLNoHistoryMeansNoDeadline(t *testing.T) {
	p := NewDynamicTTL()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10) // never encountered anyone before
	cp := give(t, a, 9, 1, 5, 0)
	rcpt := cp.Clone(100)
	p.OnTransmit(a, b, cp, rcpt, 100)
	if rcpt.Expiry != sim.Infinity {
		t.Errorf("no-history receiver expiry = %v, want Infinity", rcpt.Expiry)
	}
}

func TestDynamicTTLLongerIntervalLongerTTL(t *testing.T) {
	p := NewDynamicTTL()
	sparse := mkNode(p, 1, 10)
	sparse.ObserveEncounter(0)
	sparse.ObserveEncounter(2000)
	dense := mkNode(p, 2, 10)
	dense.ObserveEncounter(0)
	dense.ObserveEncounter(400)
	a := mkNode(p, 0, 10)
	cp := give(t, a, 9, 1, 5, 0)
	r1 := cp.Clone(2000)
	p.OnTransmit(a, sparse, cp, r1, 2000)
	r2 := cp.Clone(2000)
	p.OnTransmit(a, dense, cp, r2, 2000)
	if !(r1.Expiry > r2.Expiry) {
		t.Errorf("sparse-node TTL (%v) not longer than dense-node TTL (%v)", r1.Expiry, r2.Expiry)
	}
}

// --- EC (Fig. 5) ----------------------------------------------------------

// TestECFig5Increment encodes Fig. 5's counter rule: bundles with EC
// 3,2,6 arrive with EC 4,3,7.
func TestECFig5Increment(t *testing.T) {
	p := NewEC()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	for _, tc := range []struct{ seq, ec, want int }{{4, 3, 4}, {8, 2, 3}, {9, 6, 7}} {
		cp := give(t, a, 9, tc.seq, 5, tc.ec)
		rcpt := cp.Clone(0)
		p.OnTransmit(a, b, cp, rcpt, 0)
		if rcpt.EC != tc.want {
			t.Errorf("seq %d: receiver EC = %d, want %d", tc.seq, rcpt.EC, tc.want)
		}
		if cp.EC != tc.want {
			t.Errorf("seq %d: sender EC = %d, want %d (incremented)", tc.seq, cp.EC, tc.want)
		}
	}
}

// TestECFig5Eviction: a full buffer evicts its highest-EC copies to admit
// never-seen bundles (undelivered bundles take priority).
func TestECFig5Eviction(t *testing.T) {
	p := NewEC()
	b := mkNode(p, 1, 5)
	// Node B's buffer: bundles with EC values; 3 and 6 carry the highest.
	ecs := map[int]int{1: 1, 2: 2, 3: 9, 5: 3, 6: 8}
	for seq, ec := range ecs {
		give(t, b, 9, seq, 5, ec)
	}
	in1 := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 9, Seq: 8}, Dst: 5}, EC: 3}
	if !p.Admit(b, in1, 0) {
		t.Fatal("EC refused a never-seen bundle")
	}
	if b.Store.Has(bundle.ID{Src: 9, Seq: 3}) {
		t.Error("highest-EC bundle (seq 3, EC 9) not evicted first")
	}
	if err := b.Store.Put(in1); err != nil {
		t.Fatal(err)
	}
	in2 := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 9, Seq: 10}, Dst: 5}, EC: 7}
	if !p.Admit(b, in2, 0) {
		t.Fatal("EC refused the second bundle")
	}
	if b.Store.Has(bundle.ID{Src: 9, Seq: 6}) {
		t.Error("second-highest EC bundle (seq 6, EC 8) not evicted next")
	}
	if b.Evicted != 2 {
		t.Errorf("Evicted = %d, want 2", b.Evicted)
	}
}

func TestECNeverEvictsPinned(t *testing.T) {
	p := NewEC()
	n := mkNode(p, 0, 2)
	pinned := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 0, Seq: 1}, Dst: 5}, EC: 99, Pinned: true, Expiry: sim.Infinity}
	if err := n.Store.Put(pinned); err != nil {
		t.Fatal(err)
	}
	give(t, n, 9, 2, 5, 1)
	give(t, n, 9, 3, 5, 2)
	in := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 9, Seq: 4}, Dst: 5}}
	if !p.Admit(n, in, 0) {
		t.Fatal("refused despite evictable unpinned copies")
	}
	if !n.Store.Has(pinned.Bundle.ID) {
		t.Fatal("pinned copy evicted")
	}
	if n.Store.Has(bundle.ID{Src: 9, Seq: 3}) {
		t.Error("highest-EC unpinned copy survived")
	}
}

func TestECAdmitWhenOnlyPinnedRefuses(t *testing.T) {
	p := NewEC()
	n := mkNode(p, 0, 1)
	// One unpinned slot consumed... fill cap with an unpinned copy that
	// is the only candidate, then pin-only scenario:
	n2 := mkNode(p, 2, 1)
	pinned := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 2, Seq: 1}, Dst: 5}, EC: 5, Pinned: true, Expiry: sim.Infinity}
	if err := n2.Store.Put(pinned); err != nil {
		t.Fatal(err)
	}
	_ = n
	// Buffer has free unpinned capacity (pinned doesn't count), so admit
	// succeeds without eviction.
	in := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 9, Seq: 9}, Dst: 5}}
	if !p.Admit(n2, in, 0) {
		t.Fatal("pinned copies must not block free unpinned capacity")
	}
}

// --- EC+TTL (Algorithm 2) --------------------------------------------------

func TestECTTLAlgorithm2Deadline(t *testing.T) {
	p := NewECTTL()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	// EC ends at 8 after transmit: at or below threshold, no deadline.
	cp := give(t, a, 9, 1, 5, 7)
	rcpt := cp.Clone(0)
	p.OnTransmit(a, b, cp, rcpt, 0)
	if rcpt.EC != 8 || rcpt.Expiry != sim.Infinity {
		t.Errorf("EC=8: expiry = %v, want Infinity", rcpt.Expiry)
	}
	// EC 9 : TTL = 300 - (9-8)*100 = 200.
	cp2 := give(t, a, 9, 2, 5, 8)
	r2 := cp2.Clone(1000)
	p.OnTransmit(a, b, cp2, r2, 1000)
	if r2.EC != 9 || r2.Expiry != 1200 {
		t.Errorf("EC=9: expiry = %v, want 1200", r2.Expiry)
	}
	// EC 11 : TTL = 300 - 300 = 0 → immediate expiry.
	cp3 := give(t, a, 9, 3, 5, 10)
	r3 := cp3.Clone(2000)
	p.OnTransmit(a, b, cp3, r3, 2000)
	if r3.EC != 11 || r3.Expiry != 2000 {
		t.Errorf("EC=11: expiry = %v, want 2000 (immediate)", r3.Expiry)
	}
	// EC 13 : TTL would be negative → still immediate, never in the past.
	cp4 := give(t, a, 9, 4, 5, 12)
	r4 := cp4.Clone(3000)
	p.OnTransmit(a, b, cp4, r4, 3000)
	if r4.Expiry != 3000 {
		t.Errorf("EC=13: expiry = %v, want 3000", r4.Expiry)
	}
}

func TestECTTLMinECGuardsEviction(t *testing.T) {
	p := NewECTTL() // MinEC = 2
	n := mkNode(p, 1, 2)
	give(t, n, 9, 1, 5, 0) // never transmitted: protected
	give(t, n, 9, 2, 5, 1) // below MinEC: protected
	in := &bundle.Copy{Bundle: &bundle.Bundle{ID: bundle.ID{Src: 9, Seq: 3}, Dst: 5}}
	if p.Admit(n, in, 0) {
		t.Fatal("evicted a copy below the MinEC threshold")
	}
	if n.Refused != 1 {
		t.Errorf("Refused = %d", n.Refused)
	}
	// Raise one copy to MinEC: now evictable.
	n.Store.Get(bundle.ID{Src: 9, Seq: 2}).EC = 2
	if !p.Admit(n, in, 0) {
		t.Fatal("refused despite an eligible victim")
	}
	if n.Store.Has(bundle.ID{Src: 9, Seq: 2}) {
		t.Error("eligible victim survived")
	}
}

// --- Immunity --------------------------------------------------------------

// TestImmunityFig3 encodes Fig. 3: after exchanging anti-packets, node A
// learns bundles 2,3,4 are delivered, purges them, and offers only the
// rest.
func TestImmunityFig3(t *testing.T) {
	p := NewImmunity()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	for _, s := range []int{2, 3, 4, 8, 9, 0} {
		give(t, a, 7, s, 5, 0)
	}
	// B carries immunity records for 2,3,4.
	for _, s := range []int{2, 3, 4} {
		ilistOf(b).Add(bundle.ID{Src: 7, Seq: s})
	}
	p.Exchange(a, b, 0, 100)
	for _, s := range []int{2, 3, 4} {
		if a.Store.Has(bundle.ID{Src: 7, Seq: s}) {
			t.Errorf("delivered bundle %d not purged from A", s)
		}
	}
	wantSeqSet(t, p.Wants(a, b, 0, sim.NewRNG(1)), 0, 8, 9)
	if b.ControlSent != 3 {
		t.Errorf("B sent %d records, want 3", b.ControlSent)
	}
	// A's i-list now prices 3 records of control load.
	if got := a.Store.ControlLoad(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("A control load = %v, want 0.6", got)
	}
}

func TestImmunityRecordBudgetMetersDissemination(t *testing.T) {
	p := NewImmunity()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	for s := 1; s <= 50; s++ {
		ilistOf(a).Add(bundle.ID{Src: 7, Seq: s})
	}
	p.Exchange(a, b, 0, 10) // short contact: only 10 records fit
	if got := ilistOf(b).Len(); got != 10 {
		t.Errorf("B learned %d records, want 10 (budget)", got)
	}
	if a.ControlSent != 10 {
		t.Errorf("A overhead = %d, want 10", a.ControlSent)
	}
}

func TestImmunityOnDeliveredPurgesSender(t *testing.T) {
	p := NewImmunity()
	sender := mkNode(p, 0, 10)
	dst := mkNode(p, 1, 10)
	cp := give(t, sender, 7, 1, 1, 0)
	p.OnDelivered(dst, sender, cp.Bundle.ID, 100)
	if sender.Store.Has(cp.Bundle.ID) {
		t.Error("sender kept a copy it saw delivered")
	}
	if !ilistOf(dst).Has(cp.Bundle.ID) || !ilistOf(sender).Has(cp.Bundle.ID) {
		t.Error("i-lists not updated on delivery")
	}
}

func TestImmunityNeverReaccepts(t *testing.T) {
	p := NewImmunity()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	give(t, a, 7, 1, 5, 0)
	ilistOf(b).Add(bundle.ID{Src: 7, Seq: 1})
	if got := p.Wants(a, b, 0, sim.NewRNG(1)); len(got) != 0 {
		t.Errorf("offered dead bundle: %v", got)
	}
}

// --- Cumulative immunity -----------------------------------------------------

// TestCumulativePrefixSemantics encodes §III: "an immunity table with a
// bundle ID of 30 means the destination node has received bundles 1 to
// 30" — the prefix only advances when gaps fill.
func TestCumulativePrefixSemantics(t *testing.T) {
	p := NewCumulativeImmunity()
	dst := mkNode(p, 1, 10)
	sender := mkNode(p, 0, 10)
	f := Flow{Src: 7, Dst: 1}
	deliver := func(seq int) {
		cp := give(t, sender, 7, seq, 1, 0)
		p.OnDelivered(dst, sender, cp.Bundle.ID, 0)
	}
	deliver(1)
	if cumOf(dst).acks[f] != 1 {
		t.Fatalf("ack after seq1 = %d, want 1", cumOf(dst).acks[f])
	}
	deliver(3) // gap at 2: prefix must hold at 1
	if cumOf(dst).acks[f] != 1 {
		t.Fatalf("ack after out-of-order seq3 = %d, want 1", cumOf(dst).acks[f])
	}
	deliver(2) // fills the gap: prefix jumps to 3
	if cumOf(dst).acks[f] != 3 {
		t.Fatalf("ack after gap fill = %d, want 3", cumOf(dst).acks[f])
	}
}

func TestCumulativeExchangeOneRecordPerFlow(t *testing.T) {
	p := NewCumulativeImmunity()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	f := Flow{Src: 7, Dst: 5}
	cumOf(a).acks[f] = 30
	cumOf(b).acks[f] = 10
	p.Exchange(a, b, 0, 100)
	if cumOf(b).acks[f] != 30 {
		t.Errorf("B's table = %d, want 30", cumOf(b).acks[f])
	}
	if a.ControlSent != 1 {
		t.Errorf("overhead = %d records, want 1 (cumulative)", a.ControlSent)
	}
	// B transmits its (dominated) table blind too — a node cannot know
	// the peer's table without sending its own.
	if b.ControlSent != 1 {
		t.Errorf("B sent %d records, want 1", b.ControlSent)
	}
	if cumOf(a).acks[f] != 30 {
		t.Errorf("A's table overwritten by dominated value: %d", cumOf(a).acks[f])
	}
	// Redundant-table rule: only the dominant table survives (map holds
	// a single entry per flow).
	if len(cumOf(b).acks) != 1 {
		t.Errorf("B holds %d tables for one flow", len(cumOf(b).acks))
	}
}

func TestCumulativeExchangePurgesCovered(t *testing.T) {
	p := NewCumulativeImmunity()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	for s := 1; s <= 6; s++ {
		give(t, a, 7, s, 5, 0)
	}
	cumOf(b).acks[Flow{Src: 7, Dst: 5}] = 4
	p.Exchange(a, b, 0, 100)
	if got := a.Store.Len(); got != 2 {
		t.Fatalf("A holds %d bundles after exchange, want 2 (5 and 6)", got)
	}
	wantSeqs(t, p.Wants(a, b, 0, sim.NewRNG(1)), 5, 6)
}

func TestCumulativeWantsSkipsCovered(t *testing.T) {
	p := NewCumulativeImmunity()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	for s := 1; s <= 3; s++ {
		give(t, a, 7, s, 5, 0)
	}
	// B knows the prefix 2 but A has not exchanged yet.
	cumOf(b).acks[Flow{Src: 7, Dst: 5}] = 2
	wantSeqs(t, p.Wants(a, b, 0, sim.NewRNG(1)), 3)
}

func TestCumulativeControlLoadIsOneTable(t *testing.T) {
	p := NewCumulativeImmunity()
	dst := mkNode(p, 1, 10)
	sender := mkNode(p, 0, 10)
	for s := 1; s <= 30; s++ {
		cp := give(t, sender, 7, s, 1, 0)
		p.OnDelivered(dst, sender, cp.Bundle.ID, 0)
	}
	// 30 deliveries, but the table is one record per flow.
	if got := dst.Store.ControlLoad(); got != 0.2 {
		t.Errorf("dst control load = %v, want 0.2 (one table)", got)
	}
}

// --- P-Q with anti-packets (§II completeness variant) -----------------------

func TestPQWithAntiPacketsPurges(t *testing.T) {
	p := NewPQ(1, 1).WithAntiPackets()
	a := mkNode(p, 0, 10)
	b := mkNode(p, 1, 10)
	give(t, a, 7, 1, 5, 0)
	ilistOf(b).Add(bundle.ID{Src: 7, Seq: 1})
	p.Exchange(a, b, 0, 100)
	if a.Store.Has(bundle.ID{Src: 7, Seq: 1}) {
		t.Error("anti-packet variant did not purge delivered bundle")
	}
}

func TestProtocolNames(t *testing.T) {
	ps := []Protocol{
		NewPure(), NewPQ(1, 1), NewTTL(300), NewDynamicTTL(),
		NewEC(), NewECTTL(), NewImmunity(), NewCumulativeImmunity(),
		NewPQ(0.5, 0.5).WithAntiPackets(),
	}
	seen := map[string]bool{}
	for _, p := range ps {
		name := p.Name()
		if name == "" || seen[name] {
			t.Errorf("protocol name %q empty or duplicated", name)
		}
		seen[name] = true
	}
}

// TestMissingDirectPrefixOrder pins the satellite fix that deleted the
// redundant re-sort in missing: copies destined to the receiver must
// come first, in ascending (Src, Seq) order, straight off the store's
// sorted index — with and without relay shuffling, and with direct
// bundles from several sources.
func TestMissingDirectPrefixOrder(t *testing.T) {
	p := NewPure()
	a := mkNode(p, 0, 30)
	b := mkNode(p, 1, 30)
	// Receiver-destined bundles from two sources, stored out of order,
	// interleaved with relay traffic to node 6.
	give(t, a, 5, 9, 1, 0)
	give(t, a, 2, 4, 1, 0)
	give(t, a, 5, 2, 6, 0)
	give(t, a, 2, 1, 1, 0)
	give(t, a, 5, 3, 1, 0)
	give(t, a, 9, 7, 6, 0)

	wantDirect := []bundle.ID{
		{Src: 2, Seq: 1}, {Src: 2, Seq: 4}, {Src: 5, Seq: 3}, {Src: 5, Seq: 9},
	}
	for _, rng := range []*sim.RNG{nil, sim.NewRNG(3)} {
		got := missing(a, b, rng)
		if len(got) != 6 {
			t.Fatalf("missing returned %v, want 6 ids", got)
		}
		for i, want := range wantDirect {
			if got[i] != want {
				t.Fatalf("direct prefix = %v, want %v first", got[:4], wantDirect)
			}
		}
		rest := map[bundle.ID]bool{{Src: 5, Seq: 2}: true, {Src: 9, Seq: 7}: true}
		for _, id := range got[4:] {
			if !rest[id] {
				t.Fatalf("relay suffix contains unexpected %v", id)
			}
		}
	}
}

// TestMissingScratchReuseIsStable checks that repeated diffs on the
// same sender reuse the scratch without corrupting results and do not
// allocate once warm.
func TestMissingScratchReuseIsStable(t *testing.T) {
	p := NewPure()
	a := mkNode(p, 0, 30)
	b := mkNode(p, 1, 30)
	for s := 1; s <= 12; s++ {
		give(t, a, 0, s, 1, 0)
	}
	first := append([]bundle.ID(nil), missing(a, b, nil)...)
	for i := 0; i < 5; i++ {
		again := missing(a, b, nil)
		if len(again) != len(first) {
			t.Fatalf("run %d: len %d, want %d", i, len(again), len(first))
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("run %d: %v, want %v", i, again, first)
			}
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { missing(a, b, nil) }); allocs != 0 {
		t.Errorf("warm missing() allocates %v/op, want 0", allocs)
	}
}
