package protocol

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"dtnsim/internal/spec"
)

// ErrSpec wraps every protocol-spec parsing failure, so callers can
// distinguish a malformed spec from a simulation error with errors.Is.
var ErrSpec = errors.New("protocol: invalid spec")

// Factory builds fresh instances of one parsed protocol configuration.
// Sweeps call New once per run; instances carry per-run state and are
// never shared.
type Factory struct {
	// Spec is the canonical spec string: Parse(Spec) yields a factory
	// with this same Spec, so specs round-trip.
	Spec string
	// Label is the display name used in figure legends; it defaults to
	// the protocol's Name().
	Label string
	// New constructs a fresh protocol instance.
	New func() Protocol
}

// SpecInfo documents one registered spec for listings (-list).
type SpecInfo struct {
	// Name is the registry key ("pq", "ttl", …).
	Name string
	// Usage is a one-line grammar-and-meaning summary.
	Usage string
}

// Parser turns the argument part of "name:args" into a Factory.
type Parser func(args string) (Factory, error)

// Registry maps spec names to protocol parsers. New variants register
// under a string key and become usable everywhere specs are accepted —
// scenario files, sweeps, the CLI — without touching callers.
type Registry struct {
	names   []string
	entries map[string]entry
}

type entry struct {
	usage string
	parse Parser
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]entry{}}
}

// Register adds a named parser. It panics on an empty or duplicate name:
// registration happens at package init time, where a collision is a
// programming error.
func (r *Registry) Register(name, usage string, p Parser) {
	if name == "" || p == nil {
		panic("protocol: Register requires a name and a parser")
	}
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("protocol: %q registered twice", name))
	}
	r.names = append(r.names, name)
	r.entries[name] = entry{usage: usage, parse: p}
}

// Names returns the registered spec names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Specs returns name and usage for every registered parser, in
// registration order.
func (r *Registry) Specs() []SpecInfo {
	out := make([]SpecInfo, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, SpecInfo{Name: n, Usage: r.entries[n].usage})
	}
	return out
}

// Parse resolves a spec string ("pq:p=0.8,q=0.5", "ttl:300",
// "cumimmunity") to a Factory. All failures — unknown name, malformed
// arguments, out-of-range parameters — are reported as errors wrapping
// ErrSpec; Parse never panics.
func (r *Registry) Parse(s string) (Factory, error) {
	name, args := spec.Split(s)
	if name == "" {
		return Factory{}, fmt.Errorf("%w: empty spec", ErrSpec)
	}
	e, ok := r.entries[name]
	if !ok {
		return Factory{}, fmt.Errorf("%w: unknown protocol %q (have %s)",
			ErrSpec, name, strings.Join(r.names, ", "))
	}
	f, err := e.parse(args)
	if err != nil {
		if errors.Is(err, ErrSpec) {
			return Factory{}, err
		}
		return Factory{}, fmt.Errorf("%w: %s: %v", ErrSpec, name, err)
	}
	if f.Label == "" {
		f.Label = f.New().Name()
	}
	return f, nil
}

// Default is the registry holding every protocol the paper studies. Its
// canonical specs are:
//
//	pure                      pure epidemic (Vahdat & Becker)
//	pq:p=P,q=Q[,anti]         (p,q)-epidemic (Matsuda & Takine)
//	ttl:SECONDS               epidemic with constant TTL (Harras et al.)
//	ec                        epidemic with encounter count (Davis et al.)
//	immunity                  epidemic with immunity tables (Mundur et al.)
//	dynttl[:mult=M]           dynamic TTL (paper Algorithm 1)
//	ecttl[:thresh=N,minec=N]  EC+TTL (paper Algorithm 2)
//	cumimmunity               cumulative immunity (paper §III)
var Default = builtinRegistry()

// Parse resolves a spec against the Default registry.
func Parse(s string) (Factory, error) { return Default.Parse(s) }

// BuiltinSpecs returns the canonical spec of every paper protocol in
// the paper's order: the §II families (with P-Q at P=Q=1 standing in
// for pure epidemic as in §V) followed by the §III enhancements.
func BuiltinSpecs() []string {
	return []string{
		"pure", "pq:p=1,q=1", "ttl:300", "ec", "immunity",
		"dynttl", "ecttl", "cumimmunity",
	}
}

func builtinRegistry() *Registry {
	r := NewRegistry()
	r.Register("pure", "pure — pure epidemic: flood everything, drop-tail when full",
		noArgFactory("pure", func() Protocol { return NewPure() }))
	r.Register("pq", "pq[:p=P,q=Q,anti] — (p,q)-epidemic; p, q in [0,1], default 1; anti enables the §II anti-packet channel",
		parsePQ)
	r.Register("ttl", "ttl[:SECONDS] — epidemic with a constant positive TTL, default 300",
		parseTTL)
	r.Register("ec", "ec — epidemic with encounter counts: evict the most-transmitted copy",
		noArgFactory("ec", func() Protocol { return NewEC() }))
	r.Register("immunity", "immunity — epidemic with per-bundle immunity tables",
		noArgFactory("immunity", func() Protocol { return NewImmunity() }))
	r.Register("dynttl", "dynttl[:mult=M] — dynamic TTL: M × last inter-encounter interval, default 2",
		parseDynTTL)
	r.Register("ecttl", "ecttl[:thresh=N,minec=N] — EC+TTL: EC-driven ageing past thresh (default 8), eviction guard minec (default 2)",
		parseECTTL)
	r.Register("cumimmunity", "cumimmunity — cumulative immunity: one table acknowledges a contiguous bundle prefix",
		noArgFactory("cumimmunity", func() Protocol { return NewCumulativeImmunity() }))
	return r
}

// noArgFactory builds a parser for protocols without parameters.
func noArgFactory(name string, newFn func() Protocol) Parser {
	return func(args string) (Factory, error) {
		if args != "" {
			return Factory{}, fmt.Errorf("takes no arguments, got %q", args)
		}
		return Factory{Spec: name, New: newFn}, nil
	}
}

func parsePQ(args string) (Factory, error) {
	ps, err := spec.Parse(args)
	if err != nil {
		return Factory{}, err
	}
	p, err := ps.Float("p", 1)
	if err != nil {
		return Factory{}, err
	}
	q, err := ps.Float("q", 1)
	if err != nil {
		return Factory{}, err
	}
	anti, err := ps.Flag("anti")
	if err != nil {
		return Factory{}, err
	}
	if err := ps.Unknown(); err != nil {
		return Factory{}, err
	}
	// The probability check NewPQ enforces by panicking, surfaced as an
	// error at the spec boundary.
	if p < 0 || p > 1 || q < 0 || q > 1 {
		return Factory{}, fmt.Errorf("probabilities out of [0,1]: p=%g q=%g", p, q)
	}
	canon := "pq:" + spec.Canonical(
		[2]string{"p", strconv.FormatFloat(p, 'g', -1, 64)},
		[2]string{"q", strconv.FormatFloat(q, 'g', -1, 64)},
	)
	if anti {
		canon += ",anti"
	}
	return Factory{
		Spec: canon,
		New: func() Protocol {
			pr := NewPQ(p, q)
			if anti {
				pr.WithAntiPackets()
			}
			return pr
		},
	}, nil
}

// parseTTL accepts the TTL positionally ("ttl:300"); no argument means
// the paper's comparative value of 300 s.
func parseTTL(args string) (Factory, error) {
	ttl := 300.0
	if args != "" {
		v, err := strconv.ParseFloat(args, 64)
		if err != nil {
			return Factory{}, fmt.Errorf("%q is not a TTL in seconds", args)
		}
		ttl = v
	}
	// NewTTL's positivity panic, surfaced as an error (NaN and ±Inf
	// included: NaN passes a `<= 0` test but is no deadline at all).
	if !(ttl > 0) || ttl > 1e17 {
		return Factory{}, fmt.Errorf("TTL must be a positive finite number of seconds, got %g", ttl)
	}
	return Factory{
		Spec: "ttl:" + strconv.FormatFloat(ttl, 'g', -1, 64),
		New:  func() Protocol { return NewTTL(ttl) },
	}, nil
}

func parseDynTTL(args string) (Factory, error) {
	ps, err := spec.Parse(args)
	if err != nil {
		return Factory{}, err
	}
	mult, err := ps.Float("mult", 2)
	if err != nil {
		return Factory{}, err
	}
	if err := ps.Unknown(); err != nil {
		return Factory{}, err
	}
	if mult <= 0 {
		return Factory{}, fmt.Errorf("mult must be positive, got %g", mult)
	}
	canon := "dynttl"
	if mult != 2 {
		canon = "dynttl:mult=" + strconv.FormatFloat(mult, 'g', -1, 64)
	}
	return Factory{
		Spec: canon,
		New:  func() Protocol { return &DynamicTTL{Multiplier: mult} },
	}, nil
}

func parseECTTL(args string) (Factory, error) {
	ps, err := spec.Parse(args)
	if err != nil {
		return Factory{}, err
	}
	def := NewECTTL()
	thresh, err := ps.Int("thresh", def.ECThreshold)
	if err != nil {
		return Factory{}, err
	}
	minEC, err := ps.Int("minec", def.MinEC)
	if err != nil {
		return Factory{}, err
	}
	if err := ps.Unknown(); err != nil {
		return Factory{}, err
	}
	if thresh < 0 || minEC < 0 {
		return Factory{}, fmt.Errorf("thresh and minec must be non-negative, got thresh=%d minec=%d", thresh, minEC)
	}
	var pairs [][2]string
	if thresh != def.ECThreshold {
		pairs = append(pairs, [2]string{"thresh", strconv.Itoa(thresh)})
	}
	if minEC != def.MinEC {
		pairs = append(pairs, [2]string{"minec", strconv.Itoa(minEC)})
	}
	canon := "ecttl"
	if len(pairs) > 0 {
		canon += ":" + spec.Canonical(pairs...)
	}
	return Factory{
		Spec: canon,
		New: func() Protocol {
			pr := NewECTTL()
			pr.ECThreshold = thresh
			pr.MinEC = minEC
			return pr
		},
	}, nil
}
