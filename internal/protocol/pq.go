package protocol

import (
	"fmt"

	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// PQ is Matsuda & Takine's (p,q)-epidemic routing: at each transmission
// opportunity a source node forwards its own bundles with probability P
// and relays forward carried bundles with probability Q. With P=Q=1 it
// degenerates to pure epidemic — the configuration the paper evaluates.
//
// The paper's §II description pairs P-Q with anti-packets, but its
// results section explicitly models it without any purge mechanism
// ("the protocol does not have any mechanism to purge these bundles",
// Fig. 11). AntiPackets restores the §II behaviour; it defaults to off
// to match the evaluated variant (DESIGN.md §3.6).
type PQ struct {
	P, Q float64
	// AntiPackets enables the §II immunity-style purge channel.
	AntiPackets bool
	// RecordSlotFraction is the buffer cost of one stored anti-packet in
	// bundle slots, used only when AntiPackets is set.
	RecordSlotFraction float64

	imm *Immunity // backing implementation when AntiPackets is set
}

// NewPQ returns a P-Q epidemic instance. P and Q must lie in [0,1].
func NewPQ(p, q float64) *PQ {
	if p < 0 || p > 1 || q < 0 || q > 1 {
		panic(fmt.Sprintf("protocol: P-Q probabilities out of range: P=%v Q=%v", p, q))
	}
	return &PQ{P: p, Q: q}
}

// WithAntiPackets enables the §II anti-packet channel and returns the
// receiver for chaining.
func (p *PQ) WithAntiPackets() *PQ {
	p.AntiPackets = true
	p.imm = NewImmunity()
	if p.RecordSlotFraction != 0 {
		p.imm.RecordSlotFraction = p.RecordSlotFraction
	}
	return p
}

// Name implements Protocol.
func (p *PQ) Name() string {
	if p.AntiPackets {
		return fmt.Sprintf("P-Q epidemic (P=%g,Q=%g,anti-packets)", p.P, p.Q)
	}
	return fmt.Sprintf("P-Q epidemic (P=%g,Q=%g)", p.P, p.Q)
}

// Init implements Protocol.
func (p *PQ) Init(n *node.Node) {
	if p.AntiPackets {
		p.imm.Init(n)
	}
}

// OnGenerate implements Protocol.
func (*PQ) OnGenerate(_ *node.Node, cp *bundle.Copy, _ sim.Time) {
	cp.Expiry = sim.Infinity
}

// Exchange implements Protocol: without anti-packets the control session
// is just the summary-vector swap.
func (p *PQ) Exchange(a, b *node.Node, now sim.Time, recordBudget int) {
	if p.AntiPackets {
		p.imm.Exchange(a, b, now, recordBudget)
	}
}

// Wants implements Protocol: each missing bundle is offered with
// probability P when this node originated it, Q otherwise, re-drawn at
// every transmission opportunity (§II-B).
func (p *PQ) Wants(sender, receiver *node.Node, now sim.Time, rng *sim.RNG) []bundle.ID {
	candidates := missing(sender, receiver, rng)
	out := candidates[:0]
	for _, id := range candidates {
		prob := p.Q
		if id.Src == sender.ID {
			prob = p.P
		}
		if rng.Bool(prob) {
			out = append(out, id)
		}
	}
	return out
}

// OnTransmit implements Protocol.
func (*PQ) OnTransmit(_, _ *node.Node, _, _ *bundle.Copy, _ sim.Time) {}

// Admit implements Protocol: drop-tail, as in pure epidemic.
func (*PQ) Admit(receiver *node.Node, incoming *bundle.Copy, now sim.Time) bool {
	if receiver.Store.Free() <= 0 {
		receiver.NoteRefused(incoming.Bundle.ID, now)
		return false
	}
	return true
}

// OnDelivered implements Protocol.
func (p *PQ) OnDelivered(dst, sender *node.Node, id bundle.ID, now sim.Time) {
	if p.AntiPackets {
		p.imm.OnDelivered(dst, sender, id, now)
	}
}
