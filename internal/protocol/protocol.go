// Package protocol implements every epidemic routing protocol the paper
// studies (§II) and the three enhancements it proposes (§III):
//
//	Pure epidemic          (Vahdat & Becker)        pure.go
//	P-Q epidemic           (Matsuda & Takine)       pq.go
//	Epidemic with TTL      (Harras et al.)          ttl.go
//	Epidemic with EC       (Davis et al.)           ec.go
//	Epidemic with immunity (Mundur et al.)          immunity.go
//	Dynamic TTL            (paper Algorithm 1)      dynttl.go
//	EC+TTL                 (paper Algorithm 2)      ecttl.go
//	Cumulative immunity    (paper §III)             cumimmunity.go
//
// Protocols are pure policy: the engine (internal/core) owns time, links
// and budgets, and calls the hooks below at well-defined points of each
// contact. All hooks are single-goroutine.
package protocol

import (
	"dtnsim/internal/bundle"
	"dtnsim/internal/node"
	"dtnsim/internal/sim"
)

// Protocol is the policy interface every epidemic variant implements.
//
// Hook order within one contact between nodes a (lower ID) and b:
//
//  1. Init was called once per node at simulation start.
//  2. Exchange(a, b, …) — the anti-entropy control session: summary
//     vectors are implicit (Wants may inspect the peer), immunity
//     variants merge tables here, bounded by recordBudget per direction.
//  3. Wants(a, b, …) then per-bundle transmission; Wants(b, a, …) with
//     the remaining slot budget.
//  4. Per transmission: OnTransmit on the copies; then either the
//     engine records a delivery and calls OnDelivered, or it calls
//     Admit on the receiver and stores the accepted copy.
type Protocol interface {
	// Name returns the protocol's display name as used in the paper's
	// figure legends.
	Name() string

	// Init attaches per-node protocol state before the run starts.
	Init(n *node.Node)

	// OnGenerate initializes protocol state (TTL, EC) on a copy newly
	// created at its source. The copy is pinned by the engine.
	OnGenerate(src *node.Node, cp *bundle.Copy, now sim.Time)

	// Exchange runs the control plane of an encounter in both
	// directions. recordBudget bounds how many control records each
	// direction may carry (the engine derives it from the contact
	// duration). Implementations update node.ControlSent and may purge
	// buffers.
	Exchange(a, b *node.Node, now sim.Time, recordBudget int)

	// Wants returns the bundle IDs sender should offer receiver, in
	// transmission order. The engine transmits a prefix of this list
	// bounded by the remaining slot budget. The returned slice may be
	// backed by the sender's reusable scratch memory: it is valid only
	// until the sender's next Wants call, and callers must copy it to
	// retain it.
	Wants(sender, receiver *node.Node, now sim.Time, rng *sim.RNG) []bundle.ID

	// OnTransmit updates copy state for one transmission: sent is the
	// sender's copy, rcpt the receiver-bound clone. Called for both
	// relay and destination receivers.
	OnTransmit(sender, receiver *node.Node, sent, rcpt *bundle.Copy, now sim.Time)

	// Admit makes room for an incoming copy at a relay, evicting
	// according to the protocol's buffer policy. It returns true if the
	// receiver should store the copy. The engine guarantees the
	// receiver does not already hold the bundle and is not its
	// destination.
	Admit(receiver *node.Node, incoming *bundle.Copy, now sim.Time) bool

	// OnDelivered notifies the protocol that a bundle just reached its
	// destination dst via sender (link-layer acknowledgment). Immunity
	// variants update tables and purge here.
	OnDelivered(dst, sender *node.Node, id bundle.ID, now sim.Time)
}

// missing returns sender's stored bundles the receiver lacks, skipping
// bundles the receiver already consumed as destination. This is the
// anti-entropy diff every variant starts from.
//
// Ordering: bundles addressed to the receiver itself go first in
// sequence order — no implementation relays third-party traffic ahead
// of the peer's own, and lowest-sequence-first delivery fills reception
// gaps, which is what lets cumulative immunity advance its prefix. The
// remaining bundles are offered in random order: a summary vector is an
// unordered set, and randomized offers are what diversify relay buffers
// — with a fixed order every relay would fill with the same
// lowest-sequence bundles and bundles beyond the buffer size could
// never ride relays at all.
// The returned slice is backed by the sender's Scratch: it is valid
// until the sender's next Wants call, and callers may filter it in
// place. Store.Range walks the store's sorted index, so the direct
// prefix is already in ascending ID order — no re-sort happens here
// (TestMissingDirectPrefixOrder pins this).
//
//dtn:hotpath
func missing(sender, receiver *node.Node, rng *sim.RNG) []bundle.ID {
	sc := &sender.Scratch
	direct, relay := sc.Direct[:0], sc.Relay[:0]
	sender.Store.Range(func(cp *bundle.Copy) bool {
		id := cp.Bundle.ID
		if receiver.Store.Has(id) || receiver.Received.Has(id) {
			return true
		}
		if cp.Bundle.Dst == receiver.ID {
			direct = append(direct, cp)
		} else {
			relay = append(relay, cp)
		}
		return true
	})
	if rng != nil {
		rng.Shuffle(len(relay), func(i, j int) { relay[i], relay[j] = relay[j], relay[i] })
	}
	ids := sc.IDs[:0]
	for _, cp := range direct {
		ids = append(ids, cp.Bundle.ID)
	}
	for _, cp := range relay {
		ids = append(ids, cp.Bundle.ID)
	}
	sc.Direct, sc.Relay, sc.IDs = direct, relay, ids
	return ids
}
