package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// allow is one parsed //lint:allow annotation.
type allow struct {
	analyzer string
	reason   string
	line     int
	file     string
}

// suppressions scans a package's comments for
// //lint:allow <analyzer> <reason> annotations. An annotation
// suppresses diagnostics from <analyzer> on its own line and on the
// line immediately following (so it can sit on the statement or just
// above it). The reason is mandatory: an unexplained suppression is a
// diagnostic of its own.
func suppressions(pkg *Package) ([]allow, []Diagnostic) {
	var allows []allow
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					if strings.HasPrefix(c.Text, "//lint:allow") {
						pos := pkg.Fset.Position(c.Pos())
						bad = append(bad, Diagnostic{
							Analyzer: "suppress", Pos: pos, File: pos.Filename, Line: pos.Line,
							Message: "malformed suppression: want //lint:allow <analyzer> <reason>",
						})
					}
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				pos := pkg.Fset.Position(c.Pos())
				if name == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "suppress", Pos: pos, File: pos.Filename, Line: pos.Line,
						Message: "suppression without a reason: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				allows = append(allows, allow{
					analyzer: name, reason: strings.TrimSpace(reason),
					line: pos.Line, file: pos.Filename,
				})
			}
		}
	}
	return allows, bad
}

// Result is the outcome of running a set of analyzers over packages.
type Result struct {
	// Diagnostics holds every finding, suppressed ones included,
	// sorted by position. CI fails on any unsuppressed entry.
	Diagnostics []Diagnostic
	// AllowCounts is the number of //lint:allow annotations seen per
	// analyzer name, whether or not they matched a diagnostic —
	// the currency the budget file caps.
	AllowCounts map[string]int
}

// Run applies every analyzer (subject to its Match) to every package
// and resolves suppressions.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	res := &Result{AllowCounts: map[string]int{}}
	for _, pkg := range pkgs {
		allows, bad := suppressions(pkg)
		res.Diagnostics = append(res.Diagnostics, bad...)
		for _, a := range allows {
			res.AllowCounts[a.analyzer]++
		}
		for _, an := range analyzers {
			if an.Match != nil && !an.Match(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  an,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := an.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", an.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.Diagnostics() {
				d.File, d.Line = d.Pos.Filename, d.Pos.Line
				for _, a := range allows {
					if a.analyzer == d.Analyzer && a.file == d.File &&
						(a.line == d.Line || a.line == d.Line-1) {
						d.Suppressed, d.Reason = true, a.reason
						break
					}
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// Unsuppressed returns the findings CI must fail on.
func (r *Result) Unsuppressed() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Budget caps how many //lint:allow annotations the tree may carry, so
// suppressions cannot silently accumulate: every new allow must either
// fit the committed budget or raise it in the same reviewed change.
type Budget struct {
	// Total caps annotations across all analyzers.
	Total int `json:"total"`
	// Analyzers caps annotations per analyzer name. Analyzers absent
	// from the map default to 0 allowed.
	Analyzers map[string]int `json:"analyzers"`
}

// LoadBudget reads a committed budget file.
func LoadBudget(path string) (*Budget, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("analysis: budget %s: %v", path, err)
	}
	return &b, nil
}

// Check compares observed allow counts against the budget, returning
// one error line per violation.
func (b *Budget) Check(counts map[string]int) []string {
	var errs []string
	total := 0
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		total += counts[n]
		if max := b.Analyzers[n]; counts[n] > max {
			errs = append(errs, fmt.Sprintf("suppression budget exceeded for %s: %d //lint:allow annotations, budget %d", n, counts[n], max))
		}
	}
	if total > b.Total {
		errs = append(errs, fmt.Sprintf("total suppression budget exceeded: %d //lint:allow annotations, budget %d", total, b.Total))
	}
	return errs
}
