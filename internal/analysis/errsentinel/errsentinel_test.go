package errsentinel_test

import (
	"path/filepath"
	"testing"

	"dtnsim/internal/analysis/analysistest"
	"dtnsim/internal/analysis/errsentinel"
)

func TestErrSentinel(t *testing.T) {
	res := analysistest.Run(t, filepath.Join("testdata", "src", "a"), errsentinel.Analyzer)
	// Parse (2), CheckName, wrapsByEvidence, validate; CheckAlias
	// suppressed; helpers and plain functions stay clean.
	analysistest.MustFindings(t, res, 5)
	if got := res.AllowCounts["errsentinel"]; got != 1 {
		t.Errorf("AllowCounts[errsentinel] = %d, want 1", got)
	}
}
