// Package errsentinel keeps the registry error contract
// machine-checkable: spec/config resolution failures must wrap their
// package's sentinel (protocol.ErrSpec, mobility.ErrSpec,
// core.ErrConfig, buffer.ErrDropPolicy) with %w, so callers can
// distinguish a malformed user spec from a simulation failure with
// errors.Is. A boundary function that returns a bare fmt.Errorf or
// errors.New breaks every errors.Is test downstream — silently,
// because the message text still reads fine.
//
// Two kinds of function are bound to the contract:
//   - by name: Parse, Validate/validate, and Check* functions with an
//     error result, in a package that declares a qualifying sentinel;
//   - by evidence: any function that wraps a qualifying sentinel with
//     %w at least once — the rest of its error returns must be
//     consistent.
//
// Unexported helper parsers (parsePQ, …) stay free to return plain
// errors for the boundary to wrap.
package errsentinel

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"dtnsim/internal/analysis"
)

// sentinelNames are the spec/config boundary sentinels the contract
// covers. Operational sentinels (buffer.ErrFull, …) are not included:
// they are returned directly, never wrapped.
var sentinelNames = map[string]bool{
	"ErrSpec":       true,
	"ErrConfig":     true,
	"ErrDropPolicy": true,
}

// Analyzer is the errsentinel pass.
var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc:  "require spec/config boundary errors to wrap their Err* sentinel with %w",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	local := localSentinels(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			bound := len(local) > 0 && boundByName(fn, pass)
			if !bound && !wrapsSentinel(pass, fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// localSentinels finds qualifying package-level sentinel vars.
func localSentinels(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if sentinelNames[name] {
			out[scope.Lookup(name)] = true
		}
	}
	return out
}

// boundByName reports whether fn's name marks it as a spec/config
// boundary with an error result.
func boundByName(fn *ast.FuncDecl, pass *analysis.Pass) bool {
	name := fn.Name.Name
	if name != "Parse" && name != "Validate" && name != "validate" && !strings.HasPrefix(name, "Check") {
		return false
	}
	obj := pass.TypesInfo.Defs[fn.Name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// wrapsSentinel reports whether fn already wraps a qualifying
// sentinel with %w somewhere — evidence it participates in the
// contract.
func wrapsSentinel(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return true
		}
		if !isErrorf(pass, call) || !formatHasW(pass, call) {
			return true
		}
		for _, arg := range call.Args[1:] {
			if id, ok := unwrapSelector(arg); ok && sentinelNames[id] {
				found = true
			}
		}
		return true
	})
	return found
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		// Nested function literals (registry parser closures) are a
		// different boundary; skip them.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isErrorf(pass, call) && !formatHasW(pass, call) {
			pass.Reportf(call.Pos(), "%s returns a spec/config error without wrapping its sentinel: use fmt.Errorf(\"%%w: …\", Err…)", fn.Name.Name)
		}
		if isPkgFunc(pass, call, "errors", "New") {
			pass.Reportf(call.Pos(), "%s builds a spec/config error with errors.New; wrap the package sentinel with fmt.Errorf(\"%%w: …\") instead", fn.Name.Name)
		}
		return true
	})
}

func isErrorf(pass *analysis.Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass, call, "fmt", "Errorf")
}

func isPkgFunc(pass *analysis.Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	return ok && pn.Imported().Path() == pkg
}

// formatHasW reports whether the call's constant format string
// contains a %w verb. Non-constant formats pass: the analyzer cannot
// see them, and dynamic formats are rare at spec boundaries.
func formatHasW(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return true
	}
	return strings.Contains(constant.StringVal(tv.Value), "%w")
}

// unwrapSelector returns the terminal identifier name of expr when it
// is an ident or pkg.Ident selector.
func unwrapSelector(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		return x.Sel.Name, true
	}
	return "", false
}
