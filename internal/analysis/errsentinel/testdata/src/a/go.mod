module errsentinel.example

go 1.22
