// Package a exercises the errsentinel analyzer: boundary functions
// (Parse / validate / Check*, or any function that wraps a qualifying
// sentinel) must wrap ErrSpec/ErrConfig with %w in every error they
// build; unexported helpers stay free to return plain errors.
package a

import (
	"errors"
	"fmt"
)

// ErrSpec is the package's spec-boundary sentinel.
var ErrSpec = errors.New("a: invalid spec")

// ErrConfig is the package's config-boundary sentinel.
var ErrConfig = errors.New("a: invalid config")

// Parse is bound by name: every error it builds must wrap ErrSpec.
func Parse(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("%w: empty spec", ErrSpec)
	}
	if s == "bad" {
		return 0, fmt.Errorf("malformed spec %q", s) // want "without wrapping its sentinel"
	}
	if s == "worse" {
		return 0, errors.New("unparseable") // want "errors.New"
	}
	return len(s), nil
}

// CheckName is bound by the Check* prefix.
func CheckName(s string) error {
	if s == "" {
		return fmt.Errorf("empty name") // want "without wrapping its sentinel"
	}
	return nil
}

// parseInner is an unexported helper: the boundary wraps for it.
func parseInner(s string) error {
	return fmt.Errorf("inner failure %q", s)
}

// wrapsByEvidence is bound because it wraps ErrSpec once; its other
// error returns must stay consistent.
func wrapsByEvidence(s string) error {
	if s == "" {
		return fmt.Errorf("%w: empty", ErrSpec)
	}
	return fmt.Errorf("trailing garbage in %q", s) // want "without wrapping its sentinel"
}

// Config.validate is bound by name.
type Config struct{ N int }

func (c Config) validate() error {
	if c.N < 0 {
		return fmt.Errorf("negative N %d", c.N) // want "without wrapping its sentinel"
	}
	if c.N > 100 {
		return fmt.Errorf("%w: N %d out of range", ErrConfig, c.N)
	}
	return nil
}

// plainHelper is unbound: not a boundary name, wraps nothing.
func plainHelper() error { return errors.New("not a spec error") }

// CheckAlias demonstrates a counted, reasoned suppression.
func CheckAlias(s string) error {
	if s == "legacy" {
		//lint:allow errsentinel legacy message format pinned by CLI tests
		return fmt.Errorf("unknown alias %q", s) // want-suppressed "without wrapping"
	}
	return nil
}
