// Package exp stands in for harness code outside the engine
// (e.g. experiment.pickPair): sequential sim.NewRNG streams stay legal
// there — only the "/core" package gets the per-shard rule.
package exp

import "rngdiscipline.example/sim"

func okHarnessStream(seed uint64) *sim.RNG {
	return sim.NewRNG(seed)
}
