// Package dist stands in for the distributed coordinator: its import
// path ends in "/dist", so the engine-only sequential-stream rule
// applies — the coordinator ships engine execution into worker
// processes, and a sequential stream on either side would
// desynchronize them. Its one sanctioned wall-clock use, the
// process-shutdown watchdog, carries a budgeted suppression.
package dist

import (
	"time"

	"rngdiscipline.example/sim"
)

func flagSequentialStream(seed uint64) *sim.RNG {
	return sim.NewRNG(seed) // want "sim.NewRNG is banned in the engine"
}

func flagWallClock() int64 {
	return time.Now().Unix() // want "ambient nondeterminism"
}

// okReseedable is the sanctioned pattern, same as in the engine.
func okReseedable(run, a, b uint64) *sim.RNG {
	r := sim.NewReseedable()
	_ = sim.EncounterSeed(run, a, b)
	return r
}

// suppressedWatchdog mirrors the coordinator's process-reaping grace
// timer: wall clock, but only after the simulation has finished.
func suppressedWatchdog(stop func()) *time.Timer {
	//lint:allow rngdiscipline shutdown watchdog: runs after the simulation finished, cannot affect results
	return time.AfterFunc(5*time.Second, stop) // want-suppressed "ambient nondeterminism"
}
