module rngdiscipline.example

go 1.22
