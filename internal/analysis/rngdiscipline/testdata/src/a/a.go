// Package a exercises the rngdiscipline analyzer: ambient
// nondeterminism (math/rand, time.Now, environment reads) is flagged;
// deterministic uses of the same packages pass.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

func flagTopLevelRand() int {
	return rand.Intn(10) // want "math/rand is banned"
}

func flagSeededRand(seed int64) *rand.Rand { // want "math/rand is banned"
	return rand.New(rand.NewSource(seed)) // want "math/rand is banned" "math/rand is banned"
}

func flagRandV2() uint64 {
	return randv2.Uint64() // want "math/rand/v2 is banned"
}

func flagWallClock() int64 {
	return time.Now().Unix() // want "ambient nondeterminism"
}

func flagEnv() string {
	return os.Getenv("DTN_SEED") // want "ambient nondeterminism"
}

// okDuration uses time's constants, which are pure values.
func okDuration() time.Duration {
	return 5 * time.Second
}

// okSentinel touches os without reading ambient state.
func okSentinel() error {
	return os.ErrNotExist
}

func suppressedEnv() string {
	//lint:allow rngdiscipline documented debug escape hatch, never in sim runs
	return os.Getenv("DTN_TRACE_DIR") // want-suppressed "ambient nondeterminism"
}
