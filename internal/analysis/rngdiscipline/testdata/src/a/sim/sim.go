// Package sim stands in for dtnsim/internal/sim: the sanctioned RNG
// seam. The analyzer matches it by the "/sim" import-path suffix.
package sim

// RNG stands in for the seeded stream type.
type RNG struct{ s uint64 }

// NewRNG is the sequential-stream constructor the engine rule bans.
func NewRNG(seed uint64) *RNG { return &RNG{s: seed} }

// NewReseedable is the sanctioned engine constructor.
func NewReseedable() *RNG { return &RNG{} }

// EncounterSeed stands in for the per-encounter seed derivation.
func EncounterSeed(run, a, b uint64) uint64 { return run ^ a ^ b }
