// Package core exercises the engine-only rule: its import path ends in
// "/core", so sequential sim.NewRNG streams are banned while the
// reseedable per-encounter constructors pass.
package core

import "rngdiscipline.example/sim"

func flagSequentialStream(seed uint64) *sim.RNG {
	return sim.NewRNG(seed) // want "sim.NewRNG is banned in the engine"
}

// okReseedable is the sanctioned pattern: a retained reseedable
// generator repositioned per encounter.
func okReseedable(run, a, b uint64) *sim.RNG {
	r := sim.NewReseedable()
	_ = sim.EncounterSeed(run, a, b)
	return r
}
