package rngdiscipline_test

import (
	"path/filepath"
	"testing"

	"dtnsim/internal/analysis/analysistest"
	"dtnsim/internal/analysis/rngdiscipline"
)

func TestRNGDiscipline(t *testing.T) {
	res := analysistest.Run(t, filepath.Join("testdata", "src", "a"), rngdiscipline.Analyzer)
	// Seven banned uses across rand/rand-v2/time/os (the *rand.Rand
	// type reference counts: any tie to math/rand in simulation code is
	// a seam ambient state leaks in), plus the engine-only sim.NewRNG
	// ban exercised on both packages it governs — the core and dist
	// stand-ins — plus dist's own wall-clock finding. Each of the two
	// suppressions (a's env escape hatch, dist's shutdown watchdog) is
	// excluded from the finding count but tallied in AllowCounts.
	analysistest.MustFindings(t, res, 10)
	if got := res.AllowCounts["rngdiscipline"]; got != 2 {
		t.Errorf("AllowCounts[rngdiscipline] = %d, want 2", got)
	}
}

func TestMatchExemptsSimAndAnalysis(t *testing.T) {
	for pkg, want := range map[string]bool{
		"dtnsim/internal/core":              true,
		"dtnsim/internal/dist":              true,
		"dtnsim/internal/dist/frame":        true,
		"dtnsim/internal/mobility":          true,
		"dtnsim/internal/sim":               false,
		"dtnsim/internal/analysis/maporder": false,
		"dtnsim/internal/server":            false,
		"dtnsim/cmd/dtnsim":                 false,
	} {
		if got := rngdiscipline.Analyzer.Match(pkg); got != want {
			t.Errorf("Match(%q) = %v, want %v", pkg, got, want)
		}
	}
}
