// Package rngdiscipline forbids ambient nondeterminism in simulation
// packages: math/rand (v1 and v2) outside internal/sim, time.Now, and
// environment reads. Every random draw must flow through a sim.RNG
// stream derived from an explicit seed, and every input must arrive
// through configuration — the precondition for bit-identical replay.
//
// Inside the engine (internal/core) and the distributed coordinator
// (internal/dist) the discipline is one notch stricter: sim.NewRNG
// itself is banned there. The sharded executor (DESIGN.md §12) owes
// its bit-identical-for-every-shard-count contract to per-encounter
// reseeding — every draw's stream position derives from
// sim.EncounterSeed on a sim.NewReseedable generator, so any worker
// replays any encounter identically. A sequentially-drawn sim.NewRNG
// stream in engine code would order draws by execution history and
// desynchronize the executors; internal/dist ships that exact engine
// code into worker processes (DESIGN.md §13), so it is held to the
// same rule — its one legitimate wall-clock use, the process-shutdown
// watchdog, rides a budgeted //lint:allow. Harness code outside the
// engine (e.g. experiment.pickPair) may still draw sequential streams.
package rngdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"dtnsim/internal/analysis"
)

// Analyzer is the rngdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "rngdiscipline",
	Doc:  "forbid math/rand, time.Now, and os.Getenv in simulation packages; randomness flows through sim.RNG",
	Run:  run,
	Match: func(pkgPath string) bool {
		// Every simulation package except internal/sim itself, whose
		// RNG type is the sanctioned math/rand/v2 wrapper, the
		// analysis tree, and internal/server: the service layer lives
		// at the wall-clock boundary (HTTP deadlines, job timeouts)
		// and runs the engine as a black box — nothing it does can
		// reach the simulation's RNG or virtual clock.
		if !strings.HasPrefix(pkgPath, "dtnsim/internal/") {
			return false
		}
		return pkgPath != "dtnsim/internal/sim" &&
			!strings.HasPrefix(pkgPath, "dtnsim/internal/analysis") &&
			pkgPath != "dtnsim/internal/server"
	},
}

// banned maps package path → function names that may not be called;
// an empty list bans every use of the package.
var banned = map[string][]string{
	"math/rand":    nil,
	"math/rand/v2": nil,
	"time":         {"Now", "Since", "Until", "Tick", "After", "AfterFunc"},
	"os":           {"Getenv", "LookupEnv", "Environ", "ExpandEnv"},
}

func run(pass *analysis.Pass) error {
	// The engine and the distributed coordinator get the per-shard rule;
	// suffix matching keeps the rule testable from a self-contained
	// testdata module.
	inEngine := strings.HasSuffix(pass.Pkg.Path(), "/core") ||
		strings.HasSuffix(pass.Pkg.Path(), "/dist")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if inEngine && strings.HasSuffix(path, "/sim") && sel.Sel.Name == "NewRNG" {
				pass.Reportf(sel.Pos(), "sim.NewRNG is banned in the engine: sequential streams order draws by execution history; derive per-encounter streams with sim.NewReseedable + sim.EncounterSeed so any shard replays any encounter identically")
			}
			names, bannedPkg := banned[path]
			if !bannedPkg {
				return true
			}
			if names == nil {
				pass.Reportf(sel.Pos(), "%s.%s: %s is banned in simulation packages; draw through a seeded sim.RNG stream",
					pkgID.Name, sel.Sel.Name, path)
				return true
			}
			for _, bad := range names {
				if sel.Sel.Name == bad {
					pass.Reportf(sel.Pos(), "%s.%s is ambient nondeterminism; thread virtual time / configuration through the engine instead",
						pkgID.Name, sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
