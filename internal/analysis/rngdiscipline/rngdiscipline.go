// Package rngdiscipline forbids ambient nondeterminism in simulation
// packages: math/rand (v1 and v2) outside internal/sim, time.Now, and
// environment reads. Every random draw must flow through a sim.RNG
// stream derived from an explicit seed, and every input must arrive
// through configuration — the precondition for bit-identical replay
// today and for per-shard RNG streams in the sharded engine (ROADMAP
// item 1), where a single global generator would serialize shards and
// a stray ambient draw would desynchronize them.
package rngdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"dtnsim/internal/analysis"
)

// Analyzer is the rngdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "rngdiscipline",
	Doc:  "forbid math/rand, time.Now, and os.Getenv in simulation packages; randomness flows through sim.RNG",
	Run:  run,
	Match: func(pkgPath string) bool {
		// Every simulation package except internal/sim itself, whose
		// RNG type is the sanctioned math/rand/v2 wrapper, the
		// analysis tree, and internal/server: the service layer lives
		// at the wall-clock boundary (HTTP deadlines, job timeouts)
		// and runs the engine as a black box — nothing it does can
		// reach the simulation's RNG or virtual clock.
		if !strings.HasPrefix(pkgPath, "dtnsim/internal/") {
			return false
		}
		return pkgPath != "dtnsim/internal/sim" &&
			!strings.HasPrefix(pkgPath, "dtnsim/internal/analysis") &&
			pkgPath != "dtnsim/internal/server"
	},
}

// banned maps package path → function names that may not be called;
// an empty list bans every use of the package.
var banned = map[string][]string{
	"math/rand":    nil,
	"math/rand/v2": nil,
	"time":         {"Now", "Since", "Until", "Tick", "After", "AfterFunc"},
	"os":           {"Getenv", "LookupEnv", "Environ", "ExpandEnv"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			names, bannedPkg := banned[path]
			if !bannedPkg {
				return true
			}
			if names == nil {
				pass.Reportf(sel.Pos(), "%s.%s: %s is banned in simulation packages; draw through a seeded sim.RNG stream",
					pkgID.Name, sel.Sel.Name, path)
				return true
			}
			for _, bad := range names {
				if sel.Sel.Name == bad {
					pass.Reportf(sel.Pos(), "%s.%s is ambient nondeterminism; thread virtual time / configuration through the engine instead",
						pkgID.Name, sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
