module hotpathalloc.example

go 1.22
