// Package a exercises the hotpathalloc analyzer: allocation-prone
// constructs inside //dtn:hotpath functions are flagged, the same
// constructs in unannotated code pass, and scratch-buffer idioms
// (append into caller-owned storage) pass inside hot paths.
package a

import (
	"container/heap"
	"fmt"
)

type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func walk(xs []int, fn func(int)) {
	for _, x := range xs {
		fn(x)
	}
}

//dtn:hotpath
func flagFmt(id int) string {
	return fmt.Sprintf("bundle-%d", id) // want "fmt.Sprintf"
}

//dtn:hotpath
func flagHeapBoxing(h *intHeap, v int) {
	heap.Push(h, v) // want "heap.Push"
}

//dtn:hotpath
func flagStoredClosure(xs []int, limit int) func() int {
	n := 0
	pred := func() int { // want "capturing xs" "capturing limit" "capturing n"
		if len(xs) > limit {
			return n
		}
		return 0
	}
	return pred
}

// okArgClosure passes its capturing literal directly as a call
// argument — the stack-allocated scratch idiom.
//
//dtn:hotpath
func okArgClosure(xs []int, limit int) int {
	n := 0
	walk(xs, func(x int) {
		if x < limit {
			n++
		}
	})
	return n
}

//dtn:hotpath
func flagMake(n int) map[int]bool {
	return make(map[int]bool, n) // want "allocates with make"
}

//dtn:hotpath
func flagNew() *int {
	return new(int) // want "allocates with new"
}

//dtn:hotpath
func flagGrowingReturn(xs []int) []int {
	var out []int
	for _, x := range xs {
		if x > 0 {
			out = append(out, x) // want "grows returned slice out"
		}
	}
	return out
}

// okUnannotated may format freely: the check is annotation-driven.
func okUnannotated(id int) string {
	return fmt.Sprintf("bundle-%d", id)
}

// okScratchAppend appends into a caller-owned buffer, the PR-3 scratch
// idiom: no growth from zero capacity, nothing escapes that was not
// already heap-resident.
//
//dtn:hotpath
func okScratchAppend(dst, xs []int) []int {
	dst = dst[:0]
	for _, x := range xs {
		dst = append(dst, x)
	}
	return dst
}

// okPanicFmt formats only on its crash path: a fmt call passed
// directly to panic never allocates in steady state.
//
//dtn:hotpath
func okPanicFmt(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n))
	}
}

//dtn:hotpath
func suppressedFmt(id int) string {
	//lint:allow hotpathalloc cold error path, benchguard pins 0 allocs steady-state
	return fmt.Sprintf("bundle-%d", id) // want-suppressed "fmt.Sprintf"
}
