// Package hotpathalloc guards functions annotated with a
// `//dtn:hotpath` doc-comment line against allocation-prone
// constructs. PR 3/4 made the per-contact path allocation-free
// (benchguard pins 0 allocs/op dynamically); this pass catches the
// regression at review time instead of bench time, and names the
// construct instead of a byte count.
//
// Inside an annotated function it reports:
//   - fmt formatting calls (interface boxing + buffer allocation)
//   - container/heap operations (box every element into interface{})
//   - closure literals that capture enclosing variables and are
//     stored or returned (captured variables move to the heap);
//     literals passed directly as call arguments are exempt — they
//     stay stack-allocated when the callee's parameter does not
//     escape, the scratch idiom benchguard pins at 0 allocs/op
//   - make() of maps/slices and new() (fresh allocations per call)
//   - append to a locally-declared capacity-less slice that the
//     function returns (grows an escaping backing array)
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dtnsim/internal/analysis"
)

// Marker is the doc-comment line that opts a function into the check.
const Marker = "//dtn:hotpath"

// Analyzer is the hotpathalloc pass. It is annotation-driven, so it
// runs everywhere: unannotated code is never flagged.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocation-prone constructs inside //dtn:hotpath-annotated functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !annotated(fn) {
				continue
			}
			check(pass, fn)
		}
	}
	return nil
}

func annotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}

func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	returned := returnedIdents(pass, fn)
	// Closure literals in argument position (sort.Search(func…),
	// Store.Range(func…)) stay on the stack when the callee's
	// parameter does not escape — the PR-3 scratch idiom benchguard
	// pins at 0 allocs/op — so only stored/returned literals are
	// capture-checked. Immediately-invoked literals are their Fun.
	callPos := map[*ast.FuncLit]bool{}
	// Formatting that feeds directly into panic() is a crash path:
	// the arguments evaluate only when the invariant is already
	// broken, so the allocation never happens in steady state.
	panicArg := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			callPos[lit] = true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
				for _, a := range call.Args {
					if inner, ok := a.(*ast.CallExpr); ok {
						panicArg[inner] = true
					}
				}
			}
		}
		for _, a := range call.Args {
			if lit, ok := a.(*ast.FuncLit); ok {
				callPos[lit] = true
			}
		}
		return true
	})
	var funcLits []*ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if !callPos[x] {
				checkCapture(pass, fn, x)
			}
			funcLits = append(funcLits, x)
			return true
		case *ast.CallExpr:
			if !panicArg[x] {
				checkCall(pass, fn, x, returned, funcLits)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, returned map[types.Object]bool, lits []*ast.FuncLit) {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		pkgID, ok := f.X.(*ast.Ident)
		if !ok {
			return
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return
		}
		switch pn.Imported().Path() {
		case "fmt":
			pass.Reportf(call.Pos(), "hot path %s calls fmt.%s, which allocates for formatting; precompute or move the message off the hot path",
				fn.Name.Name, f.Sel.Name)
		case "container/heap":
			pass.Reportf(call.Pos(), "hot path %s calls heap.%s, which boxes elements into interface{}; use a concrete-typed heap like sim.Queue",
				fn.Name.Name, f.Sel.Name)
		}
	case *ast.Ident:
		if _, builtin := pass.TypesInfo.Uses[f].(*types.Builtin); !builtin {
			return
		}
		switch f.Name {
		case "make":
			pass.Reportf(call.Pos(), "hot path %s allocates with make; reuse a scratch buffer sized once at setup", fn.Name.Name)
		case "new":
			pass.Reportf(call.Pos(), "hot path %s allocates with new; reuse preallocated state", fn.Name.Name)
		case "append":
			checkAppend(pass, fn, call, returned, lits)
		}
	}
}

// checkAppend flags append calls that grow a capacity-less local slice
// the function returns: each growth reallocates an escaping backing
// array. Appends into scratch buffers (declared elsewhere, or sliced
// from existing storage like sc.Direct[:0]) pass.
func checkAppend(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, returned map[types.Object]bool, lits []*ast.FuncLit) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || !returned[obj] {
		return
	}
	// Inside a closure the append may be growing the outer function's
	// returned slice; same failure mode, same report.
	if declaredWithoutCap(pass, fn, obj) {
		pass.Reportf(call.Pos(), "hot path %s grows returned slice %s from zero capacity; preallocate with a capacity estimate",
			fn.Name.Name, id.Name)
	}
}

// declaredWithoutCap reports whether obj is declared inside fn as a
// slice with no backing capacity: `var s []T`, `s := []T{}`, or
// `s := make([]T, 0)`.
func declaredWithoutCap(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) bool {
	if obj.Pos() < fn.Pos() || obj.Pos() > fn.End() {
		return false
	}
	if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
		return false
	}
	capless := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.ValueSpec: // var s []T
			for i, name := range d.Names {
				if pass.TypesInfo.ObjectOf(name) != obj {
					continue
				}
				if len(d.Values) == 0 {
					capless = true
				} else if i < len(d.Values) {
					capless = caplessExpr(pass, d.Values[i])
				}
			}
		case *ast.AssignStmt: // s := []T{} / make([]T, 0)
			if d.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range d.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.ObjectOf(lid) != obj || i >= len(d.Rhs) {
					continue
				}
				capless = caplessExpr(pass, d.Rhs[i])
			}
		}
		return true
	})
	return capless
}

// caplessExpr recognizes initializers with no useful capacity: nil,
// empty composite literals, and 2-argument make with a zero length.
func caplessExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.CompositeLit:
		return len(x.Elts) == 0
	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
			return false
		}
		if len(x.Args) >= 3 {
			return false // explicit capacity
		}
		if len(x.Args) == 2 {
			if tv, ok := pass.TypesInfo.Types[x.Args[1]]; ok && tv.Value != nil {
				return tv.Value.String() == "0"
			}
		}
		return false
	}
	return false
}

// returnedIdents collects objects that appear in fn's return
// statements or are named results — the escape set the append check
// tests against.
func returnedIdents(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// checkCapture reports closure literals that capture variables from
// the enclosing function: captured variables move to the heap, and
// the closure header itself allocates when it escapes.
func checkCapture(pass *analysis.Pass, fn *ast.FuncDecl, lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// A capture is a variable declared in the enclosing function
		// but outside this literal (parameters included).
		if v.Pos() >= fn.Pos() && v.Pos() <= fn.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			seen[v] = true
			pass.Reportf(lit.Pos(), "hot path %s builds a closure capturing %s; captured variables escape to the heap — pass state explicitly or hoist the closure to setup",
				fn.Name.Name, v.Name())
		}
		return true
	})
}
