package hotpathalloc_test

import (
	"path/filepath"
	"testing"

	"dtnsim/internal/analysis/analysistest"
	"dtnsim/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	res := analysistest.Run(t, filepath.Join("testdata", "src", "a"), hotpathalloc.Analyzer)
	// fmt, heap, three captures, make, new, growing append; fmt again
	// suppressed. Unannotated and scratch-idiom functions stay clean.
	analysistest.MustFindings(t, res, 8)
	if got := res.AllowCounts["hotpathalloc"]; got != 1 {
		t.Errorf("AllowCounts[hotpathalloc] = %d, want 1", got)
	}
}
