package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	// Filenames are the absolute paths of Files, in order.
	Filenames []string
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load type-checks the non-test Go source of every package matching
// patterns, resolving imports from compiler export data so no network
// or vendored dependency is needed. It shells out to
// `go list -export -deps -json`, which compiles dependencies with the
// local toolchain and reports the export-data file of every package in
// the closure; target packages (the pattern matches inside the module
// rooted at dir) are then parsed and type-checked from source with a
// gc importer whose lookup hook serves those files.
//
// Test files are deliberately excluded: the analyzers enforce
// production invariants, and golden/property tests legitimately use
// constructs (map ranges over expectation tables, fmt in messages)
// the checks would flag.
func Load(dir string, patterns ...string) ([]*Package, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-deps", "-json"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	// One JSON object per package, concatenated.
	var deps []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		deps = append(deps, p)
	}

	// A second, non-deps listing identifies which packages the
	// patterns actually name (the -deps closure includes the whole
	// import graph).
	cmd = exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	cmd.Dir = dir
	cmd.Stderr = &stderr
	out, err = cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	targets := map[string]bool{}
	dec = json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		targets[p.ImportPath] = true
	}

	exports := map[string]string{}
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range deps {
		if !targets[p.ImportPath] || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp listPackage) (*Package, error) {
	var files []*ast.File
	var names []string
	for _, f := range lp.GoFiles {
		path := filepath.Join(lp.Dir, f)
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", path, err)
		}
		files = append(files, af)
		names = append(names, path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      fset,
		Files:     files,
		Filenames: names,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
