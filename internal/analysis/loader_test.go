package analysis

import (
	"go/ast"
	"testing"
)

// TestLoadTypeChecks proves the export-data loader round-trips: a
// module package is parsed from source, its imports (stdlib and
// in-module) resolve from compiler export data, and the resulting
// TypesInfo answers type queries — all offline, with no dependency
// beyond the go toolchain.
func TestLoadTypeChecks(t *testing.T) {
	pkgs, err := Load("", "dtnsim/internal/spec", "dtnsim/internal/protocol")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	spec := byPath["dtnsim/internal/spec"]
	if spec == nil {
		t.Fatal("dtnsim/internal/spec not loaded")
	}
	// Types must be resolved, not just parsed: find the Params struct.
	obj := spec.Types.Scope().Lookup("Params")
	if obj == nil {
		t.Fatal("spec.Params not found in type-checked scope")
	}
	// The protocol package imports spec from export data; its Parse
	// must be present and the files must carry comments (analyzers
	// read annotations from them).
	prot := byPath["dtnsim/internal/protocol"]
	if prot == nil || prot.Types.Scope().Lookup("Parse") == nil {
		t.Fatal("protocol.Parse not found")
	}
	comments := 0
	for _, f := range prot.Files {
		comments += len(f.Comments)
	}
	if comments == 0 {
		t.Fatal("no comments parsed; analyzers need ParseComments")
	}
	// TypesInfo must map identifiers to objects.
	found := false
	for _, f := range spec.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && spec.TypesInfo.Uses[id] != nil {
				found = true
				return false
			}
			return true
		})
	}
	if !found {
		t.Fatal("TypesInfo.Uses empty")
	}
}
