// Package analysistest runs one analyzer over a self-contained
// testdata module and checks its diagnostics against // want
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest
// so the suites translate directly if the upstream framework is ever
// vendored.
//
// Conventions, mirroring upstream where possible:
//
//	x := ...       // want "substring of the expected message"
//	y := ...       // want-suppressed "matched by a //lint:allow"
//
// Every want must be satisfied by a diagnostic on its line, and every
// diagnostic must be claimed by a want — unexpected findings fail the
// test, which is what makes the negative (clean-code) cases real
// assertions rather than vacuous passes.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"dtnsim/internal/analysis"
)

var wantRE = regexp.MustCompile(`// (want(?:-suppressed)?) (.+)$`)
var quoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file       string
	line       int
	substr     string
	suppressed bool
	met        bool
}

// Run loads the testdata module rooted at srcDir, applies a (Match is
// bypassed: testdata module paths never match production package
// paths), resolves //lint:allow suppressions, and checks // want
// expectations. It returns the Result for extra assertions (allow
// counts, totals).
func Run(t *testing.T, srcDir string, a *analysis.Analyzer) *analysis.Result {
	t.Helper()
	pkgs, err := analysis.Load(srcDir, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", srcDir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", srcDir)
	}
	unmatched := *a
	unmatched.Match = nil
	res, err := analysis.Run(pkgs, []*analysis.Analyzer{&unmatched})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for i, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range quoted.FindAllStringSubmatch(m[2], -1) {
						wants = append(wants, &expectation{
							file:       pkg.Filenames[i],
							line:       pos.Line,
							substr:     q[1],
							suppressed: m[1] == "want-suppressed",
						})
					}
				}
			}
		}
	}

	claimed := make([]bool, len(res.Diagnostics))
	for _, w := range wants {
		for i, d := range res.Diagnostics {
			if claimed[i] || d.File != w.file || d.Line != w.line {
				continue
			}
			if d.Suppressed != w.suppressed || !strings.Contains(d.Message, w.substr) {
				continue
			}
			w.met, claimed[i] = true, true
			break
		}
		if !w.met {
			t.Errorf("%s:%d: no %sdiagnostic matching %q (analyzer %s)",
				w.file, w.line, suppressedLabel(w.suppressed), w.substr, a.Name)
		}
	}
	for i, d := range res.Diagnostics {
		if !claimed[i] {
			t.Errorf("%s:%d: unexpected %sdiagnostic: %s",
				d.File, d.Line, suppressedLabel(d.Suppressed), d.Message)
		}
	}
	return res
}

func suppressedLabel(s bool) string {
	if s {
		return "suppressed "
	}
	return ""
}

// MustFindings asserts the result carries exactly n unsuppressed
// findings — a guard for suites whose wants are all inline.
func MustFindings(t *testing.T, res *analysis.Result, n int) {
	t.Helper()
	if got := len(res.Unsuppressed()); got != n {
		var lines []string
		for _, d := range res.Unsuppressed() {
			lines = append(lines, fmt.Sprintf("  %s:%d: %s", d.File, d.Line, d.Message))
		}
		t.Errorf("got %d unsuppressed findings, want %d\n%s", got, n, strings.Join(lines, "\n"))
	}
}
