// Package analysis is a self-contained static-analysis framework
// mirroring the API shape of golang.org/x/tools/go/analysis, built on
// the standard library only (go/ast, go/types, and the go toolchain's
// export data) so the repository carries no external dependency.
//
// The project's correctness story is bit-identical determinism: golden
// grids and streamed-vs-materialized equivalence tests sample it
// dynamically, but only at the cells they pin. The analyzers in the
// subpackages (maporder, rngdiscipline, hotpathalloc, errsentinel)
// prove the underlying invariants over the whole tree — every map
// iteration order-insensitive, every random draw flowing through
// sim.RNG seed streams, every annotated hot path free of
// allocation-prone constructs, every spec/config error wrapping its
// sentinel — which is the precondition for the sharded-engine refactor
// (ROADMAP item 1) where per-shard RNG streams and order-independent
// merges must hold globally, not just where a golden looks.
//
// cmd/dtnlint composes the analyzers into a multichecker; DESIGN.md
// §10 documents what each one enforces and why.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the upstream framework (and compose with upstream passes like
// nilness and shadow) without rewriting any checker, once the
// dependency is available. Upstream composition is gated on that: this
// module deliberately has no requirements outside the standard
// library.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow suppression comments. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// Match restricts which package import paths the multichecker
	// applies this analyzer to. Nil means every package. Test
	// harnesses bypass Match and run the analyzer directly on their
	// testdata packages.
	Match func(pkgPath string) bool
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)})
}

func (p *Pass) report(d Diagnostic) { p.diags = append(p.diags, d) }

// Diagnostics returns what Run reported, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// Diagnostic is one finding, with its resolved source position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Pos is the resolved file:line:column of the finding.
	Pos token.Position `json:"-"`
	// File/Line mirror Pos for -json output.
	File string `json:"file"`
	Line int    `json:"line"`
	// Suppressed marks diagnostics matched by a //lint:allow
	// comment; the multichecker counts them against the budget file
	// instead of failing on them.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}
