package maporder_test

import (
	"path/filepath"
	"testing"

	"dtnsim/internal/analysis/analysistest"
	"dtnsim/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	res := analysistest.Run(t, filepath.Join("testdata", "src", "a"), maporder.Analyzer)
	// Five flagged loops, five sanctioned idioms, one suppression.
	analysistest.MustFindings(t, res, 5)
	if got := res.AllowCounts["maporder"]; got != 1 {
		t.Errorf("AllowCounts[maporder] = %d, want 1", got)
	}
}

func TestMatchScopesToSimPackages(t *testing.T) {
	for pkg, want := range map[string]bool{
		"dtnsim/internal/core":       true,
		"dtnsim/internal/protocol":   true,
		"dtnsim/internal/experiment": true,
		"dtnsim/internal/sim":        false,
		"dtnsim/internal/analysis":   false,
		"dtnsim":                     false,
	} {
		if got := maporder.Analyzer.Match(pkg); got != want {
			t.Errorf("Match(%q) = %v, want %v", pkg, got, want)
		}
	}
}
