// Package maporder flags `for … range` over a map in simulation code
// unless the loop body is provably order-insensitive. Map iteration
// order is randomized by the runtime, so any order-sensitive body is a
// determinism bug — the single most common way a new protocol breaks
// bit-identical reproducibility in cells the golden grid doesn't pin.
//
// A body is accepted as order-insensitive when every statement (a)
// writes only through map index expressions (building a map/set is
// commutative), (b) appends keys/values to a slice that the enclosing
// function demonstrably sorts after the loop (collect-then-sort), (c)
// updates an integer accumulator with a commutative op (+=, -=, |=,
// &=, ^=, ++, --; float accumulation is rejected because float
// addition is not bitwise associative), (d) deletes from a map, or (e)
// is pure control flow (if/continue) over side-effect-free conditions.
// Anything else — early returns, channel sends, method calls, float
// math, slice writes that are never sorted — is reported.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dtnsim/internal/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map loops whose body is not provably order-insensitive",
	Run:  run,
	Match: func(pkgPath string) bool {
		for _, p := range []string{"core", "protocol", "node", "buffer", "metrics", "mobility", "contact", "experiment"} {
			if pkgPath == "dtnsim/internal/"+p {
				return true
			}
		}
		return false
	},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		c := &checker{pass: pass, fn: fn, rs: rs}
		if reason := c.bodyUnsafe(rs.Body); reason != "" {
			pass.Reportf(rs.For, "range over map %s is order-sensitive (%s); collect-and-sort the keys or make the body commutative",
				types.ExprString(rs.X), reason)
		}
		return true
	})
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	rs   *ast.RangeStmt
}

// bodyUnsafe returns a non-empty reason when the block is not provably
// order-insensitive.
func (c *checker) bodyUnsafe(body *ast.BlockStmt) string {
	for _, st := range body.List {
		if r := c.stmtUnsafe(st); r != "" {
			return r
		}
	}
	return ""
}

func (c *checker) stmtUnsafe(st ast.Stmt) string {
	switch s := st.(type) {
	case *ast.AssignStmt:
		return c.assignUnsafe(s)
	case *ast.IncDecStmt:
		return c.accumulatorUnsafe(s.X)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && isBuiltin(c.pass, id) {
				return "" // builtin delete from a map commutes
			}
		}
		return "statement with possible side effects"
	case *ast.IfStmt:
		if s.Init != nil {
			if r := c.stmtUnsafe(s.Init); r != "" {
				return r
			}
		}
		if !c.pureExpr(s.Cond) {
			return "condition with possible side effects"
		}
		if r := c.bodyUnsafe(s.Body); r != "" {
			return r
		}
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				return c.bodyUnsafe(blk)
			}
			return c.stmtUnsafe(s.Else)
		}
		return ""
	case *ast.BlockStmt:
		return c.bodyUnsafe(s)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return ""
		}
		return "loop exit depends on iteration order"
	case *ast.DeclStmt, *ast.EmptyStmt:
		return ""
	case *ast.ReturnStmt:
		return "early return depends on iteration order"
	default:
		return "unrecognized statement form"
	}
}

// assignUnsafe accepts map-index writes, blank discards, commutative
// integer accumulation, pure local declarations, and collect-then-sort
// appends.
func (c *checker) assignUnsafe(s *ast.AssignStmt) string {
	// := introducing loop-local names from pure expressions is fine.
	if s.Tok == token.DEFINE {
		for _, rhs := range s.Rhs {
			if !c.pureExpr(rhs) {
				return "definition from expression with possible side effects"
			}
		}
		return ""
	}
	if s.Tok != token.ASSIGN {
		// Compound assignment: x += v etc.
		for _, lhs := range s.Lhs {
			if r := c.accumulatorUnsafe(lhs); r != "" {
				return r
			}
		}
		for _, rhs := range s.Rhs {
			if !c.pureExpr(rhs) {
				return "assignment from expression with possible side effects"
			}
		}
		return ""
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else {
			rhs = s.Rhs[0]
		}
		if r := c.plainAssignUnsafe(lhs, rhs); r != "" {
			return r
		}
	}
	return ""
}

func (c *checker) plainAssignUnsafe(lhs, rhs ast.Expr) string {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return ""
		}
		// s = append(s, …) collecting into a slice that is sorted
		// after the loop.
		if isAppendOf(c.pass, rhs) {
			if c.sortedAfterLoop(l) {
				return ""
			}
			return "slice " + l.Name + " collected from map range is never sorted after the loop"
		}
		return "write to " + l.Name + " may depend on iteration order"
	case *ast.IndexExpr:
		tv, ok := c.pass.TypesInfo.Types[l.X]
		if ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				if c.pureExpr(l.Index) && c.pureExpr(rhs) {
					return ""
				}
				return "map write with impure key or value"
			}
		}
		return "indexed write to non-map may depend on iteration order"
	case *ast.SelectorExpr:
		// x.f = append(x.f, …) collecting into a field that the
		// function sorts after the loop, directly (sort.Slice(x.f, …))
		// or through a Sort method on the holder (x.Sort()).
		if isAppendOf(c.pass, rhs) && c.sortedExprAfterLoop(l) {
			return ""
		}
		return "write target " + types.ExprString(lhs) + " may depend on iteration order"
	default:
		return "write target " + types.ExprString(lhs) + " may depend on iteration order"
	}
}

// isAppendOf reports whether rhs is a builtin append call.
func isAppendOf(pass *analysis.Pass, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append" && isBuiltin(pass, id)
}

// accumulatorUnsafe accepts ++/--/+= style updates of integer
// variables and map entries; floats are rejected (float addition is
// not bitwise associative, so accumulation order changes the result).
func (c *checker) accumulatorUnsafe(x ast.Expr) string {
	switch l := x.(type) {
	case *ast.IndexExpr:
		if tv, ok := c.pass.TypesInfo.Types[l.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return ""
			}
		}
		return "indexed accumulator on non-map may depend on iteration order"
	default:
		tv, ok := c.pass.TypesInfo.Types[x]
		if !ok {
			return "accumulator of unknown type"
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			return "non-integer accumulator " + types.ExprString(x) + " is order-sensitive"
		}
		return ""
	}
}

// pureExpr reports whether e is side-effect free: identifiers,
// literals, selectors, map/slice indexing, arithmetic, comparisons,
// and len/cap calls. Any other call is treated as impure.
func (c *checker) pureExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return c.pureExpr(x.X)
	case *ast.IndexExpr:
		return c.pureExpr(x.X) && c.pureExpr(x.Index)
	case *ast.ParenExpr:
		return c.pureExpr(x.X)
	case *ast.UnaryExpr:
		return x.Op != token.AND && c.pureExpr(x.X)
	case *ast.BinaryExpr:
		return c.pureExpr(x.X) && c.pureExpr(x.Y)
	case *ast.CallExpr:
		// Type conversions (float64(x), sim.Time(t)) are pure when
		// their operand is.
		if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
			return len(x.Args) == 1 && c.pureExpr(x.Args[0])
		}
		id, ok := x.Fun.(*ast.Ident)
		if !ok || !isBuiltin(c.pass, id) {
			return false
		}
		if id.Name != "len" && id.Name != "cap" {
			return false
		}
		for _, a := range x.Args {
			if !c.pureExpr(a) {
				return false
			}
		}
		return true
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if !c.pureExpr(el) {
				return false
			}
		}
		return true
	case *ast.KeyValueExpr:
		return c.pureExpr(x.Key) && c.pureExpr(x.Value)
	case *ast.TypeAssertExpr:
		return c.pureExpr(x.X)
	default:
		return false
	}
}

// sortedAfterLoop reports whether the slice variable id is passed to a
// recognized sorting function after the range loop, within the same
// enclosing function — the collect-then-sort idiom.
func (c *checker) sortedAfterLoop(id *ast.Ident) bool {
	obj := c.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() || sorted {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := c.pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		if !strings.HasPrefix(sel.Sel.Name, "Sort") && !isSortFunc(sel.Sel.Name) {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && c.pass.TypesInfo.ObjectOf(arg) == obj {
			sorted = true
		}
		return true
	})
	return sorted
}

// sortedExprAfterLoop is sortedAfterLoop for non-ident collect
// targets (x.f): the expression is sorted when, after the loop, it is
// passed to a sort/slices function by the same rendered expression, or
// its holder receives a Sort* method call (schedule.Sort()).
func (c *checker) sortedExprAfterLoop(target *ast.SelectorExpr) bool {
	targetStr := types.ExprString(target)
	holderStr := types.ExprString(target.X)
	sorted := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() || sorted {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok {
				path := pn.Imported().Path()
				if (path == "sort" || path == "slices") &&
					(strings.HasPrefix(sel.Sel.Name, "Sort") || isSortFunc(sel.Sel.Name)) &&
					len(call.Args) > 0 && types.ExprString(call.Args[0]) == targetStr {
					sorted = true
				}
				return true
			}
		}
		// Method call: holder.Sort(), holder.SortContacts(), …
		if strings.HasPrefix(sel.Sel.Name, "Sort") {
			recv := types.ExprString(sel.X)
			if recv == holderStr || recv == targetStr {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

func isSortFunc(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable":
		return true
	}
	return false
}

// isBuiltin reports whether id resolves to a predeclared builtin
// (append, delete, len, …) rather than a user identifier shadowing it.
func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
