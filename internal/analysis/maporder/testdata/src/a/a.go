// Package a exercises the maporder analyzer: order-sensitive map
// ranges are flagged, the sanctioned idioms (collect-then-sort, map
// writes, integer accumulators, deletes) pass, and //lint:allow
// suppresses with a reason.
package a

import "sort"

type sink struct{ seen []string }

func (s *sink) add(k string) { s.seen = append(s.seen, k) }

// flagUnsortedCollect appends map keys to a slice that is never
// sorted: the result order follows the runtime's randomized map order.
func flagUnsortedCollect(m map[string]int) []string {
	var out []string
	for k := range m { // want "never sorted after the loop"
		out = append(out, k)
	}
	return out
}

// okCollectThenSort is the sanctioned idiom.
func okCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// okMapWrite builds another map: insertion order never matters.
func okMapWrite(m map[int]bool) map[int]bool {
	inv := make(map[int]bool, len(m))
	for k, v := range m {
		inv[k] = !v
	}
	return inv
}

// okIntCounter accumulates an integer, which commutes bitwise.
func okIntCounter(m map[string]int, floor int) int {
	n := 0
	for _, v := range m {
		if v > floor {
			n++
		}
	}
	return n
}

// flagFloatAccum sums floats: float addition is not bitwise
// associative, so the total depends on iteration order.
func flagFloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "non-integer accumulator"
		sum += v
	}
	return sum
}

// flagEarlyReturn picks "any" key — which key wins is random.
func flagEarlyReturn(m map[string]int) string {
	for k := range m { // want "early return"
		return k
	}
	return ""
}

// flagMethodCall feeds keys to a stateful consumer in map order.
func flagMethodCall(m map[string]int, s *sink) {
	for k := range m { // want "possible side effects"
		s.add(k)
	}
}

// okDelete prunes entries; deletion commutes.
func okDelete(m map[string]int, drop map[string]bool) {
	for k := range drop {
		if drop[k] {
			delete(m, k)
		}
	}
}

type schedule struct{ contacts []int }

func (s *schedule) Sort() { sort.Ints(s.contacts) }

// okFieldCollectThenMethodSort mirrors Schedule building: append into
// a field the holder sorts after the loop; the float64 conversion in
// the condition is pure.
func okFieldCollectThenMethodSort(m map[int]int, s *schedule, span float64) {
	for k, v := range m {
		if float64(v) > span {
			s.contacts = append(s.contacts, k)
		}
	}
	s.Sort()
}

// flagFieldCollectUnsorted is the same collect without the sort.
func flagFieldCollectUnsorted(m map[int]int, s *schedule) {
	for k := range m { // want "may depend on iteration order"
		s.contacts = append(s.contacts, k)
	}
}

// suppressedCase carries a counted, reasoned escape hatch.
func suppressedCase(m map[string]int) []string {
	var out []string
	//lint:allow maporder fixture output order is irrelevant here
	for k := range m { // want-suppressed "never sorted"
		out = append(out, k)
	}
	return out
}
