module maporder.example

go 1.22
