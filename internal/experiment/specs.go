package experiment

import (
	"dtnsim/internal/mobility"
	"dtnsim/internal/protocol"
)

// ScenarioFromSpec builds a sweep scenario from a mobility spec string
// ("cambridge:seed=42", "subscriber", "interval:max=2000", …),
// resolved against mobility.Default. The paper pairs the
// controlled-interval scenario with a faster link (25 s/bundle, see
// IntervalScenario); that preset is applied here so a spec-built sweep
// reproduces the figure-built one exactly.
func ScenarioFromSpec(specStr string) (Scenario, error) {
	src, err := mobility.Parse(specStr)
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{
		Name:           src.Kind,
		Spec:           src.Spec,
		Generate:       src.Generate,
		Stream:         src.Stream,
		PerRunSchedule: src.PerRun,
	}
	if src.Kind == "interval" {
		sc.TxTime = 25
	}
	return sc, nil
}

// FactoryFromSpec builds a protocol factory from a protocol spec string
// ("pq:p=0.8,q=0.5", "ttl:300", …), resolved against protocol.Default.
// The label defaults to the protocol's display name.
func FactoryFromSpec(specStr string) (ProtocolFactory, error) {
	f, err := protocol.Parse(specStr)
	if err != nil {
		return ProtocolFactory{}, err
	}
	return ProtocolFactory{Label: f.Label, Spec: f.Spec, New: f.New}, nil
}

// mustScenario resolves a built-in spec; the specs are compile-time
// constants, so failure is a programming error.
func mustScenario(specStr string) Scenario {
	sc, err := ScenarioFromSpec(specStr)
	if err != nil {
		panic(err)
	}
	return sc
}

// mustFactory resolves a built-in spec and applies the paper's legend
// label (empty keeps the registry's default).
func mustFactory(specStr, label string) ProtocolFactory {
	f, err := FactoryFromSpec(specStr)
	if err != nil {
		panic(err)
	}
	if label != "" {
		f.Label = label
	}
	return f
}
