// Package experiment is the paper's evaluation harness (§IV–V): it
// sweeps bundle load k = 5..50 in steps of 5, runs each point several
// times with fresh seeds and a fresh random source/destination pair,
// averages the four metrics, and exposes each of the paper's figures and
// tables as a ready-to-run specification.
package experiment

import (
	"fmt"
	"math"

	"dtnsim/internal/contact"
	"dtnsim/internal/core"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
	"dtnsim/internal/stats"
)

// Metric selects which of the paper's measurements a figure plots.
type Metric string

// The paper's metrics (§IV) plus the §V-C signaling-overhead count.
const (
	MetricDelay       Metric = "delay"       // seconds until all bundles arrive
	MetricDelivery    Metric = "delivery"    // delivered / generated
	MetricOccupancy   Metric = "occupancy"   // buffer occupancy level
	MetricDuplication Metric = "duplication" // bundle duplication rate
	MetricOverhead    Metric = "overhead"    // control records transmitted
)

// Scenario produces the mobility input for each run.
type Scenario struct {
	// Name labels the scenario in reports ("trace", "rwp", …).
	Name string
	// Generate builds the contact schedule for a given seed.
	Generate func(seed uint64) (*contact.Schedule, error)
	// PerRunSchedule regenerates mobility for every run (RWP); when
	// false the schedule is generated once from the sweep's base seed
	// and shared by all runs, as with a fixed trace file.
	PerRunSchedule bool
	// TxTime and BufferCap override the engine defaults when non-zero.
	TxTime    float64
	BufferCap int
}

// ProtocolFactory builds a fresh protocol instance per run.
type ProtocolFactory struct {
	// Label names the series as in the paper's legends.
	Label string
	// New constructs the protocol.
	New func() protocol.Protocol
}

// Sweep is one load-sweep experiment specification.
type Sweep struct {
	Scenario  Scenario
	Protocols []ProtocolFactory
	// Loads defaults to 5,10,…,50 (§IV).
	Loads []int
	// Runs per point; the paper uses 10.
	Runs int
	// BaseSeed anchors all derived randomness.
	BaseSeed uint64
	// Metrics to collect; defaults to all five.
	Metrics []Metric
	// OnPoint, if set, is called after each (protocol, load) point for
	// progress reporting.
	OnPoint func(label string, load int)
}

// Point is one averaged (load, protocol) measurement.
type Point struct {
	Load int
	// Values holds the run-averaged value per metric. Delay averages
	// only completed runs and is NaN when no run completed (§IV: failed
	// transmissions record no delay).
	Values map[Metric]float64
	// Completed counts runs that delivered every bundle.
	Completed int
	// Runs is the number of runs aggregated.
	Runs int
}

// Series is one protocol's curve across loads.
type Series struct {
	Label  string
	Points []Point
}

// Result is a finished sweep.
type Result struct {
	Scenario string
	Loads    []int
	Series   []Series
}

// DefaultLoads is the paper's load axis.
func DefaultLoads() []int { return []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50} }

// AllMetrics lists every metric.
func AllMetrics() []Metric {
	return []Metric{MetricDelay, MetricDelivery, MetricOccupancy, MetricDuplication, MetricOverhead}
}

// seedFor derives a deterministic 64-bit seed for (base, load, run) via a
// splitmix64 round, so points are independent of sweep iteration order.
func seedFor(base uint64, load, run int) uint64 {
	x := base ^ (uint64(load) << 32) ^ uint64(run)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Run executes the sweep.
func Run(sw Sweep) (*Result, error) {
	if sw.Scenario.Generate == nil {
		return nil, fmt.Errorf("experiment: scenario %q has no generator", sw.Scenario.Name)
	}
	if len(sw.Protocols) == 0 {
		return nil, fmt.Errorf("experiment: no protocols in sweep")
	}
	if len(sw.Loads) == 0 {
		sw.Loads = DefaultLoads()
	}
	if sw.Runs == 0 {
		sw.Runs = 10
	}
	if len(sw.Metrics) == 0 {
		sw.Metrics = AllMetrics()
	}

	var shared *contact.Schedule
	if !sw.Scenario.PerRunSchedule {
		s, err := sw.Scenario.Generate(sw.BaseSeed)
		if err != nil {
			return nil, fmt.Errorf("experiment: generating %s schedule: %w", sw.Scenario.Name, err)
		}
		shared = s
	}

	res := &Result{Scenario: sw.Scenario.Name, Loads: sw.Loads}
	for _, pf := range sw.Protocols {
		series := Series{Label: pf.Label}
		for _, load := range sw.Loads {
			pt, err := runPoint(sw, shared, pf, load)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, pt)
			if sw.OnPoint != nil {
				sw.OnPoint(pf.Label, load)
			}
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

func runPoint(sw Sweep, shared *contact.Schedule, pf ProtocolFactory, load int) (Point, error) {
	acc := make(map[Metric]*stats.Welford, len(sw.Metrics))
	for _, m := range sw.Metrics {
		acc[m] = &stats.Welford{}
	}
	completed := 0
	for run := 0; run < sw.Runs; run++ {
		seed := seedFor(sw.BaseSeed, load, run)
		schedule := shared
		if sw.Scenario.PerRunSchedule {
			s, err := sw.Scenario.Generate(seed)
			if err != nil {
				return Point{}, fmt.Errorf("experiment: %s run schedule: %w", sw.Scenario.Name, err)
			}
			schedule = s
		}
		// The pair depends only on the run index so every load point
		// compares the same set of source/destination pairs, keeping
		// curves comparable along the load axis (§IV re-randomizes the
		// pair per run).
		src, dst := pickPair(schedule.Nodes, seedFor(sw.BaseSeed, 0, run))
		r, err := core.Run(core.Config{
			Schedule:  schedule,
			Protocol:  pf.New(),
			Flows:     []core.Flow{{Src: src, Dst: dst, Count: load}},
			TxTime:    sw.Scenario.TxTime,
			BufferCap: sw.Scenario.BufferCap,
			Seed:      seed,
			// Run the full trace so occupancy and duplication are
			// steady-state time averages as in the paper; delay and
			// delivery ratio are unaffected (§IV end conditions).
			RunToHorizon: true,
		})
		if err != nil {
			return Point{}, fmt.Errorf("experiment: %s/%s load %d: %w", sw.Scenario.Name, pf.Label, load, err)
		}
		if r.Completed {
			completed++
		}
		for _, m := range sw.Metrics {
			switch m {
			case MetricDelay:
				if r.Completed {
					acc[m].Add(r.Makespan)
				}
			case MetricDelivery:
				acc[m].Add(r.DeliveryRatio)
			case MetricOccupancy:
				acc[m].Add(r.MeanOccupancy)
			case MetricDuplication:
				acc[m].Add(r.MeanDuplication)
			case MetricOverhead:
				acc[m].Add(float64(r.ControlRecords))
			default:
				return Point{}, fmt.Errorf("experiment: unknown metric %q", m)
			}
		}
	}
	pt := Point{Load: load, Values: make(map[Metric]float64, len(sw.Metrics)), Completed: completed, Runs: sw.Runs}
	for _, m := range sw.Metrics {
		if m == MetricDelay && acc[m].N() == 0 {
			pt.Values[m] = math.NaN()
			continue
		}
		pt.Values[m] = acc[m].Mean()
	}
	return pt, nil
}

// pickPair chooses a random source and distinct destination, changed
// every run per §IV.
func pickPair(nodes int, seed uint64) (contact.NodeID, contact.NodeID) {
	rng := sim.NewRNG(seed ^ 0xfeed)
	src := rng.IntN(nodes)
	dst := rng.IntN(nodes - 1)
	if dst >= src {
		dst++
	}
	return contact.NodeID(src), contact.NodeID(dst)
}

// MeanOf averages a series' metric across its loads, ignoring NaN
// points; used to build Table II.
func MeanOf(s Series, m Metric) float64 {
	var vals []float64
	for _, p := range s.Points {
		v := p.Values[m]
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	return stats.Mean(vals)
}
