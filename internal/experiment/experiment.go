// Package experiment is the paper's evaluation harness (§IV–V): it
// sweeps bundle load k = 5..50 in steps of 5, runs each point several
// times with fresh seeds and a fresh random source/destination pair,
// averages the four metrics, and exposes each of the paper's figures and
// tables as a ready-to-run specification.
//
// Sweeps execute their (protocol, load, run) grid on a bounded worker
// pool sized by Sweep.Workers (default runtime.GOMAXPROCS(0)); every
// run's seed derives only from (BaseSeed, load, run), so parallel and
// sequential execution produce bit-identical results.
package experiment

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"dtnsim/internal/contact"
	"dtnsim/internal/core"
	"dtnsim/internal/protocol"
	"dtnsim/internal/sim"
	"dtnsim/internal/stats"
)

// Metric selects which of the paper's measurements a figure plots.
type Metric string

// The paper's metrics (§IV) plus the §V-C signaling-overhead count.
const (
	MetricDelay       Metric = "delay"       // seconds until all bundles arrive
	MetricDelivery    Metric = "delivery"    // delivered / generated
	MetricOccupancy   Metric = "occupancy"   // buffer occupancy level
	MetricDuplication Metric = "duplication" // bundle duplication rate
	MetricOverhead    Metric = "overhead"    // control records transmitted
)

// Scenario produces the mobility input for each run.
type Scenario struct {
	// Name labels the scenario in reports ("trace", "rwp", …).
	Name string
	// Spec is the canonical mobility spec this scenario was built from
	// (ScenarioFromSpec), or empty for hand-built scenarios. It is what
	// makes a sweep serializable.
	Spec string
	// Generate builds the contact schedule for a given seed. It must be
	// safe for concurrent calls: sweeps with Workers > 1 invoke it from
	// several goroutines when PerRunSchedule is set.
	Generate func(seed uint64) (*contact.Schedule, error)
	// Stream builds a pull-based contact source for a given seed; when
	// set, runs consume mobility through it without materializing a
	// schedule, so sweep memory stays O(nodes) per in-flight run.
	// Spec-built scenarios always set it; hand-built scenarios may leave
	// it nil and fall back to Generate. Must be safe for concurrent
	// calls (sources themselves are per-run and single-use).
	Stream func(seed uint64) (contact.Source, error)
	// PerRunSchedule regenerates mobility for every run (RWP); when
	// false the schedule is generated once from the sweep's base seed
	// and shared by all runs, as with a fixed trace file.
	PerRunSchedule bool
	// TxTime and BufferCap override the engine defaults when non-zero.
	TxTime    float64
	BufferCap int
	// Resource-model knobs (DESIGN.md §9), applied to every run; zero
	// disables each one, preserving the paper's unconstrained model.
	// BundleSize is the payload size given to every generated workload
	// bundle; the rest map one-to-one onto core.Config.
	Bandwidth    float64
	BundleSize   int64
	BufferBytes  int64
	DropPolicy   string
	ControlBytes float64
}

// ProtocolFactory builds a fresh protocol instance per run.
type ProtocolFactory struct {
	// Label names the series as in the paper's legends.
	Label string
	// Spec is the canonical protocol spec this factory was built from
	// (FactoryFromSpec), or empty for hand-built factories.
	Spec string
	// New constructs the protocol.
	New func() protocol.Protocol
}

// Sweep is one load-sweep experiment specification.
type Sweep struct {
	Scenario  Scenario
	Protocols []ProtocolFactory
	// Loads defaults to 5,10,…,50 (§IV).
	Loads []int
	// Runs per point; the paper uses 10.
	Runs int
	// BaseSeed anchors all derived randomness.
	BaseSeed uint64
	// Metrics to collect; defaults to all five.
	Metrics []Metric
	// OnPoint, if set, is called after each (protocol, load) point for
	// progress reporting. Regardless of Workers it is invoked from the
	// goroutine that called Run, in the sequential sweep order.
	OnPoint func(label string, load int)
	// Workers bounds the number of runs simulated concurrently. Zero
	// means runtime.GOMAXPROCS(0); 1 runs the grid strictly
	// sequentially. Results are bit-identical for every value: each
	// run's seed depends only on (BaseSeed, load, run), and per-point
	// averages are folded in run order after collection.
	Workers int
	// Shards selects each run's engine executor (core.Config.Shards):
	// 0 the sequential event loop, K >= 1 the sharded executor with K
	// workers. Orthogonal to Workers — Workers parallelizes across the
	// grid, Shards inside each run — and, like it, bit-identical for
	// every value.
	Shards int
	// Context, when non-nil, cancels the sweep: it is threaded into
	// every run's engine loop (core.Config.Context), so a cancel or
	// deadline aborts in-flight simulations mid-event-stream and Run
	// returns an error wrapping the context's. Like Workers it is an
	// execution knob with no effect on results while it stays alive.
	Context context.Context
}

// Point is one averaged (load, protocol) measurement.
type Point struct {
	Load int
	// Values holds the run-averaged value per metric. Delay averages
	// only completed runs and is NaN when no run completed (§IV: failed
	// transmissions record no delay).
	Values map[Metric]float64
	// Completed counts runs that delivered every bundle.
	Completed int
	// Runs is the number of runs aggregated.
	Runs int
}

// Series is one protocol's curve across loads.
type Series struct {
	Label  string
	Points []Point
}

// Result is a finished sweep.
type Result struct {
	Scenario string
	Loads    []int
	Series   []Series
}

// DefaultLoads is the paper's load axis.
func DefaultLoads() []int { return []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50} }

// AllMetrics lists every metric.
func AllMetrics() []Metric {
	return []Metric{MetricDelay, MetricDelivery, MetricOccupancy, MetricDuplication, MetricOverhead}
}

// seedFor derives a deterministic 64-bit seed for (base, load, run) via a
// splitmix64 round, so points are independent of sweep iteration order.
func seedFor(base uint64, load, run int) uint64 {
	x := base ^ (uint64(load) << 32) ^ uint64(run)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Run executes the sweep. With Workers != 1 the (protocol, load, run)
// grid is fanned out over a worker pool; see Sweep.Workers for the
// determinism contract.
func Run(sw Sweep) (*Result, error) {
	if sw.Scenario.Generate == nil && sw.Scenario.Stream == nil {
		return nil, fmt.Errorf("experiment: scenario %q has no generator", sw.Scenario.Name)
	}
	if len(sw.Protocols) == 0 {
		return nil, fmt.Errorf("experiment: no protocols in sweep")
	}
	if len(sw.Loads) == 0 {
		sw.Loads = DefaultLoads()
	}
	if sw.Runs <= 0 {
		sw.Runs = 10
	}
	if len(sw.Metrics) == 0 {
		sw.Metrics = AllMetrics()
	}
	for _, m := range sw.Metrics {
		switch m {
		case MetricDelay, MetricDelivery, MetricOccupancy, MetricDuplication, MetricOverhead:
		default:
			return nil, fmt.Errorf("experiment: unknown metric %q", m)
		}
	}
	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Streaming scenarios need no shared schedule: every run re-streams
	// its source (from the base seed when the schedule is fixed across
	// runs — same contacts, regenerated instead of retained). Hand-built
	// Generate-only scenarios keep the materialized shared schedule,
	// generated once and treated as read-only by every run.
	var shared *contact.Schedule
	if sw.Scenario.Stream == nil && !sw.Scenario.PerRunSchedule {
		s, err := sw.Scenario.Generate(sw.BaseSeed)
		if err != nil {
			return nil, fmt.Errorf("experiment: generating %s schedule: %w", sw.Scenario.Name, err)
		}
		shared = s
	}

	if workers == 1 {
		return runSequential(sw, shared)
	}
	return runParallel(sw, shared, workers)
}

// runSequential is the reference execution order: protocol-major,
// load-minor, runs in index order, OnPoint after each point.
func runSequential(sw Sweep, shared *contact.Schedule) (*Result, error) {
	res := &Result{Scenario: sw.Scenario.Name, Loads: sw.Loads}
	for _, pf := range sw.Protocols {
		series := Series{Label: pf.Label}
		for _, load := range sw.Loads {
			outcomes := make([]runOutcome, sw.Runs)
			for run := 0; run < sw.Runs; run++ {
				outcomes[run] = runOne(sw, shared, pf, load, run)
			}
			pt, err := aggregatePoint(sw, load, outcomes)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, pt)
			if sw.OnPoint != nil {
				sw.OnPoint(pf.Label, load)
			}
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// job addresses one simulation run in the sweep grid.
type job struct{ pi, li, run int }

// runOutcome is one run's result or failure.
type runOutcome struct {
	res *core.Result
	err error
	// secs is the run's wall-clock duration when the sweep measures it
	// (ScaleSweep.Clock); zero otherwise. Never folded into results —
	// timing is reporting-only, results stay bit-identical.
	secs float64
}

// errSkipped marks jobs short-circuited after another job failed; the
// grid scan in runParallel replaces it with the underlying failure.
var errSkipped = fmt.Errorf("experiment: run skipped after earlier failure")

// runParallel fans the grid out over workers goroutines. The calling
// goroutine aggregates points — and fires OnPoint — in the sequential
// order as soon as each point's runs have all finished, folding run
// results in run order so floating-point accumulation matches the
// sequential path bit for bit.
func runParallel(sw Sweep, shared *contact.Schedule, workers int) (*Result, error) {
	nP, nL := len(sw.Protocols), len(sw.Loads)
	outcomes := make([][][]runOutcome, nP)
	pending := make([][]sync.WaitGroup, nP)
	for pi := 0; pi < nP; pi++ {
		outcomes[pi] = make([][]runOutcome, nL)
		pending[pi] = make([]sync.WaitGroup, nL)
		for li := 0; li < nL; li++ {
			outcomes[pi][li] = make([]runOutcome, sw.Runs)
			pending[pi][li].Add(sw.Runs)
		}
	}

	jobs := make(chan job)
	abort := make(chan struct{})
	// window bounds how many points may be in flight (dispatched but not
	// yet folded): without it, one straggler run in an early point lets
	// the pool complete the entire remaining grid while the in-order
	// aggregator is blocked, holding every run's Result live at once.
	window := make(chan struct{}, workers+4)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if failed.Load() {
					outcomes[j.pi][j.li][j.run] = runOutcome{err: errSkipped}
				} else {
					out := runOne(sw, shared, sw.Protocols[j.pi], sw.Loads[j.li], j.run)
					if out.err != nil {
						failed.Store(true)
					}
					outcomes[j.pi][j.li][j.run] = out
				}
				pending[j.pi][j.li].Done()
			}
		}()
	}
	go func() {
		defer close(jobs)
		for pi := 0; pi < nP; pi++ {
			for li := 0; li < nL; li++ {
				select {
				case window <- struct{}{}:
				case <-abort:
					return
				}
				for run := 0; run < sw.Runs; run++ {
					jobs <- job{pi, li, run}
				}
			}
		}
	}()

	res := &Result{Scenario: sw.Scenario.Name, Loads: sw.Loads}
	for pi := 0; pi < nP; pi++ {
		series := Series{Label: sw.Protocols[pi].Label}
		for li := 0; li < nL; li++ {
			pending[pi][li].Wait()
			pt, err := aggregatePoint(sw, sw.Loads[li], outcomes[pi][li])
			if err != nil {
				// Short-circuit the rest of the grid, wait it out, then
				// report a concrete run failure rather than a skip marker.
				failed.Store(true)
				close(abort)
				wg.Wait()
				return nil, firstFailure(outcomes)
			}
			outcomes[pi][li] = nil // release the point's run results once folded
			series.Points = append(series.Points, pt)
			if sw.OnPoint != nil {
				sw.OnPoint(sw.Protocols[pi].Label, sw.Loads[li])
			}
			<-window
		}
		res.Series = append(res.Series, series)
	}
	wg.Wait()
	return res, nil
}

// firstFailure returns the first non-skip error in grid order; skipped
// runs only exist when some run failed for real.
func firstFailure(outcomes [][][]runOutcome) error {
	var skip error
	for _, byLoad := range outcomes {
		for _, byRun := range byLoad {
			for _, out := range byRun {
				if out.err == nil {
					continue
				}
				if out.err != errSkipped {
					return out.err
				}
				skip = out.err
			}
		}
	}
	return skip
}

// runOne executes a single (protocol, load, run) simulation. Everything
// mutable — the contact source or per-run schedule, and always the
// protocol instance — is created here, per job, so jobs never share
// state across workers.
func runOne(sw Sweep, shared *contact.Schedule, pf ProtocolFactory, load, run int) runOutcome {
	seed := seedFor(sw.BaseSeed, load, run)
	cfg := core.Config{
		Protocol:  pf.New(),
		TxTime:    sw.Scenario.TxTime,
		BufferCap: sw.Scenario.BufferCap,
		Seed:      seed,
		// Run the full trace so occupancy and duplication are
		// steady-state time averages as in the paper; delay and
		// delivery ratio are unaffected (§IV end conditions).
		RunToHorizon: true,
		Bandwidth:    sw.Scenario.Bandwidth,
		BufferBytes:  sw.Scenario.BufferBytes,
		DropPolicy:   sw.Scenario.DropPolicy,
		ControlBytes: sw.Scenario.ControlBytes,
		Context:      sw.Context,
		Shards:       sw.Shards,
	}
	var nodes int
	switch {
	case sw.Scenario.Stream != nil:
		// Fixed-mobility scenarios stream from the base seed: same
		// contacts every run, regenerated lazily instead of retained.
		streamSeed := seed
		if !sw.Scenario.PerRunSchedule {
			streamSeed = sw.BaseSeed
		}
		src, err := sw.Scenario.Stream(streamSeed)
		if err != nil {
			return runOutcome{err: fmt.Errorf("experiment: %s run source: %w", sw.Scenario.Name, err)}
		}
		cfg.Source = src
		nodes = src.Nodes()
	case sw.Scenario.PerRunSchedule:
		s, err := sw.Scenario.Generate(seed)
		if err != nil {
			return runOutcome{err: fmt.Errorf("experiment: %s run schedule: %w", sw.Scenario.Name, err)}
		}
		cfg.Schedule = s
		nodes = s.Nodes
	default:
		cfg.Schedule = shared
		nodes = shared.Nodes
	}
	if nodes < 2 {
		return runOutcome{err: fmt.Errorf("experiment: %s schedule has %d node(s); need at least 2 for a source/destination pair",
			sw.Scenario.Name, nodes)}
	}
	// The pair depends only on the run index so every load point
	// compares the same set of source/destination pairs, keeping
	// curves comparable along the load axis (§IV re-randomizes the
	// pair per run).
	src, dst := pickPair(nodes, seedFor(sw.BaseSeed, 0, run))
	cfg.Flows = []core.Flow{{Src: src, Dst: dst, Count: load, Size: sw.Scenario.BundleSize}}
	r, err := core.Run(cfg)
	if err != nil {
		return runOutcome{err: fmt.Errorf("experiment: %s/%s load %d: %w", sw.Scenario.Name, pf.Label, load, err)}
	}
	return runOutcome{res: r}
}

// aggregatePoint folds one point's run results, in run order, into the
// per-metric Welford accumulators and builds the averaged Point.
func aggregatePoint(sw Sweep, load int, outcomes []runOutcome) (Point, error) {
	acc := make(map[Metric]*stats.Welford, len(sw.Metrics))
	for _, m := range sw.Metrics {
		acc[m] = &stats.Welford{}
	}
	completed := 0
	for _, out := range outcomes {
		if out.err != nil {
			return Point{}, out.err
		}
		r := out.res
		if r.Completed {
			completed++
		}
		for _, m := range sw.Metrics {
			switch m {
			case MetricDelay:
				if r.Completed {
					acc[m].Add(r.Makespan)
				}
			case MetricDelivery:
				acc[m].Add(r.DeliveryRatio)
			case MetricOccupancy:
				acc[m].Add(r.MeanOccupancy)
			case MetricDuplication:
				acc[m].Add(r.MeanDuplication)
			case MetricOverhead:
				acc[m].Add(float64(r.ControlRecords))
			default:
				return Point{}, fmt.Errorf("experiment: unknown metric %q", m)
			}
		}
	}
	pt := Point{Load: load, Values: make(map[Metric]float64, len(sw.Metrics)), Completed: completed, Runs: sw.Runs}
	for _, m := range sw.Metrics {
		if m == MetricDelay && acc[m].N() == 0 {
			pt.Values[m] = math.NaN()
			continue
		}
		pt.Values[m] = acc[m].Mean()
	}
	return pt, nil
}

// pickPair chooses a random source and distinct destination, changed
// every run per §IV.
func pickPair(nodes int, seed uint64) (contact.NodeID, contact.NodeID) {
	rng := sim.NewRNG(seed ^ 0xfeed)
	src := rng.IntN(nodes)
	dst := rng.IntN(nodes - 1)
	if dst >= src {
		dst++
	}
	return contact.NodeID(src), contact.NodeID(dst)
}

// MeanOf averages a series' metric across its loads, ignoring NaN
// points; used to build Table II.
func MeanOf(s Series, m Metric) float64 {
	var vals []float64
	for _, p := range s.Points {
		v := p.Values[m]
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	return stats.Mean(vals)
}
