package experiment

import (
	"fmt"
	"reflect"
	"testing"
)

// tinyScale is a fast scale sweep over small populations (the axis
// mechanics are identical at any N; the big populations are exercised
// by the benchmarks and the CI smoke run).
func tinyScale() ScaleSweep {
	return ScaleSweep{
		Name:  "tiny-scale",
		Nodes: []int{12, 24},
		Mobility: func(nodes int) string {
			return fmt.Sprintf("rwp:nodes=%d,area=1500,span=40000,range=150,dt=25", nodes)
		},
		Protocols: []ProtocolFactory{Pure()},
		Load:      10,
		Runs:      2,
		BaseSeed:  7,
	}
}

func TestRunScaleShape(t *testing.T) {
	res, err := RunScale(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 2 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	for i, p := range res.Series[0].Points {
		if p.Nodes != res.Nodes[i] {
			t.Errorf("point %d nodes = %d, want %d", i, p.Nodes, res.Nodes[i])
		}
		if p.Delivery < 0 || p.Delivery > 1 {
			t.Errorf("point %d delivery %v out of [0,1]", i, p.Delivery)
		}
		if p.Runs != 2 {
			t.Errorf("point %d runs = %d", i, p.Runs)
		}
	}
}

// TestRunScaleDeterministicAcrossWorkers: the scale grid must fold to
// bit-identical results for every worker count, like the load sweeps.
func TestRunScaleDeterministicAcrossWorkers(t *testing.T) {
	seq := tinyScale()
	seq.Workers = 1
	a, err := RunScale(seq)
	if err != nil {
		t.Fatal(err)
	}
	par := tinyScale()
	par.Workers = 4
	b, err := RunScale(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("worker counts diverge:\n1: %+v\n4: %+v", a, b)
	}
}

func TestRunScaleErrors(t *testing.T) {
	sw := tinyScale()
	sw.Nodes = nil
	if _, err := RunScale(sw); err == nil {
		t.Error("empty node axis accepted")
	}
	sw = tinyScale()
	sw.Protocols = nil
	if _, err := RunScale(sw); err == nil {
		t.Error("no protocols accepted")
	}
	sw = tinyScale()
	sw.Mobility = func(int) string { return "bogus:spec" }
	if _, err := RunScale(sw); err == nil {
		t.Error("bad mobility spec accepted")
	}
}
