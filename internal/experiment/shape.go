// Shape statements: the machine-checkable form of each Figure's Expect
// prose. An Expect string documents the qualitative curve shape the
// paper reports; the Shape statements encode the load-bearing part of
// that claim in a tiny grammar the shape-regression suite
// (shape_test.go) evaluates against measured sweep results — so a code
// change that silently flips a figure's shape fails a test instead of
// drifting.
//
// Grammar (one statement per string, whitespace-tokenized):
//
//	up METRIC SERIES...      every matching series trends up with load:
//	                         value at the highest load >= value at the
//	                         lowest load (5% relative slack)
//	down METRIC SERIES...    the mirror-image downward trend
//	order METRIC@AGG A B C   aggregated values are ordered A >= B >= C
//	order METRIC@AGG A B by M   ... with A >= B + M (absolute margin)
//	ratio METRIC@AGG A B R   aggregated value(A) >= R x value(B)
//
// AGG is one of: max (value at the highest load), min (lowest load),
// mean (mean over loads, NaN points skipped). SERIES operands are
// compressed series tags (SeriesTag) or `*` for every series. NaN
// endpoints (a delay at a load where no run completed) fall back to the
// nearest non-NaN point; a series with no usable points fails the
// statement explicitly rather than passing vacuously.
package experiment

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// upSlack is the relative slack allowed on up/down endpoint trends:
// reduced-run sweeps are noisy at flat stretches of a curve, and the
// paper's claims are qualitative.
const upSlack = 0.05

// SeriesTag compresses a series label into the token form the shape
// grammar uses: lower-cased, with the paper's legend boilerplate
// stripped ("Epidemic with TTL" -> "ttl", "P-Q epidemic
// (anti-packets)" -> "pqanti", "Interval time = 400" -> "intervaltime400").
func SeriesTag(label string) string {
	r := strings.NewReplacer(
		"P-Q epidemic (anti-packets)", "pqanti",
		"P-Q epidemic", "pq",
		"Epidemic with cumulative immunity", "cumimm",
		"Epidemic with dynamic TTL", "dynttl",
		"Epidemic with ", "",
		"Pure epidemic", "pure",
	)
	out := strings.ToLower(r.Replace(label))
	var b strings.Builder
	for _, c := range out {
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			b.WriteRune(c)
		}
	}
	return b.String()
}

// ShapeCheck is one parsed shape statement.
type ShapeCheck struct {
	// Kind is "up", "down", "order" or "ratio".
	Kind   string
	Metric Metric
	// Agg is "max", "min" or "mean" (order/ratio only).
	Agg string
	// Tags are the series operands ("*" allowed for up/down).
	Tags []string
	// Margin is the order statement's absolute margin, or the ratio
	// statement's floor.
	Margin float64
	// Source is the original statement, for error messages.
	Source string
}

// ParseShape parses one statement.
func ParseShape(stmt string) (ShapeCheck, error) {
	fields := strings.Fields(stmt)
	bad := func(format string, args ...any) (ShapeCheck, error) {
		return ShapeCheck{}, fmt.Errorf("shape %q: "+format, append([]any{stmt}, args...)...)
	}
	if len(fields) < 3 {
		return bad("want at least 3 tokens")
	}
	c := ShapeCheck{Kind: fields[0], Source: stmt}
	switch c.Kind {
	case "up", "down":
		c.Metric = Metric(fields[1])
		c.Tags = fields[2:]
	case "order", "ratio":
		metric, agg, ok := strings.Cut(fields[1], "@")
		if !ok {
			return bad("%s needs METRIC@AGG", c.Kind)
		}
		c.Metric, c.Agg = Metric(metric), agg
		switch c.Agg {
		case "max", "min", "mean":
		default:
			return bad("unknown aggregation %q", c.Agg)
		}
		rest := fields[2:]
		if c.Kind == "ratio" {
			if len(rest) != 3 {
				return bad("ratio wants exactly A B FLOOR")
			}
			floor, err := strconv.ParseFloat(rest[2], 64)
			if err != nil || !(floor > 0) {
				return bad("bad ratio floor %q", rest[2])
			}
			c.Tags, c.Margin = rest[:2], floor
			break
		}
		if n := len(rest); n >= 3 && rest[n-2] == "by" {
			margin, err := strconv.ParseFloat(rest[n-1], 64)
			if err != nil || margin < 0 {
				return bad("bad margin %q", rest[n-1])
			}
			c.Margin, rest = margin, rest[:n-2]
		}
		if len(rest) < 2 {
			return bad("order wants at least two series")
		}
		c.Tags = rest
	default:
		return bad("unknown kind %q", c.Kind)
	}
	switch c.Metric {
	case MetricDelay, MetricDelivery, MetricOccupancy, MetricDuplication, MetricOverhead:
	default:
		return bad("unknown metric %q", c.Metric)
	}
	for _, tag := range c.Tags {
		if tag == "*" && c.Kind != "up" && c.Kind != "down" {
			return bad("wildcard series only valid for up/down")
		}
	}
	return c, nil
}

// CheckShapes parses and evaluates every statement against a sweep
// result, returning one error per violated (or unevaluable) statement.
func CheckShapes(statements []string, res *Result) []error {
	var errs []error
	for _, stmt := range statements {
		c, err := ParseShape(stmt)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if err := c.Eval(res); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// seriesByTag resolves a tag against the result's series labels.
func seriesByTag(res *Result, tag string) (Series, error) {
	for _, s := range res.Series {
		if SeriesTag(s.Label) == tag {
			return s, nil
		}
	}
	var have []string
	for _, s := range res.Series {
		have = append(have, SeriesTag(s.Label))
	}
	return Series{}, fmt.Errorf("no series tagged %q (have %s)", tag, strings.Join(have, ", "))
}

// value reads a point's metric, distinguishing "recorded but NaN"
// from "never recorded" (a missing Values entry would otherwise read
// as 0.0 and let statements over unrecorded metrics pass vacuously).
func value(p Point, m Metric) (float64, bool) {
	v, recorded := p.Values[m]
	return v, recorded && !math.IsNaN(v)
}

// endpoints returns the first and last usable (recorded, non-NaN)
// values of a series' metric in load order.
func endpoints(s Series, m Metric) (first, last float64, err error) {
	first, last = math.NaN(), math.NaN()
	for _, p := range s.Points {
		v, ok := value(p, m)
		if !ok {
			continue
		}
		if math.IsNaN(first) {
			first = v
		}
		last = v
	}
	if math.IsNaN(first) {
		return 0, 0, fmt.Errorf("series %q has no usable %s points (metric unrecorded or all NaN)", s.Label, m)
	}
	return first, last, nil
}

// aggregate reduces a series' metric per the aggregation mode. max/min
// are positional (highest/lowest load), falling back toward the middle
// over unusable points; mean skips them.
func aggregate(s Series, m Metric, agg string) (float64, error) {
	switch agg {
	case "mean":
		sum, n := 0.0, 0
		for _, p := range s.Points {
			if v, ok := value(p, m); ok {
				sum += v
				n++
			}
		}
		if n == 0 {
			return 0, fmt.Errorf("series %q has no usable %s points (metric unrecorded or all NaN)", s.Label, m)
		}
		return sum / float64(n), nil
	case "max":
		for i := len(s.Points) - 1; i >= 0; i-- {
			if v, ok := value(s.Points[i], m); ok {
				return v, nil
			}
		}
	case "min":
		for _, p := range s.Points {
			if v, ok := value(p, m); ok {
				return v, nil
			}
		}
	}
	return 0, fmt.Errorf("series %q has no usable %s points for %s (metric unrecorded or all NaN)", s.Label, m, agg)
}

// Eval checks the statement against a result.
func (c ShapeCheck) Eval(res *Result) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("shape %q violated: "+format, append([]any{c.Source}, args...)...)
	}
	switch c.Kind {
	case "up", "down":
		var series []Series
		if len(c.Tags) == 1 && c.Tags[0] == "*" {
			series = res.Series
		} else {
			for _, tag := range c.Tags {
				s, err := seriesByTag(res, tag)
				if err != nil {
					return fail("%v", err)
				}
				series = append(series, s)
			}
		}
		for _, s := range series {
			first, last, err := endpoints(s, c.Metric)
			if err != nil {
				return fail("%v", err)
			}
			if c.Kind == "up" && last < first*(1-upSlack) {
				return fail("series %q falls with load: %s %g -> %g", s.Label, c.Metric, first, last)
			}
			if c.Kind == "down" && last > first*(1+upSlack) {
				return fail("series %q rises with load: %s %g -> %g", s.Label, c.Metric, first, last)
			}
		}
		return nil
	case "order":
		prev, prevTag := math.NaN(), ""
		for i, tag := range c.Tags {
			s, err := seriesByTag(res, tag)
			if err != nil {
				return fail("%v", err)
			}
			v, err := aggregate(s, c.Metric, c.Agg)
			if err != nil {
				return fail("%v", err)
			}
			if i > 0 && prev < v+c.Margin {
				return fail("%s(%s) %g !>= %s(%s) %g + %g", prevTag, c.Metric, prev, tag, c.Metric, v, c.Margin)
			}
			prev, prevTag = v, tag
		}
		return nil
	case "ratio":
		a, err := seriesByTag(res, c.Tags[0])
		if err != nil {
			return fail("%v", err)
		}
		b, err := seriesByTag(res, c.Tags[1])
		if err != nil {
			return fail("%v", err)
		}
		va, err := aggregate(a, c.Metric, c.Agg)
		if err != nil {
			return fail("%v", err)
		}
		vb, err := aggregate(b, c.Metric, c.Agg)
		if err != nil {
			return fail("%v", err)
		}
		if vb == 0 {
			if va == 0 {
				return fail("both sides zero")
			}
			return nil // any positive value beats a zero denominator
		}
		if va/vb < c.Margin {
			return fail("%s/%s %s ratio %g below floor %g", c.Tags[0], c.Tags[1], c.Metric, va/vb, c.Margin)
		}
		return nil
	}
	return fail("unknown kind") // unreachable after ParseShape
}
