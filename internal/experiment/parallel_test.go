package experiment

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"dtnsim/internal/contact"
)

// resultsEqual is reflect.DeepEqual for sweep Results except that two
// NaN metric values (delay with zero completed runs) compare equal. Any
// non-NaN value must match bit for bit.
func resultsEqual(a, b *Result) bool {
	if a.Scenario != b.Scenario || !reflect.DeepEqual(a.Loads, b.Loads) || len(a.Series) != len(b.Series) {
		return false
	}
	for i := range a.Series {
		sa, sb := a.Series[i], b.Series[i]
		if sa.Label != sb.Label || len(sa.Points) != len(sb.Points) {
			return false
		}
		for j := range sa.Points {
			pa, pb := sa.Points[j], sb.Points[j]
			if pa.Load != pb.Load || pa.Completed != pb.Completed || pa.Runs != pb.Runs || len(pa.Values) != len(pb.Values) {
				return false
			}
			for m, va := range pa.Values {
				vb, ok := pb.Values[m]
				if !ok {
					return false
				}
				if math.IsNaN(va) && math.IsNaN(vb) {
					continue
				}
				if va != vb {
					return false
				}
			}
		}
	}
	return true
}

// TestSweepParallelMatchesSequential is the determinism contract: a
// sweep run on 8 workers must produce a Result deep-equal — field for
// field, bit for bit — to the same sweep run sequentially, both for a
// shared-schedule scenario (trace) and a per-run-schedule scenario
// (RWP, regenerated inside worker goroutines).
func TestSweepParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		sw   Sweep
	}{
		{"shared trace", Sweep{
			Scenario:  TraceScenario(),
			Protocols: []ProtocolFactory{TTL300(), CumImmunity()},
			Loads:     []int{5, 15, 25},
			Runs:      4,
			BaseSeed:  2012,
		}},
		{"per-run rwp", Sweep{
			Scenario:  RWPScenario(),
			Protocols: []ProtocolFactory{PQ11(), EC()},
			Loads:     []int{5, 10},
			Runs:      3,
			BaseSeed:  7,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := tc.sw
			seq.Workers = 1
			par := tc.sw
			par.Workers = 8

			want, err := Run(seq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(par)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(want, got) {
				t.Errorf("parallel result differs from sequential:\nsequential: %+v\nparallel:   %+v", want, got)
			}
		})
	}
}

// TestSweepDefaultWorkersMatchesSequential covers the Workers: 0
// default (GOMAXPROCS), which is what every existing call site now gets.
func TestSweepDefaultWorkersMatchesSequential(t *testing.T) {
	sw := tinySweep()
	seq := sw
	seq.Workers = 1
	want, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(sw) // Workers: 0
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(want, got) {
		t.Error("default-workers result differs from sequential")
	}
}

// TestOnPointOrderParallel: OnPoint must arrive from the calling
// goroutine in the exact sequential sweep order even when runs execute
// out of order across 8 workers.
func TestOnPointOrderParallel(t *testing.T) {
	sw := Sweep{
		Scenario:  TraceScenario(),
		Protocols: []ProtocolFactory{TTL300(), EC(), PQ11()},
		Loads:     []int{5, 10, 15},
		Runs:      2,
		BaseSeed:  3,
		Workers:   8,
	}
	var want, got []string
	for _, pf := range sw.Protocols {
		for _, load := range sw.Loads {
			want = append(want, fmt.Sprintf("%s/%d", pf.Label, load))
		}
	}
	sw.OnPoint = func(label string, load int) {
		got = append(got, fmt.Sprintf("%s/%d", label, load))
	}
	if _, err := Run(sw); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("OnPoint order:\n got %v\nwant %v", got, want)
	}
}

// TestSweepRejectsTinySchedules: a schedule with fewer than two nodes
// cannot host a source/destination pair; the sweep must fail cleanly
// instead of panicking inside pickPair, on both execution paths.
func TestSweepRejectsTinySchedules(t *testing.T) {
	for _, nodes := range []int{0, 1} {
		for _, workers := range []int{1, 8} {
			sw := Sweep{
				Scenario: Scenario{
					Name: "degenerate",
					Generate: func(uint64) (*contact.Schedule, error) {
						return &contact.Schedule{Nodes: nodes}, nil
					},
				},
				Protocols: []ProtocolFactory{Pure()},
				Loads:     []int{5},
				Runs:      2,
				Workers:   workers,
			}
			_, err := Run(sw)
			if err == nil {
				t.Fatalf("nodes=%d workers=%d: sweep accepted a schedule without a node pair", nodes, workers)
			}
			if !strings.Contains(err.Error(), "node") {
				t.Errorf("nodes=%d workers=%d: error %q does not mention the node count", nodes, workers, err)
			}
		}
	}
}

// TestSweepParallelErrorPropagates: a failing generator inside worker
// goroutines must surface as a real error, not a skip marker, and not
// hang the pool.
func TestSweepParallelErrorPropagates(t *testing.T) {
	sw := Sweep{
		Scenario: Scenario{
			Name:           "boom",
			PerRunSchedule: true,
			Generate: func(uint64) (*contact.Schedule, error) {
				return nil, fmt.Errorf("boom")
			},
		},
		Protocols: []ProtocolFactory{Pure()},
		Loads:     []int{5, 10},
		Runs:      3,
		Workers:   4,
	}
	_, err := Run(sw)
	if err == nil {
		t.Fatal("generator failure swallowed")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want the underlying generator failure", err)
	}
}
