package experiment

import "fmt"

// Figure specifies one of the paper's figures (or Table II / the §V-C
// overhead comparison) as a runnable experiment.
type Figure struct {
	// ID is the short identifier ("fig07" … "fig20", "table2",
	// "overhead").
	ID string
	// Title matches the paper's caption.
	Title string
	// Metric is the plotted measurement.
	Metric Metric
	// Sweep is the experiment to run. BaseSeed and Runs may be
	// overridden by the caller before running.
	Sweep Sweep
	// Expect documents the qualitative shape the paper reports, for
	// EXPERIMENTS.md and for the shape tests.
	Expect string
}

// comparisonProtocols is the §V-A existing-protocol lineup.
func comparisonProtocols() []ProtocolFactory {
	return []ProtocolFactory{PQ11(), TTL300(), Immunity(), EC()}
}

// enhancedProtocols is the §V-B modified-vs-unmodified lineup.
func enhancedProtocols() []ProtocolFactory {
	return []ProtocolFactory{TTL300(), DynTTL(), EC(), ECTTL(), Immunity(), CumImmunity()}
}

// Figures returns every reproducible experiment in paper order. Each
// figure's sweep uses the paper's loads (5..50 step 5) and 10 runs per
// point; callers may reduce Runs for quick previews.
func Figures() []Figure {
	fig := func(id, title string, m Metric, sc Scenario, ps []ProtocolFactory, expect string) Figure {
		return Figure{
			ID: id, Title: title, Metric: m,
			Sweep:  Sweep{Scenario: sc, Protocols: ps, Runs: 10, Metrics: []Metric{m, MetricDelivery}},
			Expect: expect,
		}
	}
	return []Figure{
		// The paper's delay discussion treats P-Q as §II defines it —
		// with anti-packets (it reports P-Q(1,1) delay identical to
		// immunity's) — so the delay figures carry both variants.
		fig("fig07", "Delay comparison of epidemic-based protocols (trace)",
			MetricDelay, TraceScenario(), []ProtocolFactory{PQ11(), PQ11Anti(), TTL300(), EC()},
			"delay grows with load for all; EC grows fastest; P-Q (anti-packets) slowest"),
		fig("fig08", "Delay comparison of epidemic-based protocols (RWP)",
			MetricDelay, RWPScenario(), []ProtocolFactory{PQ11(), PQ11Anti(), TTL300(), Immunity(), EC()},
			"same ordering as fig07 with immunity close to P-Q"),
		fig("fig09", "Average bundle duplication rate (trace)",
			MetricDuplication, TraceScenario(), comparisonProtocols(),
			"EC lowest; immunity highest (>60%); P-Q high"),
		fig("fig10", "Average bundle duplication rate (RWP)",
			MetricDuplication, RWPScenario(), comparisonProtocols(),
			"EC lowest duplication; immunity and P-Q highest"),
		fig("fig11", "Buffer occupancy level (trace)",
			MetricOccupancy, TraceScenario(), comparisonProtocols(),
			"P-Q >80% for load>10; immunity ~10% below P-Q; TTL lowest"),
		fig("fig12", "Buffer occupancy level (RWP)",
			MetricOccupancy, RWPScenario(), comparisonProtocols(),
			"same ordering as fig11"),
		fig("fig13", "Delivery ratio of epidemic with TTL and EC (trace)",
			MetricDelivery, TraceScenario(), []ProtocolFactory{EC(), TTL300()},
			"both degrade with load; EC above TTL"),
		fig("fig14", "Delivery ratio of TTL=300 under interval 400 vs 2000",
			MetricDelivery, IntervalScenario(400), []ProtocolFactory{TTL300()},
			"2000 s intervals deliver >=20% less than 400 s (run against both scenarios)"),
		fig("fig15", "Delivery ratio, modified vs unmodified (RWP)",
			MetricDelivery, RWPScenario(), enhancedProtocols(),
			"dynTTL > TTL; EC+TTL >= EC at high load; cum ~= immunity"),
		fig("fig16", "Delivery ratio, modified vs unmodified (trace)",
			MetricDelivery, TraceScenario(), enhancedProtocols(),
			"dynTTL > TTL by >=12%; EC+TTL > EC when load >= 30"),
		fig("fig17", "Buffer occupancy, modified vs unmodified (RWP)",
			MetricOccupancy, RWPScenario(), enhancedProtocols(),
			"dynTTL slightly above TTL; EC+TTL ~20pp below EC; cum below immunity"),
		fig("fig18", "Buffer occupancy, modified vs unmodified (trace)",
			MetricOccupancy, TraceScenario(), enhancedProtocols(),
			"same ordering as fig17"),
		fig("fig19", "Bundle duplication rate, modified vs unmodified (RWP)",
			MetricDuplication, RWPScenario(), enhancedProtocols(),
			"dynTTL above TTL; cum below immunity; EC+TTL >= EC past load 30"),
		fig("fig20", "Bundle duplication rate, modified vs unmodified (trace)",
			MetricDuplication, TraceScenario(), enhancedProtocols(),
			"same ordering as fig19"),
		fig("overhead", "Signaling overhead: immunity vs cumulative immunity",
			MetricOverhead, TraceScenario(), []ProtocolFactory{Immunity(), CumImmunity()},
			"cumulative transmits ~an order of magnitude fewer records at high load"),
	}
}

// AllExperiments returns the paper's figures followed by the parameter
// ablations.
func AllExperiments() []Figure {
	return append(Figures(), Ablations()...)
}

// FigureByID looks up a figure or ablation specification.
func FigureByID(id string) (Figure, error) {
	for _, f := range AllExperiments() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("experiment: unknown figure %q", id)
}

// Fig14Pair returns the two controlled-interval sweeps behind Fig. 14:
// the same TTL=300 protocol under max intervals of 400 s and 2000 s.
func Fig14Pair() (short, long Sweep) {
	mk := func(maxI float64) Sweep {
		return Sweep{
			Scenario:  IntervalScenario(maxI),
			Protocols: []ProtocolFactory{TTL300()},
			Runs:      10,
			Metrics:   []Metric{MetricDelivery},
		}
	}
	return mk(400), mk(2000)
}

// TableIIRow is one row of the paper's Table II.
type TableIIRow struct {
	Protocol                  string
	DeliveryRWP, DeliveryTr   float64 // percent
	OccupancyRWP, OccupancyTr float64 // percent
	DupRWP, DupTr             float64 // percent
}

// TableII computes the paper's closing comparison: load-averaged
// delivery rate, buffer occupancy level and duplication rate for the
// six §V-B protocols under both mobility sources. workers bounds the
// concurrent runs per sweep exactly as Sweep.Workers does (0 means
// GOMAXPROCS, 1 sequential); results are identical for every value.
func TableII(baseSeed uint64, runs, workers int) ([]TableIIRow, error) {
	if runs == 0 {
		runs = 10
	}
	metrics := []Metric{MetricDelivery, MetricOccupancy, MetricDuplication}
	sweep := func(sc Scenario) (*Result, error) {
		return Run(Sweep{
			Scenario:  sc,
			Protocols: enhancedProtocols(),
			Runs:      runs,
			BaseSeed:  baseSeed,
			Metrics:   metrics,
			Workers:   workers,
		})
	}
	rwp, err := sweep(RWPScenario())
	if err != nil {
		return nil, err
	}
	trace, err := sweep(TraceScenario())
	if err != nil {
		return nil, err
	}
	rows := make([]TableIIRow, len(rwp.Series))
	for i := range rwp.Series {
		rows[i] = TableIIRow{
			Protocol:     rwp.Series[i].Label,
			DeliveryRWP:  100 * MeanOf(rwp.Series[i], MetricDelivery),
			DeliveryTr:   100 * MeanOf(trace.Series[i], MetricDelivery),
			OccupancyRWP: 100 * MeanOf(rwp.Series[i], MetricOccupancy),
			OccupancyTr:  100 * MeanOf(trace.Series[i], MetricOccupancy),
			DupRWP:       100 * MeanOf(rwp.Series[i], MetricDuplication),
			DupTr:        100 * MeanOf(trace.Series[i], MetricDuplication),
		}
	}
	return rows, nil
}
