package experiment

import "fmt"

// Figure specifies one of the paper's figures (or Table II / the §V-C
// overhead comparison) as a runnable experiment.
type Figure struct {
	// ID is the short identifier ("fig07" … "fig20", "table2",
	// "overhead").
	ID string
	// Title matches the paper's caption.
	Title string
	// Metric is the plotted measurement.
	Metric Metric
	// Sweep is the experiment to run. BaseSeed and Runs may be
	// overridden by the caller before running.
	Sweep Sweep
	// Expect documents the qualitative shape the paper reports, for
	// EXPERIMENTS.md and for the shape tests.
	Expect string
	// Shape is Expect in machine-checkable form: statements in the
	// shape grammar (see shape.go) that the shape-regression suite
	// evaluates against measured reduced-run sweeps. A figure whose
	// measured curves contradict its Shape fails the suite instead of
	// silently drifting from its Expect prose.
	Shape []string
}

// comparisonProtocols is the §V-A existing-protocol lineup.
func comparisonProtocols() []ProtocolFactory {
	return []ProtocolFactory{PQ11(), TTL300(), Immunity(), EC()}
}

// enhancedProtocols is the §V-B modified-vs-unmodified lineup.
func enhancedProtocols() []ProtocolFactory {
	return []ProtocolFactory{TTL300(), DynTTL(), EC(), ECTTL(), Immunity(), CumImmunity()}
}

// Figures returns every reproducible experiment in paper order. Each
// figure's sweep uses the paper's loads (5..50 step 5) and 10 runs per
// point; callers may reduce Runs for quick previews.
func Figures() []Figure {
	fig := func(id, title string, m Metric, sc Scenario, ps []ProtocolFactory, expect string, shape ...string) Figure {
		return Figure{
			ID: id, Title: title, Metric: m,
			Sweep:  Sweep{Scenario: sc, Protocols: ps, Runs: 10, Metrics: []Metric{m, MetricDelivery}},
			Expect: expect,
			Shape:  shape,
		}
	}
	return []Figure{
		// The paper's delay discussion treats P-Q as §II defines it —
		// with anti-packets (it reports P-Q(1,1) delay identical to
		// immunity's) — so the delay figures carry both variants.
		//
		// Each figure's Shape statements encode the portion of its
		// Expect prose this reproduction exhibits, with margins tuned
		// against measured reduced-run sweeps (seed 2012, runs 1 and 3);
		// EXPERIMENTS.md records where the reproduction deviates from
		// the paper's prose. shape_test.go evaluates them on every run
		// of the suite.
		fig("fig07", "Delay comparison of epidemic-based protocols (trace)",
			MetricDelay, TraceScenario(), []ProtocolFactory{PQ11(), PQ11Anti(), TTL300(), EC()},
			"delay grows with load for all; EC grows fastest; P-Q (anti-packets) slowest",
			"up delay pqanti ec",
			"order delay@mean ttl pq pqanti",
			"order delay@mean ec pqanti",
			"down delivery pq ttl"),
		fig("fig08", "Delay comparison of epidemic-based protocols (RWP)",
			MetricDelay, RWPScenario(), []ProtocolFactory{PQ11(), PQ11Anti(), TTL300(), Immunity(), EC()},
			"same ordering as fig07 with immunity close to P-Q",
			"up delay pqanti immunity ec",
			"order delay@mean ttl pq ec pqanti",
			"ratio delay@mean pqanti immunity 0.9",
			"ratio delay@mean immunity pqanti 0.9"),
		fig("fig09", "Average bundle duplication rate (trace)",
			MetricDuplication, TraceScenario(), comparisonProtocols(),
			"EC lowest; immunity highest (>60%); P-Q high",
			"order duplication@mean pq immunity ttl by 0.05",
			"ratio duplication@mean ec pq 0.95",
			"ratio duplication@mean pq ec 0.95",
			"down duplication pq ec"),
		fig("fig10", "Average bundle duplication rate (RWP)",
			MetricDuplication, RWPScenario(), comparisonProtocols(),
			"EC lowest duplication; immunity and P-Q highest",
			"order duplication@mean pq immunity ttl by 0.05",
			"ratio duplication@mean ec pq 0.95",
			"ratio duplication@mean pq ec 0.95",
			"down duplication pq ec"),
		fig("fig11", "Buffer occupancy level (trace)",
			MetricOccupancy, TraceScenario(), comparisonProtocols(),
			"P-Q >80% for load>10; immunity ~10% below P-Q; TTL lowest",
			"up occupancy *",
			"order occupancy@mean pq immunity ttl by 0.1",
			"order occupancy@max pq ttl by 0.3"),
		fig("fig12", "Buffer occupancy level (RWP)",
			MetricOccupancy, RWPScenario(), comparisonProtocols(),
			"same ordering as fig11",
			"up occupancy *",
			"order occupancy@mean pq immunity ttl by 0.1"),
		fig("fig13", "Delivery ratio of epidemic with TTL and EC (trace)",
			MetricDelivery, TraceScenario(), []ProtocolFactory{EC(), TTL300()},
			"both degrade with load; EC above TTL",
			"down delivery ttl",
			"order delivery@max ec ttl by 0.3",
			"order delivery@mean ec ttl by 0.2"),
		fig("fig14", "Delivery ratio of TTL=300 under interval 400 vs 2000",
			MetricDelivery, IntervalScenario(400), []ProtocolFactory{TTL300()},
			"2000 s intervals deliver >=20% less than 400 s (run against both scenarios)",
			// The pairwise >=20% claim is checked by the shape suite via
			// Fig14Pair over a merged two-series result.
			"down delivery ttl"),
		fig("fig15", "Delivery ratio, modified vs unmodified (RWP)",
			MetricDelivery, RWPScenario(), enhancedProtocols(),
			"dynTTL > TTL; EC+TTL >= EC at high load; cum ~= immunity",
			"order delivery@mean dynttl ttl by 0.1",
			"order delivery@max ecttl ec",
			"ratio delivery@mean cumimm immunity 0.98",
			"ratio delivery@mean immunity cumimm 0.98"),
		fig("fig16", "Delivery ratio, modified vs unmodified (trace)",
			MetricDelivery, TraceScenario(), enhancedProtocols(),
			"dynTTL > TTL by >=12%; EC+TTL > EC when load >= 30",
			"order delivery@mean dynttl ttl by 0.12",
			"order delivery@max dynttl ttl by 0.2",
			"order delivery@max ecttl ec"),
		fig("fig17", "Buffer occupancy, modified vs unmodified (RWP)",
			MetricOccupancy, RWPScenario(), enhancedProtocols(),
			"dynTTL slightly above TTL; EC+TTL ~20pp below EC; cum below immunity",
			"up occupancy *",
			"order occupancy@mean dynttl ttl by 0.05",
			"order occupancy@mean ec ecttl",
			"order occupancy@mean immunity cumimm by 0.15"),
		fig("fig18", "Buffer occupancy, modified vs unmodified (trace)",
			MetricOccupancy, TraceScenario(), enhancedProtocols(),
			"same ordering as fig17",
			"up occupancy *",
			"order occupancy@mean dynttl ttl by 0.05",
			"order occupancy@mean ec ecttl",
			"order occupancy@mean immunity cumimm by 0.15"),
		fig("fig19", "Bundle duplication rate, modified vs unmodified (RWP)",
			MetricDuplication, RWPScenario(), enhancedProtocols(),
			"dynTTL above TTL; cum below immunity; EC+TTL >= EC past load 30",
			"order duplication@mean dynttl ttl by 0.04",
			"order duplication@mean ec dynttl by 0.2",
			"ratio duplication@mean ecttl ec 0.9"),
		fig("fig20", "Bundle duplication rate, modified vs unmodified (trace)",
			MetricDuplication, TraceScenario(), enhancedProtocols(),
			"same ordering as fig19",
			"order duplication@mean dynttl ttl by 0.04",
			"order duplication@mean ec dynttl by 0.2",
			"ratio duplication@mean ecttl ec 0.9"),
		fig("overhead", "Signaling overhead: immunity vs cumulative immunity",
			MetricOverhead, TraceScenario(), []ProtocolFactory{Immunity(), CumImmunity()},
			"cumulative transmits ~an order of magnitude fewer records at high load",
			"up overhead immunity",
			"ratio overhead@max immunity cumimm 10",
			"ratio overhead@mean immunity cumimm 10"),
	}
}

// AllExperiments returns the paper's figures followed by the parameter
// ablations.
func AllExperiments() []Figure {
	return append(Figures(), Ablations()...)
}

// FigureByID looks up a figure or ablation specification.
func FigureByID(id string) (Figure, error) {
	for _, f := range AllExperiments() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("experiment: unknown figure %q", id)
}

// Fig14Pair returns the two controlled-interval sweeps behind Fig. 14:
// the same TTL=300 protocol under max intervals of 400 s and 2000 s.
func Fig14Pair() (short, long Sweep) {
	mk := func(maxI float64) Sweep {
		return Sweep{
			Scenario:  IntervalScenario(maxI),
			Protocols: []ProtocolFactory{TTL300()},
			Runs:      10,
			Metrics:   []Metric{MetricDelivery},
		}
	}
	return mk(400), mk(2000)
}

// TableIIRow is one row of the paper's Table II.
type TableIIRow struct {
	Protocol                  string
	DeliveryRWP, DeliveryTr   float64 // percent
	OccupancyRWP, OccupancyTr float64 // percent
	DupRWP, DupTr             float64 // percent
}

// TableII computes the paper's closing comparison: load-averaged
// delivery rate, buffer occupancy level and duplication rate for the
// six §V-B protocols under both mobility sources. workers bounds the
// concurrent runs per sweep exactly as Sweep.Workers does (0 means
// GOMAXPROCS, 1 sequential); results are identical for every value.
func TableII(baseSeed uint64, runs, workers int) ([]TableIIRow, error) {
	if runs == 0 {
		runs = 10
	}
	metrics := []Metric{MetricDelivery, MetricOccupancy, MetricDuplication}
	sweep := func(sc Scenario) (*Result, error) {
		return Run(Sweep{
			Scenario:  sc,
			Protocols: enhancedProtocols(),
			Runs:      runs,
			BaseSeed:  baseSeed,
			Metrics:   metrics,
			Workers:   workers,
		})
	}
	rwp, err := sweep(RWPScenario())
	if err != nil {
		return nil, err
	}
	trace, err := sweep(TraceScenario())
	if err != nil {
		return nil, err
	}
	rows := make([]TableIIRow, len(rwp.Series))
	for i := range rwp.Series {
		rows[i] = TableIIRow{
			Protocol:     rwp.Series[i].Label,
			DeliveryRWP:  100 * MeanOf(rwp.Series[i], MetricDelivery),
			DeliveryTr:   100 * MeanOf(trace.Series[i], MetricDelivery),
			OccupancyRWP: 100 * MeanOf(rwp.Series[i], MetricOccupancy),
			OccupancyTr:  100 * MeanOf(trace.Series[i], MetricOccupancy),
			DupRWP:       100 * MeanOf(rwp.Series[i], MetricDuplication),
			DupTr:        100 * MeanOf(trace.Series[i], MetricDuplication),
		}
	}
	return rows, nil
}
