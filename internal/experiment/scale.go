// Scale sweeps: the node-count axis the streaming contact pipeline
// opens. The paper's experiments stop at 96 nodes because a
// materialized contact plan is O(#contacts) memory and the classic-RWP
// detector O(nodes²) time; with mobility resolved to streaming sources
// (grid-indexed detection, O(nodes) working set) the same engine runs
// thousands of nodes, and the interesting question becomes how delivery
// ratio, delay and buffer occupancy scale with population (Rashidi et
// al.; Chen & Choon Chuah).

package experiment

import (
	"fmt"
	"math"
	"runtime"

	"dtnsim/internal/core"
	"dtnsim/internal/stats"
)

// ScaleSweep sweeps population size instead of load: one flow of Load
// bundles between a random pair, simulated at each node count over
// mobility resolved per run through a streaming source.
type ScaleSweep struct {
	Name string
	// Nodes is the population axis, e.g. 1000, 5000, 10000.
	Nodes []int
	// Mobility maps a population size to a mobility spec. Defaults to
	// ScaleMobility.
	Mobility func(nodes int) string
	// Protocols under test.
	Protocols []ProtocolFactory
	// Load is the bundles per flow; defaults to 30.
	Load int
	// Runs per point; defaults to 3.
	Runs int
	// Span overrides the simulated window (seconds) of the default
	// ScaleMobility mapping; 0 keeps the standard 50,000 s. A reduced
	// span is how the CI smoke and the 100k-node cell stay inside a
	// time budget without changing the constant-density geometry.
	// Ignored when Mobility is set explicitly.
	Span float64
	// BaseSeed anchors all derived randomness.
	BaseSeed uint64
	// Workers bounds concurrent runs (0 = GOMAXPROCS). Results are
	// bit-identical for every value: seeds derive from (BaseSeed,
	// nodes, run) and points fold in run order.
	Workers int
	// Shards selects the per-run executor, mapped straight onto
	// core.Config.Shards: 0 runs the sequential engine, K >= 1 the
	// sharded executor with K workers. Orthogonal to Workers (grid
	// concurrency) and erased from results: every value produces
	// bit-identical simulations.
	Shards int
	// Clock, if set, returns monotonic seconds and turns on per-run
	// wall-clock measurement (ScalePoint.WallClock). The hook keeps
	// time.Now out of the deterministic harness — callers in cmd/*
	// inject it. For clean timing pair it with Workers=1 so runs are
	// not contending for cores.
	Clock func() float64
	// OnPoint, if set, reports progress after each (protocol, nodes)
	// point, from the calling goroutine in sweep order.
	OnPoint func(label string, nodes int)
}

// ScalePoint is one averaged (protocol, nodes) measurement.
type ScalePoint struct {
	Nodes int
	// Delivery is the mean delivery ratio, Delay the mean per-bundle
	// delivery delay over runs that delivered anything (NaN when none
	// did), Occupancy the mean buffer occupancy level.
	Delivery, Delay, Occupancy float64
	// Completed counts runs that delivered every bundle.
	Completed int
	Runs      int
	// WallClock is the mean wall-clock seconds per run, measured only
	// when the sweep's Clock hook is set; 0 otherwise (not NaN, so
	// results stay reflect.DeepEqual-comparable). Reporting
	// only — it never feeds back into the simulation.
	WallClock float64
}

// ScaleSeries is one protocol's curve across populations.
type ScaleSeries struct {
	Label  string
	Points []ScalePoint
}

// ScaleResult is a finished scale sweep.
type ScaleResult struct {
	Name   string
	Nodes  []int
	Series []ScaleSeries
}

// ScaleMobility is the default population→spec mapping: classic RWP at
// constant density (25 nodes/km², 100 m radio range), area side scaled
// with √nodes, a 50,000 s window sampled every 25 s. Density constant
// means per-node contact opportunity is roughly constant while the
// source→destination distance grows with the area — the regime where
// delivery ratio and delay degrade with N.
func ScaleMobility(nodes int) string {
	return ScaleMobilitySpan(nodes, 50000)
}

// ScaleMobilitySpan is ScaleMobility with an explicit simulated window:
// the same constant-density geometry over span seconds. Shorter spans
// keep huge populations (the 100k-node cell) and CI smoke runs inside a
// wall-clock budget.
func ScaleMobilitySpan(nodes int, span float64) string {
	side := 1000 * math.Sqrt(float64(nodes)/25)
	return fmt.Sprintf("rwp:nodes=%d,area=%.0f,span=%.0f,range=100,dt=25", nodes, side, span)
}

// DefaultScaleSweep is the scale experiment the figures CLI runs: pure
// epidemic and epidemic-with-TTL at 1k/5k/10k nodes.
func DefaultScaleSweep() ScaleSweep {
	return ScaleSweep{
		Name:      "scale",
		Nodes:     []int{1000, 5000, 10000},
		Protocols: []ProtocolFactory{Pure(), TTL300()},
	}
}

// RunScale executes the sweep. Every run resolves its mobility spec to
// a streaming source, so contact-plan memory stays O(nodes) even at the
// populations a materialized schedule could not hold.
func RunScale(sw ScaleSweep) (*ScaleResult, error) {
	if len(sw.Nodes) == 0 {
		return nil, fmt.Errorf("experiment: scale sweep has no node counts")
	}
	if len(sw.Protocols) == 0 {
		return nil, fmt.Errorf("experiment: scale sweep has no protocols")
	}
	if sw.Mobility == nil {
		span := sw.Span
		if span <= 0 {
			span = 50000
		}
		sw.Mobility = func(nodes int) string { return ScaleMobilitySpan(nodes, span) }
	}
	if sw.Load <= 0 {
		sw.Load = 30
	}
	if sw.Runs <= 0 {
		sw.Runs = 3
	}
	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The shared flat-grid pool (grid.go): workers drain a job channel,
	// the calling goroutine folds points in sweep order as soon as each
	// point's runs finish — so OnPoint fires live, not in a burst at
	// the end — and a failed run makes workers skip the remaining
	// (expensive, thousands-of-nodes) jobs.
	g := startGrid(len(sw.Protocols), len(sw.Nodes), sw.Runs, workers,
		func(pi, ni, run int) runOutcome {
			return runScaleOne(sw, sw.Protocols[pi], sw.Nodes[ni], run)
		})
	defer g.wait()

	res := &ScaleResult{Name: sw.Name, Nodes: sw.Nodes}
	for pi, pf := range sw.Protocols {
		series := ScaleSeries{Label: pf.Label}
		for ni, n := range sw.Nodes {
			var delivery, delay, occupancy, wall stats.Welford
			completed := 0
			for _, out := range g.waitCell(pi, ni) {
				if out.err != nil {
					return nil, g.fail()
				}
				r := out.res
				if r.Completed {
					completed++
				}
				delivery.Add(r.DeliveryRatio)
				occupancy.Add(r.MeanOccupancy)
				if r.Delivered > 0 {
					delay.Add(r.MeanDelay)
				}
				if sw.Clock != nil {
					wall.Add(out.secs)
				}
			}
			g.releaseCell(pi, ni) // release the point's results once folded
			pt := ScalePoint{
				Nodes:     n,
				Delivery:  delivery.Mean(),
				Occupancy: occupancy.Mean(),
				Delay:     math.NaN(),
				Completed: completed,
				Runs:      sw.Runs,
			}
			if delay.N() > 0 {
				pt.Delay = delay.Mean()
			}
			if wall.N() > 0 {
				pt.WallClock = wall.Mean()
			}
			series.Points = append(series.Points, pt)
			if sw.OnPoint != nil {
				sw.OnPoint(pf.Label, n)
			}
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// runScaleOne executes one (protocol, nodes, run) simulation through a
// streaming source.
func runScaleOne(sw ScaleSweep, pf ProtocolFactory, nodes, run int) runOutcome {
	sc, err := ScenarioFromSpec(sw.Mobility(nodes))
	if err != nil {
		return runOutcome{err: fmt.Errorf("experiment: scale mobility for %d nodes: %w", nodes, err)}
	}
	if sc.Stream == nil {
		return runOutcome{err: fmt.Errorf("experiment: scale mobility %q has no streaming source", sc.Spec)}
	}
	seed := seedFor(sw.BaseSeed, nodes, run)
	src, err := sc.Stream(seed)
	if err != nil {
		return runOutcome{err: fmt.Errorf("experiment: scale source (%d nodes): %w", nodes, err)}
	}
	if src.Nodes() < 2 {
		return runOutcome{err: fmt.Errorf("experiment: scale source reports %d node(s)", src.Nodes())}
	}
	from, to := pickPair(src.Nodes(), seedFor(sw.BaseSeed, 0, run))
	var start float64
	if sw.Clock != nil {
		start = sw.Clock()
	}
	r, err := core.Run(core.Config{
		Source:       src,
		Protocol:     pf.New(),
		Flows:        []core.Flow{{Src: from, Dst: to, Count: sw.Load}},
		TxTime:       sc.TxTime,
		BufferCap:    sc.BufferCap,
		Seed:         seed,
		RunToHorizon: true,
		Shards:       sw.Shards,
	})
	if err != nil {
		return runOutcome{err: fmt.Errorf("experiment: scale %s at %d nodes: %w", pf.Label, nodes, err)}
	}
	out := runOutcome{res: r}
	if sw.Clock != nil {
		out.secs = sw.Clock() - start
	}
	return out
}
