package experiment

import (
	"math"
	"strings"
	"testing"
)

// smallConstrained is a fast two-bandwidth, one-protocol configuration
// over the fixed Cambridge trace.
func smallConstrained() ConstrainedSweep {
	return ConstrainedSweep{
		Name:       "test",
		Scenario:   TraceScenario(),
		Bandwidths: []float64{1e3, 1e6},
		Protocols:  []ProtocolFactory{Pure()},
		Load:       30,
		Runs:       2,
		BaseSeed:   2012,
	}
}

func TestRunConstrainedStructure(t *testing.T) {
	sw := smallConstrained()
	sw.DropPolicies = []string{"droptail", "dropfront"}
	res, err := RunConstrained(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2 (1 protocol x 2 policies)", len(res.Series))
	}
	for _, s := range res.Series {
		if !strings.Contains(s.Label, "/") {
			t.Errorf("multi-policy series label %q should carry the policy", s.Label)
		}
		if len(s.Points) != len(sw.Bandwidths) {
			t.Fatalf("series %q has %d points, want %d", s.Label, len(s.Points), len(sw.Bandwidths))
		}
		for i, p := range s.Points {
			if p.Bandwidth != sw.Bandwidths[i] {
				t.Errorf("point %d bandwidth %g, want %g", i, p.Bandwidth, sw.Bandwidths[i])
			}
			if p.Delivery < 0 || p.Delivery > 1 {
				t.Errorf("delivery %v out of range", p.Delivery)
			}
			if p.Runs != sw.Runs {
				t.Errorf("point records %d runs, want %d", p.Runs, sw.Runs)
			}
		}
	}
}

// TestConstrainedBandwidthBinds: the starved point must deliver less
// than the effectively-unconstrained one, and the unconstrained one
// must see at least as many buffer drops (a starved link injects too
// few copies to create buffer pressure) — the tradeoff the sweep
// exists to expose.
func TestConstrainedBandwidthBinds(t *testing.T) {
	res, err := RunConstrained(smallConstrained())
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	starved, free := pts[0], pts[len(pts)-1]
	if !(starved.Delivery < free.Delivery) {
		t.Errorf("delivery at 1 kB/s (%v) should be below delivery at 1 MB/s (%v)",
			starved.Delivery, free.Delivery)
	}
	if free.Drops < starved.Drops {
		t.Errorf("drops at 1 MB/s (%v) should not be below drops at 1 kB/s (%v)",
			free.Drops, starved.Drops)
	}
}

func TestRunConstrainedDeterministicAcrossWorkers(t *testing.T) {
	seq := smallConstrained()
	seq.Workers = 1
	par := smallConstrained()
	par.Workers = 4
	a, err := RunConstrained(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConstrained(par)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for pi := range a.Series[si].Points {
			pa, pb := a.Series[si].Points[pi], b.Series[si].Points[pi]
			if pa.Delivery != pb.Delivery || pa.Drops != pb.Drops ||
				(pa.Delay != pb.Delay && !(math.IsNaN(pa.Delay) && math.IsNaN(pb.Delay))) {
				t.Fatalf("workers changed point %d/%d: %+v vs %+v", si, pi, pa, pb)
			}
		}
	}
}

func TestRunConstrainedErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ConstrainedSweep)
	}{
		{"no bandwidths", func(s *ConstrainedSweep) { s.Bandwidths = nil }},
		{"negative bandwidth", func(s *ConstrainedSweep) { s.Bandwidths = []float64{-1} }},
		{"zero bandwidth", func(s *ConstrainedSweep) { s.Bandwidths = []float64{0} }},
		{"no protocols", func(s *ConstrainedSweep) { s.Protocols = nil }},
		{"bad policy", func(s *ConstrainedSweep) { s.DropPolicies = []string{"nosuch"} }},
		{"no generator", func(s *ConstrainedSweep) { s.Scenario = Scenario{Name: "empty"} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw := smallConstrained()
			tc.mutate(&sw)
			if _, err := RunConstrained(sw); err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}

func TestDefaultConstrainedSweepRunsReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("full default constrained sweep is slow")
	}
	sw := DefaultConstrainedSweep()
	sw.Runs = 1
	sw.Bandwidths = []float64{1e4}
	res, err := RunConstrained(sw)
	if err != nil {
		t.Fatal(err)
	}
	// 2 protocols x 3 registered policies.
	if len(res.Series) != 6 {
		t.Fatalf("default sweep produced %d series, want 6", len(res.Series))
	}
}
