package experiment

// The shape-regression suite: every figure's Shape statements (the
// machine-checkable form of its Expect prose) are evaluated against a
// measured reduced-run sweep. A change that flips a figure's curve
// shape — a protocol regression, an engine change that breaks a paper
// property — fails here instead of silently drifting. `-short` runs
// every figure at 1 run/point; the full mode uses 3. Both
// configurations were used to tune the statement margins, and sweep
// results are bit-identical for any worker count, so the suite is
// deterministic.

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesTag(t *testing.T) {
	cases := map[string]string{
		"Epidemic with TTL":                 "ttl",
		"Epidemic with EC":                  "ec",
		"Epidemic with EC+TTL":              "ecttl",
		"Epidemic with dynamic TTL":         "dynttl",
		"Epidemic with immunity":            "immunity",
		"Epidemic with cumulative immunity": "cumimm",
		"P-Q epidemic":                      "pq",
		"P-Q epidemic (anti-packets)":       "pqanti",
		"Pure epidemic":                     "pure",
		"Interval time = 400":               "intervaltime400",
	}
	for label, want := range cases {
		if got := SeriesTag(label); got != want {
			t.Errorf("SeriesTag(%q) = %q, want %q", label, got, want)
		}
	}
}

func TestParseShapeRejectsBadStatements(t *testing.T) {
	bad := []string{
		"",
		"up delay",                     // no series
		"sideways delay ttl",           // unknown kind
		"up warp ttl",                  // unknown metric
		"order delay ttl ec",           // missing @AGG
		"order delay@median ttl ec",    // unknown aggregation
		"order delay@mean ttl",         // one series
		"order delay@mean ttl ec by x", // bad margin
		"ratio delay@mean ttl ec",      // missing floor
		"ratio delay@mean ttl ec 0",    // non-positive floor
		"order delay@mean * ec",        // wildcard outside up/down
	}
	for _, stmt := range bad {
		if _, err := ParseShape(stmt); err == nil {
			t.Errorf("ParseShape(%q) accepted a bad statement", stmt)
		}
	}
}

// synthetic builds a two-series result for evaluator unit tests.
func synthetic() *Result {
	mk := func(label string, vals []float64) Series {
		s := Series{Label: label}
		for i, v := range vals {
			s.Points = append(s.Points, Point{
				Load:   5 * (i + 1),
				Values: map[Metric]float64{MetricDelivery: v},
			})
		}
		return s
	}
	return &Result{
		Loads: []int{5, 10, 15},
		Series: []Series{
			mk("Epidemic with TTL", []float64{0.9, 0.6, 0.3}),
			mk("Epidemic with EC", []float64{1.0, 1.0, 0.95}),
		},
	}
}

func TestShapeEval(t *testing.T) {
	res := synthetic()
	pass := []string{
		"down delivery ttl",
		"down delivery *",
		"up delivery ec", // 1.0 -> 0.95 is within the 5% slack
		"order delivery@mean ec ttl by 0.3",
		"order delivery@max ec ttl",
		"order delivery@min ec ttl",
		"ratio delivery@mean ec ttl 1.5",
	}
	for _, stmt := range pass {
		if errs := CheckShapes([]string{stmt}, res); len(errs) != 0 {
			t.Errorf("statement %q should pass: %v", stmt, errs)
		}
	}
	fail := []string{
		"up delivery ttl",
		"down delivery nosuch",              // unresolvable tag fails loudly
		"order delivery@mean ttl ec",        // wrong order
		"order delivery@mean ec ttl by 0.9", // margin too big
		"ratio delivery@mean ec ttl 2.5",    // floor too high
	}
	for _, stmt := range fail {
		if errs := CheckShapes([]string{stmt}, res); len(errs) == 0 {
			t.Errorf("statement %q should fail", stmt)
		}
	}
}

func TestShapeEvalNaNHandling(t *testing.T) {
	// A delay series whose high-load points are NaN (no run completed)
	// must evaluate against its non-NaN endpoints, and an all-NaN
	// series must fail rather than pass vacuously.
	s := Series{Label: "Epidemic with TTL"}
	for i, v := range []float64{100, 300, math.NaN()} {
		s.Points = append(s.Points, Point{Load: 5 * (i + 1), Values: map[Metric]float64{MetricDelay: v}})
	}
	res := &Result{Series: []Series{s}}
	if errs := CheckShapes([]string{"up delay ttl"}, res); len(errs) != 0 {
		t.Errorf("NaN tail should fall back to last non-NaN point: %v", errs)
	}
	allNaN := &Result{Series: []Series{{Label: "Epidemic with TTL", Points: []Point{
		{Load: 5, Values: map[Metric]float64{MetricDelay: math.NaN()}},
	}}}}
	if errs := CheckShapes([]string{"up delay ttl"}, allNaN); len(errs) == 0 {
		t.Error("an all-NaN series must fail the statement, not pass vacuously")
	}
	// A metric the sweep never recorded (missing Values entries, which
	// read as 0.0 through a plain map lookup) must also fail loudly.
	unrecorded := synthetic() // records delivery only
	for _, stmt := range []string{"up delay ttl", "order delay@mean ec ttl", "ratio delay@max ec ttl 1"} {
		if errs := CheckShapes([]string{stmt}, unrecorded); len(errs) == 0 {
			t.Errorf("statement %q over an unrecorded metric passed vacuously", stmt)
		}
	}
}

// TestEveryFigureDeclaresShape: a figure without machine-checkable
// shape statements would be exempt from the regression suite — new
// figures must ship with them. Statements must parse and reference
// only series the figure's sweep actually produces.
func TestEveryFigureDeclaresShape(t *testing.T) {
	for _, f := range Figures() {
		if len(f.Shape) == 0 {
			t.Errorf("%s: no Shape statements (Expect %q is unchecked)", f.ID, f.Expect)
			continue
		}
		tags := map[string]bool{"*": true}
		for _, pf := range f.Sweep.Protocols {
			tags[SeriesTag(pf.Label)] = true
		}
		recorded := map[Metric]bool{}
		for _, m := range f.Sweep.Metrics {
			recorded[m] = true
		}
		for _, stmt := range f.Shape {
			c, err := ParseShape(stmt)
			if err != nil {
				t.Errorf("%s: %v", f.ID, err)
				continue
			}
			for _, tag := range c.Tags {
				if !tags[tag] {
					t.Errorf("%s: shape %q references unknown series %q", f.ID, stmt, tag)
				}
			}
			if !recorded[c.Metric] {
				t.Errorf("%s: shape %q references metric %q the sweep does not record", f.ID, stmt, c.Metric)
			}
		}
	}
}

// shapeRuns returns the reduced run count the suite uses.
func shapeRuns() int {
	if testing.Short() {
		return 1
	}
	return 3
}

// TestFigureShapes runs every figure at reduced runs and evaluates its
// Shape statements against the measured curves.
func TestFigureShapes(t *testing.T) {
	for _, f := range Figures() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			f.Sweep.Runs = shapeRuns()
			f.Sweep.BaseSeed = 2012
			f.Sweep.Workers = 0
			res, err := Run(f.Sweep)
			if err != nil {
				t.Fatal(err)
			}
			for _, err := range CheckShapes(f.Shape, res) {
				t.Error(err)
			}
		})
	}
}

// TestFig14PairShape checks the claim the fig14 figure alone cannot:
// the 400 s-interval scenario must out-deliver the 2000 s one by the
// paper's >=20% (mean delivery ratio floor 1.25; measured ~1.9-2.1 at
// reduced runs).
func TestFig14PairShape(t *testing.T) {
	short, long := Fig14Pair()
	short.Runs, long.Runs = shapeRuns(), shapeRuns()
	short.BaseSeed, long.BaseSeed = 2012, 2012
	rs, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	merged := &Result{
		Scenario: "interval",
		Loads:    rs.Loads,
		Series: []Series{
			{Label: "Interval time = 400", Points: rs.Series[0].Points},
			{Label: "Interval time = 2000", Points: rl.Series[0].Points},
		},
	}
	stmts := []string{
		"ratio delivery@mean intervaltime400 intervaltime2000 1.25",
		"order delivery@mean intervaltime400 intervaltime2000 by 0.1",
	}
	for _, err := range CheckShapes(stmts, merged) {
		t.Error(err)
	}
}

// TestShapeSuiteCatchesDrift: sanity-check that the suite would
// actually fire — an inverted statement over real measured data fails.
func TestShapeSuiteCatchesDrift(t *testing.T) {
	f, err := FigureByID("fig13")
	if err != nil {
		t.Fatal(err)
	}
	f.Sweep.Runs = 1
	f.Sweep.BaseSeed = 2012
	f.Sweep.Workers = 0
	res, err := Run(f.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	inverted := []string{"order delivery@mean ttl ec by 0.2"} // the true ordering is ec > ttl
	errs := CheckShapes(inverted, res)
	if len(errs) == 0 {
		t.Fatal("inverted ordering passed; the suite cannot catch drift")
	}
	if !strings.Contains(errs[0].Error(), "violated") {
		t.Errorf("unexpected error text: %v", errs[0])
	}
}
