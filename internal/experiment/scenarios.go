package experiment

import (
	"dtnsim/internal/contact"
	"dtnsim/internal/mobility"
	"dtnsim/internal/protocol"
)

// TraceScenario is the paper's trace-based setup: the (synthetic)
// Cambridge iMote encounter trace, fixed across runs like a real trace
// file, 12 nodes, 100 s/bundle, 10-bundle buffers.
func TraceScenario() Scenario {
	return Scenario{
		Name: "trace",
		Generate: func(seed uint64) (*contact.Schedule, error) {
			return mobility.SyntheticCambridge{Seed: seed}.Generate()
		},
		PerRunSchedule: false,
	}
}

// RWPScenario is the paper's modified Random-WayPoint setup: subscriber
// points in 1 km², 600,000 s horizon, regenerated per run.
func RWPScenario() Scenario {
	return Scenario{
		Name: "rwp",
		Generate: func(seed uint64) (*contact.Schedule, error) {
			return mobility.SubscriberPointRWP{Seed: seed}.Generate()
		},
		PerRunSchedule: true,
	}
}

// IntervalScenario is the Fig. 14 controlled-interval setup: 20 nodes,
// at most 20 encounters each, inter-encounter gap bounded by maxInterval
// seconds, regenerated per run.
func IntervalScenario(maxInterval float64) Scenario {
	return Scenario{
		Name: "interval",
		Generate: func(seed uint64) (*contact.Schedule, error) {
			return mobility.ControlledInterval{Seed: seed, MaxInterval: maxInterval}.Generate()
		},
		PerRunSchedule: true,
		// A faster link than the trace scenario: contacts stay short
		// relative to the 300 s TTL while still carrying 4–12 bundles,
		// which is what gives Fig. 14 its capacity profile.
		TxTime: 25,
	}
}

// Protocol factories matching the paper's configurations.

// PQ11 is P-Q epidemic with P=Q=1, the paper's best-delay configuration.
func PQ11() ProtocolFactory {
	return ProtocolFactory{Label: "P-Q epidemic", New: func() protocol.Protocol { return protocol.NewPQ(1, 1) }}
}

// PQ11Anti is P-Q epidemic with P=Q=1 and the §II anti-packet channel,
// the variant whose delay the paper reports as matching immunity's.
func PQ11Anti() ProtocolFactory {
	return ProtocolFactory{
		Label: "P-Q epidemic (anti-packets)",
		New:   func() protocol.Protocol { return protocol.NewPQ(1, 1).WithAntiPackets() },
	}
}

// PQ returns a P-Q factory for arbitrary probabilities (the §IV sweep
// uses 0.1, 0.5 and 1).
func PQ(p, q float64) ProtocolFactory {
	return ProtocolFactory{
		Label: protocol.NewPQ(p, q).Name(),
		New:   func() protocol.Protocol { return protocol.NewPQ(p, q) },
	}
}

// TTL300 is epidemic with the constant TTL of 300 s used in §V.
func TTL300() ProtocolFactory {
	return ProtocolFactory{Label: "Epidemic with TTL", New: func() protocol.Protocol { return protocol.NewTTL(300) }}
}

// TTLConst returns epidemic with an arbitrary constant TTL (the §IV
// sweep uses 50, 100, 150 and 200).
func TTLConst(ttl float64) ProtocolFactory {
	return ProtocolFactory{
		Label: protocol.NewTTL(ttl).Name(),
		New:   func() protocol.Protocol { return protocol.NewTTL(ttl) },
	}
}

// DynTTL is the paper's dynamic-TTL enhancement.
func DynTTL() ProtocolFactory {
	return ProtocolFactory{Label: "Epidemic with dynamic TTL", New: func() protocol.Protocol { return protocol.NewDynamicTTL() }}
}

// EC is epidemic with encounter count.
func EC() ProtocolFactory {
	return ProtocolFactory{Label: "Epidemic with EC", New: func() protocol.Protocol { return protocol.NewEC() }}
}

// ECTTL is the paper's EC+TTL enhancement.
func ECTTL() ProtocolFactory {
	return ProtocolFactory{Label: "Epidemic with EC+TTL", New: func() protocol.Protocol { return protocol.NewECTTL() }}
}

// Immunity is epidemic with per-bundle immunity tables.
func Immunity() ProtocolFactory {
	return ProtocolFactory{Label: "Epidemic with immunity", New: func() protocol.Protocol { return protocol.NewImmunity() }}
}

// CumImmunity is the paper's cumulative-immunity enhancement.
func CumImmunity() ProtocolFactory {
	return ProtocolFactory{Label: "Epidemic with cumulative immunity", New: func() protocol.Protocol { return protocol.NewCumulativeImmunity() }}
}

// Pure is pure epidemic (Vahdat & Becker), the baseline all variants
// derive from.
func Pure() ProtocolFactory {
	return ProtocolFactory{Label: "Pure epidemic", New: func() protocol.Protocol { return protocol.NewPure() }}
}
