package experiment

import (
	"fmt"
	"strconv"
)

// The standard scenarios and protocol factories are thin wrappers over
// the mobility and protocol registries: each one resolves a canonical
// spec string, so every sweep they appear in is expressible as data
// (see SweepSpec in the public package). Display names are pinned to
// the paper's legends and to the pre-registry report labels.

// TraceScenario is the paper's trace-based setup: the (synthetic)
// Cambridge iMote encounter trace, fixed across runs like a real trace
// file, 12 nodes, 100 s/bundle, 10-bundle buffers.
func TraceScenario() Scenario {
	sc := mustScenario("cambridge")
	sc.Name = "trace"
	return sc
}

// RWPScenario is the paper's modified Random-WayPoint setup: subscriber
// points in 1 km², 600,000 s horizon, regenerated per run.
func RWPScenario() Scenario {
	sc := mustScenario("subscriber")
	sc.Name = "rwp"
	return sc
}

// IntervalScenario is the Fig. 14 controlled-interval setup: 20 nodes,
// at most 20 encounters each, inter-encounter gap bounded by maxInterval
// seconds, regenerated per run. The registry preset gives it a faster
// link than the trace scenario (25 s/bundle): contacts stay short
// relative to the 300 s TTL while still carrying 4–12 bundles, which is
// what gives Fig. 14 its capacity profile.
func IntervalScenario(maxInterval float64) Scenario {
	sc := mustScenario("interval:max=" + strconv.FormatFloat(maxInterval, 'g', -1, 64))
	sc.Name = "interval"
	return sc
}

// Protocol factories matching the paper's configurations.

// PQ11 is P-Q epidemic with P=Q=1, the paper's best-delay configuration.
func PQ11() ProtocolFactory {
	return mustFactory("pq:p=1,q=1", "P-Q epidemic")
}

// PQ11Anti is P-Q epidemic with P=Q=1 and the §II anti-packet channel,
// the variant whose delay the paper reports as matching immunity's.
func PQ11Anti() ProtocolFactory {
	return mustFactory("pq:p=1,q=1,anti", "P-Q epidemic (anti-packets)")
}

// PQ returns a P-Q factory for arbitrary probabilities (the §IV sweep
// uses 0.1, 0.5 and 1). The label is the protocol's display name.
func PQ(p, q float64) ProtocolFactory {
	return mustFactory(fmt.Sprintf("pq:p=%g,q=%g", p, q), "")
}

// TTL300 is epidemic with the constant TTL of 300 s used in §V.
func TTL300() ProtocolFactory {
	return mustFactory("ttl:300", "Epidemic with TTL")
}

// TTLConst returns epidemic with an arbitrary constant TTL (the §IV
// sweep uses 50, 100, 150 and 200).
func TTLConst(ttl float64) ProtocolFactory {
	return mustFactory("ttl:"+strconv.FormatFloat(ttl, 'g', -1, 64), "")
}

// DynTTL is the paper's dynamic-TTL enhancement.
func DynTTL() ProtocolFactory {
	return mustFactory("dynttl", "Epidemic with dynamic TTL")
}

// EC is epidemic with encounter count.
func EC() ProtocolFactory {
	return mustFactory("ec", "Epidemic with EC")
}

// ECTTL is the paper's EC+TTL enhancement.
func ECTTL() ProtocolFactory {
	return mustFactory("ecttl", "Epidemic with EC+TTL")
}

// Immunity is epidemic with per-bundle immunity tables.
func Immunity() ProtocolFactory {
	return mustFactory("immunity", "Epidemic with immunity")
}

// CumImmunity is the paper's cumulative-immunity enhancement.
func CumImmunity() ProtocolFactory {
	return mustFactory("cumimmunity", "Epidemic with cumulative immunity")
}

// Pure is pure epidemic (Vahdat & Becker), the baseline all variants
// derive from.
func Pure() ProtocolFactory {
	return mustFactory("pure", "Pure epidemic")
}
