package experiment

import (
	"sync"
	"sync/atomic"
)

// outcomeGrid runs a flat (nI × nJ × runs) simulation grid on a
// bounded worker pool: the shape RunScale and RunConstrained share.
// Workers drain a job channel; the caller folds cells in sweep order
// via waitCell as soon as each cell's runs finish (so OnPoint fires
// live), releases folded cells to bound memory, and on a failed run
// calls fail() — the first error flips the skip flag so the remaining
// (potentially expensive) jobs are marked skipped rather than run.
//
// RunSweep keeps its own pool: its in-flight window backpressure and
// in-order OnPoint contract differ materially from the flat grid.
type outcomeGrid struct {
	outcomes [][][]runOutcome
	pending  [][]sync.WaitGroup
	failed   atomic.Bool
	wg       sync.WaitGroup
}

// startGrid dispatches the full grid over workers goroutines and
// returns immediately; job(i, j, run) executes one simulation.
func startGrid(nI, nJ, runs, workers int, job func(i, j, run int) runOutcome) *outcomeGrid {
	g := &outcomeGrid{
		outcomes: make([][][]runOutcome, nI),
		pending:  make([][]sync.WaitGroup, nI),
	}
	for i := 0; i < nI; i++ {
		g.outcomes[i] = make([][]runOutcome, nJ)
		g.pending[i] = make([]sync.WaitGroup, nJ)
		for j := 0; j < nJ; j++ {
			g.outcomes[i][j] = make([]runOutcome, runs)
			g.pending[i][j].Add(runs)
		}
	}
	type jobKey struct{ i, j, run int }
	jobs := make(chan jobKey)
	for w := 0; w < workers; w++ {
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			for k := range jobs {
				if g.failed.Load() {
					g.outcomes[k.i][k.j][k.run] = runOutcome{err: errSkipped}
				} else {
					out := job(k.i, k.j, k.run)
					if out.err != nil {
						g.failed.Store(true)
					}
					g.outcomes[k.i][k.j][k.run] = out
				}
				g.pending[k.i][k.j].Done()
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := 0; i < nI; i++ {
			for j := 0; j < nJ; j++ {
				for run := 0; run < runs; run++ {
					jobs <- jobKey{i, j, run}
				}
			}
		}
	}()
	return g
}

// waitCell blocks until every run of cell (i, j) has finished and
// returns its outcomes.
func (g *outcomeGrid) waitCell(i, j int) []runOutcome {
	g.pending[i][j].Wait()
	return g.outcomes[i][j]
}

// releaseCell drops a folded cell's run results so a long sweep does
// not hold every Result live at once.
func (g *outcomeGrid) releaseCell(i, j int) { g.outcomes[i][j] = nil }

// fail drains the whole grid — after the skip flag is set, workers
// mark the rest skipped quickly — and returns the first non-skip error
// in grid order. The drain is what makes the scan safe: without it
// workers would still be writing outcome cells (a data race) and the
// causal error might not have landed yet.
func (g *outcomeGrid) fail() error {
	g.failed.Store(true)
	for i := range g.pending {
		for j := range g.pending[i] {
			g.pending[i][j].Wait()
		}
	}
	var skip error
	for _, byCell := range g.outcomes {
		for _, byRun := range byCell {
			for _, out := range byRun {
				if out.err == nil {
					continue
				}
				if out.err != errSkipped {
					return out.err
				}
				skip = out.err
			}
		}
	}
	return skip
}

// wait blocks until every worker has exited (the grid fully drained).
func (g *outcomeGrid) wait() { g.wg.Wait() }
