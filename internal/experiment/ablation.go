package experiment

import "fmt"

// Ablations returns the parameter-sweep experiments behind the paper's
// methodology (§IV swept TTL ∈ {50,100,150,200} and P=Q ∈ {0.1,0.5,1})
// plus sensitivity sweeps for the enhancement parameters DESIGN.md
// calls out. They run through the same harness as the figures and are
// addressable by ID via FigureByID.
func Ablations() []Figure {
	ttlFactories := make([]ProtocolFactory, 0, 5)
	for _, ttl := range []float64{50, 100, 150, 200, 300} {
		ttlFactories = append(ttlFactories, TTLConst(ttl))
	}

	pqFactories := make([]ProtocolFactory, 0, 3)
	for _, p := range []float64{0.1, 0.5, 1.0} {
		pqFactories = append(pqFactories, PQ(p, p))
	}

	multFactories := make([]ProtocolFactory, 0, 3)
	for _, m := range []float64{1, 2, 4} {
		multFactories = append(multFactories,
			mustFactory(fmt.Sprintf("dynttl:mult=%g", m), fmt.Sprintf("Dynamic TTL ×%g", m)))
	}

	threshFactories := make([]ProtocolFactory, 0, 3)
	for _, th := range []int{4, 8, 12} {
		threshFactories = append(threshFactories,
			mustFactory(fmt.Sprintf("ecttl:thresh=%d", th), fmt.Sprintf("EC+TTL threshold %d", th)))
	}

	mk := func(id, title string, m Metric, sc Scenario, ps []ProtocolFactory, expect string) Figure {
		return Figure{
			ID: id, Title: title, Metric: m,
			Sweep:  Sweep{Scenario: sc, Protocols: ps, Runs: 10, Metrics: []Metric{m, MetricDelivery, MetricOccupancy}},
			Expect: expect,
		}
	}
	return []Figure{
		mk("ttlsweep", "Ablation: delivery ratio across constant TTL values (trace)",
			MetricDelivery, TraceScenario(), ttlFactories,
			"delivery increases monotonically with the TTL constant; even TTL=300 trails no-expiry protocols"),
		mk("pqsweep", "Ablation: delivery ratio across P=Q values (trace)",
			MetricDelivery, TraceScenario(), pqFactories,
			"P=Q=0.1 wastes encounters: lower delivery and longer delay than P=Q=1 (§II-C)"),
		mk("dynmult", "Ablation: dynamic-TTL interval multiplier (trace)",
			MetricDelivery, TraceScenario(), multFactories,
			"×1 under-buffers; ×2 (the paper's choice) captures most of the gain; ×4 adds occupancy for little delivery"),
		mk("ecthresh", "Ablation: EC+TTL ageing threshold (RWP)",
			MetricOccupancy, RWPScenario(), threshFactories,
			"a lower threshold ages copies sooner and cuts occupancy; too low risks delivery at high load"),
	}
}
