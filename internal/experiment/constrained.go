// Constrained sweeps: the resource axis the finite-bandwidth contact
// model opens (DESIGN.md §9). The paper's experiments treat every
// contact as an infinite-bandwidth instant exchange and every bundle as
// size-zero; with sized bundles, per-contact byte budgets and buffer
// byte capacities in the engine, the interesting questions become how
// delivery, delay and drops respond to link bandwidth at a fixed load
// (Chen et al.'s buffer-occupancy/delivery-reliability tradeoff) and
// how the drop policy shifts that tradeoff (drop-tail versus
// drop-oldest versus random, as DTN stacks like ns-3's must choose).

package experiment

import (
	"fmt"
	"math"
	"runtime"

	"dtnsim/internal/buffer"
	"dtnsim/internal/core"
	"dtnsim/internal/stats"
)

// ConstrainedSweep sweeps contact bandwidth at a fixed load: one flow
// of Load sized bundles between a random pair, simulated at each
// bandwidth for every (protocol, drop policy) series.
type ConstrainedSweep struct {
	Name string
	// Scenario is the mobility substrate; its own resource knobs are
	// ignored — the sweep supplies them per point.
	Scenario Scenario
	// Bandwidths is the bytes/sec axis, ascending.
	Bandwidths []float64
	// Protocols under test.
	Protocols []ProtocolFactory
	// DropPolicies are compared as separate series per protocol;
	// empty means just the default droptail.
	DropPolicies []string
	// Load is the bundles per flow; defaults to 30.
	Load int
	// BundleSize is the payload bytes per bundle; defaults to 1 MB
	// (the paper speaks of bundles of hundreds of megabytes; 1 MB at
	// the default 100 s slot keeps the byte and slot budgets
	// commensurate).
	BundleSize int64
	// BufferBytes is the per-node byte capacity; defaults to
	// 5×BundleSize — deliberately below the 10-slot capacity's worth,
	// so byte pressure (not the slot count) is the binding constraint
	// and the drop policies differentiate.
	BufferBytes int64
	// ControlBytes optionally charges signaling against the byte
	// budget (§V-C overhead as a resource).
	ControlBytes float64
	// Runs per point; defaults to 3.
	Runs int
	// BaseSeed anchors all derived randomness.
	BaseSeed uint64
	// Workers bounds concurrent runs (0 = GOMAXPROCS). Results are
	// bit-identical for every value: seeds derive from (BaseSeed,
	// point, run) and points fold in run order.
	Workers int
	// OnPoint, if set, reports progress after each (series, bandwidth)
	// point, from the calling goroutine in sweep order.
	OnPoint func(label string, bw float64)
}

// ConstrainedPoint is one averaged (series, bandwidth) measurement.
type ConstrainedPoint struct {
	Bandwidth float64
	// Delivery is the mean delivery ratio; Delay the mean per-bundle
	// delivery delay over runs that delivered anything (NaN when none
	// did); Drops the mean buffer-policy drops per run (refusals,
	// evictions, TTL expiries and byte-pressure drops combined);
	// ByteDropped and Refused split out the two drop kinds the byte
	// capacity drives.
	Delivery, Delay, Drops, ByteDropped, Refused float64
	// Completed counts runs that delivered every bundle.
	Completed int
	Runs      int
}

// ConstrainedSeries is one (protocol, drop policy) curve across
// bandwidths.
type ConstrainedSeries struct {
	Label    string
	Protocol string
	Policy   string
	Points   []ConstrainedPoint
}

// ConstrainedResult is a finished constrained sweep.
type ConstrainedResult struct {
	Name       string
	Bandwidths []float64
	Series     []ConstrainedSeries
}

// DefaultConstrainedSweep is the constrained experiment the figures CLI
// runs (`figures -only constrained`): pure epidemic and epidemic-with-
// TTL over the Cambridge trace, 1 MB bundles at load 30, bandwidths
// from starved (a 100 s contact carries a fraction of a bundle) to
// effectively unconstrained, under all three drop policies.
func DefaultConstrainedSweep() ConstrainedSweep {
	return ConstrainedSweep{
		Name:         "constrained",
		Scenario:     TraceScenario(),
		Bandwidths:   []float64{1e3, 3e3, 1e4, 3e4, 1e5},
		Protocols:    []ProtocolFactory{Pure(), TTL300()},
		DropPolicies: buffer.DropPolicyNames(),
	}
}

// RunConstrained executes the sweep: delivery/delay/drops versus
// bandwidth at fixed load, with one series per (protocol, drop policy).
func RunConstrained(sw ConstrainedSweep) (*ConstrainedResult, error) {
	if len(sw.Bandwidths) == 0 {
		return nil, fmt.Errorf("experiment: constrained sweep has no bandwidths")
	}
	for _, bw := range sw.Bandwidths {
		if !(bw > 0) || math.IsInf(bw, 0) {
			return nil, fmt.Errorf("experiment: constrained sweep bandwidth %v must be positive and finite", bw)
		}
	}
	if len(sw.Protocols) == 0 {
		return nil, fmt.Errorf("experiment: constrained sweep has no protocols")
	}
	if sw.Scenario.Stream == nil && sw.Scenario.Generate == nil {
		return nil, fmt.Errorf("experiment: constrained scenario %q has no generator", sw.Scenario.Name)
	}
	if len(sw.DropPolicies) == 0 {
		sw.DropPolicies = []string{buffer.DefaultDropPolicy}
	}
	for _, p := range sw.DropPolicies {
		if !buffer.ValidDropPolicy(p) {
			return nil, fmt.Errorf("experiment: unknown drop policy %q", p)
		}
	}
	if sw.Load <= 0 {
		sw.Load = 30
	}
	if sw.BundleSize <= 0 {
		sw.BundleSize = 1 << 20
	}
	if sw.BufferBytes <= 0 {
		sw.BufferBytes = 5 * sw.BundleSize
	}
	if sw.Runs <= 0 {
		sw.Runs = 3
	}
	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// One series per (protocol, policy); a single policy keeps the
	// plain protocol label so the output matches the other sweeps.
	type seriesKey struct{ pi, di int }
	var keys []seriesKey
	for pi := range sw.Protocols {
		for di := range sw.DropPolicies {
			keys = append(keys, seriesKey{pi, di})
		}
	}
	label := func(k seriesKey) string {
		if len(sw.DropPolicies) == 1 {
			return sw.Protocols[k.pi].Label
		}
		return sw.Protocols[k.pi].Label + " / " + sw.DropPolicies[k.di]
	}

	// The shared flat-grid pool (grid.go): workers drain a job channel,
	// the caller folds points in sweep order as soon as each point's
	// runs finish, and a failed run makes the rest skip.
	g := startGrid(len(keys), len(sw.Bandwidths), sw.Runs, workers,
		func(si, bi, run int) runOutcome {
			k := keys[si]
			return runConstrainedOne(sw, sw.Protocols[k.pi], sw.DropPolicies[k.di], sw.Bandwidths[bi], bi, run)
		})
	defer g.wait()

	res := &ConstrainedResult{Name: sw.Name, Bandwidths: sw.Bandwidths}
	for si, k := range keys {
		series := ConstrainedSeries{
			Label:    label(k),
			Protocol: sw.Protocols[k.pi].Label,
			Policy:   sw.DropPolicies[k.di],
		}
		for bi, bw := range sw.Bandwidths {
			var delivery, delay, drops, byteDropped, refused stats.Welford
			completed := 0
			for _, out := range g.waitCell(si, bi) {
				if out.err != nil {
					return nil, g.fail()
				}
				r := out.res
				if r.Completed {
					completed++
				}
				delivery.Add(r.DeliveryRatio)
				drops.Add(float64(r.Refused + r.Evicted + r.Expired + r.ByteDropped))
				byteDropped.Add(float64(r.ByteDropped))
				refused.Add(float64(r.Refused))
				if r.Delivered > 0 {
					delay.Add(r.MeanDelay)
				}
			}
			g.releaseCell(si, bi) // release the point's results once folded
			pt := ConstrainedPoint{
				Bandwidth:   bw,
				Delivery:    delivery.Mean(),
				Delay:       math.NaN(),
				Drops:       drops.Mean(),
				ByteDropped: byteDropped.Mean(),
				Refused:     refused.Mean(),
				Completed:   completed,
				Runs:        sw.Runs,
			}
			if delay.N() > 0 {
				pt.Delay = delay.Mean()
			}
			series.Points = append(series.Points, pt)
			if sw.OnPoint != nil {
				sw.OnPoint(series.Label, bw)
			}
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// runConstrainedOne executes one (series, bandwidth, run) simulation.
// Seeds depend only on (BaseSeed, bandwidth index, run) — like the load
// sweep's (load, run) — so every series compares the same mobility and
// pair draws at each point.
func runConstrainedOne(sw ConstrainedSweep, pf ProtocolFactory, policy string, bw float64, bi, run int) runOutcome {
	seed := seedFor(sw.BaseSeed, bi+1, run)
	cfg := core.Config{
		Protocol:     pf.New(),
		TxTime:       sw.Scenario.TxTime,
		BufferCap:    sw.Scenario.BufferCap,
		Seed:         seed,
		RunToHorizon: true,
		Bandwidth:    bw,
		BufferBytes:  sw.BufferBytes,
		DropPolicy:   policy,
		ControlBytes: sw.ControlBytes,
	}
	var nodes int
	switch {
	case sw.Scenario.Stream != nil:
		streamSeed := seed
		if !sw.Scenario.PerRunSchedule {
			streamSeed = sw.BaseSeed
		}
		src, err := sw.Scenario.Stream(streamSeed)
		if err != nil {
			return runOutcome{err: fmt.Errorf("experiment: constrained %s source: %w", sw.Scenario.Name, err)}
		}
		cfg.Source = src
		nodes = src.Nodes()
	default:
		s, err := sw.Scenario.Generate(seed)
		if err != nil {
			return runOutcome{err: fmt.Errorf("experiment: constrained %s schedule: %w", sw.Scenario.Name, err)}
		}
		cfg.Schedule = s
		nodes = s.Nodes
	}
	if nodes < 2 {
		return runOutcome{err: fmt.Errorf("experiment: constrained %s schedule has %d node(s)", sw.Scenario.Name, nodes)}
	}
	src, dst := pickPair(nodes, seedFor(sw.BaseSeed, 0, run))
	cfg.Flows = []core.Flow{{Src: src, Dst: dst, Count: sw.Load, Size: sw.BundleSize}}
	r, err := core.Run(cfg)
	if err != nil {
		return runOutcome{err: fmt.Errorf("experiment: constrained %s/%s bw %g: %w", sw.Scenario.Name, pf.Label, bw, err)}
	}
	return runOutcome{res: r}
}
