package experiment

import (
	"fmt"
	"math"
	"testing"

	"dtnsim/internal/contact"
)

func tinySweep() Sweep {
	return Sweep{
		Scenario:  TraceScenario(),
		Protocols: []ProtocolFactory{TTL300(), EC()},
		Loads:     []int{5, 15},
		Runs:      2,
		BaseSeed:  4,
	}
}

func TestRunSweepStructure(t *testing.T) {
	res, err := Run(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "trace" {
		t.Errorf("Scenario = %q", res.Scenario)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: points = %d", s.Label, len(s.Points))
		}
		for i, p := range s.Points {
			if p.Load != res.Loads[i] {
				t.Errorf("%s point %d: load %d, want %d", s.Label, i, p.Load, res.Loads[i])
			}
			if p.Runs != 2 {
				t.Errorf("Runs = %d", p.Runs)
			}
			if p.Completed < 0 || p.Completed > p.Runs {
				t.Errorf("Completed = %d of %d", p.Completed, p.Runs)
			}
			for _, m := range AllMetrics() {
				v, ok := p.Values[m]
				if !ok {
					t.Fatalf("metric %s missing", m)
				}
				if m != MetricDelay && (math.IsNaN(v) || v < 0) {
					t.Errorf("%s = %v", m, v)
				}
			}
		}
	}
}

func TestRunSweepDefaults(t *testing.T) {
	sw := tinySweep()
	sw.Loads = nil
	sw.Runs = 0
	sw.Metrics = []Metric{MetricDelivery}
	sw.Protocols = sw.Protocols[:1]
	sw.Runs = 1
	res, err := Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loads) != 10 || res.Loads[0] != 5 || res.Loads[9] != 50 {
		t.Errorf("default loads = %v", res.Loads)
	}
}

func TestRunSweepErrors(t *testing.T) {
	sw := tinySweep()
	sw.Scenario.Generate = nil
	sw.Scenario.Stream = nil
	if _, err := Run(sw); err == nil {
		t.Error("nil generator accepted")
	}
	sw = tinySweep()
	sw.Protocols = nil
	if _, err := Run(sw); err == nil {
		t.Error("no protocols accepted")
	}
	sw = tinySweep()
	sw.Metrics = []Metric{"bogus"}
	if _, err := Run(sw); err == nil {
		t.Error("unknown metric accepted")
	}
	sw = tinySweep()
	sw.Scenario.Stream = nil
	sw.Scenario.Generate = func(uint64) (*contact.Schedule, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, err := Run(sw); err == nil {
		t.Error("generator error swallowed")
	}
	sw = tinySweep()
	sw.Scenario.Stream = func(uint64) (contact.Source, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, err := Run(sw); err == nil {
		t.Error("stream error swallowed")
	}
}

func TestSeedForIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for load := 5; load <= 50; load += 5 {
		for run := 0; run < 10; run++ {
			s := seedFor(1, load, run)
			if seen[s] {
				t.Fatalf("seed collision at load=%d run=%d", load, run)
			}
			seen[s] = true
		}
	}
	if seedFor(1, 5, 0) != seedFor(1, 5, 0) {
		t.Error("seedFor not deterministic")
	}
	if seedFor(1, 5, 0) == seedFor(2, 5, 0) {
		t.Error("base seed ignored")
	}
}

func TestPickPair(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		src, dst := pickPair(12, seed)
		if src == dst {
			t.Fatalf("seed %d: src == dst == %d", seed, src)
		}
		if src < 0 || src >= 12 || dst < 0 || dst >= 12 {
			t.Fatalf("seed %d: pair (%d,%d) out of range", seed, src, dst)
		}
	}
	// All destinations reachable, not just dst != src by off-by-one.
	hit := map[contact.NodeID]bool{}
	for seed := uint64(0); seed < 500; seed++ {
		_, dst := pickPair(4, seed)
		hit[dst] = true
	}
	if len(hit) != 4 {
		t.Errorf("only %d/4 destinations ever chosen", len(hit))
	}
}

func TestMeanOfIgnoresNaN(t *testing.T) {
	s := Series{Points: []Point{
		{Values: map[Metric]float64{MetricDelay: 10}},
		{Values: map[Metric]float64{MetricDelay: math.NaN()}},
		{Values: map[Metric]float64{MetricDelay: 30}},
	}}
	if got := MeanOf(s, MetricDelay); got != 20 {
		t.Errorf("MeanOf = %v, want 20", got)
	}
}

func TestFiguresRegistryComplete(t *testing.T) {
	want := []string{
		"fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"overhead",
	}
	figs := Figures()
	if len(figs) != len(want) {
		t.Fatalf("%d figures, want %d", len(figs), len(want))
	}
	for i, id := range want {
		if figs[i].ID != id {
			t.Errorf("figure %d = %q, want %q", i, figs[i].ID, id)
		}
	}
	for _, f := range figs {
		if f.Sweep.Scenario.Generate == nil {
			t.Errorf("%s: no scenario generator", f.ID)
		}
		if f.Metric == "" {
			t.Errorf("%s: no metric", f.ID)
		}
	}
}

func TestFig14PairDiffersOnlyInInterval(t *testing.T) {
	short, long := Fig14Pair()
	s1, err := short.Scenario.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := long.Scenario.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := contact.Analyze(s1), contact.Analyze(s2)
	if g2.MeanInterval <= g1.MeanInterval {
		t.Errorf("long scenario mean gap %.0f not above short %.0f",
			g2.MeanInterval, g1.MeanInterval)
	}
	if short.Scenario.TxTime != long.Scenario.TxTime {
		t.Error("scenario pair must share the link rate")
	}
}

func TestScenariosProduceValidSchedules(t *testing.T) {
	for _, sc := range []Scenario{TraceScenario(), RWPScenario(), IntervalScenario(400)} {
		s, err := sc.Generate(9)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if s.Horizon() <= 0 {
			t.Errorf("%s: empty horizon", sc.Name)
		}
	}
}

func TestTableIISmall(t *testing.T) {
	rows, err := TableII(5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Protocol == "" {
			t.Error("unnamed row")
		}
		for _, v := range []float64{r.DeliveryRWP, r.DeliveryTr, r.OccupancyRWP, r.OccupancyTr, r.DupRWP, r.DupTr} {
			if v < 0 || math.IsNaN(v) {
				t.Errorf("%s: bad cell %v", r.Protocol, v)
			}
		}
		if r.DeliveryRWP > 100 || r.DeliveryTr > 100 {
			t.Errorf("%s: delivery above 100%%", r.Protocol)
		}
	}
}

func TestOnPointCallback(t *testing.T) {
	sw := tinySweep()
	var calls []string
	sw.OnPoint = func(label string, load int) {
		calls = append(calls, fmt.Sprintf("%s/%d", label, load))
	}
	if _, err := Run(sw); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 4 { // 2 protocols × 2 loads
		t.Errorf("OnPoint called %d times, want 4: %v", len(calls), calls)
	}
}
